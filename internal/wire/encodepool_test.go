package wire

import (
	"bytes"
	"testing"

	"semdisco/internal/describe"
)

func poolEnvelope() *Envelope {
	return NewEnvelope(gen.New(), "lan0/c", Query{
		QueryID: gen.New(), Kind: describe.KindSemantic,
		Payload: bytes.Repeat([]byte{7}, 120), TTL: 4, ReplyAddr: "lan0/c",
	}, gen)
}

// Marshal hands out caller-owned slices: corrupting one result must
// never reach another, even though both were encoded through the same
// pooled buffer.
func TestMarshalResultsIndependent(t *testing.T) {
	e := poolEnvelope()
	b1, err := Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("same envelope marshaled differently")
	}
	for i := range b1 {
		b1[i] = 0xFF
	}
	b3, err := Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b2, b3) {
		t.Fatal("mutating one Marshal result corrupted a later one")
	}
}

// A failed Marshal must return its buffer to the pool reset, not
// poisoned with the partial encoding.
func TestMarshalErrorDoesNotPoisonPool(t *testing.T) {
	if _, err := Marshal(&Envelope{Type: TPing}); err == nil {
		t.Fatal("nil body accepted")
	}
	e := poolEnvelope()
	b, err := Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatalf("marshal after error path: %v", err)
	}
	if got.MsgID != e.MsgID {
		t.Fatal("round trip after error path lost the envelope")
	}
}

// The pool leaves exactly one allocation per Marshal — the caller-owned
// result slice — and none for a size probe. The bounds are tolerant of
// an occasional GC emptying the pool mid-run.
func TestMarshalAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation skews allocation counts")
	}
	e := poolEnvelope()
	if avg := testing.AllocsPerRun(200, func() {
		if _, err := Marshal(e); err != nil {
			t.Fatal(err)
		}
	}); avg > 1.5 {
		t.Errorf("Marshal allocates %.1f objects/op, want ~1", avg)
	}
	if avg := testing.AllocsPerRun(200, func() {
		if _, err := EncodedSize(e); err != nil {
			t.Fatal(err)
		}
	}); avg > 0.5 {
		t.Errorf("EncodedSize allocates %.1f objects/op, want ~0", avg)
	}
}

func BenchmarkMarshalQueryPooled(b *testing.B) {
	e := poolEnvelope()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Marshal(e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodedSizePooled(b *testing.B) {
	e := poolEnvelope()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EncodedSize(e); err != nil {
			b.Fatal(err)
		}
	}
}
