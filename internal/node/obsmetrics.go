package node

import "semdisco/internal/obs"

// Runtime observability for client and service nodes, aggregated over
// every node in the process. The client counters expose the retry
// machinery of §4.5 (failover, expanding ring, decentralized fallback);
// the service counters expose the publish/renew lease loop of §4.8.
// Documented in OBSERVABILITY.md.
var (
	nQueries = obs.NewCounter("node.queries", "count",
		"discovery queries submitted by clients")
	nQueryReissues = obs.NewCounter("node.query.reissues", "count",
		"expanding-ring reissues with a widened TTL")
	nQueryFailovers = obs.NewCounter("node.query.failovers", "count",
		"query attempts abandoned after a registry timeout")
	nQueryFallbacks = obs.NewCounter("node.query.fallbacks", "count",
		"queries that fell back to decentralized LAN discovery")
	nPublishSent = obs.NewCounter("node.publish.sent", "count",
		"publish messages sent by service nodes")
	nRenewSent = obs.NewCounter("node.renew.sent", "count",
		"lease renewals sent by service nodes")
	nRepublishes = obs.NewCounter("node.republish", "count",
		"republishes after a registry was presumed dead")
	nPeerAnswers = obs.NewCounter("node.peerquery.answered", "count",
		"fallback peer queries a service answered directly")
	nBackoffScheduled = obs.NewCounter("node.retry.backoff.scheduled", "count",
		"query retries delayed by jittered exponential backoff")
	nBackoffDelay = obs.NewHistogram("node.retry.backoff.delay_us", "us",
		"jittered backoff delay before a query retry", obs.LatencyBucketsUS)
	nDupAdverts = obs.NewCounter("node.query.dup_adverts", "count",
		"duplicate advertisements suppressed across retries and fallback")
)
