// Package experiments implements the paper-claim reproductions indexed
// in DESIGN.md (E1–E14). The paper is a conceptual architecture with no
// evaluation section, so each experiment operationalizes one of its
// quantitative claims; EXPERIMENTS.md records the measured shapes
// against the claims. Every experiment is deterministic for a given
// seed and returns a metrics.Table that both `go test -bench` and
// cmd/simdisco print.
package experiments

import (
	"fmt"
	"sort"
	"time"

	"semdisco/internal/discovery"
	"semdisco/internal/federation"
	"semdisco/internal/node"
	"semdisco/internal/ontology"
	"semdisco/internal/sim"
	"semdisco/internal/wire"
)

// Defaults shared by the experiments: fast timers so virtual scenarios
// converge quickly, while keeping the relative ordering of the paper's
// configuration knobs (beacon < lease < peer timeout).
func fastRegistry() federation.Config {
	return federation.Config{
		BeaconInterval: 2 * time.Second,
		PingInterval:   4 * time.Second,
		PeerTimeout:    12 * time.Second,
		QueryTimeout:   200 * time.Millisecond,
		PurgeInterval:  250 * time.Millisecond,
	}
}

func fastService(lease time.Duration, seeds ...wire.PeerInfo) node.ServiceConfig {
	return node.ServiceConfig{
		Lease:      lease,
		AckTimeout: 400 * time.Millisecond,
		Bootstrap:  discovery.Config{Seeds: seeds, ProbeInterval: 500 * time.Millisecond},
	}
}

func fastClient(seeds ...wire.PeerInfo) node.ClientConfig {
	return node.ClientConfig{
		QueryTimeout:   2 * time.Second,
		FallbackWindow: 500 * time.Millisecond,
		Bootstrap:      discovery.Config{Seeds: seeds, ProbeInterval: 500 * time.Millisecond},
	}
}

// spreadCategories deals categories round-robin from the default
// ontology's concrete service classes.
var serviceCategories = []ontology.Class{
	sim.C("RadarFeed"), sim.C("CoastalRadarFeed"), sim.C("CameraFeed"),
	sim.C("InfraredCameraFeed"), sim.C("WeatherService"), sim.C("MapService"),
	sim.C("ChatService"),
}

func categoryFor(i int) ontology.Class {
	return serviceCategories[i%len(serviceCategories)]
}

// distinctServices counts distinct service keys in a result set.
func distinctServices(w *sim.World, adverts []wire.Advertisement) int {
	seen := map[string]bool{}
	for _, a := range adverts {
		d, err := w.Models().DecodeDescription(a.Kind, a.Payload)
		if err != nil {
			continue
		}
		seen[d.ServiceKey()] = true
	}
	return len(seen)
}

// meshSeeds builds a seed list chaining each new registry to the
// previous k for connected-but-sparse WAN graphs.
func chainSeeds(regs []*sim.RegistryHandle, k int) []wire.PeerInfo {
	var seeds []wire.PeerInfo
	n := len(regs)
	for i := n - 1; i >= 0 && len(seeds) < k; i-- {
		seeds = append(seeds, regs[i].PeerInfo())
	}
	return seeds
}

// sortedKeys renders map keys deterministically for notes.
func sortedKeys[K comparable, V any](m map[K]V, less func(a, b K) bool) []K {
	out := make([]K, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return less(out[i], out[j]) })
	return out
}

func fmtDur(d time.Duration) string {
	return d.Round(time.Millisecond).String()
}

var _ = fmt.Sprintf // reserved for shared formatting helpers
