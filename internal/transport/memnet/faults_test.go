package memnet

import (
	"testing"
	"time"

	"semdisco/internal/transport"
)

// blast sends count unicasts a→b and runs the network dry.
func blast(n *Network, a transport.Iface, to transport.Addr, count int) {
	for i := 0; i < count; i++ {
		a.Unicast(to, []byte{byte(i), byte(i >> 8), 0, 0})
	}
	n.RunFor(time.Minute)
}

func TestFaultUniformLoss(t *testing.T) {
	n := New(Config{Seed: 7})
	var b capture
	a := n.Attach("lan0/a", "lan0", nil)
	n.Attach("lan0/b", "lan0", b.handler())
	n.SetFault(ScopeAll, FaultProfile{LossGood: 0.5, LossBad: 0.5})
	blast(n, a, "lan0/b", 400)
	got := len(b.data)
	if got < 140 || got > 260 {
		t.Fatalf("50%% fault loss delivered %d/400", got)
	}
	s := n.Stats()
	if s.Faults.Dropped != uint64(400-got) {
		t.Fatalf("Faults.Dropped = %d, want %d", s.Faults.Dropped, 400-got)
	}
	if s.MessagesDropped != s.Faults.Dropped {
		t.Fatalf("fault drops not counted in MessagesDropped (%d vs %d)",
			s.MessagesDropped, s.Faults.Dropped)
	}
}

func TestFaultBurstLossIsBursty(t *testing.T) {
	// Gilbert-Elliott with a lossless good state and a lossy bad state
	// must produce runs of consecutive drops, not independent ones:
	// with mean burst length 1/PBadGood = 10, drops cluster.
	n := New(Config{Seed: 3})
	delivered := make([]bool, 0, 2000)
	a := n.Attach("lan0/a", "lan0", nil)
	n.Attach("lan0/b", "lan0", func(_ transport.Addr, data []byte) {
		delivered[int(data[0])|int(data[1])<<8] = true
	})
	n.SetFault(ScopeAll, FaultProfile{
		LossGood: 0, LossBad: 1, PGoodBad: 0.02, PBadGood: 0.1,
	})
	const total = 2000
	delivered = delivered[:total]
	// One message per event-loop turn keeps arrival order == index order.
	for i := 0; i < total; i++ {
		a.Unicast("lan0/b", []byte{byte(i), byte(i >> 8), 0, 0})
		n.RunFor(10 * time.Millisecond)
	}
	dropped, runs, inRun := 0, 0, false
	for _, ok := range delivered {
		if !ok {
			dropped++
			if !inRun {
				runs++
				inRun = true
			}
		} else {
			inRun = false
		}
	}
	if dropped == 0 || runs == 0 {
		t.Fatalf("burst profile dropped nothing (dropped=%d)", dropped)
	}
	meanRun := float64(dropped) / float64(runs)
	// Independent 1-in-6 loss would give mean run ≈ 1.2; GE with
	// PBadGood=0.1 gives ≈ 10. Anything ≥ 3 proves burstiness.
	if meanRun < 3 {
		t.Fatalf("mean drop-run length = %.1f, want bursty (≥3); dropped=%d runs=%d",
			meanRun, dropped, runs)
	}
}

func TestFaultDuplication(t *testing.T) {
	n := New(Config{Seed: 5})
	var b capture
	a := n.Attach("lan0/a", "lan0", nil)
	n.Attach("lan0/b", "lan0", b.handler())
	n.SetFault(ScopeAll, FaultProfile{DupProb: 1})
	blast(n, a, "lan0/b", 50)
	if len(b.data) != 100 {
		t.Fatalf("DupProb=1 delivered %d, want 100", len(b.data))
	}
	s := n.Stats()
	if s.Faults.Duplicated != 50 {
		t.Fatalf("Faults.Duplicated = %d, want 50", s.Faults.Duplicated)
	}
	if s.MessagesDelivered != 100 {
		t.Fatalf("MessagesDelivered = %d, want 100 (copies count)", s.MessagesDelivered)
	}
}

func TestFaultReorderHoldsBack(t *testing.T) {
	n := New(Config{Seed: 1, LANLatency: time.Millisecond})
	var order []byte
	a := n.Attach("lan0/a", "lan0", nil)
	n.Attach("lan0/b", "lan0", func(_ transport.Addr, data []byte) {
		order = append(order, data[0])
	})
	// Deterministic: reorder every datagram by 10 ms. Two sends in the
	// same turn would then both shift; instead fault only the first via
	// a link-scoped profile toggled off between sends.
	n.SetFault(ScopeLink("lan0/a", "lan0/b"), FaultProfile{
		ReorderProb: 1, ReorderDelay: 10 * time.Millisecond,
	})
	a.Unicast("lan0/b", []byte{1, 0, 0, 0})
	n.ClearFault(ScopeLink("lan0/a", "lan0/b"))
	a.Unicast("lan0/b", []byte{2, 0, 0, 0})
	n.RunFor(time.Second)
	if len(order) != 2 || order[0] != 2 || order[1] != 1 {
		t.Fatalf("order = %v, want [2 1] (first held back)", order)
	}
	if n.Stats().Faults.Reordered != 1 {
		t.Fatalf("Faults.Reordered = %d, want 1", n.Stats().Faults.Reordered)
	}
}

func TestFaultDelaySpike(t *testing.T) {
	n := New(Config{Seed: 1, LANLatency: time.Millisecond})
	var arrival time.Time
	a := n.Attach("lan0/a", "lan0", nil)
	n.Attach("lan0/b", "lan0", func(transport.Addr, []byte) { arrival = n.Now() })
	n.SetFault(ScopeAll, FaultProfile{SpikeProb: 1, SpikeDelay: 100 * time.Millisecond})
	start := n.Now()
	a.Unicast("lan0/b", []byte{0, 0, 0, 0})
	n.RunFor(time.Second)
	if got := arrival.Sub(start); got != 101*time.Millisecond {
		t.Fatalf("spiked latency = %v, want 101ms", got)
	}
}

func TestFaultScopeResolution(t *testing.T) {
	// Link beats LAN beats all; WAN scope only hits cross-LAN traffic.
	n := New(Config{Seed: 9})
	var b, c capture
	a := n.Attach("lan0/a", "lan0", nil)
	n.Attach("lan0/b", "lan0", b.handler())
	n.Attach("lan1/c", "lan1", c.handler())
	// Drop everything on lan0, but exempt the a→b link specifically.
	n.SetFault(ScopeLAN("lan0"), FaultProfile{LossGood: 1, LossBad: 1})
	n.SetFault(ScopeLink("lan0/a", "lan0/b"), FaultProfile{LossGood: 0.0000001})
	// WAN traffic untouched by either scope.
	blast(n, a, "lan0/b", 20)
	if len(b.data) != 20 {
		t.Fatalf("link-scope exemption failed: %d/20 delivered", len(b.data))
	}
	blast(n, a, "lan1/c", 20)
	if len(c.data) != 20 {
		t.Fatalf("LAN scope leaked onto WAN traffic: %d/20", len(c.data))
	}
	n.SetFault(ScopeWAN, FaultProfile{LossGood: 1, LossBad: 1})
	blast(n, a, "lan1/c", 20)
	if len(c.data) != 20 {
		t.Fatalf("WAN profile applied retroactively?")
	}
	c.data = nil
	blast(n, a, "lan1/c", 20)
	if len(c.data) != 0 {
		t.Fatalf("WAN blackhole leaked %d datagrams", len(c.data))
	}
}

func TestFaultAsymmetry(t *testing.T) {
	// A directed link profile must not affect the reverse direction.
	n := New(Config{Seed: 2})
	var a2b, b2a capture
	a := n.Attach("lan0/a", "lan0", a2b.handler())
	b := n.Attach("lan0/b", "lan0", b2a.handler())
	n.SetFault(ScopeLink("lan0/a", "lan0/b"), FaultProfile{LossGood: 1, LossBad: 1})
	for i := 0; i < 10; i++ {
		a.Unicast("lan0/b", []byte{1, 0, 0, 0})
		b.Unicast("lan0/a", []byte{2, 0, 0, 0})
	}
	n.RunFor(time.Second)
	if len(b2a.data) != 0 {
		t.Fatalf("a→b blackhole leaked %d", len(b2a.data))
	}
	if len(a2b.data) != 10 {
		t.Fatalf("b→a direction affected: %d/10", len(a2b.data))
	}
}

func TestFaultScheduleTimedPartitionAndHeal(t *testing.T) {
	n := New(Config{Seed: 4, LANLatency: time.Millisecond})
	var b capture
	a := n.Attach("lan0/a", "lan0", nil)
	n.Attach("lan0/b", "lan0", b.handler())
	prof := FaultProfile{LossGood: 1, LossBad: 1}
	n.InstallFaults(FaultSchedule{
		{At: 10 * time.Millisecond, Partition: [][]transport.Addr{{"lan0/a"}, {"lan0/b"}}},
		{At: 30 * time.Millisecond, Heal: true},
		{At: 50 * time.Millisecond, Scope: ScopeAll, Profile: &prof},
		{At: 70 * time.Millisecond, Scope: ScopeAll}, // nil profile clears
	})
	sendAt := func(at time.Duration, tag byte) {
		n.Schedule(n.Now().Add(at), func() { a.Unicast("lan0/b", []byte{tag, 0, 0, 0}) })
	}
	sendAt(5*time.Millisecond, 1)  // before partition: delivered
	sendAt(20*time.Millisecond, 2) // during partition: dropped
	sendAt(40*time.Millisecond, 3) // after heal: delivered
	sendAt(60*time.Millisecond, 4) // during blackhole profile: dropped
	sendAt(80*time.Millisecond, 5) // after clear: delivered
	n.RunFor(time.Second)
	var tags []byte
	for _, d := range b.data {
		tags = append(tags, d[0])
	}
	if len(tags) != 3 || tags[0] != 1 || tags[1] != 3 || tags[2] != 5 {
		t.Fatalf("delivered tags = %v, want [1 3 5]", tags)
	}
	if n.Stats().Faults.Events != 4 {
		t.Fatalf("Faults.Events = %d, want 4", n.Stats().Faults.Events)
	}
}

func TestFaultDeterminismPerSeed(t *testing.T) {
	run := func(seed int64) Stats {
		n := New(Config{Seed: seed, Jitter: 2 * time.Millisecond})
		var b capture
		a := n.Attach("lan0/a", "lan0", nil)
		n.Attach("lan0/b", "lan0", b.handler())
		prof := FaultProfile{
			LossGood: 0.05, LossBad: 0.6, PGoodBad: 0.05, PBadGood: 0.2,
			DupProb: 0.1, ReorderProb: 0.1, ReorderDelay: 5 * time.Millisecond,
			SpikeProb: 0.05, SpikeDelay: 50 * time.Millisecond,
		}
		n.InstallFaults(FaultSchedule{
			{At: 0, Scope: ScopeAll, Profile: &prof},
			{At: 100 * time.Millisecond, Partition: [][]transport.Addr{{"lan0/a"}, {"lan0/b"}}},
			{At: 200 * time.Millisecond, Heal: true},
		})
		for i := 0; i < 500; i++ {
			at := time.Duration(i) * time.Millisecond
			n.Schedule(n.Now().Add(at), func() { a.Unicast("lan0/b", []byte{byte(i), 0, 0, 0}) })
		}
		n.RunFor(time.Minute)
		return n.Stats()
	}
	s1, s2 := run(11), run(11)
	if s1 != s2 {
		t.Fatalf("same seed diverged:\n%+v\n%+v", s1, s2)
	}
	if s1.Faults.Dropped == 0 || s1.Faults.Duplicated == 0 || s1.Faults.Reordered == 0 {
		t.Fatalf("chaos profile inactive: %+v", s1.Faults)
	}
	if run(12) == s1 {
		t.Fatal("different seeds produced identical fault pattern")
	}
}
