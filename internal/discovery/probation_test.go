package discovery

import (
	"testing"
	"time"

	"semdisco/internal/transport"
	"semdisco/internal/uuid"
	"semdisco/internal/wire"
)

// fakeRegistryNode attaches a node at addr that counts incoming Pings
// and, once pings reaches answerAfter, replies to each with a Pong —
// the behaviour of a registry that comes back from a transient outage.
type fakeRegistryNode struct {
	id    uuid.UUID
	pings int
}

func (f *fixture) attachFakeRegistry(t *testing.T, id uuid.UUID, addr transport.Addr, answerAfter int) *fakeRegistryNode {
	t.Helper()
	fr := &fakeRegistryNode{id: id}
	var iface transport.Iface
	iface = f.net.Attach(addr, "lan0", func(from transport.Addr, data []byte) {
		e, err := wire.Unmarshal(data)
		if err != nil || e.Type != wire.TPing {
			return
		}
		fr.pings++
		if fr.pings < answerAfter {
			return
		}
		pong := &wire.Envelope{
			Type: wire.TPong, From: id, FromAddr: string(addr),
			MsgID: f.gen.New(), Body: &wire.Pong{},
		}
		out, err := wire.Marshal(pong)
		if err != nil {
			t.Fatalf("marshal pong: %v", err)
		}
		iface.Unicast(from, out)
	})
	return fr
}

func TestProbationRevivesDeadRegistry(t *testing.T) {
	f := newFixture(t, Config{
		ProbeInterval: 10 * time.Second, // keep multicast probing quiet
		Probation:     200 * time.Millisecond,
	})
	f.boot.Start()
	rid := f.gen.New()
	// The registry ignores the first two probation pings (still "down"),
	// then starts answering.
	fr := f.attachFakeRegistry(t, rid, "lan0/r1", 3)
	f.beacon(rid, "lan0/r1")
	if _, ok := f.boot.Current(); !ok {
		t.Fatal("setup: registry not learned")
	}

	f.boot.MarkDead(rid)
	if _, ok := f.boot.Current(); ok {
		t.Fatal("dead registry still current")
	}
	// Probation: the demoted registry is re-pinged every interval, not
	// blacklisted. The third ping gets a Pong, which must readopt it.
	f.net.RunFor(time.Second)
	if fr.pings < 3 {
		t.Fatalf("probation sent %d pings, want ≥3 (one per interval)", fr.pings)
	}
	cur, ok := f.boot.Current()
	if !ok || cur.ID != rid {
		t.Fatalf("registry not readopted after Pong: (%+v, %v)", cur, ok)
	}
	// Once everything is alive again the probation loop must disarm.
	settled := fr.pings
	f.net.RunFor(2 * time.Second)
	if fr.pings != settled {
		t.Fatalf("probation kept pinging a live registry (%d → %d)", settled, fr.pings)
	}
}

func TestProbationStopsWithBootstrapper(t *testing.T) {
	f := newFixture(t, Config{ProbeInterval: 10 * time.Second, Probation: 100 * time.Millisecond})
	f.boot.Start()
	rid := f.gen.New()
	fr := f.attachFakeRegistry(t, rid, "lan0/r1", 1<<30) // never answers
	f.beacon(rid, "lan0/r1")
	f.boot.MarkDead(rid)
	f.net.RunFor(time.Second)
	if fr.pings == 0 {
		t.Fatal("probation never pinged")
	}
	f.boot.Stop()
	stopped := fr.pings
	f.net.RunFor(2 * time.Second)
	if fr.pings > stopped+1 { // one in-flight timer may still fire a send
		t.Fatalf("probation survived Stop (%d → %d)", stopped, fr.pings)
	}
}

func TestProbationSuppressedWhenPassive(t *testing.T) {
	f := newFixture(t, Config{Passive: true, Probation: 50 * time.Millisecond})
	f.boot.Start()
	rid := f.gen.New()
	fr := f.attachFakeRegistry(t, rid, "lan0/r1", 1)
	f.beacon(rid, "lan0/r1")
	f.boot.MarkDead(rid)
	f.net.RunFor(2 * time.Second)
	if fr.pings != 0 {
		t.Fatalf("passive node sent %d probation pings, want 0", fr.pings)
	}
}
