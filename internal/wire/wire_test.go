package wire

import (
	"reflect"
	"testing"
	"testing/quick"

	"semdisco/internal/codec"
	"semdisco/internal/describe"
	"semdisco/internal/uuid"
)

var gen = uuid.NewGenerator(1)

func sampleAdvert() Advertisement {
	return Advertisement{
		ID:           gen.New(),
		Provider:     gen.New(),
		ProviderAddr: "lan0:svc1",
		Kind:         describe.KindSemantic,
		Payload:      []byte{1, 2, 3, 4},
		LeaseMillis:  30_000,
		Version:      2,
	}
}

func allBodies() []Body {
	peers := []PeerInfo{{ID: gen.New(), Addr: "lan0:r1"}, {ID: gen.New(), Addr: "wan:r2"}}
	return []Body{
		Probe{},
		ProbeMatch{Peers: peers},
		Beacon{Peers: peers},
		Bye{},
		Ping{},
		Pong{Peers: peers},
		PeerExchange{Peers: peers},
		Summary{Entries: []SummaryEntry{
			{Kind: describe.KindURI, Tokens: []string{"urn:t1", "urn:t2"}},
			{Kind: describe.KindSemantic, Tokens: []string{"http://x#Radar"}},
		}},
		GatewayClaim{Yield: true},
		Publish{Advert: sampleAdvert()},
		PublishAck{AdvertID: gen.New(), OK: true, LeaseMillis: 30_000},
		PublishAck{AdvertID: gen.New(), OK: false, Error: "lease too long"},
		Renew{AdvertID: gen.New()},
		RenewAck{AdvertID: gen.New(), OK: true, LeaseMillis: 30_000},
		Remove{AdvertID: gen.New()},
		AdvertForward{Advert: sampleAdvert(), HopsLeft: 3},
		Query{
			QueryID: gen.New(), Kind: describe.KindSemantic, Payload: []byte{9, 9},
			MaxResults: 10, BestOnly: true, TTL: 4, Strategy: StrategyRandomWalk,
			Walkers: 2, ReplyAddr: "lan0:c1",
		},
		QueryResult{QueryID: gen.New(), Adverts: []Advertisement{sampleAdvert(), sampleAdvert()}, Complete: true},
		QueryResult{QueryID: gen.New(), Complete: false},
		PeerQuery{QueryID: gen.New(), Kind: describe.KindURI, Payload: []byte{7}, ReplyAddr: "lan0:c1"},
		ArtifactGet{IRI: "http://semdisco.example/onto#"},
		ArtifactData{IRI: "http://semdisco.example/onto#", Found: true, Data: []byte("ttl")},
		ArtifactData{IRI: "urn:missing", Found: false},
		Subscribe{SubID: gen.New(), Kind: describe.KindSemantic, Payload: []byte{5, 5}, NotifyAddr: "lan0/c1", LeaseMillis: 60_000},
		SubscribeAck{SubID: gen.New(), OK: true, LeaseMillis: 60_000},
		SubscribeAck{SubID: gen.New(), OK: false, Error: "unknown kind"},
		Unsubscribe{SubID: gen.New()},
		ArtifactPut{IRI: "urn:custom", Data: []byte("doc")},
		ArtifactPutAck{IRI: "urn:custom", OK: true},
		SummaryDelta{Version: 9, Base: 8, Entries: []SummaryDeltaEntry{
			{Kind: describe.KindSemantic, Add: []string{"http://x#Radar"}, Remove: []string{"http://x#Sonar"}},
			{Kind: describe.KindURI, Add: []string{"urn:t3"}},
		}},
		SummaryDelta{Version: 1, Full: true, Entries: []SummaryDeltaEntry{
			{Kind: describe.KindURI, Add: []string{"urn:t1", "urn:t2"}},
		}},
		SummaryAck{Version: 9},
		SummaryAck{Version: 3, Resync: true},
		Query{
			QueryID: gen.New(), Kind: describe.KindSemantic, Payload: []byte{4},
			MaxResults: 5, TTL: 3, ReplyAddr: "lan0:c1", Domain: "edge.west",
		},
		DirectoryDelta{Version: 12, Base: 11, Entries: []DirectoryEntry{
			{Domain: "edge.west", Origin: gen.New(), Addr: "wan:gw1", Version: 4},
			{Domain: "edge.east", Origin: gen.New(), Addr: "wan:gw2", Version: 2, Tombstone: true},
		}},
		DirectoryDelta{Version: 1, Full: true, Entries: []DirectoryEntry{
			{Domain: "core", Origin: gen.New(), Addr: "wan:root", Version: 1},
		}},
		DirectoryDelta{Version: 3, Base: 2},
		DirectoryAck{Version: 12},
		DirectoryAck{Version: 7, Resync: true},
	}
}

func TestMarshalRoundTripAllTypes(t *testing.T) {
	for _, body := range allBodies() {
		e := NewEnvelope(gen.New(), "lan0:n1", body, gen)
		b, err := Marshal(e)
		if err != nil {
			t.Fatalf("%T: marshal: %v", body, err)
		}
		got, err := Unmarshal(b)
		if err != nil {
			t.Fatalf("%T: unmarshal: %v", body, err)
		}
		if !reflect.DeepEqual(got, e) {
			t.Fatalf("%T round trip mismatch:\n got %#v\nwant %#v", body, got, e)
		}
	}
}

// TestAppendReadAdvertRoundTrip exercises the standalone advert codec
// the registry's write-ahead log frames records with: the bytes must
// decode back to an identical advert, truncation at every prefix must
// error rather than panic, and a detached copy must not alias the
// source buffer (WAL replay reuses its read buffer across frames).
func TestAppendReadAdvertRoundTrip(t *testing.T) {
	var b codec.Buffer
	want := sampleAdvert()
	AppendAdvert(&b, want)
	raw := b.Bytes()

	r := codec.NewReader(raw)
	got, err := ReadAdvert(r)
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	if r.Remaining() != 0 {
		t.Fatalf("%d bytes left after decode", r.Remaining())
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %#v\nwant %#v", got, want)
	}
	// The decoded payload must be detached from the encoding buffer.
	for i := range raw {
		raw[i] ^= 0xFF
	}
	if !reflect.DeepEqual(got.Payload, want.Payload) {
		t.Fatal("decoded advert aliases the encoding buffer")
	}
	for i := range raw {
		raw[i] ^= 0xFF
	}
	for i := 0; i < len(raw); i++ {
		if _, err := ReadAdvert(codec.NewReader(raw[:i])); err == nil {
			t.Fatalf("truncated advert of %d bytes accepted", i)
		}
	}
}

func TestMarshalRejectsMismatchedType(t *testing.T) {
	e := NewEnvelope(gen.New(), "a", Ping{}, gen)
	e.Type = TPong
	if _, err := Marshal(e); err == nil {
		t.Fatal("mismatched envelope/body accepted")
	}
	if _, err := Marshal(&Envelope{Type: TPing}); err == nil {
		t.Fatal("nil body accepted")
	}
}

func TestUnmarshalRejectsBadInput(t *testing.T) {
	e := NewEnvelope(gen.New(), "a", Ping{}, gen)
	good, err := Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	// bad magic
	bad := append([]byte{}, good...)
	bad[0] = 'X'
	if _, err := Unmarshal(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	// bad version
	bad = append([]byte{}, good...)
	bad[2] = 99
	if _, err := Unmarshal(bad); err == nil {
		t.Fatal("bad version accepted")
	}
	// unknown type
	bad = append([]byte{}, good...)
	bad[3] = 0xEE
	if _, err := Unmarshal(bad); err == nil {
		t.Fatal("unknown type accepted")
	}
	// truncation at every length
	for i := 0; i < len(good); i++ {
		if _, err := Unmarshal(good[:i]); err == nil {
			t.Fatalf("truncated message of %d bytes accepted", i)
		}
	}
	// trailing garbage
	if _, err := Unmarshal(append(append([]byte{}, good...), 1)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

func TestUnmarshalFuzzNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		Unmarshal(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalDetachesPayloads(t *testing.T) {
	e := NewEnvelope(gen.New(), "a", Publish{Advert: sampleAdvert()}, gen)
	b, err := Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b {
		b[i] = 0xFF // scribble over the receive buffer
	}
	pl := got.Body.(Publish).Advert.Payload
	if !reflect.DeepEqual(pl, []byte{1, 2, 3, 4}) {
		t.Fatalf("payload aliases receive buffer: %v", pl)
	}
}

func TestCategoryOf(t *testing.T) {
	cases := map[MsgType]Category{
		TProbe: CatMaintenance, TBeacon: CatMaintenance, TSummary: CatMaintenance,
		TGatewayClaim: CatMaintenance,
		TPublish:      CatPublishing, TRenew: CatPublishing, TAdvertForward: CatPublishing,
		TQuery: CatQuerying, TQueryResult: CatQuerying, TPeerQuery: CatQuerying,
		TArtifactGet: CatQuerying, TSubscribe: CatQuerying, TUnsubscribe: CatQuerying,
		TArtifactPut: CatQuerying, TArtifactPutAck: CatQuerying,
	}
	for mt, want := range cases {
		if got := CategoryOf(mt); got != want {
			t.Errorf("CategoryOf(%v) = %v, want %v", mt, got, want)
		}
	}
}

func TestStringers(t *testing.T) {
	if TQuery.String() != "query" || MsgType(200).String() == "" {
		t.Fatal("MsgType.String broken")
	}
	if CatPublishing.String() != "publishing" || Category(9).String() == "" {
		t.Fatal("Category.String broken")
	}
	if StrategyExpandingRing.String() != "expanding-ring" || Strategy(9).String() == "" {
		t.Fatal("Strategy.String broken")
	}
}

func TestNewEnvelopeGeneratesUniqueIDs(t *testing.T) {
	g := uuid.NewGenerator(7)
	a := NewEnvelope(uuid.Nil, "x", Ping{}, g)
	b := NewEnvelope(uuid.Nil, "x", Ping{}, g)
	if a.MsgID == b.MsgID {
		t.Fatal("message IDs collide")
	}
	c := NewEnvelope(uuid.Nil, "x", Ping{}, nil) // falls back to crypto/rand
	if c.MsgID.IsNil() {
		t.Fatal("nil generator produced nil MsgID")
	}
}

func TestEncodedSize(t *testing.T) {
	e := NewEnvelope(gen.New(), "lan0:n1", Publish{Advert: sampleAdvert()}, gen)
	n, err := EncodedSize(e)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Marshal(e)
	if n != len(b) {
		t.Fatalf("EncodedSize = %d, marshal produced %d", n, len(b))
	}
	// Header overhead stays modest: an empty ping is small.
	ping := NewEnvelope(gen.New(), "a", Ping{}, gen)
	pn, _ := EncodedSize(ping)
	if pn > 48 {
		t.Fatalf("ping envelope is %d bytes; header too fat", pn)
	}
}
