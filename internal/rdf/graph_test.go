package rdf

import (
	"reflect"
	"testing"
	"testing/quick"
)

var (
	ex     = "http://example.org/"
	alice  = IRI(ex + "alice")
	bob    = IRI(ex + "bob")
	knows  = IRI(ex + "knows")
	name   = IRI(ex + "name")
	radar  = IRI(ex + "Radar")
	sensor = IRI(ex + "Sensor")
)

func TestAddHasRemove(t *testing.T) {
	g := NewGraph()
	tr := Triple{alice, knows, bob}
	added, err := g.Add(tr)
	if err != nil || !added {
		t.Fatalf("Add = (%v, %v), want (true, nil)", added, err)
	}
	if !g.Has(tr) {
		t.Fatal("Has = false after Add")
	}
	if g.Len() != 1 {
		t.Fatalf("Len = %d, want 1", g.Len())
	}
	added, err = g.Add(tr)
	if err != nil || added {
		t.Fatalf("duplicate Add = (%v, %v), want (false, nil)", added, err)
	}
	if g.Len() != 1 {
		t.Fatalf("Len after dup = %d, want 1", g.Len())
	}
	if !g.Remove(tr) {
		t.Fatal("Remove = false for present triple")
	}
	if g.Has(tr) || g.Len() != 0 {
		t.Fatal("triple still present after Remove")
	}
	if g.Remove(tr) {
		t.Fatal("Remove = true for absent triple")
	}
}

func TestAddRejectsInvalid(t *testing.T) {
	g := NewGraph()
	cases := []Triple{
		{Literal("x"), knows, bob}, // literal subject
		{alice, Literal("x"), bob}, // literal predicate
		{alice, Blank("b"), bob},   // blank predicate
	}
	for _, tr := range cases {
		if _, err := g.Add(tr); err == nil {
			t.Errorf("Add(%v) succeeded, want error", tr)
		}
	}
	if g.Len() != 0 {
		t.Fatal("invalid triples entered the store")
	}
}

func TestMatchAllPatterns(t *testing.T) {
	g := NewGraph()
	g.MustAdd(Triple{alice, knows, bob})
	g.MustAdd(Triple{bob, knows, alice})
	g.MustAdd(Triple{alice, name, Literal("Alice")})

	cases := []struct {
		s, p, o Term
		want    int
	}{
		{alice, knows, bob, 1},
		{alice, knows, Wildcard, 1},
		{Wildcard, knows, bob, 1},
		{alice, Wildcard, bob, 1},
		{alice, Wildcard, Wildcard, 2},
		{Wildcard, knows, Wildcard, 2},
		{Wildcard, Wildcard, bob, 1},
		{Wildcard, Wildcard, Wildcard, 3},
		{bob, name, Wildcard, 0},
	}
	for _, c := range cases {
		got := g.Match(c.s, c.p, c.o)
		if len(got) != c.want {
			t.Errorf("Match(%v,%v,%v) = %d results, want %d", c.s, c.p, c.o, len(got), c.want)
		}
	}
}

func TestMatchDeterministicOrder(t *testing.T) {
	g := NewGraph()
	g.MustAdd(Triple{bob, knows, alice})
	g.MustAdd(Triple{alice, knows, bob})
	g.MustAdd(Triple{alice, name, Literal("Alice")})
	first := g.Match(Wildcard, Wildcard, Wildcard)
	for i := 0; i < 10; i++ {
		if got := g.Match(Wildcard, Wildcard, Wildcard); !reflect.DeepEqual(got, first) {
			t.Fatal("Match order is not deterministic")
		}
	}
}

func TestMatchFuncEarlyStop(t *testing.T) {
	g := NewGraph()
	g.MustAdd(Triple{alice, knows, bob})
	g.MustAdd(Triple{bob, knows, alice})
	count := 0
	g.MatchFunc(Wildcard, knows, Wildcard, func(Triple) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("early stop delivered %d triples, want 1", count)
	}
}

func TestObjectsSubjectsFirstObject(t *testing.T) {
	g := NewGraph()
	g.MustAdd(Triple{radar, IRI(RDFSSubClassOf), sensor})
	g.MustAdd(Triple{radar, IRI(RDFSSubClassOf), IRI(ex + "Device")})
	objs := g.Objects(radar, IRI(RDFSSubClassOf))
	if len(objs) != 2 {
		t.Fatalf("Objects = %v, want 2 entries", objs)
	}
	subs := g.Subjects(IRI(RDFSSubClassOf), sensor)
	if len(subs) != 1 || subs[0] != radar {
		t.Fatalf("Subjects = %v, want [radar]", subs)
	}
	first, ok := g.FirstObject(radar, IRI(RDFSSubClassOf))
	if !ok || first != IRI(ex+"Device") { // "Device" < "Sensor"
		t.Fatalf("FirstObject = (%v, %v)", first, ok)
	}
	if _, ok := g.FirstObject(bob, knows); ok {
		t.Fatal("FirstObject reported ok for missing subject")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	g := NewGraph()
	g.MustAdd(Triple{alice, knows, bob})
	c := g.Clone()
	c.MustAdd(Triple{bob, knows, alice})
	if g.Len() != 1 || c.Len() != 2 {
		t.Fatalf("clone not independent: g=%d c=%d", g.Len(), c.Len())
	}
}

func TestMerge(t *testing.T) {
	g := NewGraph()
	g.MustAdd(Triple{alice, knows, bob})
	h := NewGraph()
	h.MustAdd(Triple{alice, knows, bob})
	h.MustAdd(Triple{bob, knows, alice})
	if n := g.Merge(h); n != 1 {
		t.Fatalf("Merge added %d, want 1", n)
	}
	if g.Len() != 2 {
		t.Fatalf("Len after merge = %d, want 2", g.Len())
	}
}

func TestIndexConsistencyProperty(t *testing.T) {
	// Property: after any sequence of adds/removes, every index answers
	// the same membership question.
	f := func(ops []struct {
		S, P, O uint8
		Del     bool
	}) bool {
		g := NewGraph()
		model := make(map[Triple]bool)
		terms := []Term{alice, bob, radar, sensor}
		preds := []Term{knows, name, IRI(RDFSSubClassOf)}
		for _, op := range ops {
			tr := Triple{terms[int(op.S)%len(terms)], preds[int(op.P)%len(preds)], terms[int(op.O)%len(terms)]}
			if op.Del {
				g.Remove(tr)
				delete(model, tr)
			} else {
				g.MustAdd(tr)
				model[tr] = true
			}
		}
		if g.Len() != len(model) {
			return false
		}
		for tr := range model {
			if !g.Has(tr) {
				return false
			}
			if len(g.Match(tr.S, tr.P, Wildcard)) == 0 ||
				len(g.Match(Wildcard, tr.P, tr.O)) == 0 ||
				len(g.Match(tr.S, Wildcard, tr.O)) == 0 {
				return false
			}
		}
		return len(g.Match(Wildcard, Wildcard, Wildcard)) == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTermLiteralAccessors(t *testing.T) {
	if v, ok := IntLiteral(42).Int(); !ok || v != 42 {
		t.Fatalf("Int() = (%d, %v)", v, ok)
	}
	if v, ok := FloatLiteral(2.5).Float(); !ok || v != 2.5 {
		t.Fatalf("Float() = (%v, %v)", v, ok)
	}
	if _, ok := alice.Int(); ok {
		t.Fatal("IRI parsed as int")
	}
	if _, ok := Literal("abc").Int(); ok {
		t.Fatal("non-numeric literal parsed as int")
	}
}

func TestTermString(t *testing.T) {
	cases := []struct {
		t    Term
		want string
	}{
		{alice, "<http://example.org/alice>"},
		{Blank("b0"), "_:b0"},
		{Literal("hi"), `"hi"`},
		{Literal("a\"b\\c\nd"), `"a\"b\\c\nd"`},
		{LangLiteral("hei", "no"), `"hei"@no`},
		{IntLiteral(7), `"7"^^<` + XSDInteger + `>`},
		{TypedLiteral("x", XSDString), `"x"`},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}
