package federation

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"semdisco/internal/describe"
	"semdisco/internal/lease"
	"semdisco/internal/profile"
	"semdisco/internal/registry"
	"semdisco/internal/runtime"
	"semdisco/internal/transport"
	"semdisco/internal/transport/udpnet"
	"semdisco/internal/uuid"
	"semdisco/internal/wire"
)

// TestReadPoolOverUDP exercises the asynchronous query path end to end:
// a registry with ReadWorkers evaluates queries on its worker pool
// while publishes keep mutating the store through the node goroutine.
// Run under -race this proves the pool hand-off (evaluate off-thread,
// re-enter via the timer queue) is sound over the real UDP runtime.
func TestReadPoolOverUDP(t *testing.T) {
	regNode, err := udpnet.Listen(udpnet.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer regNode.Close()

	gen := uuid.NewGenerator(4242)
	store := registry.New(registry.Options{
		Models: describe.NewRegistry(describe.NewSemanticModel(testOntology(t))),
		Leases: lease.Policy{Min: time.Second, Max: time.Hour, Default: time.Hour},
	})
	env := &runtime.Env{ID: gen.New(), Iface: regNode, Clock: regNode, Gen: gen}
	// Long intervals: this test drives traffic itself, no timers needed.
	reg := New(env, store, Config{
		ReadWorkers:    4,
		BeaconInterval: time.Hour, PingInterval: time.Hour,
		PurgeInterval: time.Hour, SeenTTL: time.Hour,
	})
	regNode.SetHandler(func(from transport.Addr, data []byte) {
		runtime.Dispatch(reg, env, from, data)
	})
	regNode.Do(reg.Start)
	defer regNode.Do(reg.Stop)

	cliNode, err := udpnet.Listen(udpnet.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cliNode.Close()

	var mu sync.Mutex
	done := make(map[uuid.UUID]int) // queryID -> result count
	cliNode.SetHandler(func(_ transport.Addr, data []byte) {
		e, err := wire.Unmarshal(data)
		if err != nil {
			return
		}
		if res, ok := e.Body.(wire.QueryResult); ok && res.Complete {
			mu.Lock()
			// A re-sent query is duplicate-suppressed with an empty
			// Complete; keep the best answer seen for the ID.
			if n, ok := done[res.QueryID]; !ok || len(res.Adverts) > n {
				done[res.QueryID] = len(res.Adverts)
			}
			mu.Unlock()
		}
	})
	cgen := uuid.NewGenerator(777)
	cenv := &runtime.Env{ID: cgen.New(), Iface: cliNode, Clock: cliNode, Gen: cgen}

	for i := 0; i < 40; i++ {
		p := &profile.Profile{
			ServiceIRI: fmt.Sprintf("urn:svc:udp-%d", i),
			Category:   c("Radar"), Grounding: "urn:g",
		}
		adv := wire.Advertisement{
			ID: cgen.New(), Provider: cgen.New(), ProviderAddr: "x",
			Kind: describe.KindSemantic, Payload: p.Encode(),
			LeaseMillis: uint64(time.Hour / time.Millisecond), Version: 1,
		}
		if err := cenv.Send(reg.Addr(), wire.Publish{Advert: adv}); err != nil {
			t.Fatal(err)
		}
	}

	const queries = 30
	payload := (&describe.SemanticQuery{Template: &profile.Template{Category: c("Sensor")}}).Encode()
	ids := make([]uuid.UUID, queries)
	for i := range ids {
		ids[i] = cgen.New()
	}
	send := func(id uuid.UUID) {
		cenv.Send(reg.Addr(), wire.Query{
			QueryID: id, Kind: describe.KindSemantic, Payload: payload,
			MaxResults: 10, ReplyAddr: string(cliNode.Addr()),
		})
	}
	// Re-send unanswered queries each round: UDP may drop under load,
	// and clients reissue exactly like this.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		answered := len(done)
		mu.Unlock()
		if answered == queries {
			break
		}
		for _, id := range ids {
			mu.Lock()
			_, ok := done[id]
			mu.Unlock()
			if !ok {
				send(id)
			}
		}
		time.Sleep(100 * time.Millisecond)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(done) != queries {
		t.Fatalf("only %d of %d queries answered", len(done), queries)
	}
	// A query whose first (evaluated) answer was dropped stays empty
	// forever — its resends are duplicate-suppressed. Loopback UDP loss
	// is rare; tolerate a couple, not a pattern.
	withResults := 0
	for _, n := range done {
		if n > 0 {
			withResults++
		}
	}
	if withResults < queries-3 {
		t.Fatalf("only %d of %d queries returned results", withResults, queries)
	}
}
