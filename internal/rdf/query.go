package rdf

import (
	"fmt"
	"sort"
	"strings"
)

// Var is a query variable in a basic graph pattern, e.g. Var("s").
type Var string

// Pattern is one triple pattern; each position holds a Term or a Var.
type Pattern struct {
	S, P, O any
}

// Binding maps variables to the terms they matched.
type Binding map[Var]Term

func (b Binding) clone() Binding {
	out := make(Binding, len(b)+1)
	for k, v := range b {
		out[k] = v
	}
	return out
}

// key renders a binding deterministically for sorting and dedup.
func (b Binding) key() string {
	vars := make([]string, 0, len(b))
	for v := range b {
		vars = append(vars, string(v))
	}
	sort.Strings(vars)
	var s strings.Builder
	for _, v := range vars {
		s.WriteString(v)
		s.WriteByte('=')
		s.WriteString(b[Var(v)].String())
		s.WriteByte(';')
	}
	return s.String()
}

// Select evaluates a basic graph pattern (the conjunction of all
// patterns) against the graph and returns all variable bindings,
// deterministically ordered and deduplicated. Patterns are evaluated
// left to right with bindings substituted into later patterns, so
// placing the most selective pattern first is the caller's (cheap)
// query plan.
//
// An error is returned for malformed patterns (positions that are
// neither Term nor Var), not for empty results.
func Select(g *Graph, patterns []Pattern) ([]Binding, error) {
	for i, p := range patterns {
		for _, pos := range []any{p.S, p.P, p.O} {
			switch pos.(type) {
			case Term, Var:
			default:
				return nil, fmt.Errorf("rdf: pattern %d: position must be Term or Var, got %T", i, pos)
			}
		}
	}
	results := []Binding{{}}
	for _, pat := range patterns {
		var next []Binding
		for _, bound := range results {
			s, sv := resolve(pat.S, bound)
			p, pv := resolve(pat.P, bound)
			o, ov := resolve(pat.O, bound)
			g.MatchFunc(s, p, o, func(t Triple) bool {
				nb := bound.clone()
				if sv != "" {
					nb[sv] = t.S
				}
				if pv != "" {
					nb[pv] = t.P
				}
				if ov != "" {
					nb[ov] = t.O
				}
				next = append(next, nb)
				return true
			})
		}
		results = next
		if len(results) == 0 {
			return nil, nil
		}
	}
	// Deduplicate and order deterministically.
	seen := make(map[string]bool, len(results))
	out := results[:0]
	for _, b := range results {
		k := b.key()
		if !seen[k] {
			seen[k] = true
			out = append(out, b)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key() < out[j].key() })
	return out, nil
}

// resolve turns a pattern position into a Match argument: bound
// variables and terms become constants, free variables become Wildcard.
func resolve(pos any, b Binding) (Term, Var) {
	switch v := pos.(type) {
	case Term:
		return v, ""
	case Var:
		if t, ok := b[v]; ok {
			return t, ""
		}
		return Wildcard, v
	}
	panic("unreachable: pattern positions validated by Select")
}

// Ask reports whether the basic graph pattern has at least one solution.
func Ask(g *Graph, patterns []Pattern) (bool, error) {
	bs, err := Select(g, patterns)
	return len(bs) > 0, err
}
