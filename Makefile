GO ?= go

.PHONY: build test race vet bench docs-check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/obs/... ./internal/registry/... ./internal/federation/... ./internal/runtime/...

vet:
	$(GO) vet ./...

# Registry benchmarks with allocation stats; emits BENCH_registry.json.
bench:
	sh scripts/bench.sh

# Fails when OBSERVABILITY.md drifts from the metrics registered in code.
docs-check:
	sh scripts/check_obs_docs.sh
