//go:build race

package wire

// raceEnabled lets allocation-count assertions skip under -race, whose
// instrumentation allocates on its own.
const raceEnabled = true
