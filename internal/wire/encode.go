package wire

import (
	"fmt"
	"sync"

	"semdisco/internal/codec"
	"semdisco/internal/describe"
	"semdisco/internal/uuid"
)

// Wire format: two magic bytes, a version byte, the envelope header,
// then the body. The magic bytes let nodes "quickly filter and silently
// discard messages they cannot understand anyway" before any parsing.
const (
	magic0      = 0x53 // 'S'
	magic1      = 0x44 // 'D'
	wireVersion = 1
)

// encodePool recycles envelope encode buffers. Federation fan-out
// marshals the same few message shapes at high rate; reusing the
// buffer's backing array leaves one exact-size result allocation per
// Marshal instead of the append-growth chain.
var encodePool = sync.Pool{New: func() any { return new(codec.Buffer) }}

// Marshal encodes the envelope for transmission. The returned slice is
// freshly allocated and owned by the caller.
func Marshal(e *Envelope) ([]byte, error) {
	w := encodePool.Get().(*codec.Buffer)
	defer func() {
		w.Reset()
		encodePool.Put(w)
	}()
	if err := marshalInto(w, e); err != nil {
		return nil, err
	}
	out := make([]byte, w.Len())
	copy(out, w.Bytes())
	return out, nil
}

// marshalInto encodes the envelope into the given (reset) buffer.
func marshalInto(w *codec.Buffer, e *Envelope) error {
	if e.Body == nil {
		return fmt.Errorf("wire: nil body")
	}
	if e.Body.msgType() != e.Type {
		return fmt.Errorf("wire: envelope type %v does not match body %T", e.Type, e.Body)
	}
	w.Byte(magic0)
	w.Byte(magic1)
	w.Byte(wireVersion)
	w.Byte(byte(e.Type))
	w.Bytes16(e.From)
	w.Bytes16(e.MsgID)
	w.String(e.FromAddr)
	return marshalBody(w, e.Body)
}

// Unmarshal decodes a received datagram. Messages with wrong magic,
// unknown version or unknown type yield an error the caller treats as
// "silently discard".
func Unmarshal(b []byte) (*Envelope, error) {
	r := codec.NewReader(b)
	m0, err := r.Byte()
	if err != nil {
		return nil, err
	}
	m1, err := r.Byte()
	if err != nil {
		return nil, err
	}
	if m0 != magic0 || m1 != magic1 {
		return nil, fmt.Errorf("wire: bad magic %02x%02x", m0, m1)
	}
	v, err := r.Byte()
	if err != nil {
		return nil, err
	}
	if v != wireVersion {
		return nil, fmt.Errorf("wire: unsupported version %d", v)
	}
	t, err := r.Byte()
	if err != nil {
		return nil, err
	}
	e := &Envelope{Type: MsgType(t)}
	from, err := r.Bytes16()
	if err != nil {
		return nil, err
	}
	e.From = uuid.UUID(from)
	mid, err := r.Bytes16()
	if err != nil {
		return nil, err
	}
	e.MsgID = uuid.UUID(mid)
	if e.FromAddr, err = r.String(); err != nil {
		return nil, err
	}
	if e.Body, err = unmarshalBody(r, e.Type); err != nil {
		return nil, err
	}
	if err := r.Expect(e.Type.String()); err != nil {
		return nil, err
	}
	return e, nil
}

// derefBody normalizes pointer bodies to their value form so the
// marshal switch only has to enumerate each type once. The zero-alloc
// Decoder emits pointer bodies (reused across envelopes); constructors
// and tests still build value bodies, and both must marshal.
func derefBody(body Body) Body {
	switch b := body.(type) {
	case *Probe:
		return *b
	case *ProbeMatch:
		return *b
	case *Beacon:
		return *b
	case *Bye:
		return *b
	case *Ping:
		return *b
	case *Pong:
		return *b
	case *PeerExchange:
		return *b
	case *Summary:
		return *b
	case *GatewayClaim:
		return *b
	case *Publish:
		return *b
	case *PublishAck:
		return *b
	case *Renew:
		return *b
	case *RenewAck:
		return *b
	case *Remove:
		return *b
	case *AdvertForward:
		return *b
	case *Query:
		return *b
	case *QueryResult:
		return *b
	case *PeerQuery:
		return *b
	case *ArtifactGet:
		return *b
	case *ArtifactData:
		return *b
	case *Subscribe:
		return *b
	case *SubscribeAck:
		return *b
	case *Unsubscribe:
		return *b
	case *ArtifactPut:
		return *b
	case *ArtifactPutAck:
		return *b
	case *SummaryDelta:
		return *b
	case *SummaryAck:
		return *b
	case *DirectoryDelta:
		return *b
	case *DirectoryAck:
		return *b
	default:
		return body
	}
}

func marshalBody(w *codec.Buffer, body Body) error {
	switch b := derefBody(body).(type) {
	case Probe, Bye:
		// empty bodies
	case Ping:
		w.Bool(b.FromRegistry)
	case ProbeMatch:
		putPeers(w, b.Peers)
	case Beacon:
		putPeers(w, b.Peers)
	case Pong:
		putPeers(w, b.Peers)
	case PeerExchange:
		putPeers(w, b.Peers)
	case Summary:
		w.Uvarint(uint64(len(b.Entries)))
		for _, en := range b.Entries {
			w.Byte(byte(en.Kind))
			w.StringSlice(en.Tokens)
		}
	case GatewayClaim:
		w.Bool(b.Yield)
	case Publish:
		putAdvert(w, b.Advert)
	case PublishAck:
		w.Bytes16(b.AdvertID)
		w.Bool(b.OK)
		w.String(b.Error)
		w.Uvarint(b.LeaseMillis)
	case Renew:
		w.Bytes16(b.AdvertID)
	case RenewAck:
		w.Bytes16(b.AdvertID)
		w.Bool(b.OK)
		w.Uvarint(b.LeaseMillis)
	case Remove:
		w.Bytes16(b.AdvertID)
	case AdvertForward:
		putAdvert(w, b.Advert)
		w.Byte(b.HopsLeft)
	case Query:
		w.Bytes16(b.QueryID)
		w.Byte(byte(b.Kind))
		w.BytesVar(b.Payload)
		w.Uvarint(uint64(b.MaxResults))
		w.Bool(b.BestOnly)
		w.Byte(b.TTL)
		w.Byte(byte(b.Strategy))
		w.Byte(b.Walkers)
		w.String(b.ReplyAddr)
		w.Bool(b.NoCache)
		w.String(b.Domain)
	case QueryResult:
		w.Bytes16(b.QueryID)
		w.Uvarint(uint64(len(b.Adverts)))
		for _, a := range b.Adverts {
			putAdvert(w, a)
		}
		w.Bool(b.Complete)
	case PeerQuery:
		w.Bytes16(b.QueryID)
		w.Byte(byte(b.Kind))
		w.BytesVar(b.Payload)
		w.String(b.ReplyAddr)
	case ArtifactGet:
		w.String(b.IRI)
	case ArtifactData:
		w.String(b.IRI)
		w.Bool(b.Found)
		w.BytesVar(b.Data)
	case Subscribe:
		w.Bytes16(b.SubID)
		w.Byte(byte(b.Kind))
		w.BytesVar(b.Payload)
		w.String(b.NotifyAddr)
		w.Uvarint(b.LeaseMillis)
	case SubscribeAck:
		w.Bytes16(b.SubID)
		w.Bool(b.OK)
		w.String(b.Error)
		w.Uvarint(b.LeaseMillis)
	case Unsubscribe:
		w.Bytes16(b.SubID)
	case ArtifactPut:
		w.String(b.IRI)
		w.BytesVar(b.Data)
	case ArtifactPutAck:
		w.String(b.IRI)
		w.Bool(b.OK)
	case SummaryDelta:
		w.Uvarint(b.Version)
		w.Uvarint(b.Base)
		w.Bool(b.Full)
		w.Uvarint(uint64(len(b.Entries)))
		for _, en := range b.Entries {
			w.Byte(byte(en.Kind))
			w.StringSlice(en.Add)
			w.StringSlice(en.Remove)
		}
	case SummaryAck:
		w.Uvarint(b.Version)
		w.Bool(b.Resync)
	case DirectoryDelta:
		w.Uvarint(b.Version)
		w.Uvarint(b.Base)
		w.Bool(b.Full)
		w.Uvarint(uint64(len(b.Entries)))
		for _, en := range b.Entries {
			putDirectoryEntry(w, en)
		}
	case DirectoryAck:
		w.Uvarint(b.Version)
		w.Bool(b.Resync)
	default:
		return fmt.Errorf("wire: cannot marshal body type %T", body)
	}
	return nil
}

func unmarshalBody(r *codec.Reader, t MsgType) (Body, error) {
	switch t {
	case TProbe:
		return Probe{}, nil
	case TBye:
		return Bye{}, nil
	case TPing:
		fr, err := r.Bool()
		return Ping{FromRegistry: fr}, err
	case TProbeMatch:
		ps, err := getPeers(r)
		return ProbeMatch{Peers: ps}, err
	case TBeacon:
		ps, err := getPeers(r)
		return Beacon{Peers: ps}, err
	case TPong:
		ps, err := getPeers(r)
		return Pong{Peers: ps}, err
	case TPeerExchange:
		ps, err := getPeers(r)
		return PeerExchange{Peers: ps}, err
	case TSummary:
		n, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		if n > uint64(r.Remaining()) {
			return nil, fmt.Errorf("wire: summary entry count %d exceeds payload", n)
		}
		s := Summary{}
		for i := uint64(0); i < n; i++ {
			k, err := r.Byte()
			if err != nil {
				return nil, err
			}
			toks, err := r.StringSlice()
			if err != nil {
				return nil, err
			}
			s.Entries = append(s.Entries, SummaryEntry{Kind: describe.Kind(k), Tokens: toks})
		}
		return s, nil
	case TGatewayClaim:
		y, err := r.Bool()
		return GatewayClaim{Yield: y}, err
	case TPublish:
		a, err := getAdvert(r)
		return Publish{Advert: a}, err
	case TPublishAck:
		var b PublishAck
		id, err := r.Bytes16()
		if err != nil {
			return nil, err
		}
		b.AdvertID = uuid.UUID(id)
		if b.OK, err = r.Bool(); err != nil {
			return nil, err
		}
		if b.Error, err = r.String(); err != nil {
			return nil, err
		}
		if b.LeaseMillis, err = r.Uvarint(); err != nil {
			return nil, err
		}
		return b, nil
	case TRenew:
		id, err := r.Bytes16()
		return Renew{AdvertID: uuid.UUID(id)}, err
	case TRenewAck:
		var b RenewAck
		id, err := r.Bytes16()
		if err != nil {
			return nil, err
		}
		b.AdvertID = uuid.UUID(id)
		if b.OK, err = r.Bool(); err != nil {
			return nil, err
		}
		if b.LeaseMillis, err = r.Uvarint(); err != nil {
			return nil, err
		}
		return b, nil
	case TRemove:
		id, err := r.Bytes16()
		return Remove{AdvertID: uuid.UUID(id)}, err
	case TAdvertForward:
		a, err := getAdvert(r)
		if err != nil {
			return nil, err
		}
		h, err := r.Byte()
		return AdvertForward{Advert: a, HopsLeft: h}, err
	case TQuery:
		var b Query
		id, err := r.Bytes16()
		if err != nil {
			return nil, err
		}
		b.QueryID = uuid.UUID(id)
		k, err := r.Byte()
		if err != nil {
			return nil, err
		}
		b.Kind = describe.Kind(k)
		pl, err := r.BytesVar()
		if err != nil {
			return nil, err
		}
		b.Payload = cloneBytes(pl)
		mr, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		b.MaxResults = uint16(mr)
		if b.BestOnly, err = r.Bool(); err != nil {
			return nil, err
		}
		if b.TTL, err = r.Byte(); err != nil {
			return nil, err
		}
		s, err := r.Byte()
		if err != nil {
			return nil, err
		}
		b.Strategy = Strategy(s)
		if b.Walkers, err = r.Byte(); err != nil {
			return nil, err
		}
		if b.ReplyAddr, err = r.String(); err != nil {
			return nil, err
		}
		if b.NoCache, err = r.Bool(); err != nil {
			return nil, err
		}
		if b.Domain, err = r.String(); err != nil {
			return nil, err
		}
		return b, nil
	case TQueryResult:
		var b QueryResult
		id, err := r.Bytes16()
		if err != nil {
			return nil, err
		}
		b.QueryID = uuid.UUID(id)
		n, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		if n > uint64(r.Remaining()) {
			return nil, fmt.Errorf("wire: advert count %d exceeds payload", n)
		}
		for i := uint64(0); i < n; i++ {
			a, err := getAdvert(r)
			if err != nil {
				return nil, err
			}
			b.Adverts = append(b.Adverts, a)
		}
		if b.Complete, err = r.Bool(); err != nil {
			return nil, err
		}
		return b, nil
	case TPeerQuery:
		var b PeerQuery
		id, err := r.Bytes16()
		if err != nil {
			return nil, err
		}
		b.QueryID = uuid.UUID(id)
		k, err := r.Byte()
		if err != nil {
			return nil, err
		}
		b.Kind = describe.Kind(k)
		pl, err := r.BytesVar()
		if err != nil {
			return nil, err
		}
		b.Payload = cloneBytes(pl)
		if b.ReplyAddr, err = r.String(); err != nil {
			return nil, err
		}
		return b, nil
	case TArtifactGet:
		iri, err := r.String()
		return ArtifactGet{IRI: iri}, err
	case TArtifactData:
		var b ArtifactData
		var err error
		if b.IRI, err = r.String(); err != nil {
			return nil, err
		}
		if b.Found, err = r.Bool(); err != nil {
			return nil, err
		}
		d, err := r.BytesVar()
		if err != nil {
			return nil, err
		}
		b.Data = cloneBytes(d)
		return b, nil
	case TSubscribe:
		var b Subscribe
		id, err := r.Bytes16()
		if err != nil {
			return nil, err
		}
		b.SubID = uuid.UUID(id)
		k, err := r.Byte()
		if err != nil {
			return nil, err
		}
		b.Kind = describe.Kind(k)
		pl, err := r.BytesVar()
		if err != nil {
			return nil, err
		}
		b.Payload = cloneBytes(pl)
		if b.NotifyAddr, err = r.String(); err != nil {
			return nil, err
		}
		if b.LeaseMillis, err = r.Uvarint(); err != nil {
			return nil, err
		}
		return b, nil
	case TSubscribeAck:
		var b SubscribeAck
		id, err := r.Bytes16()
		if err != nil {
			return nil, err
		}
		b.SubID = uuid.UUID(id)
		if b.OK, err = r.Bool(); err != nil {
			return nil, err
		}
		if b.Error, err = r.String(); err != nil {
			return nil, err
		}
		if b.LeaseMillis, err = r.Uvarint(); err != nil {
			return nil, err
		}
		return b, nil
	case TUnsubscribe:
		id, err := r.Bytes16()
		return Unsubscribe{SubID: uuid.UUID(id)}, err
	case TArtifactPut:
		var b ArtifactPut
		var err error
		if b.IRI, err = r.String(); err != nil {
			return nil, err
		}
		d, err := r.BytesVar()
		if err != nil {
			return nil, err
		}
		b.Data = cloneBytes(d)
		return b, nil
	case TArtifactPutAck:
		var b ArtifactPutAck
		var err error
		if b.IRI, err = r.String(); err != nil {
			return nil, err
		}
		if b.OK, err = r.Bool(); err != nil {
			return nil, err
		}
		return b, nil
	case TSummaryDelta:
		var b SummaryDelta
		var err error
		if b.Version, err = r.Uvarint(); err != nil {
			return nil, err
		}
		if b.Base, err = r.Uvarint(); err != nil {
			return nil, err
		}
		if b.Full, err = r.Bool(); err != nil {
			return nil, err
		}
		n, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		if n > uint64(r.Remaining()) {
			return nil, fmt.Errorf("wire: delta entry count %d exceeds payload", n)
		}
		for i := uint64(0); i < n; i++ {
			k, err := r.Byte()
			if err != nil {
				return nil, err
			}
			add, err := r.StringSlice()
			if err != nil {
				return nil, err
			}
			rem, err := r.StringSlice()
			if err != nil {
				return nil, err
			}
			b.Entries = append(b.Entries, SummaryDeltaEntry{Kind: describe.Kind(k), Add: add, Remove: rem})
		}
		return b, nil
	case TSummaryAck:
		var b SummaryAck
		var err error
		if b.Version, err = r.Uvarint(); err != nil {
			return nil, err
		}
		if b.Resync, err = r.Bool(); err != nil {
			return nil, err
		}
		return b, nil
	case TDirectoryDelta:
		var b DirectoryDelta
		var err error
		if b.Version, err = r.Uvarint(); err != nil {
			return nil, err
		}
		if b.Base, err = r.Uvarint(); err != nil {
			return nil, err
		}
		if b.Full, err = r.Bool(); err != nil {
			return nil, err
		}
		n, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		if n > uint64(r.Remaining()) {
			return nil, fmt.Errorf("wire: directory entry count %d exceeds payload", n)
		}
		for i := uint64(0); i < n; i++ {
			en, err := getDirectoryEntry(r)
			if err != nil {
				return nil, err
			}
			b.Entries = append(b.Entries, en)
		}
		return b, nil
	case TDirectoryAck:
		var b DirectoryAck
		var err error
		if b.Version, err = r.Uvarint(); err != nil {
			return nil, err
		}
		if b.Resync, err = r.Bool(); err != nil {
			return nil, err
		}
		return b, nil
	default:
		return nil, fmt.Errorf("wire: unknown message type %d", t)
	}
}

func putPeers(w *codec.Buffer, ps []PeerInfo) {
	w.Uvarint(uint64(len(ps)))
	for _, p := range ps {
		w.Bytes16(p.ID)
		w.String(p.Addr)
	}
}

func getPeers(r *codec.Reader) ([]PeerInfo, error) {
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(r.Remaining()) {
		return nil, fmt.Errorf("wire: peer count %d exceeds payload", n)
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]PeerInfo, 0, n)
	for i := uint64(0); i < n; i++ {
		id, err := r.Bytes16()
		if err != nil {
			return nil, err
		}
		addr, err := r.String()
		if err != nil {
			return nil, err
		}
		out = append(out, PeerInfo{ID: uuid.UUID(id), Addr: addr})
	}
	return out, nil
}

func putDirectoryEntry(w *codec.Buffer, e DirectoryEntry) {
	w.String(e.Domain)
	w.Bytes16(e.Origin)
	w.String(e.Addr)
	w.Uvarint(e.Version)
	w.Bool(e.Tombstone)
}

func getDirectoryEntry(r *codec.Reader) (DirectoryEntry, error) {
	var e DirectoryEntry
	var err error
	if e.Domain, err = r.String(); err != nil {
		return e, err
	}
	origin, err := r.Bytes16()
	if err != nil {
		return e, err
	}
	e.Origin = uuid.UUID(origin)
	if e.Addr, err = r.String(); err != nil {
		return e, err
	}
	if e.Version, err = r.Uvarint(); err != nil {
		return e, err
	}
	if e.Tombstone, err = r.Bool(); err != nil {
		return e, err
	}
	return e, nil
}

func putAdvert(w *codec.Buffer, a Advertisement) {
	w.Bytes16(a.ID)
	w.Bytes16(a.Provider)
	w.String(a.ProviderAddr)
	w.Byte(byte(a.Kind))
	w.BytesVar(a.Payload)
	w.Uvarint(a.LeaseMillis)
	w.Uvarint(a.Version)
}

func getAdvert(r *codec.Reader) (Advertisement, error) {
	var a Advertisement
	id, err := r.Bytes16()
	if err != nil {
		return a, err
	}
	a.ID = uuid.UUID(id)
	prov, err := r.Bytes16()
	if err != nil {
		return a, err
	}
	a.Provider = uuid.UUID(prov)
	if a.ProviderAddr, err = r.String(); err != nil {
		return a, err
	}
	k, err := r.Byte()
	if err != nil {
		return a, err
	}
	a.Kind = describe.Kind(k)
	pl, err := r.BytesVar()
	if err != nil {
		return a, err
	}
	a.Payload = cloneBytes(pl)
	if a.LeaseMillis, err = r.Uvarint(); err != nil {
		return a, err
	}
	if a.Version, err = r.Uvarint(); err != nil {
		return a, err
	}
	return a, nil
}

// AppendAdvert encodes an advertisement into the buffer using the same
// layout the protocol messages use. The registry's write-ahead log
// embeds adverts in its records with this, so the durable format and
// the wire format can never drift apart.
func AppendAdvert(w *codec.Buffer, a Advertisement) { putAdvert(w, a) }

// ReadAdvert decodes an advertisement written by AppendAdvert (or
// embedded in a protocol message). The payload is detached from the
// input buffer, so the advert may be retained.
func ReadAdvert(r *codec.Reader) (Advertisement, error) { return getAdvert(r) }

// cloneBytes detaches decoded payloads from the receive buffer so they
// can be retained safely.
func cloneBytes(b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// EncodedSize returns the marshaled size of the envelope; experiments
// use it for byte-exact bandwidth accounting without double-encoding.
// Encoding happens entirely inside a pooled buffer, so a warmed-up
// size probe allocates nothing.
func EncodedSize(e *Envelope) (int, error) {
	w := encodePool.Get().(*codec.Buffer)
	defer func() {
		w.Reset()
		encodePool.Put(w)
	}()
	if err := marshalInto(w, e); err != nil {
		return 0, err
	}
	return w.Len(), nil
}
