package match_test

import (
	"fmt"

	"semdisco/internal/match"
	"semdisco/internal/ontology"
	"semdisco/internal/profile"
)

// The matchmaker's degrees on the paper's running example: asking for a
// Sensor finds a Radar service as a PlugIn match.
func Example() {
	o := ontology.New("http://x#")
	o.AddClass("http://x#Sensor")
	o.AddClass("http://x#Radar", "http://x#Sensor")
	o.Freeze()

	m := match.New(o)
	radarSvc := &profile.Profile{
		ServiceIRI: "urn:svc:radar",
		Category:   "http://x#Radar",
		Grounding:  "udp://radar:1",
	}
	for _, want := range []ontology.Class{"http://x#Radar", "http://x#Sensor"} {
		r := m.Match(&profile.Template{Category: want}, radarSvc)
		fmt.Printf("request %s -> %s\n", want, r.Degree)
	}
	// Output:
	// request http://x#Radar -> exact
	// request http://x#Sensor -> plugin
}
