// Package semdisco reproduces "A Conceptual Service Discovery
// Architecture for Semantic Web Services in Dynamic Environments"
// (Gagnes, Plagemann, Munthe-Kaas; SeNS workshop @ IEEE ICDE 2006) as a
// complete Go system: federated autonomous registries with leasing and
// registry signaling, pluggable service description models dispatched
// by an IP-style next-header field, an OWL-S-style semantic matchmaker
// over a built-from-scratch RDF/RDFS substrate, LAN registry discovery
// (active probe / passive beacon) with a decentralized fallback, and a
// WAN federation layer with selectable query forwarding strategies.
// Registry state is soft by default (leases lapse, providers
// re-announce); an optional write-ahead-log backend with compacted
// snapshots (registryd -wal-dir) makes it crash-safe, recovering every
// durably-acknowledged advert with its absolute lease deadline intact.
//
// See DESIGN.md for the system inventory and experiment index,
// EXPERIMENTS.md for measured results against the paper's claims, and
// examples/ for runnable scenarios. The root-level benchmarks
// (bench_test.go) regenerate every experiment table.
package semdisco
