package federation

import (
	"testing"
	"time"

	"semdisco/internal/wire"
)

// wanPair builds two registries on separate LANs, seeded to each other,
// with the entry registry's gateway result cache enabled.
func wanPair(t *testing.T, entryCfg Config) (*harness, *Registry, *Registry) {
	h := newHarness(t)
	remote := h.addRegistry("lan1", "r2", Config{})
	entryCfg.Seeds = []wire.PeerInfo{peerInfo(remote)}
	entry := h.addRegistry("lan0", "r1", entryCfg)
	h.net.RunFor(time.Second)
	return h, entry, remote
}

func TestResultCacheDisabledByDefault(t *testing.T) {
	h := newHarness(t)
	r := h.addRegistry("lan0", "r1", Config{})
	if r.rcache != nil {
		t.Fatal("result cache should be opt-in")
	}
}

func TestResultCacheAnswersRepeatWithoutFanout(t *testing.T) {
	h, entry, remote := wanPair(t, Config{ResultCacheSize: 32})
	tc := h.addClient("lan0", "c1")
	rc := h.addClient("lan1", "c2")
	adv := h.semAdvert("urn:svc:radar", "Radar", time.Minute)
	h.publish(rc, remote, adv)

	q1 := h.query(tc, entry, "Sensor", 2)
	h.net.RunFor(2 * time.Second)
	if !tc.done[q1] || len(tc.results[q1]) != 1 {
		t.Fatalf("first query: results=%v done=%v", tc.results[q1], tc.done[q1])
	}
	forwarded := entry.Stats().QueriesForwarded
	if forwarded == 0 {
		t.Fatal("first query should have fanned out")
	}

	q2 := h.query(tc, entry, "Sensor", 2)
	h.net.RunFor(2 * time.Second)
	if !tc.done[q2] || len(tc.results[q2]) != 1 || tc.results[q2][0].ID != adv.ID {
		t.Fatalf("second query: results=%v done=%v", tc.results[q2], tc.done[q2])
	}
	if got := entry.Stats().QueriesForwarded; got != forwarded {
		t.Fatalf("repeat query forwarded (%d -> %d); want cache to absorb the fan-out", forwarded, got)
	}
	if entry.rcache.size() != 1 {
		t.Fatalf("rcache size = %d, want 1", entry.rcache.size())
	}
}

func TestResultCacheLeaseBoundsTTL(t *testing.T) {
	h, entry, remote := wanPair(t, Config{ResultCacheSize: 32, ResultCacheMaxTTL: time.Hour})
	tc := h.addClient("lan0", "c1")
	rc := h.addClient("lan1", "c2")
	// 2 s lease: the cached result must not outlive it even though
	// MaxTTL is an hour.
	adv := h.semAdvert("urn:svc:radar", "Radar", 2*time.Second)
	h.publish(rc, remote, adv)

	q1 := h.query(tc, entry, "Sensor", 2)
	h.net.RunFor(time.Second)
	if !tc.done[q1] || len(tc.results[q1]) != 1 {
		t.Fatalf("first query: %v", tc.results[q1])
	}
	forwarded := entry.Stats().QueriesForwarded

	// Past the advert's lease the entry is expired: the next query
	// fans out again and, the advert having lapsed remotely too,
	// returns nothing.
	h.net.RunFor(3 * time.Second)
	q2 := h.query(tc, entry, "Sensor", 2)
	h.net.RunFor(2 * time.Second)
	if entry.Stats().QueriesForwarded == forwarded {
		t.Fatal("query after lease expiry should have fanned out again")
	}
	if len(tc.results[q2]) != 0 {
		t.Fatalf("stale advert served past its lease: %v", tc.results[q2])
	}
}

func TestResultCacheEmptyResultsUseShortTTL(t *testing.T) {
	h, entry, remote := wanPair(t, Config{ResultCacheSize: 32})
	tc := h.addClient("lan0", "c1")
	rc := h.addClient("lan1", "c2")

	// Miss everywhere: the empty remote result is cached briefly.
	q1 := h.query(tc, entry, "Camera", 2)
	h.net.RunFor(time.Second)
	if len(tc.results[q1]) != 0 {
		t.Fatalf("expected no results, got %v", tc.results[q1])
	}

	// A service appears remotely right after.
	adv := h.semAdvert("urn:svc:cam", "Camera", time.Minute)
	h.publish(rc, remote, adv)

	// Past the empty-entry TTL (default 1 s) the query rediscovers it.
	h.net.RunFor(1200 * time.Millisecond)
	q2 := h.query(tc, entry, "Camera", 2)
	h.net.RunFor(2 * time.Second)
	if len(tc.results[q2]) != 1 || tc.results[q2][0].ID != adv.ID {
		t.Fatalf("newly published service not rediscovered after empty-TTL: %v", tc.results[q2])
	}
}

func TestResultCacheNoCacheBypasses(t *testing.T) {
	h, entry, remote := wanPair(t, Config{ResultCacheSize: 32})
	tc := h.addClient("lan0", "c1")
	rc := h.addClient("lan1", "c2")
	adv := h.semAdvert("urn:svc:radar", "Radar", time.Minute)
	h.publish(rc, remote, adv)

	q1 := h.query(tc, entry, "Sensor", 2)
	h.net.RunFor(2 * time.Second)
	if !tc.done[q1] {
		t.Fatal("first query incomplete")
	}
	forwarded := entry.Stats().QueriesForwarded

	q2 := h.query(tc, entry, "Sensor", 2, func(q *wire.Query) { q.NoCache = true })
	h.net.RunFor(2 * time.Second)
	if !tc.done[q2] || len(tc.results[q2]) != 1 {
		t.Fatalf("NoCache query: %v", tc.results[q2])
	}
	if entry.Stats().QueriesForwarded == forwarded {
		t.Fatal("NoCache query should bypass the cache and fan out")
	}
}

// TestResultCacheKeySeparation: queries differing only in response
// control or fan-out shape must not share entries.
func TestResultCacheKeySeparation(t *testing.T) {
	h, entry, remote := wanPair(t, Config{ResultCacheSize: 32})
	tc := h.addClient("lan0", "c1")
	rc := h.addClient("lan1", "c2")
	for _, name := range []string{"a", "b", "c"} {
		h.publish(rc, remote, h.semAdvert("urn:svc:"+name, "Radar", time.Minute))
	}

	q1 := h.query(tc, entry, "Sensor", 2)
	h.net.RunFor(2 * time.Second)
	q2 := h.query(tc, entry, "Sensor", 2, func(q *wire.Query) { q.BestOnly = true })
	h.net.RunFor(2 * time.Second)
	q3 := h.query(tc, entry, "Sensor", 2, func(q *wire.Query) { q.MaxResults = 2 })
	h.net.RunFor(2 * time.Second)
	if len(tc.results[q1]) != 3 || len(tc.results[q2]) != 1 || len(tc.results[q3]) != 2 {
		t.Fatalf("results: %d/%d/%d, want 3/1/2",
			len(tc.results[q1]), len(tc.results[q2]), len(tc.results[q3]))
	}
	if entry.rcache.size() != 3 {
		t.Fatalf("rcache size = %d, want 3 distinct entries", entry.rcache.size())
	}
}
