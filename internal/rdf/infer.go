package rdf

// InferRDFS runs RDFS forward-chaining on the graph in place until
// fixpoint, implementing the entailment rules that semantic service
// matchmaking depends on:
//
//	rdfs5  (p subPropertyOf q) ∧ (q subPropertyOf r) ⇒ (p subPropertyOf r)
//	rdfs7  (s p o) ∧ (p subPropertyOf q)             ⇒ (s q o)
//	rdfs11 (a subClassOf b) ∧ (b subClassOf c)       ⇒ (a subClassOf c)
//	rdfs9  (x type a) ∧ (a subClassOf b)             ⇒ (x type b)
//	rdfs2  (s p o) ∧ (p domain c)                    ⇒ (s type c)
//	rdfs3  (s p o) ∧ (p range c)                     ⇒ (o type c) for non-literal o
//	owl:equivalentClass a≡b                          ⇒ a subClassOf b ∧ b subClassOf a
//
// It returns the number of inferred triples added. The implementation is
// semi-naive (each round only joins against facts derived in the
// previous round where possible) but favors clarity over raw speed: the
// ontologies in this system are thousands of triples, not millions.
func InferRDFS(g *Graph) int {
	total := 0

	// Expand owl:equivalentClass into mutual subClassOf once up front.
	subClassOf := IRI(RDFSSubClassOf)
	for _, t := range g.Match(Wildcard, IRI(OWLEquivClass), Wildcard) {
		if t.O.IsLiteral() {
			continue
		}
		if g.MustAdd(Triple{t.S, subClassOf, t.O}) {
			total++
		}
		if g.MustAdd(Triple{t.O, subClassOf, t.S}) {
			total++
		}
	}

	for {
		added := 0
		added += inferTransitive(g, RDFSSubPropOf)
		added += inferSubProperty(g)
		added += inferTransitive(g, RDFSSubClassOf)
		added += inferTypes(g)
		added += inferDomainRange(g)
		total += added
		if added == 0 {
			return total
		}
	}
}

// inferTransitive closes the given predicate transitively (rdfs5/rdfs11).
func inferTransitive(g *Graph, pred string) int {
	p := IRI(pred)
	added := 0
	// Repeated single-step join until no change; each pass is O(E·avg-out).
	for {
		n := 0
		for _, t := range g.Match(Wildcard, p, Wildcard) {
			for _, next := range g.Objects(t.O, p) {
				if next == t.S { // skip trivial cycles back to self
					continue
				}
				if g.MustAdd(Triple{t.S, p, next}) {
					n++
				}
			}
		}
		added += n
		if n == 0 {
			return added
		}
	}
}

// inferSubProperty applies rdfs7.
func inferSubProperty(g *Graph) int {
	sub := IRI(RDFSSubPropOf)
	added := 0
	for _, sp := range g.Match(Wildcard, sub, Wildcard) {
		if !sp.S.IsIRI() || !sp.O.IsIRI() {
			continue
		}
		for _, t := range g.Match(Wildcard, sp.S, Wildcard) {
			if g.MustAdd(Triple{t.S, IRI(sp.O.Value), t.O}) {
				added++
			}
		}
	}
	return added
}

// inferTypes applies rdfs9.
func inferTypes(g *Graph) int {
	typ := IRI(RDFType)
	sub := IRI(RDFSSubClassOf)
	added := 0
	for _, t := range g.Match(Wildcard, typ, Wildcard) {
		for _, super := range g.Objects(t.O, sub) {
			if super.IsLiteral() {
				continue
			}
			if g.MustAdd(Triple{t.S, typ, super}) {
				added++
			}
		}
	}
	return added
}

// inferDomainRange applies rdfs2 and rdfs3.
func inferDomainRange(g *Graph) int {
	typ := IRI(RDFType)
	added := 0
	for _, dom := range g.Match(Wildcard, IRI(RDFSDomain), Wildcard) {
		if !dom.S.IsIRI() || dom.O.IsLiteral() {
			continue
		}
		for _, t := range g.Match(Wildcard, IRI(dom.S.Value), Wildcard) {
			if g.MustAdd(Triple{t.S, typ, dom.O}) {
				added++
			}
		}
	}
	for _, rng := range g.Match(Wildcard, IRI(RDFSRange), Wildcard) {
		if !rng.S.IsIRI() || rng.O.IsLiteral() {
			continue
		}
		for _, t := range g.Match(Wildcard, IRI(rng.S.Value), Wildcard) {
			if t.O.IsLiteral() {
				continue
			}
			if g.MustAdd(Triple{t.O, typ, rng.O}) {
				added++
			}
		}
	}
	return added
}
