package registry

// The WAL backend: an append-only, CRC32-framed log of registry
// mutations with periodic compacted snapshots, implementing the Backend
// boundary declared in store.go.
//
// On-disk layout (all files live in one directory):
//
//	wal-%016x.log    log segment; the hex is the LSN of its first record
//	snap-%016x.snap  compacted snapshot covering every LSN ≤ the hex
//
// Every frame — log record or snapshot entry — is
//
//	[4B LE payload length][4B LE CRC32(payload)][payload]
//
// and every payload starts with a record-type byte followed by the
// record's LSN as a uvarint (0 for snapshot entries). Advertisements
// inside records use wire.AppendAdvert, the exact encoding of the
// protocol messages, so the durable format can never drift from the
// wire format. A torn tail — a frame cut short or failing its CRC —
// marks the end of replayable history: recovery stops there, counts
// the frame in RecoveryStats.TornFrames, and opens a fresh segment
// rather than appending after garbage.
//
// Recovery is exact state-machine replay: records are re-applied
// through the real Store methods (Publish, Renew, Remove, Subscribe,
// ExpireThrough, ...) with the wall-clock instants recorded at append
// time, so lease deadlines, the byService map, the token interner and
// the subscription posting lists are all rebuilt by the same code that
// built them live. Because expiry sweeps are themselves logged
// (AppendExpire/AppendPruneSubs), purge timing — which decides whether
// a re-publish is a fresh insert or a stale-version reject, and whether
// a late renewal resurrects an advert — replays exactly too. For a
// sequential history the recovered store is bit-identical to the
// pre-crash store; under concurrency the log records one valid
// linearization of the racing operations (per-key order always matches,
// because records are appended under the same lock that ordered the
// mutation).
//
// Snapshots are offline compactions: the writer rotates to a fresh
// segment, then a background goroutine replays the previous snapshot
// plus the sealed segments into a throwaway store built by
// WALConfig.NewStore and dumps its durable state — never touching the
// live store, so publishes proceed at full speed during compaction.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"semdisco/internal/codec"
	"semdisco/internal/describe"
	"semdisco/internal/uuid"
	"semdisco/internal/wire"
)

// Record types. recPublish/recSubscribe double as snapshot entry types
// (recSnapAdvert/recSnapSub share their payload layout), so replay and
// snapshot load run through one decoder.
const (
	recPublish byte = iota + 1
	recRenew
	recRemove
	recSubscribe
	recUnsubscribe
	recExpire
	recPruneSubs
	recSnapHeader
	recSnapAdvert
	recSnapSub
	recSnapTrailer
)

const (
	walFrameHeader = 8       // 4B length + 4B CRC32
	walMaxFrame    = 1 << 26 // frames beyond 64 MB are corruption
	snapFormatV1   = 1
	walPrefix      = "wal-"
	walSuffix      = ".log"
	snapPrefix     = "snap-"
	snapSuffix     = ".snap"

	// defaultSnapshotEvery is the record count between compactions when
	// WALConfig.SnapshotEvery is zero: large enough that compaction I/O
	// is rare, small enough that replay after a crash stays in the
	// hundreds of milliseconds.
	defaultSnapshotEvery = 100_000
)

// ErrWALClosed is returned by appends and syncs after Close (or after a
// simulated crash in tests).
var ErrWALClosed = errors.New("registry: wal closed")

// WALConfig configures Recover.
type WALConfig struct {
	// Dir is the log directory; created if missing. Required.
	Dir string
	// Fsync makes the durability barrier a real fsync; false flushes to
	// the OS only (data survives a process crash but not a machine
	// crash). Group commit batches concurrent barriers either way.
	Fsync bool
	// SnapshotEvery is the appended-record count between compacted
	// snapshots; zero means 100k, negative disables snapshots (the log
	// grows without bound — tests only).
	SnapshotEvery int
	// NewStore builds an empty store with the production options
	// (models, lease policy, shard count, ...). Recovery replays into
	// one, and every snapshot compaction replays into a fresh one; the
	// factory must return a store with no backend attached. Required.
	NewStore func() *Store
	// Now supplies the boot wall clock for the post-replay expiry sweep;
	// nil means time.Now. Simulated-clock tests must set it, or the real
	// clock would purge every zero-epoch lease at boot.
	Now func() time.Time
	// AppendStreams shards the append path into this many independently
	// locked staging streams, routed by the same ID prefix the store uses
	// to pick its shard — so concurrent mutations on different registry
	// stripes stop serializing on one WAL lock. 0 or 1 (the default)
	// keeps the single-stream append path; values above 1 are rounded up
	// to a power of two. Any value is correct against any store shard
	// count (stripes sharing a stream contend but each stream stays
	// LSN-ascending, which is all the drain merge needs); matching the
	// shard count merely maximizes append concurrency. The on-disk
	// layout is identical either way: drains merge the staged frames
	// back into strict LSN order, so a directory written by one mode
	// recovers under the other.
	AppendStreams int
}

// RecoveryStats reports what Recover found and rebuilt.
type RecoveryStats struct {
	SnapshotLSN     uint64        // highest LSN covered by the loaded snapshot (0 = none)
	SnapshotAdverts int           // adverts restored from the snapshot
	SnapshotSubs    int           // standing queries restored from the snapshot
	Replayed        int           // log records applied after the snapshot
	TornFrames      int           // torn/corrupt frames discarded at segment tails
	Adverts         int           // adverts live after replay and the boot expiry sweep
	Subs            int           // standing queries live after replay
	Elapsed         time.Duration // total recovery wall time
}

// WAL is the durable Backend: one instance owns a log directory.
// Construct via Recover; attach to a store only through it.
type WAL struct {
	dir       string
	fsyncOn   bool
	snapEvery int
	newStore  func() *Store

	// mu guards the file state. Append* calls hold it only long enough
	// for a buffered write (the callers hold store locks), so nothing
	// under mu may block on the disk except the group-commit flush and
	// the rare segment rotation.
	mu         sync.Mutex
	f          *os.File
	bw         *bufio.Writer
	lsn        uint64   // last assigned LSN
	segStart   uint64   // first LSN of the open segment
	sealed     []string // closed segments awaiting compaction, oldest first
	snapPath   string   // current snapshot file ("" = none)
	snapLSN    uint64   // LSN covered by snapPath
	sinceSnap  int      // records appended since the last rotation
	compacting bool
	compactCh  chan struct{} // closed when the in-flight compaction finishes
	appendErr  error         // sticky: once a write fails, durability is gone
	closed     bool

	// Group commit. A caller needing LSN n durable becomes the leader if
	// no flush is in flight, flushes+fsyncs everything appended so far,
	// and wakes the waiters; late arrivals find durable already past
	// their LSN and pay nothing — that is the fsync batching.
	cmu     sync.Mutex
	cond    *sync.Cond
	durable uint64
	syncing bool
	syncErr error // sticky: a failed barrier poisons all later ones

	// Sharded append mode (WALConfig.AppendStreams > 1). Appenders take
	// rot.RLock, then — under the mutex of the stream picked by the
	// record's ID — draw an LSN from alsn and stage their frame, so
	// appends on different registry stripes never touch the same lock.
	// Drawing the LSN under the stream mutex is what keeps each stream
	// LSN-ascending even when two appenders share one (more stripes than
	// streams); the drain merge depends on that. Drains (group-commit
	// barriers, rotation, Close) take rot.Lock, which excludes every
	// appender, and merge the staged frames into the segment writer in
	// LSN order — restoring the exact single-stream on-disk layout.
	// The last stream is reserved for keyless records (expiry and prune
	// sweeps), serialized against each other but never against keyed
	// appenders. Lock order: rot before mu before stream.mu; mu never
	// acquires the others.
	rot        sync.RWMutex
	streams    []*walStream // nil = single-stream mode; last entry is the global stream
	streamMask uint32
	alsn       atomic.Uint64 // last assigned LSN (sharded mode)
	sinceSnapA atomic.Int64  // sharded twin of sinceSnap
	rotating   atomic.Bool   // a sharded rotation goroutine is in flight
	closedA    atomic.Bool   // sharded twin of closed (checked lock-free)

	wg sync.WaitGroup
}

// walStream is one staging buffer of the sharded append path: framed
// records, LSN-ascending, waiting for the next drain. The mutex only
// arbitrates between appenders sharing a stripe; drains hold the rot
// write lock instead, which excludes all appenders at once.
type walStream struct {
	mu  sync.Mutex
	buf []byte
}

// Recover opens (or initializes) a WAL directory, rebuilds a store from
// the newest loadable snapshot plus the log tail, attaches the WAL as
// the store's backend, and runs the boot expiry sweep for everything
// that lapsed while the process was down. The returned store is ready
// to serve; the caller owns Close.
func Recover(cfg WALConfig) (*Store, *WAL, RecoveryStats, error) {
	start := time.Now()
	var stats RecoveryStats
	if cfg.Dir == "" {
		return nil, nil, stats, errors.New("registry: WALConfig.Dir is required")
	}
	if cfg.NewStore == nil {
		return nil, nil, stats, errors.New("registry: WALConfig.NewStore is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, nil, stats, fmt.Errorf("registry: wal dir: %w", err)
	}
	snaps, segs, err := scanWALDir(cfg.Dir)
	if err != nil {
		return nil, nil, stats, err
	}

	// Newest snapshot that loads cleanly wins; a corrupt one falls back
	// to its predecessor (the extra log replay reproduces the gap).
	st := cfg.NewStore()
	if st == nil || st.backend != nil {
		return nil, nil, stats, errors.New("registry: NewStore must build a backend-less store")
	}
	var snapPath string
	var snapLSN uint64
	for i := len(snaps) - 1; i >= 0; i-- {
		trial := cfg.NewStore()
		lsn, nAdv, nSub, err := loadSnapshot(trial, snaps[i].path)
		if err != nil {
			trial.discardOffline()
			continue
		}
		st.discardOffline()
		st, snapPath, snapLSN = trial, snaps[i].path, lsn
		stats.SnapshotLSN = lsn
		stats.SnapshotAdverts = nAdv
		stats.SnapshotSubs = nSub
		break
	}

	// Replay the log tail in LSN order: segments are named by their
	// first LSN, so directory order is log order. A torn frame ends one
	// segment's replayable records (nothing valid ever follows a torn
	// frame within a segment — writes are sequential), but later
	// segments still replay: a restart after a crash leaves the torn
	// segment behind and appends to a fresh one after it.
	last := snapLSN
	for _, seg := range segs {
		segLast, applied, torn, err := replaySegment(st, seg.path, snapLSN)
		if err != nil {
			st.discardOffline()
			return nil, nil, stats, fmt.Errorf("registry: replay %s: %w", filepath.Base(seg.path), err)
		}
		stats.Replayed += applied
		stats.TornFrames += torn
		if segLast > last {
			last = segLast
		}
	}
	mWALReplayed.Add(uint64(stats.Replayed))
	mWALTorn.Add(uint64(stats.TornFrames))

	w := &WAL{
		dir:       cfg.Dir,
		fsyncOn:   cfg.Fsync,
		snapEvery: cfg.SnapshotEvery,
		newStore:  cfg.NewStore,
		snapPath:  snapPath,
		snapLSN:   snapLSN,
		lsn:       last,
		durable:   last,
	}
	if w.snapEvery == 0 {
		w.snapEvery = defaultSnapshotEvery
	}
	if cfg.AppendStreams > 1 {
		n := 1
		for n < cfg.AppendStreams {
			n <<= 1
		}
		// n keyed streams plus one reserved for global (keyless) records.
		w.streams = make([]*walStream, n+1)
		for i := range w.streams {
			w.streams[i] = new(walStream)
		}
		w.streamMask = uint32(n - 1)
		w.alsn.Store(last)
	}
	w.cond = sync.NewCond(&w.cmu)
	for _, seg := range segs {
		w.sealed = append(w.sealed, seg.path)
	}
	// Replayed-but-uncompacted records count against the snapshot
	// budget, so a crash loop can't grow the log without bound.
	w.sinceSnap = stats.Replayed
	if err := w.openSegmentLocked(last + 1); err != nil {
		st.discardOffline()
		return nil, nil, stats, err
	}

	// The store is current as of the crash; everything that lapsed while
	// the process was down is purged now — through the log, so a later
	// re-publish replays as the fresh insert it was.
	st.backend = w
	now := time.Now()
	if cfg.Now != nil {
		now = cfg.Now()
	}
	st.ExpireThrough(now)
	st.PruneSubscriptions(now)

	stats.Adverts = st.Len()
	stats.Subs = st.NumSubscriptions()
	stats.Elapsed = time.Since(start)
	return st, w, stats, nil
}

// namedLSN is one directory entry parsed from its hex-LSN file name.
type namedLSN struct {
	path string
	lsn  uint64
}

// scanWALDir lists snapshots and segments sorted by LSN, ignoring
// temp files and anything it did not name itself.
func scanWALDir(dir string) (snaps, segs []namedLSN, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("registry: wal dir: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if hex, ok := cutAffixes(name, walPrefix, walSuffix); ok {
			if lsn, err := strconv.ParseUint(hex, 16, 64); err == nil {
				segs = append(segs, namedLSN{path: filepath.Join(dir, name), lsn: lsn})
			}
		} else if hex, ok := cutAffixes(name, snapPrefix, snapSuffix); ok {
			if lsn, err := strconv.ParseUint(hex, 16, 64); err == nil {
				snaps = append(snaps, namedLSN{path: filepath.Join(dir, name), lsn: lsn})
			}
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].lsn < snaps[j].lsn })
	sort.Slice(segs, func(i, j int) bool { return segs[i].lsn < segs[j].lsn })
	return snaps, segs, nil
}

func cutAffixes(s, prefix, suffix string) (string, bool) {
	rest, ok := strings.CutPrefix(s, prefix)
	if !ok {
		return "", false
	}
	return strings.CutSuffix(rest, suffix)
}

func segName(firstLSN uint64) string { return fmt.Sprintf("%s%016x%s", walPrefix, firstLSN, walSuffix) }
func snapName(upTo uint64) string    { return fmt.Sprintf("%s%016x%s", snapPrefix, upTo, snapSuffix) }

// openSegmentLocked starts a fresh segment whose first record will be
// firstLSN. O_TRUNC handles the one legal collision: a segment created
// by a previous run that crashed before writing any complete frame.
func (w *WAL) openSegmentLocked(firstLSN uint64) error {
	f, err := os.OpenFile(filepath.Join(w.dir, segName(firstLSN)), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("registry: wal segment: %w", err)
	}
	w.f = f
	w.bw = bufio.NewWriterSize(f, 1<<16)
	w.segStart = firstLSN
	mWALSegments.Set(int64(len(w.sealed) + 1))
	return nil
}

// streamKey routes an ID-keyed record to its append stream with the
// same prefix the store's shardFor uses, so the goroutine holding a
// registry stripe's lock is usually the only appender on that stream
// (shards sharing a stream merely contend, they stay correct).
func streamKey(id uuid.UUID) uint32 { return binary.BigEndian.Uint32(id[:4]) }

// append assigns the next LSN and buffers one framed record; build
// writes the payload (type byte, LSN, fields). The caller holds the
// store lock that ordered the mutation, so log order equals apply
// order per key; nothing here may touch the disk beyond bufio.
func (w *WAL) append(key uint32, build func(lsn uint64, b *codec.Buffer)) uint64 {
	if w.streams != nil {
		return w.appendSharded(int(key&w.streamMask), build)
	}
	return w.appendSingle(build)
}

// appendGlobal buffers a record with no routing key (expiry and prune
// sweeps). In sharded mode these get the reserved last stream: global
// records serialize against each other there, and the LSN merge at
// drain time orders them against every keyed record.
func (w *WAL) appendGlobal(build func(lsn uint64, b *codec.Buffer)) uint64 {
	if w.streams != nil {
		return w.appendSharded(len(w.streams)-1, build)
	}
	return w.appendSingle(build)
}

// appendSingle is the single-stream append path, serialized on w.mu.
func (w *WAL) appendSingle(build func(lsn uint64, b *codec.Buffer)) uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.lsn++
	lsn := w.lsn
	if w.closed {
		if w.appendErr == nil {
			w.appendErr = ErrWALClosed
		}
		return lsn
	}
	b := walBufPool.Get().(*codec.Buffer)
	b.Reset()
	build(lsn, b)
	payload := b.Bytes()
	var hdr [walFrameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if w.appendErr == nil {
		if _, err := w.bw.Write(hdr[:]); err != nil {
			w.appendErr = err
		}
	}
	if w.appendErr == nil {
		if _, err := w.bw.Write(payload); err != nil {
			w.appendErr = err
		}
	}
	mWALAppends.Inc()
	mWALBytes.Add(uint64(walFrameHeader + len(payload)))
	walBufPool.Put(b)
	w.sinceSnap++
	if w.snapEvery > 0 && w.sinceSnap >= w.snapEvery && !w.compacting && w.appendErr == nil {
		w.rotateAndCompactLocked()
	}
	return lsn
}

var walBufPool = sync.Pool{New: func() any { return new(codec.Buffer) }}

// appendSharded is the contention-free append path: an LSN from the
// atomic counter, the frame staged under the stream's own lock. The LSN
// is drawn while that lock is held — two appenders racing on a shared
// stream (stripes mapped to the same stream, never globals vs keyed)
// would otherwise stage frames inverted, and the drain merge, which
// trusts each stream to be LSN-ascending, would write a log that
// replays an expiry sweep ahead of a renewal it observed. Staging is
// pure memory, so it cannot fail; a record staged after Close or crash
// is simply never drained — the same loss a real kill inflicts on an
// unflushed bufio buffer, and by then appendErr already reports the WAL
// unusable to Sync callers.
func (w *WAL) appendSharded(idx int, build func(lsn uint64, b *codec.Buffer)) uint64 {
	b := walBufPool.Get().(*codec.Buffer)
	w.rot.RLock()
	s := w.streams[idx]
	s.mu.Lock()
	lsn := w.alsn.Add(1)
	if w.closedA.Load() {
		s.mu.Unlock()
		w.rot.RUnlock()
		walBufPool.Put(b)
		w.mu.Lock()
		if w.appendErr == nil {
			w.appendErr = ErrWALClosed
		}
		w.mu.Unlock()
		return lsn
	}
	b.Reset()
	build(lsn, b)
	payload := b.Bytes()
	var hdr [walFrameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	s.buf = append(s.buf, hdr[:]...)
	s.buf = append(s.buf, payload...)
	s.mu.Unlock()
	w.rot.RUnlock()
	walBufPool.Put(b)
	mWALAppends.Inc()
	mWALBytes.Add(uint64(walFrameHeader + len(payload)))
	if w.snapEvery > 0 && w.sinceSnapA.Add(1) >= int64(w.snapEvery) && w.rotating.CompareAndSwap(false, true) {
		w.wg.Add(1)
		go w.rotateSharded()
	}
	return lsn
}

// drainStreamsLocked merges every staged frame into the segment writer
// in strict LSN order (each stream is already LSN-ascending, so this is
// a K-way head merge) and advances w.lsn to cover them. The caller
// holds rot exclusively — no appender is in flight, so every assigned
// LSN is staged and alsn cannot move — which is what lets rotation
// name segments and snapshots by a watermark no straggler can undercut.
func (w *WAL) drainStreamsLocked() {
	w.mu.Lock()
	defer w.mu.Unlock()
	heads := make([][]byte, 0, len(w.streams))
	for _, s := range w.streams {
		// No s.mu needed: rot excludes appenders, and the RWMutex hand-off
		// orders their writes before our reads.
		if len(s.buf) > 0 {
			heads = append(heads, s.buf)
		}
	}
	for {
		best := -1
		var bestLSN uint64
		for i, h := range heads {
			if len(h) == 0 {
				continue
			}
			if lsn := stagedFrameLSN(h); best < 0 || lsn < bestLSN {
				best, bestLSN = i, lsn
			}
		}
		if best < 0 {
			break
		}
		n := walFrameHeader + int(binary.LittleEndian.Uint32(heads[best][0:4]))
		if w.appendErr == nil {
			if _, err := w.bw.Write(heads[best][:n]); err != nil {
				w.appendErr = err
			}
		}
		heads[best] = heads[best][n:]
	}
	for _, s := range w.streams {
		s.buf = s.buf[:0]
	}
	w.lsn = w.alsn.Load()
	mWALStreamDrains.Inc()
}

// stagedFrameLSN reads the LSN of the first staged frame: past the
// 8-byte frame header and the record-type byte sits the LSN uvarint.
func stagedFrameLSN(frame []byte) uint64 {
	lsn, _ := binary.Uvarint(frame[walFrameHeader+1:])
	return lsn
}

// rotateSharded is the sharded twin of the rotation trigger in append:
// it runs on its own goroutine because an appender holds rot.RLock and
// cannot upgrade. Holding rot across the drain and the seal guarantees
// the sealed segment holds exactly the LSNs the compaction will cover.
func (w *WAL) rotateSharded() {
	defer w.rotating.Store(false)
	defer w.wg.Done()
	w.rot.Lock()
	defer w.rot.Unlock()
	w.drainStreamsLocked()
	w.sinceSnapA.Store(0)
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed || w.compacting || w.appendErr != nil {
		return
	}
	w.rotateAndCompactLocked()
}

// AppendPublish implements Backend.
func (w *WAL) AppendPublish(adv wire.Advertisement, granted time.Duration, now time.Time) uint64 {
	return w.append(streamKey(adv.ID), func(lsn uint64, b *codec.Buffer) {
		putAdvertRecord(b, recPublish, lsn, adv, granted, now)
	})
}

// AppendRenew implements Backend.
func (w *WAL) AppendRenew(id uuid.UUID, now time.Time) uint64 {
	return w.append(streamKey(id), func(lsn uint64, b *codec.Buffer) {
		b.Byte(recRenew)
		b.Uvarint(lsn)
		b.Bytes16(id)
		b.Varint(now.UnixNano())
	})
}

// AppendRemove implements Backend.
func (w *WAL) AppendRemove(id uuid.UUID) uint64 {
	return w.append(streamKey(id), func(lsn uint64, b *codec.Buffer) {
		b.Byte(recRemove)
		b.Uvarint(lsn)
		b.Bytes16(id)
	})
}

// AppendSubscribe implements Backend.
func (w *WAL) AppendSubscribe(id uuid.UUID, kind describe.Kind, payload []byte, notifyAddr string, expires time.Time) uint64 {
	return w.append(streamKey(id), func(lsn uint64, b *codec.Buffer) {
		putSubRecord(b, recSubscribe, lsn, id, kind, payload, notifyAddr, expires)
	})
}

// AppendUnsubscribe implements Backend.
func (w *WAL) AppendUnsubscribe(id uuid.UUID) uint64 {
	return w.append(streamKey(id), func(lsn uint64, b *codec.Buffer) {
		b.Byte(recUnsubscribe)
		b.Uvarint(lsn)
		b.Bytes16(id)
	})
}

// AppendExpire implements Backend.
func (w *WAL) AppendExpire(through time.Time) uint64 {
	return w.appendGlobal(func(lsn uint64, b *codec.Buffer) {
		b.Byte(recExpire)
		b.Uvarint(lsn)
		b.Varint(through.UnixNano())
	})
}

// AppendPruneSubs implements Backend.
func (w *WAL) AppendPruneSubs(now time.Time) uint64 {
	return w.appendGlobal(func(lsn uint64, b *codec.Buffer) {
		b.Byte(recPruneSubs)
		b.Uvarint(lsn)
		b.Varint(now.UnixNano())
	})
}

// putAdvertRecord encodes a publish-shaped record (also the snapshot
// advert entry). The granted duration and instant let replay re-grant
// the exact absolute lease deadline.
func putAdvertRecord(b *codec.Buffer, typ byte, lsn uint64, adv wire.Advertisement, granted time.Duration, now time.Time) {
	b.Byte(typ)
	b.Uvarint(lsn)
	wire.AppendAdvert(b, adv)
	b.Uvarint(uint64(granted / time.Millisecond))
	b.Varint(now.UnixNano())
}

// putSubRecord encodes a subscribe-shaped record (also the snapshot
// subscription entry). The zero expires time (no expiry) is carried by
// the presence flag — it has no representable UnixNano.
func putSubRecord(b *codec.Buffer, typ byte, lsn uint64, id uuid.UUID, kind describe.Kind, payload []byte, notifyAddr string, expires time.Time) {
	b.Byte(typ)
	b.Uvarint(lsn)
	b.Bytes16(id)
	b.Byte(byte(kind))
	b.BytesVar(payload)
	b.String(notifyAddr)
	b.Bool(!expires.IsZero())
	if !expires.IsZero() {
		b.Varint(expires.UnixNano())
	}
}

// Sync implements Backend: it blocks until lsn is durable, batching
// concurrent callers behind one flush+fsync (group commit).
func (w *WAL) Sync(lsn uint64) error {
	w.cmu.Lock()
	defer w.cmu.Unlock()
	waited := false
	for {
		if w.syncErr != nil {
			return w.syncErr
		}
		if w.durable >= lsn {
			if waited {
				mWALSyncShared.Inc()
			}
			return nil
		}
		if w.syncing {
			// A barrier is in flight; it may already cover our LSN.
			waited = true
			w.cond.Wait()
			continue
		}
		w.syncing = true
		w.cmu.Unlock()
		target, err := w.flushBarrier()
		w.cmu.Lock()
		w.syncing = false
		if err != nil {
			w.syncErr = err
		} else if target > w.durable {
			w.durable = target
		}
		w.cond.Broadcast()
	}
}

// flushBarrier pushes everything appended so far to the disk and
// returns the highest LSN it made durable. Only the bufio flush runs
// under the append lock; the fsync does not — later appends land in
// the bufio buffer, not the descriptor, so they cannot extend what
// this barrier persists, and publishers keep appending while the disk
// syncs. That overlap is what lets group commit batch them.
func (w *WAL) flushBarrier() (uint64, error) {
	if w.streams != nil {
		// Move the staged frames into the segment writer first; the rot
		// lock is dropped before the flush and fsync below, so appenders
		// stage freely again while the disk syncs — sharded group commit.
		w.rot.Lock()
		w.drainStreamsLocked()
		w.rot.Unlock()
	}
	w.mu.Lock()
	if w.appendErr != nil {
		w.mu.Unlock()
		return 0, w.appendErr
	}
	target := w.lsn
	if err := w.bw.Flush(); err != nil {
		w.appendErr = err
		w.mu.Unlock()
		return 0, err
	}
	f := w.f
	w.mu.Unlock()
	if w.fsyncOn {
		start := time.Now()
		if err := f.Sync(); err != nil {
			// Losing the race to a concurrent seal is benign: rotation
			// and Close both fsync the segment before closing it, so
			// the flushed records are durable, not lost. (A simulated
			// crash closes without syncing, but by then the flush above
			// already reached the descriptor, which is all a process
			// kill preserves anyway.)
			if !errors.Is(err, os.ErrClosed) {
				w.mu.Lock()
				w.appendErr = err
				w.mu.Unlock()
				return 0, err
			}
		} else {
			mWALFsyncLatency.Observe(time.Since(start).Microseconds())
		}
	}
	mWALFsyncs.Inc()
	return target, nil
}

// rotateAndCompactLocked seals the open segment (flush, fsync, close)
// and kicks off a background compaction covering everything up to the
// last appended LSN. The caller holds w.mu; at most one compaction
// runs at a time.
func (w *WAL) rotateAndCompactLocked() {
	if err := w.bw.Flush(); err != nil {
		w.appendErr = err
		return
	}
	if err := w.f.Sync(); err != nil {
		w.appendErr = err
		return
	}
	if err := w.f.Close(); err != nil {
		w.appendErr = err
		return
	}
	w.sealed = append(w.sealed, filepath.Join(w.dir, segName(w.segStart)))
	upTo := w.lsn
	if err := w.openSegmentLocked(upTo + 1); err != nil {
		w.appendErr = err
		return
	}
	w.sinceSnap = 0
	// Everything in the sealed segments is on the disk now, so the
	// durable watermark may advance past them.
	w.cmu.Lock()
	if upTo > w.durable {
		w.durable = upTo
	}
	w.cond.Broadcast()
	w.cmu.Unlock()
	w.compacting = true
	w.compactCh = make(chan struct{})
	prevSnap, sealed, done := w.snapPath, append([]string(nil), w.sealed...), w.compactCh
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		defer close(done)
		w.compact(prevSnap, sealed, upTo)
	}()
}

// compact replays prevSnap + the sealed segments into a throwaway
// store, writes the compacted snapshot, and retires the inputs. It
// runs without any live-store or WAL lock; a failure keeps every input
// file for the next attempt.
func (w *WAL) compact(prevSnap string, sealed []string, upTo uint64) {
	st := w.newStore()
	defer st.discardOffline()
	var base uint64
	if prevSnap != "" {
		lsn, _, _, err := loadSnapshot(st, prevSnap)
		if err != nil {
			w.compactFailed()
			return
		}
		base = lsn
	}
	for _, seg := range sealed {
		// Torn tails are tolerated exactly as recovery tolerates them: a
		// segment inherited from a crashed run keeps its torn frame, and
		// the records it lost were never acknowledged.
		if _, _, _, err := replaySegment(st, seg, base); err != nil {
			w.compactFailed()
			return
		}
	}
	path, size, nAdv, err := writeSnapshot(w.dir, st, upTo)
	if err != nil {
		w.compactFailed()
		return
	}
	for _, seg := range sealed {
		os.Remove(seg)
	}
	if prevSnap != "" && prevSnap != path {
		os.Remove(prevSnap)
	}
	w.mu.Lock()
	w.snapPath = path
	w.snapLSN = upTo
	w.sealed = w.sealed[len(sealed):]
	w.compacting = false
	mWALSegments.Set(int64(len(w.sealed) + 1))
	w.mu.Unlock()
	mSnapshotWrites.Inc()
	mSnapshotAdverts.Set(int64(nAdv))
	mSnapshotBytes.Set(size)
}

func (w *WAL) compactFailed() {
	mSnapshotErrors.Inc()
	w.mu.Lock()
	w.compacting = false
	w.mu.Unlock()
}

// Snapshot forces a synchronous rotate-and-compact; registryd calls it
// on clean shutdown and the recovery benchmarks use it to stage the
// snapshot-present case. It waits out any compaction already in
// flight.
func (w *WAL) Snapshot() error {
	if w.streams != nil {
		// Bring everything staged so far under w.lsn, so the rotation
		// below covers it. Records staged by appends racing this call
		// simply land in the next segment.
		w.rot.Lock()
		w.drainStreamsLocked()
		w.rot.Unlock()
	}
	for {
		w.mu.Lock()
		if w.closed {
			w.mu.Unlock()
			return ErrWALClosed
		}
		if w.appendErr != nil {
			err := w.appendErr
			w.mu.Unlock()
			return err
		}
		if !w.compacting {
			break
		}
		ch := w.compactCh
		w.mu.Unlock()
		<-ch
	}
	if w.lsn <= w.snapLSN && len(w.sealed) == 0 {
		w.mu.Unlock()
		return nil // nothing new since the last snapshot
	}
	upTo := w.lsn
	w.rotateAndCompactLocked()
	err := w.appendErr
	ch := w.compactCh
	compacting := w.compacting
	w.mu.Unlock()
	if err != nil {
		return err
	}
	if compacting {
		<-ch
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.snapLSN < upTo {
		return errors.New("registry: snapshot compaction failed")
	}
	return nil
}

// Close flushes, fsyncs and closes the log. Mutating the store after
// Close loses those mutations' records (appends fail sticky).
func (w *WAL) Close() error {
	if w.streams != nil {
		// Stop new stages, then move everything already staged into the
		// segment writer so the final flush below persists it.
		w.rot.Lock()
		w.closedA.Store(true)
		w.drainStreamsLocked()
		w.rot.Unlock()
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		w.wg.Wait()
		return nil
	}
	w.closed = true
	err := w.appendErr
	if w.bw != nil {
		if e := w.bw.Flush(); err == nil {
			err = e
		}
		if e := w.f.Sync(); err == nil {
			err = e
		}
		if e := w.f.Close(); err == nil {
			err = e
		}
	}
	w.mu.Unlock()
	w.cmu.Lock()
	if w.syncErr == nil {
		if err != nil {
			w.syncErr = err
		} else {
			w.durable = w.lsn
		}
	}
	w.cond.Broadcast()
	w.cmu.Unlock()
	w.wg.Wait()
	return err
}

// crash simulates a process kill for tests: the descriptor is closed
// with the bufio buffer unflushed, losing exactly the records a real
// crash would lose (including, possibly, a partially flushed frame —
// the torn tail recovery must tolerate).
func (w *WAL) crash() {
	// Sharded mode: the staged stream buffers are deliberately NOT
	// drained — a kill loses them exactly as it loses an unflushed
	// bufio buffer, and none of them were ever acknowledged durable.
	w.closedA.Store(true)
	w.mu.Lock()
	w.closed = true
	if w.appendErr == nil {
		w.appendErr = ErrWALClosed
	}
	if w.f != nil {
		w.f.Close()
	}
	w.mu.Unlock()
	w.cmu.Lock()
	if w.syncErr == nil {
		w.syncErr = ErrWALClosed
	}
	w.cond.Broadcast()
	w.cmu.Unlock()
	w.wg.Wait()
}

// replaySegment applies every record with LSN > after to st, in log
// order. A torn tail (short frame or CRC mismatch) ends the segment
// without error; corruption inside a CRC-valid frame is a real error.
func replaySegment(st *Store, path string, after uint64) (last uint64, applied, torn int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, 0, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	for {
		frame, terr, rerr := readFrame(br)
		if rerr == io.EOF {
			return last, applied, torn, nil
		}
		if terr {
			return last, applied, torn + 1, nil
		}
		if rerr != nil {
			return last, applied, torn, rerr
		}
		lsn, aerr := st.applyRecord(frame, after)
		if aerr != nil {
			return last, applied, torn, fmt.Errorf("lsn %d: %w", lsn, aerr)
		}
		if lsn > last {
			last = lsn
		}
		if lsn > after {
			applied++
		}
	}
}

// readFrame reads one length+CRC framed payload. torn=true flags a
// frame cut short or failing its checksum — the crash signature.
func readFrame(br *bufio.Reader) (frame []byte, torn bool, err error) {
	var hdr [walFrameHeader]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, false, io.EOF
		}
		return nil, true, nil // header cut short
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	if n == 0 || n > walMaxFrame {
		return nil, true, nil // garbage length: treat as torn
	}
	frame = make([]byte, n)
	if _, err := io.ReadFull(br, frame); err != nil {
		return nil, true, nil // payload cut short
	}
	if crc32.ChecksumIEEE(frame) != sum {
		return nil, true, nil
	}
	return frame, false, nil
}

// applyRecord replays one decoded frame through the real store
// mutation methods, skipping records at or below the after watermark
// (already covered by the snapshot). Stale-version publishes and
// renews/removes of unknown IDs are tolerated: under concurrency the
// log is one valid linearization and such records are no-ops in it.
func (s *Store) applyRecord(frame []byte, after uint64) (uint64, error) {
	r := codec.NewReader(frame)
	typ, err := r.Byte()
	if err != nil {
		return 0, err
	}
	lsn, err := r.Uvarint()
	if err != nil {
		return 0, err
	}
	if typ != recSnapAdvert && typ != recSnapSub && lsn <= after {
		return lsn, nil
	}
	switch typ {
	case recPublish, recSnapAdvert:
		adv, err := wire.ReadAdvert(r)
		if err != nil {
			return lsn, err
		}
		if _, err := r.Uvarint(); err != nil { // granted ms: forensic only
			return lsn, err
		}
		nano, err := r.Varint()
		if err != nil {
			return lsn, err
		}
		if _, _, err := s.Publish(adv, time.Unix(0, nano)); err != nil && !errors.Is(err, ErrStaleVersion) {
			return lsn, err
		}
	case recRenew:
		id, err := r.Bytes16()
		if err != nil {
			return lsn, err
		}
		nano, err := r.Varint()
		if err != nil {
			return lsn, err
		}
		s.Renew(uuid.UUID(id), time.Unix(0, nano))
	case recRemove:
		id, err := r.Bytes16()
		if err != nil {
			return lsn, err
		}
		s.Remove(uuid.UUID(id))
	case recSubscribe, recSnapSub:
		id, err := r.Bytes16()
		if err != nil {
			return lsn, err
		}
		kind, err := r.Byte()
		if err != nil {
			return lsn, err
		}
		payload, err := r.BytesVar()
		if err != nil {
			return lsn, err
		}
		notify, err := r.String()
		if err != nil {
			return lsn, err
		}
		hasExp, err := r.Bool()
		if err != nil {
			return lsn, err
		}
		var expires time.Time
		if hasExp {
			nano, err := r.Varint()
			if err != nil {
				return lsn, err
			}
			expires = time.Unix(0, nano)
		}
		if _, err := s.Subscribe(describe.Kind(kind), payload, notify, uuid.UUID(id), expires); err != nil {
			return lsn, err
		}
	case recUnsubscribe:
		id, err := r.Bytes16()
		if err != nil {
			return lsn, err
		}
		s.Unsubscribe(uuid.UUID(id))
	case recExpire:
		nano, err := r.Varint()
		if err != nil {
			return lsn, err
		}
		s.ExpireThrough(time.Unix(0, nano))
	case recPruneSubs:
		nano, err := r.Varint()
		if err != nil {
			return lsn, err
		}
		s.PruneSubscriptions(time.Unix(0, nano))
	default:
		return lsn, fmt.Errorf("unknown record type %d", typ)
	}
	return lsn, nil
}

// loadSnapshot restores a compacted snapshot into an empty store and
// returns the LSN it covers. Any framing, count or decode mismatch is
// an error — the caller falls back to an older snapshot.
func loadSnapshot(st *Store, path string) (lsn uint64, nAdv, nSub int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, 0, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	frame, torn, err := readFrame(br)
	if torn || err != nil {
		return 0, 0, 0, fmt.Errorf("registry: snapshot %s: bad header", filepath.Base(path))
	}
	r := codec.NewReader(frame)
	typ, _ := r.Byte()
	if _, err := r.Uvarint(); err != nil || typ != recSnapHeader {
		return 0, 0, 0, fmt.Errorf("registry: snapshot %s: bad header", filepath.Base(path))
	}
	version, err := r.Uvarint()
	if err != nil || version != snapFormatV1 {
		return 0, 0, 0, fmt.Errorf("registry: snapshot %s: unsupported format", filepath.Base(path))
	}
	lsn, err = r.Uvarint()
	if err != nil {
		return 0, 0, 0, err
	}
	wantAdv, err := r.Uvarint()
	if err != nil {
		return 0, 0, 0, err
	}
	wantSub, err := r.Uvarint()
	if err != nil {
		return 0, 0, 0, err
	}
	total := 0
	for {
		frame, torn, err := readFrame(br)
		if err == io.EOF {
			return 0, 0, 0, fmt.Errorf("registry: snapshot %s: missing trailer", filepath.Base(path))
		}
		if torn || err != nil {
			return 0, 0, 0, fmt.Errorf("registry: snapshot %s: torn entry", filepath.Base(path))
		}
		if frame[0] == recSnapTrailer {
			r := codec.NewReader(frame)
			r.Byte()
			r.Uvarint()
			count, err := r.Uvarint()
			if err != nil || count != uint64(total) || uint64(nAdv) != wantAdv || uint64(nSub) != wantSub {
				return 0, 0, 0, fmt.Errorf("registry: snapshot %s: entry count mismatch", filepath.Base(path))
			}
			return lsn, nAdv, nSub, nil
		}
		switch frame[0] {
		case recSnapAdvert:
			nAdv++
		case recSnapSub:
			nSub++
		default:
			return 0, 0, 0, fmt.Errorf("registry: snapshot %s: unexpected record type %d", filepath.Base(path), frame[0])
		}
		if _, err := st.applyRecord(frame, 0); err != nil {
			return 0, 0, 0, err
		}
		total++
	}
}

// writeSnapshot dumps the store's durable state — including
// expired-but-unpurged entries, whose purge records are still in the
// log tail — to snap-<upTo>.snap via tmp+fsync+rename, so a crash
// mid-write can never shadow the previous snapshot.
func writeSnapshot(dir string, st *Store, upTo uint64) (path string, size int64, nAdv int, err error) {
	path = filepath.Join(dir, snapName(upTo))
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return "", 0, 0, err
	}
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	bw := bufio.NewWriterSize(f, 1<<20)
	advs := st.durableAdverts()
	subs := st.durableSubs()
	var b codec.Buffer
	writeFrame := func() error {
		payload := b.Bytes()
		var hdr [walFrameHeader]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
		if _, err := bw.Write(hdr[:]); err != nil {
			return err
		}
		_, err := bw.Write(payload)
		return err
	}
	b.Byte(recSnapHeader)
	b.Uvarint(0)
	b.Uvarint(snapFormatV1)
	b.Uvarint(upTo)
	b.Uvarint(uint64(len(advs)))
	b.Uvarint(uint64(len(subs)))
	if err = writeFrame(); err != nil {
		return "", 0, 0, err
	}
	for _, a := range advs {
		b.Reset()
		// The synthetic grant instant reconstructs the exact absolute
		// deadline on load: replay grants Clamp(LeaseMillis) from it.
		granted := st.leasePolicy.Clamp(time.Duration(a.adv.LeaseMillis) * time.Millisecond)
		putAdvertRecord(&b, recSnapAdvert, 0, a.adv, granted, a.expires.Add(-granted))
		if err = writeFrame(); err != nil {
			return "", 0, 0, err
		}
	}
	for _, sub := range subs {
		b.Reset()
		putSubRecord(&b, recSnapSub, 0, sub.id, sub.kind, sub.payload, sub.notify, sub.expires)
		if err = writeFrame(); err != nil {
			return "", 0, 0, err
		}
	}
	b.Reset()
	b.Byte(recSnapTrailer)
	b.Uvarint(0)
	b.Uvarint(uint64(len(advs) + len(subs)))
	if err = writeFrame(); err != nil {
		return "", 0, 0, err
	}
	if err = bw.Flush(); err != nil {
		return "", 0, 0, err
	}
	if err = f.Sync(); err != nil {
		return "", 0, 0, err
	}
	if err = f.Close(); err != nil {
		return "", 0, 0, err
	}
	if err = os.Rename(tmp, path); err != nil {
		return "", 0, 0, err
	}
	// Make the rename itself durable; best effort where the platform
	// refuses directory fsync.
	if d, derr := os.Open(dir); derr == nil {
		d.Sync()
		d.Close()
	}
	info, err := os.Stat(path)
	if err != nil {
		return "", 0, 0, err
	}
	return path, info.Size(), len(advs), nil
}

// snapAdvert is one advert entry of a snapshot dump: the advertisement
// plus its absolute lease deadline.
type snapAdvert struct {
	adv     wire.Advertisement
	expires time.Time
}

// snapSub is one standing-query entry of a snapshot dump.
type snapSub struct {
	id      uuid.UUID
	kind    describe.Kind
	payload []byte
	notify  string
	expires time.Time
}

// durableAdverts snapshots every stored advert with its lease deadline,
// sorted by ID for deterministic snapshot bytes. Only compaction's
// offline stores call it; nothing contends for the shard locks.
func (s *Store) durableAdverts() []snapAdvert {
	out := make([]snapAdvert, 0, s.Len())
	for _, sh := range s.shards {
		sh.mu.RLock()
		for id, st := range sh.adverts {
			if exp, ok := sh.leases.Expires(id); ok {
				out = append(out, snapAdvert{adv: st.advert, expires: exp})
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return uuid.Compare(out[i].adv.ID, out[j].adv.ID) < 0 })
	return out
}

// durableSubs snapshots every live standing query in insertion order —
// the notification order, which the snapshot must preserve.
func (s *Store) durableSubs() []snapSub {
	s.subMu.RLock()
	defer s.subMu.RUnlock()
	out := make([]snapSub, 0, len(s.subs))
	for _, sub := range s.subsArr {
		if sub == nil || sub.removed {
			continue
		}
		out = append(out, snapSub{
			id: sub.id, kind: sub.kind, payload: sub.payload,
			notify: sub.notify, expires: sub.expires,
		})
	}
	return out
}

// discardOffline retires a replay/compaction store that will never
// serve traffic, rolling its contribution out of the process-wide
// gauges (registry.adverts, arena and interner levels) so offline
// replays don't inflate what a live registry reports. Counters are
// left alone: replay work is work the process really did.
func (s *Store) discardOffline() {
	s.countAdd(-s.count.Load())
	for _, sh := range s.shards {
		mArenaSlabs.Add(-int64(len(sh.slabs)))
		mArenaFree.Add(-int64(len(sh.free)))
	}
	mTokensInterned.Add(-int64(s.toks.size()))
	if s.subidx != nil {
		mSubIndexSize.Add(-int64(s.subidx.entries))
	}
}
