package core

import (
	"testing"
	"time"

	"semdisco/internal/match"
	"semdisco/internal/profile"
)

func TestQuickstartFlow(t *testing.T) {
	sys := NewSystem(Options{Seed: 1})
	sys.StartRegistry("hq", RegistryOptions{})
	_, err := sys.StartService("hq", ServiceOptions{Profile: ServiceProfile{
		IRI: "urn:svc:radar-1", Name: "Radar one",
		Category: sys.Class("RadarFeed"), Endpoint: "udp://10.0.0.1:99",
	}})
	if err != nil {
		t.Fatal(err)
	}
	cli := sys.StartClient("hq", ClientOptions{})
	sys.Step(2 * time.Second)
	hits, via, err := cli.Find(Query{Category: sys.Class("SensorFeed")})
	if err != nil {
		t.Fatal(err)
	}
	if via != ViaRegistry || len(hits) != 1 {
		t.Fatalf("Find = (%d hits, %v)", len(hits), via)
	}
	h := hits[0]
	if h.ServiceIRI != "urn:svc:radar-1" || h.Endpoint != "udp://10.0.0.1:99" || h.Name != "Radar one" {
		t.Fatalf("hit = %+v", h)
	}
	if h.Profile == nil || h.Category != sys.Class("RadarFeed") {
		t.Fatalf("profile detail lost: %+v", h)
	}
}

func TestInvalidProfileRejected(t *testing.T) {
	sys := NewSystem(Options{})
	sys.StartRegistry("hq", RegistryOptions{})
	_, err := sys.StartService("hq", ServiceOptions{Profile: ServiceProfile{
		IRI: "", Category: sys.Class("RadarFeed"), Endpoint: "e",
	}})
	if err == nil {
		t.Fatal("profile without IRI accepted")
	}
}

func TestClassPanicsOnTypo(t *testing.T) {
	sys := NewSystem(Options{})
	defer func() {
		if recover() == nil {
			t.Fatal("unknown class name did not panic")
		}
	}()
	sys.Class("RadarFeeed")
}

func TestFederationScopeAndFailover(t *testing.T) {
	sys := NewSystem(Options{Seed: 2})
	rHQ := sys.StartRegistry("hq", RegistryOptions{})
	sys.StartRegistry("field", RegistryOptions{Federate: []*Registry{rHQ}})
	if _, err := sys.StartService("field", ServiceOptions{Profile: ServiceProfile{
		IRI: "urn:svc:cam", Category: sys.Class("CameraFeed"), Endpoint: "e",
	}}); err != nil {
		t.Fatal(err)
	}
	cli := sys.StartClient("hq", ClientOptions{})
	sys.Step(3 * time.Second)
	// Scope 0: only the local registry — remote service invisible.
	hits, _, err := cli.Find(Query{Category: sys.Class("SensorFeed"), Scope: 0})
	if err != nil || len(hits) != 0 {
		t.Fatalf("scope-0 find = (%d, %v)", len(hits), err)
	}
	// Scope 2: federated query reaches the field LAN.
	hits, via, err := cli.Find(Query{Category: sys.Class("SensorFeed"), Scope: 2, Timeout: 30 * time.Second})
	if err != nil || via != ViaRegistry || len(hits) != 1 {
		t.Fatalf("scope-2 find = (%d, %v, %v)", len(hits), via, err)
	}
}

func TestCrashAndFallback(t *testing.T) {
	sys := NewSystem(Options{Seed: 3})
	reg := sys.StartRegistry("hq", RegistryOptions{})
	if _, err := sys.StartService("hq", ServiceOptions{Profile: ServiceProfile{
		IRI: "urn:svc:radar", Category: sys.Class("RadarFeed"), Endpoint: "e",
	}}); err != nil {
		t.Fatal(err)
	}
	cli := sys.StartClient("hq", ClientOptions{})
	sys.Step(2 * time.Second)
	reg.Crash()
	sys.Step(time.Second)
	hits, via, err := cli.Find(Query{Category: sys.Class("SensorFeed"), Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if via != ViaFallback || len(hits) != 1 {
		t.Fatalf("fallback find = (%d, %v)", len(hits), via)
	}
}

func TestQoSAndCoverageConstraints(t *testing.T) {
	sys := NewSystem(Options{Seed: 4})
	sys.StartRegistry("hq", RegistryOptions{})
	mk := func(iri string, acc float64, cov *profile.Circle) {
		if _, err := sys.StartService("hq", ServiceOptions{Profile: ServiceProfile{
			IRI: iri, Category: sys.Class("RadarFeed"), Endpoint: "e",
			QoS: map[string]float64{"accuracy": acc}, Coverage: cov,
		}}); err != nil {
			t.Fatal(err)
		}
	}
	mk("urn:svc:good", 0.95, &profile.Circle{LatDeg: 60, LonDeg: 10, RadiusKm: 100})
	mk("urn:svc:weak", 0.60, &profile.Circle{LatDeg: 60, LonDeg: 10, RadiusKm: 100})
	mk("urn:svc:far", 0.99, &profile.Circle{LatDeg: 40, LonDeg: -70, RadiusKm: 100})
	cli := sys.StartClient("hq", ClientOptions{})
	sys.Step(2 * time.Second)
	hits, _, err := cli.Find(Query{
		Category: sys.Class("RadarFeed"),
		MinQoS:   map[string]float64{"accuracy": 0.9},
		Near:     &profile.Point{LatDeg: 60.1, LonDeg: 10.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].ServiceIRI != "urn:svc:good" {
		t.Fatalf("constrained find = %+v", hits)
	}
}

func TestBestOnlyAndMinDegree(t *testing.T) {
	sys := NewSystem(Options{Seed: 5})
	sys.StartRegistry("hq", RegistryOptions{})
	for _, iri := range []string{"urn:a", "urn:b", "urn:c"} {
		if _, err := sys.StartService("hq", ServiceOptions{Profile: ServiceProfile{
			IRI: iri, Category: sys.Class("RadarFeed"), Endpoint: "e",
		}}); err != nil {
			t.Fatal(err)
		}
	}
	cli := sys.StartClient("hq", ClientOptions{})
	sys.Step(2 * time.Second)
	hits, _, err := cli.Find(Query{Category: sys.Class("SensorFeed"), BestOnly: true})
	if err != nil || len(hits) != 1 {
		t.Fatalf("BestOnly = (%d, %v)", len(hits), err)
	}
	// Exact floor excludes the plugin matches.
	hits, _, err = cli.Find(Query{Category: sys.Class("SensorFeed"), MinDegree: match.Exact})
	if err != nil || len(hits) != 0 {
		t.Fatalf("Exact floor = (%d, %v)", len(hits), err)
	}
}

func TestUpdatePropagates(t *testing.T) {
	sys := NewSystem(Options{Seed: 6})
	sys.StartRegistry("hq", RegistryOptions{})
	svc, err := sys.StartService("hq", ServiceOptions{Profile: ServiceProfile{
		IRI: "urn:svc:x", Category: sys.Class("RadarFeed"), Endpoint: "e1",
	}})
	if err != nil {
		t.Fatal(err)
	}
	cli := sys.StartClient("hq", ClientOptions{})
	sys.Step(2 * time.Second)
	if err := svc.Update(ServiceProfile{
		IRI: "urn:svc:x", Category: sys.Class("RadarFeed"), Endpoint: "e2",
	}); err != nil {
		t.Fatal(err)
	}
	sys.Step(time.Second)
	hits, _, err := cli.Find(Query{Category: sys.Class("RadarFeed")})
	if err != nil || len(hits) != 1 || hits[0].Endpoint != "e2" {
		t.Fatalf("update not visible: %+v (%v)", hits, err)
	}
	if err := svc.Update(ServiceProfile{IRI: "urn:none", Category: sys.Class("RadarFeed"), Endpoint: "e"}); err == nil {
		t.Fatal("update of unknown IRI accepted")
	}
}

func TestFetchOntology(t *testing.T) {
	sys := NewSystem(Options{Seed: 7})
	sys.StartRegistry("hq", RegistryOptions{})
	cli := sys.StartClient("hq", ClientOptions{})
	sys.Step(2 * time.Second)
	onto, err := cli.FetchOntology(sys.Ontology().IRI)
	if err != nil {
		t.Fatal(err)
	}
	if !onto.Subsumes(sys.Class("SensorFeed"), sys.Class("RadarFeed")) {
		t.Fatal("fetched ontology lost subsumption")
	}
	if _, err := cli.FetchOntology("urn:missing"); err == nil {
		t.Fatal("missing ontology resolved")
	}
}

func TestKnowsRegistry(t *testing.T) {
	sys := NewSystem(Options{Seed: 8})
	cli := sys.StartClient("hq", ClientOptions{})
	sys.Step(time.Second)
	if cli.KnowsRegistry() {
		t.Fatal("client claims a registry in an empty world")
	}
	sys.StartRegistry("hq", RegistryOptions{})
	sys.Step(3 * time.Second)
	if !cli.KnowsRegistry() {
		t.Fatal("client never found the registry")
	}
}

func TestGatewayElectionSurface(t *testing.T) {
	sys := NewSystem(Options{Seed: 9})
	r1 := sys.StartRegistry("hq", RegistryOptions{GatewayCoordination: true})
	r2 := sys.StartRegistry("hq", RegistryOptions{GatewayCoordination: true})
	sys.Step(3 * time.Second)
	if r1.IsGateway() == r2.IsGateway() {
		t.Fatal("gateway election did not pick exactly one")
	}
}

func TestWatchStreamsNewServices(t *testing.T) {
	sys := NewSystem(Options{Seed: 10})
	sys.StartRegistry("hq", RegistryOptions{})
	cli := sys.StartClient("hq", ClientOptions{})
	sys.Step(2 * time.Second)
	var seen []string
	cancel, err := cli.Watch(Query{Category: sys.Class("SensorFeed")}, func(h Hit) {
		seen = append(seen, h.ServiceIRI)
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Step(time.Second)
	if _, err := sys.StartService("hq", ServiceOptions{Profile: ServiceProfile{
		IRI: "urn:svc:radar", Category: sys.Class("RadarFeed"), Endpoint: "e",
	}}); err != nil {
		t.Fatal(err)
	}
	sys.Step(2 * time.Second)
	if len(seen) != 1 || seen[0] != "urn:svc:radar" {
		t.Fatalf("watch stream = %v", seen)
	}
	cancel()
	sys.Step(time.Second)
	if _, err := sys.StartService("hq", ServiceOptions{Profile: ServiceProfile{
		IRI: "urn:svc:cam", Category: sys.Class("CameraFeed"), Endpoint: "e",
	}}); err != nil {
		t.Fatal(err)
	}
	sys.Step(2 * time.Second)
	if len(seen) != 1 {
		t.Fatalf("canceled watch still streaming: %v", seen)
	}
}

func TestWatchWithoutRegistryErrors(t *testing.T) {
	sys := NewSystem(Options{Seed: 11})
	cli := sys.StartClient("hq", ClientOptions{})
	sys.Step(time.Second)
	if _, err := cli.Watch(Query{Category: sys.Class("SensorFeed")}, func(Hit) {}); err == nil {
		t.Fatal("Watch succeeded without a registry")
	}
}
