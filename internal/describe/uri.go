package describe

import (
	"strings"

	"semdisco/internal/codec"
)

// URIDescription is the lightweight description tier: a service is
// nothing more than a name, an endpoint and a pre-agreed type URI —
// the WS-Discovery / Tactical-Data-Link style the paper wants primitive
// devices to keep using on the same infrastructure.
type URIDescription struct {
	// TypeURI names the pre-agreed service type.
	TypeURI string
	// ServiceURI identifies this service instance.
	ServiceURI string
	// Name is a short display name.
	Name string
	// Addr is the invocation endpoint.
	Addr string
}

// Kind implements Description.
func (d *URIDescription) Kind() Kind { return KindURI }

// ServiceKey implements Description.
func (d *URIDescription) ServiceKey() string { return d.ServiceURI }

// Endpoint implements Description.
func (d *URIDescription) Endpoint() string { return d.Addr }

// Encode implements Description.
func (d *URIDescription) Encode() []byte {
	var w codec.Buffer
	w.String(d.TypeURI)
	w.String(d.ServiceURI)
	w.String(d.Name)
	w.String(d.Addr)
	return w.Bytes()
}

// URIQuery matches services whose TypeURI equals the requested one
// exactly — string matching with no semantics, the behaviour whose
// limitations experiment E5 quantifies.
type URIQuery struct {
	TypeURI string
}

// Kind implements Query.
func (q *URIQuery) Kind() Kind { return KindURI }

// Encode implements Query.
func (q *URIQuery) Encode() []byte {
	var w codec.Buffer
	w.String(q.TypeURI)
	return w.Bytes()
}

// URIModel implements the lightweight URI description model.
type URIModel struct{}

// Kind implements Model.
func (URIModel) Kind() Kind { return KindURI }

// Name implements Model.
func (URIModel) Name() string { return "uri" }

// DecodeDescription implements Model.
func (URIModel) DecodeDescription(b []byte) (Description, error) {
	r := codec.NewReader(b)
	d := &URIDescription{}
	var err error
	if d.TypeURI, err = r.String(); err != nil {
		return nil, err
	}
	if d.ServiceURI, err = r.String(); err != nil {
		return nil, err
	}
	if d.Name, err = r.String(); err != nil {
		return nil, err
	}
	if d.Addr, err = r.String(); err != nil {
		return nil, err
	}
	if err := r.Expect("uri description"); err != nil {
		return nil, err
	}
	return d, nil
}

// DecodeQuery implements Model.
func (URIModel) DecodeQuery(b []byte) (Query, error) {
	r := codec.NewReader(b)
	q := &URIQuery{}
	var err error
	if q.TypeURI, err = r.String(); err != nil {
		return nil, err
	}
	if err := r.Expect("uri query"); err != nil {
		return nil, err
	}
	return q, nil
}

// Evaluate implements Model: exact, case-sensitive type equality.
// Trailing slashes are normalized because practice showed both forms of
// type URIs in the wild.
func (URIModel) Evaluate(q Query, d Description) Evaluation {
	uq, ok1 := q.(*URIQuery)
	ud, ok2 := d.(*URIDescription)
	if !ok1 || !ok2 {
		return Evaluation{}
	}
	if normURI(uq.TypeURI) == normURI(ud.TypeURI) {
		return Evaluation{Matched: true, Degree: 1, Score: 1}
	}
	return Evaluation{}
}

func normURI(u string) string { return strings.TrimSuffix(u, "/") }

// SummaryTokens implements Model.
func (URIModel) SummaryTokens(d Description) []string {
	if ud, ok := d.(*URIDescription); ok {
		return []string{normURI(ud.TypeURI)}
	}
	return nil
}

// QueryTokens implements Model: URI queries are always prunable.
func (URIModel) QueryTokens(q Query) ([]string, bool) {
	if uq, ok := q.(*URIQuery); ok {
		return []string{normURI(uq.TypeURI)}, true
	}
	return nil, false
}
