package registry

import (
	"bytes"
	"container/list"
	"fmt"
	"sync"

	"semdisco/internal/describe"
)

// queryPlan is everything the store derives from a query payload:
// the owning model, the decoded query, and its pruning tokens. Plans
// are immutable once built and safe to share across goroutines — the
// description models are read-only after construction.
type queryPlan struct {
	model    describe.Model
	query    describe.Query
	tokens   []string
	prunable bool
	// hash is describe.PayloadHash(kind, payload) for the payload this
	// plan was decoded from — the query result cache keys on it.
	hash uint64
}

// planCache memoizes query plans keyed by (kind, payload hash) in an
// LRU of bounded size. A federated query arrives at a registry up to
// three times in different roles (summary-pruning decision, local
// Evaluate, entry-registry MergeRank) and at every federation hop with
// an identical payload; caching the decode keeps the §3.2 promise that
// query evaluation work is paid once, not once per stage.
//
// Hash collisions are handled by verifying kind and payload on lookup:
// a colliding entry is a miss, never a wrong plan.
type planCache struct {
	mu      sync.Mutex
	cap     int
	entries map[uint64]*list.Element
	lru     *list.List // of *planEntry, most recent at front
}

type planEntry struct {
	hash    uint64
	kind    describe.Kind
	payload []byte
	plan    *queryPlan
}

func newPlanCache(capacity int) *planCache {
	return &planCache{
		cap:     capacity,
		entries: make(map[uint64]*list.Element, capacity),
		lru:     list.New(),
	}
}

// get returns the cached plan for the payload, or nil on miss.
func (c *planCache) get(kind describe.Kind, payload []byte, hash uint64) *queryPlan {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[hash]
	if !ok {
		return nil
	}
	e := el.Value.(*planEntry)
	if e.kind != kind || !bytes.Equal(e.payload, payload) {
		return nil // hash collision: treat as a miss
	}
	c.lru.MoveToFront(el)
	return e.plan
}

// put stores a freshly decoded plan, evicting the least recently used
// entry when the cache is full. The payload is copied: callers may
// reuse their buffer.
func (c *planCache) put(kind describe.Kind, payload []byte, hash uint64, plan *queryPlan) {
	cp := make([]byte, len(payload))
	copy(cp, payload)
	e := &planEntry{hash: hash, kind: kind, payload: cp, plan: plan}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[hash]; ok {
		// Same hash re-decoded (collision or racing fill): keep the newest.
		el.Value = e
		c.lru.MoveToFront(el)
		return
	}
	c.entries[hash] = c.lru.PushFront(e)
	for c.lru.Len() > c.cap {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.entries, back.Value.(*planEntry).hash)
	}
}

// len reports the number of cached plans (tests).
func (c *planCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// plan resolves the query plan for a payload: model dispatch, plan
// cache lookup, and on a miss DecodeQuery + QueryTokens with the result
// memoized. Errors are never cached.
func (s *Store) plan(kind describe.Kind, payload []byte) (*queryPlan, error) {
	model, ok := s.models.Model(kind)
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrUnknownKind, kind)
	}
	h := describe.PayloadHash(kind, payload)
	if s.plans != nil {
		if p := s.plans.get(kind, payload, h); p != nil {
			mPlanCacheHits.Inc()
			return p, nil
		}
	}
	mPlanCacheMisses.Inc()
	q, err := model.DecodeQuery(payload)
	if err != nil {
		return nil, err
	}
	tokens, prunable := model.QueryTokens(q)
	p := &queryPlan{model: model, query: q, tokens: tokens, prunable: prunable, hash: h}
	if s.plans != nil {
		s.plans.put(kind, payload, h, p)
	}
	return p, nil
}

// QueryPlan exposes the cached decode of a query payload: the decoded
// query plus its pruning tokens. Federation's summary pruning uses it
// so a forwarded query is decoded once per node rather than once per
// peer considered.
func (s *Store) QueryPlan(kind describe.Kind, payload []byte) (describe.Query, []string, bool, error) {
	p, err := s.plan(kind, payload)
	if err != nil {
		return nil, nil, false, err
	}
	return p.query, p.tokens, p.prunable, nil
}
