package experiments

import (
	"fmt"
	"time"

	"semdisco/internal/metrics"
	"semdisco/internal/sim"
	"semdisco/internal/wire"
)

// E18ResultCache measures what the gateway remote result cache saves on
// the WAN when the same discovery query recurs within the adverts'
// lease window (§4.8: a result set may be reused for at most the
// shortest remaining lease among its adverts). A two-LAN federation
// hosts all services behind the remote registry; a client on the entry
// LAN repeats one query. With the cache off every repeat fans out over
// the WAN; with it on, only the first does.
func E18ResultCache(repeats int, seed int64) *metrics.Table {
	t := metrics.NewTable("E18 gateway result cache WAN reduction (§4.8)",
		"rcache", "queries", "wanForwards", "queryMsgs", "queryKB", "recallMean", "latencyMean")
	var baseFwd uint64
	for _, size := range []int{0, 64} {
		fwd, msgs, bytes, recall, lat := runE18(size, repeats, seed)
		label := "off"
		if size > 0 {
			label = fmt.Sprintf("on(%d)", size)
			if baseFwd > 0 && fwd > 0 {
				label += fmt.Sprintf(" %.0fx fewer fwd", float64(baseFwd)/float64(fwd))
			}
		} else {
			baseFwd = fwd
		}
		t.AddRow(label, repeats, fwd, msgs, metrics.KB(bytes), recall, fmtDur(lat))
	}
	t.AddNote("2 LANs, 6 remote services (1 min leases), identical query repeated %d times; "+
		"wanForwards counts entry-registry WAN fan-outs, queryMsgs all querying-category "+
		"datagrams incl. client round-trips", repeats)
	return t
}

func runE18(cacheSize, repeats int, seed int64) (uint64, uint64, uint64, float64, time.Duration) {
	w := sim.NewWorld(sim.Config{Seed: seed})
	entryCfg := fastRegistry()
	entryCfg.ResultCacheSize = cacheSize
	entryCfg.ResultCacheMaxTTL = 30 * time.Second
	entry := w.AddRegistry("lan0", "r0", entryCfg)
	remoteCfg := fastRegistry()
	remoteCfg.Seeds = []wire.PeerInfo{entry.PeerInfo()}
	w.AddRegistry("lan1", "r1", remoteCfg)
	const services = 6
	for i := 0; i < services; i++ {
		w.AddService("lan1", fmt.Sprintf("s%d", i), fastService(time.Minute),
			w.SemanticProfile(fmt.Sprintf("urn:svc:%d", i), categoryFor(i)))
	}
	cli := w.AddClient("lan0", "c0", fastClient())
	w.Run(8 * time.Second)
	w.Net.ResetStats()
	fwd0 := entry.Reg.Stats().QueriesForwarded

	spec := w.SemanticSpec(sim.C("Service"), 3)
	spec.MaxResults = 50
	recallSum, latSum := 0.0, time.Duration(0)
	for i := 0; i < repeats; i++ {
		out := cli.Query(spec, 10*time.Second)
		recallSum += float64(distinctServices(w, out.Adverts)) / services
		latSum += out.Elapsed
	}
	q := w.Net.Stats().ByCategory[wire.CatQuerying]
	fwd := entry.Reg.Stats().QueriesForwarded - fwd0
	return fwd, q.Messages, q.Bytes, recallSum / float64(repeats), latSum / time.Duration(repeats)
}
