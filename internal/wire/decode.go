package wire

import (
	"fmt"

	"semdisco/internal/codec"
	"semdisco/internal/describe"
	"semdisco/internal/uuid"
)

// Decoder is the zero-allocation receive path, mirroring the pooled
// encode path: one Decoder per receive loop decodes every inbound
// envelope into reused storage instead of allocating a fresh body per
// message.
//
// The contract is strict borrow semantics:
//
//   - The returned *Envelope, its Body, and every slice reachable from
//     them (payloads, advert lists, peer lists, token lists) are valid
//     only until the next Decode call on the same Decoder. Handlers
//     that retain any of it beyond the call must copy (strings are the
//     exception — they are interned and immutable, so retaining them is
//     safe and cheap).
//   - Byte payloads alias the input buffer: they are valid only while
//     the datagram buffer is, and must never be mutated.
//
// Steady-state decode of every message type is allocation-free: bodies
// are reused fields, strings come from a bounded intern table, and
// slices regrow into retained backing arrays.
type Decoder struct {
	env Envelope

	// Reused body storage, one field per message type so a decoded
	// pointer body never aliases a different type's storage.
	probe          Probe
	probeMatch     ProbeMatch
	beacon         Beacon
	bye            Bye
	ping           Ping
	pong           Pong
	peerExchange   PeerExchange
	summary        Summary
	gatewayClaim   GatewayClaim
	publish        Publish
	publishAck     PublishAck
	renew          Renew
	renewAck       RenewAck
	remove         Remove
	advertForward  AdvertForward
	query          Query
	queryResult    QueryResult
	peerQuery      PeerQuery
	artifactGet    ArtifactGet
	artifactData   ArtifactData
	subscribe      Subscribe
	subscribeAck   SubscribeAck
	unsubscribe    Unsubscribe
	artifactPut    ArtifactPut
	artifactPutAck ArtifactPutAck
	summaryDelta   SummaryDelta
	summaryAck     SummaryAck
	directoryDelta DirectoryDelta
	directoryAck   DirectoryAck

	// Reused slice storage.
	peers      []PeerInfo
	adverts    []Advertisement
	sumEntries []SummaryEntry
	dltEntries []SummaryDeltaEntry
	dirEntries []DirectoryEntry

	// strLists pools []string backing arrays for token lists; strListIdx
	// is reset per Decode so concurrent lists within one body (delta
	// add/remove pairs, per-kind summary entries) each get their own.
	strLists   [][]string
	strListIdx int

	// rdr is the embedded frame reader, Reset per Decode so the hot
	// path never heap-allocates a Reader.
	rdr codec.Reader

	// strs interns decoded strings: addresses, tokens and IRIs repeat
	// heavily across messages, so steady state hits the table and
	// allocates nothing. Interned strings are immutable and safe to
	// retain. The table is cleared when it exceeds maxInternStrings so a
	// hostile peer cannot grow it without bound.
	strs map[string]string
}

// maxInternStrings bounds the decoder's string intern table.
const maxInternStrings = 8192

// NewDecoder returns a Decoder ready for use by a single receive loop.
// A Decoder is not safe for concurrent use.
func NewDecoder() *Decoder {
	return &Decoder{strs: make(map[string]string)}
}

// intern returns a stable string for b, allocating only the first time a
// value is seen (the map lookup keyed by string(b) does not allocate).
func (d *Decoder) intern(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if s, ok := d.strs[string(b)]; ok {
		return s
	}
	if len(d.strs) >= maxInternStrings {
		clear(d.strs)
	}
	s := string(b)
	d.strs[s] = s
	return s
}

// internString reads a length-prefixed string and interns it.
func (d *Decoder) internString(r *codec.Reader) (string, error) {
	b, err := r.BytesVar()
	if err != nil {
		return "", err
	}
	return d.intern(b), nil
}

// strList reads a count-prefixed string slice into pooled backing
// storage with every element interned.
func (d *Decoder) strList(r *codec.Reader) ([]string, error) {
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(r.Remaining()) {
		return nil, fmt.Errorf("%w: %d strings with %d bytes left", codec.ErrTruncated, n, r.Remaining())
	}
	idx := d.strListIdx
	d.strListIdx++
	if idx >= len(d.strLists) {
		d.strLists = append(d.strLists, nil)
	}
	lst := d.strLists[idx][:0]
	for i := uint64(0); i < n; i++ {
		s, err := d.internString(r)
		if err != nil {
			return nil, err
		}
		lst = append(lst, s)
	}
	d.strLists[idx] = lst
	if len(lst) == 0 {
		return nil, nil
	}
	return lst, nil
}

// getPeers reads a peer list into the decoder's reused slice.
func (d *Decoder) getPeers(r *codec.Reader) ([]PeerInfo, error) {
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(r.Remaining()) {
		return nil, fmt.Errorf("wire: peer count %d exceeds payload", n)
	}
	out := d.peers[:0]
	for i := uint64(0); i < n; i++ {
		id, err := r.Bytes16()
		if err != nil {
			return nil, err
		}
		addr, err := d.internString(r)
		if err != nil {
			return nil, err
		}
		out = append(out, PeerInfo{ID: uuid.UUID(id), Addr: addr})
	}
	d.peers = out
	if len(out) == 0 {
		return nil, nil
	}
	return out, nil
}

// getAdvert reads one advertisement; the payload aliases the input
// buffer and ProviderAddr is interned.
func (d *Decoder) getAdvert(r *codec.Reader) (Advertisement, error) {
	var a Advertisement
	id, err := r.Bytes16()
	if err != nil {
		return a, err
	}
	a.ID = uuid.UUID(id)
	prov, err := r.Bytes16()
	if err != nil {
		return a, err
	}
	a.Provider = uuid.UUID(prov)
	if a.ProviderAddr, err = d.internString(r); err != nil {
		return a, err
	}
	k, err := r.Byte()
	if err != nil {
		return a, err
	}
	a.Kind = describe.Kind(k)
	if a.Payload, err = r.BytesVar(); err != nil {
		return a, err
	}
	if len(a.Payload) == 0 {
		a.Payload = nil
	}
	if a.LeaseMillis, err = r.Uvarint(); err != nil {
		return a, err
	}
	if a.Version, err = r.Uvarint(); err != nil {
		return a, err
	}
	return a, nil
}

// Decode decodes one received single-envelope frame. The result is
// owned by the Decoder and valid only until the next Decode call; see
// the type comment for the borrow contract. Batch frames must be split
// with ForEachInBatch first.
func (d *Decoder) Decode(b []byte) (*Envelope, error) {
	d.rdr.Reset(b)
	r := &d.rdr
	m0, err := r.Byte()
	if err != nil {
		return nil, err
	}
	m1, err := r.Byte()
	if err != nil {
		return nil, err
	}
	if m0 != magic0 || m1 != magic1 {
		return nil, fmt.Errorf("wire: bad magic %02x%02x", m0, m1)
	}
	v, err := r.Byte()
	if err != nil {
		return nil, err
	}
	if v != wireVersion {
		return nil, fmt.Errorf("wire: unsupported version %d", v)
	}
	t, err := r.Byte()
	if err != nil {
		return nil, err
	}
	if t == batchFrameType {
		return nil, fmt.Errorf("wire: batch frame passed to Decode")
	}
	d.strListIdx = 0
	e := &d.env
	e.Type = MsgType(t)
	from, err := r.Bytes16()
	if err != nil {
		return nil, err
	}
	e.From = uuid.UUID(from)
	mid, err := r.Bytes16()
	if err != nil {
		return nil, err
	}
	e.MsgID = uuid.UUID(mid)
	if e.FromAddr, err = d.internString(r); err != nil {
		return nil, err
	}
	if e.Body, err = d.decodeBody(r, e.Type); err != nil {
		return nil, err
	}
	if err := r.Expect(e.Type.String()); err != nil {
		return nil, err
	}
	return e, nil
}

func (d *Decoder) decodeBody(r *codec.Reader, t MsgType) (Body, error) {
	switch t {
	case TProbe:
		return &d.probe, nil
	case TBye:
		return &d.bye, nil
	case TPing:
		var err error
		d.ping.FromRegistry, err = r.Bool()
		return &d.ping, err
	case TProbeMatch:
		ps, err := d.getPeers(r)
		d.probeMatch.Peers = ps
		return &d.probeMatch, err
	case TBeacon:
		ps, err := d.getPeers(r)
		d.beacon.Peers = ps
		return &d.beacon, err
	case TPong:
		ps, err := d.getPeers(r)
		d.pong.Peers = ps
		return &d.pong, err
	case TPeerExchange:
		ps, err := d.getPeers(r)
		d.peerExchange.Peers = ps
		return &d.peerExchange, err
	case TSummary:
		n, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		if n > uint64(r.Remaining()) {
			return nil, fmt.Errorf("wire: summary entry count %d exceeds payload", n)
		}
		entries := d.sumEntries[:0]
		for i := uint64(0); i < n; i++ {
			k, err := r.Byte()
			if err != nil {
				return nil, err
			}
			toks, err := d.strList(r)
			if err != nil {
				return nil, err
			}
			entries = append(entries, SummaryEntry{Kind: describe.Kind(k), Tokens: toks})
		}
		d.sumEntries = entries
		d.summary.Entries = entries
		if n == 0 {
			d.summary.Entries = nil
		}
		return &d.summary, nil
	case TGatewayClaim:
		var err error
		d.gatewayClaim.Yield, err = r.Bool()
		return &d.gatewayClaim, err
	case TPublish:
		a, err := d.getAdvert(r)
		d.publish.Advert = a
		return &d.publish, err
	case TPublishAck:
		b := &d.publishAck
		id, err := r.Bytes16()
		if err != nil {
			return nil, err
		}
		b.AdvertID = uuid.UUID(id)
		if b.OK, err = r.Bool(); err != nil {
			return nil, err
		}
		if b.Error, err = d.internString(r); err != nil {
			return nil, err
		}
		if b.LeaseMillis, err = r.Uvarint(); err != nil {
			return nil, err
		}
		return b, nil
	case TRenew:
		id, err := r.Bytes16()
		d.renew.AdvertID = uuid.UUID(id)
		return &d.renew, err
	case TRenewAck:
		b := &d.renewAck
		id, err := r.Bytes16()
		if err != nil {
			return nil, err
		}
		b.AdvertID = uuid.UUID(id)
		if b.OK, err = r.Bool(); err != nil {
			return nil, err
		}
		if b.LeaseMillis, err = r.Uvarint(); err != nil {
			return nil, err
		}
		return b, nil
	case TRemove:
		id, err := r.Bytes16()
		d.remove.AdvertID = uuid.UUID(id)
		return &d.remove, err
	case TAdvertForward:
		a, err := d.getAdvert(r)
		if err != nil {
			return nil, err
		}
		d.advertForward.Advert = a
		d.advertForward.HopsLeft, err = r.Byte()
		return &d.advertForward, err
	case TQuery:
		b := &d.query
		id, err := r.Bytes16()
		if err != nil {
			return nil, err
		}
		b.QueryID = uuid.UUID(id)
		k, err := r.Byte()
		if err != nil {
			return nil, err
		}
		b.Kind = describe.Kind(k)
		if b.Payload, err = r.BytesVar(); err != nil {
			return nil, err
		}
		if len(b.Payload) == 0 {
			b.Payload = nil
		}
		mr, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		b.MaxResults = uint16(mr)
		if b.BestOnly, err = r.Bool(); err != nil {
			return nil, err
		}
		if b.TTL, err = r.Byte(); err != nil {
			return nil, err
		}
		s, err := r.Byte()
		if err != nil {
			return nil, err
		}
		b.Strategy = Strategy(s)
		if b.Walkers, err = r.Byte(); err != nil {
			return nil, err
		}
		if b.ReplyAddr, err = d.internString(r); err != nil {
			return nil, err
		}
		if b.NoCache, err = r.Bool(); err != nil {
			return nil, err
		}
		if b.Domain, err = d.internString(r); err != nil {
			return nil, err
		}
		return b, nil
	case TQueryResult:
		b := &d.queryResult
		id, err := r.Bytes16()
		if err != nil {
			return nil, err
		}
		b.QueryID = uuid.UUID(id)
		n, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		if n > uint64(r.Remaining()) {
			return nil, fmt.Errorf("wire: advert count %d exceeds payload", n)
		}
		adverts := d.adverts[:0]
		for i := uint64(0); i < n; i++ {
			a, err := d.getAdvert(r)
			if err != nil {
				return nil, err
			}
			adverts = append(adverts, a)
		}
		d.adverts = adverts
		b.Adverts = adverts
		if n == 0 {
			b.Adverts = nil
		}
		if b.Complete, err = r.Bool(); err != nil {
			return nil, err
		}
		return b, nil
	case TPeerQuery:
		b := &d.peerQuery
		id, err := r.Bytes16()
		if err != nil {
			return nil, err
		}
		b.QueryID = uuid.UUID(id)
		k, err := r.Byte()
		if err != nil {
			return nil, err
		}
		b.Kind = describe.Kind(k)
		if b.Payload, err = r.BytesVar(); err != nil {
			return nil, err
		}
		if len(b.Payload) == 0 {
			b.Payload = nil
		}
		if b.ReplyAddr, err = d.internString(r); err != nil {
			return nil, err
		}
		return b, nil
	case TArtifactGet:
		var err error
		d.artifactGet.IRI, err = d.internString(r)
		return &d.artifactGet, err
	case TArtifactData:
		b := &d.artifactData
		var err error
		if b.IRI, err = d.internString(r); err != nil {
			return nil, err
		}
		if b.Found, err = r.Bool(); err != nil {
			return nil, err
		}
		if b.Data, err = r.BytesVar(); err != nil {
			return nil, err
		}
		if len(b.Data) == 0 {
			b.Data = nil
		}
		return b, nil
	case TSubscribe:
		b := &d.subscribe
		id, err := r.Bytes16()
		if err != nil {
			return nil, err
		}
		b.SubID = uuid.UUID(id)
		k, err := r.Byte()
		if err != nil {
			return nil, err
		}
		b.Kind = describe.Kind(k)
		if b.Payload, err = r.BytesVar(); err != nil {
			return nil, err
		}
		if len(b.Payload) == 0 {
			b.Payload = nil
		}
		if b.NotifyAddr, err = d.internString(r); err != nil {
			return nil, err
		}
		if b.LeaseMillis, err = r.Uvarint(); err != nil {
			return nil, err
		}
		return b, nil
	case TSubscribeAck:
		b := &d.subscribeAck
		id, err := r.Bytes16()
		if err != nil {
			return nil, err
		}
		b.SubID = uuid.UUID(id)
		if b.OK, err = r.Bool(); err != nil {
			return nil, err
		}
		if b.Error, err = d.internString(r); err != nil {
			return nil, err
		}
		if b.LeaseMillis, err = r.Uvarint(); err != nil {
			return nil, err
		}
		return b, nil
	case TUnsubscribe:
		id, err := r.Bytes16()
		d.unsubscribe.SubID = uuid.UUID(id)
		return &d.unsubscribe, err
	case TArtifactPut:
		b := &d.artifactPut
		var err error
		if b.IRI, err = d.internString(r); err != nil {
			return nil, err
		}
		if b.Data, err = r.BytesVar(); err != nil {
			return nil, err
		}
		if len(b.Data) == 0 {
			b.Data = nil
		}
		return b, nil
	case TArtifactPutAck:
		b := &d.artifactPutAck
		var err error
		if b.IRI, err = d.internString(r); err != nil {
			return nil, err
		}
		if b.OK, err = r.Bool(); err != nil {
			return nil, err
		}
		return b, nil
	case TSummaryDelta:
		b := &d.summaryDelta
		var err error
		if b.Version, err = r.Uvarint(); err != nil {
			return nil, err
		}
		if b.Base, err = r.Uvarint(); err != nil {
			return nil, err
		}
		if b.Full, err = r.Bool(); err != nil {
			return nil, err
		}
		n, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		if n > uint64(r.Remaining()) {
			return nil, fmt.Errorf("wire: delta entry count %d exceeds payload", n)
		}
		entries := d.dltEntries[:0]
		for i := uint64(0); i < n; i++ {
			k, err := r.Byte()
			if err != nil {
				return nil, err
			}
			add, err := d.strList(r)
			if err != nil {
				return nil, err
			}
			rem, err := d.strList(r)
			if err != nil {
				return nil, err
			}
			entries = append(entries, SummaryDeltaEntry{Kind: describe.Kind(k), Add: add, Remove: rem})
		}
		d.dltEntries = entries
		b.Entries = entries
		if n == 0 {
			b.Entries = nil
		}
		return b, nil
	case TSummaryAck:
		b := &d.summaryAck
		var err error
		if b.Version, err = r.Uvarint(); err != nil {
			return nil, err
		}
		if b.Resync, err = r.Bool(); err != nil {
			return nil, err
		}
		return b, nil
	case TDirectoryDelta:
		b := &d.directoryDelta
		var err error
		if b.Version, err = r.Uvarint(); err != nil {
			return nil, err
		}
		if b.Base, err = r.Uvarint(); err != nil {
			return nil, err
		}
		if b.Full, err = r.Bool(); err != nil {
			return nil, err
		}
		n, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		if n > uint64(r.Remaining()) {
			return nil, fmt.Errorf("wire: directory entry count %d exceeds payload", n)
		}
		entries := d.dirEntries[:0]
		for i := uint64(0); i < n; i++ {
			var en DirectoryEntry
			if en.Domain, err = d.internString(r); err != nil {
				return nil, err
			}
			origin, err := r.Bytes16()
			if err != nil {
				return nil, err
			}
			en.Origin = uuid.UUID(origin)
			if en.Addr, err = d.internString(r); err != nil {
				return nil, err
			}
			if en.Version, err = r.Uvarint(); err != nil {
				return nil, err
			}
			if en.Tombstone, err = r.Bool(); err != nil {
				return nil, err
			}
			entries = append(entries, en)
		}
		d.dirEntries = entries
		b.Entries = entries
		if n == 0 {
			b.Entries = nil
		}
		return b, nil
	case TDirectoryAck:
		b := &d.directoryAck
		var err error
		if b.Version, err = r.Uvarint(); err != nil {
			return nil, err
		}
		if b.Resync, err = r.Bool(); err != nil {
			return nil, err
		}
		return b, nil
	default:
		return nil, fmt.Errorf("wire: unknown message type %d", t)
	}
}

// CloneAdverts detaches decoder-owned advertisements so they may be
// retained beyond the handler: the slice and every payload are copied
// (strings are interned and already stable).
func CloneAdverts(as []Advertisement) []Advertisement {
	if len(as) == 0 {
		return nil
	}
	out := make([]Advertisement, len(as))
	copy(out, as)
	for i := range out {
		out[i].Payload = cloneBytes(out[i].Payload)
	}
	return out
}

// CloneAdvert detaches one decoder-owned advertisement (payload copy).
func CloneAdvert(a Advertisement) Advertisement {
	a.Payload = cloneBytes(a.Payload)
	return a
}

// CloneBytes detaches a decoder-borrowed byte payload for retention.
func CloneBytes(b []byte) []byte { return cloneBytes(b) }
