package ontology

import (
	"fmt"

	"semdisco/internal/rdf"
)

// FromGraph builds an ontology from an RDF graph containing
// rdfs:subClassOf / rdfs:subPropertyOf / rdfs:domain / rdfs:range /
// rdfs:label triples (the RDFS vocabulary the paper's "shared semantic
// model" needs). owl:equivalentClass is honored via mutual subclassing.
// The ontology is returned frozen.
func FromGraph(iri string, g *rdf.Graph) (*Ontology, error) {
	o := New(iri)

	addClassIRI := func(t rdf.Term) (Class, error) {
		if !t.IsIRI() {
			return "", fmt.Errorf("ontology: class term %v is not an IRI", t)
		}
		c := Class(t.Value)
		if err := o.AddClass(c); err != nil {
			return "", err
		}
		return c, nil
	}

	// Explicit class declarations.
	for _, class := range []rdf.Term{rdf.IRI(rdf.OWLClass), rdf.IRI(rdf.RDFSClass)} {
		for _, t := range g.Match(rdf.Wildcard, rdf.IRI(rdf.RDFType), class) {
			if _, err := addClassIRI(t.S); err != nil {
				return nil, err
			}
		}
	}
	// Subclass axioms.
	for _, t := range g.Match(rdf.Wildcard, rdf.IRI(rdf.RDFSSubClassOf), rdf.Wildcard) {
		sub, err := addClassIRI(t.S)
		if err != nil {
			return nil, err
		}
		super, err := addClassIRI(t.O)
		if err != nil {
			return nil, err
		}
		if err := o.AddClass(sub, super); err != nil {
			return nil, err
		}
	}
	// Equivalence becomes mutual subclassing.
	for _, t := range g.Match(rdf.Wildcard, rdf.IRI(rdf.OWLEquivClass), rdf.Wildcard) {
		a, err := addClassIRI(t.S)
		if err != nil {
			return nil, err
		}
		b, err := addClassIRI(t.O)
		if err != nil {
			return nil, err
		}
		if err := o.AddClass(a, b); err != nil {
			return nil, err
		}
		if err := o.AddClass(b, a); err != nil {
			return nil, err
		}
	}
	// Properties: declared via subPropertyOf, domain, or range.
	for _, t := range g.Match(rdf.Wildcard, rdf.IRI(rdf.RDFSSubPropOf), rdf.Wildcard) {
		if !t.S.IsIRI() || !t.O.IsIRI() {
			return nil, fmt.Errorf("ontology: non-IRI property in %v", t)
		}
		if err := o.AddProperty(Property(t.S.Value), "", "", Property(t.O.Value)); err != nil {
			return nil, err
		}
	}
	for _, t := range g.Match(rdf.Wildcard, rdf.IRI(rdf.RDFSDomain), rdf.Wildcard) {
		if !t.S.IsIRI() || !t.O.IsIRI() {
			continue
		}
		dom, err := addClassIRI(t.O)
		if err != nil {
			return nil, err
		}
		if err := o.AddProperty(Property(t.S.Value), dom, ""); err != nil {
			return nil, err
		}
	}
	for _, t := range g.Match(rdf.Wildcard, rdf.IRI(rdf.RDFSRange), rdf.Wildcard) {
		if !t.S.IsIRI() || !t.O.IsIRI() {
			continue
		}
		rng, err := addClassIRI(t.O)
		if err != nil {
			return nil, err
		}
		if err := o.AddProperty(Property(t.S.Value), "", rng); err != nil {
			return nil, err
		}
	}
	// Labels.
	for _, t := range g.Match(rdf.Wildcard, rdf.IRI(rdf.RDFSLabel), rdf.Wildcard) {
		if t.S.IsIRI() && t.O.IsLiteral() && o.HasClass(Class(t.S.Value)) {
			if err := o.SetLabel(Class(t.S.Value), t.O.Value); err != nil {
				return nil, err
			}
		}
	}
	o.Freeze()
	return o, nil
}

// FromTurtle parses a Turtle document and builds a frozen ontology.
func FromTurtle(iri, src string) (*Ontology, error) {
	g, err := rdf.ParseTurtle(src)
	if err != nil {
		return nil, err
	}
	return FromGraph(iri, g)
}

// ToGraph serializes the ontology back into an RDF graph — the document
// a registry's artifact repository stores and serves (ICDEW'06 §4.6).
func (o *Ontology) ToGraph() *rdf.Graph {
	g := rdf.NewGraph()
	for _, c := range o.Classes() {
		if c == Thing {
			continue
		}
		g.MustAdd(rdf.Triple{S: rdf.IRI(string(c)), P: rdf.IRI(rdf.RDFType), O: rdf.IRI(rdf.OWLClass)})
		for _, p := range o.Parents(c) {
			g.MustAdd(rdf.Triple{S: rdf.IRI(string(c)), P: rdf.IRI(rdf.RDFSSubClassOf), O: rdf.IRI(string(p))})
		}
		if ci := o.classes[c]; ci.label != "" {
			g.MustAdd(rdf.Triple{S: rdf.IRI(string(c)), P: rdf.IRI(rdf.RDFSLabel), O: rdf.Literal(ci.label)})
		}
	}
	for _, p := range o.Properties() {
		pi := o.props[p]
		for _, par := range pi.parents {
			g.MustAdd(rdf.Triple{S: rdf.IRI(string(p)), P: rdf.IRI(rdf.RDFSSubPropOf), O: rdf.IRI(string(par))})
		}
		if pi.domain != "" {
			g.MustAdd(rdf.Triple{S: rdf.IRI(string(p)), P: rdf.IRI(rdf.RDFSDomain), O: rdf.IRI(string(pi.domain))})
		}
		if pi.rang != "" {
			g.MustAdd(rdf.Triple{S: rdf.IRI(string(p)), P: rdf.IRI(rdf.RDFSRange), O: rdf.IRI(string(pi.rang))})
		}
	}
	return g
}
