package ontology

import (
	"fmt"
	"testing"
)

// TestDepthWithDisconnectedCycles is the regression for a bug the
// random-taxonomy property test caught: subclass cycles with no path to
// Thing used a fallback depth that violated depth monotonicity. Depths
// are now computed on the SCC condensation; this fixed input exercises
// interlocking 2- and 3-cycles feeding reachable classes.
func TestDepthWithDisconnectedCycles(t *testing.T) {
	edges := []byte{0xa2, 0x19, 0x81, 0xce, 0x34, 0x5e, 0xc0, 0xa6, 0xf7, 0xbb, 0xd9, 0xcb, 0x33, 0x28, 0x2d, 0x5f, 0x19, 0x96, 0x4d}
	o := New(ns)
	const n = 12
	for i := 0; i < n; i++ {
		o.AddClass(c(fmt.Sprintf("C%d", i)))
	}
	for i, e := range edges {
		child := c(fmt.Sprintf("C%d", i%n))
		parent := c(fmt.Sprintf("C%d", int(e)%n))
		o.AddClass(child, parent)
	}
	o.Freeze()
	for i := 0; i < n; i++ {
		ci := c(fmt.Sprintf("C%d", i))
		if !o.Subsumes(Thing, ci) {
			t.Errorf("Thing !subsume %s", ci)
		}
		if !o.Subsumes(ci, ci) {
			t.Errorf("not reflexive %s", ci)
		}
		for _, p := range o.Parents(ci) {
			if !o.Subsumes(p, ci) {
				t.Errorf("parent %s !subsume child %s", p, ci)
			}
			if o.Depth(ci) > o.Depth(p)+1 && o.Depth(p) >= 0 && !o.Subsumes(ci, p) {
				t.Errorf("depth(%s)=%d > depth(%s)=%d+1 not cycle", ci, o.Depth(ci), p, o.Depth(p))
			}
		}
		for _, a := range o.Ancestors(ci) {
			for _, aa := range o.Ancestors(a) {
				if !o.Subsumes(aa, ci) {
					t.Errorf("transitivity: %s anc-of %s anc-of %s but !subsume", aa, a, ci)
				}
			}
		}
	}
}
