package transport_test

import (
	"testing"
	"time"

	"semdisco/internal/transport"
	"semdisco/internal/transport/memnet"
	"semdisco/internal/transport/udpnet"
	"semdisco/internal/uuid"
	"semdisco/internal/wire"
)

var bgen = uuid.NewGenerator(7)

func renewFrame(t *testing.T) []byte {
	t.Helper()
	raw, err := wire.Marshal(wire.NewEnvelope(bgen.New(), "lan0/a", wire.Renew{AdvertID: bgen.New()}, bgen))
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func queryFrame(t *testing.T) []byte {
	t.Helper()
	raw, err := wire.Marshal(wire.NewEnvelope(bgen.New(), "lan0/a", wire.Query{QueryID: bgen.New(), ReplyAddr: "lan0/a"}, bgen))
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// received collects decoded envelope types at a memnet node.
func collect(t *testing.T, net *memnet.Network, addr transport.Addr) *[]wire.MsgType {
	t.Helper()
	var got []wire.MsgType
	d := wire.NewDecoder()
	net.Attach(addr, "lan0", func(_ transport.Addr, data []byte) {
		if wire.IsBatchFrame(data) {
			if err := wire.ForEachInBatch(data, func(msg []byte) error {
				e, err := d.Decode(msg)
				if err != nil {
					return err
				}
				got = append(got, e.Type)
				return nil
			}); err != nil {
				t.Errorf("batch: %v", err)
			}
			return
		}
		e, err := d.Decode(data)
		if err != nil {
			t.Errorf("decode: %v", err)
			return
		}
		got = append(got, e.Type)
	})
	return &got
}

// TestBatcherCoalescesOnDeadline: eligible messages queued within the
// flush window ride one datagram; the receiver sees every message.
func TestBatcherCoalescesOnDeadline(t *testing.T) {
	net := memnet.New(memnet.Config{Seed: 1})
	got := collect(t, net, "lan0/b")
	src := net.Attach("lan0/a", "lan0", nil)
	b := transport.NewBatcher(src, net, transport.BatcherConfig{FlushDelay: 2 * time.Millisecond})

	const n = 5
	for i := 0; i < n; i++ {
		if err := b.Unicast("lan0/b", renewFrame(t)); err != nil {
			t.Fatal(err)
		}
	}
	if sent := net.Stats().MessagesSent; sent != 0 {
		t.Fatalf("sent %d datagrams before the deadline", sent)
	}
	net.RunFor(50 * time.Millisecond)
	st := net.Stats()
	if st.MessagesSent != 1 {
		t.Fatalf("sent %d datagrams, want 1 coalesced batch", st.MessagesSent)
	}
	if len(*got) != n {
		t.Fatalf("received %d messages, want %d", len(*got), n)
	}
	for _, ty := range *got {
		if ty != wire.TRenew {
			t.Fatalf("received %v, want renew", ty)
		}
	}
	// Category accounting must attribute the inner messages, not the
	// batch frame's unknown type byte.
	if st.ByCategory[wire.CatPublishing].Messages != n {
		t.Fatalf("publishing category counted %d messages, want %d",
			st.ByCategory[wire.CatPublishing].Messages, n)
	}
}

// TestBatcherSizeFlush: hitting MaxMessages flushes immediately without
// waiting for the deadline.
func TestBatcherSizeFlush(t *testing.T) {
	net := memnet.New(memnet.Config{Seed: 1})
	got := collect(t, net, "lan0/b")
	src := net.Attach("lan0/a", "lan0", nil)
	b := transport.NewBatcher(src, net, transport.BatcherConfig{MaxMessages: 3, FlushDelay: time.Hour})

	for i := 0; i < 3; i++ {
		if err := b.Unicast("lan0/b", renewFrame(t)); err != nil {
			t.Fatal(err)
		}
	}
	if sent := net.Stats().MessagesSent; sent != 1 {
		t.Fatalf("sent %d datagrams, want 1 size-triggered batch", sent)
	}
	net.RunFor(10 * time.Millisecond)
	if len(*got) != 3 {
		t.Fatalf("received %d messages, want 3", len(*got))
	}
}

// TestBatcherRespectsMaxBytes: a coalesced datagram never exceeds
// MaxBytes, framing overhead included — a frame that would push the
// batch past the bound flushes the queue first and starts the next
// batch, instead of riding along and fragmenting at the IP layer.
func TestBatcherRespectsMaxBytes(t *testing.T) {
	net := memnet.New(memnet.Config{Seed: 1})
	src := net.Attach("lan0/a", "lan0", nil)
	var sizes []int
	net.Attach("lan0/b", "lan0", func(_ transport.Addr, data []byte) {
		sizes = append(sizes, len(data))
	})
	raw := renewFrame(t)
	// Two frames fit a solo datagram each but not one batch: every
	// coalesced send must stay under the bound, so each flush carries
	// exactly one frame.
	maxBytes := 2 * len(raw)
	b := transport.NewBatcher(src, net, transport.BatcherConfig{
		MaxBytes: maxBytes, FlushDelay: time.Millisecond,
	})
	const n = 6
	for i := 0; i < n; i++ {
		if err := b.Unicast("lan0/b", raw); err != nil {
			t.Fatal(err)
		}
	}
	net.RunFor(20 * time.Millisecond)
	if len(sizes) < 2 {
		t.Fatalf("received %d datagrams, want the queue split across several", len(sizes))
	}
	total := 0
	for _, s := range sizes {
		if s > maxBytes {
			t.Fatalf("datagram of %d bytes exceeds MaxBytes %d", s, maxBytes)
		}
		total += s
	}
	if total < n*len(raw) {
		t.Fatalf("received %d bytes total, want at least %d (no frame lost to the split)", total, n*len(raw))
	}
}

// TestBatcherBypassesIneligible: conversation-opening messages are
// never delayed.
func TestBatcherBypassesIneligible(t *testing.T) {
	net := memnet.New(memnet.Config{Seed: 1})
	got := collect(t, net, "lan0/b")
	src := net.Attach("lan0/a", "lan0", nil)
	b := transport.NewBatcher(src, net, transport.BatcherConfig{FlushDelay: time.Hour})

	if err := b.Unicast("lan0/b", queryFrame(t)); err != nil {
		t.Fatal(err)
	}
	if sent := net.Stats().MessagesSent; sent != 1 {
		t.Fatalf("query was queued (%d datagrams sent), want immediate send", sent)
	}
	net.RunFor(10 * time.Millisecond)
	if len(*got) != 1 || (*got)[0] != wire.TQuery {
		t.Fatalf("received %v, want one query", *got)
	}
}

// TestBatcherSoloFlushStaysRaw: a queue holding one message goes out as
// a plain frame, paying no batch overhead.
func TestBatcherSoloFlushStaysRaw(t *testing.T) {
	net := memnet.New(memnet.Config{Seed: 1})
	got := collect(t, net, "lan0/b")
	src := net.Attach("lan0/a", "lan0", nil)
	b := transport.NewBatcher(src, net, transport.BatcherConfig{FlushDelay: time.Millisecond})

	raw := renewFrame(t)
	if err := b.Unicast("lan0/b", raw); err != nil {
		t.Fatal(err)
	}
	net.RunFor(20 * time.Millisecond)
	st := net.Stats()
	if st.MessagesSent != 1 || st.BytesSent != uint64(len(raw)) {
		t.Fatalf("sent %d msgs / %d bytes, want 1 raw frame of %d bytes",
			st.MessagesSent, st.BytesSent, len(raw))
	}
	if len(*got) != 1 {
		t.Fatalf("received %d messages, want 1", len(*got))
	}
}

// TestBatcherCloseFlushes: close drains pending queues before closing
// the bearer.
func TestBatcherCloseFlushes(t *testing.T) {
	net := memnet.New(memnet.Config{Seed: 1})
	got := collect(t, net, "lan0/b")
	src := net.Attach("lan0/a", "lan0", nil)
	b := transport.NewBatcher(src, net, transport.BatcherConfig{FlushDelay: time.Hour})

	for i := 0; i < 4; i++ {
		if err := b.Unicast("lan0/b", renewFrame(t)); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	net.RunFor(10 * time.Millisecond)
	if len(*got) != 4 {
		t.Fatalf("received %d messages after close, want 4", len(*got))
	}
	if err := b.Unicast("lan0/b", renewFrame(t)); err == nil {
		t.Fatal("send after close accepted")
	}
}

// TestBatcherLossDropsWholeFrameOnly: a lost batch degrades to exactly
// its own messages — neighbouring datagrams are unaffected and partial
// corruption is impossible.
func TestBatcherLossDropsWholeFrameOnly(t *testing.T) {
	net := memnet.New(memnet.Config{Seed: 1, Loss: 1.0})
	got := collect(t, net, "lan0/b")
	src := net.Attach("lan0/a", "lan0", nil)
	b := transport.NewBatcher(src, net, transport.BatcherConfig{FlushDelay: time.Millisecond})
	for i := 0; i < 6; i++ {
		if err := b.Unicast("lan0/b", renewFrame(t)); err != nil {
			t.Fatal(err)
		}
	}
	net.RunFor(20 * time.Millisecond)
	st := net.Stats()
	if len(*got) != 0 {
		t.Fatalf("received %d messages over a fully lossy link", len(*got))
	}
	if st.MessagesDropped != st.MessagesSent {
		t.Fatalf("dropped %d of %d datagrams, want all", st.MessagesDropped, st.MessagesSent)
	}
}

// TestUDPBatchRoundTrip drives the live sendmmsg/recvmmsg path (on
// linux; the portable fallback elsewhere): a multi-destination batch
// send must arrive intact at both receivers.
func TestUDPBatchRoundTrip(t *testing.T) {
	mk := func() (*udpnet.Node, chan wire.MsgType) {
		n, err := udpnet.Listen(udpnet.Config{Bind: "127.0.0.1:0"})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		ch := make(chan wire.MsgType, 64)
		d := wire.NewDecoder()
		n.SetHandler(func(_ transport.Addr, data []byte) {
			if wire.IsBatchFrame(data) {
				_ = wire.ForEachInBatch(data, func(msg []byte) error {
					if e, err := d.Decode(msg); err == nil {
						ch <- e.Type
					}
					return nil
				})
				return
			}
			if e, err := d.Decode(data); err == nil {
				ch <- e.Type
			}
		})
		return n, ch
	}
	sender, _ := mk()
	r1, ch1 := mk()
	r2, ch2 := mk()

	var msgs []transport.Outgoing
	for i := 0; i < 8; i++ {
		to := r1.Addr()
		if i%2 == 1 {
			to = r2.Addr()
		}
		msgs = append(msgs, transport.Outgoing{To: to, Data: renewFrame(t)})
	}
	batch := wire.EncodeBatch([][]byte{renewFrame(t), renewFrame(t), renewFrame(t)})
	msgs = append(msgs, transport.Outgoing{To: r1.Addr(), Data: batch})
	if err := sender.UnicastBatch(msgs); err != nil {
		t.Fatal(err)
	}
	want1, want2 := 4+3, 4
	deadline := time.After(5 * time.Second)
	got1, got2 := 0, 0
	for got1 < want1 || got2 < want2 {
		select {
		case ty := <-ch1:
			if ty != wire.TRenew {
				t.Fatalf("receiver 1 got %v", ty)
			}
			got1++
		case ty := <-ch2:
			if ty != wire.TRenew {
				t.Fatalf("receiver 2 got %v", ty)
			}
			got2++
		case <-deadline:
			t.Fatalf("timeout: receiver1 %d/%d, receiver2 %d/%d", got1, want1, got2, want2)
		}
	}
}
