//go:build linux && amd64

package udpnet

// The linux fast path: batch datagram syscalls via raw sendmmsg(2) and
// recvmmsg(2). The stdlib syscall package exposes the syscall numbers
// but not wrappers, so the mmsghdr plumbing lives here, gated to
// linux/amd64 where the struct layout below is the kernel ABI; every
// other platform (and any runtime error here) falls back to the
// portable one-datagram-per-syscall path, so behaviour is identical
// everywhere — only the syscall count changes.

import (
	"net"
	"runtime"
	"syscall"
	"unsafe"

	"semdisco/internal/transport"
)

// mmsghdr mirrors the kernel's struct mmsghdr on amd64: a msghdr plus
// the per-message transferred byte count, padded to 8-byte alignment.
type mmsghdr struct {
	hdr syscall.Msghdr
	len uint32
	_   [4]byte
}

// recvVlen is how many datagrams one recvmmsg call may return; each gets
// a full 64KB buffer so no UDP datagram can be truncated.
const recvVlen = 16

// sysSENDMMSG is sendmmsg(2) on linux/amd64; the stdlib syscall table
// predates the syscall and only carries SYS_RECVMMSG. The build tag
// above pins the architecture this number is valid for.
const sysSENDMMSG = 307

// sockaddrInet4 fills sa for an IPv4 destination, returning false for
// non-IPv4 addresses (those take the fallback write path).
func sockaddrInet4(sa *syscall.RawSockaddrInet4, a *net.UDPAddr) bool {
	ip4 := a.IP.To4()
	if ip4 == nil {
		return false
	}
	sa.Family = syscall.AF_INET
	sa.Port = uint16(a.Port)<<8 | uint16(a.Port)>>8 // htons
	copy(sa.Addr[:], ip4)
	return true
}

// writeBatchOS sends msgs[0:n] with sendmmsg and returns how many were
// handed to the kernel; the caller finishes the rest with plain writes.
func writeBatchOS(n *Node, dsts []*net.UDPAddr, msgs []transport.Outgoing) int {
	if len(msgs) < 2 {
		return 0
	}
	rc, err := n.conn.SyscallConn()
	if err != nil {
		return 0
	}
	sas := make([]syscall.RawSockaddrInet4, len(msgs))
	iovs := make([]syscall.Iovec, len(msgs))
	hdrs := make([]mmsghdr, 0, len(msgs))
	bytes := make([]int, 0, len(msgs))
	for i, m := range msgs {
		if len(m.Data) == 0 || !sockaddrInet4(&sas[i], dsts[i]) {
			// Mixed address families: let the fallback loop handle all of
			// it rather than reordering datagrams around the batch.
			return 0
		}
		iovs[i] = syscall.Iovec{Base: &m.Data[0], Len: uint64(len(m.Data))}
		hdrs = append(hdrs, mmsghdr{hdr: syscall.Msghdr{
			Name:    (*byte)(unsafe.Pointer(&sas[i])),
			Namelen: syscall.SizeofSockaddrInet4,
			Iov:     &iovs[i],
			Iovlen:  1,
		}})
		bytes = append(bytes, len(m.Data))
	}
	sent := 0
	werr := rc.Write(func(fd uintptr) bool {
		for sent < len(hdrs) {
			rn, _, errno := syscall.Syscall6(sysSENDMMSG, fd,
				uintptr(unsafe.Pointer(&hdrs[sent])), uintptr(len(hdrs)-sent),
				syscall.MSG_DONTWAIT, 0, 0)
			if errno == syscall.EINTR {
				continue
			}
			if errno == syscall.EAGAIN {
				return false // wait for writability, then retry
			}
			if errno != 0 {
				return true // hand the rest to the fallback loop
			}
			mBatchSends.Inc()
			sent += int(rn)
		}
		return true
	})
	runtime.KeepAlive(sas)
	runtime.KeepAlive(iovs)
	runtime.KeepAlive(msgs)
	if werr != nil && sent == 0 {
		return 0
	}
	for i := 0; i < sent; i++ {
		mSentPackets.Inc()
		mSentBytes.Add(uint64(bytes[i]))
	}
	return sent
}

// readLoopOS drains the socket with recvmmsg until it closes, returning
// true; false (socket not raw-accessible) selects the portable loop.
func readLoopOS(n *Node, conn *net.UDPConn) bool {
	rc, err := conn.SyscallConn()
	if err != nil {
		return false
	}
	bufs := make([][]byte, recvVlen)
	sas := make([]syscall.RawSockaddrAny, recvVlen)
	iovs := make([]syscall.Iovec, recvVlen)
	hdrs := make([]mmsghdr, recvVlen)
	for i := range bufs {
		bufs[i] = make([]byte, 64*1024)
		iovs[i] = syscall.Iovec{Base: &bufs[i][0], Len: uint64(len(bufs[i]))}
		hdrs[i] = mmsghdr{hdr: syscall.Msghdr{
			Name:    (*byte)(unsafe.Pointer(&sas[i])),
			Namelen: syscall.SizeofSockaddrAny,
			Iov:     &iovs[i],
			Iovlen:  1,
		}}
	}
	for {
		got := 0
		err := rc.Read(func(fd uintptr) bool {
			for i := range hdrs {
				hdrs[i].hdr.Namelen = syscall.SizeofSockaddrAny
				hdrs[i].len = 0
			}
			rn, _, errno := syscall.Syscall6(syscall.SYS_RECVMMSG, fd,
				uintptr(unsafe.Pointer(&hdrs[0])), recvVlen,
				syscall.MSG_DONTWAIT, 0, 0)
			switch errno {
			case 0:
				got = int(rn)
				return true
			case syscall.EINTR:
				return false
			case syscall.EAGAIN:
				return false // block on the netpoller until readable
			default:
				got = -1 // socket gone (closed) or unrecoverable
				return true
			}
		})
		if err != nil || got < 0 {
			return true // closed
		}
		if got >= 2 {
			mBatchRecvs.Inc()
		}
		for i := 0; i < got; i++ {
			from := sockaddrToUDP(&sas[i])
			if from == nil {
				continue
			}
			n.dispatch(transport.Addr(from.String()), bufs[i][:hdrs[i].len])
		}
	}
}

// sockaddrToUDP converts a raw source address to a net.UDPAddr.
func sockaddrToUDP(sa *syscall.RawSockaddrAny) *net.UDPAddr {
	switch sa.Addr.Family {
	case syscall.AF_INET:
		s4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(sa))
		return &net.UDPAddr{
			IP:   net.IPv4(s4.Addr[0], s4.Addr[1], s4.Addr[2], s4.Addr[3]),
			Port: int(s4.Port>>8 | s4.Port<<8&0xFF00),
		}
	case syscall.AF_INET6:
		s6 := (*syscall.RawSockaddrInet6)(unsafe.Pointer(sa))
		ip := make(net.IP, net.IPv6len)
		copy(ip, s6.Addr[:])
		return &net.UDPAddr{
			IP:   ip,
			Port: int(s6.Port>>8 | s6.Port<<8&0xFF00),
			Zone: zoneOf(s6.Scope_id),
		}
	}
	return nil
}

func zoneOf(scope uint32) string {
	if scope == 0 {
		return ""
	}
	if ifi, err := net.InterfaceByIndex(int(scope)); err == nil {
		return ifi.Name
	}
	return ""
}
