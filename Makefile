GO ?= go

.PHONY: build test race vet bench bench-match bench-chaos chaos docs-check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/obs/... ./internal/registry/... ./internal/federation/... ./internal/runtime/... ./internal/ontology/... ./internal/match/... ./internal/wire/...

vet:
	$(GO) vet ./...

# Registry benchmarks with allocation stats; emits BENCH_registry.json.
bench:
	sh scripts/bench.sh

# Matchmaking/subsumption benchmarks (compiled vs map baselines) with
# allocation stats; emits BENCH_match.json.
bench-match:
	sh scripts/bench.sh match

# Chaos regression suite under the race detector: fault-injection unit
# tests plus the partition-heal, dup-storm and soak scenarios.
chaos:
	$(GO) test -race -run 'TestFault|TestProbation|TestChaos|TestRetryBackoff|TestStopCancels|TestFallback' ./internal/transport/memnet/... ./internal/discovery/... ./internal/node/... ./internal/integration/...
	$(GO) run ./cmd/simdisco -chaos

# Fault-sweep benchmarks (availability/latency degradation curves);
# emits BENCH_chaos.json.
bench-chaos:
	sh scripts/bench.sh chaos

# Fails when OBSERVABILITY.md drifts from the metrics registered in code.
docs-check:
	sh scripts/check_obs_docs.sh
