// Package integration holds whole-system soak tests: multi-LAN worlds
// with service churn and registry failures, driven for minutes of
// virtual time while asserting the architecture's end-to-end
// invariants — freshness (leases bound staleness), convergence
// (stable services become discoverable), and liveness (queries always
// complete by registry, failover, or fallback).
package integration
