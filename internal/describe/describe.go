// Package describe implements the paper's pluggable service description
// models and the "next header" dispatch that lets one distribution
// infrastructure carry them all:
//
//	"The infrastructure should support different kinds of service
//	 description mechanisms, ranging from simple (name, id, URI
//	 specifying a pre-agreed service type), to rich (e.g. semantic
//	 descriptions). … Some kind of 'next header' field like in the
//	 Internet Protocol could be present in all registry protocol
//	 messages, allowing nodes to choose the right handling of the
//	 service description payload."  (MILCOM'07, elaborating ICDEW'06 §4.2)
//
// Three models ship in this package: the URI model (WS-Discovery-style
// type matching), the key/value template model (UDDI-style registry
// information model fields), and the semantic model (OWL-S-style
// profiles matched by the internal/match matchmaker). Registries
// dispatch payloads to models by Kind and silently skip kinds they do
// not understand — exactly the filtering behaviour the paper wants for
// constrained nodes.
package describe

import (
	"fmt"
	"sort"
)

// Kind is the "next header" value identifying a description model.
type Kind uint8

// Reserved kinds. Values above KindSemantic are free for extensions.
const (
	// KindInvalid marks an absent or unparseable payload kind.
	KindInvalid Kind = 0
	// KindURI is the lightweight model: a pre-agreed service type URI.
	KindURI Kind = 1
	// KindKV is the UDDI-like model: named attributes and a type URI.
	KindKV Kind = 2
	// KindSemantic is the rich model: an OWL-S-style semantic profile.
	KindSemantic Kind = 3
)

// String names the kind for logs and reports.
func (k Kind) String() string {
	switch k {
	case KindURI:
		return "uri"
	case KindKV:
		return "kv"
	case KindSemantic:
		return "semantic"
	case KindInvalid:
		return "invalid"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Description is one service description under some model.
type Description interface {
	// Kind returns the model's next-header value.
	Kind() Kind
	// ServiceKey identifies the described service (an IRI or URI);
	// two descriptions of the same service share a key.
	ServiceKey() string
	// Endpoint is where the service is invoked once discovered.
	Endpoint() string
	// Encode renders the description payload for the wire.
	Encode() []byte
}

// Query is one service query under some model.
type Query interface {
	// Kind returns the model's next-header value.
	Kind() Kind
	// Encode renders the query payload for the wire.
	Encode() []byte
}

// Evaluation is the outcome of evaluating a query against a
// description: whether it matches, its qualitative degree (model
// specific, larger is better; the semantic model uses match.Degree),
// and a score for ranking within a degree.
type Evaluation struct {
	Matched bool
	Degree  uint8
	Score   float64
}

// Model is one pluggable description scheme.
type Model interface {
	// Kind returns the next-header value the model claims.
	Kind() Kind
	// Name is a short human-readable model name.
	Name() string
	// DecodeDescription parses a description payload.
	DecodeDescription(b []byte) (Description, error)
	// DecodeQuery parses a query payload.
	DecodeQuery(b []byte) (Query, error)
	// Evaluate matches a query against a description of the same kind.
	Evaluate(q Query, d Description) Evaluation
	// SummaryTokens returns the category tokens a registry gossips to
	// peers so they can prune forwarding (§4.9 "send out summary
	// information about the advertisements present in a registry").
	SummaryTokens(d Description) []string
	// QueryTokens returns tokens a description must share at least one
	// of for the query to possibly match; prunable=false means the
	// query cannot be pruned by summaries and must always be forwarded.
	QueryTokens(q Query) (tokens []string, prunable bool)
}

// ConceptIndexer is an optional Model extension for models grounded in
// a compiled ontology. It exposes the interned concept-ID view of the
// summary-token contract: a description whose concept ID is declared
// can match a query only if that ID lies in the query's subsumption
// closure. The registry's subscription index uses it to post standing
// queries under integer concept IDs instead of expanded token strings —
// one O(1) bucket probe per publish instead of a closure-sized token
// walk. Both methods report ok=false when the value is undeclared or
// the ontology carries no compiled index; callers must then fall back
// to the string-token domain (QueryTokens/SummaryTokens), which
// degrades both sides of the match symmetrically.
type ConceptIndexer interface {
	// DescriptionConceptID returns the description's declared concept.
	DescriptionConceptID(d Description) (int32, bool)
	// QueryConceptIDs returns every concept ID a matching description
	// may declare (the query category's subsumption closure).
	QueryConceptIDs(q Query) ([]int32, bool)
}

// Registry holds the models a node understands, keyed by Kind.
// It is populated at startup and read-only afterwards, so it is safe
// for concurrent readers.
type Registry struct {
	models map[Kind]Model
}

// NewRegistry returns a model registry containing the given models.
// Registering two models with the same kind is a programming error and
// panics at startup.
func NewRegistry(models ...Model) *Registry {
	r := &Registry{models: make(map[Kind]Model, len(models))}
	for _, m := range models {
		if m.Kind() == KindInvalid {
			panic("describe: model claims KindInvalid")
		}
		if _, dup := r.models[m.Kind()]; dup {
			panic(fmt.Sprintf("describe: duplicate model for kind %v", m.Kind()))
		}
		r.models[m.Kind()] = m
	}
	return r
}

// Model returns the model for the kind; ok is false when the node does
// not understand the kind (the caller then skips the payload, as the
// paper's filtering rule prescribes).
func (r *Registry) Model(k Kind) (Model, bool) {
	m, ok := r.models[k]
	return m, ok
}

// Kinds returns the understood kinds in ascending order.
func (r *Registry) Kinds() []Kind {
	out := make([]Kind, 0, len(r.models))
	for k := range r.models {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DecodeDescription dispatches payload decoding by kind.
func (r *Registry) DecodeDescription(k Kind, b []byte) (Description, error) {
	m, ok := r.Model(k)
	if !ok {
		return nil, fmt.Errorf("describe: no model for kind %v", k)
	}
	return m.DecodeDescription(b)
}

// DecodeQuery dispatches query decoding by kind.
func (r *Registry) DecodeQuery(k Kind, b []byte) (Query, error) {
	m, ok := r.Model(k)
	if !ok {
		return nil, fmt.Errorf("describe: no model for kind %v", k)
	}
	return m.DecodeQuery(b)
}

// PayloadHash hashes a payload under its kind (FNV-1a, 64-bit) for
// cache keying. Payloads are opaque at this layer, so hashing the raw
// bytes plus the next-header value is the only kind-independent
// identity a registry can use to memoize decode work (query-plan
// caching). Callers must still compare the payload on a hash hit —
// the hash is a cache key, not an identity proof.
func PayloadHash(k Kind, b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	h ^= uint64(k)
	h *= prime64
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}
