package experiments

import (
	"fmt"
	"time"

	"semdisco/internal/describe"
	"semdisco/internal/federation"
	"semdisco/internal/metrics"
	"semdisco/internal/node"
	"semdisco/internal/sim"
	"semdisco/internal/transport/memnet"
	"semdisco/internal/wire"
)

// E22Federation measures the hierarchical multi-domain directory at
// scale: N single-gateway domains hang off one root registry, every
// gateway announces its namespace into the gossiped directory, and the
// sweep reports (a) how long the registry-of-registries takes to
// converge on all N domains, (b) the WAN bytes that convergence costs,
// (c) the latency of a domain-pinned cross-domain query once converged
// (directory lookup → direct forward, no WAN flood), and (d) how long
// the surviving directory takes to reconverge after ~10% of the domains
// depart at once (tombstone propagation under churn).
func E22Federation(domainCounts []int, seed int64) *metrics.Table {
	t := metrics.NewTable("E22 hierarchical federation (directory sweep)",
		"domains", "converge", "convKB", "xq latency", "churn", "reconverge")
	for _, n := range domainCounts {
		r := runE22(n, seed)
		t.AddRow(n, fmtDur(r.converge), r.convKB, fmtDur(r.queryLatency),
			r.churned, fmtDur(r.reconverge))
	}
	t.AddNote("star topology: every domain gateway seeds the root; 1s directory " +
		"gossip; converge = all gateways hold all domains; convKB = maintenance " +
		"bytes delivered until then; xq latency = client query pinned to the " +
		"farthest domain after convergence; churn departs ~10%% of gateways and " +
		"reconverge = survivors all hold their tombstones")
	return t
}

type e22Result struct {
	converge     time.Duration
	convKB       float64
	queryLatency time.Duration
	churned      int
	reconverge   time.Duration
}

func runE22(n int, seed int64) e22Result {
	w := sim.NewWorld(sim.Config{Seed: seed, Net: memnetJitter()})
	rootCfg := e22Cfg(federation.RoleRoot, "core")
	// The root is the registry of registries: its peer table must hold
	// every domain gateway, or eviction churn degrades directory gossip
	// into per-readd full resyncs (most re-added peers are evicted again
	// before the next gossip tick even reaches them).
	rootCfg.MaxPeers = n + 16
	root := w.AddRegistry("wan", "root", rootCfg)
	gws := make([]*sim.RegistryHandle, n)
	for i := range gws {
		cfg := e22Cfg(federation.RoleFederated, e22Domain(i))
		cfg.Seeds = []wire.PeerInfo{root.PeerInfo()}
		cfg.RootAddr = string(root.Addr)
		gws[i] = w.AddRegistry(fmt.Sprintf("lan%d", i), fmt.Sprintf("gw%d", i), cfg)
	}
	w.Net.ResetStats()

	// (a)+(b) Convergence: every gateway holds every domain (n + core).
	var res e22Result
	start := w.Net.Now()
	for deadline := start.Add(5 * time.Minute); w.Net.Now().Before(deadline); {
		w.Run(250 * time.Millisecond)
		if e22Converged(gws, n+1, nil) {
			break
		}
	}
	res.converge = w.Net.Now().Sub(start)
	s := w.Net.Stats()
	res.convKB = float64(s.DeliveredByCategory[wire.CatMaintenance].Bytes) / 1024

	// (c) Cross-domain query latency: a client in domain 0 queries the
	// farthest domain by name. The gateway's directory resolves it to
	// one direct forward — the root never sees the query.
	target := gws[n-1]
	now := w.Net.Now()
	if _, _, err := target.Reg.Store().Publish(e21Advert(w, n-1, 0), now); err != nil {
		panic(err)
	}
	cli := w.AddClient("lan0", "c0", fastClient(gws[0].PeerInfo()))
	w.Run(2 * time.Second) // client bootstraps onto its gateway
	spec := e22Spec(w, n-1)
	spec.Domain = e22Domain(n - 1)
	out := cli.Query(spec, 10*time.Second)
	if !out.Completed || len(out.Adverts) == 0 {
		panic(fmt.Sprintf("E22 n=%d: cross-domain query failed (completed=%v, adverts=%d)",
			n, out.Completed, len(out.Adverts)))
	}
	res.queryLatency = out.Elapsed

	// (d) Churn: ~10% of the gateways (never the client's or the query
	// target's) depart gracefully; their tombstones must reach every
	// survivor through the root's relay gossip.
	res.churned = n / 10
	if res.churned == 0 {
		res.churned = 1
	}
	dead := map[string]bool{}
	for i := 1; i <= res.churned; i++ {
		gws[i].Reg.Stop()
		dead[e22Domain(i)] = true
	}
	survivors := append([]*sim.RegistryHandle{gws[0]}, gws[res.churned+1:]...)
	start = w.Net.Now()
	for deadline := start.Add(5 * time.Minute); w.Net.Now().Before(deadline); {
		w.Run(250 * time.Millisecond)
		if e22Converged(survivors, n+1, dead) {
			break
		}
	}
	res.reconverge = w.Net.Now().Sub(start)
	return res
}

// e22Converged reports whether every listed gateway's directory holds
// `domains` distinct namespaces, with every domain in `dead` (if any)
// marked as a tombstone.
func e22Converged(gws []*sim.RegistryHandle, domains int, dead map[string]bool) bool {
	for _, h := range gws {
		snap := h.Reg.DirectorySnapshot()
		if len(snap) != domains {
			return false
		}
		for _, e := range snap {
			if dead[e.Domain] != e.Tombstone {
				return false
			}
		}
	}
	return true
}

func e22Cfg(role federation.Role, domain string) federation.Config {
	cfg := fastRegistry()
	cfg.Role = role
	cfg.Domain = domain
	cfg.DirectoryInterval = time.Second
	// The churn phase must observe tombstones before they age out of the
	// survivors' directories.
	cfg.TombstoneTTL = 10 * time.Minute
	return cfg
}

func e22Domain(i int) string { return fmt.Sprintf("dom%03d", i) }

// e22Spec queries for the URI-model advert e21Advert publishes into
// domain i.
func e22Spec(w *sim.World, i int) node.QuerySpec {
	q := describe.URIQuery{TypeURI: fmt.Sprintf("urn:e21:d%d:type:%d", i, 0)}
	return node.QuerySpec{Kind: describe.KindURI, Payload: q.Encode(), TTL: 3}
}

func memnetJitter() memnet.Config {
	return memnet.Config{Jitter: time.Millisecond}
}
