GO ?= go
# Pinned staticcheck release for reproducible lint runs; CI installs it,
# local runs use whatever `staticcheck` is on PATH (skipped if absent).
STATICCHECK_VERSION ?= 2024.1.1

.PHONY: build test race vet lint bench bench-match bench-chaos bench-qcache bench-scale bench-wal bench-wire bench-fed chaos docs-check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/obs/... ./internal/registry/... ./internal/federation/... ./internal/runtime/... ./internal/ontology/... ./internal/match/... ./internal/wire/... ./internal/transport/... ./internal/sim/...

vet:
	$(GO) vet ./...

# Static analysis: vet always; staticcheck when installed (CI pins
# $(STATICCHECK_VERSION); offline dev boxes may not have it).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping (go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION))"; \
	fi

# Registry benchmarks with allocation stats; emits BENCH_registry.json.
bench:
	sh scripts/bench.sh

# Matchmaking/subsumption benchmarks (compiled vs map baselines) with
# allocation stats; emits BENCH_match.json.
bench-match:
	sh scripts/bench.sh match

# Chaos regression suite under the race detector: fault-injection unit
# tests plus the partition-heal, dup-storm and soak scenarios.
chaos:
	$(GO) test -race -run 'TestFault|TestProbation|TestChaos|TestRetryBackoff|TestStopCancels|TestFallback' ./internal/transport/memnet/... ./internal/discovery/... ./internal/node/... ./internal/integration/...
	$(GO) test -race -run 'TestDirectory' ./internal/federation/...
	$(GO) run ./cmd/simdisco -chaos

# Fault-sweep benchmarks (availability/latency degradation curves);
# emits BENCH_chaos.json.
bench-chaos:
	sh scripts/bench.sh chaos

# Query result cache benchmarks (cached vs cache-off evaluate, purge
# deadline probes, E18 gateway WAN reduction); emits BENCH_qcache.json.
bench-qcache:
	sh scripts/bench.sh qcache

# Million-advert scale benchmarks (bytes/advert, publish/renew
# throughput, inverted subscription index vs linear notification scan);
# emits BENCH_scale.json. SEMDISCO_SCALE_HUGE=1 extends to 10^7 adverts.
bench-scale:
	sh scripts/bench.sh scale

# Crash-safe persistence benchmarks (WAL publish overhead incl. fsync
# group commit, cold-boot recovery from log vs compacted snapshot at
# 10^4..10^6 adverts); emits BENCH_wal.json.
bench-wal:
	sh scripts/bench.sh wal

# Transport throughput pipeline benchmarks (zero-alloc decode rates,
# datagram coalescing renews/s vs unbatched, E21 batching and
# delta-summary tables); emits BENCH_wire.json.
bench-wire:
	sh scripts/bench.sh wire

# Hierarchical federation benchmarks (E22 directory sweep: 10..500
# domains, convergence time/WAN bytes, cross-domain query latency,
# churn reconvergence); emits BENCH_fed.json.
bench-fed:
	sh scripts/bench.sh fed

# Fails when OBSERVABILITY.md drifts from the metrics registered in code.
docs-check:
	sh scripts/check_obs_docs.sh
