package baseline

import (
	"hash/fnv"
	"sort"

	"semdisco/internal/describe"
	"semdisco/internal/runtime"
	"semdisco/internal/transport"
	"semdisco/internal/uuid"
	"semdisco/internal/wire"
)

// DHTNode is one super-peer of the distributed-hash-table baseline
// (§3.3): advertisements are placed on the ring node owning the hash of
// their index token, and queries are routed the same way. Matching at
// the owner is exact string comparison of tokens — the structural
// limitation the paper calls out: a DHT registry cannot find a Radar
// when a Sensor is requested, because intermediate nodes store hashes,
// not semantics.
type DHTNode struct {
	env    *runtime.Env
	models *describe.Registry

	// ring is the full sorted member list (a one-hop DHT; routing-table
	// maintenance is out of scope for the baseline).
	ring []ringMember

	store map[uuid.UUID]dhtEntry

	// Stats counts activity.
	Stats struct {
		Stored    uint64
		Forwarded uint64
		Queries   uint64
	}
}

type ringMember struct {
	hash uint64
	info wire.PeerInfo
}

type dhtEntry struct {
	advert wire.Advertisement
	token  string
}

// NewDHT builds a DHT node; call SetRing before use.
func NewDHT(env *runtime.Env, models *describe.Registry) *DHTNode {
	return &DHTNode{env: env, models: models, store: make(map[uuid.UUID]dhtEntry)}
}

// SetRing installs the static membership (including this node).
func (d *DHTNode) SetRing(members []wire.PeerInfo) {
	d.ring = d.ring[:0]
	for _, m := range members {
		d.ring = append(d.ring, ringMember{hash: hash64(m.ID.String()), info: m})
	}
	sort.Slice(d.ring, func(i, j int) bool { return d.ring[i].hash < d.ring[j].hash })
}

// Len returns the number of advertisements this node owns.
func (d *DHTNode) Len() int { return len(d.store) }

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// owner returns the ring member owning a token (consistent hashing:
// first member clockwise from the token's hash).
func (d *DHTNode) owner(token string) (wire.PeerInfo, bool) {
	if len(d.ring) == 0 {
		return wire.PeerInfo{}, false
	}
	h := hash64(token)
	i := sort.Search(len(d.ring), func(i int) bool { return d.ring[i].hash >= h })
	if i == len(d.ring) {
		i = 0
	}
	return d.ring[i].info, true
}

// indexToken extracts the single string a description is indexed under:
// the type URI for URI/KV descriptions, the category IRI for semantic
// profiles. ok=false when the description carries no token.
func (d *DHTNode) indexToken(kind describe.Kind, payload []byte) (string, bool) {
	model, ok := d.models.Model(kind)
	if !ok {
		return "", false
	}
	desc, err := model.DecodeDescription(payload)
	if err != nil {
		return "", false
	}
	toks := model.SummaryTokens(desc)
	if len(toks) == 0 {
		return "", false
	}
	return toks[0], true
}

// queryToken extracts the literal requested token from a query: the
// type URI, or the category IRI. No expansion happens — that is the
// baseline's defining restriction.
func (d *DHTNode) queryToken(kind describe.Kind, payload []byte) (string, bool) {
	model, ok := d.models.Model(kind)
	if !ok {
		return "", false
	}
	q, err := model.DecodeQuery(payload)
	if err != nil {
		return "", false
	}
	switch tq := q.(type) {
	case *describe.URIQuery:
		return tq.TypeURI, true
	case *describe.KVQuery:
		if tq.TypeURI == "" {
			return "", false
		}
		return tq.TypeURI, true
	case *describe.SemanticQuery:
		if tq.Template.Category == "" {
			return "", false
		}
		return string(tq.Template.Category), true
	default:
		return "", false
	}
}

// HandleEnvelope implements runtime.Handler.
func (d *DHTNode) HandleEnvelope(env *wire.Envelope, from transport.Addr) {
	switch b := env.Body.(type) {
	case *wire.Publish:
		token, ok := d.indexToken(b.Advert.Kind, b.Advert.Payload)
		if !ok {
			d.env.Send(from, wire.PublishAck{AdvertID: b.Advert.ID, OK: false, Error: "untokenizable description"})
			return
		}
		// Ack at the entry node, then place the advert at its owner.
		// place may store the advert, so copy the borrowed payload.
		d.env.Send(from, wire.PublishAck{AdvertID: b.Advert.ID, OK: true, LeaseMillis: b.Advert.LeaseMillis})
		d.place(wire.CloneAdvert(b.Advert), token)
	case *wire.AdvertForward:
		token, ok := d.indexToken(b.Advert.Kind, b.Advert.Payload)
		if ok {
			d.storeAdvert(wire.CloneAdvert(b.Advert), token)
		}
	case *wire.Renew:
		// DHT baseline keeps no leases; ack to keep providers quiet.
		d.env.Send(from, wire.RenewAck{AdvertID: b.AdvertID, OK: true, LeaseMillis: 1 << 40})
	case *wire.Query:
		d.Stats.Queries++
		token, ok := d.queryToken(b.Kind, b.Payload)
		if !ok {
			// Unroutable query (no exact token): a real DHT cannot
			// answer it; reply empty.
			d.env.Send(transport.Addr(b.ReplyAddr), wire.QueryResult{QueryID: b.QueryID, Complete: true})
			return
		}
		owner, _ := d.owner(token)
		if owner.ID == d.env.ID {
			d.answer(b, token)
			return
		}
		// Route to the owner; it replies directly to the client
		// (Send marshals synchronously, so the borrowed body is safe).
		d.Stats.Forwarded++
		d.env.Send(transport.Addr(owner.Addr), b)
	}
}

func (d *DHTNode) place(adv wire.Advertisement, token string) {
	owner, ok := d.owner(token)
	if !ok || owner.ID == d.env.ID {
		d.storeAdvert(adv, token)
		return
	}
	d.Stats.Forwarded++
	d.env.Send(transport.Addr(owner.Addr), wire.AdvertForward{Advert: adv})
}

func (d *DHTNode) storeAdvert(adv wire.Advertisement, token string) {
	d.store[adv.ID] = dhtEntry{advert: adv, token: token}
	d.Stats.Stored++
}

// answer matches by exact token equality — no subsumption, no ranking
// beyond determinism.
func (d *DHTNode) answer(q *wire.Query, token string) {
	var ids []uuid.UUID
	for id, e := range d.store {
		if e.token == token && e.advert.Kind == q.Kind {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return uuid.Compare(ids[i], ids[j]) < 0 })
	limit := int(q.MaxResults)
	if limit <= 0 {
		limit = 25
	}
	if q.BestOnly {
		limit = 1
	}
	if len(ids) > limit {
		ids = ids[:limit]
	}
	hits := make([]wire.Advertisement, len(ids))
	for i, id := range ids {
		hits[i] = d.store[id].advert
	}
	d.env.Send(transport.Addr(q.ReplyAddr), wire.QueryResult{QueryID: q.QueryID, Adverts: hits, Complete: true})
}
