GO ?= go

.PHONY: build test race vet bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/registry/... ./internal/federation/... ./internal/runtime/...

vet:
	$(GO) vet ./...

# Registry benchmarks with allocation stats; emits BENCH_registry.json.
bench:
	sh scripts/bench.sh
