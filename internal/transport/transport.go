// Package transport defines the bearer abstraction underneath the
// generic discovery protocol (Fig. 5: "SOAP … would need both unicast
// and multicast bindings"). Protocol logic is written against this
// interface only, so the identical state machines run on the
// deterministic in-memory simulator (memnet) for experiments and on
// real UDP sockets (udpnet) for deployment.
//
// Both bearers report traffic to the runtime metrics layer: udpnet
// emits transport.udp.* (packets, bytes, executor-queue drops) and
// memnet emits transport.sim.* (messages, bytes, simulated drops). See
// OBSERVABILITY.md for the full reference.
package transport

import "time"

// Addr is a transport address. The simulator uses "lan/name" strings;
// the UDP transport uses "host:port".
type Addr string

// Handler consumes a received datagram. Implementations must not retain
// the data slice after returning.
type Handler func(from Addr, data []byte)

// Iface is one node's attachment to a network: unicast to an address
// and multicast to the local scope (the node's LAN segment).
type Iface interface {
	// Addr returns this attachment's address.
	Addr() Addr
	// Unicast sends a datagram to one address. Delivery is best-effort,
	// like UDP: errors are reserved for local failures (closed iface),
	// not remote ones.
	Unicast(to Addr, data []byte) error
	// Multicast sends a datagram to every node in the local scope.
	// WANs deliberately have no multicast (§4.5: "for WANs, the use of
	// multicast places a too heavy burden on the network").
	Multicast(data []byte) error
	// Close detaches from the network; subsequent sends fail.
	Close() error
}

// Clock provides time and deferred execution to protocol logic.
// The simulator implements it with virtual time; the UDP runtime with
// the real clock.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// After schedules fn to run once, d from now, on the network's
	// event loop (simulator) or a timer goroutine (UDP).
	After(d time.Duration, fn func()) CancelFunc
}

// CancelFunc cancels a pending After callback; calling it after the
// callback ran is a no-op.
type CancelFunc func()
