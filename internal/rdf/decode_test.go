package rdf

import (
	"strings"
	"testing"
)

func TestParseNTriples(t *testing.T) {
	src := `<http://example.org/alice> <http://example.org/knows> <http://example.org/bob> .
<http://example.org/alice> <http://example.org/name> "Alice" .
_:b0 <http://example.org/name> "anonymous"@en .
<http://example.org/alice> <http://example.org/age> "30"^^<http://www.w3.org/2001/XMLSchema#integer> .
`
	g, err := ParseTurtle(src)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 4 {
		t.Fatalf("parsed %d triples, want 4", g.Len())
	}
	if !g.Has(Triple{alice, knows, bob}) {
		t.Fatal("missing alice-knows-bob")
	}
	if !g.Has(Triple{Blank("b0"), name, LangLiteral("anonymous", "en")}) {
		t.Fatal("missing blank-node lang literal")
	}
	if !g.Has(Triple{alice, IRI(ex + "age"), IntLiteral(30)}) {
		t.Fatal("missing typed literal")
	}
}

func TestParseTurtlePrefixesAndLists(t *testing.T) {
	src := `
@prefix ex: <http://example.org/> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .

ex:Radar a ex:Class ;
    rdfs:subClassOf ex:Sensor, ex:Device ;
    rdfs:label "radar station" .

ex:alice ex:knows ex:bob . # trailing comment
`
	g, err := ParseTurtle(src)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Has(Triple{radar, IRI(RDFType), IRI(ex + "Class")}) {
		t.Fatal("'a' keyword not expanded to rdf:type")
	}
	if !g.Has(Triple{radar, IRI(RDFSSubClassOf), sensor}) ||
		!g.Has(Triple{radar, IRI(RDFSSubClassOf), IRI(ex + "Device")}) {
		t.Fatal("object list not parsed")
	}
	if !g.Has(Triple{radar, IRI(RDFSLabel), Literal("radar station")}) {
		t.Fatal("predicate list not parsed")
	}
	if !g.Has(Triple{alice, knows, bob}) {
		t.Fatal("statement after comment not parsed")
	}
}

func TestParseTurtleNumbersAndBooleans(t *testing.T) {
	src := `
@prefix ex: <http://example.org/> .
ex:s ex:int 42 ;
     ex:neg -7 ;
     ex:dec 3.25 ;
     ex:exp 1.5e3 ;
     ex:yes true ;
     ex:no false .
`
	g, err := ParseTurtle(src)
	if err != nil {
		t.Fatal(err)
	}
	s := IRI(ex + "s")
	checks := []struct {
		p    string
		want Term
	}{
		{"int", TypedLiteral("42", XSDInteger)},
		{"neg", TypedLiteral("-7", XSDInteger)},
		{"dec", TypedLiteral("3.25", XSDDecimal)},
		{"exp", TypedLiteral("1.5e3", XSDDouble)},
		{"yes", BoolLiteral(true)},
		{"no", BoolLiteral(false)},
	}
	for _, c := range checks {
		if !g.Has(Triple{s, IRI(ex + c.p), c.want}) {
			t.Errorf("missing ex:%s %v; graph:\n%s", c.p, c.want, EncodeNTriples(g))
		}
	}
}

func TestParseTurtleIntegerBeforeDot(t *testing.T) {
	g, err := ParseTurtle(`@prefix ex: <http://example.org/> . ex:s ex:p 42 .`)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Has(Triple{IRI(ex + "s"), IRI(ex + "p"), IntLiteral(42)}) {
		t.Fatal("integer directly before '.' misparsed")
	}
}

func TestParseTurtleEscapes(t *testing.T) {
	g, err := ParseTurtle(`<http://e/s> <http://e/p> "line1\nline2\t\"q\" \\ é" .`)
	if err != nil {
		t.Fatal(err)
	}
	want := Literal("line1\nline2\t\"q\" \\ é")
	if !g.Has(Triple{IRI("http://e/s"), IRI("http://e/p"), want}) {
		t.Fatalf("escape decoding wrong; got %s", EncodeNTriples(g))
	}
}

func TestParseTurtleSparqlStyleDirectives(t *testing.T) {
	src := `PREFIX ex: <http://example.org/>
ex:alice ex:knows ex:bob .`
	g, err := ParseTurtle(src)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Has(Triple{alice, knows, bob}) {
		t.Fatal("SPARQL-style PREFIX not honored")
	}
}

func TestParseTurtleBase(t *testing.T) {
	src := `@base <http://example.org/> .
<alice> <knows> <bob> .`
	g, err := ParseTurtle(src)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Has(Triple{alice, knows, bob}) {
		t.Fatalf("@base resolution failed:\n%s", EncodeNTriples(g))
	}
}

func TestParseTurtleErrors(t *testing.T) {
	cases := []struct {
		src, wantSub string
	}{
		{`ex:a ex:b ex:c .`, "undeclared prefix"},
		{`<http://e/s> <http://e/p> "unterminated .`, "unterminated string"},
		{`<http://e/s> <http://e/p> [ <http://e/q> <http://e/o>`, "blank node property list"},
		{`<http://e/s> <http://e/p> ( <http://e/a>`, "unterminated collection"},
		{`<http://e/s> <http://e/p> """x"" .`, "unterminated triple-quoted"},
		{`<http://e/s> <http://e/p> <http://e/o> ;`, "unexpected end"},
		{`@prefix ex <http://e/> .`, "malformed prefix"},
		{`<http://e/s> "lit" <http://e/o> .`, "predicate"},
		{`<http://e/s> <http://e/p> "x"@ .`, "empty language tag"},
	}
	for _, c := range cases {
		_, err := ParseTurtle(c.src)
		if err == nil {
			t.Errorf("ParseTurtle(%q) succeeded, want error containing %q", c.src, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("ParseTurtle(%q) error %q, want substring %q", c.src, err, c.wantSub)
		}
	}
}

func TestParseErrorsIncludeLineNumbers(t *testing.T) {
	_, err := ParseTurtle("<http://e/s> <http://e/p> <http://e/o> .\n\nex:a ex:b ex:c .")
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("error = %v, want line 3 reference", err)
	}
}

func TestRoundTripNTriples(t *testing.T) {
	g := NewGraph()
	g.MustAdd(Triple{alice, knows, bob})
	g.MustAdd(Triple{alice, name, LangLiteral("Alice \"A\"", "en")})
	g.MustAdd(Triple{Blank("x"), name, IntLiteral(-3)})
	enc := EncodeNTriples(g)
	back, err := ParseTurtle(enc)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, enc)
	}
	if EncodeNTriples(back) != enc {
		t.Fatalf("round trip changed graph:\n%s\nvs\n%s", enc, EncodeNTriples(back))
	}
}

func TestRoundTripTurtle(t *testing.T) {
	g := NewGraph()
	g.MustAdd(Triple{radar, IRI(RDFType), IRI(OWLClass)})
	g.MustAdd(Triple{radar, IRI(RDFSSubClassOf), sensor})
	g.MustAdd(Triple{radar, IRI(RDFSLabel), Literal("radar")})
	g.MustAdd(Triple{radar, IRI(ex + "range"), IntLiteral(120)})
	ttl := EncodeTurtle(g, map[string]string{
		"ex":   ex,
		"rdfs": "http://www.w3.org/2000/01/rdf-schema#",
		"owl":  "http://www.w3.org/2002/07/owl#",
	})
	back, err := ParseTurtle(ttl)
	if err != nil {
		t.Fatalf("re-parse of encoded Turtle failed: %v\n%s", err, ttl)
	}
	if EncodeNTriples(back) != EncodeNTriples(g) {
		t.Fatalf("turtle round trip changed graph:\n%s", ttl)
	}
	// The Turtle form should actually use the prefixes.
	if !strings.Contains(ttl, "ex:Radar") || !strings.Contains(ttl, "rdfs:subClassOf") {
		t.Fatalf("encoded Turtle did not abbreviate IRIs:\n%s", ttl)
	}
	if !strings.Contains(ttl, "a owl:Class") {
		t.Fatalf("encoded Turtle did not use the 'a' keyword:\n%s", ttl)
	}
}

func TestParseAnonymousBlankNodes(t *testing.T) {
	g, err := ParseTurtle(`
@prefix ex: <http://example.org/> .
ex:svc ex:profile [ ex:category ex:Radar ; ex:accuracy 0.9 ] .
ex:svc ex:empty [] .
`)
	if err != nil {
		t.Fatal(err)
	}
	// One blank node carries the category and accuracy.
	profiles := g.Objects(IRI(ex+"svc"), IRI(ex+"profile"))
	if len(profiles) != 1 || !profiles[0].IsBlank() {
		t.Fatalf("profile objects = %v", profiles)
	}
	bn := profiles[0]
	if !g.Has(Triple{bn, IRI(ex + "category"), IRI(ex + "Radar")}) {
		t.Fatal("blank node property list lost its triples")
	}
	empties := g.Objects(IRI(ex+"svc"), IRI(ex+"empty"))
	if len(empties) != 1 || !empties[0].IsBlank() || empties[0] == bn {
		t.Fatalf("empty [] = %v (must be a fresh blank node)", empties)
	}
}

func TestParseAnonymousBlankAsSubject(t *testing.T) {
	g, err := ParseTurtle(`
@prefix ex: <http://example.org/> .
[ ex:name "anon service" ] ex:category ex:Radar .
`)
	if err != nil {
		t.Fatal(err)
	}
	subs := g.Subjects(IRI(ex+"category"), IRI(ex+"Radar"))
	if len(subs) != 1 || !subs[0].IsBlank() {
		t.Fatalf("subjects = %v", subs)
	}
	if !g.Has(Triple{subs[0], IRI(ex + "name"), Literal("anon service")}) {
		t.Fatal("subject blank node property lost")
	}
}

func TestParseCollections(t *testing.T) {
	g, err := ParseTurtle(`
@prefix ex: <http://example.org/> .
ex:svc ex:inputs ( ex:A ex:B ex:C ) ;
       ex:none ( ) .
`)
	if err != nil {
		t.Fatal(err)
	}
	heads := g.Objects(IRI(ex+"svc"), IRI(ex+"inputs"))
	if len(heads) != 1 {
		t.Fatalf("inputs = %v", heads)
	}
	// Walk the rdf list.
	var items []Term
	cur := heads[0]
	for cur != IRI(RDFNil) {
		first, ok := g.FirstObject(cur, IRI(RDFFirst))
		if !ok {
			t.Fatalf("list node %v missing rdf:first", cur)
		}
		items = append(items, first)
		rest, ok := g.FirstObject(cur, IRI(RDFRest))
		if !ok {
			t.Fatalf("list node %v missing rdf:rest", cur)
		}
		cur = rest
	}
	if len(items) != 3 || items[0] != IRI(ex+"A") || items[2] != IRI(ex+"C") {
		t.Fatalf("list items = %v", items)
	}
	// Empty collection is rdf:nil directly.
	none := g.Objects(IRI(ex+"svc"), IRI(ex+"none"))
	if len(none) != 1 || none[0] != IRI(RDFNil) {
		t.Fatalf("empty collection = %v", none)
	}
}

func TestParseTripleQuotedStrings(t *testing.T) {
	g, err := ParseTurtle(`
@prefix ex: <http://example.org/> .
ex:svc ex:doc """line one
line "quoted" two\ttabbed""" ;
       ex:tagged """hei"""@no .
`)
	if err != nil {
		t.Fatal(err)
	}
	want := Literal("line one\nline \"quoted\" two\ttabbed")
	if !g.Has(Triple{IRI(ex + "svc"), IRI(ex + "doc"), want}) {
		t.Fatalf("long literal mangled:\n%s", EncodeNTriples(g))
	}
	if !g.Has(Triple{IRI(ex + "svc"), IRI(ex + "tagged"), LangLiteral("hei", "no")}) {
		t.Fatal("long literal language tag lost")
	}
}

func TestOWLSStyleDocument(t *testing.T) {
	// The shape a real OWL-S profile takes: nested anonymous nodes and
	// parameter collections.
	g, err := ParseTurtle(`
@prefix profile: <http://www.daml.org/services/owl-s/1.1/Profile.owl#> .
@prefix ex: <http://example.org/> .

ex:RadarService profile:presents [
    profile:serviceName "Coastal radar" ;
    profile:hasInput ( ex:AreaOfInterest ) ;
    profile:hasOutput ( ex:Track ex:Image )
] .
`)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() < 8 {
		t.Fatalf("OWL-S-style doc produced only %d triples:\n%s", g.Len(), EncodeNTriples(g))
	}
	// Round trip through canonical N-Triples.
	back, err := ParseTurtle(EncodeNTriples(g))
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != g.Len() {
		t.Fatal("round trip changed triple count")
	}
}
