// Package registry implements the autonomous "thick" registry node of
// the conceptual architecture (§4.1): it stores complete advertisements
// (not just pointers), evaluates queries itself with pluggable
// description models, purges advertisements whose leases expire,
// exercises query response control (max-k / best-only, §3.1), notifies
// subscribers about newly published matches, and doubles as the
// artifact repository for ontologies and schemas so discovery works
// disconnected from the Internet (§4.6).
//
// The store is explicit-time state — no I/O and no internal timers — so
// the same code runs deterministically under the experiment simulator
// and behind the real UDP runtime. Unlike the original single-threaded
// design, the store is safe for concurrent use: the advert and token
// maps are split across lock-striped shards (one sync.RWMutex each), so
// the read path (Evaluate, MergeRank, Summary, Adverts, Advert, Has)
// runs in parallel with itself while writes (Publish, Renew, Remove,
// ExpireThrough) take the write lock only on the shards they touch.
// Each shard owns the lease sub-table for its adverts, keeping the
// freshness check (never serve an expired advert) under the same lock
// as the index lookup. Query decoding is memoized in an LRU plan cache
// keyed by (kind, payload hash), so a federated query forwarded through
// several hops — or evaluated and then merge-ranked at the entry
// registry — decodes its payload once per node, preserving the paper's
// §3.2 claim that "query evaluation may only have to be carried out
// once".
package registry

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	stdruntime "runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"semdisco/internal/describe"
	"semdisco/internal/lease"
	"semdisco/internal/uuid"
	"semdisco/internal/wire"
)

// Store is the registry state: advertisements with leases, the model
// registry for query evaluation, subscriptions, and artifacts.
// All methods are safe for concurrent use.
type Store struct {
	models *describe.Registry

	// shards hold the advert maps, token indexes and lease sub-tables,
	// striped by advertisement ID; count tracks the live advert total so
	// Len never has to sweep the stripes.
	shards []*shard
	mask   uint32
	count  atomic.Int64

	// byService maps a description's service key to the advert that
	// currently describes it, so republished services do not pile up as
	// duplicates under fresh advertisement IDs. Service keys are opaque
	// strings, so the map is global (not striped) under its own lock; it
	// is touched only on the write path. Each mapping carries the
	// publish sequence number that wrote it (svcSeq), so a deferred
	// cleanup (Remove/ExpireThrough run dropServiceKey after the shard
	// lock is released) can compare-and-delete against the exact
	// mapping its advert established — a racing re-publish of the same
	// advert ID writes a newer sequence and is never clobbered.
	svcMu     sync.Mutex
	svcSeq    uint64
	byService map[string]svcEntry

	plans  *planCache
	qcache *queryCache

	artMu     sync.RWMutex
	artifacts map[string][]byte

	subMu   sync.RWMutex
	subs    map[uuid.UUID]*subscription
	subsArr []*subscription // deterministic iteration order

	// DefaultMaxResults caps result sets when the query does not; the
	// response-implosion guard of §3.1.
	DefaultMaxResults int
}

// shard is one lock stripe of the store. byToken indexes adverts by
// their summary tokens per kind, so prunable queries (the ones whose
// model exposes QueryTokens) evaluate only candidate buckets instead of
// scanning every advert of the kind — the same soundness argument as
// federation summary pruning, applied inside one registry. noToken
// holds adverts whose descriptions produced no summary tokens; they
// must be considered by every query conservatively.
type shard struct {
	mu      sync.RWMutex
	adverts map[uuid.UUID]*stored
	byKind  map[describe.Kind]map[uuid.UUID]*stored
	byToken map[describe.Kind]map[string]map[uuid.UUID]*stored
	noToken map[describe.Kind]map[uuid.UUID]*stored
	leases  *lease.Table

	// gen counts mutations that can change query results in this shard
	// (publish, remove, expiry purge, lease resurrection). The query
	// result cache stamps each entry with the generation vector it was
	// computed against; validation is then an O(shards) integer compare.
	// Bumps happen while the shard write lock is held, so any reader
	// that can observe mutated shard state also observes the new
	// generation — a cached entry validated against an old generation is
	// linearizable before the in-flight write.
	gen atomic.Uint64

	// nextDeadline caches leases.NextExpiry so the purge scheduler
	// (NextExpiry/ExpireThrough across all shards) reads one atomic
	// pointer per shard instead of taking every shard lock per tick.
	// nil means the shard holds no leases. Refreshed under the write
	// lock after every lease mutation. A *time.Time (not UnixNano) so
	// the simulator's zero-epoch virtual clocks round-trip exactly.
	nextDeadline atomic.Pointer[time.Time]

	// scans and matched accumulate this shard's candidate-scan activity
	// (see ShardStats); updated with one atomic add per collect pass.
	scans   atomic.Uint64
	matched atomic.Uint64
}

// bumpLocked advances the shard generation; the caller holds the shard
// write lock and has made (or is about to make) a result-affecting
// mutation.
func (sh *shard) bumpLocked() { sh.gen.Add(1) }

// refreshDeadlineLocked re-derives the cached next lease deadline; the
// caller holds the shard write lock and has just mutated the lease
// table.
func (sh *shard) refreshDeadlineLocked() {
	if t, ok := sh.leases.NextExpiry(); ok {
		sh.nextDeadline.Store(&t)
	} else {
		sh.nextDeadline.Store(nil)
	}
}

// stored is immutable once linked into a shard; updates replace the
// whole value, so readers holding a *stored never see partial state.
// svcSeq is the exception: it records which byService write this advert
// made (set after the entry is linked, read by dropServiceKey), so it
// is atomic.
type stored struct {
	advert wire.Advertisement
	desc   describe.Description
	tokens []string
	svcSeq atomic.Uint64
}

// svcEntry is one byService mapping: the advert currently describing a
// service key, tagged with the monotonically increasing sequence number
// of the publish that wrote it. Deferred cleanups compare-and-delete on
// (id, seq) so they can never clobber a newer mapping written by a
// racing re-publish of the same advert ID.
type svcEntry struct {
	id  uuid.UUID
	seq uint64
}

type subscription struct {
	id     uuid.UUID
	kind   describe.Kind
	query  describe.Query
	notify string // opaque subscriber address, returned in events
	// expires leases the subscription (§4.8 applies to standing queries
	// too: crashed subscribers must stop consuming notifications).
	// The zero time means no expiry (local in-process subscriptions).
	expires time.Time
}

func (sub *subscription) alive(now time.Time) bool {
	return sub.expires.IsZero() || !sub.expires.Before(now)
}

// Options configures a store.
type Options struct {
	// Models is the description-model registry; required.
	Models *describe.Registry
	// Leases is the lease policy for granted advertisements.
	Leases lease.Policy
	// DefaultMaxResults caps result sets when queries don't; zero
	// means 25.
	DefaultMaxResults int
	// Shards is the number of lock stripes the advert maps are split
	// across, rounded up to a power of two; zero means 16.
	Shards int
	// PlanCacheSize bounds the memoized query-plan LRU; zero means 128,
	// negative disables plan caching.
	PlanCacheSize int
	// QueryCacheSize bounds the generation-validated query result LRU;
	// zero means 256, negative disables result caching. Cached results
	// are exact: entries are validated against per-shard generation
	// counters and the earliest lease deadline of the results they
	// hold, so a stale entry can never be served.
	QueryCacheSize int
}

// New returns an empty registry store.
func New(opts Options) *Store {
	if opts.Models == nil {
		panic("registry: nil model registry")
	}
	if opts.DefaultMaxResults == 0 {
		opts.DefaultMaxResults = 25
	}
	if opts.Shards == 0 {
		opts.Shards = 16
	}
	n := 1 << bits.Len(uint(opts.Shards-1)) // next power of two
	shards := make([]*shard, n)
	for i := range shards {
		shards[i] = &shard{
			adverts: make(map[uuid.UUID]*stored),
			byKind:  make(map[describe.Kind]map[uuid.UUID]*stored),
			byToken: make(map[describe.Kind]map[string]map[uuid.UUID]*stored),
			noToken: make(map[describe.Kind]map[uuid.UUID]*stored),
			leases:  lease.NewTable(opts.Leases),
		}
	}
	var plans *planCache
	if opts.PlanCacheSize >= 0 {
		size := opts.PlanCacheSize
		if size == 0 {
			size = 128
		}
		plans = newPlanCache(size)
	}
	var qcache *queryCache
	if opts.QueryCacheSize >= 0 {
		size := opts.QueryCacheSize
		if size == 0 {
			size = 256
		}
		qcache = newQueryCache(size)
	}
	return &Store{
		models:            opts.Models,
		shards:            shards,
		mask:              uint32(n - 1),
		byService:         make(map[string]svcEntry),
		plans:             plans,
		qcache:            qcache,
		artifacts:         make(map[string][]byte),
		subs:              make(map[uuid.UUID]*subscription),
		DefaultMaxResults: opts.DefaultMaxResults,
	}
}

func (s *Store) shardFor(id uuid.UUID) *shard {
	return s.shards[binary.BigEndian.Uint32(id[:4])&s.mask]
}

// Len returns the number of stored advertisements.
func (s *Store) Len() int { return int(s.count.Load()) }

// countAdd moves the live-advert count, mirroring the change into the
// process-wide registry.adverts gauge.
func (s *Store) countAdd(d int64) {
	s.count.Add(d)
	mAdverts.Add(d)
}

// Models exposes the model registry (federation needs it for summary
// pruning decisions).
func (s *Store) Models() *describe.Registry { return s.models }

// Errors returned by Publish.
var (
	// ErrUnknownKind means this registry has no model for the payload
	// kind; per the paper the node "silently discards" such payloads,
	// which callers implement by mapping this error to a skip.
	ErrUnknownKind = errors.New("registry: unknown description kind")
	// ErrStaleVersion rejects a publish older than the stored version.
	ErrStaleVersion = errors.New("registry: stale advertisement version")
	// ErrBadPayload wraps description decode failures.
	ErrBadPayload = errors.New("registry: bad description payload")
)

// Notification reports a subscription hit caused by a publish.
type Notification struct {
	SubID      uuid.UUID
	NotifyAddr string
	Advert     wire.Advertisement
}

// Publish stores (or updates) an advertisement and grants its lease.
// It returns the granted lease duration and any notifications due.
//
// Update semantics follow §4.10: the advertisement ID is the handle;
// a publish with a known ID and version ≥ stored version replaces the
// content and refreshes the lease; a lower version is rejected as
// stale (it may arrive late through a slower forwarding path).
func (s *Store) Publish(adv wire.Advertisement, now time.Time) (time.Duration, []Notification, error) {
	model, ok := s.models.Model(adv.Kind)
	if !ok {
		mPublishErrors.Inc()
		return 0, nil, fmt.Errorf("%w: %v", ErrUnknownKind, adv.Kind)
	}
	desc, err := model.DecodeDescription(adv.Payload)
	if err != nil {
		mPublishErrors.Inc()
		return 0, nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
	}
	if adv.ID.IsNil() {
		mPublishErrors.Inc()
		return 0, nil, errors.New("registry: advertisement has nil ID")
	}
	st := &stored{advert: adv, desc: desc, tokens: model.SummaryTokens(desc)}

	sh := s.shardFor(adv.ID)
	sh.mu.Lock()
	if old, exists := sh.adverts[adv.ID]; exists {
		if adv.Version < old.advert.Version {
			have := old.advert.Version
			sh.mu.Unlock()
			mPublishErrors.Inc()
			return 0, nil, fmt.Errorf("%w: have v%d, got v%d", ErrStaleVersion, have, adv.Version)
		}
		// An update may change the description's tokens: unindex first.
		sh.removeLocked(adv.ID)
		s.countAdd(-1)
	}
	sh.insertLocked(st)
	granted := sh.leases.Grant(adv.ID, time.Duration(adv.LeaseMillis)*time.Millisecond, now)
	sh.bumpLocked()
	sh.refreshDeadlineLocked()
	sh.mu.Unlock()
	s.countAdd(1)
	mPublish.Inc()

	// A service republishing under a new advertisement ID (e.g. after
	// its registry crashed) supersedes its previous advert.
	if key := desc.ServiceKey(); key != "" {
		s.svcMu.Lock()
		old, had := s.byService[key]
		s.svcSeq++
		s.byService[key] = svcEntry{id: adv.ID, seq: s.svcSeq}
		st.svcSeq.Store(s.svcSeq)
		s.svcMu.Unlock()
		if had && old.id != adv.ID {
			osh := s.shardFor(old.id)
			osh.mu.Lock()
			if prev, ok := osh.adverts[old.id]; ok && adv.Version >= prev.advert.Version {
				osh.removeLocked(old.id)
				osh.leases.Remove(old.id)
				osh.bumpLocked()
				osh.refreshDeadlineLocked()
				s.countAdd(-1)
			}
			osh.mu.Unlock()
		}
	}

	// Subscription notifications (expired standing queries are skipped;
	// PruneSubscriptions removes them for good).
	var notes []Notification
	s.subMu.RLock()
	for _, sub := range s.subsArr {
		if sub.kind != adv.Kind || !sub.alive(now) {
			continue
		}
		if ev := model.Evaluate(sub.query, desc); ev.Matched {
			notes = append(notes, Notification{SubID: sub.id, NotifyAddr: sub.notify, Advert: adv})
		}
	}
	s.subMu.RUnlock()
	return granted, notes, nil
}

// insertLocked links st into every index of the shard; the caller holds
// the shard write lock.
func (sh *shard) insertLocked(st *stored) {
	id := st.advert.ID
	kind := st.advert.Kind
	sh.adverts[id] = st
	km := sh.byKind[kind]
	if km == nil {
		km = make(map[uuid.UUID]*stored)
		sh.byKind[kind] = km
	}
	km[id] = st
	if len(st.tokens) == 0 {
		nt := sh.noToken[kind]
		if nt == nil {
			nt = make(map[uuid.UUID]*stored)
			sh.noToken[kind] = nt
		}
		nt[id] = st
	} else {
		tm := sh.byToken[kind]
		if tm == nil {
			tm = make(map[string]map[uuid.UUID]*stored)
			sh.byToken[kind] = tm
		}
		for _, tok := range st.tokens {
			bucket := tm[tok]
			if bucket == nil {
				bucket = make(map[uuid.UUID]*stored)
				tm[tok] = bucket
			}
			bucket[id] = st
		}
	}
}

// removeLocked unlinks id from the shard indexes (not the lease table
// and not the service-key map) and returns the removed entry; the
// caller holds the shard write lock.
func (sh *shard) removeLocked(id uuid.UUID) *stored {
	st, ok := sh.adverts[id]
	if !ok {
		return nil
	}
	delete(sh.adverts, id)
	delete(sh.byKind[st.advert.Kind], id)
	if len(st.tokens) == 0 {
		delete(sh.noToken[st.advert.Kind], id)
	} else if tm := sh.byToken[st.advert.Kind]; tm != nil {
		for _, tok := range st.tokens {
			if bucket := tm[tok]; bucket != nil {
				delete(bucket, id)
				if len(bucket) == 0 {
					delete(tm, tok)
				}
			}
		}
	}
	return st
}

// dropServiceKey clears the service-key mapping if it still holds the
// exact entry the removed advert wrote. It runs after the shard lock is
// released, so it must compare both the advert ID and the publish
// sequence: a re-publish of the same advert ID racing the removal has
// written a newer sequence, and that fresh mapping must survive.
func (s *Store) dropServiceKey(st *stored) {
	key := st.desc.ServiceKey()
	if key == "" {
		return
	}
	seq := st.svcSeq.Load()
	s.svcMu.Lock()
	if e, ok := s.byService[key]; ok && e.id == st.advert.ID && e.seq == seq {
		delete(s.byService, key)
	}
	s.svcMu.Unlock()
}

// Renew refreshes an advertisement lease; ok=false means the registry
// no longer holds the advertisement and the provider must republish.
func (s *Store) Renew(id uuid.UUID, now time.Time) (time.Duration, bool) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st, ok := sh.adverts[id]
	if !ok {
		return 0, false
	}
	// A renew that lands after the lease lapsed but before the purge
	// sweep resurrects the advert into the result set, so it must
	// invalidate cached results like a publish would. An ordinary renew
	// only pushes the deadline out and leaves results unchanged — but a
	// skewed caller clock can pull a deadline in, which would outlive a
	// cached entry's expiry stamp, so that case invalidates too.
	oldExp, wasAlive := sh.leases.AliveUntil(id, now)
	granted, ok := sh.leases.Renew(id, time.Duration(st.advert.LeaseMillis)*time.Millisecond, now)
	if ok {
		if !wasAlive || now.Add(granted).Before(oldExp) {
			sh.bumpLocked()
		}
		sh.refreshDeadlineLocked()
	}
	return granted, ok
}

// Remove withdraws an advertisement explicitly.
func (s *Store) Remove(id uuid.UUID) bool {
	sh := s.shardFor(id)
	sh.mu.Lock()
	st := sh.removeLocked(id)
	if st != nil {
		sh.leases.Remove(id)
		sh.bumpLocked()
		sh.refreshDeadlineLocked()
	}
	sh.mu.Unlock()
	if st == nil {
		return false
	}
	s.countAdd(-1)
	s.dropServiceKey(st)
	return true
}

// ExpireThrough purges every advertisement whose lease deadline is at
// or before now and returns the purged advertisements — "removal of
// obsolete advertisements" (§4.8). Shards whose cached next deadline is
// in the future are skipped without taking their lock, so an idle tick
// over a large store costs one atomic load per shard.
func (s *Store) ExpireThrough(now time.Time) []wire.Advertisement {
	var out []wire.Advertisement
	var dropped []*stored
	for _, sh := range s.shards {
		if next := sh.nextDeadline.Load(); next == nil || next.After(now) {
			continue
		}
		sh.mu.Lock()
		expired := sh.leases.ExpireThrough(now)
		for _, id := range expired {
			if st := sh.removeLocked(id); st != nil {
				out = append(out, st.advert)
				dropped = append(dropped, st)
				s.countAdd(-1)
			}
		}
		if len(expired) > 0 {
			sh.bumpLocked()
		}
		sh.refreshDeadlineLocked()
		sh.mu.Unlock()
	}
	for _, st := range dropped {
		s.dropServiceKey(st)
	}
	mAdvertsExpired.Add(uint64(len(out)))
	return out
}

// NextExpiry returns the earliest lease deadline for purge scheduling.
// It reads the per-shard cached deadlines, so it is lock-free.
func (s *Store) NextExpiry() (time.Time, bool) {
	var best time.Time
	found := false
	for _, sh := range s.shards {
		if t := sh.nextDeadline.Load(); t != nil && (!found || t.Before(best)) {
			best, found = *t, true
		}
	}
	return best, found
}

// QueryOptions is the response control the client delegates to the
// registry (§3.1: "limited clients should be allowed to delegate
// service selection to registry nodes").
type QueryOptions struct {
	// MaxResults caps the result count; 0 uses the store default.
	MaxResults int
	// BestOnly returns only the single best-ranked advertisement.
	BestOnly bool
	// NoCache forces a live evaluation, bypassing the query result
	// cache for this call (the wire protocol's fresh-results flag).
	NoCache bool
}

func (s *Store) effectiveLimit(opts QueryOptions) int {
	limit := opts.MaxResults
	if limit <= 0 {
		limit = s.DefaultMaxResults
	}
	if opts.BestOnly {
		limit = 1
	}
	return limit
}

// Intra-query fan-out pays off only when one query must evaluate many
// candidates: a full-kind scan of a big store, or a prunable query
// whose token neighbourhood is wide (a near-root semantic category).
// Narrow queries stay on the caller goroutine — under concurrent load
// the parallelism comes from the shard read locks instead.
const (
	fanOutMinAdverts = 4096
	fanOutMinTokens  = 16
)

func (s *Store) fanOut(plan *queryPlan) bool {
	if len(s.shards) == 1 || stdruntime.GOMAXPROCS(0) < 2 {
		return false
	}
	if int(s.count.Load()) < fanOutMinAdverts {
		return false
	}
	return !plan.prunable || len(plan.tokens) > fanOutMinTokens
}

// Evaluate runs a query payload against the stored advertisements of
// its kind and returns matching advertisements ranked best-first and
// capped per the options. Unknown kinds return ErrUnknownKind so the
// caller can skip-and-forward (a registry may still forward queries it
// cannot evaluate itself).
//
// Selection keeps a bounded top-K (K = the effective result cap) per
// shard instead of sorting every hit, and large scans fan out across
// shards on a bounded worker pool.
//
// When the query result cache is enabled (Options.QueryCacheSize) the
// ranked result set is memoized keyed by (payload hash, kind, effective
// limit, best-only) and validated against the per-shard generation
// vector plus the earliest lease deadline it contains — cached answers
// are always exactly what a live evaluation would return. Concurrent
// identical queries share one computation through a singleflight group.
func (s *Store) Evaluate(kind describe.Kind, payload []byte, opts QueryOptions, now time.Time) ([]wire.Advertisement, error) {
	start := time.Now()
	plan, err := s.plan(kind, payload)
	if err != nil {
		if errors.Is(err, ErrUnknownKind) {
			return nil, err
		}
		return nil, fmt.Errorf("registry: bad query payload: %w", err)
	}
	limit := s.effectiveLimit(opts)
	var out []wire.Advertisement
	if s.qcache != nil && !opts.NoCache {
		key := qkey{hash: plan.hash, kind: kind, limit: limit, best: opts.BestOnly}
		out = s.qcache.evaluate(s, key, payload, kind, plan, limit, now)
	} else {
		out, _ = s.evaluateLive(kind, plan, limit, now)
	}
	mEvaluate.Inc()
	mEvaluateLatency.Observe(time.Since(start).Microseconds())
	return out, nil
}

// genVector snapshots every shard generation. The query cache snapshots
// it *before* reading shard data, so a mutation racing the collection
// makes the filled entry conservatively stale rather than wrongly
// fresh.
func (s *Store) genVector() []uint64 {
	gens := make([]uint64, len(s.shards))
	for i, sh := range s.shards {
		gens[i] = sh.gen.Load()
	}
	return gens
}

// gensCurrent reports whether no result-affecting mutation has happened
// since gens was snapshotted.
func (s *Store) gensCurrent(gens []uint64) bool {
	for i, sh := range s.shards {
		if sh.gen.Load() != gens[i] {
			return false
		}
	}
	return true
}

// evaluateLive runs the uncached evaluation and returns the ranked,
// capped result set plus the earliest lease deadline among the returned
// advertisements (zero when the set is empty) — the freshness horizon a
// cached copy of this result is valid until.
func (s *Store) evaluateLive(kind describe.Kind, plan *queryPlan, limit int, now time.Time) ([]wire.Advertisement, time.Time) {
	var hits []hit
	truncated := false
	if s.fanOut(plan) {
		mEvaluateFanout.Inc()
		hits = s.collectParallel(kind, plan, limit, now)
		truncated = len(hits) > limit
	} else {
		top := newTopK(limit)
		for _, sh := range s.shards {
			sh.collect(kind, plan, now, top)
		}
		hits = top.hits
		truncated = top.dropped > 0
	}
	sortHits(hits)
	if len(hits) > limit {
		hits = hits[:limit]
	}
	out := make([]wire.Advertisement, len(hits))
	var minExpiry time.Time
	for i, h := range hits {
		out[i] = *h.adv
		if minExpiry.IsZero() || h.expires.Before(minExpiry) {
			minExpiry = h.expires
		}
	}
	if truncated {
		mEvaluateTruncated.Inc()
	}
	return out, minExpiry
}

// collect evaluates the shard's candidates for the plan into top.
// Scan activity accumulates in local counters and lands in the shard
// (and aggregate) obs counters with one atomic add per pass, keeping
// the per-candidate loop free of shared-cacheline traffic.
func (sh *shard) collect(kind describe.Kind, plan *queryPlan, now time.Time, top *topK) {
	var scanned, matched uint64
	defer func() {
		if scanned > 0 {
			sh.scans.Add(scanned)
			sh.matched.Add(matched)
			mShardScans.Add(scanned)
		}
	}()
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	consider := func(id uuid.UUID, st *stored) {
		scanned++
		expires, alive := sh.leases.AliveUntil(id, now)
		if !alive {
			return // expired but not yet purged: never serve stale data
		}
		if ev := plan.model.Evaluate(plan.query, st.desc); ev.Matched {
			matched++
			top.push(hit{adv: &st.advert, key: st.desc.ServiceKey(), ev: ev, expires: expires})
		}
	}
	if plan.prunable {
		// Indexed path: only adverts sharing a token can match, plus
		// token-less adverts which are always considered conservatively.
		// An advert appears in exactly one bucket per token it carries,
		// and token-less adverts appear in no bucket, so dedup state is
		// needed only for multi-token adverts — single-token populations
		// (the common case) allocate no map at all.
		tm := sh.byToken[kind]
		var seen map[uuid.UUID]struct{}
		for _, tok := range plan.tokens {
			for id, st := range tm[tok] {
				if len(st.tokens) > 1 {
					if seen == nil {
						seen = make(map[uuid.UUID]struct{})
					}
					if _, dup := seen[id]; dup {
						continue
					}
					seen[id] = struct{}{}
				}
				consider(id, st)
			}
		}
		for id, st := range sh.noToken[kind] {
			consider(id, st)
		}
	} else {
		for id, st := range sh.byKind[kind] {
			consider(id, st)
		}
	}
}

// collectParallel fans the shard scans out across a bounded worker
// pool (at most GOMAXPROCS workers) and merges the per-worker top-K
// lists. The union of per-shard top-Ks is a superset of the global
// top-K, so the merge loses nothing.
func (s *Store) collectParallel(kind describe.Kind, plan *queryPlan, limit int, now time.Time) []hit {
	workers := stdruntime.GOMAXPROCS(0)
	if workers > len(s.shards) {
		workers = len(s.shards)
	}
	results := make([][]hit, workers)
	var next atomic.Int32
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			top := newTopK(limit)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(s.shards) {
					break
				}
				s.shards[i].collect(kind, plan, now, top)
			}
			results[w] = top.hits
		}(w)
	}
	wg.Wait()
	total := 0
	for _, r := range results {
		total += len(r)
	}
	merged := make([]hit, 0, total)
	for _, r := range results {
		merged = append(merged, r...)
	}
	return merged
}

// MergeRank re-ranks advertisements pooled from several registries and
// applies response control once more — the entry registry's aggregation
// step for federated queries. Duplicate advertisement IDs keep the
// highest version; duplicate service keys keep one advert. The query
// payload goes through the same plan cache as Evaluate, so a federated
// query decodes its payload once per node, not once per stage.
func (s *Store) MergeRank(kind describe.Kind, payload []byte, pools [][]wire.Advertisement, opts QueryOptions) ([]wire.Advertisement, error) {
	plan, err := s.plan(kind, payload)
	if err != nil {
		return nil, err
	}
	mMergeRank.Inc()
	byID := make(map[uuid.UUID]wire.Advertisement)
	for _, pool := range pools {
		for _, a := range pool {
			if prev, ok := byID[a.ID]; !ok || a.Version > prev.Version {
				byID[a.ID] = a
			}
		}
	}
	// Deterministic iteration for the dedup-by-service step.
	ids := make([]uuid.UUID, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return uuid.Compare(ids[i], ids[j]) < 0 })

	limit := s.effectiveLimit(opts)
	top := newTopK(limit)
	seenService := make(map[string]bool)
	// cands is pre-sized so appended elements never move: the top-K
	// holds pointers into it.
	cands := make([]wire.Advertisement, 0, len(ids))
	for _, id := range ids {
		a := byID[id]
		desc, err := plan.model.DecodeDescription(a.Payload)
		if err != nil {
			continue // corrupt result from a remote registry: skip
		}
		key := desc.ServiceKey()
		if key != "" {
			if seenService[key] {
				continue
			}
			seenService[key] = true
		}
		ev := plan.model.Evaluate(plan.query, desc)
		if !ev.Matched {
			continue // remote registry had a different opinion: re-check
		}
		cands = append(cands, a)
		top.push(hit{adv: &cands[len(cands)-1], key: key, ev: ev})
	}
	hits := top.hits
	sortHits(hits)
	out := make([]wire.Advertisement, len(hits))
	for i, h := range hits {
		out[i] = *h.adv
	}
	return out, nil
}

// Summary aggregates the summary tokens of all live advertisements per
// kind — the digest registries gossip to peers for forwarding pruning.
func (s *Store) Summary() []wire.SummaryEntry {
	var entries []wire.SummaryEntry
	for _, k := range s.models.Kinds() {
		tokens := map[string]bool{}
		for _, sh := range s.shards {
			sh.mu.RLock()
			for _, st := range sh.byKind[k] {
				for _, tok := range st.tokens {
					tokens[tok] = true
				}
			}
			sh.mu.RUnlock()
		}
		if len(tokens) == 0 {
			continue
		}
		list := make([]string, 0, len(tokens))
		for t := range tokens {
			list = append(list, t)
		}
		sort.Strings(list)
		entries = append(entries, wire.SummaryEntry{Kind: k, Tokens: list})
	}
	return entries
}

// Adverts returns all stored advertisements (deterministic order); the
// federation's push-cooperation and tests use it.
func (s *Store) Adverts() []wire.Advertisement {
	out := make([]wire.Advertisement, 0, s.Len())
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, st := range sh.adverts {
			out = append(out, st.advert)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return uuid.Compare(out[i].ID, out[j].ID) < 0 })
	return out
}

// Advert returns a stored advertisement by ID.
func (s *Store) Advert(id uuid.UUID) (wire.Advertisement, bool) {
	sh := s.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	st, ok := sh.adverts[id]
	if !ok {
		return wire.Advertisement{}, false
	}
	return st.advert, true
}

// Has reports whether the advertisement is stored (and not yet purged).
func (s *Store) Has(id uuid.UUID) bool {
	sh := s.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	_, ok := sh.adverts[id]
	return ok
}

// Subscribe registers a standing query; every future publish whose
// description matches produces a Notification (the paper notes "some
// systems today also allow registration for notifications about service
// advertisements of interest"). The zero expires time means no expiry
// (in-process subscriptions); wire subscriptions pass a lease deadline
// and renew by re-subscribing under the same ID.
func (s *Store) Subscribe(kind describe.Kind, payload []byte, notifyAddr string, id uuid.UUID, expires time.Time) (uuid.UUID, error) {
	plan, err := s.plan(kind, payload)
	if err != nil {
		return uuid.Nil, err
	}
	s.subMu.Lock()
	defer s.subMu.Unlock()
	if existing, ok := s.subs[id]; ok {
		// Renewal: refresh query, address and lease in place.
		existing.kind = kind
		existing.query = plan.query
		existing.notify = notifyAddr
		existing.expires = expires
		return id, nil
	}
	sub := &subscription{id: id, kind: kind, query: plan.query, notify: notifyAddr, expires: expires}
	s.subs[id] = sub
	s.subsArr = append(s.subsArr, sub)
	return id, nil
}

// PruneSubscriptions drops standing queries whose lease lapsed and
// returns how many were removed.
func (s *Store) PruneSubscriptions(now time.Time) int {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	removed := 0
	kept := make([]*subscription, 0, len(s.subsArr))
	for _, sub := range s.subsArr {
		if sub.alive(now) {
			kept = append(kept, sub)
			continue
		}
		delete(s.subs, sub.id)
		removed++
	}
	s.subsArr = kept
	return removed
}

// NumSubscriptions returns the number of standing queries (including
// expired-but-unpruned ones).
func (s *Store) NumSubscriptions() int {
	s.subMu.RLock()
	defer s.subMu.RUnlock()
	return len(s.subs)
}

// Unsubscribe removes a standing query.
func (s *Store) Unsubscribe(id uuid.UUID) bool {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	if _, ok := s.subs[id]; !ok {
		return false
	}
	delete(s.subs, id)
	for i, sub := range s.subsArr {
		if sub.id == id {
			s.subsArr = append(s.subsArr[:i], s.subsArr[i+1:]...)
			break
		}
	}
	return true
}

// PutArtifact stores an ontology/schema document under its IRI (§4.6).
func (s *Store) PutArtifact(iri string, data []byte) {
	cp := make([]byte, len(data))
	copy(cp, data)
	s.artMu.Lock()
	s.artifacts[iri] = cp
	s.artMu.Unlock()
}

// Artifact fetches a stored artifact.
func (s *Store) Artifact(iri string) ([]byte, bool) {
	s.artMu.RLock()
	defer s.artMu.RUnlock()
	d, ok := s.artifacts[iri]
	return d, ok
}
