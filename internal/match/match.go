// Package match implements the semantic matchmaker the architecture
// delegates to registries (§4.2: "service selection based on semantic
// descriptions is necessary to find the best-suited services for given
// tasks", §3.2: "by delegating service selection to the central
// registry, query evaluation may only have to be carried out once").
//
// The matcher follows the OWL-S matchmaking scheme of Paolucci et al.
// with the four classic degrees, applied to the service category, the
// required outputs and the provided inputs, plus hard QoS-threshold and
// geographic-coverage constraints. Within a degree, candidates are
// ranked by taxonomy similarity (Wu–Palmer) and QoS margin, giving the
// total order the registry needs for "best-only" query response control.
package match

import (
	"fmt"
	"sort"

	"semdisco/internal/ontology"
	"semdisco/internal/profile"
)

// Degree is the qualitative match level, ordered so that a larger value
// is a better match.
type Degree uint8

const (
	// Fail means at least one hard constraint is unsatisfied.
	Fail Degree = iota
	// Subsumed means the service offer is strictly more general than
	// the request (requested concept subsumes the advertised one); it
	// may only partially satisfy the requester.
	Subsumed
	// PlugIn means the service offer is a specialization of the request
	// (advertised concept subsumed by the requested one), so the service
	// can plug into the requester's need.
	PlugIn
	// Exact means the concepts coincide.
	Exact
)

// String renders the degree for reports and logs.
func (d Degree) String() string {
	switch d {
	case Fail:
		return "fail"
	case Subsumed:
		return "subsumed"
	case PlugIn:
		return "plugin"
	case Exact:
		return "exact"
	default:
		return fmt.Sprintf("degree(%d)", uint8(d))
	}
}

// Result is the outcome of matching one advertisement against a
// template.
type Result struct {
	// Degree is the minimum degree across all compared aspects.
	Degree Degree
	// Score ranks results within a degree: the mean taxonomy similarity
	// of the compared concept pairs in [0,1], plus a small QoS-margin
	// bonus. Higher is better.
	Score float64
}

// Matches reports whether the result clears the given minimum degree.
func (r Result) Matches(min Degree) bool {
	return r.Degree != Fail && r.Degree >= min
}

// Matcher evaluates templates against profiles over one shared
// ontology. The zero value is unusable; construct with New.
// Matchers are safe for concurrent use.
type Matcher struct {
	onto *ontology.Ontology
	// memo caches concept comparisons by interned ID pair; non-nil iff
	// the ontology carried a compiled index when the matcher was built.
	memo *conceptMemo
}

// New returns a matcher grounded in the given frozen ontology. When the
// ontology is compiled (the default at Freeze), the matcher compares
// concepts by interned ID over the bitset closures and memoizes each
// comparison; otherwise it runs the original string/map path.
func New(o *ontology.Ontology) *Matcher {
	if o == nil {
		panic("match: nil ontology")
	}
	m := &Matcher{onto: o}
	if o.Compiled() {
		m.memo = newConceptMemo()
	}
	return m
}

// Match evaluates the template against the profile. The overall degree
// is the weakest aspect degree (a chain is as strong as its weakest
// link); the score aggregates concept similarities for ranking.
func (m *Matcher) Match(t *profile.Template, p *profile.Profile) Result {
	overall := Exact
	simSum, simN := 0.0, 0

	// Interned views let the hot loops below compare integer IDs with
	// zero string-map lookups. Absent views (profiles never interned,
	// or interned against another ontology) resolve IDs per concept;
	// pairs with an undeclared side fall back to string semantics.
	compiled := m.memo != nil
	var ti *profile.InternedTemplate
	var pi *profile.InternedProfile
	if compiled {
		ti = t.InternedFor(m.onto)
		pi = p.InternedFor(m.onto)
	}

	consider := func(d Degree, sim float64) {
		if d < overall {
			overall = d
		}
		simSum += sim
		simN++
	}

	// Category: requested concept vs advertised concept.
	if t.Category != "" {
		reqID, advID := ontology.NoClass, ontology.NoClass
		if compiled {
			if ti != nil {
				reqID = ti.Category
			} else {
				reqID = m.onto.ClassID(t.Category)
			}
			if pi != nil {
				advID = pi.Category
			} else {
				advID = m.onto.ClassID(p.Category)
			}
		}
		d, s := m.evalConcept(t.Category, p.Category, reqID, advID)
		consider(d, s)
		if d == Fail {
			return Result{Degree: Fail}
		}
	}
	// Outputs: every required output must be served by the best
	// advertised output.
	for i, want := range t.RequiredOutputs {
		wantID := ontology.NoClass
		if compiled {
			if ti != nil {
				wantID = ti.RequiredOutputs[i]
			} else {
				wantID = m.onto.ClassID(want)
			}
		}
		best, sim := Fail, 0.0
		for j, have := range p.Outputs {
			haveID := ontology.NoClass
			if compiled {
				if pi != nil {
					haveID = pi.Outputs[j]
				} else {
					haveID = m.onto.ClassID(have)
				}
			}
			d, s := m.evalConcept(want, have, wantID, haveID)
			if d > best || (d == best && s > sim) {
				best, sim = d, s
			}
		}
		consider(best, sim)
		if best == Fail {
			return Result{Degree: Fail}
		}
	}
	// Inputs: every advertised input must be satisfiable from what the
	// client provides. Direction is reversed: the client's concept must
	// specialize (or equal) the service's expected input.
	for i, need := range p.Inputs {
		if len(t.ProvidedInputs) == 0 {
			// The template does not constrain inputs at all; treat the
			// aspect as unconstrained rather than failing every service
			// that needs input.
			continue
		}
		needID := ontology.NoClass
		if compiled {
			if pi != nil {
				needID = pi.Inputs[i]
			} else {
				needID = m.onto.ClassID(need)
			}
		}
		best, sim := Fail, 0.0
		for j, have := range t.ProvidedInputs {
			haveID := ontology.NoClass
			if compiled {
				if ti != nil {
					haveID = ti.ProvidedInputs[j]
				} else {
					haveID = m.onto.ClassID(have)
				}
			}
			d, s := m.evalConcept(need, have, needID, haveID)
			if d > best || (d == best && s > sim) {
				best, sim = d, s
			}
		}
		consider(best, sim)
		if best == Fail {
			return Result{Degree: Fail}
		}
	}
	// QoS thresholds are hard constraints: missing attribute or value
	// below threshold fails.
	qosMargin := 0.0
	for attr, min := range t.MinQoS {
		v, ok := p.QoS[attr]
		if !ok || v < min {
			return Result{Degree: Fail}
		}
		if min > 0 {
			qosMargin += (v - min) / min
		}
	}
	// Coverage: a service with a declared coverage area must cover the
	// requester's position.
	if t.Near != nil && p.Coverage != nil && !p.Coverage.Contains(t.Near.LatDeg, t.Near.LonDeg) {
		return Result{Degree: Fail}
	}

	score := 0.0
	if simN > 0 {
		score = simSum / float64(simN)
	} else {
		score = 1 // unconstrained template: everything is a perfect fit
	}
	// QoS margin is a tie-breaker worth at most 0.1.
	if len(t.MinQoS) > 0 {
		margin := qosMargin / float64(len(t.MinQoS))
		if margin > 1 {
			margin = 1
		}
		score += margin * 0.1
	}
	return Result{Degree: overall, Score: score}
}

// conceptDegree compares a requested concept against an advertised one:
//
//	Exact    advertised == requested
//	PlugIn   advertised ⊑ requested (a Radar when a Sensor was asked for)
//	Subsumed requested ⊑ advertised (a Device when a Sensor was asked for)
//	Fail     otherwise
func (m *Matcher) conceptDegree(requested, advertised ontology.Class) Degree {
	switch {
	case requested == advertised:
		return Exact
	case m.onto.Subsumes(requested, advertised):
		return PlugIn
	case m.onto.Subsumes(advertised, requested):
		return Subsumed
	default:
		return Fail
	}
}

// evalConcept compares one requested/advertised concept pair, routing
// through the memoized interned-ID fast path when both sides resolved
// to compiled IDs, and through the original string path otherwise
// (uncompiled ontology, or an undeclared concept on either side —
// string equality of two undeclared concepts must still rate Exact).
func (m *Matcher) evalConcept(req, adv ontology.Class, reqID, advID ontology.ClassID) (Degree, float64) {
	if m.memo != nil && reqID != ontology.NoClass && advID != ontology.NoClass {
		return m.evalConceptID(reqID, advID)
	}
	return m.conceptDegree(req, adv), m.onto.Similarity(req, adv)
}

// Ranked pairs a profile with its match result for sorting.
type Ranked struct {
	Profile *profile.Profile
	Result  Result
}

// CompareQuality is the single best-first ordering rule over
// (degree, score) pairs: higher degree first, then higher score.
// Returns <0 when a ranks before b, >0 when after, 0 when tied —
// callers append their own deterministic tiebreakers. Both match.Rank
// and the registry's top-K hit ranking derive their total orders from
// this comparison, so the tiebreak rules cannot drift apart. Degrees
// compare numerically, which also fits the non-semantic description
// models' model-specific degree scales.
func CompareQuality(aDegree uint8, aScore float64, bDegree uint8, bScore float64) int {
	if aDegree != bDegree {
		if aDegree > bDegree {
			return -1
		}
		return 1
	}
	switch {
	case aScore > bScore:
		return -1
	case aScore < bScore:
		return 1
	}
	return 0
}

// Compare orders r against o with the shared CompareQuality rule.
func (r Result) Compare(o Result) int {
	return CompareQuality(uint8(r.Degree), r.Score, uint8(o.Degree), o.Score)
}

// Rank sorts candidates best-first: by degree, then score, then
// ServiceIRI for a deterministic total order — the property the
// registry's query response control (max-k, best-only) relies on.
func Rank(rs []Ranked) {
	sort.Slice(rs, func(i, j int) bool {
		a, b := rs[i], rs[j]
		if c := a.Result.Compare(b.Result); c != 0 {
			return c < 0
		}
		return a.Profile.ServiceIRI < b.Profile.ServiceIRI
	})
}
