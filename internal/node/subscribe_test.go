package node_test

import (
	"testing"
	"time"

	"semdisco/internal/describe"
	"semdisco/internal/discovery"
	"semdisco/internal/federation"
	"semdisco/internal/node"
	"semdisco/internal/sim"
	"semdisco/internal/wire"
)

func TestSubscribeNotifiesOnPublish(t *testing.T) {
	w := sim.NewWorld(sim.Config{Seed: 31})
	reg := w.AddRegistry("lan0", "r1", federation.Config{})
	cli := w.AddClient("lan0", "c1", fastClient())
	w.Run(time.Second)

	var got []wire.Advertisement
	sub := cli.Cli.Subscribe(w.SemanticSpec(sim.C("SensorFeed"), 0), 30*time.Second, func(a wire.Advertisement) {
		got = append(got, a)
	})
	if sub == nil {
		t.Fatal("Subscribe returned nil with a known registry")
	}
	w.Run(time.Second)
	if reg.Reg.Store().NumSubscriptions() != 1 {
		t.Fatalf("registry holds %d subscriptions", reg.Reg.Store().NumSubscriptions())
	}

	// A matching service appears: one notification.
	w.AddService("lan0", "s1", fastService(), w.SemanticProfile("urn:svc:radar", sim.C("RadarFeed")))
	w.Run(2 * time.Second)
	if len(got) != 1 {
		t.Fatalf("notifications = %d, want 1", len(got))
	}
	// A non-matching service: no notification.
	w.AddService("lan0", "s2", fastService(), w.SemanticProfile("urn:svc:chat", sim.C("ChatService")))
	w.Run(2 * time.Second)
	if len(got) != 1 {
		t.Fatalf("non-matching publish notified: %d", len(got))
	}
}

func TestSubscribeWithoutRegistryReturnsNil(t *testing.T) {
	w := sim.NewWorld(sim.Config{Seed: 32})
	cli := w.AddClient("lan0", "c1", fastClient())
	w.Run(time.Second)
	if sub := cli.Cli.Subscribe(w.SemanticSpec(sim.C("SensorFeed"), 0), 0, func(wire.Advertisement) {}); sub != nil {
		t.Fatal("Subscribe succeeded without any registry")
	}
}

func TestSubscriptionLeaseRenewal(t *testing.T) {
	w := sim.NewWorld(sim.Config{Seed: 33})
	reg := w.AddRegistry("lan0", "r1", federation.Config{PurgeInterval: 200 * time.Millisecond})
	cli := w.AddClient("lan0", "c1", fastClient())
	w.Run(time.Second)
	var got int
	cli.Cli.Subscribe(w.SemanticSpec(sim.C("SensorFeed"), 0), 2*time.Second, func(wire.Advertisement) { got++ })
	// Run well past several lease periods: auto-renewal must keep the
	// subscription alive at the registry.
	w.Run(10 * time.Second)
	if reg.Reg.Store().NumSubscriptions() != 1 {
		t.Fatal("renewed subscription was pruned")
	}
	w.AddService("lan0", "s1", fastService(), w.SemanticProfile("urn:svc:radar", sim.C("RadarFeed")))
	w.Run(2 * time.Second)
	if got != 1 {
		t.Fatalf("notifications after long renewal = %d, want 1", got)
	}
}

func TestSubscriberCrashLeasePrunes(t *testing.T) {
	w := sim.NewWorld(sim.Config{Seed: 34})
	reg := w.AddRegistry("lan0", "r1", federation.Config{PurgeInterval: 200 * time.Millisecond})
	cli := w.AddClient("lan0", "c1", fastClient())
	w.Run(time.Second)
	cli.Cli.Subscribe(w.SemanticSpec(sim.C("SensorFeed"), 0), 2*time.Second, func(wire.Advertisement) {})
	w.Run(time.Second)
	if reg.Reg.Store().NumSubscriptions() != 1 {
		t.Fatal("setup: subscription missing")
	}
	// Crash the subscriber: no more renewals, lease lapses, pruned.
	cli.Cli.Stop()
	w.Net.SetUp(cli.Addr, false)
	w.Run(5 * time.Second)
	if reg.Reg.Store().NumSubscriptions() != 0 {
		t.Fatal("crashed subscriber's standing query survived its lease")
	}
}

func TestSubscriptionCancel(t *testing.T) {
	w := sim.NewWorld(sim.Config{Seed: 35})
	reg := w.AddRegistry("lan0", "r1", federation.Config{})
	cli := w.AddClient("lan0", "c1", fastClient())
	w.Run(time.Second)
	var got int
	sub := cli.Cli.Subscribe(w.SemanticSpec(sim.C("SensorFeed"), 0), time.Minute, func(wire.Advertisement) { got++ })
	w.Run(time.Second)
	sub.Cancel()
	sub.Cancel() // idempotent
	w.Run(time.Second)
	if reg.Reg.Store().NumSubscriptions() != 0 {
		t.Fatal("unsubscribe did not remove the standing query")
	}
	w.AddService("lan0", "s1", fastService(), w.SemanticProfile("urn:svc:radar", sim.C("RadarFeed")))
	w.Run(2 * time.Second)
	if got != 0 {
		t.Fatalf("canceled subscription notified %d times", got)
	}
}

func TestSubscriptionFailsOverToAlternateRegistry(t *testing.T) {
	w := sim.NewWorld(sim.Config{Seed: 36})
	r1 := w.AddRegistry("lan0", "r1", federation.Config{BeaconInterval: 300 * time.Millisecond})
	r2 := w.AddRegistry("lan0", "r2", federation.Config{BeaconInterval: 300 * time.Millisecond})
	cli := w.AddClient("lan0", "c1", fastClient())
	w.Run(2 * time.Second)
	var got int
	sub := cli.Cli.Subscribe(w.SemanticSpec(sim.C("SensorFeed"), 0), 5*time.Second, func(wire.Advertisement) { got++ })
	if sub == nil {
		t.Fatal("subscribe failed")
	}
	w.Run(time.Second)
	// Crash whichever registry holds the subscription.
	holder, other := r1, r2
	if r2.Reg.Store().NumSubscriptions() == 1 {
		holder, other = r2, r1
	}
	if holder.Reg.Store().NumSubscriptions() != 1 {
		t.Fatal("setup: no registry holds the subscription")
	}
	holder.Crash()
	// Renewal fails, client marks registry dead, re-subscribes at the
	// alternate.
	w.Run(15 * time.Second)
	if other.Reg.Store().NumSubscriptions() != 1 {
		t.Fatal("subscription did not fail over to the alternate registry")
	}
	// Publications at the new registry notify the subscriber.
	svcCfg := fastService()
	w.AddService("lan0", "s1", svcCfg, w.SemanticProfile("urn:svc:radar", sim.C("RadarFeed")))
	w.Run(3 * time.Second)
	if got == 0 {
		t.Fatal("no notification after failover")
	}
}

func TestSubscriptionViaQuerySpecKinds(t *testing.T) {
	// Subscriptions work for the lightweight URI model too: the same
	// infrastructure carries all description models.
	w := sim.NewWorld(sim.Config{Seed: 37})
	w.AddRegistry("lan0", "r1", federation.Config{})
	cli := w.AddClient("lan0", "c1", fastClient())
	w.Run(time.Second)
	var got int
	spec := node.QuerySpec{
		Kind:    2, // describe.KindKV
		Payload: kvQueryPayload(),
	}
	sub := cli.Cli.Subscribe(spec, time.Minute, func(wire.Advertisement) { got++ })
	if sub == nil {
		t.Fatal("KV subscription failed")
	}
	w.Run(time.Second)
	w.AddService("lan0", "s1", fastService(), kvDescription())
	w.Run(2 * time.Second)
	if got != 1 {
		t.Fatalf("KV notifications = %d, want 1", got)
	}
}

func kvQueryPayload() []byte {
	return (&describe.KVQuery{TypeURI: "urn:type:weather"}).Encode()
}

func kvDescription() describe.Description {
	return &describe.KVDescription{
		ServiceURI: "urn:svc:w1", Name: "Weather", TypeURI: "urn:type:weather", Addr: "a",
	}
}

func TestViaString(t *testing.T) {
	if node.ViaRegistry.String() != "registry" || node.ViaFallback.String() != "fallback" || node.ViaNone.String() != "none" {
		t.Fatal("Via.String broken")
	}
}

func TestClientStopCancelsEverything(t *testing.T) {
	w := sim.NewWorld(sim.Config{Seed: 41})
	w.AddRegistry("lan0", "r1", federation.Config{})
	cli := w.AddClient("lan0", "c1", fastClient())
	w.Run(time.Second)
	fired := false
	cli.Cli.Query(w.SemanticSpec(sim.C("SensorFeed"), 0), func(node.QueryResult) { fired = true })
	cli.Cli.Subscribe(w.SemanticSpec(sim.C("SensorFeed"), 0), time.Minute, func(wire.Advertisement) { fired = true })
	cli.Cli.FetchArtifact("urn:x", time.Second, func([]byte, bool) { fired = true })
	cli.Cli.Stop()
	w.Run(5 * time.Second)
	if fired {
		t.Fatal("callback fired after Stop")
	}
}

func TestFetchArtifactWithoutRegistry(t *testing.T) {
	w := sim.NewWorld(sim.Config{Seed: 42})
	cli := w.AddClient("lan0", "c1", fastClient())
	w.Run(time.Second)
	var done, ok bool
	cli.Cli.FetchArtifact("urn:x", time.Second, func(_ []byte, o bool) { done, ok = true, o })
	if !done || ok {
		t.Fatalf("registry-less artifact fetch = (done=%v ok=%v), want immediate failure", done, ok)
	}
}

func TestCustomQueryTimeoutHonored(t *testing.T) {
	// With an explicit QueryTimeout and a dead seed registry, the first
	// attempt must take about that long before failover.
	w := sim.NewWorld(sim.Config{Seed: 43})
	reg := w.AddRegistry("lan0", "r1", federation.Config{})
	reg.Crash()
	cfg := node.ClientConfig{
		QueryTimeout:   400 * time.Millisecond,
		FallbackWindow: 200 * time.Millisecond,
		MaxAttempts:    1,
		Bootstrap:      discoveryConfigWithSeed(reg),
	}
	cli := w.AddClient("lan0", "c1", cfg)
	w.Run(time.Second)
	out := cli.Query(w.SemanticSpec(sim.C("SensorFeed"), 0), 10*time.Second)
	if !out.Completed || out.Via != node.ViaNone {
		t.Fatalf("dead-seed outcome = %+v", out)
	}
	// One attempt (400ms) + fallback window (200ms) ≈ 600ms–1s.
	if out.Elapsed > 2*time.Second {
		t.Fatalf("elapsed %v, expected custom timeout to apply", out.Elapsed)
	}
}

func TestServiceStartWithKnownSeedPublishesImmediately(t *testing.T) {
	w := sim.NewWorld(sim.Config{Seed: 44})
	reg := w.AddRegistry("lan0", "r1", federation.Config{})
	cfg := fastService()
	cfg.Bootstrap.Seeds = []wire.PeerInfo{reg.PeerInfo()}
	w.AddService("lan0", "s1", cfg, w.SemanticProfile("urn:svc:x", sim.C("RadarFeed")))
	// Publication happens on Start without waiting for discovery.
	w.Run(300 * time.Millisecond)
	if reg.Reg.Store().Len() != 1 {
		t.Fatal("seeded service did not publish immediately")
	}
}

func discoveryConfigWithSeed(reg *sim.RegistryHandle) discovery.Config {
	return discovery.Config{Seeds: []wire.PeerInfo{reg.PeerInfo()}, ProbeInterval: 200 * time.Millisecond}
}

func TestPutArtifactOverWire(t *testing.T) {
	w := sim.NewWorld(sim.Config{Seed: 45})
	reg := w.AddRegistry("lan0", "r1", federation.Config{})
	cli := w.AddClient("lan0", "c1", fastClient())
	w.Run(time.Second)
	var ok, done bool
	cli.Cli.PutArtifact("urn:custom:taxonomy", []byte("@prefix ex: <http://e/> ."), time.Second, func(o bool) {
		ok, done = o, true
	})
	w.Run(2 * time.Second)
	if !done || !ok {
		t.Fatalf("PutArtifact = (done=%v ok=%v)", done, ok)
	}
	if _, have := reg.Reg.Store().Artifact("urn:custom:taxonomy"); !have {
		t.Fatal("uploaded artifact not stored")
	}
	// Round trip: another client fetches it back.
	cli2 := w.AddClient("lan0", "c2", fastClient())
	w.Run(time.Second)
	var data []byte
	done = false
	cli2.Cli.FetchArtifact("urn:custom:taxonomy", time.Second, func(d []byte, o bool) {
		data, done = d, o
	})
	w.Run(2 * time.Second)
	if !done || string(data) != "@prefix ex: <http://e/> ." {
		t.Fatalf("fetched artifact = %q", data)
	}
	// Registry-less upload fails immediately.
	w2 := sim.NewWorld(sim.Config{Seed: 46})
	lone := w2.AddClient("lan0", "c1", fastClient())
	var failed bool
	lone.Cli.PutArtifact("urn:x", nil, time.Second, func(o bool) { failed = !o })
	if !failed {
		t.Fatal("registry-less PutArtifact did not fail")
	}
}
