// Package workload generates the synthetic inputs the experiments run
// on: parameterized ontologies (random taxonomies of configurable depth
// and branching), service populations described over them, query mixes,
// and churn processes — the stand-in for the crisis-management and
// battlefield traces the paper motivates with but does not provide.
package workload

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"semdisco/internal/ontology"
	"semdisco/internal/profile"
)

// OntologySpec parameterizes a generated taxonomy.
type OntologySpec struct {
	// NS is the namespace; default "http://semdisco.example/gen#".
	NS string
	// Depth is the number of levels below Thing; default 4.
	Depth int
	// Branching is the children per internal class; default 3.
	Branching int
	// Seed drives naming-independent determinism (reserved; the
	// generator is currently fully structural).
	Seed int64
	// MapClosures keeps the ontology on the pre-compile map-based
	// closure path (ontology.DisableCompiledIndex). Benchmarks use it
	// to hold the original implementation as a fixed baseline against
	// the compiled fast path.
	MapClosures bool
}

func (s OntologySpec) withDefaults() OntologySpec {
	if s.NS == "" {
		s.NS = "http://semdisco.example/gen#"
	}
	if s.Depth == 0 {
		s.Depth = 4
	}
	if s.Branching == 0 {
		s.Branching = 3
	}
	return s
}

// GenOntology builds a complete Branching-ary taxonomy of the given
// depth. It returns the frozen ontology and the classes by level
// (levels[0] is the single root; levels[Depth-1] the leaves).
func GenOntology(spec OntologySpec) (*ontology.Ontology, [][]ontology.Class) {
	spec = spec.withDefaults()
	o := ontology.New(spec.NS)
	if spec.MapClosures {
		if err := o.DisableCompiledIndex(); err != nil {
			panic(err)
		}
	}
	levels := make([][]ontology.Class, spec.Depth)
	root := ontology.Class(spec.NS + "C")
	if err := o.AddClass(root); err != nil {
		panic(err)
	}
	levels[0] = []ontology.Class{root}
	for lvl := 1; lvl < spec.Depth; lvl++ {
		for _, parent := range levels[lvl-1] {
			for b := 0; b < spec.Branching; b++ {
				child := ontology.Class(fmt.Sprintf("%s_%d", parent, b))
				if err := o.AddClass(child, parent); err != nil {
					panic(err)
				}
				levels[lvl] = append(levels[lvl], child)
			}
		}
	}
	o.Freeze()
	return o, levels
}

// PopulationSpec parameterizes a service population.
type PopulationSpec struct {
	// N is the number of services; default 100.
	N int
	// Classes are the categories services are drawn from (uniformly).
	Classes []ontology.Class
	// DataClasses, when non-empty, are the input/output concepts: each
	// service gets 1–2 outputs and 0–1 inputs drawn from this pool,
	// exercising the matchmaker's I/O dimension.
	DataClasses []ontology.Class
	// OntologyIRI stamps each profile.
	OntologyIRI string
	// Seed drives the draws.
	Seed int64
}

// GenProfiles generates a service population. Profiles carry a QoS
// accuracy attribute in [0.5, 1.0) and descriptive text derived from
// the category local name (for keyword baselines).
func GenProfiles(spec PopulationSpec) []*profile.Profile {
	if spec.N == 0 {
		spec.N = 100
	}
	if len(spec.Classes) == 0 {
		panic("workload: empty class pool")
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	out := make([]*profile.Profile, spec.N)
	for i := range out {
		cat := spec.Classes[rng.Intn(len(spec.Classes))]
		p := &profile.Profile{
			ServiceIRI:  fmt.Sprintf("urn:svc:gen-%d", i),
			Name:        fmt.Sprintf("service-%d %s", i, localName(string(cat))),
			Text:        "provides " + strings.ToLower(localName(string(cat))) + " data",
			Category:    cat,
			QoS:         map[string]float64{"accuracy": 0.5 + rng.Float64()/2},
			Grounding:   fmt.Sprintf("udp://10.0.%d.%d:9000", i/250, i%250),
			OntologyIRI: spec.OntologyIRI,
		}
		if len(spec.DataClasses) > 0 {
			nOut := 1 + rng.Intn(2)
			for o := 0; o < nOut; o++ {
				p.Outputs = append(p.Outputs, spec.DataClasses[rng.Intn(len(spec.DataClasses))])
			}
			if rng.Intn(2) == 0 {
				p.Inputs = append(p.Inputs, spec.DataClasses[rng.Intn(len(spec.DataClasses))])
			}
		}
		out[i] = p
	}
	return out
}

func localName(iri string) string {
	for i := len(iri) - 1; i >= 0; i-- {
		if iri[i] == '#' || iri[i] == '/' {
			return iri[i+1:]
		}
	}
	return iri
}

// QueryMix draws query categories: with probability exactShare an
// existing service category (answerable by string matching), otherwise
// an ancestor one or two levels up (answerable only by subsumption).
type QueryMix struct {
	Onto       *ontology.Ontology
	Classes    []ontology.Class
	ExactShare float64
	rng        *rand.Rand
}

// NewQueryMix builds a query generator over the given category pool.
func NewQueryMix(o *ontology.Ontology, classes []ontology.Class, exactShare float64, seed int64) *QueryMix {
	return &QueryMix{Onto: o, Classes: classes, ExactShare: exactShare, rng: rand.New(rand.NewSource(seed))}
}

// Next draws a query category and reports whether it is an exact
// service category (vs. a broader ancestor).
func (m *QueryMix) Next() (ontology.Class, bool) {
	base := m.Classes[m.rng.Intn(len(m.Classes))]
	if m.rng.Float64() < m.ExactShare {
		return base, true
	}
	parents := m.Onto.Parents(base)
	if len(parents) == 0 {
		return base, true
	}
	up := parents[m.rng.Intn(len(parents))]
	if m.rng.Float64() < 0.5 {
		if gp := m.Onto.Parents(up); len(gp) > 0 && gp[0] != ontology.Thing {
			up = gp[0]
		}
	}
	if up == ontology.Thing {
		return base, true
	}
	return up, false
}

// Relevant returns the services whose category the requested category
// subsumes — the ground truth for precision/recall in E5. (Equal
// categories are subsumed reflexively.)
func Relevant(o *ontology.Ontology, requested ontology.Class, population []*profile.Profile) map[string]bool {
	out := make(map[string]bool)
	for _, p := range population {
		if o.Subsumes(requested, p.Category) {
			out[p.ServiceIRI] = true
		}
	}
	return out
}

// Churn is a two-state (up/down) exponential on/off process generator.
type Churn struct {
	// MeanUp and MeanDown are the mean sojourn times.
	MeanUp, MeanDown time.Duration
	rng              *rand.Rand
}

// NewChurn builds a churn process.
func NewChurn(meanUp, meanDown time.Duration, seed int64) *Churn {
	return &Churn{MeanUp: meanUp, MeanDown: meanDown, rng: rand.New(rand.NewSource(seed))}
}

// NextUp draws an up-phase duration (exponential, mean MeanUp).
func (c *Churn) NextUp() time.Duration {
	return time.Duration(c.rng.ExpFloat64() * float64(c.MeanUp))
}

// NextDown draws a down-phase duration.
func (c *Churn) NextDown() time.Duration {
	return time.Duration(c.rng.ExpFloat64() * float64(c.MeanDown))
}

// KeywordMatch is the naive text baseline for E5: every query word must
// appear as a whole token of the profile's name or text
// (case-insensitive). Whole-token comparison matters: substring
// matching would accidentally exploit hierarchical naming schemes and
// overstate what keyword search can do.
func KeywordMatch(queryWords []string, p *profile.Profile) bool {
	if len(queryWords) == 0 {
		return false
	}
	tokens := map[string]bool{}
	for _, tok := range strings.Fields(strings.ToLower(p.Name + " " + p.Text)) {
		tokens[tok] = true
	}
	for _, w := range queryWords {
		if !tokens[strings.ToLower(w)] {
			return false
		}
	}
	return true
}
