// Package federation implements the paper's central proposal: the
// autonomous, dynamically federated registry node (§4 and MILCOM'07).
// Each Registry is a super-peer that
//
//   - stores complete ("thick") advertisements and evaluates queries
//     itself via the pluggable description models,
//   - beacons on its LAN for passive registry discovery and answers
//     multicast probes for active discovery (§4.5),
//   - federates with peer registries across LANs: aliveness pings,
//     registry signaling (sharing alternate registry addresses),
//     summary gossip, and advertisement push (§4.9),
//   - forwards queries through the registry network under a selectable
//     strategy (flood / expanding ring / k-random-walk) with unique
//     query IDs for loop avoidance, aggregating results along the
//     reverse path so the entry registry can exercise query response
//     control before answering the client (§3.1, §4.7),
//   - coordinates with co-located registries so only one LAN gateway
//     forwards to the WAN (§4.7),
//   - purges advertisements whose leases lapse (§4.8), and
//   - serves ontology/schema artifacts (§4.6).
//
// The Registry is a sans-I/O state machine: the runtime guarantees
// handlers and timers never run concurrently.
//
// Protocol activity is instrumented: the federation.* runtime metrics
// (query receipt/forwarding/pruning, beacon and summary traffic, read
// pool usage) count every loop above; see OBSERVABILITY.md. The
// per-registry Stats struct carries the same query counts scoped to one
// registry instance.
package federation

import (
	"math/rand"
	"sort"
	"time"

	"semdisco/internal/describe"
	"semdisco/internal/registry"
	"semdisco/internal/runtime"
	"semdisco/internal/transport"
	"semdisco/internal/uuid"
	"semdisco/internal/wire"
)

// Config tunes a federated registry. Zero values become the listed
// defaults — the "configurable on an individual deployment basis"
// parameters the paper enumerates (beacon interval, query TTL, lease
// period, cooperation mode, …).
type Config struct {
	// BeaconInterval spaces LAN beacons; default 5 s.
	BeaconInterval time.Duration
	// PingInterval spaces aliveness pings to quiet peers; default 10 s.
	PingInterval time.Duration
	// PeerTimeout expires unresponsive peers; default 30 s.
	PeerTimeout time.Duration
	// SummaryInterval spaces summary gossip; 0 disables sending
	// summaries; default 15 s when SummaryPruning is set, else off.
	SummaryInterval time.Duration
	// SummaryPruning skips forwarding to peers whose summaries cannot
	// match the query.
	SummaryPruning bool
	// PushReplication forwards received advertisements to peers
	// (replication-style cooperation); PushHops bounds the spread.
	PushReplication bool
	// PushHops defaults to 1.
	PushHops uint8
	// GatewayCoordination makes only the lowest-ID registry on a LAN
	// forward queries to WAN peers.
	GatewayCoordination bool
	// QueryTimeout is the per-hop result aggregation budget multiplied
	// by remaining TTL+1; default 250 ms.
	QueryTimeout time.Duration
	// PurgeInterval spaces lease-expiry sweeps; default 500 ms.
	PurgeInterval time.Duration
	// SeenTTL bounds the query-dedup memory; default 60 s.
	SeenTTL time.Duration
	// MaxPeerShare bounds peer lists in signaling messages; default 5.
	MaxPeerShare int
	// MaxPeers bounds the peer table; default 32.
	MaxPeers int
	// Seeds are well-known registries contacted at start — the manual
	// seeding that connects LANs into a WAN registry network (§4.5).
	Seeds []wire.PeerInfo
	// SeedAddrs seeds by transport address alone (used by live UDP
	// deployments where peer node IDs are not known in advance); the
	// peer is learned from its Pong.
	SeedAddrs []string
	// Seed drives the walker-selection RNG.
	Seed int64
	// ReadWorkers, when positive, evaluates incoming queries on a
	// worker pool of that size instead of the node goroutine, so slow
	// semantic matchmaking does not stall protocol handling. All
	// state-mutating envelopes stay serialized on the node goroutine.
	// The default 0 keeps evaluation synchronous — required under the
	// deterministic simulator; enable only over the real UDP runtime.
	ReadWorkers int
	// ResultCacheSize, when positive, enables the gateway's remote
	// result cache of that many entries: completed fan-out results are
	// reused for repeated identical queries, bounded by the minimum
	// lease duration among the cached adverts (§4.8: a result is only
	// as fresh as its shortest lease). 0 disables it — remote caching
	// trades WAN bandwidth for bounded staleness, so it is opt-in.
	ResultCacheSize int
	// ResultCacheMaxTTL caps how long any remote result is reused even
	// when its leases run longer; default 5 s.
	ResultCacheMaxTTL time.Duration
	// ResultCacheEmptyTTL bounds reuse of empty remote results, so a
	// service published moments after a miss becomes discoverable
	// quickly; default 1 s.
	ResultCacheEmptyTTL time.Duration
	// SummaryFullEvery forces a full summary resync every Nth summary
	// tick per peer, bounding silent divergence under lost deltas;
	// default 16. Deltas are sent on the ticks in between.
	SummaryFullEvery int
	// FullSummaries disables the incremental delta protocol and sends
	// a whole summary to every peer each tick (the pre-delta behaviour,
	// kept for ablation experiments).
	FullSummaries bool

	// Role places the registry in the federation hierarchy (directory.go):
	// standalone (default, flat federation), federated (domain gateway),
	// or root (the cascade's fallback resolver).
	Role Role
	// Domain names the namespace this gateway fronts; federated and root
	// registries with a Domain author its directory entry.
	Domain string
	// RootAddr is where a federated gateway escalates queries for
	// domains its directory does not know. Listing the root in Seeds as
	// well lets escalated queries complete promptly instead of on the
	// hop deadline.
	RootAddr string
	// DirectoryInterval spaces directory anti-entropy gossip;
	// default 10 s when Role is not standalone.
	DirectoryInterval time.Duration
	// DirectoryFullEvery forces a full directory snapshot every Nth
	// sending tick per peer; default 16.
	DirectoryFullEvery int
	// TombstoneTTL bounds how long a departed domain's tombstone is
	// retained (and re-gossiped) before aging out; default 2 m.
	TombstoneTTL time.Duration
}

func (c Config) withDefaults() Config {
	def := func(d *time.Duration, v time.Duration) {
		if *d == 0 {
			*d = v
		}
	}
	def(&c.BeaconInterval, 5*time.Second)
	def(&c.PingInterval, 10*time.Second)
	def(&c.PeerTimeout, 30*time.Second)
	if c.SummaryInterval == 0 && c.SummaryPruning {
		c.SummaryInterval = 15 * time.Second
	}
	if c.PushHops == 0 {
		c.PushHops = 1
	}
	def(&c.QueryTimeout, 250*time.Millisecond)
	def(&c.PurgeInterval, 500*time.Millisecond)
	def(&c.SeenTTL, 60*time.Second)
	if c.MaxPeerShare == 0 {
		c.MaxPeerShare = 5
	}
	if c.MaxPeers == 0 {
		c.MaxPeers = 32
	}
	def(&c.ResultCacheMaxTTL, 5*time.Second)
	def(&c.ResultCacheEmptyTTL, time.Second)
	if c.SummaryFullEvery == 0 {
		c.SummaryFullEvery = 16
	}
	if c.Role != RoleStandalone {
		def(&c.DirectoryInterval, 10*time.Second)
	}
	if c.DirectoryFullEvery == 0 {
		c.DirectoryFullEvery = 16
	}
	def(&c.TombstoneTTL, 2*time.Minute)
	return c
}

// Stats counts the registry's protocol activity for experiments.
type Stats struct {
	QueriesReceived      uint64
	DuplicatesSuppressed uint64
	QueriesForwarded     uint64
	ForwardsPruned       uint64
	QueriesAnswered      uint64
	ResultsReturned      uint64
	AdvertsPushed        uint64
	PeersExpired         uint64
}

type peer struct {
	info     wire.PeerInfo
	lastSeen time.Time
	// lan marks peers discovered via LAN multicast (beacons/probes).
	lan bool
	// summary holds the peer's last gossiped tokens per kind.
	summary map[describe.Kind]map[string]bool

	// Receiver side of delta summary gossip: the sender's version our
	// applied summary corresponds to.
	gotVersion uint64

	// Sender side: the highest version this peer acknowledged. Guarded
	// monotonic — delta acks are datagrams and may arrive out of order;
	// regressing would re-send (and mis-base) already-applied deltas.
	ackedVersion uint64
	// needFull forces the next summary tick to send a full resync
	// (set by an explicit Resync request or version-space mismatch).
	needFull bool
	// lastFullVersion is the version of the last full resync sent; an
	// ack naming it exactly may lower ackedVersion (resync is a fresh
	// synchronization point, e.g. after this sender restarted with a
	// smaller version space).
	lastFullVersion uint64
	// sinceFull counts summary ticks since the last full resync, for
	// the periodic full refresh that bounds silent divergence.
	sinceFull int

	// Directory gossip state, the same protocol roles as the summary
	// fields above but over the domain directory stream (directory.go).
	dirGotVersion      uint64
	dirAckedVersion    uint64
	dirNeedFull        bool
	dirLastFullVersion uint64
	dirSinceFull       int
}

// Registry is one federated registry node.
type Registry struct {
	env   *runtime.Env
	store *registry.Store
	cfg   Config
	rng   *rand.Rand
	pool  *runtime.WorkerPool // nil when ReadWorkers == 0

	peers   map[wire.NodeID]*peer
	seen    map[uuid.UUID]time.Time
	pending map[uuid.UUID]*pendingQuery
	rcache  *resultCache // nil when ResultCacheSize == 0

	gatewayOverride *bool // test hook; nil = derive from LAN peers

	// dsum is the sender state of the incremental summary protocol:
	// the versioned snapshot and the bounded delta history (delta.go).
	dsum deltaSummaryState

	// dir is the gossiped domain directory (registry-of-registries);
	// ownDirVersion is the per-origin version of this gateway's own
	// entry in it (directory.go).
	dir           *directory
	ownDirVersion uint64

	stats   Stats
	stopped bool
	cancels []transport.CancelFunc
}

// New constructs a federated registry over the given store and
// environment. Call Start to arm its timers.
func New(env *runtime.Env, store *registry.Store, cfg Config) *Registry {
	cfg = cfg.withDefaults()
	var rcache *resultCache
	if cfg.ResultCacheSize > 0 {
		rcache = newResultCache(cfg.ResultCacheSize, cfg.ResultCacheMaxTTL, cfg.ResultCacheEmptyTTL)
	}
	return &Registry{
		env:     env,
		store:   store,
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed ^ 0x5eed)),
		pool:    runtime.NewWorkerPool(cfg.ReadWorkers, 4*cfg.ReadWorkers),
		peers:   make(map[wire.NodeID]*peer),
		seen:    make(map[uuid.UUID]time.Time),
		pending: make(map[uuid.UUID]*pendingQuery),
		rcache:  rcache,
		dir:     newDirectory(),
	}
}

// Store exposes the underlying registry store.
func (r *Registry) Store() *registry.Store { return r.store }

// Stats returns a copy of the protocol counters.
func (r *Registry) Stats() Stats { return r.stats }

// ID returns the registry's node ID.
func (r *Registry) ID() wire.NodeID { return r.env.ID }

// Addr returns the registry's transport address.
func (r *Registry) Addr() transport.Addr { return r.env.Addr() }

// Start announces the registry (immediate beacon + probe for other
// registries), contacts the configured seeds, and arms the periodic
// timers.
func (r *Registry) Start() {
	r.sendBeacon()
	// Probe so co-located registries answer and both sides learn each
	// other immediately rather than after one beacon interval.
	r.env.Multicast(wire.Probe{})
	for _, s := range r.cfg.Seeds {
		if s.ID != r.env.ID {
			r.addPeer(s, false)
			r.env.Send(transport.Addr(s.Addr), wire.Ping{FromRegistry: true})
		}
	}
	for _, addr := range r.cfg.SeedAddrs {
		if addr != string(r.env.Addr()) {
			r.env.Send(transport.Addr(addr), wire.Ping{FromRegistry: true})
		}
	}
	r.every(r.cfg.BeaconInterval, r.sendBeacon)
	r.every(r.cfg.PingInterval, r.pingPeers)
	r.every(r.cfg.PurgeInterval, r.purge)
	r.every(r.cfg.SeenTTL, r.cleanSeen)
	if r.cfg.SummaryInterval > 0 {
		r.every(r.cfg.SummaryInterval, r.sendSummaries)
	}
	if r.dirEnabled() {
		r.announceDomain(false)
		r.every(r.cfg.DirectoryInterval, r.gossipDirectory)
	}
}

// Stop announces departure and cancels all timers.
func (r *Registry) Stop() {
	if r.stopped {
		return
	}
	r.stopped = true
	// A departing domain gateway retracts its directory entry: the
	// tombstone goes out best-effort on the normal delta path, and other
	// gateways relay it on (transitive gossip) to anyone who missed it.
	if r.dirEnabled() && r.cfg.Domain != "" {
		r.announceDomain(true)
		for _, p := range r.sortedPeers() {
			r.sendDirectoryTo(p)
		}
	}
	r.env.Multicast(wire.Bye{})
	for _, p := range r.sortedPeers() {
		if !p.lan {
			r.env.Send(transport.Addr(p.info.Addr), wire.Bye{})
		}
	}
	for _, c := range r.cancels {
		c()
	}
	r.cancels = nil
	r.pool.Close()
}

// Crash halts the registry abruptly — no Bye, no cleanup visible to
// peers — simulating the sudden failures of dynamic environments. Peers
// only learn of the death through ping timeouts and clients through
// request timeouts.
func (r *Registry) Crash() {
	r.stopped = true
	for _, c := range r.cancels {
		c()
	}
	r.cancels = nil
	r.pool.Close()
}

// every arms a self-rearming timer.
func (r *Registry) every(d time.Duration, fn func()) {
	var arm func()
	arm = func() {
		if r.stopped {
			return
		}
		fn()
		r.cancels = append(r.cancels, r.env.Clock.After(d, arm))
	}
	r.cancels = append(r.cancels, r.env.Clock.After(d, arm))
}

func (r *Registry) now() time.Time { return r.env.Clock.Now() }

// --- peer table ---

func (r *Registry) addPeer(info wire.PeerInfo, lan bool) *peer {
	if info.ID == r.env.ID || info.ID.IsNil() {
		return nil
	}
	p, ok := r.peers[info.ID]
	if !ok {
		if len(r.peers) >= r.cfg.MaxPeers {
			r.evictOldestPeer()
		}
		// A fresh peer struct must start from a full resync on both delta
		// streams, even if the node itself was known before (evicted and
		// re-learned moments later via signaling): the old per-peer state
		// is gone, so a delta against the stale base — or one sent from a
		// phantom acked version still in flight — would corrupt the view.
		p = &peer{info: info, lastSeen: r.now(), needFull: true, dirNeedFull: true}
		r.peers[info.ID] = p
	}
	p.info.Addr = info.Addr
	if lan {
		p.lan = true
	}
	return p
}

func (r *Registry) touchPeer(id wire.NodeID) {
	if p, ok := r.peers[id]; ok {
		p.lastSeen = r.now()
	}
}

func (r *Registry) evictOldestPeer() {
	var victim wire.NodeID
	var oldest time.Time
	first := true
	for id, p := range r.peers {
		if first || p.lastSeen.Before(oldest) {
			victim, oldest, first = id, p.lastSeen, false
		}
	}
	if !first {
		delete(r.peers, victim)
	}
}

// sortedPeers returns live peers in deterministic (ID) order.
func (r *Registry) sortedPeers() []*peer {
	out := make([]*peer, 0, len(r.peers))
	for _, p := range r.peers {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		return uuid.Compare(out[i].info.ID, out[j].info.ID) < 0
	})
	return out
}

// Peers returns the current peer list (registry signaling content).
func (r *Registry) Peers() []wire.PeerInfo {
	ps := r.sortedPeers()
	out := make([]wire.PeerInfo, len(ps))
	for i, p := range ps {
		out[i] = p.info
	}
	return out
}

// sharePeers selects up to MaxPeerShare peers (self first) for
// signaling messages, so clients and peers always learn alternates.
func (r *Registry) sharePeers() []wire.PeerInfo {
	out := []wire.PeerInfo{{ID: r.env.ID, Addr: string(r.env.Addr())}}
	for _, p := range r.sortedPeers() {
		if len(out) > r.cfg.MaxPeerShare {
			break
		}
		out = append(out, p.info)
	}
	return out
}

// IsGateway reports whether this registry currently holds the LAN
// gateway role: the lowest node ID among itself and the live registries
// it has heard beacon on its LAN. With coordination disabled every
// registry acts as a gateway.
func (r *Registry) IsGateway() bool {
	if !r.cfg.GatewayCoordination {
		return true
	}
	if r.gatewayOverride != nil {
		return *r.gatewayOverride
	}
	for _, p := range r.peers {
		if p.lan && uuid.Compare(p.info.ID, r.env.ID) < 0 {
			return false
		}
	}
	return true
}

// --- periodic duties ---

func (r *Registry) sendBeacon() {
	r.env.Multicast(wire.Beacon{Peers: r.sharePeers()})
	fBeaconsSent.Inc()
}

func (r *Registry) pingPeers() {
	now := r.now()
	for id, p := range r.peers {
		idle := now.Sub(p.lastSeen)
		if idle >= r.cfg.PeerTimeout {
			delete(r.peers, id)
			r.stats.PeersExpired++
			fPeersExpired.Inc()
			continue
		}
		if idle >= r.cfg.PingInterval && !p.lan {
			r.env.Send(transport.Addr(p.info.Addr), wire.Ping{FromRegistry: true})
		}
	}
	// Configured seeds are durable intent: if a seed dropped out of the
	// peer table (e.g. a network partition outlived the peer timeout),
	// keep trying it so the federation re-forms after a heal.
	for _, s := range r.cfg.Seeds {
		if s.ID == r.env.ID {
			continue
		}
		if _, known := r.peers[s.ID]; !known {
			r.env.Send(transport.Addr(s.Addr), wire.Ping{FromRegistry: true})
		}
	}
	for _, addr := range r.cfg.SeedAddrs {
		if addr == string(r.env.Addr()) {
			continue
		}
		known := false
		for _, p := range r.peers {
			if p.info.Addr == addr {
				known = true
				break
			}
		}
		if !known {
			r.env.Send(transport.Addr(addr), wire.Ping{FromRegistry: true})
		}
	}
}

func (r *Registry) purge() {
	purged := r.store.ExpireThrough(r.now())
	if len(purged) > 0 {
		r.env.Tracef("purged %d expired adverts", len(purged))
	}
	if n := r.store.PruneSubscriptions(r.now()); n > 0 {
		r.env.Tracef("pruned %d expired subscriptions", n)
	}
}

// subscriptionLease clamps requested subscription leases; reusing the
// advertisement policy's spirit with a 60 s default.
func subscriptionLease(requestedMillis uint64) time.Duration {
	d := time.Duration(requestedMillis) * time.Millisecond
	switch {
	case d <= 0:
		return time.Minute
	case d < time.Second:
		return time.Second
	case d > 10*time.Minute:
		return 10 * time.Minute
	default:
		return d
	}
}

func (r *Registry) handleSubscribe(from transport.Addr, b *wire.Subscribe) {
	granted := subscriptionLease(b.LeaseMillis)
	notify := b.NotifyAddr
	if notify == "" {
		notify = string(from)
	}
	_, err := r.store.Subscribe(b.Kind, b.Payload, notify, b.SubID, r.now().Add(granted))
	ack := wire.SubscribeAck{SubID: b.SubID, OK: err == nil, LeaseMillis: uint64(granted / time.Millisecond)}
	if err != nil {
		ack.Error = err.Error()
	}
	r.env.Send(from, ack)
}

func (r *Registry) cleanSeen() {
	cutoff := r.now().Add(-r.cfg.SeenTTL)
	for id, ts := range r.seen {
		if ts.Before(cutoff) {
			delete(r.seen, id)
		}
	}
}

func (r *Registry) sendSummaries() {
	sum := r.store.Summary()
	if r.cfg.FullSummaries {
		// Ablation path: gossip the whole summary every tick.
		if len(sum) == 0 {
			return
		}
		for _, p := range r.sortedPeers() {
			r.env.Send(transport.Addr(p.info.Addr), wire.Summary{Entries: sum})
			fSummariesSent.Inc()
		}
		return
	}
	r.dsum.advance(sum)
	if r.dsum.version == 0 {
		return // nothing was ever advertised
	}
	for _, p := range r.sortedPeers() {
		r.sendSummaryTo(p)
	}
}

// HandleEnvelope implements runtime.Handler.
func (r *Registry) HandleEnvelope(env *wire.Envelope, from transport.Addr) {
	if r.stopped {
		return
	}
	switch b := env.Body.(type) {
	case *wire.Probe:
		// Active registry discovery: answer with ourselves + alternates.
		r.env.Send(from, wire.ProbeMatch{Peers: r.sharePeers()})
	case *wire.Beacon:
		// Beacons only travel by LAN multicast, so the sender is local.
		r.addPeer(wire.PeerInfo{ID: env.From, Addr: env.FromAddr}, true)
		r.touchPeer(env.From)
		r.learnPeers(b.Peers)
	case *wire.ProbeMatch:
		r.addPeer(wire.PeerInfo{ID: env.From, Addr: env.FromAddr}, true)
		r.touchPeer(env.From)
		r.learnPeers(b.Peers)
	case *wire.Bye:
		delete(r.peers, env.From)
	case *wire.Ping:
		if b.FromRegistry {
			r.addPeer(wire.PeerInfo{ID: env.From, Addr: env.FromAddr}, false)
			r.touchPeer(env.From)
		}
		r.env.Send(from, wire.Pong{Peers: r.sharePeers()})
	case *wire.Pong:
		r.addPeer(wire.PeerInfo{ID: env.From, Addr: env.FromAddr}, false)
		r.touchPeer(env.From)
		r.learnPeers(b.Peers)
	case *wire.PeerExchange:
		r.touchPeer(env.From)
		r.learnPeers(b.Peers)
	case *wire.Summary:
		r.handleSummary(env.From, b)
	case *wire.SummaryDelta:
		r.handleSummaryDelta(env.From, from, b)
	case *wire.SummaryAck:
		r.handleSummaryAck(env.From, b)
	case *wire.DirectoryDelta:
		r.handleDirectoryDelta(env, from, b)
	case *wire.DirectoryAck:
		r.handleDirectoryAck(env.From, b)
	case *wire.GatewayClaim:
		// A yielding gateway re-triggers election implicitly: it stops
		// beaconing as gateway; nothing to store beyond peer liveness.
		r.touchPeer(env.From)
	case *wire.Publish:
		r.handlePublish(env, from, b)
	case *wire.Renew:
		granted, ok := r.store.Renew(b.AdvertID, r.now())
		r.env.Send(from, wire.RenewAck{
			AdvertID:    b.AdvertID,
			OK:          ok,
			LeaseMillis: uint64(granted / time.Millisecond),
		})
		// Under push replication, renewals must refresh the replicas
		// too, or they age out at the peers while the original lives.
		if ok && r.cfg.PushReplication {
			if adv, have := r.store.Advert(b.AdvertID); have {
				r.pushAdvert(adv, r.cfg.PushHops, env.From)
			}
		}
	case *wire.Remove:
		r.store.Remove(b.AdvertID)
	case *wire.AdvertForward:
		r.handleAdvertForward(env, b)
	case *wire.Query:
		r.handleQuery(env, from, b)
	case *wire.QueryResult:
		r.handleQueryResult(env, b)
	case *wire.ArtifactGet:
		data, found := r.store.Artifact(b.IRI)
		r.env.Send(from, wire.ArtifactData{IRI: b.IRI, Found: found, Data: data})
	case *wire.Subscribe:
		r.handleSubscribe(from, b)
	case *wire.ArtifactPut:
		r.store.PutArtifact(b.IRI, b.Data)
		r.env.Send(from, wire.ArtifactPutAck{IRI: b.IRI, OK: true})
	case *wire.Unsubscribe:
		r.store.Unsubscribe(b.SubID)
	default:
		r.env.Tracef("registry: ignoring %v from %s", env.Type, from)
	}
}

func (r *Registry) learnPeers(infos []wire.PeerInfo) {
	for _, in := range infos {
		r.addPeer(in, false)
	}
}

func (r *Registry) handleSummary(from wire.NodeID, s *wire.Summary) {
	p, ok := r.peers[from]
	if !ok {
		return
	}
	p.lastSeen = r.now()
	p.summary = make(map[describe.Kind]map[string]bool, len(s.Entries))
	for _, e := range s.Entries {
		set := make(map[string]bool, len(e.Tokens))
		for _, t := range e.Tokens {
			set[t] = true
		}
		p.summary[e.Kind] = set
	}
}

func (r *Registry) handlePublish(env *wire.Envelope, from transport.Addr, b *wire.Publish) {
	// The advert's payload is borrowed from the receive buffer; the
	// store retains it, so it must be cloned before crossing into the
	// store (the push fan-out below marshals synchronously and may use
	// either copy).
	adv := wire.CloneAdvert(b.Advert)
	granted, notes, err := r.store.Publish(adv, r.now())
	ack := wire.PublishAck{AdvertID: adv.ID, OK: err == nil, LeaseMillis: uint64(granted / time.Millisecond)}
	if err != nil {
		ack.Error = err.Error()
	}
	r.env.Send(from, ack)
	for _, n := range notes {
		r.env.Send(transport.Addr(n.NotifyAddr), wire.QueryResult{
			QueryID: n.SubID,
			Adverts: []wire.Advertisement{n.Advert},
		})
	}
	if err == nil && r.cfg.PushReplication {
		r.pushAdvert(adv, r.cfg.PushHops, env.From)
	}
}

func (r *Registry) handleAdvertForward(env *wire.Envelope, b *wire.AdvertForward) {
	// Replicas of content we already hold only refresh the lease; they
	// are not forwarded again, or every renewal would cascade through
	// the whole registry network.
	known := false
	if existing, ok := r.store.Advert(b.Advert.ID); ok && existing.Version >= b.Advert.Version {
		known = true
	}
	adv := wire.CloneAdvert(b.Advert) // payload is borrowed; the store retains it
	_, notes, err := r.store.Publish(adv, r.now())
	if err != nil {
		return // stale or unknown kind: drop silently
	}
	for _, n := range notes {
		r.env.Send(transport.Addr(n.NotifyAddr), wire.QueryResult{
			QueryID: n.SubID,
			Adverts: []wire.Advertisement{n.Advert},
		})
	}
	if !known && b.HopsLeft > 0 {
		r.pushAdvert(adv, b.HopsLeft-1, env.From)
	}
}

func (r *Registry) pushAdvert(adv wire.Advertisement, hops uint8, except wire.NodeID) {
	for _, p := range r.sortedPeers() {
		if p.info.ID == except || p.info.ID == adv.Provider {
			continue
		}
		r.env.Send(transport.Addr(p.info.Addr), wire.AdvertForward{Advert: adv, HopsLeft: hops})
		r.stats.AdvertsPushed++
		fAdvertsPushed.Inc()
	}
}
