// Command registryd runs one federated service discovery registry over
// real UDP — the live deployment of the architecture's registry role.
//
// Usage:
//
//	registryd -bind 127.0.0.1:7701 \
//	          -mcast 239.77.77.77:7777 \
//	          -seed 10.0.0.2:7701,10.0.0.3:7701 \
//	          -ontology taxonomy.ttl -push -gateway -v
//
// The registry beacons on the multicast group for LAN discovery,
// answers probes, federates with the seeded registries, leases and
// purges advertisements, and serves the loaded ontology from its
// artifact repository.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	stdruntime "runtime"
	"strings"
	"syscall"
	"time"

	"semdisco/internal/describe"
	"semdisco/internal/federation"
	"semdisco/internal/lease"
	"semdisco/internal/obs"
	"semdisco/internal/ontology"
	"semdisco/internal/rdf"
	"semdisco/internal/registry"
	"semdisco/internal/runtime"
	"semdisco/internal/sim"
	"semdisco/internal/transport"
	"semdisco/internal/transport/udpnet"
	"semdisco/internal/uuid"
)

func main() {
	var (
		bind      = flag.String("bind", "127.0.0.1:0", "unicast listen address")
		mcast     = flag.String("mcast", "239.77.77.77:7777", "LAN multicast group ('' disables)")
		seeds     = flag.String("seed", "", "comma-separated peer registry addresses (WAN seeding)")
		ontoPath  = flag.String("ontology", "", "Turtle taxonomy file (default: built-in sensor taxonomy)")
		push      = flag.Bool("push", false, "replicate advertisements to peer registries")
		summary   = flag.Bool("summaries", false, "gossip advertisement summaries and prune forwarding")
		gateway   = flag.Bool("gateway", false, "coordinate one WAN gateway per LAN")
		role      = flag.String("role", "standalone", "federation role: standalone, federated (domain gateway), or root (registry of registries)")
		domain    = flag.String("domain", "", "federation namespace this gateway fronts (required with -role federated)")
		rootAddr  = flag.String("root", "", "root registry address for directory-miss escalation")
		leaseMax  = flag.Duration("lease-max", 10*time.Minute, "maximum granted lease")
		leaseDef  = flag.Duration("lease-default", 30*time.Second, "default granted lease")
		beacon    = flag.Duration("beacon", 5*time.Second, "beacon interval")
		httpAddr  = flag.String("http", "", "serve /status and /ontology on this address ('' disables)")
		statAddr  = flag.String("stats-addr", "", "serve runtime metrics on this address: /stats (text), /stats.json ('' disables)")
		readers   = flag.Int("read-workers", stdruntime.GOMAXPROCS(0), "query evaluation workers (0 = evaluate on the node goroutine)")
		qcacheLen = flag.Int("qcache-size", 256, "query result cache entries (generation-validated, always exact)")
		qcacheOff = flag.Bool("qcache-off", false, "disable the query result cache")
		rcacheLen = flag.Int("rcache-size", 0, "gateway remote result cache entries (0 disables; reuse bounded by shortest advert lease)")
		rcacheTTL = flag.Duration("rcache-ttl", 5*time.Second, "maximum reuse of a cached remote result set")
		subidxOff = flag.Bool("subindex-off", false, "disable the inverted subscription index (linear-scan notification baseline)")
		arenaSlab = flag.Int("arena-slab", 0, "advert arena slab size in records per shard (0 = 1024; raise for million-advert stores)")
		walDir    = flag.String("wal-dir", "", "durable state directory: write-ahead log + snapshots ('' = memory-only, state lost on restart)")
		walFsync  = flag.Bool("wal-fsync", true, "fsync the log before acknowledging mutations (group-commit batched); false flushes to the OS only")
		walStream = flag.Int("wal-streams", 0, "shard the log append path into this many per-stripe streams (0/1 = single stream)")
		batch     = flag.Bool("batch", false, "coalesce eligible high-rate messages (renews, acks, gossip) into shared datagrams via sendmmsg")
		batchWait = flag.Duration("batch-delay", 2*time.Millisecond, "max time a batched message waits for companions")
		snapEvery = flag.Int("snapshot-every", 0, "log records between compacted snapshots (0 = 100000, negative disables)")
		verbose   = flag.Bool("v", false, "trace protocol activity")
	)
	flag.Parse()

	onto, err := loadOntology(*ontoPath)
	if err != nil {
		log.Fatalf("registryd: %v", err)
	}
	models := describe.NewRegistry(describe.URIModel{}, describe.KVModel{}, describe.NewSemanticModel(onto))
	qsize := *qcacheLen
	if *qcacheOff {
		qsize = -1
	}
	mkStore := func() *registry.Store {
		return registry.New(registry.Options{
			Models:          models,
			Leases:          lease.Policy{Max: *leaseMax, Default: *leaseDef},
			QueryCacheSize:  qsize,
			DisableSubIndex: *subidxOff,
			ArenaSlab:       *arenaSlab,
		})
	}
	var store *registry.Store
	var wal *registry.WAL
	if *walDir != "" {
		var stats registry.RecoveryStats
		store, wal, stats, err = registry.Recover(registry.WALConfig{
			Dir:           *walDir,
			Fsync:         *walFsync,
			SnapshotEvery: *snapEvery,
			AppendStreams: *walStream,
			NewStore:      mkStore,
		})
		if err != nil {
			log.Fatalf("registryd: %v", err)
		}
		log.Printf("registryd: recovered %d adverts, %d subscriptions from %s in %v (snapshot lsn %d: %d adverts; %d records replayed, %d torn frames dropped)",
			stats.Adverts, stats.Subs, *walDir, stats.Elapsed.Round(time.Millisecond),
			stats.SnapshotLSN, stats.SnapshotAdverts, stats.Replayed, stats.TornFrames)
	} else {
		store = mkStore()
	}
	store.PutArtifact(onto.IRI, ontologyDoc(onto))

	nodeio, err := udpnet.Listen(udpnet.Config{Bind: *bind, Multicast: *mcast})
	if err != nil {
		log.Fatalf("registryd: %v", err)
	}
	defer nodeio.Close()

	var iface transport.Iface = nodeio
	if *batch {
		iface = transport.NewBatcher(nodeio, nodeio, transport.BatcherConfig{FlushDelay: *batchWait})
	}
	env := &runtime.Env{ID: uuid.New(), Iface: iface, Clock: nodeio, Gen: nil}
	if *verbose {
		env.Trace = func(format string, args ...any) { log.Printf("trace: "+format, args...) }
	}
	parsedRole, ok := federation.ParseRole(*role)
	if !ok {
		log.Fatalf("registryd: unknown -role %q (want standalone, federated or root)", *role)
	}
	if parsedRole == federation.RoleFederated && *domain == "" {
		log.Fatal("registryd: -role federated requires -domain")
	}
	cfg := federation.Config{
		BeaconInterval:      *beacon,
		PushReplication:     *push,
		SummaryPruning:      *summary,
		GatewayCoordination: *gateway,
		Role:                parsedRole,
		Domain:              *domain,
		RootAddr:            *rootAddr,
		ReadWorkers:         *readers,
		ResultCacheSize:     *rcacheLen,
		ResultCacheMaxTTL:   *rcacheTTL,
	}
	if *seeds != "" {
		cfg.SeedAddrs = strings.Split(*seeds, ",")
	}
	reg := federation.New(env, store, cfg)
	nodeio.SetHandler(func(from transport.Addr, data []byte) {
		runtime.Dispatch(reg, env, from, data)
	})
	nodeio.Do(reg.Start)

	log.Printf("registryd %s listening on %s (multicast %v, ontology %s, %d classes)",
		env.ID.Short(), nodeio.Addr(), nodeio.MulticastReady(), onto.IRI, onto.NumClasses())

	if *httpAddr != "" {
		go serveStatus(*httpAddr, nodeio, reg, onto)
	}
	if *statAddr != "" {
		go serveStats(*statAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	ticker := time.NewTicker(30 * time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-sig:
			log.Printf("registryd: shutting down")
			nodeio.Do(reg.Stop)
			if wal != nil {
				// A clean shutdown leaves a fresh snapshot behind, so the
				// next boot replays (almost) nothing.
				if err := wal.Snapshot(); err != nil {
					log.Printf("registryd: shutdown snapshot: %v", err)
				}
				if err := wal.Close(); err != nil {
					log.Printf("registryd: wal close: %v", err)
				}
			}
			return
		case <-ticker.C:
			nodeio.Do(func() {
				s := reg.Stats()
				log.Printf("adverts=%d peers=%d queries=%d forwarded=%d dups=%d",
					reg.Store().Len(), len(reg.Peers()), s.QueriesReceived, s.QueriesForwarded, s.DuplicatesSuppressed)
			})
		}
	}
}

// serveStatus exposes a read-only observability endpoint: GET /status
// returns registry state as JSON, GET /ontology the Turtle taxonomy.
// All registry access is funnelled through the node executor so the
// HTTP handlers never race the protocol state machine.
func serveStatus(addr string, nodeio *udpnet.Node, reg *federation.Registry, onto *ontology.Ontology) {
	mux := http.NewServeMux()
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		type peerJSON struct {
			ID   string `json:"id"`
			Addr string `json:"addr"`
		}
		var out struct {
			NodeID        string           `json:"nodeId"`
			Addr          string           `json:"addr"`
			Adverts       int              `json:"adverts"`
			Subscriptions int              `json:"subscriptions"`
			Gateway       bool             `json:"gateway"`
			Peers         []peerJSON       `json:"peers"`
			Stats         federation.Stats `json:"stats"`
		}
		nodeio.Do(func() {
			out.NodeID = reg.ID().String()
			out.Addr = string(reg.Addr())
			out.Adverts = reg.Store().Len()
			out.Subscriptions = reg.Store().NumSubscriptions()
			out.Gateway = reg.IsGateway()
			for _, p := range reg.Peers() {
				out.Peers = append(out.Peers, peerJSON{ID: p.ID.String(), Addr: p.Addr})
			}
			out.Stats = reg.Stats()
		})
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(out)
	})
	mux.HandleFunc("/ontology", func(w http.ResponseWriter, r *http.Request) {
		var doc []byte
		nodeio.Do(func() { doc, _ = reg.Store().Artifact(onto.IRI) })
		w.Header().Set("Content-Type", "text/turtle; charset=utf-8")
		w.Write(doc)
	})
	log.Printf("registryd: status endpoint on http://%s/status", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		log.Printf("registryd: http endpoint failed: %v", err)
	}
}

// serveStats exposes the process-wide runtime metric registry (counters,
// gauges, latency histograms — see OBSERVABILITY.md). Metrics are
// atomics, so this endpoint never touches the node executor.
func serveStats(addr string) {
	log.Printf("registryd: stats endpoint on http://%s/stats", addr)
	if err := http.ListenAndServe(addr, obs.Handler(obs.Default)); err != nil {
		log.Printf("registryd: stats endpoint failed: %v", err)
	}
}

func loadOntology(path string) (*ontology.Ontology, error) {
	if path == "" {
		return sim.DefaultOntology(), nil
	}
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	o, err := ontology.FromTurtle("file://"+path, string(src))
	if err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return o, nil
}

func ontologyDoc(o *ontology.Ontology) []byte {
	g := o.ToGraph()
	return []byte(rdf.EncodeNTriples(g))
}
