package profile

import "semdisco/internal/ontology"

// InternedProfile carries the compiled-ontology ClassIDs of a profile's
// category and I/O concepts. The registry interns each stored profile
// once at decode time so the semantic evaluate loop compares integer
// IDs instead of IRI strings — zero string-map lookups after the plan
// cache hit. The struct is immutable after Intern builds it and may be
// shared freely between goroutines and clones.
type InternedProfile struct {
	onto     *ontology.Ontology
	Category ontology.ClassID
	Inputs   []ontology.ClassID
	Outputs  []ontology.ClassID
}

// InternedTemplate is the query-side counterpart of InternedProfile.
type InternedTemplate struct {
	onto            *ontology.Ontology
	Category        ontology.ClassID
	RequiredOutputs []ontology.ClassID
	ProvidedInputs  []ontology.ClassID
}

// Intern resolves the profile's concepts against o's compiled index and
// caches the result on the profile. A nil or uncompiled ontology clears
// the cache. Undeclared concepts intern to ontology.NoClass; the
// matcher falls back to string semantics for those pairs. Not safe for
// concurrent use with readers — intern before sharing the profile.
func (p *Profile) Intern(o *ontology.Ontology) {
	if o == nil || !o.Compiled() {
		p.itn = nil
		return
	}
	p.itn = &InternedProfile{
		onto:     o,
		Category: o.ClassID(p.Category),
		Inputs:   internClasses(o, p.Inputs),
		Outputs:  internClasses(o, p.Outputs),
	}
}

// InternedFor returns the cached interned view when it was built
// against exactly o (pointer identity), nil otherwise. Never resolves
// lazily, so it is safe to call concurrently.
func (p *Profile) InternedFor(o *ontology.Ontology) *InternedProfile {
	if itn := p.itn; itn != nil && itn.onto == o {
		return itn
	}
	return nil
}

// Intern resolves the template's concepts against o's compiled index
// and caches the result; see Profile.Intern for the contract.
func (t *Template) Intern(o *ontology.Ontology) {
	if o == nil || !o.Compiled() {
		t.itn = nil
		return
	}
	t.itn = &InternedTemplate{
		onto:            o,
		Category:        o.ClassID(t.Category),
		RequiredOutputs: internClasses(o, t.RequiredOutputs),
		ProvidedInputs:  internClasses(o, t.ProvidedInputs),
	}
}

// InternedFor returns the cached interned view when it was built
// against exactly o, nil otherwise.
func (t *Template) InternedFor(o *ontology.Ontology) *InternedTemplate {
	if itn := t.itn; itn != nil && itn.onto == o {
		return itn
	}
	return nil
}

func internClasses(o *ontology.Ontology, cs []ontology.Class) []ontology.ClassID {
	if len(cs) == 0 {
		return nil
	}
	out := make([]ontology.ClassID, len(cs))
	for i, c := range cs {
		out[i] = o.ClassID(c)
	}
	return out
}
