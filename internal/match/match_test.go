package match

import (
	"testing"

	"semdisco/internal/ontology"
	"semdisco/internal/profile"
)

const ns = "http://semdisco.example/onto#"

func c(name string) ontology.Class { return ontology.Class(ns + name) }

func testOntology(t testing.TB) *ontology.Ontology {
	t.Helper()
	o := ontology.New(ns)
	axioms := [][2]string{
		{"Sensor", "Device"},
		{"Radar", "Sensor"},
		{"CoastalRadar", "Radar"},
		{"Camera", "Sensor"},
		{"Track", "Observation"},
		{"RadarTrack", "Track"},
		{"Image", "Observation"},
		{"AreaOfInterest", "Region"},
		{"CoastalArea", "AreaOfInterest"},
	}
	for _, a := range axioms {
		if err := o.AddClass(c(a[0]), c(a[1])); err != nil {
			t.Fatal(err)
		}
	}
	o.Freeze()
	return o
}

func radarService() *profile.Profile {
	return &profile.Profile{
		ServiceIRI: "urn:svc:radar",
		Category:   c("Radar"),
		Inputs:     []ontology.Class{c("AreaOfInterest")},
		Outputs:    []ontology.Class{c("RadarTrack")},
		QoS:        map[string]float64{"accuracy": 0.9},
		Grounding:  "urn:g",
	}
}

func TestCategoryDegrees(t *testing.T) {
	m := New(testOntology(t))
	svc := radarService()
	cases := []struct {
		requested string
		want      Degree
	}{
		{"Radar", Exact},
		{"Sensor", PlugIn},         // a Radar is a kind of Sensor
		{"Device", PlugIn},         // transitively
		{"CoastalRadar", Subsumed}, // service is more general than asked
		{"Camera", Fail},
	}
	for _, cs := range cases {
		r := m.Match(&profile.Template{Category: c(cs.requested)}, svc)
		if r.Degree != cs.want {
			t.Errorf("category %s: degree = %v, want %v", cs.requested, r.Degree, cs.want)
		}
	}
}

func TestOutputMatching(t *testing.T) {
	m := New(testOntology(t))
	svc := radarService()
	// Requesting Track: service outputs RadarTrack ⊑ Track → PlugIn.
	r := m.Match(&profile.Template{RequiredOutputs: []ontology.Class{c("Track")}}, svc)
	if r.Degree != PlugIn {
		t.Fatalf("Track request = %v, want plugin", r.Degree)
	}
	// Requesting RadarTrack exactly.
	r = m.Match(&profile.Template{RequiredOutputs: []ontology.Class{c("RadarTrack")}}, svc)
	if r.Degree != Exact {
		t.Fatalf("RadarTrack request = %v, want exact", r.Degree)
	}
	// Requesting Image: no service output relates → Fail.
	r = m.Match(&profile.Template{RequiredOutputs: []ontology.Class{c("Image")}}, svc)
	if r.Degree != Fail {
		t.Fatalf("Image request = %v, want fail", r.Degree)
	}
	// Two required outputs where one fails → overall Fail.
	r = m.Match(&profile.Template{RequiredOutputs: []ontology.Class{c("Track"), c("Image")}}, svc)
	if r.Degree != Fail {
		t.Fatalf("partial outputs = %v, want fail", r.Degree)
	}
}

func TestBestOutputChosen(t *testing.T) {
	m := New(testOntology(t))
	svc := radarService()
	svc.Outputs = []ontology.Class{c("Observation"), c("Track")}
	// Requesting Track: Track itself (Exact) must win over Observation
	// (Subsumed).
	r := m.Match(&profile.Template{RequiredOutputs: []ontology.Class{c("Track")}}, svc)
	if r.Degree != Exact {
		t.Fatalf("degree = %v, want exact (best advertised output)", r.Degree)
	}
}

func TestInputMatching(t *testing.T) {
	m := New(testOntology(t))
	svc := radarService() // needs AreaOfInterest
	// Client provides CoastalArea ⊑ AreaOfInterest → PlugIn.
	r := m.Match(&profile.Template{ProvidedInputs: []ontology.Class{c("CoastalArea")}}, svc)
	if r.Degree != PlugIn {
		t.Fatalf("specialized input = %v, want plugin", r.Degree)
	}
	// Client provides exactly AreaOfInterest → Exact.
	r = m.Match(&profile.Template{ProvidedInputs: []ontology.Class{c("AreaOfInterest")}}, svc)
	if r.Degree != Exact {
		t.Fatalf("exact input = %v, want exact", r.Degree)
	}
	// Client provides only Region (too general) → Subsumed.
	r = m.Match(&profile.Template{ProvidedInputs: []ontology.Class{c("Region")}}, svc)
	if r.Degree != Subsumed {
		t.Fatalf("general input = %v, want subsumed", r.Degree)
	}
	// Client provides an unrelated concept → Fail.
	r = m.Match(&profile.Template{ProvidedInputs: []ontology.Class{c("Image")}}, svc)
	if r.Degree != Fail {
		t.Fatalf("unrelated input = %v, want fail", r.Degree)
	}
	// Template that says nothing about inputs is unconstrained.
	r = m.Match(&profile.Template{Category: c("Radar")}, svc)
	if r.Degree != Exact {
		t.Fatalf("input-free template = %v, want exact", r.Degree)
	}
}

func TestOverallIsWeakestAspect(t *testing.T) {
	m := New(testOntology(t))
	svc := radarService()
	// Category exact but outputs only plugin → overall plugin.
	r := m.Match(&profile.Template{
		Category:        c("Radar"),
		RequiredOutputs: []ontology.Class{c("Track")},
	}, svc)
	if r.Degree != PlugIn {
		t.Fatalf("overall = %v, want plugin (weakest aspect)", r.Degree)
	}
}

func TestQoSThresholds(t *testing.T) {
	m := New(testOntology(t))
	svc := radarService() // accuracy 0.9
	r := m.Match(&profile.Template{MinQoS: map[string]float64{"accuracy": 0.8}}, svc)
	if r.Degree == Fail {
		t.Fatal("satisfied QoS threshold failed the match")
	}
	r = m.Match(&profile.Template{MinQoS: map[string]float64{"accuracy": 0.95}}, svc)
	if r.Degree != Fail {
		t.Fatal("unsatisfied QoS threshold did not fail")
	}
	r = m.Match(&profile.Template{MinQoS: map[string]float64{"updateHz": 1}}, svc)
	if r.Degree != Fail {
		t.Fatal("missing QoS attribute did not fail")
	}
}

func TestCoverage(t *testing.T) {
	m := New(testOntology(t))
	svc := radarService()
	svc.Coverage = &profile.Circle{LatDeg: 60, LonDeg: 10, RadiusKm: 50}
	inside := &profile.Point{LatDeg: 60.1, LonDeg: 10.1}
	outside := &profile.Point{LatDeg: 63, LonDeg: 10}
	if r := m.Match(&profile.Template{Near: inside}, svc); r.Degree == Fail {
		t.Fatal("in-coverage request failed")
	}
	if r := m.Match(&profile.Template{Near: outside}, svc); r.Degree != Fail {
		t.Fatal("out-of-coverage request matched")
	}
	svc.Coverage = nil
	if r := m.Match(&profile.Template{Near: outside}, svc); r.Degree == Fail {
		t.Fatal("coverage-free service failed a located request")
	}
}

func TestScoreOrdersSpecificity(t *testing.T) {
	m := New(testOntology(t))
	tpl := &profile.Template{Category: c("Sensor")}
	radar := radarService() // Radar: depth(Sensor)=2, depth(Radar)=3
	coastal := radarService()
	coastal.ServiceIRI = "urn:svc:coastal"
	coastal.Category = c("CoastalRadar") // deeper → less similar to Sensor
	rRadar := m.Match(tpl, radar)
	rCoastal := m.Match(tpl, coastal)
	if rRadar.Degree != PlugIn || rCoastal.Degree != PlugIn {
		t.Fatalf("degrees = %v, %v; want plugin, plugin", rRadar.Degree, rCoastal.Degree)
	}
	if rRadar.Score <= rCoastal.Score {
		t.Fatalf("closer concept must score higher: %v vs %v", rRadar.Score, rCoastal.Score)
	}
}

func TestRankDeterministicTotalOrder(t *testing.T) {
	m := New(testOntology(t))
	tpl := &profile.Template{Category: c("Sensor")}
	mk := func(iri, cat string) Ranked {
		p := radarService()
		p.ServiceIRI = iri
		p.Category = c(cat)
		return Ranked{Profile: p, Result: m.Match(tpl, p)}
	}
	rs := []Ranked{
		mk("urn:b", "Radar"),
		mk("urn:a", "Radar"),  // equal degree+score as urn:b → IRI tiebreak
		mk("urn:c", "Sensor"), // exact → first
		mk("urn:d", "CoastalRadar"),
	}
	Rank(rs)
	gotOrder := []string{}
	for _, r := range rs {
		gotOrder = append(gotOrder, r.Profile.ServiceIRI)
	}
	want := []string{"urn:c", "urn:a", "urn:b", "urn:d"}
	for i := range want {
		if gotOrder[i] != want[i] {
			t.Fatalf("rank order = %v, want %v", gotOrder, want)
		}
	}
}

func TestMatchesHelper(t *testing.T) {
	if (Result{Degree: Fail}).Matches(Fail) {
		t.Fatal("Fail result must never match")
	}
	if !(Result{Degree: Subsumed}).Matches(Subsumed) {
		t.Fatal("subsumed should clear a subsumed floor")
	}
	if (Result{Degree: Subsumed}).Matches(PlugIn) {
		t.Fatal("subsumed cleared a plugin floor")
	}
	if !(Result{Degree: Exact}).Matches(PlugIn) {
		t.Fatal("exact should clear a plugin floor")
	}
}

func TestDegreeString(t *testing.T) {
	want := map[Degree]string{Fail: "fail", Subsumed: "subsumed", PlugIn: "plugin", Exact: "exact"}
	for d, s := range want {
		if d.String() != s {
			t.Errorf("Degree(%d).String() = %q, want %q", d, d.String(), s)
		}
	}
	if Degree(9).String() == "" {
		t.Error("unknown degree should still render")
	}
}

func TestNilOntologyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(nil) did not panic")
		}
	}()
	New(nil)
}

func TestConceptDegreeProperties(t *testing.T) {
	// Properties over all class pairs of the test ontology:
	//  1. Exact ⇔ equality
	//  2. PlugIn(requested, advertised) ⇔ Subsumed(advertised, requested)
	//     (the degrees are duals under swapping roles)
	//  3. Fail is symmetric.
	o := testOntology(t)
	m := New(o)
	classes := o.Classes()
	for _, req := range classes {
		for _, adv := range classes {
			d := m.conceptDegree(req, adv)
			dual := m.conceptDegree(adv, req)
			switch d {
			case Exact:
				if req != adv {
					t.Fatalf("Exact for %s vs %s", req, adv)
				}
				if dual != Exact {
					t.Fatalf("Exact not symmetric for %s/%s", req, adv)
				}
			case PlugIn:
				if dual != Subsumed {
					t.Fatalf("PlugIn(%s,%s) dual = %v, want Subsumed", req, adv, dual)
				}
			case Subsumed:
				if dual != PlugIn {
					t.Fatalf("Subsumed(%s,%s) dual = %v, want PlugIn", req, adv, dual)
				}
			case Fail:
				if dual != Fail {
					t.Fatalf("Fail not symmetric for %s/%s", req, adv)
				}
			}
		}
	}
}

func TestMatchDegreeMonotoneInTemplateStrictness(t *testing.T) {
	// Adding constraints to a template can never improve the degree.
	o := testOntology(t)
	m := New(o)
	svc := radarService()
	base := &profile.Template{Category: c("Sensor")}
	tightened := []*profile.Template{
		{Category: c("Sensor"), RequiredOutputs: []ontology.Class{c("Track")}},
		{Category: c("Sensor"), MinQoS: map[string]float64{"accuracy": 0.8}},
		{Category: c("Sensor"), RequiredOutputs: []ontology.Class{c("Image")}}, // unsatisfiable
		{Category: c("Sensor"), MinQoS: map[string]float64{"accuracy": 0.99}},  // unsatisfiable
	}
	baseDeg := m.Match(base, svc).Degree
	for i, tpl := range tightened {
		if got := m.Match(tpl, svc).Degree; got > baseDeg {
			t.Fatalf("template %d: tightening improved degree %v > %v", i, got, baseDeg)
		}
	}
}

func TestMatchWithIOPopulation(t *testing.T) {
	// The matchmaker's I/O dimension at generated-population scale:
	// requiring an output keeps exactly the services that can serve it.
	o := testOntology(t)
	m := New(o)
	mk := func(iri string, outs ...ontology.Class) *profile.Profile {
		return &profile.Profile{ServiceIRI: iri, Category: c("Radar"), Outputs: outs, Grounding: "e"}
	}
	pop := []*profile.Profile{
		mk("urn:1", c("RadarTrack")),
		mk("urn:2", c("Image")),
		mk("urn:3", c("RadarTrack"), c("Image")),
		mk("urn:4"),
	}
	tpl := &profile.Template{RequiredOutputs: []ontology.Class{c("Track")}}
	var hits []string
	for _, p := range pop {
		if m.Match(tpl, p).Matches(PlugIn) {
			hits = append(hits, p.ServiceIRI)
		}
	}
	if len(hits) != 2 || hits[0] != "urn:1" || hits[1] != "urn:3" {
		t.Fatalf("I/O filtering = %v", hits)
	}
}
