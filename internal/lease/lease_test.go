package lease

import (
	"testing"
	"testing/quick"
	"time"

	"semdisco/internal/uuid"
)

var t0 = time.Unix(0, 0).UTC()

func TestGrantAndExpire(t *testing.T) {
	tab := NewTable(Policy{})
	gen := uuid.NewGenerator(1)
	a, b := gen.New(), gen.New()
	tab.Grant(a, 10*time.Second, t0)
	tab.Grant(b, 20*time.Second, t0)
	if tab.Len() != 2 {
		t.Fatalf("Len = %d", tab.Len())
	}
	if !tab.Alive(a, t0.Add(9*time.Second)) {
		t.Fatal("lease dead before deadline")
	}
	expired := tab.ExpireThrough(t0.Add(10 * time.Second))
	if len(expired) != 1 || expired[0] != a {
		t.Fatalf("expired = %v, want [a]", expired)
	}
	if tab.Alive(a, t0) || !tab.Alive(b, t0.Add(15*time.Second)) {
		t.Fatal("wrong liveness after expiry")
	}
	expired = tab.ExpireThrough(t0.Add(time.Hour))
	if len(expired) != 1 || expired[0] != b {
		t.Fatalf("expired = %v, want [b]", expired)
	}
	if tab.Len() != 0 {
		t.Fatal("table not empty")
	}
}

func TestRenewExtends(t *testing.T) {
	tab := NewTable(Policy{})
	id := uuid.NewGenerator(2).New()
	tab.Grant(id, 10*time.Second, t0)
	granted, ok := tab.Renew(id, 10*time.Second, t0.Add(8*time.Second))
	if !ok || granted != 10*time.Second {
		t.Fatalf("Renew = (%v, %v)", granted, ok)
	}
	if len(tab.ExpireThrough(t0.Add(15*time.Second))) != 0 {
		t.Fatal("renewed lease expired at original deadline")
	}
	if len(tab.ExpireThrough(t0.Add(18*time.Second))) != 1 {
		t.Fatal("renewed lease did not expire at extended deadline")
	}
}

func TestRenewUnknownFails(t *testing.T) {
	tab := NewTable(Policy{})
	if _, ok := tab.Renew(uuid.NewGenerator(3).New(), time.Second, t0); ok {
		t.Fatal("renewed a lease that never existed — provider must republish")
	}
}

func TestRemove(t *testing.T) {
	tab := NewTable(Policy{})
	id := uuid.NewGenerator(4).New()
	tab.Grant(id, time.Minute, t0)
	if !tab.Remove(id) {
		t.Fatal("Remove = false")
	}
	if tab.Remove(id) {
		t.Fatal("double Remove = true")
	}
	if len(tab.ExpireThrough(t0.Add(time.Hour))) != 0 {
		t.Fatal("removed lease still expired")
	}
}

func TestPolicyClamp(t *testing.T) {
	p := Policy{Min: 5 * time.Second, Max: time.Minute, Default: 30 * time.Second}
	cases := []struct {
		req, want time.Duration
	}{
		{0, 30 * time.Second},
		{-time.Second, 30 * time.Second},
		{time.Second, 5 * time.Second},
		{10 * time.Second, 10 * time.Second},
		{time.Hour, time.Minute},
	}
	for _, c := range cases {
		if got := p.Clamp(c.req); got != c.want {
			t.Errorf("Clamp(%v) = %v, want %v", c.req, got, c.want)
		}
	}
	var zero Policy
	if zero.Clamp(0) != 30*time.Second {
		t.Fatal("zero policy default wrong")
	}
}

func TestGrantRefreshesExisting(t *testing.T) {
	tab := NewTable(Policy{})
	id := uuid.NewGenerator(5).New()
	tab.Grant(id, 5*time.Second, t0)
	tab.Grant(id, time.Minute, t0) // republish with longer lease
	if tab.Len() != 1 {
		t.Fatalf("Len = %d after re-grant", tab.Len())
	}
	if len(tab.ExpireThrough(t0.Add(10*time.Second))) != 0 {
		t.Fatal("re-granted lease expired at the old deadline")
	}
}

func TestNextExpiry(t *testing.T) {
	tab := NewTable(Policy{})
	if _, ok := tab.NextExpiry(); ok {
		t.Fatal("empty table has a next expiry")
	}
	gen := uuid.NewGenerator(6)
	tab.Grant(gen.New(), time.Minute, t0)
	tab.Grant(gen.New(), time.Second, t0)
	next, ok := tab.NextExpiry()
	if !ok || !next.Equal(t0.Add(time.Second)) {
		t.Fatalf("NextExpiry = (%v, %v)", next, ok)
	}
}

func TestExpiryOrderProperty(t *testing.T) {
	// Property: for any set of lease durations, ExpireThrough(now)
	// returns exactly the leases whose deadline ≤ now, and every lease
	// is returned exactly once over increasing time.
	f := func(durs []uint16) bool {
		tab := NewTable(Policy{Min: time.Millisecond, Max: time.Hour})
		gen := uuid.NewGenerator(7)
		want := make(map[uuid.UUID]time.Time)
		for _, d := range durs {
			id := gen.New()
			dur := time.Duration(int(d)%3600+1) * time.Millisecond
			granted := tab.Grant(id, dur, t0)
			want[id] = t0.Add(granted)
		}
		seen := make(map[uuid.UUID]bool)
		for step := time.Duration(0); step <= 3700*time.Millisecond; step += 100 * time.Millisecond {
			now := t0.Add(step)
			for _, id := range tab.ExpireThrough(now) {
				if seen[id] {
					return false // duplicate expiry
				}
				seen[id] = true
				if want[id].After(now) {
					return false // expired early
				}
			}
		}
		return len(seen) == len(want) && tab.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHeapMapConsistencyUnderChurn(t *testing.T) {
	// Interleave grants, renews, removals and expirations; the heap and
	// map must never disagree.
	tab := NewTable(Policy{Min: time.Millisecond, Max: time.Hour})
	gen := uuid.NewGenerator(8)
	var ids []uuid.UUID
	now := t0
	for i := 0; i < 2000; i++ {
		switch i % 5 {
		case 0, 1:
			id := gen.New()
			ids = append(ids, id)
			tab.Grant(id, time.Duration(i%50+1)*time.Millisecond, now)
		case 2:
			if len(ids) > 0 {
				tab.Renew(ids[i%len(ids)], 20*time.Millisecond, now)
			}
		case 3:
			if len(ids) > 0 {
				tab.Remove(ids[i%len(ids)])
			}
		case 4:
			now = now.Add(7 * time.Millisecond)
			tab.ExpireThrough(now)
		}
		if next, ok := tab.NextExpiry(); ok && tab.Len() == 0 {
			t.Fatalf("NextExpiry %v with empty table", next)
		}
	}
	// Drain; must terminate and empty both structures.
	tab.ExpireThrough(now.Add(time.Hour))
	if tab.Len() != 0 {
		t.Fatalf("table not empty after full drain: %d", tab.Len())
	}
}
