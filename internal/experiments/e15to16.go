package experiments

import (
	"fmt"
	"time"

	"semdisco/internal/metrics"
	"semdisco/internal/sim"
	"semdisco/internal/transport/memnet"
	"semdisco/internal/wire"
)

// E15Scale grows the registry network and measures federated query
// latency, traffic and completeness. The paper positions the hybrid
// topology as the one that "may scale to a wide-area network with many
// participants" — this experiment quantifies how the cost of a
// transparent global view grows with federation size.
func E15Scale(sizes []int, seed int64) *metrics.Table {
	t := metrics.NewTable("E15 federation scalability (§3.3)",
		"registries", "services", "recall", "latency", "queryKB", "maintKB/min")
	for _, r := range sizes {
		recall, latency, queryKB, maintKB := runE15(r, seed)
		t.AddRow(r, r*2, recall, fmtDur(latency), metrics.KB(queryKB), metrics.KB(maintKB))
	}
	t.AddNote("chain-seeded federation densified by signaling; one broad query per client, TTL=8")
	return t
}

func runE15(registries int, seed int64) (float64, time.Duration, uint64, uint64) {
	w := sim.NewWorld(sim.Config{Seed: seed})
	var regs []*sim.RegistryHandle
	for i := 0; i < registries; i++ {
		cfg := fastRegistry()
		cfg.Seeds = chainSeeds(regs, 2)
		cfg.MaxPeers = 64
		regs = append(regs, w.AddRegistry(fmt.Sprintf("lan%d", i), fmt.Sprintf("r%d", i), cfg))
	}
	total := registries * 2
	for i := 0; i < total; i++ {
		w.AddService(fmt.Sprintf("lan%d", i%registries), fmt.Sprintf("s%d", i),
			fastService(time.Minute),
			w.SemanticProfile(fmt.Sprintf("urn:svc:%d", i), categoryFor(i)))
	}
	cli := w.AddClient("lan0", "c0", fastClient())
	w.Run(10 * time.Second) // signaling densifies the graph
	w.Net.ResetStats()
	spec := w.SemanticSpec(sim.C("Service"), 8)
	spec.MaxResults = uint16max(total)
	out := cli.Query(spec, time.Minute)
	stats := w.Net.Stats()
	// Maintenance traffic normalized to one minute of steady state.
	w.Net.ResetStats()
	w.Run(time.Minute)
	maint := w.Net.Stats().ByCategory[wire.CatMaintenance].Bytes
	recall := float64(distinctServices(w, out.Adverts)) / float64(total)
	return recall, out.Elapsed, stats.ByCategory[wire.CatQuerying].Bytes, maint
}

func uint16max(n int) int {
	if n > 65535 {
		return 65535
	}
	return n
}

// E16Loss sweeps datagram loss rates and measures discovery behaviour —
// the paper's wireless-battlefield motivation ("nodes in dynamic
// environments may have wireless connections with low network
// capacity"). The protocol's retries (publish/renew ack timeouts,
// client failover, hop-bounded aggregation deadlines) must absorb loss
// gracefully rather than fail outright.
func E16Loss(rates []float64, seed int64) *metrics.Table {
	t := metrics.NewTable("E16 discovery under datagram loss (wireless motivation)",
		"loss", "querySuccess", "recallMean", "latencyMean")
	const trials = 10
	for _, rate := range rates {
		success, recallSum := 0, 0.0
		var latSum time.Duration
		for trial := 0; trial < trials; trial++ {
			w := sim.NewWorld(sim.Config{
				Seed: seed + int64(trial),
				Net:  memnet.Config{Loss: rate, Jitter: 2 * time.Millisecond},
			})
			r0 := w.AddRegistry("lan0", "r0", fastRegistry())
			cfg := fastRegistry()
			cfg.Seeds = []wire.PeerInfo{r0.PeerInfo()}
			w.AddRegistry("lan1", "r1", cfg)
			const services = 6
			for i := 0; i < services; i++ {
				w.AddService(fmt.Sprintf("lan%d", i%2), fmt.Sprintf("s%d", i),
					fastService(5*time.Second),
					w.SemanticProfile(fmt.Sprintf("urn:svc:%d", i), categoryFor(i)))
			}
			cli := w.AddClient("lan0", "c0", fastClient())
			w.Run(8 * time.Second)
			spec := w.SemanticSpec(sim.C("Service"), 3)
			spec.MaxResults = 50
			out := cli.Query(spec, 30*time.Second)
			if out.Completed && len(out.Adverts) > 0 {
				success++
				recallSum += float64(distinctServices(w, out.Adverts)) / services
				latSum += out.Elapsed
			}
		}
		lat := time.Duration(0)
		if success > 0 {
			lat = latSum / time.Duration(success)
		}
		t.AddRow(fmt.Sprintf("%.0f%%", rate*100), float64(success)/trials, recallSum/trials, fmtDur(lat))
	}
	t.AddNote("2 LANs, 6 services, %d trials per rate; lease renewals and client retries absorb the loss", trials)
	return t
}
