package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"semdisco/internal/metrics"
	"semdisco/internal/registry"
	"semdisco/internal/uuid"
)

// E20Durability measures the cost of crash-safety at the store level:
// the publish overhead of the write-ahead log versus the memory-only
// store, and boot recovery time — replaying the raw log versus loading
// a compacted snapshot — swept over resident advert counts.
//
// The WAL column runs with the durability barrier in flush-to-OS mode
// (data survives a process kill, not a machine crash): that is the
// apples-to-apples per-record cost. Real fsync barriers amortize over
// concurrent publishers through group commit, which a single-threaded
// sweep cannot show — BenchmarkWALPublish/fsync-parallel in
// bench_test.go measures that regime.
func E20Durability(advertCounts []int, seed int64) *metrics.Table {
	t := metrics.NewTable("E20 crash-safe registry persistence (WAL + snapshots)",
		"adverts", "pub mem µs", "pub wal µs", "overhead", "log MB", "replay ms", "snap MB", "snap load ms")
	for _, n := range advertCounts {
		gen := uuid.NewGenerator(uint64(seed))
		advs := e19Adverts(n, gen)
		t0 := time.Unix(0, 0)

		// Baseline: the memory store, nothing durable.
		memUS := func() float64 {
			s := e19Store(false)
			start := time.Now()
			for i := range advs {
				if _, _, err := s.Publish(advs[i], t0); err != nil {
					panic(err)
				}
			}
			return float64(time.Since(start).Microseconds()) / float64(n)
		}()

		dir, err := os.MkdirTemp("", "e20-wal-*")
		if err != nil {
			panic(err)
		}
		defer os.RemoveAll(dir)
		cfg := registry.WALConfig{
			Dir:           dir,
			SnapshotEvery: -1, // compaction timing is measured separately below
			NewStore:      func() *registry.Store { return e19Store(false) },
			Now:           func() time.Time { return t0 },
		}

		// The same population through the WAL-backed store.
		st, w, _, err := registry.Recover(cfg)
		if err != nil {
			panic(err)
		}
		start := time.Now()
		for i := range advs {
			if _, _, err := st.Publish(advs[i], t0); err != nil {
				panic(err)
			}
		}
		walUS := float64(time.Since(start).Microseconds()) / float64(n)
		// Steady state is renewal-dominated: every live service renews
		// every lease period, so the log outgrows the live set. Two
		// renewal rounds give the snapshot real history to collapse.
		for round := 0; round < 2; round++ {
			for i := range advs {
				if _, ok := st.Renew(advs[i].ID, t0); !ok {
					panic("e20: renew lost an advert")
				}
			}
		}
		if err := w.Close(); err != nil {
			panic(err)
		}
		logMB := e20DirMB(dir, "wal-*.log")

		// Cold boot 1: replay the raw log.
		start = time.Now()
		st2, w2, stats, err := registry.Recover(cfg)
		if err != nil {
			panic(err)
		}
		replayMS := float64(time.Since(start).Microseconds()) / 1000
		if st2.Len() != n || stats.Replayed == 0 {
			panic(fmt.Sprintf("e20: log replay recovered %d/%d adverts (%d records)", st2.Len(), n, stats.Replayed))
		}
		// Compact, then cold boot 2: load the snapshot instead.
		if err := w2.Snapshot(); err != nil {
			panic(err)
		}
		if err := w2.Close(); err != nil {
			panic(err)
		}
		snapMB := e20DirMB(dir, "snap-*.snap")
		start = time.Now()
		st3, w3, stats, err := registry.Recover(cfg)
		if err != nil {
			panic(err)
		}
		snapMS := float64(time.Since(start).Microseconds()) / 1000
		if st3.Len() != n || stats.SnapshotAdverts != n {
			panic(fmt.Sprintf("e20: snapshot load recovered %d/%d adverts (%d in snapshot)", st3.Len(), n, stats.SnapshotAdverts))
		}
		if err := w3.Close(); err != nil {
			panic(err)
		}

		t.AddRow(n, memUS, walUS, metrics.Ratio(walUS, memUS), logMB, replayMS, snapMB, snapMS)
	}
	t.AddNote("URI model, %d service types; WAL barriers flush to the OS (no fsync) so the overhead "+
		"column is per-record cost, not disk latency; the log carries two renewal rounds on top of the "+
		"publishes (steady state is renewal-dominated), which the compacted snapshot collapses — replay "+
		"reconstructs leases, indexes and interned tokens from the log, snap load from the snapshot", e19Types)
	return t
}

// e20DirMB sums the sizes of the files matching pattern under dir, in MB.
func e20DirMB(dir, pattern string) float64 {
	paths, err := filepath.Glob(filepath.Join(dir, pattern))
	if err != nil {
		panic(err)
	}
	var total int64
	for _, p := range paths {
		if info, err := os.Stat(p); err == nil {
			total += info.Size()
		}
	}
	return float64(total) / (1 << 20)
}
