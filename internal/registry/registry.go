// Package registry implements the autonomous "thick" registry node of
// the conceptual architecture (§4.1): it stores complete advertisements
// (not just pointers), evaluates queries itself with pluggable
// description models, purges advertisements whose leases expire,
// exercises query response control (max-k / best-only, §3.1), notifies
// subscribers about newly published matches, and doubles as the
// artifact repository for ontologies and schemas so discovery works
// disconnected from the Internet (§4.6).
//
// The store is pure state with explicit time parameters — no goroutines
// and no I/O — so the same code runs deterministically under the
// experiment simulator and behind the real UDP runtime (which wraps it
// in a lock).
package registry

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"semdisco/internal/describe"
	"semdisco/internal/lease"
	"semdisco/internal/uuid"
	"semdisco/internal/wire"
)

// Store is the registry state: advertisements with leases, the model
// registry for query evaluation, subscriptions, and artifacts.
type Store struct {
	models *describe.Registry
	leases *lease.Table

	adverts map[uuid.UUID]*stored
	byKind  map[describe.Kind]map[uuid.UUID]*stored
	// byService maps a description's service key to the advert that
	// currently describes it, so republished services do not pile up as
	// duplicates under fresh advertisement IDs.
	byService map[string]uuid.UUID
	// byToken indexes adverts by their summary tokens per kind, so
	// prunable queries (the ones whose model exposes QueryTokens)
	// evaluate only candidate buckets instead of scanning every advert
	// of the kind — the same soundness argument as federation summary
	// pruning, applied inside one registry.
	byToken map[describe.Kind]map[string]map[uuid.UUID]*stored
	// noToken holds adverts whose descriptions produced no summary
	// tokens; they must be considered by every query conservatively.
	noToken map[describe.Kind]map[uuid.UUID]*stored

	artifacts map[string][]byte

	subs    map[uuid.UUID]*subscription
	subsArr []*subscription // deterministic iteration order

	// DefaultMaxResults caps result sets when the query does not; the
	// response-implosion guard of §3.1.
	DefaultMaxResults int
}

type stored struct {
	advert wire.Advertisement
	desc   describe.Description
	tokens []string
}

type subscription struct {
	id     uuid.UUID
	kind   describe.Kind
	query  describe.Query
	notify string // opaque subscriber address, returned in events
	// expires leases the subscription (§4.8 applies to standing queries
	// too: crashed subscribers must stop consuming notifications).
	// The zero time means no expiry (local in-process subscriptions).
	expires time.Time
}

func (sub *subscription) alive(now time.Time) bool {
	return sub.expires.IsZero() || !sub.expires.Before(now)
}

// Options configures a store.
type Options struct {
	// Models is the description-model registry; required.
	Models *describe.Registry
	// Leases is the lease policy for granted advertisements.
	Leases lease.Policy
	// DefaultMaxResults caps result sets when queries don't; zero
	// means 25.
	DefaultMaxResults int
}

// New returns an empty registry store.
func New(opts Options) *Store {
	if opts.Models == nil {
		panic("registry: nil model registry")
	}
	if opts.DefaultMaxResults == 0 {
		opts.DefaultMaxResults = 25
	}
	return &Store{
		models:            opts.Models,
		leases:            lease.NewTable(opts.Leases),
		adverts:           make(map[uuid.UUID]*stored),
		byKind:            make(map[describe.Kind]map[uuid.UUID]*stored),
		byService:         make(map[string]uuid.UUID),
		byToken:           make(map[describe.Kind]map[string]map[uuid.UUID]*stored),
		noToken:           make(map[describe.Kind]map[uuid.UUID]*stored),
		artifacts:         make(map[string][]byte),
		subs:              make(map[uuid.UUID]*subscription),
		DefaultMaxResults: opts.DefaultMaxResults,
	}
}

// Len returns the number of stored advertisements.
func (s *Store) Len() int { return len(s.adverts) }

// Models exposes the model registry (federation needs it for summary
// pruning decisions).
func (s *Store) Models() *describe.Registry { return s.models }

// Errors returned by Publish.
var (
	// ErrUnknownKind means this registry has no model for the payload
	// kind; per the paper the node "silently discards" such payloads,
	// which callers implement by mapping this error to a skip.
	ErrUnknownKind = errors.New("registry: unknown description kind")
	// ErrStaleVersion rejects a publish older than the stored version.
	ErrStaleVersion = errors.New("registry: stale advertisement version")
	// ErrBadPayload wraps description decode failures.
	ErrBadPayload = errors.New("registry: bad description payload")
)

// Notification reports a subscription hit caused by a publish.
type Notification struct {
	SubID      uuid.UUID
	NotifyAddr string
	Advert     wire.Advertisement
}

// Publish stores (or updates) an advertisement and grants its lease.
// It returns the granted lease duration and any notifications due.
//
// Update semantics follow §4.10: the advertisement ID is the handle;
// a publish with a known ID and version ≥ stored version replaces the
// content and refreshes the lease; a lower version is rejected as
// stale (it may arrive late through a slower forwarding path).
func (s *Store) Publish(adv wire.Advertisement, now time.Time) (time.Duration, []Notification, error) {
	model, ok := s.models.Model(adv.Kind)
	if !ok {
		return 0, nil, fmt.Errorf("%w: %v", ErrUnknownKind, adv.Kind)
	}
	desc, err := model.DecodeDescription(adv.Payload)
	if err != nil {
		return 0, nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
	}
	if adv.ID.IsNil() {
		return 0, nil, errors.New("registry: advertisement has nil ID")
	}
	if old, exists := s.adverts[adv.ID]; exists && adv.Version < old.advert.Version {
		return 0, nil, fmt.Errorf("%w: have v%d, got v%d", ErrStaleVersion, old.advert.Version, adv.Version)
	}
	// A service republishing under a new advertisement ID (e.g. after
	// its registry crashed) supersedes its previous advert.
	key := desc.ServiceKey()
	if key != "" {
		if oldID, ok := s.byService[key]; ok && oldID != adv.ID {
			if old, exists := s.adverts[oldID]; exists && adv.Version >= old.advert.Version {
				s.remove(oldID)
			}
		}
	}

	// An update may change the description's tokens: unindex first.
	if _, exists := s.adverts[adv.ID]; exists {
		s.remove(adv.ID)
	}
	st := &stored{advert: adv, desc: desc, tokens: model.SummaryTokens(desc)}
	s.adverts[adv.ID] = st
	km := s.byKind[adv.Kind]
	if km == nil {
		km = make(map[uuid.UUID]*stored)
		s.byKind[adv.Kind] = km
	}
	km[adv.ID] = st
	if key != "" {
		s.byService[key] = adv.ID
	}
	if len(st.tokens) == 0 {
		nt := s.noToken[adv.Kind]
		if nt == nil {
			nt = make(map[uuid.UUID]*stored)
			s.noToken[adv.Kind] = nt
		}
		nt[adv.ID] = st
	} else {
		tm := s.byToken[adv.Kind]
		if tm == nil {
			tm = make(map[string]map[uuid.UUID]*stored)
			s.byToken[adv.Kind] = tm
		}
		for _, tok := range st.tokens {
			bucket := tm[tok]
			if bucket == nil {
				bucket = make(map[uuid.UUID]*stored)
				tm[tok] = bucket
			}
			bucket[adv.ID] = st
		}
	}
	granted := s.leases.Grant(adv.ID, time.Duration(adv.LeaseMillis)*time.Millisecond, now)

	// Subscription notifications (expired standing queries are skipped;
	// PruneSubscriptions removes them for good).
	var notes []Notification
	for _, sub := range s.subsArr {
		if sub.kind != adv.Kind || !sub.alive(now) {
			continue
		}
		if ev := model.Evaluate(sub.query, desc); ev.Matched {
			notes = append(notes, Notification{SubID: sub.id, NotifyAddr: sub.notify, Advert: adv})
		}
	}
	return granted, notes, nil
}

// Renew refreshes an advertisement lease; ok=false means the registry
// no longer holds the advertisement and the provider must republish.
func (s *Store) Renew(id uuid.UUID, now time.Time) (time.Duration, bool) {
	st, ok := s.adverts[id]
	if !ok {
		return 0, false
	}
	return s.leases.Renew(id, time.Duration(st.advert.LeaseMillis)*time.Millisecond, now)
}

// Remove withdraws an advertisement explicitly.
func (s *Store) Remove(id uuid.UUID) bool {
	if _, ok := s.adverts[id]; !ok {
		return false
	}
	s.remove(id)
	s.leases.Remove(id)
	return true
}

func (s *Store) remove(id uuid.UUID) {
	st, ok := s.adverts[id]
	if !ok {
		return
	}
	delete(s.adverts, id)
	delete(s.byKind[st.advert.Kind], id)
	if key := st.desc.ServiceKey(); key != "" && s.byService[key] == id {
		delete(s.byService, key)
	}
	if len(st.tokens) == 0 {
		delete(s.noToken[st.advert.Kind], id)
	} else if tm := s.byToken[st.advert.Kind]; tm != nil {
		for _, tok := range st.tokens {
			if bucket := tm[tok]; bucket != nil {
				delete(bucket, id)
				if len(bucket) == 0 {
					delete(tm, tok)
				}
			}
		}
	}
}

// ExpireThrough purges every advertisement whose lease deadline is at
// or before now and returns the purged advertisements — "removal of
// obsolete advertisements" (§4.8).
func (s *Store) ExpireThrough(now time.Time) []wire.Advertisement {
	var out []wire.Advertisement
	for _, id := range s.leases.ExpireThrough(now) {
		if st, ok := s.adverts[id]; ok {
			out = append(out, st.advert)
			s.remove(id)
		}
	}
	return out
}

// NextExpiry returns the earliest lease deadline for purge scheduling.
func (s *Store) NextExpiry() (time.Time, bool) { return s.leases.NextExpiry() }

// QueryOptions is the response control the client delegates to the
// registry (§3.1: "limited clients should be allowed to delegate
// service selection to registry nodes").
type QueryOptions struct {
	// MaxResults caps the result count; 0 uses the store default.
	MaxResults int
	// BestOnly returns only the single best-ranked advertisement.
	BestOnly bool
}

// Evaluate runs a query payload against the stored advertisements of
// its kind and returns matching advertisements ranked best-first and
// capped per the options. Unknown kinds return ErrUnknownKind so the
// caller can skip-and-forward (a registry may still forward queries it
// cannot evaluate itself).
func (s *Store) Evaluate(kind describe.Kind, payload []byte, opts QueryOptions, now time.Time) ([]wire.Advertisement, error) {
	model, ok := s.models.Model(kind)
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrUnknownKind, kind)
	}
	q, err := model.DecodeQuery(payload)
	if err != nil {
		return nil, fmt.Errorf("registry: bad query payload: %w", err)
	}
	type hit struct {
		st *stored
		ev describe.Evaluation
	}
	var hits []hit
	consider := func(id uuid.UUID, st *stored) {
		if !s.leases.Alive(id, now) {
			return // expired but not yet purged: never serve stale data
		}
		if ev := model.Evaluate(q, st.desc); ev.Matched {
			hits = append(hits, hit{st: st, ev: ev})
		}
	}
	if tokens, prunable := model.QueryTokens(q); prunable {
		// Indexed path: only adverts sharing a token can match, plus
		// token-less adverts which are always considered conservatively.
		seen := make(map[uuid.UUID]bool)
		tm := s.byToken[kind]
		for _, tok := range tokens {
			for id, st := range tm[tok] {
				if !seen[id] {
					seen[id] = true
					consider(id, st)
				}
			}
		}
		for id, st := range s.noToken[kind] {
			if !seen[id] {
				consider(id, st)
			}
		}
	} else {
		for id, st := range s.byKind[kind] {
			consider(id, st)
		}
	}
	sort.Slice(hits, func(i, j int) bool {
		a, b := hits[i], hits[j]
		if a.ev.Degree != b.ev.Degree {
			return a.ev.Degree > b.ev.Degree
		}
		if a.ev.Score != b.ev.Score {
			return a.ev.Score > b.ev.Score
		}
		if ak, bk := a.st.desc.ServiceKey(), b.st.desc.ServiceKey(); ak != bk {
			return ak < bk
		}
		return uuid.Compare(a.st.advert.ID, b.st.advert.ID) < 0
	})
	limit := opts.MaxResults
	if limit <= 0 {
		limit = s.DefaultMaxResults
	}
	if opts.BestOnly {
		limit = 1
	}
	if len(hits) > limit {
		hits = hits[:limit]
	}
	out := make([]wire.Advertisement, len(hits))
	for i, h := range hits {
		out[i] = h.st.advert
	}
	return out, nil
}

// MergeRank re-ranks advertisements pooled from several registries and
// applies response control once more — the entry registry's aggregation
// step for federated queries. Duplicate advertisement IDs keep the
// highest version; duplicate service keys keep one advert.
func (s *Store) MergeRank(kind describe.Kind, payload []byte, pools [][]wire.Advertisement, opts QueryOptions) ([]wire.Advertisement, error) {
	model, ok := s.models.Model(kind)
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrUnknownKind, kind)
	}
	q, err := model.DecodeQuery(payload)
	if err != nil {
		return nil, err
	}
	byID := make(map[uuid.UUID]wire.Advertisement)
	for _, pool := range pools {
		for _, a := range pool {
			if prev, ok := byID[a.ID]; !ok || a.Version > prev.Version {
				byID[a.ID] = a
			}
		}
	}
	type hit struct {
		adv  wire.Advertisement
		desc describe.Description
		ev   describe.Evaluation
	}
	var hits []hit
	seenService := make(map[string]bool)
	// Deterministic iteration for the dedup-by-service step.
	ids := make([]uuid.UUID, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return uuid.Compare(ids[i], ids[j]) < 0 })
	for _, id := range ids {
		a := byID[id]
		desc, err := model.DecodeDescription(a.Payload)
		if err != nil {
			continue // corrupt result from a remote registry: skip
		}
		if key := desc.ServiceKey(); key != "" {
			if seenService[key] {
				continue
			}
			seenService[key] = true
		}
		ev := model.Evaluate(q, desc)
		if !ev.Matched {
			continue // remote registry had a different opinion: re-check
		}
		hits = append(hits, hit{adv: a, desc: desc, ev: ev})
	}
	sort.Slice(hits, func(i, j int) bool {
		a, b := hits[i], hits[j]
		if a.ev.Degree != b.ev.Degree {
			return a.ev.Degree > b.ev.Degree
		}
		if a.ev.Score != b.ev.Score {
			return a.ev.Score > b.ev.Score
		}
		if ak, bk := a.desc.ServiceKey(), b.desc.ServiceKey(); ak != bk {
			return ak < bk
		}
		return uuid.Compare(a.adv.ID, b.adv.ID) < 0
	})
	limit := opts.MaxResults
	if limit <= 0 {
		limit = s.DefaultMaxResults
	}
	if opts.BestOnly {
		limit = 1
	}
	if len(hits) > limit {
		hits = hits[:limit]
	}
	out := make([]wire.Advertisement, len(hits))
	for i, h := range hits {
		out[i] = h.adv
	}
	return out, nil
}

// Summary aggregates the summary tokens of all live advertisements per
// kind — the digest registries gossip to peers for forwarding pruning.
func (s *Store) Summary() []wire.SummaryEntry {
	var entries []wire.SummaryEntry
	kinds := s.models.Kinds()
	for _, k := range kinds {
		tokens := map[string]bool{}
		for _, st := range s.byKind[k] {
			for _, tok := range st.tokens {
				tokens[tok] = true
			}
		}
		if len(tokens) == 0 {
			continue
		}
		list := make([]string, 0, len(tokens))
		for t := range tokens {
			list = append(list, t)
		}
		sort.Strings(list)
		entries = append(entries, wire.SummaryEntry{Kind: k, Tokens: list})
	}
	return entries
}

// Adverts returns all stored advertisements (deterministic order); the
// federation's push-cooperation and tests use it.
func (s *Store) Adverts() []wire.Advertisement {
	ids := make([]uuid.UUID, 0, len(s.adverts))
	for id := range s.adverts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return uuid.Compare(ids[i], ids[j]) < 0 })
	out := make([]wire.Advertisement, len(ids))
	for i, id := range ids {
		out[i] = s.adverts[id].advert
	}
	return out
}

// Advert returns a stored advertisement by ID.
func (s *Store) Advert(id uuid.UUID) (wire.Advertisement, bool) {
	st, ok := s.adverts[id]
	if !ok {
		return wire.Advertisement{}, false
	}
	return st.advert, true
}

// Has reports whether the advertisement is stored (and not yet purged).
func (s *Store) Has(id uuid.UUID) bool {
	_, ok := s.adverts[id]
	return ok
}

// Subscribe registers a standing query; every future publish whose
// description matches produces a Notification (the paper notes "some
// systems today also allow registration for notifications about service
// advertisements of interest"). The zero expires time means no expiry
// (in-process subscriptions); wire subscriptions pass a lease deadline
// and renew by re-subscribing under the same ID.
func (s *Store) Subscribe(kind describe.Kind, payload []byte, notifyAddr string, id uuid.UUID, expires time.Time) (uuid.UUID, error) {
	model, ok := s.models.Model(kind)
	if !ok {
		return uuid.Nil, fmt.Errorf("%w: %v", ErrUnknownKind, kind)
	}
	q, err := model.DecodeQuery(payload)
	if err != nil {
		return uuid.Nil, err
	}
	if existing, ok := s.subs[id]; ok {
		// Renewal: refresh query, address and lease in place.
		existing.kind = kind
		existing.query = q
		existing.notify = notifyAddr
		existing.expires = expires
		return id, nil
	}
	sub := &subscription{id: id, kind: kind, query: q, notify: notifyAddr, expires: expires}
	s.subs[id] = sub
	s.subsArr = append(s.subsArr, sub)
	return id, nil
}

// PruneSubscriptions drops standing queries whose lease lapsed and
// returns how many were removed.
func (s *Store) PruneSubscriptions(now time.Time) int {
	removed := 0
	kept := s.subsArr[:0]
	for _, sub := range s.subsArr {
		if sub.alive(now) {
			kept = append(kept, sub)
			continue
		}
		delete(s.subs, sub.id)
		removed++
	}
	s.subsArr = kept
	return removed
}

// NumSubscriptions returns the number of standing queries (including
// expired-but-unpruned ones).
func (s *Store) NumSubscriptions() int { return len(s.subs) }

// Unsubscribe removes a standing query.
func (s *Store) Unsubscribe(id uuid.UUID) bool {
	if _, ok := s.subs[id]; !ok {
		return false
	}
	delete(s.subs, id)
	for i, sub := range s.subsArr {
		if sub.id == id {
			s.subsArr = append(s.subsArr[:i], s.subsArr[i+1:]...)
			break
		}
	}
	return true
}

// PutArtifact stores an ontology/schema document under its IRI (§4.6).
func (s *Store) PutArtifact(iri string, data []byte) {
	cp := make([]byte, len(data))
	copy(cp, data)
	s.artifacts[iri] = cp
}

// Artifact fetches a stored artifact.
func (s *Store) Artifact(iri string) ([]byte, bool) {
	d, ok := s.artifacts[iri]
	return d, ok
}
