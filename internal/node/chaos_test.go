package node_test

import (
	"testing"
	"time"

	"semdisco/internal/discovery"
	"semdisco/internal/node"
	"semdisco/internal/sim"
	"semdisco/internal/transport/memnet"
	"semdisco/internal/uuid"
	"semdisco/internal/wire"
)

// TestRetryBackoffSpacing pins the jittered exponential backoff between
// registry attempts: with two unreachable seeds and QueryTimeout=200ms,
// RetryBackoff=200ms, the query's trajectory is
//
//	attempt1 (200ms) → backoff₁∈[100,200]ms → attempt2 (200ms)
//	→ backoff₂∈[200,400]ms → fallback window (300ms)
//
// so the total elapsed virtual time must land in [1000,1300]ms. The old
// zero-delay behaviour would finish in exactly 700ms.
func TestRetryBackoffSpacing(t *testing.T) {
	gen := uuid.NewGenerator(77)
	ghosts := []wire.PeerInfo{
		{ID: gen.New(), Addr: "lan0/ghost1"},
		{ID: gen.New(), Addr: "lan0/ghost2"},
	}
	run := func() sim.QueryOutcome {
		w := sim.NewWorld(sim.Config{Seed: 21})
		cli := w.AddClient("lan0", "c1", node.ClientConfig{
			QueryTimeout:    200 * time.Millisecond,
			RetryBackoff:    200 * time.Millisecond,
			FallbackWindow:  300 * time.Millisecond,
			RetryBackoffMax: 2 * time.Second,
			Bootstrap: discovery.Config{
				Seeds:         ghosts,
				ProbeInterval: 30 * time.Second,
			},
		})
		w.Run(50 * time.Millisecond)
		return cli.Query(w.SemanticSpec(sim.C("SensorFeed"), 0), 30*time.Second)
	}
	out := run()
	if !out.Completed || out.Via != node.ViaNone {
		t.Fatalf("outcome = %+v, want completed ViaNone", out)
	}
	if out.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (one per ghost seed)", out.Attempts)
	}
	if out.Elapsed < 1000*time.Millisecond || out.Elapsed > 1300*time.Millisecond {
		t.Fatalf("elapsed = %v, want [1s,1.3s] (timeouts + jittered backoffs + window)", out.Elapsed)
	}
	// Backoff jitter comes from a per-node seeded stream: same world seed
	// → bit-identical trajectory.
	if again := run(); again.Elapsed != out.Elapsed {
		t.Fatalf("same seed, different elapsed: %v vs %v", out.Elapsed, again.Elapsed)
	}
}

// TestStopCancelsRetryAndFallback asserts the Stop() guarantee: a
// stopped client never fires the query callback, whether Stop lands
// during the first attempt, during the backoff wait, or during the
// fallback window.
func TestStopCancelsRetryAndFallback(t *testing.T) {
	gen := uuid.NewGenerator(78)
	ghost := wire.PeerInfo{ID: gen.New(), Addr: "lan0/ghost"}
	cfg := node.ClientConfig{
		QueryTimeout:    200 * time.Millisecond,
		RetryBackoff:    time.Second, // backoff wait spans [500,1000]ms
		RetryBackoffMax: time.Second,
		FallbackWindow:  400 * time.Millisecond,
		Bootstrap:       discovery.Config{Seeds: []wire.PeerInfo{ghost}, ProbeInterval: 30 * time.Second},
	}
	for _, tc := range []struct {
		name   string
		stopAt time.Duration
	}{
		{"during-attempt", 50 * time.Millisecond},
		{"during-backoff", 300 * time.Millisecond},
		{"during-fallback", 1300 * time.Millisecond},
	} {
		t.Run(tc.name, func(t *testing.T) {
			w := sim.NewWorld(sim.Config{Seed: 22})
			cli := w.AddClient("lan0", "c1", cfg)
			w.Run(50 * time.Millisecond)
			fired := false
			cli.Cli.Query(w.SemanticSpec(sim.C("SensorFeed"), 0), func(node.QueryResult) { fired = true })
			w.Run(tc.stopAt)
			if fired {
				t.Fatalf("callback fired before Stop at %v — bad test phasing", tc.stopAt)
			}
			cli.Cli.Stop()
			w.Run(30 * time.Second)
			if fired {
				t.Fatal("stopped client invoked the query callback")
			}
		})
	}
}

// TestFallbackRanksBeforeTruncation: decentralized fallback must order
// collected adverts by match quality before BestOnly/MaxResults cut the
// tail. A delay-spike fault on the best match's link makes its answer
// arrive last, so arrival order alone would return the wrong winner.
func TestFallbackRanksBeforeTruncation(t *testing.T) {
	w := sim.NewWorld(sim.Config{Seed: 23})
	w.AddService("lan0", "exact", fastService(), w.SemanticProfile("urn:svc:exact", sim.C("SensorFeed")))
	w.AddService("lan0", "sub", fastService(), w.SemanticProfile("urn:svc:sub", sim.C("RadarFeed")))
	w.AddService("lan0", "deep", fastService(), w.SemanticProfile("urn:svc:deep", sim.C("CoastalRadarFeed")))
	cfg := fastClient()
	cfg.MaxAttempts = 1
	cli := w.AddClient("lan0", "c1", cfg)
	// Hold back the exact match's answers by 100ms — inside the 300ms
	// fallback window but after the two subclass answers.
	w.Net.SetFault(memnet.ScopeLink("lan0/exact", "lan0/c1"),
		memnet.FaultProfile{SpikeProb: 1, SpikeDelay: 100 * time.Millisecond})
	w.Run(time.Second)

	key := func(a wire.Advertisement) string {
		d, err := w.Models().DecodeDescription(a.Kind, a.Payload)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		return d.ServiceKey()
	}
	spec := w.SemanticSpec(sim.C("SensorFeed"), 0)
	spec.BestOnly = true
	out := cli.Query(spec, 5*time.Second)
	if !out.Completed || out.Via != node.ViaFallback || len(out.Adverts) != 1 {
		t.Fatalf("BestOnly fallback outcome = %+v", out)
	}
	if got := key(out.Adverts[0]); got != "urn:svc:exact" {
		t.Fatalf("BestOnly kept %q, want the exact match (truncated by arrival order?)", got)
	}

	spec = w.SemanticSpec(sim.C("SensorFeed"), 0)
	spec.MaxResults = 2
	out = cli.Query(spec, 5*time.Second)
	if !out.Completed || len(out.Adverts) != 2 {
		t.Fatalf("MaxResults fallback outcome = %+v", out)
	}
	if got := key(out.Adverts[0]); got != "urn:svc:exact" {
		t.Fatalf("MaxResults ranked %q first, want the exact match", got)
	}
}

// TestFallbackDedupUnderDuplication: with every datagram duplicated the
// query reaches the service twice and each answer arrives twice, yet the
// result must contain each advert exactly once.
func TestFallbackDedupUnderDuplication(t *testing.T) {
	w := sim.NewWorld(sim.Config{Seed: 24})
	w.Net.SetFault(memnet.ScopeAll, memnet.FaultProfile{DupProb: 1})
	w.AddService("lan0", "s1", fastService(), w.SemanticProfile("urn:svc:radar", sim.C("RadarFeed")))
	cfg := fastClient()
	cfg.MaxAttempts = 1
	cli := w.AddClient("lan0", "c1", cfg)
	w.Run(time.Second)
	out := cli.Query(w.SemanticSpec(sim.C("SensorFeed"), 0), 5*time.Second)
	if !out.Completed || out.Via != node.ViaFallback {
		t.Fatalf("outcome = %+v", out)
	}
	if len(out.Adverts) != 1 {
		t.Fatalf("duplicate storm produced %d adverts, want 1 (dedup by UUID)", len(out.Adverts))
	}
}
