package ontology

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
)

// buildRandom constructs the taxonomy described by edges (random parent
// assignments, including self-loops and subclass cycles) twice: once
// compiled and once held on the map path via DisableCompiledIndex.
func buildRandom(t testing.TB, edges []uint8, n int) (compiled, maps *Ontology) {
	build := func(disable bool) *Ontology {
		o := New(ns)
		if disable {
			if err := o.DisableCompiledIndex(); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < n; i++ {
			o.AddClass(c(fmt.Sprintf("C%d", i)))
		}
		for i, e := range edges {
			child := c(fmt.Sprintf("C%d", i%n))
			parent := c(fmt.Sprintf("C%d", int(e)%n))
			o.AddClass(child, parent)
		}
		o.Freeze()
		return o
	}
	return build(false), build(true)
}

// TestCompiledAgreesWithMaps is the central property test for the
// compiled index: on randomized DAGs — including SCC/cycle inputs,
// since random parent edges routinely close subclass cycles — every
// query answer from the bitset path must equal the map path's, for all
// class pairs plus Thing and an undeclared class.
func TestCompiledAgreesWithMaps(t *testing.T) {
	f := func(edges []uint8) bool {
		const n = 12
		co, mo := buildRandom(t, edges, n)
		if !co.Compiled() || mo.Compiled() {
			t.Fatalf("Compiled() = %v/%v, want true/false", co.Compiled(), mo.Compiled())
		}
		probe := make([]Class, 0, n+2)
		for i := 0; i < n; i++ {
			probe = append(probe, c(fmt.Sprintf("C%d", i)))
		}
		probe = append(probe, Thing, c("Undeclared"))
		for _, a := range probe {
			if got, want := co.Depth(a), mo.Depth(a); got != want {
				t.Fatalf("Depth(%s) = %d, want %d", a, got, want)
			}
			if got, want := co.Ancestors(a), mo.Ancestors(a); !reflect.DeepEqual(got, want) {
				t.Fatalf("Ancestors(%s) = %v, want %v", a, got, want)
			}
			if got, want := co.Descendants(a), mo.Descendants(a); !reflect.DeepEqual(got, want) {
				t.Fatalf("Descendants(%s) = %v, want %v", a, got, want)
			}
			if got, want := co.Related(a), mo.Related(a); !reflect.DeepEqual(got, want) {
				t.Fatalf("Related(%s) = %v, want %v", a, got, want)
			}
			if got, want := co.Label(a), mo.Label(a); got != want {
				t.Fatalf("Label(%s) = %q, want %q", a, got, want)
			}
			for _, b := range probe {
				if got, want := co.Subsumes(a, b), mo.Subsumes(a, b); got != want {
					t.Fatalf("Subsumes(%s, %s) = %v, want %v", a, b, got, want)
				}
				if got, want := co.LCS(a, b), mo.LCS(a, b); got != want {
					t.Fatalf("LCS(%s, %s) = %s, want %s", a, b, got, want)
				}
				if got, want := co.Similarity(a, b), mo.Similarity(a, b); got != want {
					t.Fatalf("Similarity(%s, %s) = %v, want %v", a, b, got, want)
				}
			}
		}
		if !reflect.DeepEqual(co.Classes(), mo.Classes()) {
			t.Fatal("Classes() enumeration differs")
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestClassIDRoundTrip(t *testing.T) {
	o := sensorTaxonomy(t)
	classes := o.Classes()
	if o.NumClassIDs() != len(classes) {
		t.Fatalf("NumClassIDs = %d, want %d", o.NumClassIDs(), len(classes))
	}
	for i, cl := range classes {
		id := o.ClassID(cl)
		if id != ClassID(i) {
			t.Fatalf("ClassID(%s) = %d, want %d (IDs must follow sorted order)", cl, id, i)
		}
		if got := o.ClassByID(id); got != cl {
			t.Fatalf("ClassByID(%d) = %s, want %s", id, got, cl)
		}
	}
	if o.ClassID(c("Nope")) != NoClass {
		t.Fatal("undeclared class got an ID")
	}
	if o.ClassByID(NoClass) != "" || o.ClassByID(ClassID(len(classes))) != "" {
		t.Fatal("out-of-range ID resolved to a class")
	}
	if o.ThingID() != o.ClassID(Thing) {
		t.Fatal("ThingID mismatch")
	}
}

func TestIDQueriesMatchStringQueries(t *testing.T) {
	o := sensorTaxonomy(t)
	classes := o.Classes()
	for _, a := range classes {
		for _, b := range classes {
			ida, idb := o.ClassID(a), o.ClassID(b)
			if got, want := o.SubsumesID(ida, idb), o.Subsumes(a, b); got != want {
				t.Fatalf("SubsumesID(%s, %s) = %v, want %v", a, b, got, want)
			}
			if got, want := o.ClassByID(o.LCSID(ida, idb)), o.LCS(a, b); got != want {
				t.Fatalf("LCSID(%s, %s) = %s, want %s", a, b, got, want)
			}
			if got, want := o.SimilarityID(ida, idb), o.Similarity(a, b); got != want {
				t.Fatalf("SimilarityID(%s, %s) = %v, want %v", a, b, got, want)
			}
			if got, want := o.DepthID(ida), o.Depth(a); got != want {
				t.Fatalf("DepthID(%s) = %d, want %d", a, got, want)
			}
		}
	}
	// Invalid IDs: subsume nothing, LCS to Thing, zero similarity.
	if o.SubsumesID(NoClass, 0) || o.SubsumesID(0, NoClass) {
		t.Fatal("invalid ID subsumption")
	}
	if o.LCSID(NoClass, 0) != o.ThingID() {
		t.Fatal("invalid-ID LCS is not Thing")
	}
	if o.SimilarityID(NoClass, NoClass) != 0 {
		t.Fatal("invalid-ID similarity is not 0")
	}
	if o.DepthID(NoClass) != -1 {
		t.Fatal("invalid-ID depth is not -1")
	}
}

func TestDisableCompiledIndexAfterFreeze(t *testing.T) {
	o := sensorTaxonomy(t)
	if err := o.DisableCompiledIndex(); err != ErrFrozen {
		t.Fatalf("DisableCompiledIndex on frozen ontology = %v, want ErrFrozen", err)
	}
}

// TestCompiledConcurrentReads hammers a frozen compiled ontology from
// many goroutines; run under -race it proves the index is read-only
// after Freeze.
func TestCompiledConcurrentReads(t *testing.T) {
	o := sensorTaxonomy(t)
	classes := o.Classes()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				a := classes[(i+g)%len(classes)]
				b := classes[(i*7+g)%len(classes)]
				o.Subsumes(a, b)
				o.LCS(a, b)
				o.Similarity(a, b)
				o.SubsumesID(o.ClassID(a), o.ClassID(b))
				o.Ancestors(a)
				o.Descendants(b)
				o.Related(a)
			}
		}(g)
	}
	wg.Wait()
}
