#!/usr/bin/env sh
# Runs a benchmark suite with -benchmem and distils the output into a
# JSON file so the perf trajectory is diffable across PRs. The run's
# runtime metric snapshot (plan-cache hit rates, match-cache hit rates,
# scan counts — see OBSERVABILITY.md) is stored under the "obs" key.
#
# Usage: scripts/bench.sh [registry|match|chaos|qcache|scale|wal|wire|fed] [benchtime]
#   registry (default) -> BENCH_registry.json (registry store/evaluate)
#   match              -> BENCH_match.json (matchmaking + subsumption +
#                         wire encode, incl. compiled-vs-maps baselines)
#   chaos              -> BENCH_chaos.json (fault-sweep availability and
#                         latency degradation; see simdisco -chaos)
#   qcache             -> BENCH_qcache.json (query result cache: cached
#                         vs cache-off throughput, deadline-cache probes,
#                         E18 gateway WAN-reduction sim)
#   scale              -> BENCH_scale.json (10^5..10^6-advert stores:
#                         bytes/advert, publish/renew throughput, and
#                         the inverted subscription index vs the linear
#                         notification scan; set SEMDISCO_SCALE_HUGE=1
#                         to extend the sweep to 10^7 adverts)
#   wal                -> BENCH_wal.json (crash-safe persistence: WAL
#                         publish overhead vs memory-only incl. fsync
#                         group commit, and cold-boot recovery from the
#                         log vs a compacted snapshot at 10^4..10^6
#                         adverts; the E20 table)
#   wire               -> BENCH_wire.json (transport throughput pipeline:
#                         zero-alloc decode rates, renews/s through the
#                         datagram coalescer vs unbatched, and the E21
#                         batching + delta-summary tables)
#   fed                -> BENCH_fed.json (hierarchical multi-domain
#                         federation: the E22 directory sweep — 10..500
#                         domains, convergence time/bytes, cross-domain
#                         query latency, churn reconvergence)
set -eu

cd "$(dirname "$0")/.."

MODE="registry"
case "${1:-}" in
registry | match | chaos | qcache | scale | wal | wire | fed)
    MODE="$1"
    shift
    ;;
esac
BENCHTIME="${1:-1s}"

case "$MODE" in
registry)
    OUT="BENCH_registry.json"
    PATTERN='BenchmarkRegistry'
    ;;
match)
    OUT="BENCH_match.json"
    PATTERN='BenchmarkMatcherMatch|BenchmarkSubsumes|BenchmarkSimilarity|BenchmarkMatcherSemantic|BenchmarkOntologySubsumes|BenchmarkOntologySimilarity|BenchmarkWireMarshalQuery|BenchmarkE5Matchmaking|BenchmarkE14MatchCostSemantic'
    ;;
chaos)
    OUT="BENCH_chaos.json"
    PATTERN='BenchmarkE17Chaos|BenchmarkE16Loss|BenchmarkE3Robustness'
    ;;
qcache)
    OUT="BENCH_qcache.json"
    PATTERN='BenchmarkQCache|BenchmarkRegistryNextExpiry|BenchmarkRegistryExpireIdleTick|BenchmarkE18ResultCache'
    ;;
scale)
    OUT="BENCH_scale.json"
    PATTERN='BenchmarkPublishWithSubs|BenchmarkScalePublish|BenchmarkScaleRenew|BenchmarkE19Scale'
    ;;
wal)
    OUT="BENCH_wal.json"
    PATTERN='BenchmarkWALPublish|BenchmarkWALRecover|BenchmarkE20Durability'
    ;;
wire)
    OUT="BENCH_wire.json"
    PATTERN='BenchmarkWireDecode|BenchmarkBatchRenews|BenchmarkE21'
    ;;
fed)
    OUT="BENCH_fed.json"
    PATTERN='BenchmarkE22Federation|BenchmarkE15Scale'
    ;;
esac

RAW="$(mktemp)"
OBS="$(mktemp)"
trap 'rm -f "$RAW" "$OBS"' EXIT

SEMDISCO_OBS_OUT="$OBS" \
    go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" . | tee "$RAW"

# Benchmark lines look like:
#   BenchmarkRegistryEvaluateBroad-8   3680   382880 ns/op   5531 B/op   10 allocs/op
awk '
BEGIN { print "{"; first = 1 }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = ""; allocs = ""; extras = ""
    for (i = 3; i <= NF; i++) {
        if ($(i) == "ns/op") ns = $(i - 1)
        else if ($(i) == "B/op") bytes = $(i - 1)
        else if ($(i) == "allocs/op") allocs = $(i - 1)
        else if ($(i) !~ /^[0-9.eE+-]+$/ && $(i - 1) ~ /^[0-9.eE+-]+$/) {
            # Custom b.ReportMetric units (bytes/advert, notify-speedup,
            # notifications/op, ...) keyed by a JSON-safe slug.
            key = $(i); gsub(/[^A-Za-z0-9]/, "_", key)
            extras = extras sprintf(", \"%s\": %s", key, $(i - 1))
        }
    }
    if (ns == "") next
    if (!first) printf ",\n"
    first = 0
    printf "  \"%s\": {\"ns_op\": %s", name, ns
    if (bytes != "") printf ", \"bytes_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_op\": %s", allocs
    printf "%s}", extras
}
END { printf ",\n  \"obs\": " }
' "$RAW" > "$OUT"

if [ -s "$OBS" ]; then
    # Re-indent the snapshot so it nests under the top-level object.
    sed '2,$s/^/  /' "$OBS" >> "$OUT"
else
    printf 'null' >> "$OUT"
fi
printf '\n}\n' >> "$OUT"

echo "wrote $OUT"
