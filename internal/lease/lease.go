// Package lease implements the aliveness mechanism the paper identifies
// as the missing piece of UDDI-era Web Service discovery (§4.8):
//
//	"the provider of a service obtains a lease when publishing its
//	 service description to the registry. From then on, the provider
//	 must periodically confirm that it is alive. Should a service
//	 crash, it would not be able to renew its lease, and the service
//	 description would be purged from the registry."
//
// The table tracks expiry deadlines with a heap so purging expired
// entries costs O(log n) per expiry regardless of table size. Time is
// always passed in explicitly, keeping the table deterministic under
// the experiment simulator and trivially testable.
//
// Grant, Renew and ExpireThrough tick the lease.* runtime metrics
// (see OBSERVABILITY.md), making churn visible at a live registry.
package lease

import (
	"container/heap"
	"time"

	"semdisco/internal/obs"
	"semdisco/internal/uuid"
)

// Lease-lifecycle observability, aggregated over every table in the
// process (each registry shard owns one). The grant/renew/expire rates
// are the paper's §4.8 aliveness protocol made visible: a healthy
// population renews, a churning one expires. Documented in
// OBSERVABILITY.md.
var (
	mGranted = obs.NewCounter("lease.granted", "count",
		"leases created or refreshed by publish")
	mRenewed = obs.NewCounter("lease.renewed", "count",
		"leases extended by explicit renewal")
	mExpired = obs.NewCounter("lease.expired", "count",
		"leases that lapsed and were swept")
)

// Policy clamps requested lease durations to what a registry accepts.
type Policy struct {
	// Min and Max bound granted durations; zero-valued bounds default
	// to 1 s and 10 min.
	Min, Max time.Duration
	// Default is granted when the request does not specify a duration;
	// zero defaults to 30 s (Jini's default lease granularity class).
	Default time.Duration
}

func (p Policy) withDefaults() Policy {
	if p.Min == 0 {
		p.Min = time.Second
	}
	if p.Max == 0 {
		p.Max = 10 * time.Minute
	}
	if p.Default == 0 {
		p.Default = 30 * time.Second
	}
	return p
}

// Clamp returns the duration the registry actually grants for a
// requested duration (0 means "registry default").
func (p Policy) Clamp(requested time.Duration) time.Duration {
	p = p.withDefaults()
	switch {
	case requested <= 0:
		return p.Default
	case requested < p.Min:
		return p.Min
	case requested > p.Max:
		return p.Max
	default:
		return requested
	}
}

// Table tracks lease expirations for advertisement IDs. The zero value
// is not usable; construct with NewTable. Table is not safe for
// concurrent use.
type Table struct {
	policy  Policy
	entries map[uuid.UUID]*entry
	pq      expiryHeap
}

type entry struct {
	id      uuid.UUID
	expires time.Time
	index   int // heap index, -1 when removed
}

type expiryHeap []*entry

func (h expiryHeap) Len() int           { return len(h) }
func (h expiryHeap) Less(i, j int) bool { return h[i].expires.Before(h[j].expires) }
func (h expiryHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *expiryHeap) Push(x any) {
	e := x.(*entry)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *expiryHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// NewTable returns an empty lease table under the given policy.
func NewTable(policy Policy) *Table {
	return &Table{
		policy:  policy.withDefaults(),
		entries: make(map[uuid.UUID]*entry),
	}
}

// Len returns the number of live leases.
func (t *Table) Len() int { return len(t.entries) }

// Grant creates or refreshes the lease for id, clamping the requested
// duration by policy, and returns the granted duration.
func (t *Table) Grant(id uuid.UUID, requested time.Duration, now time.Time) time.Duration {
	granted := t.policy.Clamp(requested)
	mGranted.Inc()
	if e, ok := t.entries[id]; ok {
		e.expires = now.Add(granted)
		heap.Fix(&t.pq, e.index)
		return granted
	}
	e := &entry{id: id, expires: now.Add(granted)}
	t.entries[id] = e
	heap.Push(&t.pq, e)
	return granted
}

// Renew extends an existing lease by its policy-default duration (the
// wire protocol's renew carries no duration; the registry re-grants
// what it granted at publish time, clamped). It reports whether the
// lease still existed — false tells the provider to republish.
func (t *Table) Renew(id uuid.UUID, requested time.Duration, now time.Time) (time.Duration, bool) {
	e, ok := t.entries[id]
	if !ok {
		return 0, false
	}
	granted := t.policy.Clamp(requested)
	mRenewed.Inc()
	e.expires = now.Add(granted)
	heap.Fix(&t.pq, e.index)
	return granted, true
}

// Remove deletes the lease, reporting whether it existed.
func (t *Table) Remove(id uuid.UUID) bool {
	e, ok := t.entries[id]
	if !ok {
		return false
	}
	delete(t.entries, id)
	heap.Remove(&t.pq, e.index)
	return true
}

// Expires returns the lease deadline, ok=false when no lease exists.
func (t *Table) Expires(id uuid.UUID) (time.Time, bool) {
	e, ok := t.entries[id]
	if !ok {
		return time.Time{}, false
	}
	return e.expires, true
}

// Alive reports whether id holds an unexpired lease at now.
func (t *Table) Alive(id uuid.UUID, now time.Time) bool {
	e, ok := t.entries[id]
	return ok && !e.expires.Before(now)
}

// AliveUntil combines Alive and Expires in one lookup: it returns the
// lease deadline when id holds a lease that has not expired at now.
// The query path uses it to stamp cached results with the earliest
// deadline of the advertisements they contain.
func (t *Table) AliveUntil(id uuid.UUID, now time.Time) (time.Time, bool) {
	e, ok := t.entries[id]
	if !ok || e.expires.Before(now) {
		return time.Time{}, false
	}
	return e.expires, true
}

// ExpireThrough removes every lease whose deadline is at or before now
// and returns their IDs (the advertisements the registry must purge).
func (t *Table) ExpireThrough(now time.Time) []uuid.UUID {
	var out []uuid.UUID
	for t.pq.Len() > 0 && !t.pq[0].expires.After(now) {
		e := heap.Pop(&t.pq).(*entry)
		delete(t.entries, e.id)
		out = append(out, e.id)
	}
	mExpired.Add(uint64(len(out)))
	return out
}

// NextExpiry returns the earliest deadline in the table; ok=false when
// empty. Registries use it to schedule their purge timer precisely
// instead of polling.
func (t *Table) NextExpiry() (time.Time, bool) {
	if t.pq.Len() == 0 {
		return time.Time{}, false
	}
	return t.pq[0].expires, true
}
