package runtime

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestWorkerPoolRunsTasks(t *testing.T) {
	p := NewWorkerPool(4, 16)
	defer p.Close()
	var ran atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		task := func() { ran.Add(1); wg.Done() }
		if !p.TrySubmit(task) {
			task() // queue full: inline fallback, same as real callers
		}
	}
	wg.Wait()
	if got := ran.Load(); got != 100 {
		t.Fatalf("ran %d of 100 tasks", got)
	}
}

func TestWorkerPoolNilAndClosed(t *testing.T) {
	var nilPool *WorkerPool
	if nilPool.TrySubmit(func() {}) {
		t.Fatal("nil pool accepted a task")
	}
	nilPool.Close() // must not panic

	p := NewWorkerPool(1, 1)
	p.Close()
	p.Close() // idempotent
	if p.TrySubmit(func() { t.Error("task ran after close") }) {
		t.Fatal("closed pool accepted a task")
	}
}

func TestWorkerPoolZeroWorkersIsNil(t *testing.T) {
	if p := NewWorkerPool(0, 8); p != nil {
		t.Fatal("zero workers should mean no pool")
	}
}

func TestWorkerPoolBackpressureReportsFalse(t *testing.T) {
	p := NewWorkerPool(1, 1)
	defer p.Close()
	block := make(chan struct{})
	// Occupy the single worker, then fill the queue; the next submit
	// must be refused rather than block.
	if !p.TrySubmit(func() { <-block }) {
		t.Fatal("first submit refused")
	}
	// The queue has capacity 1; keep submitting until it reports full.
	refused := false
	for i := 0; i < 10; i++ {
		if !p.TrySubmit(func() { <-block }) {
			refused = true
			break
		}
	}
	if !refused {
		t.Fatal("pool never reported backpressure")
	}
	close(block)
}
