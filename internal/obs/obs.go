// Package obs is the runtime observability layer: cheap process-wide
// counters, gauges and fixed-bucket histograms that the protocol hot
// paths update with single atomic operations, plus snapshot/diff
// support and a text + JSON exposition format.
//
// obs complements internal/metrics, which renders *end-of-run* result
// tables for the experiment suite: metrics answers "what did the run
// conclude", obs answers "what is the process doing right now". A live
// registryd exposes the obs registry over HTTP (-stats-addr, see
// Handler), sdctl fetches and pretty-prints it (Fetch), and the
// simdisco experiment runner prints per-phase snapshot diffs.
//
// All metrics live in a Registry; the package-level constructors
// (NewCounter, NewGauge, NewHistogram) register into Default, the
// process-wide registry every instrumented package shares. Metric
// construction is idempotent by name, so instrumented packages declare
// their metrics in package-level vars and tests may re-register freely.
// Because the registry is process-wide, simulations that run many
// registries in one process observe the *sum* of all their activity —
// exactly what the per-phase diffs in cmd/simdisco report.
//
// The hot-path cost is one atomic add per event (histograms: two adds
// and a bucket add); names are resolved once at registration, never
// per event. Metric names follow "component.event[.qualifier]" in
// lowercase, e.g. "registry.plancache.hits"; OBSERVABILITY.md
// documents every name, its unit and the component that emits it, and
// `make docs-check` keeps that list in sync with the code.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind discriminates metric types in snapshots and expositions.
type Kind string

// Metric kinds.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Counter is a monotonically increasing event count. The zero value is
// usable but unregistered; obtain registered counters via NewCounter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n events.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an instantaneous level (queue depth, live adverts). Unlike
// counters, gauges move both ways and snapshot diffs report the latest
// value rather than a delta.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the level.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the level by d (negative to decrease).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Load returns the current level.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution. Bucket bounds are inclusive
// upper limits in the metric's unit; observations above the last bound
// land in an implicit overflow bucket. Buckets are cumulative in
// snapshots (like Prometheus), non-cumulative internally.
type Histogram struct {
	bounds []int64
	counts []atomic.Uint64 // len(bounds)+1, last = overflow
	sum    atomic.Int64
	total  atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.total.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// LatencyBucketsUS is the default bound set for latency histograms in
// microseconds: fine resolution around in-memory evaluation costs
// (single-digit µs) up to the second-scale federation hop deadlines.
var LatencyBucketsUS = []int64{
	1, 2, 5, 10, 25, 50, 100, 250, 500,
	1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 1_000_000,
}

// metric is one registered metric with its metadata.
type metric struct {
	name string
	kind Kind
	unit string // "count", "bytes", "us", ...
	help string

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry holds named metrics. Registration is idempotent by name;
// reads (Snapshot) and registrations may run concurrently with hot-path
// updates.
type Registry struct {
	mu      sync.RWMutex
	metrics map[string]*metric
}

// NewRegistry returns an empty metric registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// Default is the process-wide registry all instrumented packages use.
var Default = NewRegistry()

func (r *Registry) register(name string, kind Kind, unit, help string) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, m.kind))
		}
		return m
	}
	m := &metric{name: name, kind: kind, unit: unit, help: help}
	r.metrics[name] = m
	return m
}

// NewCounter registers (or returns the existing) counter under name.
func (r *Registry) NewCounter(name, unit, help string) *Counter {
	m := r.register(name, KindCounter, unit, help)
	if m.counter == nil {
		m.counter = &Counter{}
	}
	return m.counter
}

// NewGauge registers (or returns the existing) gauge under name.
func (r *Registry) NewGauge(name, unit, help string) *Gauge {
	m := r.register(name, KindGauge, unit, help)
	if m.gauge == nil {
		m.gauge = &Gauge{}
	}
	return m.gauge
}

// NewHistogram registers (or returns the existing) histogram under
// name with the given inclusive upper bucket bounds (ascending).
func (r *Registry) NewHistogram(name, unit, help string, bounds []int64) *Histogram {
	m := r.register(name, KindHistogram, unit, help)
	if m.hist == nil {
		cp := make([]int64, len(bounds))
		copy(cp, bounds)
		m.hist = &Histogram{bounds: cp, counts: make([]atomic.Uint64, len(cp)+1)}
	}
	return m.hist
}

// NewCounter registers a counter in the Default registry.
func NewCounter(name, unit, help string) *Counter { return Default.NewCounter(name, unit, help) }

// NewGauge registers a gauge in the Default registry.
func NewGauge(name, unit, help string) *Gauge { return Default.NewGauge(name, unit, help) }

// NewHistogram registers a histogram in the Default registry.
func NewHistogram(name, unit, help string, bounds []int64) *Histogram {
	return Default.NewHistogram(name, unit, help, bounds)
}

// names returns the registered metric names sorted.
func (r *Registry) names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.metrics))
	for n := range r.metrics {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
