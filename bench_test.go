package semdisco

// One benchmark per experiment in DESIGN.md's index (the paper has no
// tables of its own; these regenerate the claim-reproduction tables
// EXPERIMENTS.md records), plus micro-benchmarks for the load-bearing
// substrates. Run:
//
//	go test -bench=. -benchmem
//
// Scenario benchmarks print their result table once (-v to see it) and
// report a headline metric via b.ReportMetric so regressions in the
// *shape* show up in benchmark diffs.

import (
	"fmt"
	"os"
	stdruntime "runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"semdisco/internal/describe"
	"semdisco/internal/experiments"
	"semdisco/internal/lease"
	"semdisco/internal/match"
	"semdisco/internal/metrics"
	"semdisco/internal/ontology"
	"semdisco/internal/profile"
	"semdisco/internal/rdf"
	"semdisco/internal/registry"
	"semdisco/internal/runtime"
	"semdisco/internal/transport"
	"semdisco/internal/transport/memnet"
	"semdisco/internal/uuid"
	"semdisco/internal/wire"
	"semdisco/internal/workload"
)

const benchSeed = 42

func reportTable(b *testing.B, tab *metrics.Table) {
	b.Helper()
	b.Logf("\n%s", tab)
}

func cell(tab *metrics.Table, row, col int) float64 {
	s := tab.Row(row)[col]
	s = strings.TrimSuffix(s, "kB")
	s = strings.TrimSuffix(s, "×")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return -1
	}
	return v
}

// cellDur parses a duration-rendered cell (e.g. "44ms") into
// milliseconds for ReportMetric.
func cellDur(tab *metrics.Table, row, col int) float64 {
	d, err := time.ParseDuration(tab.Row(row)[col])
	if err != nil {
		return -1
	}
	return float64(d) / float64(time.Millisecond)
}

func BenchmarkE1TopologyBandwidth(b *testing.B) {
	var tab *metrics.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.E1TopologyBandwidth([]int{20, 40}, 10, benchSeed)
	}
	reportTable(b, tab)
	// Headline: decentralized / centralized query-bytes ratio at N=40.
	b.ReportMetric(cell(tab, 3, 7)/cell(tab, 4, 7), "dec/cen-query-cost")
}

func BenchmarkE2ResponseControl(b *testing.B) {
	var tab *metrics.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.E2ResponseControl(50, benchSeed)
	}
	reportTable(b, tab)
	b.ReportMetric(cell(tab, 0, 1), "uncontrolled-responses")
	b.ReportMetric(cell(tab, 3, 1), "bestonly-responses")
}

func BenchmarkE3Robustness(b *testing.B) {
	var tab *metrics.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.E3Robustness([]float64{0, 0.5, 1}, benchSeed)
	}
	reportTable(b, tab)
	b.ReportMetric(cell(tab, 4, 2), "distributed-success-at-50pct")
}

func BenchmarkE4Staleness(b *testing.B) {
	var tab *metrics.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.E4Staleness([]time.Duration{2 * time.Second, 10 * time.Second}, benchSeed)
	}
	reportTable(b, tab)
	b.ReportMetric(cell(tab, 0, 2), "uddi-stale-fraction")
	b.ReportMetric(cell(tab, 1, 2), "leased-2s-stale-fraction")
}

func BenchmarkE5Matchmaking(b *testing.B) {
	var tab *metrics.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.E5Matchmaking(4, 3, 200, 60, benchSeed)
	}
	reportTable(b, tab)
	b.ReportMetric(cell(tab, 0, 2), "semantic-recall")
	b.ReportMetric(cell(tab, 2, 2), "uri-recall") // row 1 is the subsumed-floor ablation
}

func BenchmarkE6Bootstrap(b *testing.B) {
	var tab *metrics.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.E6Bootstrap([]time.Duration{time.Second, 5 * time.Second}, benchSeed)
	}
	reportTable(b, tab)
}

func BenchmarkE6Fallback(b *testing.B) {
	var tab *metrics.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.E6Fallback(10, benchSeed)
	}
	reportTable(b, tab)
	b.ReportMetric(cell(tab, 1, 2), "fallback-services-found")
}

func BenchmarkE7Forwarding(b *testing.B) {
	var tab *metrics.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.E7Forwarding(6, benchSeed)
	}
	reportTable(b, tab)
}

func BenchmarkE8PayloadSize(b *testing.B) {
	var tab *metrics.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.E8PayloadSize(200, benchSeed)
	}
	reportTable(b, tab)
	b.ReportMetric(cell(tab, 3, 1)/cell(tab, 0, 1), "rdf/uri-size-ratio")
}

func BenchmarkE9Coherence(b *testing.B) {
	var tab *metrics.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.E9Coherence(4, 3, benchSeed)
	}
	reportTable(b, tab)
	last := tab.NumRows() - 1
	b.ReportMetric(cell(tab, last, 1)/cell(tab, last, 2), "wan-coverage")
}

func BenchmarkE10Gateway(b *testing.B) {
	var tab *metrics.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.E10Gateway(3, benchSeed)
	}
	reportTable(b, tab)
	b.ReportMetric(cell(tab, 0, 1), "wan-queries-uncoordinated")
	b.ReportMetric(cell(tab, 1, 1), "wan-queries-coordinated")
}

func BenchmarkE11Republish(b *testing.B) {
	var tab *metrics.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.E11Republish(benchSeed)
	}
	reportTable(b, tab)
}

func BenchmarkE12PushPull(b *testing.B) {
	var tab *metrics.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.E12PushPull([]int{2, 20}, benchSeed)
	}
	reportTable(b, tab)
}

func BenchmarkE13Artifacts(b *testing.B) {
	var tab *metrics.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.E13Artifacts(benchSeed)
	}
	reportTable(b, tab)
}

// E14 (query evaluation cost) cannot nest testing.Benchmark inside a
// benchmark; its table is produced by `cmd/simdisco -run E14`, and the
// same comparison is exposed here as three plain benchmarks:
// BenchmarkE14MatchCostURI / KV / Semantic.

func BenchmarkE14MatchCostURI(b *testing.B) {
	m := describe.URIModel{}
	d := &describe.URIDescription{TypeURI: "urn:type:radar", ServiceURI: "urn:svc:1"}
	q := &describe.URIQuery{TypeURI: "urn:type:radar"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Evaluate(q, d)
	}
}

func BenchmarkE14MatchCostKV(b *testing.B) {
	m := describe.KVModel{}
	d := &describe.KVDescription{ServiceURI: "urn:svc:1", Name: "Weather feed", TypeURI: "urn:type:weather",
		Attrs: map[string]string{"region": "north"}}
	q := &describe.KVQuery{NamePrefix: "Wea", TypeURI: "urn:type:weather", Attrs: map[string]string{"region": "north"}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Evaluate(q, d)
	}
}

func BenchmarkE14MatchCostSemantic(b *testing.B) {
	onto, levels := benchOntology()
	m := describe.NewSemanticModel(onto)
	pop := workload.GenProfiles(workload.PopulationSpec{N: 64, Classes: levels[4], Seed: benchSeed})
	q := &describe.SemanticQuery{Template: &profile.Template{Category: levels[1][0]}}
	descs := make([]describe.Description, len(pop))
	for i, p := range pop {
		descs[i] = &describe.SemanticDescription{Profile: p}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Evaluate(q, descs[i%len(descs)])
	}
}

// --- substrate micro-benchmarks ---

func benchOntology() (*ontology.Ontology, [][]ontology.Class) {
	return workload.GenOntology(workload.OntologySpec{Depth: 5, Branching: 3})
}

func BenchmarkMatcherSemantic(b *testing.B) {
	onto, levels := benchOntology()
	pop := workload.GenProfiles(workload.PopulationSpec{N: 256, Classes: levels[4], Seed: benchSeed})
	m := match.New(onto)
	tpl := &profile.Template{Category: levels[1][0], MinQoS: map[string]float64{"accuracy": 0.6}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Match(tpl, pop[i%len(pop)])
	}
}

// benchMatchWorkload builds the BENCH_match.json matchmaking fixture: a
// deeper taxonomy than benchOntology and a template exercising every
// match aspect (category, required outputs, provided inputs, QoS).
// mapClosures holds the pre-compile implementation as the baseline;
// intern pre-resolves the concept IDs the way registry decode does.
func benchMatchWorkload(mapClosures, intern bool) (*match.Matcher, *profile.Template, []*profile.Profile) {
	onto, levels := workload.GenOntology(workload.OntologySpec{
		Depth: 6, Branching: 3, MapClosures: mapClosures,
	})
	pop := workload.GenProfiles(workload.PopulationSpec{
		N: 256, Classes: levels[3], DataClasses: levels[5], Seed: benchSeed,
	})
	tpl := &profile.Template{
		Category:        levels[1][0],
		RequiredOutputs: []ontology.Class{levels[4][0], levels[4][9]},
		ProvidedInputs:  []ontology.Class{levels[4][3], levels[3][2]},
		MinQoS:          map[string]float64{"accuracy": 0.5},
	}
	if intern {
		tpl.Intern(onto)
		for _, p := range pop {
			p.Intern(onto)
		}
	}
	return match.New(onto), tpl, pop
}

// BenchmarkMatcherMatch is the tentpole headline: compiled (interned
// IDs + bitsets + memo, the registry evaluate path) and compiled-raw
// (same ontology, concepts resolved per call — the direct-API path)
// against maps (the pre-change implementation).
func BenchmarkMatcherMatch(b *testing.B) {
	variants := []struct {
		name                string
		mapClosures, intern bool
	}{
		{"compiled", false, true},
		{"compiled-raw", false, false},
		{"maps", true, false},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			m, tpl, pop := benchMatchWorkload(v.mapClosures, v.intern)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Match(tpl, pop[i%len(pop)])
			}
		})
	}
}

// BenchmarkSubsumes compares one subsumption test across the three
// forms: pre-resolved interned IDs (one word test), compiled string
// entry points (two map lookups + word test), and the map-based
// closure baseline.
func BenchmarkSubsumes(b *testing.B) {
	spec := workload.OntologySpec{Depth: 6, Branching: 3}
	b.Run("id", func(b *testing.B) {
		onto, levels := workload.GenOntology(spec)
		topID := onto.ClassID(levels[1][0])
		leafIDs := make([]ontology.ClassID, len(levels[5]))
		for i, cl := range levels[5] {
			leafIDs[i] = onto.ClassID(cl)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			onto.SubsumesID(topID, leafIDs[i%len(leafIDs)])
		}
	})
	for _, v := range []struct {
		name        string
		mapClosures bool
	}{
		{"compiled", false},
		{"maps", true},
	} {
		b.Run(v.name, func(b *testing.B) {
			vspec := spec
			vspec.MapClosures = v.mapClosures
			onto, levels := workload.GenOntology(vspec)
			top := levels[1][0]
			leaves := levels[5]
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				onto.Subsumes(top, leaves[i%len(leaves)])
			}
		})
	}
}

// BenchmarkSimilarity compares Wu–Palmer similarity on the compiled
// depth arrays + bitset LCS against the map-based baseline.
func BenchmarkSimilarity(b *testing.B) {
	for _, v := range []struct {
		name        string
		mapClosures bool
	}{
		{"compiled", false},
		{"maps", true},
	} {
		b.Run(v.name, func(b *testing.B) {
			onto, levels := workload.GenOntology(workload.OntologySpec{
				Depth: 6, Branching: 3, MapClosures: v.mapClosures,
			})
			leaves := levels[5]
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				onto.Similarity(leaves[i%len(leaves)], leaves[(i+7)%len(leaves)])
			}
		})
	}
}

func BenchmarkOntologySubsumes(b *testing.B) {
	onto, levels := benchOntology()
	leaves := levels[4]
	top := levels[1][0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		onto.Subsumes(top, leaves[i%len(leaves)])
	}
}

func BenchmarkOntologySimilarity(b *testing.B) {
	onto, levels := benchOntology()
	leaves := levels[4]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		onto.Similarity(leaves[i%len(leaves)], leaves[(i+7)%len(leaves)])
	}
}

func BenchmarkProfileEncode(b *testing.B) {
	_, levels := benchOntology()
	pop := workload.GenProfiles(workload.PopulationSpec{N: 64, Classes: levels[4], Seed: benchSeed})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = pop[i%len(pop)].Encode()
	}
}

func BenchmarkProfileDecode(b *testing.B) {
	_, levels := benchOntology()
	pop := workload.GenProfiles(workload.PopulationSpec{N: 64, Classes: levels[4], Seed: benchSeed})
	encs := make([][]byte, len(pop))
	for i, p := range pop {
		encs[i] = p.Encode()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := profile.Decode(encs[i%len(encs)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireMarshalQuery(b *testing.B) {
	gen := uuid.NewGenerator(benchSeed)
	env := wire.NewEnvelope(gen.New(), "lan0/c", wire.Query{
		QueryID: gen.New(), Kind: describe.KindSemantic,
		Payload: make([]byte, 120), TTL: 4, ReplyAddr: "lan0/c",
	}, gen)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wire.Marshal(env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireUnmarshalQuery(b *testing.B) {
	gen := uuid.NewGenerator(benchSeed)
	env := wire.NewEnvelope(gen.New(), "lan0/c", wire.Query{
		QueryID: gen.New(), Kind: describe.KindSemantic,
		Payload: make([]byte, 120), TTL: 4, ReplyAddr: "lan0/c",
	}, gen)
	data, err := wire.Marshal(env)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wire.Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRDFInference(b *testing.B) {
	onto, _ := benchOntology()
	src := rdf.EncodeNTriples(onto.ToGraph())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := rdf.ParseTurtle(src)
		if err != nil {
			b.Fatal(err)
		}
		rdf.InferRDFS(g)
	}
}

func BenchmarkRDFStoreMatch(b *testing.B) {
	onto, _ := benchOntology()
	g := onto.ToGraph()
	rdf.InferRDFS(g)
	sub := rdf.IRI(rdf.RDFSSubClassOf)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.MatchFunc(rdf.Wildcard, sub, rdf.Wildcard, func(rdf.Triple) bool { return true })
	}
}

func BenchmarkUUIDGenerator(b *testing.B) {
	g := uuid.NewGenerator(benchSeed)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.New()
	}
}

var sinkStr string

func BenchmarkTableRender(b *testing.B) {
	tab := metrics.NewTable("bench", "a", "b", "c")
	for i := 0; i < 50; i++ {
		tab.AddRow(fmt.Sprintf("row-%d", i), i, float64(i)*1.5)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkStr = tab.String()
	}
}

// The registry's token index: a narrow (leaf-category) query touches
// only its candidate buckets while a broad (root) query still has to
// evaluate most of the store. Compare ns/op across the two.
func registryWithPopulation(b *testing.B, n int) (*registry.Store, []ontology.Class, []ontology.Class) {
	return registryWithPopulationQC(b, n, 0)
}

// registryWithPopulationQC lets qcache benchmarks pick the query-cache
// size (0 default-on, negative off).
func registryWithPopulationQC(b *testing.B, n, qcacheSize int) (*registry.Store, []ontology.Class, []ontology.Class) {
	b.Helper()
	onto, levels := workload.GenOntology(workload.OntologySpec{Depth: 5, Branching: 3})
	leaves := levels[4]
	models := describe.NewRegistry(describe.NewSemanticModel(onto))
	s := registry.New(registry.Options{Models: models, Leases: lease.Policy{Max: time.Hour}, QueryCacheSize: qcacheSize})
	pop := workload.GenProfiles(workload.PopulationSpec{N: n, Classes: leaves, Seed: benchSeed})
	gen := uuid.NewGenerator(benchSeed)
	t0 := time.Unix(0, 0)
	for _, p := range pop {
		adv := wire.Advertisement{
			ID: gen.New(), Provider: gen.New(), Kind: describe.KindSemantic,
			Payload: p.Encode(), LeaseMillis: uint64(time.Hour / time.Millisecond), Version: 1,
		}
		if _, _, err := s.Publish(adv, t0); err != nil {
			b.Fatal(err)
		}
	}
	return s, leaves, levels[1]
}

// The Narrow/Broad/Parallel evaluate benchmarks measure *live*
// matchmaking cost (NoCache), so their numbers stay comparable across
// the introduction of the query result cache; BenchmarkQCache* below
// measures the cached path explicitly.

func BenchmarkRegistryEvaluateNarrow(b *testing.B) {
	s, leaves, _ := registryWithPopulation(b, 2000)
	payload := (&describe.SemanticQuery{Template: &profile.Template{Category: leaves[0]}}).Encode()
	t0 := time.Unix(0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Evaluate(describe.KindSemantic, payload, registry.QueryOptions{NoCache: true}, t0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRegistryEvaluateBroad(b *testing.B) {
	s, _, tops := registryWithPopulation(b, 2000)
	payload := (&describe.SemanticQuery{Template: &profile.Template{Category: tops[0]}}).Encode()
	t0 := time.Unix(0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Evaluate(describe.KindSemantic, payload, registry.QueryOptions{NoCache: true}, t0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQCacheRepeatedQuery is the tentpole headline: the same broad
// query issued repeatedly against a stable store, cached vs cache-off.
// The acceptance target is ≥10× throughput for the cached variant.
func BenchmarkQCacheRepeatedQuery(b *testing.B) {
	for _, v := range []struct {
		name   string
		qcache int
	}{
		{"cached", 0},
		{"cache-off", -1},
	} {
		b.Run(v.name, func(b *testing.B) {
			s, _, tops := registryWithPopulationQC(b, 2000, v.qcache)
			payload := (&describe.SemanticQuery{Template: &profile.Template{Category: tops[0]}}).Encode()
			t0 := time.Unix(0, 0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Evaluate(describe.KindSemantic, payload, registry.QueryOptions{}, t0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkQCacheRepeatedQueryParallel is the federation fan-in shape:
// many goroutines issuing the same query concurrently. Cached, they
// share one resident entry (and any concurrent fill through the
// singleflight group) instead of each paying a full scan.
func BenchmarkQCacheRepeatedQueryParallel(b *testing.B) {
	for _, v := range []struct {
		name   string
		qcache int
	}{
		{"cached", 0},
		{"cache-off", -1},
	} {
		b.Run(v.name, func(b *testing.B) {
			s, _, tops := registryWithPopulationQC(b, 2000, v.qcache)
			payload := (&describe.SemanticQuery{Template: &profile.Template{Category: tops[0]}}).Encode()
			t0 := time.Unix(0, 0)
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := s.Evaluate(describe.KindSemantic, payload, registry.QueryOptions{}, t0); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkQCacheChurn interleaves each query with a publish, so every
// lookup finds a freshly invalidated entry — the worst case for the
// cache. The gap to cache-off is the validation + refill overhead.
func BenchmarkQCacheChurn(b *testing.B) {
	for _, v := range []struct {
		name   string
		qcache int
	}{
		{"cached", 0},
		{"cache-off", -1},
	} {
		b.Run(v.name, func(b *testing.B) {
			s, leaves, tops := registryWithPopulationQC(b, 2000, v.qcache)
			payload := (&describe.SemanticQuery{Template: &profile.Template{Category: tops[0]}}).Encode()
			pop := workload.GenProfiles(workload.PopulationSpec{N: 64, Classes: leaves, Seed: benchSeed + 1})
			gen := uuid.NewGenerator(benchSeed + 1)
			t0 := time.Unix(0, 0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				adv := wire.Advertisement{
					ID: gen.New(), Provider: gen.New(), Kind: describe.KindSemantic,
					Payload: pop[i%len(pop)].Encode(), LeaseMillis: uint64(time.Hour / time.Millisecond), Version: 1,
				}
				if _, _, err := s.Publish(adv, t0); err != nil {
					b.Fatal(err)
				}
				if _, err := s.Evaluate(describe.KindSemantic, payload, registry.QueryOptions{}, t0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRegistryNextExpiry measures the purge scheduler's deadline
// probe over a populated store: with the per-shard cached deadlines it
// is one atomic load per shard, no locks.
func BenchmarkRegistryNextExpiry(b *testing.B) {
	s, _, _ := registryWithPopulation(b, 10_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.NextExpiry(); !ok {
			b.Fatal("expected a deadline")
		}
	}
}

// BenchmarkRegistryExpireIdleTick measures a purge sweep that purges
// nothing — the common steady-state tick. Cached deadlines let it skip
// every shard without locking.
func BenchmarkRegistryExpireIdleTick(b *testing.B) {
	s, _, _ := registryWithPopulation(b, 10_000)
	t0 := time.Unix(0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := s.ExpireThrough(t0); len(out) != 0 {
			b.Fatal("unexpected purge")
		}
	}
}

// BenchmarkRegistryEvaluateParallel measures read-path scaling: many
// goroutines issue mixed narrow/broad queries against one store. With
// the lock-striped shards throughput should grow with GOMAXPROCS
// instead of serializing on one store lock.
func BenchmarkRegistryEvaluateParallel(b *testing.B) {
	for _, n := range []int{1000, 10_000} {
		b.Run(fmt.Sprintf("adverts=%d", n), func(b *testing.B) {
			s, leaves, tops := registryWithPopulation(b, n)
			narrow := (&describe.SemanticQuery{Template: &profile.Template{Category: leaves[0]}}).Encode()
			broad := (&describe.SemanticQuery{Template: &profile.Template{Category: tops[0]}}).Encode()
			t0 := time.Unix(0, 0)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					payload := narrow
					if i%4 == 0 {
						payload = broad
					}
					if _, err := s.Evaluate(describe.KindSemantic, payload, registry.QueryOptions{}, t0); err != nil {
						b.Error(err)
						return
					}
					i++
				}
			})
		})
	}
}

func BenchmarkRegistryPublish(b *testing.B) {
	onto, levels := workload.GenOntology(workload.OntologySpec{Depth: 4, Branching: 3})
	models := describe.NewRegistry(describe.NewSemanticModel(onto))
	s := registry.New(registry.Options{Models: models, Leases: lease.Policy{Max: time.Hour}})
	pop := workload.GenProfiles(workload.PopulationSpec{N: 256, Classes: levels[3], Seed: benchSeed})
	gen := uuid.NewGenerator(benchSeed)
	t0 := time.Unix(0, 0)
	payloads := make([][]byte, len(pop))
	for i, p := range pop {
		payloads[i] = p.Encode()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		adv := wire.Advertisement{
			ID: gen.New(), Provider: gen.New(), Kind: describe.KindSemantic,
			Payload: payloads[i%len(payloads)], LeaseMillis: 60_000, Version: 1,
		}
		if _, _, err := s.Publish(adv, t0); err != nil {
			b.Fatal(err)
		}
	}
}

// --- scale suite (scripts/bench.sh scale → BENCH_scale.json) -----------

// scaleStore builds a URI-model store, optionally on the linear-scan
// notification baseline.
func scaleStore(scanBaseline bool) *registry.Store {
	models := describe.NewRegistry(describe.URIModel{})
	return registry.New(registry.Options{
		Models:          models,
		Leases:          lease.Policy{Max: time.Hour, Default: time.Hour},
		DisableSubIndex: scanBaseline,
	})
}

const scaleTypes = 256

func scaleAdvert(i int, gen *uuid.Generator) wire.Advertisement {
	d := &describe.URIDescription{
		TypeURI:    fmt.Sprintf("urn:scale:type:%d", i%scaleTypes),
		ServiceURI: fmt.Sprintf("urn:scale:svc:%d", i),
		Name:       "svc", Addr: "lan0/p",
	}
	return wire.Advertisement{
		ID: gen.New(), Provider: gen.New(), ProviderAddr: "lan0/p",
		Kind: describe.KindURI, Payload: d.Encode(),
		LeaseMillis: uint64(time.Hour / time.Millisecond), Version: 1,
	}
}

// BenchmarkPublishWithSubs is the tentpole headline: publish against
// 10^4 standing queries spread over 256 service types, so ~0.4% match
// any one advert. The indexed store probes one posting bucket per
// publish; the scan baseline evaluates every subscription. Acceptance
// is ≥10x between the two variants.
func BenchmarkPublishWithSubs(b *testing.B) {
	for _, v := range []struct {
		name string
		scan bool
	}{
		{"indexed", false},
		{"scan", true},
	} {
		b.Run(v.name, func(b *testing.B) {
			s := scaleStore(v.scan)
			gen := uuid.NewGenerator(benchSeed)
			t0 := time.Unix(0, 0)
			const subs = 10_000
			for i := 0; i < subs; i++ {
				payload := (&describe.URIQuery{TypeURI: fmt.Sprintf("urn:scale:type:%d", i%scaleTypes)}).Encode()
				if _, err := s.Subscribe(describe.KindURI, payload, "lan0/sub", gen.New(), time.Time{}); err != nil {
					b.Fatal(err)
				}
			}
			notes := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, n, err := s.Publish(scaleAdvert(i, gen), t0)
				if err != nil {
					b.Fatal(err)
				}
				notes += len(n)
			}
			b.ReportMetric(float64(notes)/float64(b.N), "notifications/op")
		})
	}
}

// scaleSizes returns the advert-count sweep: 10^5 and 10^6 always, 10^7
// only when SEMDISCO_SCALE_HUGE is set (it needs several GB and
// minutes).
func scaleSizes() []int {
	sizes := []int{100_000, 1_000_000}
	if os.Getenv("SEMDISCO_SCALE_HUGE") != "" {
		sizes = append(sizes, 10_000_000)
	}
	return sizes
}

// populateScaleStore publishes n adverts and returns the GC-settled
// heap bytes the store retains per advert. The caller reports it via
// ReportMetric *after* ResetTimer — ResetTimer clears custom metrics.
func populateScaleStore(b *testing.B, s *registry.Store, n int, gen *uuid.Generator) float64 {
	b.Helper()
	t0 := time.Unix(0, 0)
	var before, after stdruntime.MemStats
	stdruntime.GC()
	stdruntime.ReadMemStats(&before)
	for i := 0; i < n; i++ {
		if _, _, err := s.Publish(scaleAdvert(i, gen), t0); err != nil {
			b.Fatal(err)
		}
	}
	stdruntime.GC()
	stdruntime.ReadMemStats(&after)
	if after.HeapAlloc <= before.HeapAlloc {
		return 0
	}
	return float64(after.HeapAlloc-before.HeapAlloc) / float64(n)
}

// BenchmarkScalePublish measures steady-state publish cost (and the
// compact representation's bytes/advert) at 10^5..10^7 resident
// adverts. Publishes update existing service keys, so the store size
// stays fixed while the arena recycles slots.
func BenchmarkScalePublish(b *testing.B) {
	for _, n := range scaleSizes() {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s := scaleStore(false)
			gen := uuid.NewGenerator(benchSeed)
			bytesPerAdv := populateScaleStore(b, s, n, gen)
			t0 := time.Unix(0, 0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := s.Publish(scaleAdvert(i%n, gen), t0); err != nil {
					b.Fatal(err)
				}
			}
			if bytesPerAdv > 0 {
				b.ReportMetric(bytesPerAdv, "bytes/advert")
			}
		})
	}
}

// BenchmarkScaleRenew measures lease renewal over a large resident
// population — the dominant steady-state write at scale (every live
// service renews every lease period).
func BenchmarkScaleRenew(b *testing.B) {
	for _, n := range scaleSizes() {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s := scaleStore(false)
			gen := uuid.NewGenerator(benchSeed)
			ids := make([]uuid.UUID, n)
			t0 := time.Unix(0, 0)
			for i := 0; i < n; i++ {
				adv := scaleAdvert(i, gen)
				ids[i] = adv.ID
				if _, _, err := s.Publish(adv, t0); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := s.Renew(ids[i%n], t0); !ok {
					b.Fatal("renew lost an advert")
				}
			}
		})
	}
}

// BenchmarkE19Scale regenerates the E19 table at a bench-sized sweep;
// the headline is the notify-path speedup at 10^4 standing queries.
func BenchmarkE19Scale(b *testing.B) {
	var tab *metrics.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.E19Scale([]int{100_000}, []int{10_000}, benchSeed)
	}
	reportTable(b, tab)
	b.ReportMetric(cell(tab, 0, 1), "bytes/advert")
	b.ReportMetric(cell(tab, 0, 7), "notify-speedup")
}

// --- durability suite (scripts/bench.sh wal → BENCH_wal.json) -----------

// walBenchConfig builds a WALConfig over a per-benchmark temp dir with
// the scale-suite store factory. Snapshots are triggered explicitly so
// background compaction never races the timed section.
func walBenchConfig(b *testing.B, fsync bool) registry.WALConfig {
	b.Helper()
	return registry.WALConfig{
		Dir:           b.TempDir(),
		Fsync:         fsync,
		SnapshotEvery: -1,
		NewStore:      func() *registry.Store { return scaleStore(false) },
		Now:           func() time.Time { return time.Unix(0, 0) },
	}
}

// BenchmarkWALPublish measures the durability tax on the publish path:
// the memory store, the WAL with flush-to-OS barriers, the WAL with a
// real fsync per sequential publish (the worst case — every caller pays
// a full disk barrier), and fsync under parallel publishers, where
// group commit lets one fsync acknowledge a whole batch.
func BenchmarkWALPublish(b *testing.B) {
	t0 := time.Unix(0, 0)
	b.Run("mem", func(b *testing.B) {
		s := scaleStore(false)
		gen := uuid.NewGenerator(benchSeed)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := s.Publish(scaleAdvert(i, gen), t0); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, v := range []struct {
		name  string
		fsync bool
	}{
		{"wal-flush", false},
		{"wal-fsync", true},
	} {
		b.Run(v.name, func(b *testing.B) {
			s, w, _, err := registry.Recover(walBenchConfig(b, v.fsync))
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			gen := uuid.NewGenerator(benchSeed)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := s.Publish(scaleAdvert(i, gen), t0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("wal-fsync-parallel", func(b *testing.B) {
		s, w, _, err := registry.Recover(walBenchConfig(b, true))
		if err != nil {
			b.Fatal(err)
		}
		defer w.Close()
		var workers atomic.Uint64
		// 8×GOMAXPROCS publishers: while the commit leader blocks in
		// fsync, the others append and queue behind the barrier, so the
		// batching shows even on a single-core runner.
		b.SetParallelism(8)
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			// uuid.Generator is not goroutine-safe: one per publisher.
			gen := uuid.NewGenerator(benchSeed + workers.Add(1))
			for i := 0; pb.Next(); i++ {
				if _, _, err := s.Publish(scaleAdvert(i, gen), t0); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
}

// BenchmarkWALRecover measures cold-boot recovery at 10^4..10^6 resident
// adverts: replaying the raw log versus loading a compacted snapshot.
// Each timed iteration is one full boot — open the directory, rebuild
// the store, leases, indexes and interned tokens.
func BenchmarkWALRecover(b *testing.B) {
	t0 := time.Unix(0, 0)
	for _, v := range []struct {
		name string
		snap bool
	}{
		{"log", false},
		{"snapshot", true},
	} {
		for _, n := range []int{10_000, 100_000, 1_000_000} {
			b.Run(fmt.Sprintf("%s/n=%d", v.name, n), func(b *testing.B) {
				cfg := walBenchConfig(b, false)
				s, w, _, err := registry.Recover(cfg)
				if err != nil {
					b.Fatal(err)
				}
				gen := uuid.NewGenerator(benchSeed)
				for i := 0; i < n; i++ {
					if _, _, err := s.Publish(scaleAdvert(i, gen), t0); err != nil {
						b.Fatal(err)
					}
				}
				if v.snap {
					if err := w.Snapshot(); err != nil {
						b.Fatal(err)
					}
				}
				if err := w.Close(); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					rec, w2, _, err := registry.Recover(cfg)
					if err != nil {
						b.Fatal(err)
					}
					if rec.Len() != n {
						b.Fatalf("recovered %d adverts, want %d", rec.Len(), n)
					}
					b.StopTimer()
					if err := w2.Close(); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
				}
			})
		}
	}
}

// BenchmarkE20Durability regenerates the E20 table at a bench-sized
// sweep; the headlines are the WAL publish overhead and both cold-boot
// paths at 10^5 adverts.
func BenchmarkE20Durability(b *testing.B) {
	var tab *metrics.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.E20Durability([]int{100_000}, benchSeed)
	}
	reportTable(b, tab)
	b.ReportMetric(cell(tab, 0, 3), "wal-overhead")
	b.ReportMetric(cell(tab, 0, 5), "replay-ms")
	b.ReportMetric(cell(tab, 0, 7), "snap-load-ms")
}

func BenchmarkE15Scale(b *testing.B) {
	var tab *metrics.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.E15Scale([]int{4, 8}, benchSeed)
	}
	reportTable(b, tab)
	b.ReportMetric(cell(tab, 1, 2), "recall-at-8-registries")
}

func BenchmarkE16Loss(b *testing.B) {
	var tab *metrics.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.E16Loss([]float64{0, 0.05}, benchSeed)
	}
	reportTable(b, tab)
	b.ReportMetric(cell(tab, 1, 1), "success-at-5pct-loss")
}

func BenchmarkE17Chaos(b *testing.B) {
	var tab *metrics.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.E17Chaos([]float64{0, 0.5, 1}, benchSeed)
	}
	reportTable(b, tab)
	// Availability at full chaos intensity: the fault-sweep headline —
	// backoff, probation and fallback must keep this from collapsing.
	b.ReportMetric(cell(tab, 2, 1), "availability-at-full-chaos")
}

func BenchmarkE18ResultCache(b *testing.B) {
	var tab *metrics.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.E18ResultCache(10, benchSeed)
	}
	reportTable(b, tab)
	// WAN fan-outs with the gateway cache on vs off (10 repeats): the
	// §4.8 lease-bounded reuse headline.
	b.ReportMetric(cell(tab, 0, 2), "wan-forwards-rcache-off")
	b.ReportMetric(cell(tab, 1, 2), "wan-forwards-rcache-on")
}

// --- transport pipeline suite (scripts/bench.sh wire → BENCH_wire.json) --

// decodeBench measures the zero-alloc receive path: one reused Decoder
// over a fixed datagram, the way runtime.Dispatch decodes every message
// a node receives. The rate metric is the ISSUE-facing headline
// (queries/sec, renews/sec per core); allocs/op must stay at 0.
func decodeBench(b *testing.B, body wire.Body, unit string) {
	b.Helper()
	gen := uuid.NewGenerator(benchSeed)
	data, err := wire.Marshal(wire.NewEnvelope(gen.New(), "lan0/n", body, gen))
	if err != nil {
		b.Fatal(err)
	}
	d := wire.NewDecoder()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Decode(data); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), unit)
}

func BenchmarkWireDecodeQuery(b *testing.B) {
	gen := uuid.NewGenerator(benchSeed)
	decodeBench(b, wire.Query{
		QueryID: gen.New(), Kind: describe.KindSemantic,
		Payload: make([]byte, 120), TTL: 4, ReplyAddr: "lan0/c",
	}, "queries/s")
}

func BenchmarkWireDecodePublish(b *testing.B) {
	gen := uuid.NewGenerator(benchSeed)
	decodeBench(b, wire.Publish{Advert: scaleAdvert(0, gen)}, "publishes/s")
}

func BenchmarkWireDecodeSummaryDelta(b *testing.B) {
	tokens := func(n, off int) []string {
		out := make([]string, n)
		for i := range out {
			out[i] = fmt.Sprintf("urn:scale:type:%d", off+i)
		}
		return out
	}
	decodeBench(b, wire.SummaryDelta{
		Version: 9, Base: 8,
		Entries: []wire.SummaryDeltaEntry{
			{Kind: describe.KindURI, Add: tokens(16, 0), Remove: tokens(4, 200)},
		},
	}, "deltas/s")
}

// envCount is a minimal runtime.Handler: it counts dispatched messages,
// standing in for the registry so the benchmark times the transport +
// decode pipeline rather than matchmaking.
type envCount struct{ n int }

func (c *envCount) HandleEnvelope(env *wire.Envelope, from transport.Addr) { c.n++ }

// BenchmarkBatchRenews drives the full receive pipeline — sender iface,
// (optional) datagram coalescing, simulated network delivery, batch
// split, zero-alloc decode, handler — with the renew storm that
// dominates steady-state registry traffic. The acceptance bar is ≥3×
// renews/s for the batched variants over unbatched: coalescing turns
// per-message delivery events into per-datagram ones.
func BenchmarkBatchRenews(b *testing.B) {
	for _, v := range []struct {
		name     string
		batch    int
		maxBytes int
	}{
		{"unbatched", 0, 0},
		{"batch8", 8, 0},
		{"batch32", 32, 0},
		{"batch64", 64, 0},
		// A renew envelope is ~65 bytes, so the Ethernet MTU caps a
		// batch near 21 messages; the jumbo variant (9000-byte frames)
		// lets the message cap actually bind.
		{"batch64-jumbo", 64, 8900},
	} {
		b.Run(v.name, func(b *testing.B) {
			net := memnet.New(memnet.Config{Seed: benchSeed})
			gen := uuid.NewGenerator(benchSeed)
			h := &envCount{}
			recvEnv := &runtime.Env{ID: gen.New(), Clock: net, Gen: gen}
			recvEnv.Iface = net.Attach("lan0/reg", "lan0", func(from transport.Addr, data []byte) {
				runtime.Dispatch(h, recvEnv, from, data)
			})
			var iface transport.Iface = net.Attach("lan0/svc", "lan0", func(transport.Addr, []byte) {})
			var batcher *transport.Batcher
			if v.batch > 0 {
				batcher = transport.NewBatcher(iface, net, transport.BatcherConfig{
					MaxMessages: v.batch, MaxBytes: v.maxBytes,
				})
				iface = batcher
			}
			data, err := wire.Marshal(wire.NewEnvelope(gen.New(), "lan0/svc", wire.Renew{AdvertID: gen.New()}, gen))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := iface.Unicast("lan0/reg", data); err != nil {
					b.Fatal(err)
				}
			}
			if batcher != nil {
				batcher.Flush()
			}
			net.RunFor(time.Second)
			b.StopTimer()
			if h.n != b.N {
				b.Fatalf("delivered %d renews, want %d", h.n, b.N)
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "renews/s")
		})
	}
}

// BenchmarkE21Batching regenerates the datagram-coalescing table; the
// headline is messages per datagram and the datagram reduction at the
// default batch cap.
func BenchmarkE21Batching(b *testing.B) {
	var tab *metrics.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.E21Batching([]int{1, 32}, benchSeed)
	}
	reportTable(b, tab)
	b.ReportMetric(cell(tab, 1, 3), "msgs/dgram")
	b.ReportMetric(cell(tab, 1, 5), "dgram-reduction")
}

// BenchmarkE21Deltas regenerates the incremental-summary table; the
// headline is the WAN maintenance-byte reduction at 10^3 adverts per
// domain (the ISSUE acceptance bar is ≥5×).
func BenchmarkE21Deltas(b *testing.B) {
	var tab *metrics.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.E21Deltas([]int{100, 1000}, benchSeed)
	}
	reportTable(b, tab)
	b.ReportMetric(cell(tab, 1, 3), "delta-reduction-1e3")
}

// BenchmarkE22Federation regenerates the hierarchical multi-domain
// directory sweep (10 → 500 domains); the headlines are the WAN bytes
// directory convergence costs and the cross-domain query latency at the
// top of the sweep.
func BenchmarkE22Federation(b *testing.B) {
	var tab *metrics.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.E22Federation([]int{10, 100, 500}, benchSeed)
	}
	reportTable(b, tab)
	b.ReportMetric(cell(tab, 2, 2), "conv-KB-500dom")
	b.ReportMetric(cellDur(tab, 2, 3), "xq-latency-ms-500dom")
}
