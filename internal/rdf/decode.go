package rdf

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// ParseTurtle parses a practical subset of Turtle sufficient for the
// ontologies and service profiles this system ships and generates:
//
//   - @prefix / @base directives (and SPARQL-style PREFIX/BASE)
//   - prefixed names (ex:Radar) and IRIs (<http://…>)
//   - the "a" keyword for rdf:type
//   - predicate lists (";") and object lists (",")
//   - string literals with \-escapes, @lang tags and ^^datatypes
//   - integer, decimal and boolean shorthand literals
//   - blank node labels (_:b1), anonymous blank nodes "[ … ]"
//   - collections "( … )" as rdf:first/rdf:rest lists
//   - triple-quoted long strings """…"""
//   - comments (#…)
//
// Remaining unsupported Turtle features yield a descriptive error with
// a line number rather than silent misparsing.
//
// N-Triples is a subset of this grammar, so ParseTurtle parses
// N-Triples documents too.
func ParseTurtle(src string) (*Graph, error) {
	g := NewGraph()
	p := &turtleParser{src: src, line: 1, prefixes: map[string]string{}}
	if err := p.run(g); err != nil {
		return nil, err
	}
	return g, nil
}

// MustParseTurtle parses compile-time-known documents; panics on error.
func MustParseTurtle(src string) *Graph {
	g, err := ParseTurtle(src)
	if err != nil {
		panic(err)
	}
	return g
}

type turtleParser struct {
	src      string
	pos      int
	line     int
	base     string
	prefixes map[string]string
	// anonSeq numbers generated anonymous blank nodes (_:anon0, …).
	anonSeq int
}

// freshBlank mints a blank node for anonymous constructs. Like other
// RDF parsers it uses a reserved-looking "genid-" label space; colliding
// with explicit user labels of that form is documented non-support.
func (p *turtleParser) freshBlank() Term {
	p.anonSeq++
	return Blank(fmt.Sprintf("genid-%d", p.anonSeq-1))
}

func (p *turtleParser) errf(format string, args ...any) error {
	return fmt.Errorf("turtle: line %d: %s", p.line, fmt.Sprintf(format, args...))
}

func (p *turtleParser) run(g *Graph) error {
	for {
		p.skipSpace()
		if p.eof() {
			return nil
		}
		if p.peekDirective() {
			if err := p.parseDirective(); err != nil {
				return err
			}
			continue
		}
		if err := p.parseStatement(g); err != nil {
			return err
		}
	}
}

func (p *turtleParser) eof() bool { return p.pos >= len(p.src) }

func (p *turtleParser) peek() byte {
	if p.eof() {
		return 0
	}
	return p.src[p.pos]
}

func (p *turtleParser) skipSpace() {
	for !p.eof() {
		c := p.src[p.pos]
		switch {
		case c == '\n':
			p.line++
			p.pos++
		case c == ' ' || c == '\t' || c == '\r':
			p.pos++
		case c == '#':
			for !p.eof() && p.src[p.pos] != '\n' {
				p.pos++
			}
		default:
			return
		}
	}
}

func (p *turtleParser) peekDirective() bool {
	rest := p.src[p.pos:]
	return strings.HasPrefix(rest, "@prefix") || strings.HasPrefix(rest, "@base") ||
		hasPrefixFold(rest, "PREFIX") || hasPrefixFold(rest, "BASE")
}

func hasPrefixFold(s, prefix string) bool {
	return len(s) >= len(prefix) && strings.EqualFold(s[:len(prefix)], prefix)
}

func (p *turtleParser) parseDirective() error {
	sparqlStyle := false
	switch {
	case strings.HasPrefix(p.src[p.pos:], "@prefix"):
		p.pos += len("@prefix")
	case strings.HasPrefix(p.src[p.pos:], "@base"):
		p.pos += len("@base")
		return p.parseBase(false)
	case hasPrefixFold(p.src[p.pos:], "PREFIX"):
		p.pos += len("PREFIX")
		sparqlStyle = true
	case hasPrefixFold(p.src[p.pos:], "BASE"):
		p.pos += len("BASE")
		return p.parseBase(true)
	}
	p.skipSpace()
	// prefix label up to ':'
	start := p.pos
	for !p.eof() && p.src[p.pos] != ':' {
		if c := p.src[p.pos]; c == ' ' || c == '\n' || c == '<' {
			return p.errf("malformed prefix label")
		}
		p.pos++
	}
	if p.eof() {
		return p.errf("unterminated @prefix directive")
	}
	label := p.src[start:p.pos]
	p.pos++ // ':'
	p.skipSpace()
	iri, err := p.parseIRIRef()
	if err != nil {
		return err
	}
	p.prefixes[label] = iri
	p.skipSpace()
	if !sparqlStyle {
		if p.peek() != '.' {
			return p.errf("@prefix directive must end with '.'")
		}
		p.pos++
	}
	return nil
}

func (p *turtleParser) parseBase(sparqlStyle bool) error {
	p.skipSpace()
	iri, err := p.parseIRIRef()
	if err != nil {
		return err
	}
	p.base = iri
	p.skipSpace()
	if !sparqlStyle {
		if p.peek() != '.' {
			return p.errf("@base directive must end with '.'")
		}
		p.pos++
	}
	return nil
}

func (p *turtleParser) parseStatement(g *Graph) error {
	subj, err := p.parseTerm(g, true)
	if err != nil {
		return err
	}
	for {
		p.skipSpace()
		pred, err := p.parsePredicate(g)
		if err != nil {
			return err
		}
		for {
			p.skipSpace()
			obj, err := p.parseTerm(g, false)
			if err != nil {
				return err
			}
			if _, err := g.Add(Triple{subj, pred, obj}); err != nil {
				return p.errf("%v", err)
			}
			p.skipSpace()
			if p.peek() == ',' {
				p.pos++
				continue
			}
			break
		}
		switch p.peek() {
		case ';':
			p.pos++
			p.skipSpace()
			// Turtle allows a dangling ';' before '.'
			if p.peek() == '.' {
				p.pos++
				return nil
			}
			continue
		case '.':
			p.pos++
			return nil
		default:
			return p.errf("expected ';' or '.' after object, got %q", string(p.peek()))
		}
	}
}

func (p *turtleParser) parsePredicate(g *Graph) (Term, error) {
	// the "a" keyword
	if p.peek() == 'a' {
		next := byte(' ')
		if p.pos+1 < len(p.src) {
			next = p.src[p.pos+1]
		}
		if next == ' ' || next == '\t' || next == '\n' || next == '<' {
			p.pos++
			return IRI(RDFType), nil
		}
	}
	t, err := p.parseTerm(g, true)
	if err != nil {
		return Term{}, err
	}
	if !t.IsIRI() {
		return Term{}, p.errf("predicate must be an IRI, got %v", t)
	}
	return t, nil
}

// parseTerm parses an IRI, prefixed name, blank node, or (when
// subjPos==false) a literal.
func (p *turtleParser) parseTerm(g *Graph, subjPos bool) (Term, error) {
	p.skipSpace()
	if p.eof() {
		return Term{}, p.errf("unexpected end of input")
	}
	switch c := p.peek(); {
	case c == '<':
		iri, err := p.parseIRIRef()
		if err != nil {
			return Term{}, err
		}
		return IRI(iri), nil
	case c == '_':
		if p.pos+1 >= len(p.src) || p.src[p.pos+1] != ':' {
			return Term{}, p.errf("malformed blank node")
		}
		p.pos += 2
		start := p.pos
		for !p.eof() && isNameChar(p.src[p.pos]) {
			p.pos++
		}
		if p.pos == start {
			return Term{}, p.errf("empty blank node label")
		}
		return Blank(p.src[start:p.pos]), nil
	case c == '[':
		return p.parseAnonBlank(g)
	case c == '(':
		return p.parseCollection(g)
	case c == '"':
		if subjPos {
			return Term{}, p.errf("literal not allowed in subject/predicate position")
		}
		return p.parseLiteral(g)
	case !subjPos && (c == '+' || c == '-' || (c >= '0' && c <= '9')):
		return p.parseNumber()
	case !subjPos && (strings.HasPrefix(p.src[p.pos:], "true") || strings.HasPrefix(p.src[p.pos:], "false")):
		return p.parseBoolean()
	default:
		return p.parsePrefixedName()
	}
}

func (p *turtleParser) parseIRIRef() (string, error) {
	if p.peek() != '<' {
		return "", p.errf("expected '<'")
	}
	p.pos++
	start := p.pos
	for !p.eof() && p.src[p.pos] != '>' {
		if p.src[p.pos] == '\n' {
			return "", p.errf("newline inside IRI")
		}
		p.pos++
	}
	if p.eof() {
		return "", p.errf("unterminated IRI")
	}
	iri := p.src[start:p.pos]
	p.pos++
	if p.base != "" && !strings.Contains(iri, ":") {
		iri = p.base + iri
	}
	return iri, nil
}

func isNameChar(c byte) bool {
	return c == '_' || c == '-' || c == '.' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

func (p *turtleParser) parsePrefixedName() (Term, error) {
	start := p.pos
	for !p.eof() && isNameChar(p.src[p.pos]) {
		p.pos++
	}
	if p.eof() || p.src[p.pos] != ':' {
		return Term{}, p.errf("expected prefixed name near %q", snippet(p.src[start:]))
	}
	prefix := p.src[start:p.pos]
	p.pos++
	localStart := p.pos
	for !p.eof() && isNameChar(p.src[p.pos]) {
		p.pos++
	}
	local := p.src[localStart:p.pos]
	// Local names ending in '.' are actually followed by the statement
	// terminator; give the '.' back.
	for strings.HasSuffix(local, ".") {
		local = local[:len(local)-1]
		p.pos--
	}
	ns, ok := p.prefixes[prefix]
	if !ok {
		return Term{}, p.errf("undeclared prefix %q", prefix)
	}
	return IRI(ns + local), nil
}

func (p *turtleParser) parseLiteral(g *Graph) (Term, error) {
	if strings.HasPrefix(p.src[p.pos:], `"""`) {
		return p.parseLongLiteral(g)
	}
	p.pos++ // opening quote
	var b strings.Builder
	for {
		if p.eof() {
			return Term{}, p.errf("unterminated string literal")
		}
		c := p.src[p.pos]
		if c == '\n' {
			return Term{}, p.errf("newline in string literal")
		}
		if c == '"' {
			p.pos++
			break
		}
		if c == '\\' {
			p.pos++
			if p.eof() {
				return Term{}, p.errf("dangling escape")
			}
			switch e := p.src[p.pos]; e {
			case 'n':
				b.WriteByte('\n')
			case 'r':
				b.WriteByte('\r')
			case 't':
				b.WriteByte('\t')
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			case 'u':
				if p.pos+4 >= len(p.src) {
					return Term{}, p.errf("truncated \\u escape")
				}
				var r rune
				if _, err := fmt.Sscanf(p.src[p.pos+1:p.pos+5], "%04x", &r); err != nil {
					return Term{}, p.errf("bad \\u escape")
				}
				b.WriteRune(r)
				p.pos += 4
			default:
				return Term{}, p.errf("unknown escape \\%c", e)
			}
			p.pos++
			continue
		}
		r, size := utf8.DecodeRuneInString(p.src[p.pos:])
		b.WriteRune(r)
		p.pos += size
	}
	lexical := b.String()
	// optional @lang or ^^datatype
	if p.peek() == '@' {
		p.pos++
		start := p.pos
		for !p.eof() && (isNameChar(p.src[p.pos])) {
			p.pos++
		}
		lang := p.src[start:p.pos]
		if lang == "" {
			return Term{}, p.errf("empty language tag")
		}
		return LangLiteral(lexical, lang), nil
	}
	if strings.HasPrefix(p.src[p.pos:], "^^") {
		p.pos += 2
		dt, err := p.parseTerm(g, true)
		if err != nil {
			return Term{}, err
		}
		if !dt.IsIRI() {
			return Term{}, p.errf("datatype must be an IRI")
		}
		return TypedLiteral(lexical, dt.Value), nil
	}
	return Literal(lexical), nil
}

func (p *turtleParser) parseNumber() (Term, error) {
	start := p.pos
	if c := p.peek(); c == '+' || c == '-' {
		p.pos++
	}
	digits, dot, exp := 0, false, false
	for !p.eof() {
		c := p.src[p.pos]
		switch {
		case c >= '0' && c <= '9':
			digits++
			p.pos++
		case c == '.' && !dot && !exp:
			// A '.' followed by a non-digit is the statement terminator.
			if p.pos+1 >= len(p.src) || p.src[p.pos+1] < '0' || p.src[p.pos+1] > '9' {
				goto done
			}
			dot = true
			p.pos++
		case (c == 'e' || c == 'E') && !exp && digits > 0:
			exp = true
			p.pos++
			if !p.eof() && (p.src[p.pos] == '+' || p.src[p.pos] == '-') {
				p.pos++
			}
		default:
			goto done
		}
	}
done:
	if digits == 0 {
		return Term{}, p.errf("malformed number")
	}
	lex := p.src[start:p.pos]
	switch {
	case exp:
		return TypedLiteral(lex, XSDDouble), nil
	case dot:
		return TypedLiteral(lex, XSDDecimal), nil
	default:
		return TypedLiteral(lex, XSDInteger), nil
	}
}

func (p *turtleParser) parseBoolean() (Term, error) {
	if strings.HasPrefix(p.src[p.pos:], "true") && boundaryAt(p.src, p.pos+4) {
		p.pos += 4
		return BoolLiteral(true), nil
	}
	if strings.HasPrefix(p.src[p.pos:], "false") && boundaryAt(p.src, p.pos+5) {
		p.pos += 5
		return BoolLiteral(false), nil
	}
	return Term{}, p.errf("malformed boolean")
}

func boundaryAt(s string, i int) bool {
	if i >= len(s) {
		return true
	}
	r, _ := utf8.DecodeRuneInString(s[i:])
	return !unicode.IsLetter(r) && !unicode.IsDigit(r)
}

func snippet(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	if len(s) > 24 {
		s = s[:24] + "…"
	}
	return s
}

// parseAnonBlank parses "[]" or "[ pred obj ; … ]", emitting the inner
// triples with a fresh blank subject and returning that subject.
func (p *turtleParser) parseAnonBlank(g *Graph) (Term, error) {
	p.pos++ // '['
	node := p.freshBlank()
	p.skipSpace()
	if p.peek() == ']' {
		p.pos++
		return node, nil
	}
	for {
		pred, err := p.parsePredicate(g)
		if err != nil {
			return Term{}, err
		}
		for {
			p.skipSpace()
			obj, err := p.parseTerm(g, false)
			if err != nil {
				return Term{}, err
			}
			if _, err := g.Add(Triple{node, pred, obj}); err != nil {
				return Term{}, p.errf("%v", err)
			}
			p.skipSpace()
			if p.peek() == ',' {
				p.pos++
				continue
			}
			break
		}
		switch p.peek() {
		case ';':
			p.pos++
			p.skipSpace()
			if p.peek() == ']' { // dangling ';'
				p.pos++
				return node, nil
			}
			continue
		case ']':
			p.pos++
			return node, nil
		default:
			return Term{}, p.errf("expected ';' or ']' in blank node property list, got %q", string(p.peek()))
		}
	}
}

// parseCollection parses "( o1 o2 … )" into an rdf:first/rdf:rest list
// and returns its head (rdf:nil for the empty collection).
func (p *turtleParser) parseCollection(g *Graph) (Term, error) {
	p.pos++ // '('
	var items []Term
	for {
		p.skipSpace()
		if p.eof() {
			return Term{}, p.errf("unterminated collection")
		}
		if p.peek() == ')' {
			p.pos++
			break
		}
		item, err := p.parseTerm(g, false)
		if err != nil {
			return Term{}, err
		}
		items = append(items, item)
	}
	if len(items) == 0 {
		return IRI(RDFNil), nil
	}
	head := p.freshBlank()
	cur := head
	for i, item := range items {
		if _, err := g.Add(Triple{cur, IRI(RDFFirst), item}); err != nil {
			return Term{}, p.errf("%v", err)
		}
		if i == len(items)-1 {
			if _, err := g.Add(Triple{cur, IRI(RDFRest), IRI(RDFNil)}); err != nil {
				return Term{}, p.errf("%v", err)
			}
			break
		}
		next := p.freshBlank()
		if _, err := g.Add(Triple{cur, IRI(RDFRest), next}); err != nil {
			return Term{}, p.errf("%v", err)
		}
		cur = next
	}
	return head, nil
}

// parseLongLiteral parses a triple-quoted string, which may span lines
// and contain unescaped quotes.
func (p *turtleParser) parseLongLiteral(g *Graph) (Term, error) {
	p.pos += 3 // opening """
	var b strings.Builder
	for {
		if p.eof() {
			return Term{}, p.errf("unterminated triple-quoted string")
		}
		if strings.HasPrefix(p.src[p.pos:], `"""`) {
			p.pos += 3
			break
		}
		c := p.src[p.pos]
		if c == '\\' {
			p.pos++
			if p.eof() {
				return Term{}, p.errf("dangling escape")
			}
			switch e := p.src[p.pos]; e {
			case 'n':
				b.WriteByte('\n')
			case 'r':
				b.WriteByte('\r')
			case 't':
				b.WriteByte('\t')
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			default:
				return Term{}, p.errf("unknown escape \\%c", e)
			}
			p.pos++
			continue
		}
		if c == '\n' {
			p.line++
		}
		r, size := utf8.DecodeRuneInString(p.src[p.pos:])
		b.WriteRune(r)
		p.pos += size
	}
	lexical := b.String()
	// Long literals take the same @lang / ^^type suffixes.
	if p.peek() == '@' {
		p.pos++
		start := p.pos
		for !p.eof() && isNameChar(p.src[p.pos]) {
			p.pos++
		}
		lang := p.src[start:p.pos]
		if lang == "" {
			return Term{}, p.errf("empty language tag")
		}
		return LangLiteral(lexical, lang), nil
	}
	if strings.HasPrefix(p.src[p.pos:], "^^") {
		p.pos += 2
		dt, err := p.parseTerm(g, true)
		if err != nil {
			return Term{}, err
		}
		if !dt.IsIRI() {
			return Term{}, p.errf("datatype must be an IRI")
		}
		return TypedLiteral(lexical, dt.Value), nil
	}
	return Literal(lexical), nil
}
