package experiments

import (
	"fmt"
	"runtime"
	"time"

	"semdisco/internal/describe"
	"semdisco/internal/lease"
	"semdisco/internal/metrics"
	"semdisco/internal/registry"
	"semdisco/internal/uuid"
	"semdisco/internal/wire"
)

// e19Types is the spread of service type URIs in the E19 population;
// with subscriptions distributed uniformly across the types, each
// publish matches subs/e19Types standing queries (≈0.4% at the default
// spread) — the "many subscribers, few interested in any one service"
// regime the WS-Notification substrate must scale to.
const e19Types = 256

// E19Scale measures the two tentpole claims of the scale PR at the
// store level: bytes per advert under the slab-arena/interned-token
// representation, and publish-with-notification cost on the inverted
// subscription index versus the linear-scan baseline, swept over advert
// and standing-query counts. Both stores run the identical workload;
// speedup is scan/indexed publish time.
func E19Scale(advertCounts, subCounts []int, seed int64) *metrics.Table {
	t := metrics.NewTable("E19 compact storage & inverted subscription index",
		"adverts", "bytes/adv", "renew µs", "subs", "match %", "notify idx µs", "notify scan µs", "speedup")
	for _, nAdv := range advertCounts {
		gen := uuid.NewGenerator(uint64(seed))
		advs := e19Adverts(nAdv, gen)

		indexed := e19Store(false)
		bytesPerAdv := e19Populate(indexed, advs)
		scan := e19Store(true)
		e19Populate(scan, advs)

		renewUS := e19Renew(indexed, advs)

		for _, nSub := range subCounts {
			idxSubs := e19Subscribe(indexed, nSub, gen)
			scanSubs := e19Subscribe(scan, nSub, gen)
			const probes = 2000
			idxUS, idxNotes := e19PublishRound(indexed, gen, probes)
			scanUS, scanNotes := e19PublishRound(scan, gen, probes)
			if idxNotes != scanNotes {
				panic(fmt.Sprintf("e19: notification divergence: indexed %d, scan %d", idxNotes, scanNotes))
			}
			matchPct := 100 * float64(idxNotes) / float64(probes) / float64(nSub)
			t.AddRow(nAdv, bytesPerAdv, renewUS, nSub, matchPct, idxUS, scanUS, scanUS/idxUS)
			e19Unsubscribe(indexed, idxSubs)
			e19Unsubscribe(scan, scanSubs)
		}
	}
	t.AddNote("URI model, %d service types; subscriptions spread uniformly over the types so each "+
		"publish matches subs/%d standing queries; bytes/adv is the GC-settled heap delta of "+
		"populating the indexed store; notify columns time Publish incl. candidate probe + match", e19Types, e19Types)
	return t
}

func e19Store(disableSubIndex bool) *registry.Store {
	models := describe.NewRegistry(describe.URIModel{})
	return registry.New(registry.Options{
		Models:          models,
		Leases:          lease.Policy{Max: time.Hour, Default: time.Hour},
		DisableSubIndex: disableSubIndex,
	})
}

func e19Adverts(n int, gen *uuid.Generator) []wire.Advertisement {
	advs := make([]wire.Advertisement, n)
	for i := range advs {
		d := &describe.URIDescription{
			TypeURI:    fmt.Sprintf("urn:e19:type:%d", i%e19Types),
			ServiceURI: fmt.Sprintf("urn:e19:svc:%d", i),
			Name:       "svc",
			Addr:       "lan0/p",
		}
		advs[i] = wire.Advertisement{
			ID: gen.New(), Provider: gen.New(), ProviderAddr: "lan0/p",
			Kind: describe.KindURI, Payload: d.Encode(),
			LeaseMillis: uint64(time.Hour / time.Millisecond), Version: 1,
		}
	}
	return advs
}

// e19Populate publishes the population and returns the GC-settled heap
// bytes the store retains per advert (including the decoded description
// and the payload bytes it pins).
func e19Populate(s *registry.Store, advs []wire.Advertisement) float64 {
	t0 := time.Unix(0, 0)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := range advs {
		if _, _, err := s.Publish(advs[i], t0); err != nil {
			panic(err)
		}
	}
	runtime.GC()
	runtime.ReadMemStats(&after)
	if after.HeapAlloc <= before.HeapAlloc {
		return 0
	}
	return float64(after.HeapAlloc-before.HeapAlloc) / float64(len(advs))
}

// e19Renew times lease renewal over a sample of the population, in µs
// per renew.
func e19Renew(s *registry.Store, advs []wire.Advertisement) float64 {
	t0 := time.Unix(0, 0)
	n := len(advs)
	if n > 10_000 {
		n = 10_000
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		if _, ok := s.Renew(advs[i].ID, t0); !ok {
			panic("e19: renew lost an advert")
		}
	}
	return float64(time.Since(start).Microseconds()) / float64(n)
}

// e19Subscribe registers n standing queries spread over the type space
// and returns their IDs so the round can drop them afterwards.
func e19Subscribe(s *registry.Store, n int, gen *uuid.Generator) []uuid.UUID {
	ids := make([]uuid.UUID, n)
	for i := 0; i < n; i++ {
		payload := (&describe.URIQuery{TypeURI: fmt.Sprintf("urn:e19:type:%d", i%e19Types)}).Encode()
		ids[i] = gen.New()
		if _, err := s.Subscribe(describe.KindURI, payload, "lan0/sub", ids[i], time.Time{}); err != nil {
			panic(err)
		}
	}
	return ids
}

func e19Unsubscribe(s *registry.Store, ids []uuid.UUID) {
	for _, id := range ids {
		s.Unsubscribe(id)
	}
}

// e19PublishRound publishes fresh adverts against the standing queries
// and returns µs per publish and the total notifications produced.
func e19PublishRound(s *registry.Store, gen *uuid.Generator, probes int) (float64, int) {
	t0 := time.Unix(0, 0)
	advs := e19Adverts(probes, gen)
	notes := 0
	start := time.Now()
	for i := range advs {
		_, n, err := s.Publish(advs[i], t0)
		if err != nil {
			panic(err)
		}
		notes += len(n)
	}
	return float64(time.Since(start).Microseconds()) / float64(probes), notes
}
