package sim

import (
	"testing"
	"time"

	"semdisco/internal/federation"
	"semdisco/internal/node"
	"semdisco/internal/transport"
)

func TestWorldDeterminism(t *testing.T) {
	run := func() (int, uint64, string) {
		w := NewWorld(Config{Seed: 99})
		r := w.AddRegistry("lan0", "r0", federation.Config{})
		w.AddService("lan0", "s0", node.ServiceConfig{}, w.SemanticProfile("urn:svc:x", C("RadarFeed")))
		cli := w.AddClient("lan0", "c0", node.ClientConfig{})
		w.Run(3 * time.Second)
		out := cli.Query(w.SemanticSpec(C("SensorFeed"), 0), 5*time.Second)
		id := ""
		if len(out.Adverts) > 0 {
			id = out.Adverts[0].ID.String()
		}
		return r.Reg.Store().Len(), w.Net.Stats().BytesSent, id
	}
	l1, b1, id1 := run()
	l2, b2, id2 := run()
	if l1 != l2 || b1 != b2 || id1 != id2 {
		t.Fatalf("same seed diverged: (%d,%d,%s) vs (%d,%d,%s)", l1, b1, id1, l2, b2, id2)
	}
	if l1 != 1 || id1 == "" {
		t.Fatalf("world did not function: %d adverts, id=%q", l1, id1)
	}
}

func TestWorldSeedsDiffer(t *testing.T) {
	mk := func(seed int64) string {
		w := NewWorld(Config{Seed: seed})
		return w.Gen.New().String()
	}
	if mk(1) == mk(2) {
		t.Fatal("different seeds produced identical UUID streams")
	}
}

func TestDefaultOntologyShape(t *testing.T) {
	o := DefaultOntology()
	cases := []struct {
		super, sub string
		want       bool
	}{
		{"SensorFeed", "RadarFeed", true},
		{"SensorFeed", "CoastalRadarFeed", true},
		{"Service", "ChatService", true},
		{"SensorFeed", "MapService", false},
	}
	for _, c := range cases {
		if got := o.Subsumes(C(c.super), C(c.sub)); got != c.want {
			t.Errorf("Subsumes(%s, %s) = %v, want %v", c.super, c.sub, got, c.want)
		}
	}
}

func TestRegistryArtifactPreloaded(t *testing.T) {
	w := NewWorld(Config{Seed: 3})
	r := w.AddRegistry("lan0", "r0", federation.Config{})
	if _, ok := r.Reg.Store().Artifact(w.Onto.IRI); !ok {
		t.Fatal("registry missing the preloaded ontology artifact")
	}
}

func TestCrashHandles(t *testing.T) {
	w := NewWorld(Config{Seed: 4})
	r := w.AddRegistry("lan0", "r0", federation.Config{})
	s := w.AddService("lan0", "s0", node.ServiceConfig{}, w.SemanticProfile("urn:svc:x", C("RadarFeed")))
	w.Run(time.Second)
	r.Crash()
	s.Crash()
	if w.Net.IsUp(r.Addr) || w.Net.IsUp(s.Addr) {
		t.Fatal("crashed nodes still up on the network")
	}
}

func TestStaleFraction(t *testing.T) {
	w := NewWorld(Config{Seed: 5})
	w.AddRegistry("lan0", "r0", federation.Config{})
	s1 := w.AddService("lan0", "s1", node.ServiceConfig{}, w.SemanticProfile("urn:svc:a", C("RadarFeed")))
	w.AddService("lan0", "s2", node.ServiceConfig{}, w.SemanticProfile("urn:svc:b", C("RadarFeed")))
	cli := w.AddClient("lan0", "c0", node.ClientConfig{})
	w.Run(2 * time.Second)
	out := cli.Query(w.SemanticSpec(C("RadarFeed"), 0), 5*time.Second)
	if got := w.StaleFraction(out.Adverts); got != 0 {
		t.Fatalf("StaleFraction with all up = %v", got)
	}
	s1.Crash()
	if got := w.StaleFraction(out.Adverts); got != 0.5 {
		t.Fatalf("StaleFraction with one down = %v, want 0.5", got)
	}
	if got := w.StaleFraction(nil); got != 0 {
		t.Fatalf("StaleFraction(nil) = %v", got)
	}
}

func TestQueryOutcomeTimesOutCleanly(t *testing.T) {
	w := NewWorld(Config{Seed: 6})
	// No registry, no services; short fallback window.
	cli := w.AddClient("lan0", "c0", node.ClientConfig{
		QueryTimeout:   200 * time.Millisecond,
		FallbackWindow: 200 * time.Millisecond,
		MaxAttempts:    1,
	})
	w.Run(time.Second)
	out := cli.Query(w.SemanticSpec(C("RadarFeed"), 0), 5*time.Second)
	if !out.Completed {
		t.Fatal("query never completed (fallback should deliver ViaNone)")
	}
	if out.Via != node.ViaNone || len(out.Adverts) != 0 {
		t.Fatalf("empty-world outcome = %+v", out)
	}
	if out.Elapsed <= 0 {
		t.Fatal("elapsed not measured")
	}
}

func TestBaselineHandlesIntegration(t *testing.T) {
	w := NewWorld(Config{Seed: 7})
	c := w.AddCentral("lan0", "uddi")
	ring := w.AddDHTRing([]string{"lan1", "lan2"})
	if c.PeerInfo().Addr != string(c.Addr) {
		t.Fatal("central PeerInfo mismatch")
	}
	if len(ring) != 2 {
		t.Fatalf("ring size = %d", len(ring))
	}
	for _, h := range ring {
		if h.PeerInfo().ID != h.Env.ID {
			t.Fatal("dht PeerInfo mismatch")
		}
	}
	var addrs []transport.Addr
	for _, lan := range w.Net.LANs() {
		addrs = append(addrs, w.Net.NodesOn(lan)...)
	}
	if len(addrs) != 3 {
		t.Fatalf("attached nodes = %d", len(addrs))
	}
}

func TestFmt(t *testing.T) {
	w := NewWorld(Config{Seed: 8})
	w.AddRegistry("lan0", "r0", federation.Config{})
	if s := w.Fmt(); s == "" {
		t.Fatal("Fmt empty")
	}
}
