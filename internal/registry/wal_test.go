package registry

// Crash-recovery tests for the WAL backend: clean round trips, torn and
// truncated log tails, snapshot+tail equivalence under randomized
// histories, a simulated kill -9 during a publish storm, and
// publish-during-snapshot races (run under -race in CI).

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"semdisco/internal/describe"
	"semdisco/internal/lease"
	"semdisco/internal/profile"
	"semdisco/internal/uuid"
	"semdisco/internal/wire"
)

// walGen is not safe for concurrent use; tests with concurrent
// publishers give each worker its own seeded generator.
var (
	walGen      = uuid.NewGenerator(7701)
	walProvider = walGen.New()
)

// walFactory builds the store factory recovery and compaction share.
// One model registry backs every store it makes: the ontology is
// immutable after Freeze, exactly like a registryd restart reloading
// the same taxonomy file.
func walFactory(t testing.TB) func() *Store {
	t.Helper()
	models := describe.NewRegistry(describe.URIModel{}, describe.KVModel{}, describe.NewSemanticModel(testOntology(t)))
	return func() *Store {
		return New(Options{
			Models: models,
			Leases: lease.Policy{Min: time.Second, Max: time.Hour, Default: 30 * time.Second},
		})
	}
}

func walAdvert(id uuid.UUID, serviceIRI, category string, version uint64, leaseDur time.Duration) wire.Advertisement {
	p := &profile.Profile{
		ServiceIRI: serviceIRI,
		Category:   c(category),
		Grounding:  "urn:g:" + serviceIRI,
	}
	return wire.Advertisement{
		ID:           id,
		Provider:     walProvider,
		ProviderAddr: "lan0/svc",
		Kind:         describe.KindSemantic,
		Payload:      p.Encode(),
		LeaseMillis:  uint64(leaseDur / time.Millisecond),
		Version:      version,
	}
}

// assertStoresEqual checks that two stores are observationally
// identical: same adverts, same absolute lease deadlines, same standing
// queries, and bit-identical Evaluate results for every query.
func assertStoresEqual(t *testing.T, want, got *Store, now time.Time, queries [][]byte) {
	t.Helper()
	wa, ga := want.Adverts(), got.Adverts()
	if !reflect.DeepEqual(wa, ga) {
		t.Fatalf("adverts diverge: want %d, got %d", len(wa), len(ga))
	}
	for _, a := range wa {
		wd, wok := want.LeaseDeadline(a.ID)
		gd, gok := got.LeaseDeadline(a.ID)
		if wok != gok || !wd.Equal(gd) {
			t.Fatalf("lease deadline for %v diverges: want %v (%v), got %v (%v)", a.ID, wd, wok, gd, gok)
		}
	}
	if w, g := want.NumSubscriptions(), got.NumSubscriptions(); w != g {
		t.Fatalf("subscriptions diverge: want %d, got %d", w, g)
	}
	for i, q := range queries {
		opts := QueryOptions{MaxResults: 1000}
		wr, werr := want.Evaluate(describe.KindSemantic, q, opts, now)
		gr, gerr := got.Evaluate(describe.KindSemantic, q, opts, now)
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("query %d errors diverge: %v vs %v", i, werr, gerr)
		}
		if !reflect.DeepEqual(wr, gr) {
			t.Fatalf("query %d results diverge: want %d adverts, got %d", i, len(wr), len(gr))
		}
	}
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	mk := walFactory(t)
	now := t0
	st, w, stats, err := Recover(WALConfig{Dir: dir, SnapshotEvery: -1, NewStore: mk, Now: func() time.Time { return now }})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Adverts != 0 || stats.Replayed != 0 {
		t.Fatalf("fresh dir recovered state: %+v", stats)
	}

	cats := []string{"Radar", "Camera", "Sensor", "Track"}
	ids := make([]uuid.UUID, 20)
	for i := range ids {
		ids[i] = walGen.New()
		adv := walAdvert(ids[i], fmt.Sprintf("urn:svc:%d", i), cats[i%len(cats)], 1, 5*time.Minute)
		if _, _, err := st.Publish(adv, now.Add(time.Duration(i)*time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	// A renewal, an update, a removal, a subscription, and an expiry
	// sweep — one of every record type.
	if _, ok := st.Renew(ids[3], now.Add(30*time.Second)); !ok {
		t.Fatal("renew failed")
	}
	upd := walAdvert(ids[5], "urn:svc:5", "Camera", 2, 2*time.Minute)
	if _, _, err := st.Publish(upd, now.Add(40*time.Second)); err != nil {
		t.Fatal(err)
	}
	if !st.Remove(ids[7]) {
		t.Fatal("remove failed")
	}
	subID := walGen.New()
	if _, err := st.Subscribe(describe.KindSemantic, semQuery("Sensor"), "lan0/notify", subID, now.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	st.ExpireThrough(now.Add(50 * time.Second)) // purges nothing, logs nothing
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	now = now.Add(time.Minute)
	rec, w2, rstats, err := Recover(WALConfig{Dir: dir, SnapshotEvery: -1, NewStore: mk, Now: func() time.Time { return now }})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if rstats.Replayed == 0 || rstats.TornFrames != 0 {
		t.Fatalf("unexpected recovery stats: %+v", rstats)
	}
	queries := [][]byte{semQuery("Device"), semQuery("Sensor"), semQuery("Radar"), semQuery("Camera")}
	assertStoresEqual(t, st, rec, now, queries)

	// The recovered subscription must still notify — including its
	// payload, which only survives through the log.
	adv := walAdvert(walGen.New(), "urn:svc:fresh", "Radar", 1, time.Minute)
	_, notes, err := rec.Publish(adv, now)
	if err != nil {
		t.Fatal(err)
	}
	if len(notes) != 1 || notes[0].SubID != subID || notes[0].NotifyAddr != "lan0/notify" {
		t.Fatalf("recovered subscription did not notify: %v", notes)
	}
}

func TestWALTornAndTruncatedTail(t *testing.T) {
	for _, tc := range []struct {
		name    string
		mangle  func(t *testing.T, seg string)
		wantLen int
	}{
		{
			name: "truncated-mid-frame",
			mangle: func(t *testing.T, seg string) {
				info, err := os.Stat(seg)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.Truncate(seg, info.Size()-3); err != nil {
					t.Fatal(err)
				}
			},
			wantLen: 9, // the last record's frame is cut short
		},
		{
			name: "garbage-appended",
			mangle: func(t *testing.T, seg string) {
				f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
				if err != nil {
					t.Fatal(err)
				}
				defer f.Close()
				if _, err := f.Write([]byte("\xde\xad\xbe\xef torn tail garbage")); err != nil {
					t.Fatal(err)
				}
			},
			wantLen: 10, // every real record survives, the garbage is dropped
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			mk := walFactory(t)
			clock := func() time.Time { return t0 }
			st, w, _, err := Recover(WALConfig{Dir: dir, SnapshotEvery: -1, NewStore: mk, Now: clock})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 10; i++ {
				adv := walAdvert(walGen.New(), fmt.Sprintf("urn:svc:%d", i), "Radar", 1, time.Hour)
				if _, _, err := st.Publish(adv, t0); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
			if err != nil || len(segs) == 0 {
				t.Fatalf("no segments: %v", err)
			}
			tc.mangle(t, segs[len(segs)-1])

			rec, w2, stats, err := Recover(WALConfig{Dir: dir, SnapshotEvery: -1, NewStore: mk, Now: clock})
			if err != nil {
				t.Fatal(err)
			}
			defer w2.Close()
			if stats.TornFrames != 1 {
				t.Fatalf("TornFrames = %d, want 1", stats.TornFrames)
			}
			if rec.Len() != tc.wantLen {
				t.Fatalf("recovered %d adverts, want %d", rec.Len(), tc.wantLen)
			}
			// The log stays appendable after a torn tail: new mutations
			// land in a fresh segment past the damage.
			adv := walAdvert(walGen.New(), "urn:svc:post", "Camera", 1, time.Hour)
			if _, _, err := rec.Publish(adv, t0); err != nil {
				t.Fatal(err)
			}
			if err := w2.Close(); err != nil {
				t.Fatal(err)
			}
			rec2, w3, _, err := Recover(WALConfig{Dir: dir, SnapshotEvery: -1, NewStore: mk, Now: clock})
			if err != nil {
				t.Fatal(err)
			}
			defer w3.Close()
			if rec2.Len() != tc.wantLen+1 {
				t.Fatalf("after post-tear publish: %d adverts, want %d", rec2.Len(), tc.wantLen+1)
			}
		})
	}
}

// TestWALSnapshotTailEquivalence is the property test: a randomized
// mutation history with automatic and forced compactions must recover
// to a store observationally identical to the live one — same adverts,
// deadlines, subscriptions, and bit-identical Evaluate results.
func TestWALSnapshotTailEquivalence(t *testing.T) {
	cats := []string{"Radar", "Camera", "Sensor", "Device", "Track"}
	queries := make([][]byte, len(cats))
	for i, cat := range cats {
		queries[i] = semQuery(cat)
	}
	for _, seed := range []int64{1, 7, 42, 20260808} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			mk := walFactory(t)
			clock := t0
			nowFn := func() time.Time { return clock }
			st, w, _, err := Recover(WALConfig{Dir: dir, SnapshotEvery: 64, NewStore: mk, Now: nowFn})
			if err != nil {
				t.Fatal(err)
			}

			type liveAdv struct {
				id      uuid.UUID
				svc     string
				version uint64
			}
			var advs []liveAdv
			var subIDs []uuid.UUID
			for i := 0; i < 1200; i++ {
				clock = clock.Add(time.Duration(rng.Intn(400)) * time.Millisecond)
				switch op := rng.Intn(12); {
				case op < 5: // fresh publish
					a := liveAdv{id: walGen.New(), svc: fmt.Sprintf("urn:svc:%d-%d", seed, i), version: 1}
					adv := walAdvert(a.id, a.svc, cats[rng.Intn(len(cats))], 1, time.Duration(1+rng.Intn(20))*time.Second)
					if _, _, err := st.Publish(adv, clock); err != nil {
						t.Fatal(err)
					}
					advs = append(advs, a)
				case op < 7 && len(advs) > 0: // version update of a known ID
					a := &advs[rng.Intn(len(advs))]
					a.version++
					adv := walAdvert(a.id, a.svc, cats[rng.Intn(len(cats))], a.version, time.Duration(1+rng.Intn(20))*time.Second)
					if _, _, err := st.Publish(adv, clock); err != nil {
						t.Fatal(err)
					}
				case op == 7 && len(advs) > 0: // supersede: same service, new ID
					old := advs[rng.Intn(len(advs))]
					a := liveAdv{id: walGen.New(), svc: old.svc, version: old.version + 1}
					adv := walAdvert(a.id, a.svc, cats[rng.Intn(len(cats))], a.version, time.Duration(1+rng.Intn(20))*time.Second)
					if _, _, err := st.Publish(adv, clock); err != nil {
						t.Fatal(err)
					}
					advs = append(advs, a)
				case op == 8 && len(advs) > 0:
					st.Renew(advs[rng.Intn(len(advs))].id, clock)
				case op == 9 && len(advs) > 0:
					st.Remove(advs[rng.Intn(len(advs))].id)
				case op == 10:
					if rng.Intn(3) == 0 && len(subIDs) > 0 {
						st.Unsubscribe(subIDs[rng.Intn(len(subIDs))])
					} else {
						id := walGen.New()
						var exp time.Time
						if rng.Intn(2) == 0 {
							exp = clock.Add(time.Duration(1+rng.Intn(30)) * time.Second)
						}
						if _, err := st.Subscribe(describe.KindSemantic, queries[rng.Intn(len(queries))], "lan0/n", id, exp); err != nil {
							t.Fatal(err)
						}
						subIDs = append(subIDs, id)
					}
				default:
					st.ExpireThrough(clock)
					st.PruneSubscriptions(clock)
				}
				if rng.Intn(200) == 0 {
					if err := w.Snapshot(); err != nil {
						t.Fatal(err)
					}
				}
			}
			// Purge through the final clock on the live side too, so the
			// boot sweep at recovery has nothing left to diverge on.
			st.ExpireThrough(clock)
			st.PruneSubscriptions(clock)
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}

			rec, w2, stats, err := Recover(WALConfig{Dir: dir, SnapshotEvery: 64, NewStore: mk, Now: nowFn})
			if err != nil {
				t.Fatal(err)
			}
			defer w2.Close()
			if stats.SnapshotLSN == 0 {
				t.Fatal("history never compacted; SnapshotEvery not exercised")
			}
			assertStoresEqual(t, st, rec, clock, queries)
		})
	}
}

// TestWALCrashDuringPublishStorm simulates kill -9 mid-storm: the WAL
// descriptor is closed with buffered frames unflushed while concurrent
// publishers are mid-flight. Every publish that was acknowledged before
// the crash must recover with its exact remaining lease; unacknowledged
// ones may or may not survive.
func TestWALCrashDuringPublishStorm(t *testing.T) {
	dir := t.TempDir()
	mk := walFactory(t)
	clock := func() time.Time { return t0 }
	st, w, _, err := Recover(WALConfig{Dir: dir, SnapshotEvery: 256, NewStore: mk, Now: clock})
	if err != nil {
		t.Fatal(err)
	}

	type acked struct {
		id       uuid.UUID
		deadline time.Time
	}
	var mu sync.Mutex
	var ok []acked
	var wg sync.WaitGroup
	for worker := 0; worker < 8; worker++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			gen := uuid.NewGenerator(uint64(9000 + worker))
			for i := 0; ; i++ {
				id := gen.New()
				now := t0.Add(time.Duration(worker*10000+i) * time.Millisecond)
				adv := walAdvert(id, fmt.Sprintf("urn:svc:%d-%d", worker, i), "Radar", 1, 5*time.Minute)
				granted, _, err := st.Publish(adv, now)
				if err != nil {
					return // the crash hit; everything before was acked
				}
				mu.Lock()
				ok = append(ok, acked{id: id, deadline: now.Add(granted)})
				mu.Unlock()
			}
		}(worker)
	}
	time.Sleep(5 * time.Millisecond)
	w.crash()
	wg.Wait()
	if len(ok) == 0 {
		t.Fatal("no publishes were acknowledged before the crash")
	}

	rec, w2, stats, err := Recover(WALConfig{Dir: dir, SnapshotEvery: 256, NewStore: mk, Now: clock})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	t.Logf("acked %d publishes; recovered %d adverts (%d replayed, %d torn)",
		len(ok), stats.Adverts, stats.Replayed, stats.TornFrames)
	for _, a := range ok {
		deadline, has := rec.LeaseDeadline(a.id)
		if !has {
			t.Fatalf("acked advert %v lost in the crash", a.id)
		}
		if !deadline.Equal(a.deadline) {
			t.Fatalf("advert %v recovered with deadline %v, want %v", a.id, deadline, a.deadline)
		}
	}
}

// TestWALPublishDuringSnapshot races live publishes against forced
// compactions; run under -race in CI. Compaction must neither block nor
// corrupt the writers, and the final recovery must match the live
// store exactly.
func TestWALPublishDuringSnapshot(t *testing.T) {
	dir := t.TempDir()
	mk := walFactory(t)
	clock := func() time.Time { return t0 }
	st, w, _, err := Recover(WALConfig{Dir: dir, SnapshotEvery: -1, NewStore: mk, Now: clock})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for worker := 0; worker < 4; worker++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			gen := uuid.NewGenerator(uint64(9100 + worker))
			for i := 0; i < 300; i++ {
				adv := walAdvert(gen.New(), fmt.Sprintf("urn:svc:%d-%d", worker, i), "Camera", 1, time.Hour)
				if _, _, err := st.Publish(adv, t0.Add(time.Duration(i)*time.Millisecond)); err != nil {
					t.Error(err)
					return
				}
			}
		}(worker)
	}
	for i := 0; i < 4; i++ {
		if err := w.Snapshot(); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if err := w.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	rec, w2, stats, err := Recover(WALConfig{Dir: dir, SnapshotEvery: -1, NewStore: mk, Now: clock})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if rec.Len() != 1200 {
		t.Fatalf("recovered %d adverts, want 1200", rec.Len())
	}
	if stats.SnapshotAdverts == 0 {
		t.Fatal("final snapshot captured nothing")
	}
	assertStoresEqual(t, st, rec, t0, [][]byte{semQuery("Camera"), semQuery("Device")})
}

// TestWALSnapshotCompaction checks that compaction retires sealed
// segments and old snapshots, and that recovery prefers the snapshot
// over a full log replay.
func TestWALSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	mk := walFactory(t)
	clock := func() time.Time { return t0 }
	st, w, _, err := Recover(WALConfig{Dir: dir, SnapshotEvery: -1, NewStore: mk, Now: clock})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		adv := walAdvert(walGen.New(), fmt.Sprintf("urn:svc:%d", i), "Radar", 1, time.Hour)
		if _, _, err := st.Publish(adv, t0); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := w.Snapshot(); err != nil { // idempotent when nothing changed
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		adv := walAdvert(walGen.New(), fmt.Sprintf("urn:svc:tail%d", i), "Camera", 1, time.Hour)
		if _, _, err := st.Publish(adv, t0); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if len(snaps) != 1 {
		t.Fatalf("want exactly one snapshot, have %v", snaps)
	}
	rec, w2, stats, err := Recover(WALConfig{Dir: dir, SnapshotEvery: -1, NewStore: mk, Now: clock})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if stats.SnapshotAdverts != 100 {
		t.Fatalf("SnapshotAdverts = %d, want 100", stats.SnapshotAdverts)
	}
	if stats.Replayed != 50 {
		t.Fatalf("Replayed = %d, want 50 (the post-snapshot tail only)", stats.Replayed)
	}
	if rec.Len() != 150 {
		t.Fatalf("recovered %d adverts, want 150", rec.Len())
	}
}

// TestWALShardedRoundTrip drives the sharded append path through one of
// every record type — including an expiry sweep that actually purges,
// whose replay order against the re-publish that follows it is exactly
// what the LSN merge at drain time must preserve across stripes — and
// recovers the directory in single-stream mode, proving the two append
// modes share one on-disk format.
func TestWALShardedRoundTrip(t *testing.T) {
	dir := t.TempDir()
	mk := walFactory(t)
	now := t0
	st, w, _, err := Recover(WALConfig{Dir: dir, SnapshotEvery: -1, NewStore: mk, AppendStreams: 4, Now: func() time.Time { return now }})
	if err != nil {
		t.Fatal(err)
	}
	cats := []string{"Radar", "Camera", "Sensor", "Track"}
	ids := make([]uuid.UUID, 24)
	for i := range ids {
		ids[i] = walGen.New()
		lease := 5 * time.Minute
		if i%3 == 0 {
			lease = 2 * time.Second // victims of the sweep below
		}
		adv := walAdvert(ids[i], fmt.Sprintf("urn:svc:sh%d", i), cats[i%len(cats)], 1, lease)
		if _, _, err := st.Publish(adv, now); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := st.Renew(ids[4], now.Add(time.Second)); !ok {
		t.Fatal("renew failed")
	}
	if !st.Remove(ids[7]) {
		t.Fatal("remove failed")
	}
	subID := walGen.New()
	if _, err := st.Subscribe(describe.KindSemantic, semQuery("Sensor"), "lan0/notify", subID, now.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	// Purge the short leases, then re-publish one victim at the same
	// version: legal only because the sweep came first. A replay that
	// reordered the sweep across stripes would reject it as stale.
	st.ExpireThrough(now.Add(time.Minute))
	back := walAdvert(ids[0], "urn:svc:sh0", "Radar", 1, 5*time.Minute)
	if _, _, err := st.Publish(back, now.Add(2*time.Minute)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	rec, w2, stats, err := Recover(WALConfig{Dir: dir, SnapshotEvery: -1, NewStore: mk, Now: func() time.Time { return now.Add(2 * time.Minute) }})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if stats.Replayed == 0 || stats.TornFrames != 0 {
		t.Fatalf("unexpected recovery stats: %+v", stats)
	}
	queries := [][]byte{semQuery("Radar"), semQuery("Camera"), semQuery("Sensor"), semQuery("Track")}
	assertStoresEqual(t, st, rec, now.Add(2*time.Minute), queries)
}

// TestWALShardedCrashStorm hammers the sharded append path from many
// goroutines spread across every registry stripe, kills the WAL
// mid-storm, and checks the two crash invariants: every acknowledged
// publish survives with its exact lease deadline, and the interleaved
// per-stripe staging never corrupts the log (at most the one torn tail
// a kill can leave).
func TestWALShardedCrashStorm(t *testing.T) {
	dir := t.TempDir()
	mk := walFactory(t)
	clock := func() time.Time { return t0 }
	st, w, _, err := Recover(WALConfig{Dir: dir, SnapshotEvery: 256, NewStore: mk, AppendStreams: 8, Now: clock})
	if err != nil {
		t.Fatal(err)
	}
	type acked struct {
		id       uuid.UUID
		deadline time.Time
	}
	var mu sync.Mutex
	var ok []acked
	var wg sync.WaitGroup
	for worker := 0; worker < 8; worker++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			gen := uuid.NewGenerator(uint64(9100 + worker))
			for i := 0; ; i++ {
				id := gen.New()
				now := t0.Add(time.Duration(worker*10000+i) * time.Millisecond)
				adv := walAdvert(id, fmt.Sprintf("urn:svc:s%d-%d", worker, i), "Radar", 1, 5*time.Minute)
				granted, _, err := st.Publish(adv, now)
				if err != nil {
					return
				}
				mu.Lock()
				ok = append(ok, acked{id: id, deadline: now.Add(granted)})
				mu.Unlock()
			}
		}(worker)
	}
	time.Sleep(5 * time.Millisecond)
	w.crash()
	wg.Wait()
	if len(ok) == 0 {
		t.Fatal("no publishes were acknowledged before the crash")
	}

	rec, w2, stats, err := Recover(WALConfig{Dir: dir, SnapshotEvery: 256, NewStore: mk, AppendStreams: 8, Now: clock})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if stats.TornFrames > 1 {
		t.Fatalf("TornFrames = %d after a single kill, want at most 1", stats.TornFrames)
	}
	t.Logf("acked %d publishes; recovered %d adverts (%d replayed, %d torn)",
		len(ok), stats.Adverts, stats.Replayed, stats.TornFrames)
	for _, a := range ok {
		deadline, has := rec.LeaseDeadline(a.id)
		if !has {
			t.Fatalf("acked advert %v lost in the crash", a.id)
		}
		if !deadline.Equal(a.deadline) {
			t.Fatalf("advert %v recovered with deadline %v, want %v", a.id, deadline, a.deadline)
		}
	}
}

// TestWALShardedLSNOrder pins the sharded append path's one on-disk
// invariant: the merged log is in strict LSN order even when appenders
// race on a shared stream — the config registryd permits where fewer
// append streams than registry stripes route concurrent mutations to
// the same stream. Regression test for drawing the LSN outside the
// stream mutex, which let racing appenders stage frames inverted —
// replaying an expiry sweep ahead of a renewal it had observed and
// silently dropping the renewed advert. Run under -race in CI.
func TestWALShardedLSNOrder(t *testing.T) {
	dir := t.TempDir()
	mk := walFactory(t)
	clock := func() time.Time { return t0 }
	_, w, _, err := Recover(WALConfig{Dir: dir, SnapshotEvery: -1, NewStore: mk, AppendStreams: 2, Now: clock})
	if err != nil {
		t.Fatal(err)
	}
	// Hammer the append API directly — no store work between appends, so
	// appenders collide on the stream constantly. Every renew ID is
	// pinned to stream 0 (streamKey & mask == 0), the worst case the
	// storm can produce; a sweeper interleaves global records.
	var pubs sync.WaitGroup
	for worker := 0; worker < 8; worker++ {
		pubs.Add(1)
		go func(worker int) {
			defer pubs.Done()
			gen := uuid.NewGenerator(uint64(9300 + worker))
			for i := 0; i < 50000; i++ {
				id := gen.New()
				id[3] &^= 1 // stream 0 under mask 1
				w.AppendRenew(id, t0.Add(time.Duration(i)*time.Millisecond))
			}
		}(worker)
	}
	stop := make(chan struct{})
	var sweep sync.WaitGroup
	sweep.Add(1)
	go func() {
		defer sweep.Done()
		for j := 0; ; j++ {
			select {
			case <-stop:
				return
			default:
			}
			w.AppendExpire(t0.Add(time.Duration(j) * time.Millisecond))
		}
	}()
	pubs.Wait()
	close(stop)
	sweep.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	_, segs, err := scanWALDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var last uint64
	frames := 0
	for _, seg := range segs {
		f, err := os.Open(seg.path)
		if err != nil {
			t.Fatal(err)
		}
		br := bufio.NewReaderSize(f, 1<<20)
		for {
			frame, torn, rerr := readFrame(br)
			if rerr == io.EOF {
				break
			}
			if torn {
				t.Fatalf("%s: torn frame after clean close", filepath.Base(seg.path))
			}
			if rerr != nil {
				t.Fatal(rerr)
			}
			lsn, _ := binary.Uvarint(frame[1:])
			if lsn <= last {
				t.Fatalf("%s: LSN %d staged after %d — log out of order", filepath.Base(seg.path), lsn, last)
			}
			last = lsn
			frames++
		}
		f.Close()
	}
	if frames == 0 {
		t.Fatal("no frames written")
	}
}

// TestWALShardedSnapshot races sharded publishes against the background
// rotation trigger and a forced compaction, then recovers from the
// snapshot plus tail. Run under -race in CI.
func TestWALShardedSnapshot(t *testing.T) {
	dir := t.TempDir()
	mk := walFactory(t)
	clock := func() time.Time { return t0 }
	st, w, _, err := Recover(WALConfig{Dir: dir, SnapshotEvery: 64, NewStore: mk, AppendStreams: 4, Now: clock})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for worker := 0; worker < 4; worker++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			gen := uuid.NewGenerator(uint64(9200 + worker))
			for i := 0; i < 100; i++ {
				adv := walAdvert(gen.New(), fmt.Sprintf("urn:svc:n%d-%d", worker, i), "Camera", 1, time.Hour)
				if _, _, err := st.Publish(adv, t0); err != nil {
					t.Error(err)
					return
				}
			}
		}(worker)
	}
	wg.Wait()
	if err := w.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rec, w2, stats, err := Recover(WALConfig{Dir: dir, SnapshotEvery: 64, NewStore: mk, AppendStreams: 4, Now: clock})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if stats.SnapshotLSN == 0 {
		t.Fatal("forced snapshot not used by recovery")
	}
	if rec.Len() != 400 {
		t.Fatalf("recovered %d adverts, want 400", rec.Len())
	}
	assertStoresEqual(t, st, rec, t0, [][]byte{semQuery("Camera")})
}
