package node

import (
	"encoding/binary"
	"math/rand"
	"sort"
	"time"

	"semdisco/internal/describe"
	"semdisco/internal/discovery"
	"semdisco/internal/match"
	"semdisco/internal/runtime"
	"semdisco/internal/transport"
	"semdisco/internal/uuid"
	"semdisco/internal/wire"
)

// ClientConfig tunes a client node.
type ClientConfig struct {
	// QueryTimeout bounds one attempt against one registry; default
	// scales with TTL: 300 ms × (TTL+2).
	QueryTimeout time.Duration
	// MaxAttempts bounds registry failovers per query; default 3.
	MaxAttempts int
	// RetryBackoff is the base delay between a query timeout and the
	// next attempt; successive retries back off exponentially with
	// per-client jitter, so the clients of a dead registry do not form
	// a synchronized retry storm. Default 100 ms.
	RetryBackoff time.Duration
	// RetryBackoffMax caps the exponential backoff. Default 2 s.
	RetryBackoffMax time.Duration
	// FallbackWindow is how long decentralized fallback collects
	// responses; default 1 s.
	FallbackWindow time.Duration
	// Models, when set, lets the client rank decentralized-fallback
	// results with the shared match.CompareQuality ordering before
	// BestOnly/MaxResults truncation — the same best-first rule
	// registries apply. Without models, fallback results keep
	// (deduplicated) arrival order.
	Models *describe.Registry
	// FreshResults marks every query from this client NoCache: registry
	// result caches and gateway remote caches are bypassed, trading
	// latency and WAN bandwidth for guaranteed freshness. Per-query
	// override: QuerySpec.NoCache.
	FreshResults bool
	// Bootstrap configures registry discovery.
	Bootstrap discovery.Config
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 3
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 100 * time.Millisecond
	}
	if c.RetryBackoffMax == 0 {
		c.RetryBackoffMax = 2 * time.Second
	}
	if c.FallbackWindow == 0 {
		c.FallbackWindow = time.Second
	}
	return c
}

// QuerySpec describes one discovery request.
type QuerySpec struct {
	// Kind and Payload select and parameterize the description model.
	Kind    describe.Kind
	Payload []byte
	// MaxResults / BestOnly delegate response control to the registry.
	MaxResults int
	BestOnly   bool
	// TTL bounds registry-network forwarding (0 = local registry only).
	TTL uint8
	// Strategy selects the forwarding scheme. StrategyExpandingRing is
	// driven by the client: it reissues with growing TTL until results
	// arrive or TTL reaches the configured maximum.
	Strategy wire.Strategy
	// Walkers sets the walker count for random walks; default 2.
	Walkers uint8
	// NoCache demands a fresh evaluation for this query, bypassing
	// registry and gateway result caches along the path.
	NoCache bool
	// Domain pins the query to a federation namespace: gateways resolve
	// it through the domain directory instead of flooding the WAN. Empty
	// keeps the flat fan-out.
	Domain string
}

// Via reports which mechanism produced a query's results.
type Via uint8

// Result provenance values.
const (
	// ViaNone means the query produced nothing by any mechanism.
	ViaNone Via = iota
	// ViaRegistry means a registry answered.
	ViaRegistry
	// ViaFallback means decentralized LAN discovery answered.
	ViaFallback
)

// String names the provenance.
func (v Via) String() string {
	switch v {
	case ViaRegistry:
		return "registry"
	case ViaFallback:
		return "fallback"
	default:
		return "none"
	}
}

// QueryResult is delivered to the query callback.
type QueryResult struct {
	Adverts []wire.Advertisement
	Via     Via
	// Attempts counts registry attempts made (failovers + 1).
	Attempts int
}

type pendingClient struct {
	spec     QuerySpec
	cb       func(QueryResult)
	registry wire.NodeID
	attempts int
	ringTTL  uint8
	// qid is the query ID of the in-flight attempt (or fallback); the
	// pending map holds exactly one entry per query, keyed by it. The
	// entry stays alive through backoff waits so Stop can cancel the
	// retry timer and a slow registry's late answer is still accepted.
	qid      uuid.UUID
	timer    transport.CancelFunc
	fallback bool
	// collected accumulates advertisements across attempts and phases,
	// deduplicated by advertisement UUID (retries, duplicated
	// datagrams, and unicast+multicast overlap all produce repeats).
	collected  []wire.Advertisement
	seenAdvert map[uuid.UUID]bool
}

// add appends an advertisement unless its UUID was already collected.
func (p *pendingClient) add(a wire.Advertisement) {
	if p.seenAdvert[a.ID] {
		nDupAdverts.Inc()
		return
	}
	p.seenAdvert[a.ID] = true
	p.collected = append(p.collected, a)
}

// Client is a service-consumer node.
type Client struct {
	env     *runtime.Env
	cfg     ClientConfig
	boot    *discovery.Bootstrapper
	pending map[uuid.UUID]*pendingClient
	artPend map[uuid.UUID]*artifactWait
	subs    map[uuid.UUID]*Subscription
	// rng drives backoff jitter; seeded from the node ID so delays are
	// deterministic per node yet desynchronized across nodes.
	rng     *rand.Rand
	stopped bool
}

// Subscription is a standing query: the callback fires for every
// matching advertisement published at the subscribed registry from now
// on. The client renews the subscription lease automatically and
// re-subscribes after registry failover.
type Subscription struct {
	// ID is the subscription's UUID (the QueryID of its notifications).
	ID uuid.UUID

	c        *Client
	spec     QuerySpec
	lease    time.Duration
	cb       func(wire.Advertisement)
	registry wire.NodeID
	timer    transport.CancelFunc
	missed   int
	canceled bool
}

// Cancel withdraws the subscription.
func (s *Subscription) Cancel() {
	if s.canceled {
		return
	}
	s.canceled = true
	if s.timer != nil {
		s.timer()
	}
	delete(s.c.subs, s.ID)
	if reg, ok := s.c.boot.Current(); ok {
		s.c.env.Send(transport.Addr(reg.Addr), wire.Unsubscribe{SubID: s.ID})
	}
}

type artifactWait struct {
	iri   string
	cb    func([]byte, bool)
	put   bool
	putCB func(bool)
	timer transport.CancelFunc
}

// NewClient creates a client node.
func NewClient(env *runtime.Env, cfg ClientConfig) *Client {
	return &Client{
		env:     env,
		cfg:     cfg.withDefaults(),
		boot:    discovery.New(env, cfg.Bootstrap),
		pending: make(map[uuid.UUID]*pendingClient),
		artPend: make(map[uuid.UUID]*artifactWait),
		subs:    make(map[uuid.UUID]*Subscription),
		rng:     rand.New(rand.NewSource(int64(binary.BigEndian.Uint64(env.ID[:8])))),
	}
}

// Subscribe registers a standing query at the current registry; cb
// fires once per matching future advertisement. The lease (default
// 60 s) renews automatically at one-third intervals, and a dead
// registry triggers failover re-subscription. Returns nil when no
// registry is known (subscriptions need one; there is no decentralized
// subscription fallback).
func (c *Client) Subscribe(spec QuerySpec, leaseDur time.Duration, cb func(wire.Advertisement)) *Subscription {
	if _, ok := c.boot.Current(); !ok {
		return nil
	}
	if leaseDur == 0 {
		leaseDur = time.Minute
	}
	s := &Subscription{ID: c.env.NewUUID(), c: c, spec: spec, lease: leaseDur, cb: cb}
	c.subs[s.ID] = s
	c.sendSubscribe(s)
	return s
}

func (c *Client) sendSubscribe(s *Subscription) {
	if c.stopped || s.canceled {
		return
	}
	reg, ok := c.boot.Current()
	if !ok {
		// Registry-less: retry when one appears (piggyback on probing).
		s.timer = c.env.Clock.After(c.cfg.FallbackWindow, func() { c.sendSubscribe(s) })
		return
	}
	s.registry = reg.ID
	c.env.Send(transport.Addr(reg.Addr), wire.Subscribe{
		SubID:       s.ID,
		Kind:        s.spec.Kind,
		Payload:     s.spec.Payload,
		NotifyAddr:  string(c.env.Addr()),
		LeaseMillis: uint64(s.lease / time.Millisecond),
	})
	// Ack timeout: no answer means the registry is gone.
	s.timer = c.env.Clock.After(2*time.Second, func() {
		s.missed++
		c.boot.MarkDead(s.registry)
		c.sendSubscribe(s)
	})
}

func (c *Client) onSubscribeAck(b *wire.SubscribeAck) {
	s, ok := c.subs[b.SubID]
	if !ok || s.canceled {
		return
	}
	if s.timer != nil {
		s.timer()
	}
	s.missed = 0
	if !b.OK {
		c.env.Tracef("subscription rejected: %s", b.Error)
		delete(c.subs, b.SubID)
		return
	}
	granted := time.Duration(b.LeaseMillis) * time.Millisecond
	renewIn := granted / 3
	if renewIn <= 0 {
		renewIn = time.Second
	}
	s.timer = c.env.Clock.After(renewIn, func() { c.sendSubscribe(s) })
}

// Bootstrapper exposes the discovery state.
func (c *Client) Bootstrapper() *discovery.Bootstrapper { return c.boot }

// Start begins registry discovery.
func (c *Client) Start() { c.boot.Start() }

// Stop cancels all in-flight operations without invoking callbacks.
func (c *Client) Stop() {
	c.stopped = true
	for _, p := range c.pending {
		if p.timer != nil {
			p.timer()
		}
	}
	for _, a := range c.artPend {
		if a.timer != nil {
			a.timer()
		}
	}
	for _, s := range c.subs {
		if s.timer != nil {
			s.timer()
		}
	}
	c.boot.Stop()
}

// Query submits a discovery request; cb fires exactly once with the
// outcome. The client transparently retries against alternate
// registries and finally falls back to decentralized LAN discovery.
func (c *Client) Query(spec QuerySpec, cb func(QueryResult)) {
	if spec.Walkers == 0 {
		spec.Walkers = 2
	}
	nQueries.Inc()
	p := &pendingClient{spec: spec, cb: cb, seenAdvert: make(map[uuid.UUID]bool)}
	if spec.Strategy == wire.StrategyExpandingRing {
		p.ringTTL = 1
	} else {
		p.ringTTL = spec.TTL
	}
	c.attempt(p)
}

func (c *Client) attemptTimeout(spec QuerySpec, ttl uint8) time.Duration {
	if c.cfg.QueryTimeout > 0 {
		return c.cfg.QueryTimeout
	}
	_ = spec
	return 300 * time.Millisecond * time.Duration(int(ttl)+2)
}

// attempt issues (or re-issues) the query against the current registry.
// Every attempt uses a fresh query ID: registries deduplicate by query
// ID, so retries must not be mistaken for forwarding loops.
func (c *Client) attempt(p *pendingClient) {
	if c.stopped {
		return
	}
	reg, ok := c.boot.Current()
	if !ok || p.attempts >= c.cfg.MaxAttempts {
		c.startFallback(p)
		return
	}
	p.attempts++
	p.registry = reg.ID
	delete(c.pending, p.qid) // retire the previous attempt's ID
	qid := c.env.NewUUID()
	p.qid = qid
	c.pending[qid] = p
	q := wire.Query{
		QueryID:    qid,
		Kind:       p.spec.Kind,
		Payload:    p.spec.Payload,
		MaxResults: uint16(p.spec.MaxResults),
		BestOnly:   p.spec.BestOnly,
		TTL:        p.ringTTL,
		Strategy:   p.spec.Strategy,
		Walkers:    p.spec.Walkers,
		ReplyAddr:  string(c.env.Addr()),
		NoCache:    p.spec.NoCache || c.cfg.FreshResults,
		Domain:     p.spec.Domain,
	}
	c.env.Send(transport.Addr(reg.Addr), q)
	p.timer = c.env.Clock.After(c.attemptTimeout(p.spec, p.ringTTL), func() {
		if c.stopped {
			return
		}
		// No answer: declare the registry dead (§4.5) and fail over —
		// after a jittered exponential backoff, so the clients of a dead
		// registry spread their retries instead of re-issuing instantly
		// in lockstep. The pending entry stays registered: a slow
		// registry's late answer during the wait still completes the
		// query and cancels the retry.
		nQueryFailovers.Inc()
		c.boot.MarkDead(p.registry)
		delay := c.retryDelay(p.attempts)
		nBackoffScheduled.Inc()
		nBackoffDelay.Observe(int64(delay / time.Microsecond))
		p.timer = c.env.Clock.After(delay, func() { c.attempt(p) })
	})
}

// retryDelay computes the jittered exponential backoff after the given
// number of attempts: base×2^(attempts-1) capped at the maximum, then
// drawn uniformly from [d/2, d] so concurrent clients desynchronize but
// a retry never fires immediately.
func (c *Client) retryDelay(attempts int) time.Duration {
	d := c.cfg.RetryBackoff
	for i := 1; i < attempts && d < c.cfg.RetryBackoffMax; i++ {
		d *= 2
	}
	if d > c.cfg.RetryBackoffMax {
		d = c.cfg.RetryBackoffMax
	}
	half := d / 2
	return half + time.Duration(c.rng.Int63n(int64(half)+1))
}

// startFallback switches to decentralized LAN discovery: multicast the
// query, collect direct answers from service nodes for the window.
func (c *Client) startFallback(p *pendingClient) {
	if c.stopped {
		return
	}
	nQueryFallbacks.Inc()
	p.fallback = true
	delete(c.pending, p.qid) // retire the registry-phase ID
	qid := c.env.NewUUID()
	p.qid = qid
	c.pending[qid] = p
	c.env.Multicast(wire.PeerQuery{
		QueryID:   qid,
		Kind:      p.spec.Kind,
		Payload:   p.spec.Payload,
		ReplyAddr: string(c.env.Addr()),
	})
	p.timer = c.env.Clock.After(c.cfg.FallbackWindow, func() {
		if c.stopped {
			return
		}
		delete(c.pending, qid)
		via := ViaFallback
		if len(p.collected) == 0 {
			via = ViaNone
		}
		// Rank before truncating: arrival order reflects network timing,
		// not match quality, so BestOnly/MaxResults must cut the
		// quality-sorted tail (same rule the registries apply).
		adverts := c.rankAdverts(p.spec, p.collected)
		if p.spec.BestOnly && len(adverts) > 1 {
			adverts = adverts[:1]
		} else if p.spec.MaxResults > 0 && len(adverts) > p.spec.MaxResults {
			adverts = adverts[:p.spec.MaxResults]
		}
		p.cb(QueryResult{Adverts: adverts, Via: via, Attempts: p.attempts})
	})
}

// rankAdverts sorts advertisements best-first with the shared
// match.CompareQuality comparator, evaluating each advert against the
// query under the configured description models. Adverts that cannot be
// decoded or evaluated rank last; ties break on service key then
// advertisement ID for a deterministic total order. Without models the
// input order is preserved.
func (c *Client) rankAdverts(spec QuerySpec, adverts []wire.Advertisement) []wire.Advertisement {
	if c.cfg.Models == nil || len(adverts) < 2 {
		return adverts
	}
	model, ok := c.cfg.Models.Model(spec.Kind)
	if !ok {
		return adverts
	}
	q, err := model.DecodeQuery(spec.Payload)
	if err != nil {
		return adverts
	}
	type ranked struct {
		adv wire.Advertisement
		ev  describe.Evaluation
		ok  bool
		key string
	}
	rs := make([]ranked, len(adverts))
	for i, a := range adverts {
		rs[i] = ranked{adv: a}
		if a.Kind != spec.Kind {
			continue
		}
		d, err := model.DecodeDescription(a.Payload)
		if err != nil {
			continue
		}
		rs[i].ev = model.Evaluate(q, d)
		rs[i].ok = true
		rs[i].key = d.ServiceKey()
	}
	sort.Slice(rs, func(i, j int) bool {
		a, b := rs[i], rs[j]
		if a.ok != b.ok {
			return a.ok
		}
		if cq := match.CompareQuality(a.ev.Degree, a.ev.Score, b.ev.Degree, b.ev.Score); cq != 0 {
			return cq < 0
		}
		if a.key != b.key {
			return a.key < b.key
		}
		return uuid.Compare(a.adv.ID, b.adv.ID) < 0
	})
	out := make([]wire.Advertisement, len(rs))
	for i, r := range rs {
		out[i] = r.adv
	}
	return out
}

// FetchArtifact retrieves an ontology/schema document from the registry
// network's artifact repository (§4.6).
func (c *Client) FetchArtifact(iri string, timeout time.Duration, cb func(data []byte, ok bool)) {
	reg, okReg := c.boot.Current()
	if !okReg {
		cb(nil, false)
		return
	}
	if timeout == 0 {
		timeout = 2 * time.Second
	}
	id := c.env.NewUUID()
	w := &artifactWait{iri: iri, cb: cb}
	c.artPend[id] = w
	c.env.Send(transport.Addr(reg.Addr), wire.ArtifactGet{IRI: iri})
	w.timer = c.env.Clock.After(timeout, func() {
		delete(c.artPend, id)
		cb(nil, false)
	})
}

// PutArtifact uploads a document into the current registry's artifact
// repository; cb reports the outcome.
func (c *Client) PutArtifact(iri string, data []byte, timeout time.Duration, cb func(ok bool)) {
	reg, okReg := c.boot.Current()
	if !okReg {
		cb(false)
		return
	}
	if timeout == 0 {
		timeout = 2 * time.Second
	}
	id := c.env.NewUUID()
	w := &artifactWait{iri: iri, put: true, putCB: cb}
	c.artPend[id] = w
	c.env.Send(transport.Addr(reg.Addr), wire.ArtifactPut{IRI: iri, Data: data})
	w.timer = c.env.Clock.After(timeout, func() {
		delete(c.artPend, id)
		cb(false)
	})
}

// HandleEnvelope implements runtime.Handler.
func (c *Client) HandleEnvelope(env *wire.Envelope, from transport.Addr) {
	if c.stopped {
		return
	}
	c.boot.Observe(env)
	switch b := env.Body.(type) {
	case *wire.QueryResult:
		c.onQueryResult(b)
	case *wire.ArtifactData:
		c.onArtifactData(b)
	case *wire.SubscribeAck:
		c.onSubscribeAck(b)
	case *wire.ArtifactPutAck:
		for id, w := range c.artPend {
			if w.put && w.iri == b.IRI {
				if w.timer != nil {
					w.timer()
				}
				delete(c.artPend, id)
				w.putCB(b.OK)
				return
			}
		}
	}
}

func (c *Client) onQueryResult(bp *wire.QueryResult) {
	// The decoded adverts borrow the receive buffer and are both
	// accumulated across attempts and handed to user callbacks, so
	// deep-copy once up front.
	b := *bp
	b.Adverts = wire.CloneAdverts(b.Adverts)
	// Subscription notifications reuse QueryResult with the SubID as
	// QueryID; they stream indefinitely.
	if s, ok := c.subs[b.QueryID]; ok && !s.canceled {
		for _, a := range b.Adverts {
			s.cb(a)
		}
		return
	}
	p, ok := c.pending[b.QueryID]
	if !ok {
		return
	}
	if p.fallback {
		// Collect from many service nodes until the window closes;
		// deduplicate by advertisement ID (the same service may have
		// answered the registry phase, or a duplicated datagram may
		// deliver one answer twice).
		for _, a := range b.Adverts {
			p.add(a)
		}
		return
	}
	if !b.Complete {
		for _, a := range b.Adverts {
			p.add(a)
		}
		return
	}
	if p.timer != nil {
		p.timer()
	}
	delete(c.pending, b.QueryID)
	for _, a := range b.Adverts {
		p.add(a)
	}
	adverts := p.collected
	// Expanding ring: empty result and room to grow → reissue wider.
	if len(adverts) == 0 && p.spec.Strategy == wire.StrategyExpandingRing && p.ringTTL < p.spec.TTL {
		next := p.ringTTL * 2
		if next > p.spec.TTL {
			next = p.spec.TTL
		}
		p.ringTTL = next
		p.collected = nil
		p.seenAdvert = make(map[uuid.UUID]bool)
		nQueryReissues.Inc()
		// Ring growth is a widening of the same logical query, not a
		// failover; don't count it against MaxAttempts.
		p.attempts--
		c.attempt(p)
		return
	}
	p.cb(QueryResult{Adverts: adverts, Via: ViaRegistry, Attempts: p.attempts})
}

func (c *Client) onArtifactData(b *wire.ArtifactData) {
	for id, w := range c.artPend {
		if !w.put && w.iri == b.IRI {
			if w.timer != nil {
				w.timer()
			}
			delete(c.artPend, id)
			// The document bytes are borrowed from the receive buffer;
			// the callback owns what it gets.
			w.cb(wire.CloneBytes(b.Data), b.Found)
			return
		}
	}
}
