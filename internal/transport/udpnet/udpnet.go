// Package udpnet runs the discovery protocol over real UDP sockets:
// unicast on a bound port plus optional multicast for LAN registry
// discovery (SOAP-over-UDP stands in as plain UDP datagrams; the wire
// format already carries everything the envelope needs).
//
// The protocol state machines require that handlers and timer callbacks
// never run concurrently. udpnet guarantees this by funnelling every
// received datagram and every timer through one executor goroutine per
// node — the live-network analogue of the simulator's event loop.
package udpnet

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"semdisco/internal/obs"
	"semdisco/internal/transport"
)

// Live-socket observability: datagram and byte counts in each
// direction plus executor-queue drops (the UDP analogue of a NIC ring
// overflow). Documented in OBSERVABILITY.md.
var (
	mSentPackets = obs.NewCounter("transport.udp.sent.packets", "count",
		"datagrams written to the socket (unicast + multicast)")
	mSentBytes = obs.NewCounter("transport.udp.sent.bytes", "bytes",
		"payload bytes written to the socket")
	mRecvPackets = obs.NewCounter("transport.udp.recv.packets", "count",
		"datagrams read from the sockets")
	mRecvBytes = obs.NewCounter("transport.udp.recv.bytes", "bytes",
		"payload bytes read from the sockets")
	mDrops = obs.NewCounter("transport.udp.drops", "count",
		"received datagrams dropped because the executor queue was full")
	mBatchSends = obs.NewCounter("transport.udp.batch.sendmmsg", "count",
		"sendmmsg batch-send syscalls (linux fast path)")
	mBatchRecvs = obs.NewCounter("transport.udp.batch.recvmmsg", "count",
		"recvmmsg batch-receive syscalls that returned 2+ datagrams")
)

// Config configures a UDP node.
type Config struct {
	// Bind is the unicast listen address, e.g. "127.0.0.1:0".
	Bind string
	// Multicast is the LAN discovery group, e.g. "239.77.77.77:7777".
	// Empty disables multicast (probes and beacons become no-ops, so
	// seeding is required — the WAN situation of §4.5).
	Multicast string
	// QueueLen bounds the executor queue; default 1024.
	QueueLen int
}

// Node is one live protocol endpoint. It implements transport.Iface,
// transport.Clock and transport.BatchSender.
type Node struct {
	conn   *net.UDPConn
	mconn  *net.UDPConn // multicast listener (nil when disabled)
	group  *net.UDPAddr
	addr   transport.Addr
	tasks  chan func()
	closed chan struct{}
	once   sync.Once

	mu      sync.Mutex
	handler transport.Handler

	// rmu guards the bounded destination-address resolution cache; the
	// renew/ack hot path sends to the same few peers over and over, so
	// re-resolving per datagram is pure overhead.
	rmu      sync.Mutex
	resolved map[transport.Addr]*net.UDPAddr
}

// maxResolveCache bounds the destination resolution cache.
const maxResolveCache = 1024

// resolve returns the UDP address for a destination, caching results.
func (n *Node) resolve(to transport.Addr) (*net.UDPAddr, error) {
	n.rmu.Lock()
	if a, ok := n.resolved[to]; ok {
		n.rmu.Unlock()
		return a, nil
	}
	n.rmu.Unlock()
	dst, err := net.ResolveUDPAddr("udp", string(to))
	if err != nil {
		return nil, fmt.Errorf("udpnet: destination %q: %w", to, err)
	}
	n.rmu.Lock()
	if len(n.resolved) >= maxResolveCache {
		clear(n.resolved)
	}
	n.resolved[to] = dst
	n.rmu.Unlock()
	return dst, nil
}

// Listen binds the node's sockets and starts its executor and reader
// goroutines. Call SetHandler before any traffic is expected.
func Listen(cfg Config) (*Node, error) {
	if cfg.Bind == "" {
		cfg.Bind = "127.0.0.1:0"
	}
	if cfg.QueueLen == 0 {
		cfg.QueueLen = 1024
	}
	uaddr, err := net.ResolveUDPAddr("udp", cfg.Bind)
	if err != nil {
		return nil, fmt.Errorf("udpnet: bind address: %w", err)
	}
	conn, err := net.ListenUDP("udp", uaddr)
	if err != nil {
		return nil, fmt.Errorf("udpnet: listen: %w", err)
	}
	n := &Node{
		conn:     conn,
		addr:     transport.Addr(conn.LocalAddr().String()),
		tasks:    make(chan func(), cfg.QueueLen),
		closed:   make(chan struct{}),
		resolved: make(map[transport.Addr]*net.UDPAddr),
	}
	if cfg.Multicast != "" {
		group, err := net.ResolveUDPAddr("udp", cfg.Multicast)
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("udpnet: multicast address: %w", err)
		}
		n.group = group
		// Join on all interfaces; failure (no multicast route in the
		// environment) degrades to unicast-only operation.
		if mc, err := net.ListenMulticastUDP("udp", nil, group); err == nil {
			n.mconn = mc
			go n.readLoop(mc)
		}
	}
	go n.run()
	go n.readLoop(conn)
	return n, nil
}

// MulticastReady reports whether the node joined its multicast group
// (LAN discovery available).
func (n *Node) MulticastReady() bool { return n.mconn != nil }

// SetHandler installs the datagram handler.
func (n *Node) SetHandler(h transport.Handler) {
	n.mu.Lock()
	n.handler = h
	n.mu.Unlock()
}

// run is the executor: all handlers and timers run here, serialized.
func (n *Node) run() {
	for {
		select {
		case <-n.closed:
			return
		case fn := <-n.tasks:
			fn()
		}
	}
}

func (n *Node) readLoop(conn *net.UDPConn) {
	if readLoopOS(n, conn) {
		return // the platform batch receive loop ran until close
	}
	buf := make([]byte, 64*1024)
	for {
		sz, from, err := conn.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		n.dispatch(transport.Addr(from.String()), buf[:sz])
	}
}

// dispatch copies one received datagram and hands it to the executor.
func (n *Node) dispatch(fromAddr transport.Addr, b []byte) {
	if fromAddr == n.addr {
		return // our own multicast loopback
	}
	data := make([]byte, len(b))
	copy(data, b)
	mRecvPackets.Inc()
	mRecvBytes.Add(uint64(len(b)))
	if !n.post(func() {
		n.mu.Lock()
		h := n.handler
		n.mu.Unlock()
		if h != nil {
			h(fromAddr, data)
		}
	}) {
		mDrops.Inc()
	}
}

// post enqueues onto the executor, dropping when the node is closed or
// the queue is saturated (UDP semantics: better to drop than to block
// the reader); it reports whether the task was accepted.
func (n *Node) post(fn func()) bool {
	select {
	case <-n.closed:
		return false
	case n.tasks <- fn:
		return true
	default:
		return false // queue full: drop
	}
}

// Addr implements transport.Iface.
func (n *Node) Addr() transport.Addr { return n.addr }

// errClosed is returned when sending through a closed node.
var errClosed = errors.New("udpnet: node closed")

// Unicast implements transport.Iface.
func (n *Node) Unicast(to transport.Addr, data []byte) error {
	select {
	case <-n.closed:
		return errClosed
	default:
	}
	dst, err := n.resolve(to)
	if err != nil {
		return err
	}
	_, err = n.conn.WriteToUDP(data, dst)
	if err == nil {
		mSentPackets.Inc()
		mSentBytes.Add(uint64(len(data)))
	}
	return err
}

// UnicastBatch implements transport.BatchSender: all datagrams go to
// the network in one operation — a single sendmmsg syscall on linux,
// a plain write loop elsewhere. Best-effort like Unicast.
func (n *Node) UnicastBatch(msgs []transport.Outgoing) error {
	select {
	case <-n.closed:
		return errClosed
	default:
	}
	dsts := make([]*net.UDPAddr, len(msgs))
	for i, m := range msgs {
		dst, err := n.resolve(m.To)
		if err != nil {
			return err
		}
		dsts[i] = dst
	}
	sent := writeBatchOS(n, dsts, msgs)
	// Whatever the fast path did not cover goes out one write at a time.
	for i := sent; i < len(msgs); i++ {
		if _, err := n.conn.WriteToUDP(msgs[i].Data, dsts[i]); err != nil {
			return err
		}
		mSentPackets.Inc()
		mSentBytes.Add(uint64(len(msgs[i].Data)))
	}
	return nil
}

// Multicast implements transport.Iface. Without a multicast group this
// is a silent no-op: nodes then rely on seeding, like any WAN node.
func (n *Node) Multicast(data []byte) error {
	select {
	case <-n.closed:
		return errClosed
	default:
	}
	if n.group == nil {
		return nil
	}
	_, err := n.conn.WriteToUDP(data, n.group)
	if err == nil {
		mSentPackets.Inc()
		mSentBytes.Add(uint64(len(data)))
	}
	return err
}

// Close implements transport.Iface.
func (n *Node) Close() error {
	n.once.Do(func() {
		close(n.closed)
		n.conn.Close()
		if n.mconn != nil {
			n.mconn.Close()
		}
	})
	return nil
}

// Now implements transport.Clock.
func (n *Node) Now() time.Time { return time.Now() }

// After implements transport.Clock: the callback is funnelled through
// the executor so it never races a message handler.
func (n *Node) After(d time.Duration, fn func()) transport.CancelFunc {
	var mu sync.Mutex
	canceled := false
	t := time.AfterFunc(d, func() {
		n.post(func() {
			mu.Lock()
			c := canceled
			mu.Unlock()
			if !c {
				fn()
			}
		})
	})
	return func() {
		mu.Lock()
		canceled = true
		mu.Unlock()
		t.Stop()
	}
}

// Do runs fn on the executor and waits for it — the bridge external
// callers (CLI commands) use to interact with a node's state machine
// safely.
func (n *Node) Do(fn func()) {
	done := make(chan struct{})
	n.post(func() {
		fn()
		close(done)
	})
	select {
	case <-done:
	case <-n.closed:
	}
}
