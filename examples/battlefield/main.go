// Network-centric battlefield: the MILCOM'07 companion scenario. A
// brigade WAN connects an HQ segment and two battalion LANs. Each
// battalion runs *two* registries for redundancy with gateway
// coordination (§4.7), so only one of them forwards queries onto the
// WAN. The example then cuts the WAN link to battalion B — the paper's
// organizational-disconnect case: "a network disconnect between
// branches will not prevent services running on the same
// organizational level from discovering each other".
//
//	go run ./examples/battlefield
package main

import (
	"fmt"
	"log"
	"time"

	"semdisco/internal/core"
	"semdisco/internal/transport"
)

func main() {
	sys := core.NewSystem(core.Options{Seed: 11})

	// HQ registry on the WAN segment.
	hq := sys.StartRegistry("hq", core.RegistryOptions{GatewayCoordination: true})

	// Two redundant registries per battalion, federated with HQ.
	regOpts := core.RegistryOptions{GatewayCoordination: true, Federate: []*core.Registry{hq}}
	a1 := sys.StartRegistry("bnA", regOpts)
	a2 := sys.StartRegistry("bnA", regOpts)
	b1 := sys.StartRegistry("bnB", regOpts)
	b2 := sys.StartRegistry("bnB", regOpts)

	mk := func(lan, iri, name, class string) {
		if _, err := sys.StartService(lan, core.ServiceOptions{
			Lease: 5 * time.Second,
			Profile: core.ServiceProfile{
				IRI: iri, Name: name, Category: sys.Class(class),
				Endpoint: "udp://" + lan + "/" + iri,
			},
		}); err != nil {
			log.Fatal(err)
		}
	}
	mk("hq", "urn:svc:theatre-map", "Theatre map", "MapService")
	mk("bnA", "urn:svc:uav-A", "Battalion A UAV feed", "CameraFeed")
	mk("bnB", "urn:svc:radar-B", "Battalion B coastal radar", "CoastalRadarFeed")
	mk("bnB", "urn:svc:chat-B", "Battalion B chat", "ChatService")

	cliA := sys.StartClient("bnA", core.ClientOptions{})
	cliB := sys.StartClient("bnB", core.ClientOptions{})
	sys.Step(5 * time.Second)

	// --- Gateway election. ---
	fmt.Println("1) gateway coordination (one WAN gateway per battalion):")
	fmt.Printf("   bnA: r1 gateway=%v r2 gateway=%v\n", a1.IsGateway(), a2.IsGateway())
	fmt.Printf("   bnB: r1 gateway=%v r2 gateway=%v\n", b1.IsGateway(), b2.IsGateway())

	// --- Opportunistic cross-battalion discovery. ---
	hits, via, err := cliA.Find(core.Query{
		Category: sys.Class("SensorFeed"), Scope: 3, Timeout: 60 * time.Second,
	})
	check(err)
	fmt.Printf("\n2) battalion A discovers all theatre sensor feeds (via %s):\n", via)
	for _, h := range hits {
		fmt.Printf("   %-28s %s\n", h.Name, h.Endpoint)
	}

	// --- WAN disconnect for battalion B. ---
	fmt.Println("\n3) WAN link to battalion B severed (partition)…")
	var bSide, rest []transport.Addr
	w := sys.World()
	for _, lan := range w.Net.LANs() {
		for _, addr := range w.Net.NodesOn(lan) {
			if lan == "bnB" {
				bSide = append(bSide, addr)
			} else {
				rest = append(rest, addr)
			}
		}
	}
	w.Net.Partition(rest, bSide)
	sys.Step(2 * time.Second)

	// Battalion B still discovers its own services locally.
	hits, via, err = cliB.Find(core.Query{Category: sys.Class("ChatService"), Timeout: 60 * time.Second})
	check(err)
	fmt.Printf("   battalion B, disconnected, still finds its chat service via %s (%d hit)\n", via, len(hits))

	// Battalion A no longer sees B's radar, but keeps everything else.
	hits, _, err = cliA.Find(core.Query{Category: sys.Class("SensorFeed"), Scope: 3, Timeout: 60 * time.Second})
	check(err)
	fmt.Printf("   battalion A now sees %d sensor feed(s) (B's radar unreachable, lease purged)\n", len(hits))

	// --- Link restored. ---
	fmt.Println("\n4) WAN link restored; radar republishes and reappears…")
	w.Net.Partition() // heal
	sys.Step(15 * time.Second)
	hits, _, err = cliA.Find(core.Query{Category: sys.Class("SensorFeed"), Scope: 3, Timeout: 60 * time.Second})
	check(err)
	for _, h := range hits {
		fmt.Printf("   %-28s %s\n", h.Name, h.Endpoint)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
