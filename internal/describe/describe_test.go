package describe

import (
	"reflect"
	"testing"
	"testing/quick"

	"semdisco/internal/match"
	"semdisco/internal/ontology"
	"semdisco/internal/profile"
	"semdisco/internal/workload"
)

const ns = "http://semdisco.example/onto#"

func c(name string) ontology.Class { return ontology.Class(ns + name) }

func testOntology(t testing.TB) *ontology.Ontology {
	t.Helper()
	o := ontology.New(ns)
	for _, a := range [][2]string{
		{"Sensor", "Device"}, {"Radar", "Sensor"}, {"Camera", "Sensor"},
		{"Track", "Observation"},
	} {
		if err := o.AddClass(c(a[0]), c(a[1])); err != nil {
			t.Fatal(err)
		}
	}
	o.Freeze()
	return o
}

func stdRegistry(t testing.TB) *Registry {
	t.Helper()
	return NewRegistry(URIModel{}, KVModel{}, NewSemanticModel(testOntology(t)))
}

func TestRegistryDispatch(t *testing.T) {
	r := stdRegistry(t)
	if got := r.Kinds(); !reflect.DeepEqual(got, []Kind{KindURI, KindKV, KindSemantic}) {
		t.Fatalf("Kinds = %v", got)
	}
	if _, ok := r.Model(KindURI); !ok {
		t.Fatal("URI model missing")
	}
	if _, ok := r.Model(Kind(42)); ok {
		t.Fatal("unknown kind resolved")
	}
	if _, err := r.DecodeDescription(Kind(42), nil); err == nil {
		t.Fatal("decode for unknown kind succeeded")
	}
	if _, err := r.DecodeQuery(Kind(42), nil); err == nil {
		t.Fatal("query decode for unknown kind succeeded")
	}
}

func TestRegistryRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate model registration did not panic")
		}
	}()
	NewRegistry(URIModel{}, URIModel{})
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{KindURI: "uri", KindKV: "kv", KindSemantic: "semantic", KindInvalid: "invalid", Kind(9): "kind(9)"} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}

// --- URI model ---

func TestURIRoundTripAndMatch(t *testing.T) {
	m := URIModel{}
	d := &URIDescription{TypeURI: "urn:type:radar", ServiceURI: "urn:svc:1", Name: "r1", Addr: "udp://h:1"}
	got, err := m.DecodeDescription(d.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, d) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	q := &URIQuery{TypeURI: "urn:type:radar"}
	gq, err := m.DecodeQuery(q.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gq, q) {
		t.Fatalf("query round trip mismatch: %+v", gq)
	}
	if ev := m.Evaluate(q, d); !ev.Matched {
		t.Fatal("exact type did not match")
	}
	if ev := m.Evaluate(&URIQuery{TypeURI: "urn:type:sensor"}, d); ev.Matched {
		t.Fatal("different type matched — URI model must be exact-only")
	}
	// Trailing slash normalization.
	if ev := m.Evaluate(&URIQuery{TypeURI: "urn:type:radar/"}, d); !ev.Matched {
		t.Fatal("trailing slash broke the match")
	}
}

func TestURISummaryAndQueryTokens(t *testing.T) {
	m := URIModel{}
	d := &URIDescription{TypeURI: "urn:type:radar"}
	if toks := m.SummaryTokens(d); len(toks) != 1 || toks[0] != "urn:type:radar" {
		t.Fatalf("SummaryTokens = %v", toks)
	}
	toks, prunable := m.QueryTokens(&URIQuery{TypeURI: "urn:type:radar"})
	if !prunable || len(toks) != 1 {
		t.Fatalf("QueryTokens = (%v, %v)", toks, prunable)
	}
}

// --- KV model ---

func TestKVRoundTrip(t *testing.T) {
	m := KVModel{}
	d := &KVDescription{
		ServiceURI: "urn:svc:2", Name: "Weather feed", TypeURI: "urn:type:weather",
		Attrs: map[string]string{"region": "north", "format": "grib"},
		Addr:  "http://h:2",
	}
	got, err := m.DecodeDescription(d.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, d) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	q := &KVQuery{NamePrefix: "Wea", TypeURI: "urn:type:weather", Attrs: map[string]string{"region": "north"}}
	gq, err := m.DecodeQuery(q.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gq, q) {
		t.Fatalf("query round trip mismatch: %+v", gq)
	}
}

func TestKVEvaluate(t *testing.T) {
	m := KVModel{}
	d := &KVDescription{
		ServiceURI: "urn:svc:2", Name: "Weather feed", TypeURI: "urn:type:weather",
		Attrs: map[string]string{"region": "north"},
	}
	cases := []struct {
		q    *KVQuery
		want bool
	}{
		{&KVQuery{}, true},                      // catch-all
		{&KVQuery{NamePrefix: "weather"}, true}, // case-insensitive prefix
		{&KVQuery{NamePrefix: "xyz"}, false},
		{&KVQuery{TypeURI: "urn:type:weather"}, true},
		{&KVQuery{TypeURI: "urn:type:radar"}, false},
		{&KVQuery{Attrs: map[string]string{"region": "north"}}, true},
		{&KVQuery{Attrs: map[string]string{"region": "south"}}, false},
		{&KVQuery{Attrs: map[string]string{"missing": "x"}}, false},
		{&KVQuery{NamePrefix: "Wea", TypeURI: "urn:type:weather", Attrs: map[string]string{"region": "north"}}, true},
	}
	for i, cs := range cases {
		if got := m.Evaluate(cs.q, d).Matched; got != cs.want {
			t.Errorf("case %d: Matched = %v, want %v", i, got, cs.want)
		}
	}
	// More specific queries score their hits higher.
	broad := m.Evaluate(&KVQuery{}, d)
	narrow := m.Evaluate(&KVQuery{TypeURI: "urn:type:weather", Attrs: map[string]string{"region": "north"}}, d)
	if narrow.Score <= 0 || broad.Score <= 0 {
		t.Fatal("scores must be positive for matches")
	}
}

func TestKVQueryTokens(t *testing.T) {
	m := KVModel{}
	if _, prunable := m.QueryTokens(&KVQuery{Attrs: map[string]string{"a": "b"}}); prunable {
		t.Fatal("attribute-only query must not be prunable")
	}
	toks, prunable := m.QueryTokens(&KVQuery{TypeURI: "urn:t"})
	if !prunable || len(toks) != 1 {
		t.Fatalf("typed query tokens = (%v, %v)", toks, prunable)
	}
}

// --- Semantic model ---

func semanticPair(t testing.TB) (*SemanticModel, *SemanticDescription) {
	m := NewSemanticModel(testOntology(t))
	d := &SemanticDescription{Profile: &profile.Profile{
		ServiceIRI: "urn:svc:radar", Category: c("Radar"),
		Outputs: []ontology.Class{c("Track")}, Grounding: "urn:g",
	}}
	return m, d
}

func TestSemanticRoundTrip(t *testing.T) {
	m, d := semanticPair(t)
	got, err := m.DecodeDescription(d.Encode())
	if err != nil {
		t.Fatal(err)
	}
	d.Profile.Intern(m.Ontology()) // DecodeDescription interns eagerly
	if !reflect.DeepEqual(got, d) {
		t.Fatalf("description round trip mismatch")
	}
	q := &SemanticQuery{Template: &profile.Template{Category: c("Sensor")}, MinDegree: match.PlugIn}
	gq, err := m.DecodeQuery(q.Encode())
	if err != nil {
		t.Fatal(err)
	}
	q.Template.Intern(m.Ontology()) // DecodeQuery interns eagerly
	if !reflect.DeepEqual(gq, q) {
		t.Fatalf("query round trip mismatch: %+v vs %+v", gq, q)
	}
	if _, err := m.DecodeQuery(nil); err == nil {
		t.Fatal("empty semantic query accepted")
	}
}

func TestSemanticEvaluateSubsumption(t *testing.T) {
	m, d := semanticPair(t)
	// Requesting Sensor finds the Radar service — the paper's core
	// semantic-discovery example.
	ev := m.Evaluate(&SemanticQuery{Template: &profile.Template{Category: c("Sensor")}}, d)
	if !ev.Matched || match.Degree(ev.Degree) != match.PlugIn {
		t.Fatalf("Evaluate = %+v, want plugin match", ev)
	}
	// MinDegree gates weaker matches out.
	ev = m.Evaluate(&SemanticQuery{
		Template:  &profile.Template{Category: c("Sensor")},
		MinDegree: match.Exact,
	}, d)
	if ev.Matched {
		t.Fatal("plugin match cleared an Exact floor")
	}
	// Unrelated category fails.
	ev = m.Evaluate(&SemanticQuery{Template: &profile.Template{Category: c("Camera")}}, d)
	if ev.Matched {
		t.Fatal("Camera query matched a Radar service")
	}
}

func TestSemanticQueryTokensSoundness(t *testing.T) {
	m, d := semanticPair(t)
	// Soundness: if a query matches a description, the description's
	// summary token must be among the query tokens.
	queries := []ontology.Class{c("Radar"), c("Sensor"), c("Device"), c("Camera"), ontology.Thing}
	for _, qc := range queries {
		q := &SemanticQuery{Template: &profile.Template{Category: qc}}
		ev := m.Evaluate(q, d)
		toks, prunable := m.QueryTokens(q)
		if !prunable {
			continue
		}
		tokSet := map[string]bool{}
		for _, tok := range toks {
			tokSet[tok] = true
		}
		summary := m.SummaryTokens(d)
		overlap := false
		for _, s := range summary {
			if tokSet[s] {
				overlap = true
			}
		}
		if ev.Matched && !overlap {
			t.Errorf("query %s matched but summary pruning would drop it", qc)
		}
	}
}

func TestSemanticQueryTokensUnprunableWithoutCategory(t *testing.T) {
	m, _ := semanticPair(t)
	q := &SemanticQuery{Template: &profile.Template{RequiredOutputs: []ontology.Class{c("Track")}}}
	if _, prunable := m.QueryTokens(q); prunable {
		t.Fatal("category-free query must not be prunable")
	}
}

func TestCrossModelEvaluateIsSafe(t *testing.T) {
	// Feeding a model a query/description of the wrong dynamic type must
	// yield no-match, never a panic.
	uri, kv := URIModel{}, KVModel{}
	sem, sd := semanticPair(t)
	ud := &URIDescription{TypeURI: "t"}
	uq := &URIQuery{TypeURI: "t"}
	if uri.Evaluate(&KVQuery{}, ud).Matched ||
		kv.Evaluate(uq, &KVDescription{}).Matched ||
		sem.Evaluate(uq, sd).Matched {
		t.Fatal("cross-model evaluation matched")
	}
}

func TestDecodeFuzzSafety(t *testing.T) {
	r := stdRegistry(t)
	f := func(kind uint8, b []byte) bool {
		k := Kind(kind%4 + 1)
		if m, ok := r.Model(k); ok {
			m.DecodeDescription(b)
			m.DecodeQuery(b)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSemanticPruningSoundnessOverRandomTaxonomies(t *testing.T) {
	// Property over generated taxonomies: whenever the semantic model
	// matches a (query, description) pair, the description's summary
	// tokens intersect the query's tokens — the invariant both the
	// registry token index and federation summary pruning rely on.
	for seed := int64(0); seed < 5; seed++ {
		onto, levels := workload.GenOntology(workload.OntologySpec{
			Depth: 3 + int(seed%3), Branching: 2 + int(seed%2),
		})
		m := NewSemanticModel(onto)
		var all []ontology.Class
		for _, lvl := range levels {
			all = append(all, lvl...)
		}
		pop := workload.GenProfiles(workload.PopulationSpec{N: 40, Classes: all, Seed: seed})
		for qi := 0; qi < len(all); qi += 2 {
			q := &SemanticQuery{Template: &profile.Template{Category: all[qi]}}
			toks, prunable := m.QueryTokens(q)
			if !prunable {
				continue
			}
			tokSet := map[string]bool{}
			for _, tok := range toks {
				tokSet[tok] = true
			}
			for _, p := range pop {
				d := &SemanticDescription{Profile: p}
				if !m.Evaluate(q, d).Matched {
					continue
				}
				overlap := false
				for _, s := range m.SummaryTokens(d) {
					if tokSet[s] {
						overlap = true
						break
					}
				}
				if !overlap {
					t.Fatalf("seed %d: match between %s and %s invisible to pruning",
						seed, all[qi], p.Category)
				}
			}
		}
	}
}
