package ontology

import "math/bits"

// ClassID is a dense interned identifier for a declared class, assigned
// at Freeze when the ontology compiles its taxonomy into array form.
// IDs are contiguous in [0, NumClassIDs) and follow the lexicographic
// order of the class IRIs, so ascending-ID iteration yields the same
// deterministic order as the map-based enumeration helpers.
type ClassID int32

// NoClass is the ClassID of an undeclared class (or any class when the
// ontology was frozen without a compiled index).
const NoClass ClassID = -1

// compiledIndex is the dense form of the frozen taxonomy: every class
// interned to a contiguous ID, the reflexive-transitive ancestor and
// descendant closures as bitset rows, and depth/label arrays. With it,
// Subsumes is a single word test, LCS is a bitwise AND plus a max-depth
// scan, and Similarity is pure arithmetic — no string-map traffic on
// the matchmaking hot path.
type compiledIndex struct {
	ids     map[Class]ClassID
	classes []Class  // by ID, lexicographically sorted
	labels  []string // by ID; "" means unset
	depths  []int32  // by ID
	words   int      // uint64 words per bitset row
	anc     []uint64 // n×words; row i = reflexive-transitive ancestors of class i
	desc    []uint64 // n×words; row i = reflexive-transitive descendants of class i
	thing   ClassID
}

// compile builds the dense index from the frozen map-based closures and
// then releases the per-class ancestor maps — the bitsets replace them.
// Called from Freeze with the closures freshly computed.
func (o *Ontology) compile() {
	n := len(o.classes)
	classes := make([]Class, 0, n)
	for c := range o.classes {
		classes = append(classes, c)
	}
	sortClasses(classes)
	ids := make(map[Class]ClassID, n)
	for i, c := range classes {
		ids[c] = ClassID(i)
	}
	words := (n + 63) / 64
	ci := &compiledIndex{
		ids:     ids,
		classes: classes,
		labels:  make([]string, n),
		depths:  make([]int32, n),
		words:   words,
		anc:     make([]uint64, n*words),
		desc:    make([]uint64, n*words),
		thing:   ids[Thing],
	}
	for i, c := range classes {
		info := o.classes[c]
		ci.labels[i] = info.label
		ci.depths[i] = int32(info.depth)
		row := ci.anc[i*words : (i+1)*words]
		for a := range info.ancestors {
			aid := int(ids[a])
			row[aid>>6] |= 1 << (aid & 63)
			ci.desc[aid*words+(i>>6)] |= 1 << (i & 63)
		}
	}
	o.c = ci
	// The bitsets now carry the closure; drop the maps (members of one
	// SCC share a map, so nil-ing per class is safe and idempotent).
	for _, info := range o.classes {
		info.ancestors = nil
	}
}

func sortClasses(cs []Class) {
	// Insertion-free path via sort.Slice lives in ontology.go helpers;
	// kept here as a tiny wrapper to avoid an import cycle of concerns.
	sortClassSlice(cs)
}

// DisableCompiledIndex makes Freeze keep the map-based ancestor
// closures instead of compiling the dense index. Queries then run on
// the original map path. This exists for tests and benchmarks that
// compare the two implementations; production code should never call
// it. Returns ErrFrozen when the ontology is already frozen.
func (o *Ontology) DisableCompiledIndex() error {
	if o.frozen {
		return ErrFrozen
	}
	o.compileDisabled = true
	return nil
}

// Compiled reports whether the ontology carries the dense interned
// index (true for any ontology frozen without DisableCompiledIndex).
func (o *Ontology) Compiled() bool { return o.c != nil }

// ClassID returns the interned ID of c, or NoClass when c is undeclared
// or the ontology has no compiled index.
func (o *Ontology) ClassID(c Class) ClassID {
	if o.c == nil {
		return NoClass
	}
	if id, ok := o.c.ids[c]; ok {
		return id
	}
	return NoClass
}

// ClassByID returns the class interned as id, or "" when id is out of
// range or the ontology has no compiled index.
func (o *Ontology) ClassByID(id ClassID) Class {
	if o.c == nil || id < 0 || int(id) >= len(o.c.classes) {
		return ""
	}
	return o.c.classes[id]
}

// NumClassIDs returns the number of interned classes (equal to
// NumClasses when compiled, 0 otherwise).
func (o *Ontology) NumClassIDs() int {
	if o.c == nil {
		return 0
	}
	return len(o.c.classes)
}

// ThingID returns the interned ID of Thing (NoClass when uncompiled).
func (o *Ontology) ThingID() ClassID {
	if o.c == nil {
		return NoClass
	}
	return o.c.thing
}

func (c *compiledIndex) valid(id ClassID) bool {
	return id >= 0 && int(id) < len(c.classes)
}

// bit reports whether row `row` of the matrix m has bit `col` set.
func (c *compiledIndex) bit(m []uint64, row, col ClassID) bool {
	return m[int(row)*c.words+int(col>>6)]&(1<<(col&63)) != 0
}

// SubsumesID reports sub ⊑ super over interned IDs: one bounds check
// and one word test. Thing subsumes every valid ID (top-level
// equivalence clusters omit Thing from their closure row, matching the
// map-based semantics, so Thing is special-cased). Invalid IDs subsume
// nothing and are subsumed by nothing.
func (o *Ontology) SubsumesID(super, sub ClassID) bool {
	c := o.c
	if c == nil || !c.valid(super) || !c.valid(sub) {
		return false
	}
	if super == c.thing {
		return true
	}
	return c.bit(c.anc, sub, super)
}

// LCSID returns the deepest common subsumer of a and b over interned
// IDs (ties broken toward the smallest ID, i.e. the lexicographically
// smallest IRI). Invalid IDs yield ThingID.
func (o *Ontology) LCSID(a, b ClassID) ClassID {
	c := o.c
	if c == nil {
		return NoClass
	}
	if !c.valid(a) || !c.valid(b) {
		return c.thing
	}
	ra := c.anc[int(a)*c.words : (int(a)+1)*c.words]
	rb := c.anc[int(b)*c.words : (int(b)+1)*c.words]
	best := c.thing
	bestDepth := int32(-1)
	if c.depths[c.thing] == 0 { // Thing is always a (conceptual) subsumer
		bestDepth = 0
	}
	for w := 0; w < c.words; w++ {
		shared := ra[w] & rb[w]
		for shared != 0 {
			id := ClassID(w<<6 + bits.TrailingZeros64(shared))
			if d := c.depths[id]; d > bestDepth {
				best, bestDepth = id, d
			}
			shared &= shared - 1
		}
	}
	return best
}

// SimilarityID is the Wu–Palmer similarity over interned IDs:
// 2·depth(lcs) / (depth(a)+depth(b)); identical IDs score 1, invalid
// IDs score 0.
func (o *Ontology) SimilarityID(a, b ClassID) float64 {
	c := o.c
	if c == nil || !c.valid(a) || !c.valid(b) {
		return 0
	}
	if a == b {
		return 1
	}
	da, db := c.depths[a], c.depths[b]
	if da+db == 0 {
		return 0
	}
	lcs := o.LCSID(a, b)
	return 2 * float64(c.depths[lcs]) / float64(da+db)
}

// DepthID returns the depth of an interned class (-1 for invalid IDs).
func (o *Ontology) DepthID(id ClassID) int {
	c := o.c
	if c == nil || !c.valid(id) {
		return -1
	}
	return int(c.depths[id])
}

// rowClasses expands a bitset row into classes in ascending-ID
// (= lexicographic) order.
func (c *compiledIndex) rowClasses(m []uint64, row ClassID) []Class {
	r := m[int(row)*c.words : (int(row)+1)*c.words]
	count := 0
	for _, w := range r {
		count += bits.OnesCount64(w)
	}
	out := make([]Class, 0, count)
	for w, word := range r {
		for word != 0 {
			out = append(out, c.classes[w<<6+bits.TrailingZeros64(word)])
			word &= word - 1
		}
	}
	return out
}

// Related returns every class standing in a subsumption relation with c
// — its reflexive-transitive ancestors and descendants — in
// deterministic (lexicographic) order. The semantic description model
// uses it to expand a query category into its summary-pruning token
// neighbourhood with a single bitset pass. Unknown classes yield nil.
func (o *Ontology) Related(cl Class) []Class {
	o.mustFrozen()
	if c := o.c; c != nil {
		id, ok := c.ids[cl]
		if !ok {
			return nil
		}
		ra := c.anc[int(id)*c.words : (int(id)+1)*c.words]
		rd := c.desc[int(id)*c.words : (int(id)+1)*c.words]
		count := 0
		for w := range ra {
			count += bits.OnesCount64(ra[w] | rd[w])
		}
		out := make([]Class, 0, count)
		for w := range ra {
			word := ra[w] | rd[w]
			for word != 0 {
				out = append(out, c.classes[w<<6+bits.TrailingZeros64(word)])
				word &= word - 1
			}
		}
		return out
	}
	if !o.HasClass(cl) {
		return nil
	}
	anc := o.Ancestors(cl)
	seen := make(map[Class]bool, len(anc)+8)
	out := make([]Class, 0, len(anc)+8)
	for _, a := range anc {
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	for _, d := range o.Descendants(cl) {
		if !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	sortClassSlice(out)
	return out
}

// RelatedIDs is Related in the interned-ID domain: every ClassID
// standing in a subsumption relation with id (reflexive-transitive
// ancestors and descendants), ascending. The registry's subscription
// index posts a standing semantic query under this closure so a publish
// probes exactly one bucket. Nil when the ontology carries no compiled
// index or id is invalid — callers then fall back to the string-token
// domain, matching how every other interned path degrades.
func (o *Ontology) RelatedIDs(id ClassID) []ClassID {
	o.mustFrozen()
	c := o.c
	if c == nil || !c.valid(id) {
		return nil
	}
	ra := c.anc[int(id)*c.words : (int(id)+1)*c.words]
	rd := c.desc[int(id)*c.words : (int(id)+1)*c.words]
	count := 0
	for w := range ra {
		count += bits.OnesCount64(ra[w] | rd[w])
	}
	out := make([]ClassID, 0, count)
	for w := range ra {
		word := ra[w] | rd[w]
		for word != 0 {
			out = append(out, ClassID(w<<6+bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
	return out
}
