package integration_test

import (
	"fmt"
	"testing"
	"time"

	"semdisco/internal/discovery"
	"semdisco/internal/federation"
	"semdisco/internal/node"
	"semdisco/internal/sim"
	"semdisco/internal/transport"
	"semdisco/internal/transport/memnet"
	"semdisco/internal/uuid"
	"semdisco/internal/wire"
)

// assertNoDupAdverts fails if any advertisement UUID repeats within one
// query result — the invariant the client's dedup layer guarantees even
// under duplicating networks and retry overlap.
func assertNoDupAdverts(t *testing.T, label string, adverts []wire.Advertisement) {
	t.Helper()
	seen := map[uuid.UUID]bool{}
	for _, a := range adverts {
		if seen[a.ID] {
			t.Fatalf("%s: duplicate advert %s in one QueryResult", label, a.ID)
		}
		seen[a.ID] = true
	}
}

// TestChaosPartitionHealReadoption is the seeded partition-heal
// acceptance scenario: a WAN client loses its only registry to a
// partition and marks it dead; after the heal, probation re-probing
// must readopt the registry (no permanent blacklist), queries must
// succeed via the registry again on the first attempt, no result may
// carry duplicate adverts, a client stopped mid-partition must never
// fire its callback, and two runs with the same seed must produce
// identical traces.
func TestChaosPartitionHealReadoption(t *testing.T) {
	scenario := func() string {
		w := sim.NewWorld(sim.Config{Seed: 33, Net: memnet.Config{Jitter: 2 * time.Millisecond}})
		r0 := w.AddRegistry("lan0", "r0", federation.Config{
			BeaconInterval: time.Second,
			PurgeInterval:  250 * time.Millisecond,
		})
		w.AddService("lan0", "s1", node.ServiceConfig{
			Lease:      3 * time.Second,
			AckTimeout: 300 * time.Millisecond,
			Bootstrap:  discovery.Config{ProbeInterval: 500 * time.Millisecond},
		}, w.SemanticProfile("urn:svc:radar", sim.C("RadarFeed")))
		cliCfg := node.ClientConfig{
			QueryTimeout:   500 * time.Millisecond,
			MaxAttempts:    2,
			RetryBackoff:   100 * time.Millisecond,
			FallbackWindow: 300 * time.Millisecond,
			Bootstrap: discovery.Config{
				Seeds:         []wire.PeerInfo{r0.PeerInfo()},
				ProbeInterval: 500 * time.Millisecond,
			},
		}
		// The client sits alone on lan1: its only path to discovery is the
		// WAN seed; fallback multicast finds nothing there.
		cli := w.AddClient("lan1", "c1", cliCfg)
		doomed := w.AddClient("lan1", "c2", cliCfg)
		w.Run(2 * time.Second)

		trace := ""
		query := func(label string) {
			out := cli.Query(w.SemanticSpec(sim.C("SensorFeed"), 0), 30*time.Second)
			if !out.Completed {
				t.Fatalf("%s: query hung", label)
			}
			assertNoDupAdverts(t, label, out.Adverts)
			trace += fmt.Sprintf("%s: via=%s attempts=%d adverts=%d elapsed=%v\n",
				label, out.Via, out.Attempts, len(out.Adverts), out.Elapsed)
		}

		query("healthy")

		// --- partition: client LAN cut off from the registry LAN ---
		w.Net.Partition(w.Net.NodesOn("lan0"), w.Net.NodesOn("lan1"))
		w.Run(time.Second)
		query("partitioned")
		if _, ok := cli.Cli.Bootstrapper().Current(); ok {
			t.Fatal("partitioned: registry should be marked dead after failed attempts")
		}
		// A query abandoned by Stop mid-partition must never call back,
		// even though its retry/fallback timers were pending.
		doomedFired := false
		doomed.Cli.Query(w.SemanticSpec(sim.C("SensorFeed"), 0), func(node.QueryResult) { doomedFired = true })
		w.Run(200 * time.Millisecond)
		doomed.Cli.Stop()

		// --- heal: probation pings get Pongs again and revive r0 ---
		w.Net.Partition()
		w.Run(3 * time.Second)
		cur, ok := cli.Cli.Bootstrapper().Current()
		if !ok || cur.ID != r0.Reg.ID() {
			t.Fatalf("healed: registry not readopted (cur=%+v ok=%v)", cur, ok)
		}
		query("healed")
		if doomedFired {
			t.Fatal("stopped client's callback fired after the heal")
		}
		return trace
	}

	first := scenario()
	if second := scenario(); second != first {
		t.Fatalf("same seed, different traces:\n--- run1 ---\n%s--- run2 ---\n%s", first, second)
	}
	// Pin the shape of the trace: registry before, nothing during,
	// registry again (first attempt) after.
	want := []string{
		"healthy: via=registry attempts=1 adverts=1",
		"partitioned: via=none attempts=1 adverts=0",
		"healed: via=registry attempts=1 adverts=1",
	}
	for _, wl := range want {
		if !containsLine(first, wl) {
			t.Fatalf("trace missing %q:\n%s", wl, first)
		}
	}
}

func containsLine(trace, prefix string) bool {
	for _, line := range splitLines(trace) {
		if len(line) >= len(prefix) && line[:len(prefix)] == prefix {
			return true
		}
	}
	return false
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

// TestChaosLeaseRenewalUnderBurstLoss runs a registry/service pair
// through ten seconds of heavy Gilbert-Elliott burst loss. Renewals
// fail in bursts, the service may demote the registry, and probation
// must bring it back: once the faults clear, the advert is re-leased
// and discoverable again.
func TestChaosLeaseRenewalUnderBurstLoss(t *testing.T) {
	w := sim.NewWorld(sim.Config{Seed: 31, Net: memnet.Config{Jitter: 2 * time.Millisecond}})
	reg := w.AddRegistry("lan0", "r0", federation.Config{
		BeaconInterval: time.Second,
		PurgeInterval:  250 * time.Millisecond,
	})
	w.AddService("lan0", "s1", node.ServiceConfig{
		Lease:      2 * time.Second,
		AckTimeout: 300 * time.Millisecond,
		Bootstrap:  discovery.Config{ProbeInterval: 500 * time.Millisecond},
	}, w.SemanticProfile("urn:svc:radar", sim.C("RadarFeed")))
	cli := w.AddClient("lan0", "c1", node.ClientConfig{
		QueryTimeout: time.Second,
		Bootstrap:    discovery.Config{ProbeInterval: 500 * time.Millisecond},
	})
	w.Run(2 * time.Second)
	if reg.Reg.Store().Len() != 1 {
		t.Fatal("setup: service did not publish")
	}

	burst := memnet.FaultProfile{LossGood: 0.1, LossBad: 0.9, PGoodBad: 0.1, PBadGood: 0.2}
	w.Net.InstallFaults(memnet.FaultSchedule{
		{At: 0, Scope: memnet.ScopeAll, Profile: &burst},
		{At: 10 * time.Second, Scope: memnet.ScopeAll}, // clear
	})
	w.Run(20 * time.Second)

	if got := reg.Reg.Store().Len(); got != 1 {
		t.Fatalf("after the loss storm cleared, registry holds %d adverts, want 1 (renewal never recovered)", got)
	}
	out := cli.Query(w.SemanticSpec(sim.C("SensorFeed"), 0), 30*time.Second)
	if !out.Completed || out.Via != node.ViaRegistry || len(out.Adverts) != 1 {
		t.Fatalf("post-storm query = %+v, want 1 advert via registry", out)
	}
	assertNoDupAdverts(t, "post-storm", out.Adverts)
}

// TestChaosDuplicateStormExpandingRing reruns the expanding-ring
// scenario with every datagram duplicated: federation fan-out, ring
// reissues and duplicated answers must still yield each advert once.
func TestChaosDuplicateStormExpandingRing(t *testing.T) {
	w := sim.NewWorld(sim.Config{Seed: 32, Net: memnet.Config{Jitter: 2 * time.Millisecond}})
	w.Net.SetFault(memnet.ScopeAll, memnet.FaultProfile{DupProb: 1})
	r0 := w.AddRegistry("lan0", "r0", federation.Config{})
	r1 := w.AddRegistry("lan1", "r1", federation.Config{Seeds: []wire.PeerInfo{r0.PeerInfo()}})
	w.AddRegistry("lan2", "r2", federation.Config{Seeds: []wire.PeerInfo{r1.PeerInfo()}})
	w.AddService("lan2", "s1", node.ServiceConfig{
		Lease:      5 * time.Second,
		AckTimeout: 300 * time.Millisecond,
		Bootstrap:  discovery.Config{ProbeInterval: 200 * time.Millisecond},
	}, w.SemanticProfile("urn:svc:radar", sim.C("RadarFeed")))
	cli := w.AddClient("lan0", "c1", node.ClientConfig{
		QueryTimeout: 2 * time.Second,
		Bootstrap:    discovery.Config{ProbeInterval: 200 * time.Millisecond},
	})
	w.Run(2 * time.Second)
	spec := w.SemanticSpec(sim.C("SensorFeed"), 4)
	spec.Strategy = wire.StrategyExpandingRing
	out := cli.Query(spec, 60*time.Second)
	if !out.Completed || len(out.Adverts) != 1 {
		t.Fatalf("expanding ring under duplicate storm = %+v, want exactly 1 advert", out)
	}
	assertNoDupAdverts(t, "ring", out.Adverts)
	if w.Net.Stats().Faults.Duplicated == 0 {
		t.Fatal("degenerate test: no datagrams were actually duplicated")
	}
}

// TestChaosPartitionDuringFederationFanout injects the partition while
// a TTL-bounded federated query is mid-flight: the query must still
// terminate (partial results or none — never a hang) and a later query
// after the heal must see the full federation again.
func TestChaosPartitionDuringFederationFanout(t *testing.T) {
	w := sim.NewWorld(sim.Config{Seed: 34, Net: memnet.Config{Jitter: 2 * time.Millisecond}})
	regCfg := func(seeds ...wire.PeerInfo) federation.Config {
		return federation.Config{
			BeaconInterval: time.Second,
			PingInterval:   2 * time.Second,
			PeerTimeout:    6 * time.Second,
			QueryTimeout:   200 * time.Millisecond,
			PurgeInterval:  250 * time.Millisecond,
			Seeds:          seeds,
		}
	}
	r0 := w.AddRegistry("lan0", "r0", regCfg())
	w.AddRegistry("lan1", "r1", regCfg(r0.PeerInfo()))
	svcCfg := node.ServiceConfig{
		Lease:      3 * time.Second,
		AckTimeout: 300 * time.Millisecond,
		Bootstrap:  discovery.Config{ProbeInterval: 500 * time.Millisecond},
	}
	w.AddService("lan0", "sA", svcCfg, w.SemanticProfile("urn:svc:A", sim.C("RadarFeed")))
	w.AddService("lan1", "sB", svcCfg, w.SemanticProfile("urn:svc:B", sim.C("CameraFeed")))
	cli := w.AddClient("lan0", "c1", node.ClientConfig{
		QueryTimeout: 2 * time.Second,
		Bootstrap:    discovery.Config{ProbeInterval: 500 * time.Millisecond},
	})
	w.Run(5 * time.Second)

	// Partition lands 20ms after the query leaves — inside the fan-out.
	w.Net.InstallFaults(memnet.FaultSchedule{
		{At: 20 * time.Millisecond, Partition: [][]transport.Addr{
			w.Net.NodesOn("lan0"), w.Net.NodesOn("lan1"),
		}},
		{At: 10 * time.Second, Heal: true},
	})
	spec := w.SemanticSpec(sim.C("Service"), 3)
	spec.MaxResults = 50
	out := cli.Query(spec, 30*time.Second)
	if !out.Completed {
		t.Fatal("query hung across a mid-fanout partition")
	}
	assertNoDupAdverts(t, "mid-fanout", out.Adverts)
	if len(out.Adverts) == 0 {
		t.Fatal("local branch invisible during partition (organizational autonomy broken)")
	}

	// After the heal, federation re-links and both branches answer.
	w.Run(15 * time.Second)
	out = cli.Query(spec, 30*time.Second)
	if !out.Completed || len(out.Adverts) < 2 {
		t.Fatalf("post-heal federated query = %+v, want both branches", out)
	}
	assertNoDupAdverts(t, "post-heal", out.Adverts)
}

// TestChaosSoak drives a two-LAN federation through a full chaos
// profile (burst loss, duplication, reordering, delay spikes) plus a
// partition/heal cycle, asserting liveness and the no-duplicate
// invariant on every probe. Runs under -race in CI to exercise the
// registry's concurrent query engine against the fault paths.
func TestChaosSoak(t *testing.T) {
	w := sim.NewWorld(sim.Config{Seed: 35, Net: memnet.Config{Jitter: 2 * time.Millisecond}})
	regCfg := func(seeds ...wire.PeerInfo) federation.Config {
		return federation.Config{
			BeaconInterval: 2 * time.Second,
			PingInterval:   3 * time.Second,
			PeerTimeout:    9 * time.Second,
			QueryTimeout:   200 * time.Millisecond,
			PurgeInterval:  250 * time.Millisecond,
			Seeds:          seeds,
		}
	}
	r0 := w.AddRegistry("lan0", "r0", regCfg())
	w.AddRegistry("lan1", "r1", regCfg(r0.PeerInfo()))
	svcCfg := node.ServiceConfig{
		Lease:      4 * time.Second,
		AckTimeout: 400 * time.Millisecond,
		Bootstrap:  discovery.Config{ProbeInterval: 500 * time.Millisecond},
	}
	for i := 0; i < 6; i++ {
		w.AddService(fmt.Sprintf("lan%d", i%2), fmt.Sprintf("s%d", i), svcCfg,
			w.SemanticProfile(fmt.Sprintf("urn:svc:%d", i), sim.C("RadarFeed")))
	}
	cli := w.AddClient("lan0", "c0", node.ClientConfig{
		QueryTimeout: 2 * time.Second,
		Bootstrap:    discovery.Config{ProbeInterval: 500 * time.Millisecond},
	})
	w.Run(8 * time.Second)

	chaos := memnet.FaultProfile{
		LossGood: 0.02, LossBad: 0.5, PGoodBad: 0.05, PBadGood: 0.2,
		DupProb: 0.1, ReorderProb: 0.1, ReorderDelay: 20 * time.Millisecond,
		SpikeProb: 0.05, SpikeDelay: 200 * time.Millisecond,
	}
	w.Net.InstallFaults(memnet.FaultSchedule{
		{At: 0, Scope: memnet.ScopeAll, Profile: &chaos},
		{At: 20 * time.Second, Partition: [][]transport.Addr{
			w.Net.NodesOn("lan0"), w.Net.NodesOn("lan1"),
		}},
		{At: 35 * time.Second, Heal: true},
		{At: 55 * time.Second, Scope: memnet.ScopeAll}, // calm down
	})
	for i := 0; i < 20; i++ {
		spec := w.SemanticSpec(sim.C("Service"), 3)
		spec.MaxResults = 50
		out := cli.Query(spec, 20*time.Second)
		if !out.Completed {
			t.Fatalf("probe %d hung under chaos", i)
		}
		assertNoDupAdverts(t, fmt.Sprintf("probe %d", i), out.Adverts)
		w.Run(3 * time.Second)
	}
	// Faults cleared at 55s and ≥8s of calm have passed: full recovery.
	spec := w.SemanticSpec(sim.C("Service"), 3)
	spec.MaxResults = 50
	out := cli.Query(spec, 30*time.Second)
	if !out.Completed || out.Via != node.ViaRegistry {
		t.Fatalf("post-chaos probe = %+v, want registry answer", out)
	}
	if len(out.Adverts) < 6 {
		t.Fatalf("post-chaos recall = %d/6 services", len(out.Adverts))
	}
	s := w.Net.Stats()
	if s.Faults.Dropped == 0 || s.Faults.Duplicated == 0 || s.Faults.Reordered == 0 || s.Faults.Delayed == 0 {
		t.Fatalf("degenerate soak: some fault class never fired: %+v", s.Faults)
	}
}

// runBatchedBurstLoss is the burst-loss renewal scenario with datagram
// coalescing enabled: every node's transport rides through a
// transport.Batcher, so the Gilbert-Elliott faults now drop whole
// batch envelopes. Returns the network stats and the post-storm query
// outcome so the caller can assert both recovery and determinism.
func runBatchedBurstLoss(t *testing.T, seed int64) (memnet.Stats, sim.QueryOutcome) {
	t.Helper()
	w := sim.NewWorld(sim.Config{
		Seed:     seed,
		Net:      memnet.Config{Jitter: 2 * time.Millisecond},
		Batching: true,
	})
	reg := w.AddRegistry("lan0", "r0", federation.Config{
		BeaconInterval: time.Second,
		PurgeInterval:  250 * time.Millisecond,
	})
	for i := 0; i < 3; i++ {
		w.AddService("lan0", fmt.Sprintf("s%d", i), node.ServiceConfig{
			Lease:      2 * time.Second,
			AckTimeout: 300 * time.Millisecond,
			Bootstrap:  discovery.Config{ProbeInterval: 500 * time.Millisecond},
		},
			w.SemanticProfile(fmt.Sprintf("urn:svc:radar:%d", i), sim.C("RadarFeed")),
			w.SemanticProfile(fmt.Sprintf("urn:svc:cam:%d", i), sim.C("CameraFeed")))
	}
	cli := w.AddClient("lan0", "c1", node.ClientConfig{
		QueryTimeout: time.Second,
		Bootstrap:    discovery.Config{ProbeInterval: 500 * time.Millisecond},
	})
	w.Run(2 * time.Second)
	if got := reg.Reg.Store().Len(); got != 6 {
		t.Fatalf("setup: registry holds %d adverts, want 6", got)
	}

	burst := memnet.FaultProfile{LossGood: 0.1, LossBad: 0.9, PGoodBad: 0.1, PBadGood: 0.2}
	w.Net.InstallFaults(memnet.FaultSchedule{
		{At: 0, Scope: memnet.ScopeAll, Profile: &burst},
		{At: 10 * time.Second, Scope: memnet.ScopeAll}, // clear
	})
	w.Run(20 * time.Second)

	if got := reg.Reg.Store().Len(); got != 6 {
		t.Fatalf("after the loss storm cleared, registry holds %d adverts, want 6 (renewal never recovered under batching)", got)
	}
	out := cli.Query(w.SemanticSpec(sim.C("SensorFeed"), 0), 30*time.Second)
	if !out.Completed || out.Via != node.ViaRegistry || len(out.Adverts) != 6 {
		t.Fatalf("post-storm query = %+v, want 6 adverts via registry", out)
	}
	assertNoDupAdverts(t, "post-storm-batched", out.Adverts)
	return w.Net.Stats(), out
}

// TestChaosLeaseRenewalUnderBurstLossBatched is the chaos-under-batching
// matrix entry: burst loss now discards coalesced envelopes — each drop
// costs every message sharing the datagram, never a torn or corrupt
// frame — and renewal, probation and fallback must still recover.
// Coalescing on the simulated clock is deterministic, so two runs with
// the same seed must produce identical traffic down to the byte.
func TestChaosLeaseRenewalUnderBurstLossBatched(t *testing.T) {
	s1, _ := runBatchedBurstLoss(t, 31)
	var msgs uint64
	for _, cat := range s1.DeliveredByCategory {
		msgs += cat.Messages
	}
	if msgs <= s1.MessagesDelivered {
		t.Fatalf("degenerate test: %d protocol messages in %d datagrams — coalescing never engaged", msgs, s1.MessagesDelivered)
	}
	if s1.Faults.Dropped == 0 {
		t.Fatal("degenerate test: the loss storm dropped nothing")
	}
	s2, _ := runBatchedBurstLoss(t, 31)
	if s1 != s2 {
		t.Fatalf("same seed, different traffic under batching:\n  run1 %+v\n  run2 %+v", s1, s2)
	}
}
