package wire

import (
	"reflect"
	"testing"

	"semdisco/internal/uuid"
)

// FuzzUnmarshal hammers the wire decoder with mutated real messages;
// any panic or accepted-garbage-that-remarshal-differs is a bug.
func FuzzUnmarshal(f *testing.F) {
	gen := uuid.NewGenerator(1)
	for _, body := range allBodies() {
		b, err := Marshal(NewEnvelope(gen.New(), "lan0/n", body, gen))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add([]byte{magic0, magic1})
	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := Unmarshal(data)
		if err != nil {
			return
		}
		// Anything that decodes must re-encode and decode to the same
		// envelope (canonical round trip).
		re, err := Marshal(env)
		if err != nil {
			t.Fatalf("decoded envelope does not re-marshal: %v", err)
		}
		env2, err := Unmarshal(re)
		if err != nil {
			t.Fatalf("re-marshaled bytes do not decode: %v", err)
		}
		if !reflect.DeepEqual(env, env2) {
			t.Fatalf("round trip diverged:\n%#v\n%#v", env, env2)
		}
	})
}
