// Package uuid implements RFC 4122 version-4 (random) and deterministic
// sequence-based UUIDs.
//
// The service discovery architecture relies on universally unique
// identifiers in three places (ICDEW'06 §4.10 / MILCOM'07): advertisement
// IDs used to renew leases, update and remove published descriptions;
// query IDs used to correlate responses from multiple registries and to
// avoid query loops in the registry network; and node IDs that identify
// participants independently of their transport address.
//
// Experiments need determinism, so in addition to crypto/rand-backed
// UUIDs, the package provides a seeded Generator that yields a
// reproducible UUID stream.
package uuid

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
)

// UUID is a 128-bit RFC 4122 universally unique identifier.
type UUID [16]byte

// Nil is the zero UUID. It is never returned by New or a Generator and
// marks "no ID" in protocol messages.
var Nil UUID

// New returns a version-4 UUID from crypto/rand. It panics only if the
// platform random source is broken, which is unrecoverable anyway.
func New() UUID {
	var u UUID
	if _, err := rand.Read(u[:]); err != nil {
		panic("uuid: crypto/rand failed: " + err.Error())
	}
	u.setVersion4()
	return u
}

func (u *UUID) setVersion4() {
	u[6] = (u[6] & 0x0f) | 0x40 // version 4
	u[8] = (u[8] & 0x3f) | 0x80 // RFC 4122 variant
}

// IsNil reports whether u is the zero UUID.
func (u UUID) IsNil() bool { return u == Nil }

// String renders the canonical 8-4-4-4-12 form.
func (u UUID) String() string {
	var b [36]byte
	hex.Encode(b[0:8], u[0:4])
	b[8] = '-'
	hex.Encode(b[9:13], u[4:6])
	b[13] = '-'
	hex.Encode(b[14:18], u[6:8])
	b[18] = '-'
	hex.Encode(b[19:23], u[8:10])
	b[23] = '-'
	hex.Encode(b[24:36], u[10:16])
	return string(b[:])
}

// Short returns the first 8 hex digits, for logs and progress output.
func (u UUID) Short() string {
	var b [8]byte
	hex.Encode(b[:], u[0:4])
	return string(b[:])
}

// ErrBadUUID is returned by Parse for any malformed input.
var ErrBadUUID = errors.New("uuid: malformed UUID")

// Parse accepts the canonical 36-character form produced by String.
func Parse(s string) (UUID, error) {
	var u UUID
	if len(s) != 36 || s[8] != '-' || s[13] != '-' || s[18] != '-' || s[23] != '-' {
		return Nil, fmt.Errorf("%w: %q", ErrBadUUID, s)
	}
	hexParts := []struct {
		dst []byte
		src string
	}{
		{u[0:4], s[0:8]},
		{u[4:6], s[9:13]},
		{u[6:8], s[14:18]},
		{u[8:10], s[19:23]},
		{u[10:16], s[24:36]},
	}
	for _, p := range hexParts {
		if _, err := hex.Decode(p.dst, []byte(p.src)); err != nil {
			return Nil, fmt.Errorf("%w: %q", ErrBadUUID, s)
		}
	}
	return u, nil
}

// MustParse is Parse for compile-time-known constants; it panics on error.
func MustParse(s string) UUID {
	u, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return u
}

// Generator yields a deterministic UUID stream from a seed. It implements
// the SplitMix64 generator, which has a full 2^64 period and passes
// BigCrush; more than adequate for reproducible experiment identities.
// Generator is not safe for concurrent use; experiments run it from the
// single-threaded event loop.
type Generator struct {
	state uint64
}

// NewGenerator returns a deterministic generator for the given seed.
func NewGenerator(seed uint64) *Generator {
	return &Generator{state: seed}
}

func (g *Generator) next64() uint64 {
	g.state += 0x9e3779b97f4a7c15
	z := g.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns the next UUID in the deterministic stream. The result is a
// valid version-4 UUID (version and variant bits are forced), so wire
// formats and logs cannot distinguish simulated from live identifiers.
func (g *Generator) New() UUID {
	var u UUID
	binary.BigEndian.PutUint64(u[0:8], g.next64())
	binary.BigEndian.PutUint64(u[8:16], g.next64())
	u.setVersion4()
	if u == Nil { // astronomically unlikely, but keep the Nil invariant
		return g.New()
	}
	return u
}

// Compare orders UUIDs lexicographically; used for deterministic
// tie-breaks such as LAN gateway election (lowest node ID wins).
func Compare(a, b UUID) int {
	for i := range a {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	return 0
}
