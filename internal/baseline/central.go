// Package baseline implements the comparison systems §3 of the paper
// analyses, with exactly the discovery-relevant behaviour the paper
// attributes to them:
//
//   - CentralRegistry: a UDDI-style centralized registry. Statically
//     configured endpoint (answers no probes, sends no beacons), no
//     leasing ("neither UDDI nor ebXML use leasing, and are dependent
//     on services actively de-registering themselves"), no federation
//     (TTL ignored), template evaluation via the same pluggable models.
//   - DHTNode: a super-peer distributed hash table. Advertisements are
//     indexed under a single string token; queries are routed by the
//     token's hash and answered by exact string matching only —
//     "semantic query evaluation cannot be performed at the
//     intermediate nodes in such systems" (§3.3).
//
// The pure decentralized baseline needs no node type of its own: a
// world without registries exercises the client's multicast fallback
// and the service nodes' direct answering (internal/node).
package baseline

import (
	"sort"
	"time"

	"semdisco/internal/describe"
	"semdisco/internal/registry"
	"semdisco/internal/runtime"
	"semdisco/internal/transport"
	"semdisco/internal/uuid"
	"semdisco/internal/wire"
)

// CentralRegistry is the UDDI-like baseline registry.
type CentralRegistry struct {
	env    *runtime.Env
	models *describe.Registry

	adverts map[uuid.UUID]centralEntry
	byKind  map[describe.Kind]map[uuid.UUID]centralEntry

	// Stats counts protocol activity.
	Stats struct {
		Publishes uint64
		Queries   uint64
		Removes   uint64
	}
}

type centralEntry struct {
	advert wire.Advertisement
	desc   describe.Description
}

// NewCentral builds a central registry.
func NewCentral(env *runtime.Env, models *describe.Registry) *CentralRegistry {
	return &CentralRegistry{
		env:     env,
		models:  models,
		adverts: make(map[uuid.UUID]centralEntry),
		byKind:  make(map[describe.Kind]map[uuid.UUID]centralEntry),
	}
}

// Len returns the number of stored advertisements (stale ones
// included — that is the point of this baseline).
func (c *CentralRegistry) Len() int { return len(c.adverts) }

// HandleEnvelope implements runtime.Handler.
func (c *CentralRegistry) HandleEnvelope(env *wire.Envelope, from transport.Addr) {
	switch b := env.Body.(type) {
	case *wire.Publish:
		c.Stats.Publishes++
		// The advert is retained in the store maps below; its payload is
		// borrowed from the receive buffer, so deep-copy first.
		adv := wire.CloneAdvert(b.Advert)
		model, ok := c.models.Model(adv.Kind)
		if !ok {
			c.env.Send(from, wire.PublishAck{AdvertID: adv.ID, OK: false, Error: "unsupported kind"})
			return
		}
		desc, err := model.DecodeDescription(adv.Payload)
		if err != nil {
			c.env.Send(from, wire.PublishAck{AdvertID: adv.ID, OK: false, Error: err.Error()})
			return
		}
		e := centralEntry{advert: adv, desc: desc}
		c.adverts[adv.ID] = e
		km := c.byKind[adv.Kind]
		if km == nil {
			km = make(map[uuid.UUID]centralEntry)
			c.byKind[adv.Kind] = km
		}
		km[adv.ID] = e
		// UDDI has no lease concept; grant an effectively infinite one
		// so well-behaved services stop worrying about renewal.
		c.env.Send(from, wire.PublishAck{AdvertID: adv.ID, OK: true, LeaseMillis: uint64(time.Hour * 24 * 365 / time.Millisecond)})
	case *wire.Renew:
		// Meaningless here; acknowledge so providers don't fail over.
		c.env.Send(from, wire.RenewAck{AdvertID: b.AdvertID, OK: true, LeaseMillis: uint64(time.Hour * 24 * 365 / time.Millisecond)})
	case *wire.Remove:
		c.Stats.Removes++
		if e, ok := c.adverts[b.AdvertID]; ok {
			delete(c.adverts, b.AdvertID)
			delete(c.byKind[e.advert.Kind], b.AdvertID)
		}
	case *wire.Query:
		c.Stats.Queries++
		c.answer(b)
	}
}

func (c *CentralRegistry) answer(q *wire.Query) {
	model, ok := c.models.Model(q.Kind)
	var hits []wire.Advertisement
	if ok {
		if dq, err := model.DecodeQuery(q.Payload); err == nil {
			type scored struct {
				adv wire.Advertisement
				ev  describe.Evaluation
				key string
			}
			var all []scored
			for _, e := range c.byKind[q.Kind] {
				if ev := model.Evaluate(dq, e.desc); ev.Matched {
					all = append(all, scored{adv: e.advert, ev: ev, key: e.desc.ServiceKey()})
				}
			}
			sort.Slice(all, func(i, j int) bool {
				a, b := all[i], all[j]
				if a.ev.Degree != b.ev.Degree {
					return a.ev.Degree > b.ev.Degree
				}
				if a.ev.Score != b.ev.Score {
					return a.ev.Score > b.ev.Score
				}
				return a.key < b.key
			})
			limit := int(q.MaxResults)
			if limit <= 0 {
				limit = 25
			}
			if q.BestOnly {
				limit = 1
			}
			if len(all) > limit {
				all = all[:limit]
			}
			for _, s := range all {
				hits = append(hits, s.adv)
			}
		}
	}
	c.env.Send(transport.Addr(q.ReplyAddr), wire.QueryResult{QueryID: q.QueryID, Adverts: hits, Complete: true})
}

// Adopt is a convenience used by experiments: it lets a central
// registry pre-load advertisements without wire traffic.
func (c *CentralRegistry) Adopt(store *registry.Store) {
	for _, adv := range store.Adverts() {
		model, ok := c.models.Model(adv.Kind)
		if !ok {
			continue
		}
		desc, err := model.DecodeDescription(adv.Payload)
		if err != nil {
			continue
		}
		e := centralEntry{advert: adv, desc: desc}
		c.adverts[adv.ID] = e
		km := c.byKind[adv.Kind]
		if km == nil {
			km = make(map[uuid.UUID]centralEntry)
			c.byKind[adv.Kind] = km
		}
		km[adv.ID] = e
	}
}
