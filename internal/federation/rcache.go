package federation

import (
	"bytes"
	"container/list"
	"time"

	"semdisco/internal/describe"
	"semdisco/internal/wire"
)

// resultCache is the gateway's remote result cache: the remote pools a
// completed fan-out aggregated, keyed by the full query shape, so a
// repeated WAN query is answered from local state instead of flooding
// the registry network again (the MILCOM'07 gateway-coordination
// design's bandwidth argument, applied to repeat traffic).
//
// Unlike the registry's generation-validated cache, a gateway cannot
// observe mutations at remote registries, so entries carry a hard
// expiry derived from the §4.8 lease rule: a result is only as fresh
// as its shortest lease. The entry TTL is min(MaxTTL, shortest
// advertised lease duration among the cached adverts); an empty remote
// result uses the (short) EmptyTTL so a service published moments later
// becomes discoverable quickly.
//
// Local evaluations are never cached here — the local store answers
// exactly (and has its own generation-validated cache); only the
// WAN-expensive remote pools are reused. The Registry is a sans-I/O
// single-goroutine state machine, so the cache needs no lock.
type resultCache struct {
	cap      int
	maxTTL   time.Duration
	emptyTTL time.Duration
	entries  map[rkey]*list.Element
	lru      *list.List // of *rentry, most recent at front
}

// rkey identifies one remote result set. Everything that shapes the
// fan-out — and therefore what came back — is part of the key: the
// payload (by hash, verified on lookup), response control, TTL radius,
// strategy and walker count.
type rkey struct {
	hash     uint64
	kind     describe.Kind
	max      uint16
	best     bool
	ttl      uint8
	strategy wire.Strategy
	walkers  uint8
	domain   string
}

func rkeyFor(q wire.Query) rkey {
	return rkey{
		hash:     describe.PayloadHash(q.Kind, q.Payload),
		kind:     q.Kind,
		max:      q.MaxResults,
		best:     q.BestOnly,
		ttl:      q.TTL,
		strategy: q.Strategy,
		walkers:  q.Walkers,
		domain:   q.Domain,
	}
}

// rentry is one cached remote pool set. pools is read-only once stored:
// respond/MergeRank only read, so serving the same backing arrays to
// many queries is safe.
type rentry struct {
	key     rkey
	payload []byte
	pools   [][]wire.Advertisement
	expires time.Time
}

func newResultCache(capacity int, maxTTL, emptyTTL time.Duration) *resultCache {
	return &resultCache{
		cap:      capacity,
		maxTTL:   maxTTL,
		emptyTTL: emptyTTL,
		entries:  make(map[rkey]*list.Element, capacity),
		lru:      list.New(),
	}
}

// get returns the cached remote pools when a fresh entry exists.
func (c *resultCache) get(key rkey, payload []byte, now time.Time) ([][]wire.Advertisement, bool) {
	el, ok := c.entries[key]
	if !ok {
		fRCacheMisses.Inc()
		return nil, false
	}
	e := el.Value.(*rentry)
	if !bytes.Equal(e.payload, payload) {
		fRCacheMisses.Inc()
		return nil, false // hash collision: miss, never a wrong answer
	}
	if now.After(e.expires) {
		c.remove(el, e)
		fRCacheExpired.Inc()
		return nil, false
	}
	c.lru.MoveToFront(el)
	fRCacheHits.Inc()
	return e.pools, true
}

// put stores the remote pools of a *completely* aggregated fan-out
// (every forwarded child answered — partial, deadline-truncated results
// are never cached). The entry lives until the lease-bounded deadline.
func (c *resultCache) put(key rkey, payload []byte, pools [][]wire.Advertisement, now time.Time) {
	ttl := c.emptyTTL
	first := true
	for _, pool := range pools {
		for _, a := range pool {
			d := time.Duration(a.LeaseMillis) * time.Millisecond
			if d <= 0 {
				continue
			}
			if first || d < ttl {
				ttl = d
				first = false
			}
		}
	}
	if first {
		ttl = c.emptyTTL
	} else if ttl > c.maxTTL {
		ttl = c.maxTTL
	}
	e := &rentry{
		key:     key,
		payload: append([]byte(nil), payload...),
		pools:   pools,
		expires: now.Add(ttl),
	}
	if el, ok := c.entries[key]; ok {
		el.Value = e
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(e)
	for c.lru.Len() > c.cap {
		back := c.lru.Back()
		c.remove(back, back.Value.(*rentry))
	}
	fRCacheSize.Set(int64(c.lru.Len()))
}

func (c *resultCache) remove(el *list.Element, e *rentry) {
	c.lru.Remove(el)
	delete(c.entries, e.key)
	fRCacheSize.Set(int64(c.lru.Len()))
}

// size reports resident entries (tests).
func (c *resultCache) size() int { return c.lru.Len() }
