package registry

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"semdisco/internal/describe"
	"semdisco/internal/profile"
	"semdisco/internal/uuid"
	"semdisco/internal/wire"
)

// TestConcurrentStoreStress hammers every store entry point from many
// goroutines at once; run under -race it proves the shard locking is
// sound. Each goroutine gets its own UUID generator — the generator is
// not shared-safe and real nodes own theirs.
func TestConcurrentStoreStress(t *testing.T) {
	s := newStore(t)
	const (
		writers = 4
		readers = 4
		rounds  = 200
	)
	categories := []string{"Radar", "Camera", "Sensor", "Device"}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g := uuid.NewGenerator(uint64(1000 + w))
			var mine []uuid.UUID
			for i := 0; i < rounds; i++ {
				cat := categories[i%len(categories)]
				p := &profile.Profile{
					ServiceIRI: fmt.Sprintf("urn:svc:w%d-%d", w, i),
					Category:   c(cat),
					Grounding:  "urn:g",
				}
				adv := wire.Advertisement{
					ID: g.New(), Provider: g.New(), ProviderAddr: "x",
					Kind: describe.KindSemantic, Payload: p.Encode(),
					LeaseMillis: uint64(time.Hour / time.Millisecond), Version: 1,
				}
				now := t0.Add(time.Duration(i) * time.Millisecond)
				if _, _, err := s.Publish(adv, now); err != nil {
					t.Error(err)
					return
				}
				mine = append(mine, adv.ID)
				switch i % 5 {
				case 1:
					s.Renew(mine[i/2], now)
				case 2:
					s.Remove(mine[0])
					mine = mine[1:]
				case 3:
					s.ExpireThrough(now.Add(-30 * time.Minute))
				}
			}
		}(w)
	}
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func(rd int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				cat := categories[(rd+i)%len(categories)]
				now := t0.Add(time.Duration(i) * time.Millisecond)
				res, err := s.Evaluate(describe.KindSemantic, semQuery(cat), QueryOptions{MaxResults: 50}, now)
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := s.MergeRank(describe.KindSemantic, semQuery(cat),
					[][]wire.Advertisement{res}, QueryOptions{MaxResults: 10}); err != nil {
					t.Error(err)
					return
				}
				s.Summary()
				s.Len()
				s.NextExpiry()
				for _, a := range res {
					s.Has(a.ID)
					s.Advert(a.ID)
				}
			}
		}(rd)
	}
	wg.Wait()

	// The store must still be internally consistent: every advert the
	// indexes serve is present, and Adverts' count matches Len.
	if got := len(s.Adverts()); got != s.Len() {
		t.Fatalf("Adverts() returned %d entries, Len() says %d", got, s.Len())
	}
}

// TestConcurrentSubscribeAndPublish races standing-query registration
// against publishes that trigger notifications.
func TestConcurrentSubscribeAndPublish(t *testing.T) {
	s := newStore(t)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g := uuid.NewGenerator(uint64(2000 + w))
			for i := 0; i < 100; i++ {
				id, err := s.Subscribe(describe.KindSemantic, semQuery("Radar"), "lan0/sub", g.New(), time.Time{})
				if err != nil {
					t.Error(err)
					return
				}
				p := &profile.Profile{
					ServiceIRI: fmt.Sprintf("urn:svc:sub%d-%d", w, i),
					Category:   c("Radar"), Grounding: "urn:g",
				}
				adv := wire.Advertisement{
					ID: g.New(), Provider: g.New(), ProviderAddr: "x",
					Kind: describe.KindSemantic, Payload: p.Encode(),
					LeaseMillis: uint64(time.Hour / time.Millisecond), Version: 1,
				}
				if _, _, err := s.Publish(adv, t0); err != nil {
					t.Error(err)
					return
				}
				if i%3 == 0 {
					s.Unsubscribe(id)
				}
				s.NumSubscriptions()
				s.PruneSubscriptions(t0)
			}
		}(w)
	}
	wg.Wait()
}

func TestPlanCacheHitsAndEviction(t *testing.T) {
	models := describe.NewRegistry(describe.NewSemanticModel(testOntology(t)))
	s := New(Options{Models: models, PlanCacheSize: 2})

	q1, q2, q3 := semQuery("Radar"), semQuery("Camera"), semQuery("Sensor")
	p1, err := s.plan(describe.KindSemantic, q1)
	if err != nil {
		t.Fatal(err)
	}
	if again, _ := s.plan(describe.KindSemantic, q1); again != p1 {
		t.Fatal("repeated payload did not hit the plan cache")
	}
	s.plan(describe.KindSemantic, q2)
	if got := s.plans.size(); got != 2 {
		t.Fatalf("cache holds %d plans, want 2", got)
	}
	// Touch q1 so q2 is least recently used, then q3 evicts q2.
	s.plan(describe.KindSemantic, q1)
	s.plan(describe.KindSemantic, q3)
	if got := s.plans.size(); got != 2 {
		t.Fatalf("cache grew past its cap: %d", got)
	}
	if again, _ := s.plan(describe.KindSemantic, q1); again != p1 {
		t.Fatal("recently used plan was evicted")
	}
}

func TestPlanCacheDisabled(t *testing.T) {
	models := describe.NewRegistry(describe.NewSemanticModel(testOntology(t)))
	s := New(Options{Models: models, PlanCacheSize: -1})
	if s.plans != nil {
		t.Fatal("negative PlanCacheSize should disable the cache")
	}
	if _, err := s.Evaluate(describe.KindSemantic, semQuery("Radar"), QueryOptions{}, t0); err != nil {
		t.Fatal(err)
	}
}

func TestPlanCacheCollisionIsMiss(t *testing.T) {
	c := newPlanCache(4)
	plan := &queryPlan{}
	h := describe.PayloadHash(describe.KindSemantic, []byte("a"))
	c.put(describe.KindSemantic, []byte("a"), h, plan)
	// Same hash slot, different payload: must miss, not serve plan.
	if got := c.get(describe.KindSemantic, []byte("b"), h); got != nil {
		t.Fatal("colliding payload served a foreign plan")
	}
	if got := c.get(describe.KindKV, []byte("a"), h); got != nil {
		t.Fatal("colliding kind served a foreign plan")
	}
	if got := c.get(describe.KindSemantic, []byte("a"), h); got != plan {
		t.Fatal("exact payload missed")
	}
}
