// Package registry implements the autonomous "thick" registry node of
// the conceptual architecture (§4.1): it stores complete advertisements
// (not just pointers), evaluates queries itself with pluggable
// description models, purges advertisements whose leases expire,
// exercises query response control (max-k / best-only, §3.1), notifies
// subscribers about newly published matches, and doubles as the
// artifact repository for ontologies and schemas so discovery works
// disconnected from the Internet (§4.6).
//
// The store is explicit-time state — no I/O and no internal timers — so
// the same code runs deterministically under the experiment simulator
// and behind the real UDP runtime. Unlike the original single-threaded
// design, the store is safe for concurrent use: the advert and token
// maps are split across lock-striped shards (one sync.RWMutex each), so
// the read path (Evaluate, MergeRank, Summary, Adverts, Advert, Has)
// runs in parallel with itself while writes (Publish, Renew, Remove,
// ExpireThrough) take the write lock only on the shards they touch.
// Each shard owns the lease sub-table for its adverts, keeping the
// freshness check (never serve an expired advert) under the same lock
// as the index lookup. Query decoding is memoized in an LRU plan cache
// keyed by (kind, payload hash), so a federated query forwarded through
// several hops — or evaluated and then merge-ranked at the entry
// registry — decodes its payload once per node, preserving the paper's
// §3.2 claim that "query evaluation may only have to be carried out
// once".
//
// Storage is compact: stored records live in per-shard slab arenas with
// interned token IDs and dense swap-remove index slices (arena.go), and
// standing-query notification runs on an inverted posting-list index
// (subindex.go), so one store holds millions of adverts and the notify
// cost of a publish is proportional to the subscriptions that can
// match it, not to all of them.
package registry

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	stdruntime "runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"semdisco/internal/describe"
	"semdisco/internal/lease"
	"semdisco/internal/uuid"
	"semdisco/internal/wire"
)

// Store is the registry state: advertisements with leases, the model
// registry for query evaluation, subscriptions, and artifacts.
// All methods are safe for concurrent use.
type Store struct {
	models *describe.Registry

	// shards hold the advert arenas, per-kind indexes and lease
	// sub-tables, striped by advertisement ID; count tracks the live
	// advert total so Len never has to sweep the stripes. toks is the
	// store-wide summary-token interner shared by every shard and by
	// the subscription index.
	shards []*shard
	mask   uint32
	count  atomic.Int64
	toks   *tokenInterner

	// byService maps a description's service key to the advert that
	// currently describes it, so republished services do not pile up as
	// duplicates under fresh advertisement IDs. Service keys are opaque
	// strings, so the map is global (not striped) under its own lock; it
	// is touched only on the write path. Each mapping carries the
	// publish sequence number that wrote it (svcSeq), so a deferred
	// cleanup (Remove/ExpireThrough run dropServiceKey after the shard
	// lock is released) can compare-and-delete against the exact
	// mapping its advert established — a racing re-publish of the same
	// advert ID writes a newer sequence and is never clobbered.
	svcMu     sync.Mutex
	svcSeq    uint64
	byService map[string]svcEntry

	plans  *planCache
	qcache *queryCache

	// backend is the durability boundary (store.go): nil is the memory
	// store, a *WAL makes every acknowledged mutation crash-safe.
	// leasePolicy mirrors the policy the shard lease tables were built
	// with; snapshot dumps need it to reconstruct grant instants.
	backend     Backend
	leasePolicy lease.Policy

	artMu     sync.RWMutex
	artifacts map[string][]byte

	// Standing queries. subsArr holds subscriptions in insertion order
	// (the deterministic notification order) with nil tombstones where
	// Unsubscribe/PruneSubscriptions removed entries; compaction is
	// amortized so removal is O(1). subidx is the inverted posting-list
	// index (nil when Options.DisableSubIndex keeps the linear-scan
	// baseline). subSeq stamps each subscription with its insertion
	// rank; index candidates are sorted by it so the indexed path
	// notifies in exactly the baseline's order.
	subMu    sync.RWMutex
	subs     map[uuid.UUID]*subscription
	subsArr  []*subscription
	subsDead int
	subSeq   uint64
	subidx   *subIndex

	// DefaultMaxResults caps result sets when the query does not; the
	// response-implosion guard of §3.1.
	DefaultMaxResults int
}

// shard is one lock stripe of the store. Each kind's index (kindIndex)
// holds dense slices of arena records: all adverts of the kind, the
// per-token posting buckets for prunable queries, and the token-less
// adverts every query must consider conservatively. Records carry
// their positions in these slices, so removal is a swap-remove — no
// per-advert maps beyond the ID lookup.
type shard struct {
	mu      sync.RWMutex
	adverts map[uuid.UUID]*stored
	kinds   map[describe.Kind]*kindIndex
	leases  *lease.Table

	// Arena state (arena.go): fixed-size slabs of stored records, a
	// bump pointer and a free list of recycled slots.
	slabSize int
	slabs    [][]stored
	next     int32
	free     []int32

	// gen counts mutations that can change query results in this shard
	// (publish, remove, expiry purge, lease resurrection). The query
	// result cache stamps each entry with the generation vector it was
	// computed against; validation is then an O(shards) integer compare.
	// Bumps happen while the shard write lock is held, so any reader
	// that can observe mutated shard state also observes the new
	// generation — a cached entry validated against an old generation is
	// linearizable before the in-flight write.
	gen atomic.Uint64

	// nextDeadline caches leases.NextExpiry so the purge scheduler
	// (NextExpiry/ExpireThrough across all shards) reads one atomic
	// pointer per shard instead of taking every shard lock per tick.
	// nil means the shard holds no leases. Refreshed under the write
	// lock after every lease mutation. A *time.Time (not UnixNano) so
	// the simulator's zero-epoch virtual clocks round-trip exactly.
	nextDeadline atomic.Pointer[time.Time]

	// scans and matched accumulate this shard's candidate-scan activity
	// (see ShardStats); updated with one atomic add per collect pass.
	scans   atomic.Uint64
	matched atomic.Uint64
}

// kindIndex is one kind's dense advert indexes inside a shard.
type kindIndex struct {
	all   []*stored         // every advert of the kind; position = stored.kindPos
	byTok map[tok][]*stored // posting bucket per token; position = stored.tokPos[i]
	noTok []*stored         // token-less adverts; position = stored.ntPos
}

// bumpLocked advances the shard generation; the caller holds the shard
// write lock and has made (or is about to make) a result-affecting
// mutation.
func (sh *shard) bumpLocked() { sh.gen.Add(1) }

// refreshDeadlineLocked re-derives the cached next lease deadline; the
// caller holds the shard write lock and has just mutated the lease
// table.
func (sh *shard) refreshDeadlineLocked() {
	if t, ok := sh.leases.NextExpiry(); ok {
		sh.nextDeadline.Store(&t)
	} else {
		sh.nextDeadline.Store(nil)
	}
}

// stored is one arena-resident advert record. It is immutable while
// linked into the shard indexes — updates unlink, release and relink —
// but its slot is recycled after release, so nothing derived from a
// *stored may be used once the shard lock is dropped; escaping data is
// snapshotted by value (hit, removedAdvert) under the lock. svcSeq
// records which byService write this advert made; it is written inside
// Publish's shard critical section and read by removeLocked, also under
// the lock.
type stored struct {
	advert  wire.Advertisement
	desc    describe.Description
	toks    []tok   // interned, deduplicated summary tokens
	tokPos  []int32 // position in each token's posting bucket
	kindPos int32   // position in kindIndex.all
	ntPos   int32   // position in kindIndex.noTok, -1 when tokenized
	slot    int32   // arena slot, for release
	svcSeq  atomic.Uint64
}

// svcEntry is one byService mapping: the advert currently describing a
// service key, tagged with the monotonically increasing sequence number
// of the publish that wrote it. Deferred cleanups compare-and-delete on
// (id, seq) so they can never clobber a newer mapping written by a
// racing re-publish of the same advert ID.
type svcEntry struct {
	id  uuid.UUID
	seq uint64
}

type subscription struct {
	id  uuid.UUID
	seq uint64 // insertion rank; stable across renewals, the notify order
	pos int    // index in subsArr (tombstoned on removal)

	kind    describe.Kind
	query   describe.Query
	payload []byte // the encoded query, retained for snapshot dumps
	notify  string // opaque subscriber address, returned in events
	// expires leases the subscription (§4.8 applies to standing queries
	// too: crashed subscribers must stop consuming notifications).
	// The zero time means no expiry (local in-process subscriptions).
	expires time.Time

	// removed marks a tombstoned record: posting lists drop entries
	// lazily, so probes must skip records that were unsubscribed or
	// replaced by a renewal. Guarded by subMu.
	removed bool

	// Compiled index keys (subindex.go): exactly one of idxConcepts /
	// idxToks / catchAll describes how the subscription is posted.
	idxToks     []tok
	idxConcepts []int32
	catchAll    bool
}

func (sub *subscription) alive(now time.Time) bool {
	return sub.expires.IsZero() || !sub.expires.Before(now)
}

// Options configures a store.
type Options struct {
	// Models is the description-model registry; required.
	Models *describe.Registry
	// Leases is the lease policy for granted advertisements.
	Leases lease.Policy
	// DefaultMaxResults caps result sets when queries don't; zero
	// means 25.
	DefaultMaxResults int
	// Shards is the number of lock stripes the advert maps are split
	// across, rounded up to a power of two; zero means 16.
	Shards int
	// PlanCacheSize bounds the memoized query-plan LRU; zero means 128,
	// negative disables plan caching.
	PlanCacheSize int
	// QueryCacheSize bounds the generation-validated query result LRU;
	// zero means 256, negative disables result caching. Cached results
	// are exact: entries are validated against per-shard generation
	// counters and the earliest lease deadline of the results they
	// hold, so a stale entry can never be served.
	QueryCacheSize int
	// DisableSubIndex keeps Publish's subscription notification on the
	// linear scan over every standing query instead of the inverted
	// posting-list index. It exists as the property-tested baseline
	// (mirroring ontology.DisableCompiledIndex); production stores
	// leave it false.
	DisableSubIndex bool
	// ArenaSlab is the per-shard advert arena slab size in stored
	// records; zero means 1024. Smaller slabs waste less memory on
	// tiny stores, larger ones mean fewer allocations at million-advert
	// scale.
	ArenaSlab int
	// Backend is the durability boundary (store.go). Nil keeps the
	// memory store. Stores recovered from a WAL are built through
	// Recover, which replays first and attaches the backend itself —
	// set this directly only for custom Backend implementations.
	Backend Backend
}

// New returns an empty registry store.
func New(opts Options) *Store {
	if opts.Models == nil {
		panic("registry: nil model registry")
	}
	if opts.DefaultMaxResults == 0 {
		opts.DefaultMaxResults = 25
	}
	if opts.Shards == 0 {
		opts.Shards = 16
	}
	if opts.ArenaSlab <= 0 {
		opts.ArenaSlab = defaultArenaSlab
	}
	n := 1 << bits.Len(uint(opts.Shards-1)) // next power of two
	shards := make([]*shard, n)
	for i := range shards {
		shards[i] = &shard{
			adverts:  make(map[uuid.UUID]*stored),
			kinds:    make(map[describe.Kind]*kindIndex),
			leases:   lease.NewTable(opts.Leases),
			slabSize: opts.ArenaSlab,
		}
	}
	var plans *planCache
	if opts.PlanCacheSize >= 0 {
		size := opts.PlanCacheSize
		if size == 0 {
			size = 128
		}
		plans = newPlanCache(size)
	}
	var qcache *queryCache
	if opts.QueryCacheSize >= 0 {
		size := opts.QueryCacheSize
		if size == 0 {
			size = 256
		}
		qcache = newQueryCache(size)
	}
	s := &Store{
		models:            opts.Models,
		shards:            shards,
		mask:              uint32(n - 1),
		toks:              newTokenInterner(),
		byService:         make(map[string]svcEntry),
		plans:             plans,
		qcache:            qcache,
		backend:           opts.Backend,
		leasePolicy:       opts.Leases,
		artifacts:         make(map[string][]byte),
		subs:              make(map[uuid.UUID]*subscription),
		DefaultMaxResults: opts.DefaultMaxResults,
	}
	if !opts.DisableSubIndex {
		s.subidx = newSubIndex()
	}
	return s
}

func (s *Store) shardFor(id uuid.UUID) *shard {
	return s.shards[binary.BigEndian.Uint32(id[:4])&s.mask]
}

// Len returns the number of stored advertisements.
func (s *Store) Len() int { return int(s.count.Load()) }

// countAdd moves the live-advert count, mirroring the change into the
// process-wide registry.adverts gauge.
func (s *Store) countAdd(d int64) {
	s.count.Add(d)
	mAdverts.Add(d)
}

// Models exposes the model registry (federation needs it for summary
// pruning decisions).
func (s *Store) Models() *describe.Registry { return s.models }

// Errors returned by Publish.
var (
	// ErrUnknownKind means this registry has no model for the payload
	// kind; per the paper the node "silently discards" such payloads,
	// which callers implement by mapping this error to a skip.
	ErrUnknownKind = errors.New("registry: unknown description kind")
	// ErrStaleVersion rejects a publish older than the stored version.
	ErrStaleVersion = errors.New("registry: stale advertisement version")
	// ErrBadPayload wraps description decode failures.
	ErrBadPayload = errors.New("registry: bad description payload")
)

// Notification reports a subscription hit caused by a publish.
type Notification struct {
	SubID      uuid.UUID
	NotifyAddr string
	Advert     wire.Advertisement
}

// Publish stores (or updates) an advertisement and grants its lease.
// It returns the granted lease duration and any notifications due.
//
// Update semantics follow §4.10: the advertisement ID is the handle;
// a publish with a known ID and version ≥ stored version replaces the
// content and refreshes the lease; a lower version is rejected as
// stale (it may arrive late through a slower forwarding path).
func (s *Store) Publish(adv wire.Advertisement, now time.Time) (time.Duration, []Notification, error) {
	model, ok := s.models.Model(adv.Kind)
	if !ok {
		mPublishErrors.Inc()
		return 0, nil, fmt.Errorf("%w: %v", ErrUnknownKind, adv.Kind)
	}
	desc, err := model.DecodeDescription(adv.Payload)
	if err != nil {
		mPublishErrors.Inc()
		return 0, nil, fmt.Errorf("%w: %v", ErrBadPayload, err)
	}
	if adv.ID.IsNil() {
		mPublishErrors.Inc()
		return 0, nil, errors.New("registry: advertisement has nil ID")
	}
	tokens := model.SummaryTokens(desc)
	svcKey := desc.ServiceKey()

	sh := s.shardFor(adv.ID)
	sh.mu.Lock()
	if old, exists := sh.adverts[adv.ID]; exists {
		if adv.Version < old.advert.Version {
			have := old.advert.Version
			sh.mu.Unlock()
			mPublishErrors.Inc()
			return 0, nil, fmt.Errorf("%w: have v%d, got v%d", ErrStaleVersion, have, adv.Version)
		}
		// An update may change the description's tokens: unindex first.
		sh.removeLocked(adv.ID)
		s.countAdd(-1)
	}
	st := sh.alloc()
	st.advert = adv
	st.desc = desc
	st.toks = s.toks.internAll(tokens)
	toks := st.toks // slice header survives a concurrent release after unlock
	sh.insertLocked(st)
	granted := sh.leases.Grant(adv.ID, time.Duration(adv.LeaseMillis)*time.Millisecond, now)
	sh.bumpLocked()
	sh.refreshDeadlineLocked()
	// The byService mapping (and st.svcSeq) is written while the shard
	// lock still pins st's arena slot: a racing Remove could otherwise
	// recycle the slot and the svcSeq store would corrupt an unrelated
	// record. Lock order is always shard → svcMu, never the reverse.
	var oldSvc svcEntry
	hadSvc := false
	if svcKey != "" {
		s.svcMu.Lock()
		oldSvc, hadSvc = s.byService[svcKey]
		s.svcSeq++
		s.byService[svcKey] = svcEntry{id: adv.ID, seq: s.svcSeq}
		st.svcSeq.Store(s.svcSeq)
		s.svcMu.Unlock()
	}
	// The log record is appended while the shard lock still orders this
	// mutation (a buffered write, no I/O); the durability barrier waits
	// until after notification matching, outside every lock.
	var lsn uint64
	if s.backend != nil {
		lsn = s.backend.AppendPublish(adv, granted, now)
	}
	sh.mu.Unlock()
	s.countAdd(1)
	mPublish.Inc()

	// A service republishing under a new advertisement ID (e.g. after
	// its registry crashed) supersedes its previous advert.
	if hadSvc && oldSvc.id != adv.ID {
		osh := s.shardFor(oldSvc.id)
		osh.mu.Lock()
		if prev, ok := osh.adverts[oldSvc.id]; ok && adv.Version >= prev.advert.Version {
			osh.removeLocked(oldSvc.id)
			osh.leases.Remove(oldSvc.id)
			osh.bumpLocked()
			osh.refreshDeadlineLocked()
			s.countAdd(-1)
			if s.backend != nil {
				if l := s.backend.AppendRemove(oldSvc.id); l > lsn {
					lsn = l
				}
			}
		}
		osh.mu.Unlock()
	}

	notes := s.notifySubs(model, adv, desc, toks, now)
	if err := s.sync(lsn); err != nil {
		return granted, notes, fmt.Errorf("%w: %v", ErrDurability, err)
	}
	return granted, notes, nil
}

// insertLocked links st into the shard's kind index; the caller holds
// the shard write lock and has fully initialized the record.
func (sh *shard) insertLocked(st *stored) {
	kind := st.advert.Kind
	sh.adverts[st.advert.ID] = st
	ki := sh.kinds[kind]
	if ki == nil {
		ki = &kindIndex{}
		sh.kinds[kind] = ki
	}
	st.kindPos = int32(len(ki.all))
	ki.all = append(ki.all, st)
	if len(st.toks) == 0 {
		st.ntPos = int32(len(ki.noTok))
		ki.noTok = append(ki.noTok, st)
		return
	}
	st.ntPos = -1
	if ki.byTok == nil {
		ki.byTok = make(map[tok][]*stored)
	}
	st.tokPos = make([]int32, len(st.toks))
	for i, t := range st.toks {
		b := ki.byTok[t]
		st.tokPos[i] = int32(len(b))
		ki.byTok[t] = append(b, st)
	}
}

// removedAdvert is the by-value snapshot removeLocked takes before the
// record's arena slot is released: everything a caller may need after
// the shard lock is dropped (ExpireThrough returns the advert,
// dropServiceKey compare-and-deletes on key/id/seq). The Payload slice
// header aliases the immutable publish-time backing array, so copying
// the struct is safe and cheap.
type removedAdvert struct {
	advert wire.Advertisement
	svcKey string
	svcSeq uint64
}

// removeLocked unlinks id from the shard indexes (not the lease table
// and not the service-key map), releases its arena slot, and returns a
// snapshot of the removed entry; the caller holds the shard write lock.
func (sh *shard) removeLocked(id uuid.UUID) (removedAdvert, bool) {
	st, ok := sh.adverts[id]
	if !ok {
		return removedAdvert{}, false
	}
	delete(sh.adverts, id)
	ki := sh.kinds[st.advert.Kind]
	// Swap-remove from the all-of-kind slice.
	last := len(ki.all) - 1
	moved := ki.all[last]
	ki.all[st.kindPos] = moved
	moved.kindPos = st.kindPos
	ki.all[last] = nil
	ki.all = ki.all[:last]
	if st.ntPos >= 0 {
		last := len(ki.noTok) - 1
		moved := ki.noTok[last]
		ki.noTok[st.ntPos] = moved
		moved.ntPos = st.ntPos
		ki.noTok[last] = nil
		ki.noTok = ki.noTok[:last]
	} else {
		for i, t := range st.toks {
			b := ki.byTok[t]
			last := len(b) - 1
			moved := b[last]
			pos := st.tokPos[i]
			b[pos] = moved
			if moved != st {
				// Fix the moved record's position entry for this token.
				for j, mt := range moved.toks {
					if mt == t && moved.tokPos[j] == int32(last) {
						moved.tokPos[j] = pos
						break
					}
				}
			}
			b[last] = nil
			if last == 0 {
				delete(ki.byTok, t)
			} else {
				ki.byTok[t] = b[:last]
			}
		}
	}
	snap := removedAdvert{advert: st.advert, svcKey: st.desc.ServiceKey(), svcSeq: st.svcSeq.Load()}
	sh.release(st)
	return snap, true
}

// dropServiceKey clears the service-key mapping if it still holds the
// exact entry the removed advert wrote. It runs after the shard lock is
// released, so it works on the removal snapshot and must compare both
// the advert ID and the publish sequence: a re-publish of the same
// advert ID racing the removal has written a newer sequence, and that
// fresh mapping must survive.
func (s *Store) dropServiceKey(r removedAdvert) {
	if r.svcKey == "" {
		return
	}
	s.svcMu.Lock()
	if e, ok := s.byService[r.svcKey]; ok && e.id == r.advert.ID && e.seq == r.svcSeq {
		delete(s.byService, r.svcKey)
	}
	s.svcMu.Unlock()
}

// Renew refreshes an advertisement lease; ok=false means the registry
// no longer holds the advertisement (or can no longer record the
// renewal durably) and the provider must republish.
func (s *Store) Renew(id uuid.UUID, now time.Time) (time.Duration, bool) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	st, ok := sh.adverts[id]
	if !ok {
		sh.mu.Unlock()
		return 0, false
	}
	// A renew that lands after the lease lapsed but before the purge
	// sweep resurrects the advert into the result set, so it must
	// invalidate cached results like a publish would. An ordinary renew
	// only pushes the deadline out and leaves results unchanged — but a
	// skewed caller clock can pull a deadline in, which would outlive a
	// cached entry's expiry stamp, so that case invalidates too.
	oldExp, wasAlive := sh.leases.AliveUntil(id, now)
	granted, ok := sh.leases.Renew(id, time.Duration(st.advert.LeaseMillis)*time.Millisecond, now)
	var lsn uint64
	if ok {
		if !wasAlive || now.Add(granted).Before(oldExp) {
			sh.bumpLocked()
		}
		sh.refreshDeadlineLocked()
		if s.backend != nil {
			lsn = s.backend.AppendRenew(id, now)
		}
	}
	sh.mu.Unlock()
	if err := s.sync(lsn); err != nil {
		return 0, false
	}
	return granted, ok
}

// Remove withdraws an advertisement explicitly. The removal is applied
// even if the durability barrier fails — the sticky backend error then
// surfaces on the next Publish/Renew/Subscribe instead.
func (s *Store) Remove(id uuid.UUID) bool {
	sh := s.shardFor(id)
	sh.mu.Lock()
	snap, ok := sh.removeLocked(id)
	var lsn uint64
	if ok {
		sh.leases.Remove(id)
		sh.bumpLocked()
		sh.refreshDeadlineLocked()
		if s.backend != nil {
			lsn = s.backend.AppendRemove(id)
		}
	}
	sh.mu.Unlock()
	if !ok {
		return false
	}
	s.countAdd(-1)
	s.dropServiceKey(snap)
	_ = s.sync(lsn)
	return true
}

// ExpireThrough purges every advertisement whose lease deadline is at
// or before now and returns the purged advertisements — "removal of
// obsolete advertisements" (§4.8). Shards whose cached next deadline is
// in the future are skipped without taking their lock, so an idle tick
// over a large store costs one atomic load per shard.
func (s *Store) ExpireThrough(now time.Time) []wire.Advertisement {
	var out []wire.Advertisement
	var dropped []removedAdvert
	var lsn uint64
	for _, sh := range s.shards {
		if next := sh.nextDeadline.Load(); next == nil || next.After(now) {
			continue
		}
		sh.mu.Lock()
		expired := sh.leases.ExpireThrough(now)
		for _, id := range expired {
			if snap, ok := sh.removeLocked(id); ok {
				out = append(out, snap.advert)
				dropped = append(dropped, snap)
				s.countAdd(-1)
			}
		}
		if len(expired) > 0 {
			sh.bumpLocked()
			// The sweep is logged per purged shard, under the shard lock:
			// purge timing decides whether a later publish of the same ID
			// replays as a fresh insert or a stale-version reject, so a
			// record appended after the lock dropped could be misordered
			// against a racing publish.
			if s.backend != nil {
				if l := s.backend.AppendExpire(now); l > lsn {
					lsn = l
				}
			}
		}
		sh.refreshDeadlineLocked()
		sh.mu.Unlock()
	}
	for _, snap := range dropped {
		s.dropServiceKey(snap)
	}
	mAdvertsExpired.Add(uint64(len(out)))
	_ = s.sync(lsn)
	return out
}

// NextExpiry returns the earliest lease deadline for purge scheduling.
// It reads the per-shard cached deadlines, so it is lock-free.
func (s *Store) NextExpiry() (time.Time, bool) {
	var best time.Time
	found := false
	for _, sh := range s.shards {
		if t := sh.nextDeadline.Load(); t != nil && (!found || t.Before(best)) {
			best, found = *t, true
		}
	}
	return best, found
}

// QueryOptions is the response control the client delegates to the
// registry (§3.1: "limited clients should be allowed to delegate
// service selection to registry nodes").
type QueryOptions struct {
	// MaxResults caps the result count; 0 uses the store default.
	MaxResults int
	// BestOnly returns only the single best-ranked advertisement.
	BestOnly bool
	// NoCache forces a live evaluation, bypassing the query result
	// cache for this call (the wire protocol's fresh-results flag).
	NoCache bool
}

func (s *Store) effectiveLimit(opts QueryOptions) int {
	limit := opts.MaxResults
	if limit <= 0 {
		limit = s.DefaultMaxResults
	}
	if opts.BestOnly {
		limit = 1
	}
	return limit
}

// Intra-query fan-out pays off only when one query must evaluate many
// candidates: a full-kind scan of a big store, or a prunable query
// whose token neighbourhood is wide (a near-root semantic category).
// Narrow queries stay on the caller goroutine — under concurrent load
// the parallelism comes from the shard read locks instead.
const (
	fanOutMinAdverts = 4096
	fanOutMinTokens  = 16
)

func (s *Store) fanOut(plan *queryPlan) bool {
	if len(s.shards) == 1 || stdruntime.GOMAXPROCS(0) < 2 {
		return false
	}
	if int(s.count.Load()) < fanOutMinAdverts {
		return false
	}
	return !plan.prunable || len(plan.tokens) > fanOutMinTokens
}

// Evaluate runs a query payload against the stored advertisements of
// its kind and returns matching advertisements ranked best-first and
// capped per the options. Unknown kinds return ErrUnknownKind so the
// caller can skip-and-forward (a registry may still forward queries it
// cannot evaluate itself).
//
// Selection keeps a bounded top-K (K = the effective result cap) per
// shard instead of sorting every hit, and large scans fan out across
// shards on a bounded worker pool.
//
// When the query result cache is enabled (Options.QueryCacheSize) the
// ranked result set is memoized keyed by (payload hash, kind, effective
// limit, best-only) and validated against the per-shard generation
// vector plus the earliest lease deadline it contains — cached answers
// are always exactly what a live evaluation would return. Concurrent
// identical queries share one computation through a singleflight group.
func (s *Store) Evaluate(kind describe.Kind, payload []byte, opts QueryOptions, now time.Time) ([]wire.Advertisement, error) {
	start := time.Now()
	plan, err := s.plan(kind, payload)
	if err != nil {
		if errors.Is(err, ErrUnknownKind) {
			return nil, err
		}
		return nil, fmt.Errorf("registry: bad query payload: %w", err)
	}
	limit := s.effectiveLimit(opts)
	var out []wire.Advertisement
	if s.qcache != nil && !opts.NoCache {
		key := qkey{hash: plan.hash, kind: kind, limit: limit, best: opts.BestOnly}
		out = s.qcache.evaluate(s, key, payload, kind, plan, limit, now)
	} else {
		out, _ = s.evaluateLive(kind, plan, limit, now)
	}
	mEvaluate.Inc()
	mEvaluateLatency.Observe(time.Since(start).Microseconds())
	return out, nil
}

// genVector snapshots every shard generation. The query cache snapshots
// it *before* reading shard data, so a mutation racing the collection
// makes the filled entry conservatively stale rather than wrongly
// fresh.
func (s *Store) genVector() []uint64 {
	gens := make([]uint64, len(s.shards))
	for i, sh := range s.shards {
		gens[i] = sh.gen.Load()
	}
	return gens
}

// gensCurrent reports whether no result-affecting mutation has happened
// since gens was snapshotted.
func (s *Store) gensCurrent(gens []uint64) bool {
	for i, sh := range s.shards {
		if sh.gen.Load() != gens[i] {
			return false
		}
	}
	return true
}

// evaluateLive runs the uncached evaluation and returns the ranked,
// capped result set plus the earliest lease deadline among the returned
// advertisements (zero when the set is empty) — the freshness horizon a
// cached copy of this result is valid until.
func (s *Store) evaluateLive(kind describe.Kind, plan *queryPlan, limit int, now time.Time) ([]wire.Advertisement, time.Time) {
	// Query tokens resolve to interned IDs once per evaluation, never
	// in the cached plan: a token unknown to the interner has no
	// posting bucket today but may be interned by a later publish.
	var qtoks []tok
	if plan.prunable {
		qtoks = s.toks.lookupAll(plan.tokens)
	}
	var hits []hit
	truncated := false
	if s.fanOut(plan) {
		mEvaluateFanout.Inc()
		hits = s.collectParallel(kind, plan, qtoks, limit, now)
		truncated = len(hits) > limit
	} else {
		top := newTopK(limit)
		for _, sh := range s.shards {
			sh.collect(kind, plan, qtoks, now, top)
		}
		hits = top.hits
		truncated = top.dropped > 0
	}
	sortHits(hits)
	if len(hits) > limit {
		hits = hits[:limit]
	}
	out := make([]wire.Advertisement, len(hits))
	var minExpiry time.Time
	for i, h := range hits {
		out[i] = h.adv
		if minExpiry.IsZero() || h.expires.Before(minExpiry) {
			minExpiry = h.expires
		}
	}
	if truncated {
		mEvaluateTruncated.Inc()
	}
	return out, minExpiry
}

// collect evaluates the shard's candidates for the plan into top.
// Scan activity accumulates in local counters and lands in the shard
// (and aggregate) obs counters with one atomic add per pass, keeping
// the per-candidate loop free of shared-cacheline traffic.
func (sh *shard) collect(kind describe.Kind, plan *queryPlan, qtoks []tok, now time.Time, top *topK) {
	var scanned, matched uint64
	defer func() {
		if scanned > 0 {
			sh.scans.Add(scanned)
			sh.matched.Add(matched)
			mShardScans.Add(scanned)
		}
	}()
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	ki := sh.kinds[kind]
	if ki == nil {
		return
	}
	consider := func(st *stored) {
		scanned++
		expires, alive := sh.leases.AliveUntil(st.advert.ID, now)
		if !alive {
			return // expired but not yet purged: never serve stale data
		}
		if ev := plan.model.Evaluate(plan.query, st.desc); ev.Matched {
			matched++
			// The hit snapshots the advert by value: the record's arena
			// slot may be recycled the moment the read lock drops.
			top.push(hit{adv: st.advert, key: st.desc.ServiceKey(), ev: ev, expires: expires})
		}
	}
	if plan.prunable {
		// Indexed path: only adverts sharing a token can match, plus
		// token-less adverts which are always considered conservatively.
		// An advert appears in exactly one bucket per distinct token it
		// carries, and token-less adverts appear in no bucket, so dedup
		// state is needed only for multi-token adverts — single-token
		// populations (the common case) allocate no map at all.
		var seen map[uuid.UUID]struct{}
		for _, t := range qtoks {
			for _, st := range ki.byTok[t] {
				if len(st.toks) > 1 {
					if seen == nil {
						seen = make(map[uuid.UUID]struct{})
					}
					if _, dup := seen[st.advert.ID]; dup {
						continue
					}
					seen[st.advert.ID] = struct{}{}
				}
				consider(st)
			}
		}
		for _, st := range ki.noTok {
			consider(st)
		}
	} else {
		for _, st := range ki.all {
			consider(st)
		}
	}
}

// collectParallel fans the shard scans out across a bounded worker
// pool (at most GOMAXPROCS workers) and merges the per-worker top-K
// lists. The union of per-shard top-Ks is a superset of the global
// top-K, so the merge loses nothing.
func (s *Store) collectParallel(kind describe.Kind, plan *queryPlan, qtoks []tok, limit int, now time.Time) []hit {
	workers := stdruntime.GOMAXPROCS(0)
	if workers > len(s.shards) {
		workers = len(s.shards)
	}
	results := make([][]hit, workers)
	var next atomic.Int32
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			top := newTopK(limit)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(s.shards) {
					break
				}
				s.shards[i].collect(kind, plan, qtoks, now, top)
			}
			results[w] = top.hits
		}(w)
	}
	wg.Wait()
	total := 0
	for _, r := range results {
		total += len(r)
	}
	merged := make([]hit, 0, total)
	for _, r := range results {
		merged = append(merged, r...)
	}
	return merged
}

// MergeRank re-ranks advertisements pooled from several registries and
// applies response control once more — the entry registry's aggregation
// step for federated queries. Duplicate advertisement IDs keep the
// highest version; duplicate service keys keep one advert. The query
// payload goes through the same plan cache as Evaluate, so a federated
// query decodes its payload once per node, not once per stage.
func (s *Store) MergeRank(kind describe.Kind, payload []byte, pools [][]wire.Advertisement, opts QueryOptions) ([]wire.Advertisement, error) {
	plan, err := s.plan(kind, payload)
	if err != nil {
		return nil, err
	}
	mMergeRank.Inc()
	byID := make(map[uuid.UUID]wire.Advertisement)
	for _, pool := range pools {
		for _, a := range pool {
			if prev, ok := byID[a.ID]; !ok || a.Version > prev.Version {
				byID[a.ID] = a
			}
		}
	}
	// Deterministic iteration for the dedup-by-service step.
	ids := make([]uuid.UUID, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return uuid.Compare(ids[i], ids[j]) < 0 })

	limit := s.effectiveLimit(opts)
	top := newTopK(limit)
	seenService := make(map[string]bool)
	for _, id := range ids {
		a := byID[id]
		desc, err := plan.model.DecodeDescription(a.Payload)
		if err != nil {
			continue // corrupt result from a remote registry: skip
		}
		key := desc.ServiceKey()
		if key != "" {
			if seenService[key] {
				continue
			}
			seenService[key] = true
		}
		ev := plan.model.Evaluate(plan.query, desc)
		if !ev.Matched {
			continue // remote registry had a different opinion: re-check
		}
		top.push(hit{adv: a, key: key, ev: ev})
	}
	hits := top.hits
	sortHits(hits)
	out := make([]wire.Advertisement, len(hits))
	for i, h := range hits {
		out[i] = h.adv
	}
	return out, nil
}

// Summary aggregates the summary tokens of all live advertisements per
// kind — the digest registries gossip to peers for forwarding pruning.
func (s *Store) Summary() []wire.SummaryEntry {
	var entries []wire.SummaryEntry
	for _, k := range s.models.Kinds() {
		tokens := map[tok]bool{}
		for _, sh := range s.shards {
			sh.mu.RLock()
			if ki := sh.kinds[k]; ki != nil {
				for _, st := range ki.all {
					for _, t := range st.toks {
						tokens[t] = true
					}
				}
			}
			sh.mu.RUnlock()
		}
		if len(tokens) == 0 {
			continue
		}
		list := make([]string, 0, len(tokens))
		for t := range tokens {
			list = append(list, s.toks.str(t))
		}
		sort.Strings(list)
		entries = append(entries, wire.SummaryEntry{Kind: k, Tokens: list})
	}
	return entries
}

// Adverts returns all stored advertisements (deterministic order); the
// federation's push-cooperation and tests use it.
func (s *Store) Adverts() []wire.Advertisement {
	out := make([]wire.Advertisement, 0, s.Len())
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, st := range sh.adverts {
			out = append(out, st.advert)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return uuid.Compare(out[i].ID, out[j].ID) < 0 })
	return out
}

// Advert returns a stored advertisement by ID.
func (s *Store) Advert(id uuid.UUID) (wire.Advertisement, bool) {
	sh := s.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	st, ok := sh.adverts[id]
	if !ok {
		return wire.Advertisement{}, false
	}
	return st.advert, true
}

// LeaseDeadline returns the advertisement's current absolute lease
// deadline; ok=false when the registry does not hold the advertisement.
// Crash-recovery tests and the /status endpoint use it to check that a
// recovered advert kept exactly the remaining lease it had.
func (s *Store) LeaseDeadline(id uuid.UUID) (time.Time, bool) {
	sh := s.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if _, ok := sh.adverts[id]; !ok {
		return time.Time{}, false
	}
	return sh.leases.Expires(id)
}

// Has reports whether the advertisement is stored (and not yet purged).
func (s *Store) Has(id uuid.UUID) bool {
	sh := s.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	_, ok := sh.adverts[id]
	return ok
}

// Subscribe registers a standing query; every future publish whose
// description matches produces a Notification (the paper notes "some
// systems today also allow registration for notifications about service
// advertisements of interest"). The zero expires time means no expiry
// (in-process subscriptions); wire subscriptions pass a lease deadline
// and renew by re-subscribing under the same ID.
//
// The subscription is compiled into the inverted notification index
// here, once — Publish then probes posting lists instead of evaluating
// every standing query (subindex.go).
func (s *Store) Subscribe(kind describe.Kind, payload []byte, notifyAddr string, id uuid.UUID, expires time.Time) (uuid.UUID, error) {
	plan, err := s.plan(kind, payload)
	if err != nil {
		return uuid.Nil, err
	}
	// The payload is retained on the record (cloned: the wire buffer it
	// arrived in is reused) so snapshot dumps can re-encode the
	// subscription exactly as it was registered.
	pl := append([]byte(nil), payload...)
	s.subMu.Lock()
	if existing, ok := s.subs[id]; ok {
		// Renewal. A renewal may change the query or kind, which changes
		// the posting lists the subscription belongs to, so the old
		// record is tombstoned and replaced by a fresh one that keeps
		// the original seq and slot — the notification order is stable
		// across renewals, exactly like the in-place update it replaces.
		sub := &subscription{
			id: id, seq: existing.seq, pos: existing.pos,
			kind: kind, query: plan.query, payload: pl, notify: notifyAddr, expires: expires,
		}
		if s.subidx != nil {
			s.subidx.remove(existing)
		}
		existing.removed = true
		s.subsArr[existing.pos] = sub
		s.subs[id] = sub
		if s.subidx != nil {
			s.compileSub(sub, plan)
			s.subidx.insert(sub)
			s.maybeRebuildSubsLocked()
		}
	} else {
		s.subSeq++
		sub := &subscription{
			id: id, seq: s.subSeq, pos: len(s.subsArr),
			kind: kind, query: plan.query, payload: pl, notify: notifyAddr, expires: expires,
		}
		s.subs[id] = sub
		s.subsArr = append(s.subsArr, sub)
		if s.subidx != nil {
			s.compileSub(sub, plan)
			s.subidx.insert(sub)
		}
	}
	var lsn uint64
	if s.backend != nil {
		lsn = s.backend.AppendSubscribe(id, kind, pl, notifyAddr, expires)
	}
	s.subMu.Unlock()
	if err := s.sync(lsn); err != nil {
		return uuid.Nil, fmt.Errorf("%w: %v", ErrDurability, err)
	}
	return id, nil
}

// PruneSubscriptions drops standing queries whose lease lapsed and
// returns how many were removed.
func (s *Store) PruneSubscriptions(now time.Time) int {
	s.subMu.Lock()
	removed := 0
	for i, sub := range s.subsArr {
		if sub == nil || sub.alive(now) {
			continue
		}
		delete(s.subs, sub.id)
		sub.removed = true
		s.subsArr[i] = nil
		s.subsDead++
		if s.subidx != nil {
			s.subidx.remove(sub)
		}
		removed++
	}
	var lsn uint64
	if removed > 0 {
		s.compactSubsLocked()
		s.maybeRebuildSubsLocked()
		// Logged under subMu for the same misordering reason as
		// AppendExpire: prune timing is result-affecting for renewals.
		if s.backend != nil {
			lsn = s.backend.AppendPruneSubs(now)
		}
	}
	s.subMu.Unlock()
	_ = s.sync(lsn)
	return removed
}

// NumSubscriptions returns the number of standing queries (including
// expired-but-unpruned ones).
func (s *Store) NumSubscriptions() int {
	s.subMu.RLock()
	defer s.subMu.RUnlock()
	return len(s.subs)
}

// Unsubscribe removes a standing query in O(1): the array slot is
// tombstoned (compacted amortized) and the index postings are dropped
// lazily, so removal cost does not grow with the subscription count.
func (s *Store) Unsubscribe(id uuid.UUID) bool {
	s.subMu.Lock()
	sub, ok := s.subs[id]
	if !ok {
		s.subMu.Unlock()
		return false
	}
	delete(s.subs, id)
	sub.removed = true
	s.subsArr[sub.pos] = nil
	s.subsDead++
	if s.subidx != nil {
		s.subidx.remove(sub)
	}
	s.compactSubsLocked()
	s.maybeRebuildSubsLocked()
	var lsn uint64
	if s.backend != nil {
		lsn = s.backend.AppendUnsubscribe(id)
	}
	s.subMu.Unlock()
	_ = s.sync(lsn)
	return true
}

// compactSubsLocked rewrites subsArr without tombstones once they
// outnumber live entries — amortized O(1) per removal, and insertion
// order (the notification order) is preserved. The caller holds the
// subMu write lock.
func (s *Store) compactSubsLocked() {
	if s.subsDead <= 32 || s.subsDead*2 <= len(s.subsArr) {
		return
	}
	kept := s.subsArr[:0]
	for _, sub := range s.subsArr {
		if sub != nil {
			sub.pos = len(kept)
			kept = append(kept, sub)
		}
	}
	// Clear the tail so dropped subscriptions don't linger reachable.
	tail := s.subsArr[len(kept):]
	for i := range tail {
		tail[i] = nil
	}
	s.subsArr = kept
	s.subsDead = 0
}

// PutArtifact stores an ontology/schema document under its IRI (§4.6).
func (s *Store) PutArtifact(iri string, data []byte) {
	cp := make([]byte, len(data))
	copy(cp, data)
	s.artMu.Lock()
	s.artifacts[iri] = cp
	s.artMu.Unlock()
}

// Artifact fetches a stored artifact.
func (s *Store) Artifact(iri string) ([]byte, bool) {
	s.artMu.RLock()
	defer s.artMu.RUnlock()
	d, ok := s.artifacts[iri]
	return d, ok
}
