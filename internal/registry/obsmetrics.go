package registry

import "semdisco/internal/obs"

// Runtime observability counters for the registry hot paths. All are
// process-wide (obs.Default): a simulation running many stores observes
// their sum. Names, units and the experiments they support are
// documented in OBSERVABILITY.md; `make docs-check` keeps that file in
// sync with this list.
var (
	mPublish = obs.NewCounter("registry.publish", "count",
		"advertisements stored or updated")
	mPublishErrors = obs.NewCounter("registry.publish.errors", "count",
		"publishes rejected (unknown kind, bad payload, stale version)")
	mEvaluate = obs.NewCounter("registry.evaluate", "count",
		"local query evaluations")
	mEvaluateLatency = obs.NewHistogram("registry.evaluate.latency_us", "us",
		"local query evaluation latency", obs.LatencyBucketsUS)
	mEvaluateFanout = obs.NewCounter("registry.evaluate.fanout", "count",
		"evaluations that fanned out across shards on the worker pool")
	mEvaluateTruncated = obs.NewCounter("registry.evaluate.truncated", "count",
		"evaluations whose matches exceeded the result cap (top-K truncation)")
	mMergeRank = obs.NewCounter("registry.mergerank", "count",
		"federated result merge-rank passes")
	mPlanCacheHits = obs.NewCounter("registry.plancache.hits", "count",
		"query plans served from the LRU plan cache")
	mPlanCacheMisses = obs.NewCounter("registry.plancache.misses", "count",
		"query payload decodes (plan cache misses or caching disabled)")
	mAdverts = obs.NewGauge("registry.adverts", "count",
		"live advertisements across all stores")
	mAdvertsExpired = obs.NewCounter("registry.adverts.expired", "count",
		"advertisements purged by lease expiry")
	mShardScans = obs.NewCounter("registry.shard.scans", "count",
		"per-shard candidate scans, aggregated over all shards")
	mQCacheHits = obs.NewCounter("registry.qcache.hits", "count",
		"queries answered from the generation-validated result cache")
	mQCacheMisses = obs.NewCounter("registry.qcache.misses", "count",
		"queries evaluated live (no resident entry or hash collision)")
	mQCacheInvalidations = obs.NewCounter("registry.qcache.invalidations", "count",
		"cached result sets dropped because a shard generation moved or a lease deadline passed")
	mQCacheSize = obs.NewGauge("registry.qcache.size", "count",
		"resident query result cache entries")
	mQCacheShared = obs.NewCounter("registry.qcache.singleflight.shared", "count",
		"queries that waited on an identical in-flight evaluation instead of recomputing")
	mSubCandidates = obs.NewCounter("registry.subindex.candidates", "count",
		"standing-query candidates probed per publish, aggregated")
	mSubMatched = obs.NewCounter("registry.subindex.matched", "count",
		"standing queries that matched a publish (notifications produced)")
	mSubIndexSize = obs.NewGauge("registry.subindex.size", "count",
		"standing queries resident in the inverted notification index")
	mSubFallbackScans = obs.NewCounter("registry.subindex.fallback.scans", "count",
		"publishes that scanned every standing query (index disabled or token-less advert)")
	mSubIndexRebuilds = obs.NewCounter("registry.subindex.rebuilds", "count",
		"posting-list rebuilds compacting lazily removed subscriptions")
	mArenaSlabs = obs.NewGauge("registry.arena.slabs", "count",
		"advert arena slabs allocated across all shards")
	mArenaFree = obs.NewGauge("registry.arena.free", "count",
		"recycled advert arena slots awaiting reuse")
	mTokensInterned = obs.NewGauge("registry.tokens.interned", "count",
		"distinct summary tokens interned across all stores")
	mWALAppends = obs.NewCounter("registry.wal.appends", "count",
		"mutation records appended to the write-ahead log")
	mWALBytes = obs.NewCounter("registry.wal.bytes", "bytes",
		"bytes appended to the write-ahead log, frame headers included")
	mWALFsyncs = obs.NewCounter("registry.wal.fsyncs", "count",
		"group-commit durability barriers issued (flush, plus fsync when -wal-fsync)")
	mWALSyncShared = obs.NewCounter("registry.wal.sync.shared", "count",
		"durability waits satisfied by another caller's barrier (group-commit batching)")
	mWALFsyncLatency = obs.NewHistogram("registry.wal.fsync.latency_us", "us",
		"write-ahead log fsync barrier latency", obs.LatencyBucketsUS)
	mWALSegments = obs.NewGauge("registry.wal.segments", "count",
		"live write-ahead log segment files (sealed plus open)")
	mWALStreamDrains = obs.NewCounter("registry.wal.stream.drains", "count",
		"sharded append-stream drains merged into the segment writer (AppendStreams > 1)")
	mWALReplayed = obs.NewCounter("registry.wal.replay.records", "count",
		"log records replayed at recovery")
	mWALTorn = obs.NewCounter("registry.wal.replay.torn", "count",
		"torn or corrupt log frames discarded at recovery (crash tails)")
	mSnapshotWrites = obs.NewCounter("registry.snapshot.writes", "count",
		"compacted snapshots written")
	mSnapshotErrors = obs.NewCounter("registry.snapshot.errors", "count",
		"snapshot compactions that failed (input segments retained for retry)")
	mSnapshotAdverts = obs.NewGauge("registry.snapshot.adverts", "count",
		"adverts captured in the latest compacted snapshot")
	mSnapshotBytes = obs.NewGauge("registry.snapshot.bytes", "bytes",
		"size of the latest compacted snapshot file")
)

// ShardStat is one shard's occupancy and scan activity — the per-shard
// view behind the aggregate registry.shard.scans counter. registryd's
// /status endpoint exposes it for spotting stripe imbalance.
type ShardStat struct {
	Adverts int    `json:"adverts"`
	Scans   uint64 `json:"scans"`
	Matched uint64 `json:"matched"`
}

// ShardStats returns per-shard occupancy and cumulative scan counters
// in stripe order.
func (s *Store) ShardStats() []ShardStat {
	out := make([]ShardStat, len(s.shards))
	for i, sh := range s.shards {
		sh.mu.RLock()
		n := len(sh.adverts)
		sh.mu.RUnlock()
		out[i] = ShardStat{
			Adverts: n,
			Scans:   sh.scans.Load(),
			Matched: sh.matched.Load(),
		}
	}
	return out
}
