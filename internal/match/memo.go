package match

import (
	"sync"

	"semdisco/internal/ontology"
)

const (
	// memoShards is the number of independently locked memo segments;
	// a power of two so shard selection is a mask.
	memoShards = 64
	// memoShardCap bounds each shard. A full shard is cleared rather
	// than evicted entry-by-entry: taxonomies are small enough that the
	// working set re-warms in one evaluate pass, and clearing keeps the
	// insert path a single map write.
	memoShardCap = 1 << 12
)

// conceptEval is one memoized concept comparison. Degree and similarity
// are stored exactly as computed, so a memo hit is bit-identical to a
// fresh evaluation — scores never drift with cache state.
type conceptEval struct {
	deg Degree
	sim float64
}

type memoShard struct {
	mu sync.RWMutex
	m  map[uint64]conceptEval
}

// conceptMemo is the matcher's bounded, sharded, concurrent-safe memo
// of concept comparisons, keyed by the interned (requested, advertised)
// ClassID pair. Registries evaluate the same template concepts against
// every candidate profile, so the same pairs recur across the evaluate
// loop and across queries; the memo collapses each recurrence to one
// shard-local map read.
type conceptMemo struct {
	shards [memoShards]memoShard
}

func newConceptMemo() *conceptMemo {
	cm := &conceptMemo{}
	for i := range cm.shards {
		cm.shards[i].m = make(map[uint64]conceptEval)
	}
	return cm
}

// memoKey packs an ordered ID pair; ClassIDs are dense and non-negative
// so the two uint32 halves are collision-free.
func memoKey(req, adv ontology.ClassID) uint64 {
	return uint64(uint32(req))<<32 | uint64(uint32(adv))
}

// shard mixes both halves of the key so pairs sharing one concept still
// spread across shards.
func (cm *conceptMemo) shard(key uint64) *memoShard {
	h := (key ^ key>>29) * 0x9e3779b97f4a7c15
	return &cm.shards[h>>58&(memoShards-1)]
}

// evalConceptID returns the memoized degree and similarity for a pair
// of valid interned IDs, computing and caching on miss. Safe for
// concurrent use; callers must only pass IDs valid in m.onto.
func (m *Matcher) evalConceptID(req, adv ontology.ClassID) (Degree, float64) {
	key := memoKey(req, adv)
	sh := m.memo.shard(key)
	sh.mu.RLock()
	e, ok := sh.m[key]
	sh.mu.RUnlock()
	if ok {
		mCacheHits.Inc()
		return e.deg, e.sim
	}
	mCacheMisses.Inc()

	var deg Degree
	switch {
	case req == adv:
		deg = Exact
	case m.onto.SubsumesID(req, adv):
		deg = PlugIn
	case m.onto.SubsumesID(adv, req):
		deg = Subsumed
	default:
		deg = Fail
	}
	sim := m.onto.SimilarityID(req, adv)

	sh.mu.Lock()
	if len(sh.m) >= memoShardCap {
		mCacheSize.Add(-int64(len(sh.m)))
		mCacheResets.Inc()
		clear(sh.m)
	}
	if _, dup := sh.m[key]; !dup {
		sh.m[key] = conceptEval{deg: deg, sim: sim}
		mCacheSize.Add(1)
	}
	sh.mu.Unlock()
	return deg, sim
}
