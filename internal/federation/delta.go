package federation

// Incremental registry summaries (the delta protocol). Whole-summary
// gossip costs O(tokens) per peer per tick even when nothing changed;
// at WAN scale the summary dominates maintenance bandwidth. Instead the
// sender versions its summary, keeps a bounded history of per-version
// deltas (token add/remove lists with removals acting as tombstones),
// and sends each peer only the deltas past the version that peer last
// acknowledged. A periodic full resync — and an explicit Resync escape
// hatch in the ack — bounds divergence when deltas are lost for longer
// than the history covers or a node restarts.
//
// Acks are datagrams and may arrive out of order; the sender's
// per-peer acked version only moves forward (the one exception being
// the first ack that names the exact version of the last full resync,
// which is a fresh synchronization point — see handleSummaryAck).

import (
	"sort"

	"semdisco/internal/describe"
	"semdisco/internal/transport"
	"semdisco/internal/wire"
)

// maxDeltaHistory bounds the retained per-version deltas; a peer whose
// ack falls behind the window gets a full resync instead.
const maxDeltaHistory = 64

type summarySnapshot map[describe.Kind]map[string]bool

// deltaRecord is the change set that produced one summary version.
type deltaRecord struct {
	version uint64
	entries []wire.SummaryDeltaEntry
}

// deltaSummaryState is the sender side of the protocol: the current
// versioned snapshot plus the history needed to fast-forward peers.
type deltaSummaryState struct {
	version uint64
	snap    summarySnapshot
	history []deltaRecord
}

func snapshotOf(entries []wire.SummaryEntry) summarySnapshot {
	s := make(summarySnapshot, len(entries))
	for _, e := range entries {
		set := make(map[string]bool, len(e.Tokens))
		for _, t := range e.Tokens {
			set[t] = true
		}
		s[e.Kind] = set
	}
	return s
}

// advance diffs the current summary against the last versioned
// snapshot; on change it bumps the version and records the delta.
func (d *deltaSummaryState) advance(cur []wire.SummaryEntry) {
	next := snapshotOf(cur)
	entries := diffSnapshots(d.snap, next)
	if len(entries) == 0 && d.version != 0 {
		return // unchanged
	}
	if d.version == 0 && len(next) == 0 {
		return // still empty: no version to speak of
	}
	d.version++
	d.snap = next
	d.history = append(d.history, deltaRecord{version: d.version, entries: entries})
	if len(d.history) > maxDeltaHistory {
		d.history = d.history[len(d.history)-maxDeltaHistory:]
	}
}

// diffSnapshots returns the add/remove lists taking prev to next,
// sorted per kind for deterministic wire bytes.
func diffSnapshots(prev, next summarySnapshot) []wire.SummaryDeltaEntry {
	var kinds []describe.Kind
	for k := range next {
		kinds = append(kinds, k)
	}
	for k := range prev {
		if _, ok := next[k]; !ok {
			kinds = append(kinds, k)
		}
	}
	sortKinds(kinds)
	var out []wire.SummaryDeltaEntry
	for _, k := range kinds {
		var add, remove []string
		for t := range next[k] {
			if !prev[k][t] {
				add = append(add, t)
			}
		}
		for t := range prev[k] {
			if !next[k][t] {
				remove = append(remove, t)
			}
		}
		if len(add) == 0 && len(remove) == 0 {
			continue
		}
		sortStrings(add)
		sortStrings(remove)
		out = append(out, wire.SummaryDeltaEntry{Kind: k, Add: add, Remove: remove})
	}
	return out
}

// fullEntries renders the snapshot as a pure-add delta (a full resync).
func (d *deltaSummaryState) fullEntries() []wire.SummaryDeltaEntry {
	var kinds []describe.Kind
	for k := range d.snap {
		kinds = append(kinds, k)
	}
	sortKinds(kinds)
	out := make([]wire.SummaryDeltaEntry, 0, len(kinds))
	for _, k := range kinds {
		add := make([]string, 0, len(d.snap[k]))
		for t := range d.snap[k] {
			add = append(add, t)
		}
		sortStrings(add)
		out = append(out, wire.SummaryDeltaEntry{Kind: k, Add: add})
	}
	return out
}

// covers reports whether the history can fast-forward a peer acked at
// the given version to the current one.
func (d *deltaSummaryState) covers(acked uint64) bool {
	if acked >= d.version || len(d.history) == 0 {
		return false
	}
	return d.history[0].version <= acked+1
}

// since merges every delta past acked into one change set, applied in
// version order so an add-then-remove nets out correctly.
func (d *deltaSummaryState) since(acked uint64) []wire.SummaryDeltaEntry {
	state := make(map[describe.Kind]map[string]bool) // token -> present after merge
	for _, rec := range d.history {
		if rec.version <= acked {
			continue
		}
		for _, e := range rec.entries {
			m := state[e.Kind]
			if m == nil {
				m = make(map[string]bool)
				state[e.Kind] = m
			}
			for _, t := range e.Add {
				m[t] = true
			}
			for _, t := range e.Remove {
				m[t] = false
			}
		}
	}
	var kinds []describe.Kind
	for k := range state {
		kinds = append(kinds, k)
	}
	sortKinds(kinds)
	var out []wire.SummaryDeltaEntry
	for _, k := range kinds {
		var add, remove []string
		for t, present := range state[k] {
			if present {
				add = append(add, t)
			} else {
				remove = append(remove, t)
			}
		}
		if len(add) == 0 && len(remove) == 0 {
			continue
		}
		sortStrings(add)
		sortStrings(remove)
		out = append(out, wire.SummaryDeltaEntry{Kind: k, Add: add, Remove: remove})
	}
	return out
}

// sendSummaryTo sends one peer whatever it needs this tick: nothing
// (fully acked), the merged deltas since its ack, or a full resync.
// The periodic-full counter advances only on ticks that actually send
// a delta: an idle, fully-acked peer must keep costing zero summary
// bytes, not receive a pointless full resync every SummaryFullEvery
// skipped ticks.
func (r *Registry) sendSummaryTo(p *peer) {
	d := &r.dsum
	switch {
	case p.ackedVersion == d.version && !p.needFull:
		// Peer is current: send nothing at all. Liveness is the ping
		// loop's job; this is where the delta protocol saves its bytes.
		fDeltaSkipped.Inc()
	case p.needFull || p.ackedVersion == 0 ||
		p.sinceFull+1 >= r.cfg.SummaryFullEvery || !d.covers(p.ackedVersion):
		r.env.Send(transport.Addr(p.info.Addr), wire.SummaryDelta{
			Version: d.version, Full: true, Entries: d.fullEntries(),
		})
		p.needFull = false
		p.lastFullVersion = d.version
		p.sinceFull = 0
		fSummariesSent.Inc()
		fDeltaFullSent.Inc()
	default:
		r.env.Send(transport.Addr(p.info.Addr), wire.SummaryDelta{
			Version: d.version, Base: p.ackedVersion,
			Entries: d.since(p.ackedVersion),
		})
		p.sinceFull++
		fSummariesSent.Inc()
		fDeltaSent.Inc()
	}
}

// handleSummaryDelta is the receiver side: apply in-order deltas to the
// peer's summary, rebuild on a full resync, and ack what we now hold.
// A delta whose base does not match what we hold (lost datagram,
// restart) cannot be applied; the ack then carries Resync so the sender
// schedules a full refresh.
func (r *Registry) handleSummaryDelta(from wire.NodeID, addr transport.Addr, d *wire.SummaryDelta) {
	p, ok := r.peers[from]
	if !ok {
		return
	}
	p.lastSeen = r.now()
	switch {
	case d.Full:
		p.summary = make(map[describe.Kind]map[string]bool, len(d.Entries))
		for _, e := range d.Entries {
			set := make(map[string]bool, len(e.Add))
			for _, t := range e.Add {
				set[t] = true
			}
			p.summary[e.Kind] = set
		}
		p.gotVersion = d.Version
		fDeltaApplied.Inc()
	case p.summary == nil || d.Base != p.gotVersion:
		fDeltaStale.Inc()
		r.env.Send(addr, wire.SummaryAck{Version: p.gotVersion, Resync: true})
		return
	default:
		for _, e := range d.Entries {
			set := p.summary[e.Kind]
			if set == nil {
				set = make(map[string]bool, len(e.Add))
				p.summary[e.Kind] = set
			}
			for _, t := range e.Add {
				set[t] = true
			}
			for _, t := range e.Remove {
				delete(set, t)
			}
			// An emptied kind stays present as an empty set: "provably
			// stores nothing of this kind", exactly like a full summary
			// that omits it (pruneBySummary treats nil and empty alike).
		}
		p.gotVersion = d.Version
		fDeltaApplied.Inc()
	}
	r.env.Send(addr, wire.SummaryAck{Version: d.Version})
}

// handleSummaryAck advances the sender's per-peer acked version. The
// guard is strictly monotonic so a late, out-of-order ack can never
// regress the vector — except an ack naming the last full resync's
// exact version, which re-anchors a peer after this sender's version
// space moved backwards (restart). That re-anchor is one-shot: the
// first ack at or past the full's version clears it, so a delayed
// duplicate of the same ack cannot drag ackedVersion backwards again
// and trigger a needless delta/stale/resync cycle.
func (r *Registry) handleSummaryAck(from wire.NodeID, a *wire.SummaryAck) {
	p, ok := r.peers[from]
	if !ok {
		return
	}
	p.lastSeen = r.now()
	if a.Resync {
		p.needFull = true
		fDeltaResyncs.Inc()
	}
	if a.Version > p.ackedVersion || (a.Version == p.lastFullVersion && p.lastFullVersion != 0) {
		p.ackedVersion = a.Version
	}
	if p.lastFullVersion != 0 && a.Version >= p.lastFullVersion {
		p.lastFullVersion = 0
	}
}

// sortKinds orders kinds numerically; describe.Kind is a small integer.
func sortKinds(ks []describe.Kind) {
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
}

func sortStrings(ss []string) { sort.Strings(ss) }
