package registry

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"semdisco/internal/describe"
	"semdisco/internal/lease"
	"semdisco/internal/ontology"
	"semdisco/internal/profile"
	"semdisco/internal/wire"
	"semdisco/internal/workload"
)

// TestIndexedEvaluateMatchesBruteForce is the soundness property of the
// token index: for random populations and queries, the indexed Evaluate
// returns exactly what a full scan would.
func TestIndexedEvaluateMatchesBruteForce(t *testing.T) {
	onto, levels := workload.GenOntology(workload.OntologySpec{Depth: 4, Branching: 3})
	classPool := append(append([]string{}, flatten(levels[3])...), flatten(levels[2])...)

	models := describe.NewRegistry(describe.URIModel{}, describe.KVModel{}, describe.NewSemanticModel(onto))
	s := New(Options{Models: models, Leases: lease.Policy{Max: time.Hour}, DefaultMaxResults: 10_000})

	rng := rand.New(rand.NewSource(7))
	pop := workload.GenProfiles(workload.PopulationSpec{
		N: 150, Classes: toClasses(classPool), Seed: 7, OntologyIRI: onto.IRI,
	})
	for _, p := range pop {
		adv := semAdvertFromProfile(p, time.Hour)
		if _, _, err := s.Publish(adv, t0); err != nil {
			t.Fatal(err)
		}
	}
	// Some token-less adverts (profiles without a category are not
	// produced by the generator; hand-craft via KV without type).
	for i := 0; i < 5; i++ {
		kv := &describe.KVDescription{
			ServiceURI: fmt.Sprintf("urn:svc:kvfree-%d", i),
			Name:       "free attr service",
			Attrs:      map[string]string{"zone": fmt.Sprintf("z%d", i%2)},
			Addr:       "e",
		}
		adv := kvAdvert(kv, time.Hour)
		if _, _, err := s.Publish(adv, t0); err != nil {
			t.Fatal(err)
		}
	}

	// Reference: brute-force evaluation over every shard's all-of-kind
	// slice.
	brute := func(kind describe.Kind, payload []byte) map[string]bool {
		model, _ := s.models.Model(kind)
		q, err := model.DecodeQuery(payload)
		if err != nil {
			t.Fatal(err)
		}
		out := map[string]bool{}
		for _, sh := range s.shards {
			ki := sh.kinds[kind]
			if ki == nil {
				continue
			}
			for _, st := range ki.all {
				if !sh.leases.Alive(st.advert.ID, t0) {
					continue
				}
				if model.Evaluate(q, st.desc).Matched {
					out[st.desc.ServiceKey()] = true
				}
			}
		}
		return out
	}

	queries := 0
	for trial := 0; trial < 60; trial++ {
		// Alternate semantic (prunable) and KV attribute (unprunable).
		var kind describe.Kind
		var payload []byte
		switch trial % 3 {
		case 0:
			kind = describe.KindSemantic
			cat := classPool[rng.Intn(len(classPool))]
			payload = semQuery2(cat)
		case 1:
			kind = describe.KindKV
			payload = (&describe.KVQuery{Attrs: map[string]string{"zone": "z0"}}).Encode()
		case 2:
			kind = describe.KindKV
			payload = (&describe.KVQuery{TypeURI: "urn:none"}).Encode()
		}
		got, err := s.Evaluate(kind, payload, QueryOptions{MaxResults: 10_000}, t0)
		if err != nil {
			t.Fatal(err)
		}
		gotSet := map[string]bool{}
		for _, a := range got {
			model, _ := s.models.Model(a.Kind)
			d, _ := model.DecodeDescription(a.Payload)
			gotSet[d.ServiceKey()] = true
		}
		want := brute(kind, payload)
		if len(gotSet) != len(want) {
			t.Fatalf("trial %d: indexed %d vs brute %d results", trial, len(gotSet), len(want))
		}
		for k := range want {
			if !gotSet[k] {
				t.Fatalf("trial %d: indexed evaluation missed %s", trial, k)
			}
		}
		queries++
	}
	if queries == 0 {
		t.Fatal("no queries exercised")
	}
}

func TestIndexMaintainedAcrossUpdateAndRemove(t *testing.T) {
	s := newStore(t)
	adv := semAdvert("urn:svc:x", "Radar", time.Hour)
	s.Publish(adv, t0)
	// Update changes the category: the old token bucket must be empty.
	upd := adv
	upd.Version = 2
	upd.Payload = semPayload("urn:svc:x", "Camera")
	if _, _, err := s.Publish(upd, t0); err != nil {
		t.Fatal(err)
	}
	res, _ := s.Evaluate(describe.KindSemantic, semQuery("Radar"), QueryOptions{}, t0)
	if len(res) != 0 {
		t.Fatal("stale token bucket served the pre-update category")
	}
	res, _ = s.Evaluate(describe.KindSemantic, semQuery("Camera"), QueryOptions{}, t0)
	if len(res) != 1 {
		t.Fatal("updated category not indexed")
	}
	s.Remove(upd.ID)
	res, _ = s.Evaluate(describe.KindSemantic, semQuery("Camera"), QueryOptions{}, t0)
	if len(res) != 0 {
		t.Fatal("removed advert still indexed")
	}
	for i, sh := range s.shards {
		if ki := sh.kinds[describe.KindSemantic]; ki != nil && len(ki.byTok) != 0 {
			t.Fatalf("token buckets leaked in shard %d: %v", i, ki.byTok)
		}
	}
}

// --- helpers shared by the index tests ---

func flatten(cs []ontology.Class) []string {
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = string(c)
	}
	return out
}

func toClasses(ss []string) []ontology.Class {
	out := make([]ontology.Class, len(ss))
	for i, s := range ss {
		out[i] = ontology.Class(s)
	}
	return out
}

func semAdvertFromProfile(p *profile.Profile, leaseDur time.Duration) wire.Advertisement {
	return wire.Advertisement{
		ID: gen.New(), Provider: gen.New(), ProviderAddr: "x",
		Kind: describe.KindSemantic, Payload: p.Encode(),
		LeaseMillis: uint64(leaseDur / time.Millisecond), Version: 1,
	}
}

func kvAdvert(d *describe.KVDescription, leaseDur time.Duration) wire.Advertisement {
	return wire.Advertisement{
		ID: gen.New(), Provider: gen.New(), ProviderAddr: "x",
		Kind: describe.KindKV, Payload: d.Encode(),
		LeaseMillis: uint64(leaseDur / time.Millisecond), Version: 1,
	}
}

func semPayload(serviceIRI, category string) []byte {
	return (&profile.Profile{ServiceIRI: serviceIRI, Category: c(category), Grounding: "urn:g"}).Encode()
}

// semQuery2 builds a semantic query for a fully-qualified class IRI.
func semQuery2(classIRI string) []byte {
	q := &describe.SemanticQuery{Template: &profile.Template{Category: ontology.Class(classIRI)}}
	return q.Encode()
}
