package describe

import (
	"fmt"
	"sort"
	"strings"

	"semdisco/internal/codec"
)

// KVDescription is the middle description tier, shaped like a UDDI /
// ebXML registry information model entry: a typed service with named
// string attributes. It can express more than a bare URI but still has
// "no explicit semantics" — attribute comparison is string equality,
// so it cannot find a Radar when a Sensor is requested (§2 of the
// MILCOM paper; experiment E5 measures the resulting recall gap).
type KVDescription struct {
	// ServiceURI identifies this service instance.
	ServiceURI string
	// Name is the businessService-style display name.
	Name string
	// TypeURI is the tModel-style type reference.
	TypeURI string
	// Attrs are categorization/identifier bag entries.
	Attrs map[string]string
	// Addr is the bindingTemplate-style access point.
	Addr string
}

// Kind implements Description.
func (d *KVDescription) Kind() Kind { return KindKV }

// ServiceKey implements Description.
func (d *KVDescription) ServiceKey() string { return d.ServiceURI }

// Endpoint implements Description.
func (d *KVDescription) Endpoint() string { return d.Addr }

// Encode implements Description; attribute order is canonicalized.
func (d *KVDescription) Encode() []byte {
	var w codec.Buffer
	w.String(d.ServiceURI)
	w.String(d.Name)
	w.String(d.TypeURI)
	keys := make([]string, 0, len(d.Attrs))
	for k := range d.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		w.String(k)
		w.String(d.Attrs[k])
	}
	w.String(d.Addr)
	return w.Bytes()
}

// KVQuery is the filled-out partial template of the UDDI find_service
// style: any non-empty field constrains the result.
type KVQuery struct {
	// NamePrefix constrains the service name (case-insensitive prefix,
	// UDDI's default find qualifier).
	NamePrefix string
	// TypeURI, when non-empty, must equal the description's type.
	TypeURI string
	// Attrs must each be present with exactly this value.
	Attrs map[string]string
}

// Kind implements Query.
func (q *KVQuery) Kind() Kind { return KindKV }

// Encode implements Query.
func (q *KVQuery) Encode() []byte {
	var w codec.Buffer
	w.String(q.NamePrefix)
	w.String(q.TypeURI)
	keys := make([]string, 0, len(q.Attrs))
	for k := range q.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		w.String(k)
		w.String(q.Attrs[k])
	}
	return w.Bytes()
}

// KVModel implements the UDDI-style key/value template model.
type KVModel struct{}

// Kind implements Model.
func (KVModel) Kind() Kind { return KindKV }

// Name implements Model.
func (KVModel) Name() string { return "kv" }

// DecodeDescription implements Model.
func (KVModel) DecodeDescription(b []byte) (Description, error) {
	r := codec.NewReader(b)
	d := &KVDescription{}
	var err error
	if d.ServiceURI, err = r.String(); err != nil {
		return nil, err
	}
	if d.Name, err = r.String(); err != nil {
		return nil, err
	}
	if d.TypeURI, err = r.String(); err != nil {
		return nil, err
	}
	if d.Attrs, err = decodeAttrs(r); err != nil {
		return nil, err
	}
	if d.Addr, err = r.String(); err != nil {
		return nil, err
	}
	if err := r.Expect("kv description"); err != nil {
		return nil, err
	}
	return d, nil
}

// DecodeQuery implements Model.
func (KVModel) DecodeQuery(b []byte) (Query, error) {
	r := codec.NewReader(b)
	q := &KVQuery{}
	var err error
	if q.NamePrefix, err = r.String(); err != nil {
		return nil, err
	}
	if q.TypeURI, err = r.String(); err != nil {
		return nil, err
	}
	if q.Attrs, err = decodeAttrs(r); err != nil {
		return nil, err
	}
	if err := r.Expect("kv query"); err != nil {
		return nil, err
	}
	return q, nil
}

func decodeAttrs(r *codec.Reader) (map[string]string, error) {
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	if n > uint64(r.Remaining()) {
		return nil, fmt.Errorf("describe: attr count %d exceeds payload", n)
	}
	attrs := make(map[string]string, n)
	for i := uint64(0); i < n; i++ {
		k, err := r.String()
		if err != nil {
			return nil, err
		}
		v, err := r.String()
		if err != nil {
			return nil, err
		}
		attrs[k] = v
	}
	return attrs, nil
}

// Evaluate implements Model: every populated query field must match;
// the score counts how many optional constraints were exercised, so a
// more specific query ranks its hits above a catch-all's.
func (KVModel) Evaluate(q Query, d Description) Evaluation {
	kq, ok1 := q.(*KVQuery)
	kd, ok2 := d.(*KVDescription)
	if !ok1 || !ok2 {
		return Evaluation{}
	}
	constraints, satisfied := 0, 0
	if kq.NamePrefix != "" {
		constraints++
		if strings.HasPrefix(strings.ToLower(kd.Name), strings.ToLower(kq.NamePrefix)) {
			satisfied++
		}
	}
	if kq.TypeURI != "" {
		constraints++
		if normURI(kq.TypeURI) == normURI(kd.TypeURI) {
			satisfied++
		}
	}
	for k, v := range kq.Attrs {
		constraints++
		if kd.Attrs[k] == v {
			satisfied++
		}
	}
	if satisfied != constraints {
		return Evaluation{}
	}
	score := 1.0
	if constraints > 0 {
		score = float64(satisfied) / 8.0
		if score > 1 {
			score = 1
		}
	}
	return Evaluation{Matched: true, Degree: 1, Score: score}
}

// SummaryTokens implements Model.
func (KVModel) SummaryTokens(d Description) []string {
	if kd, ok := d.(*KVDescription); ok && kd.TypeURI != "" {
		return []string{normURI(kd.TypeURI)}
	}
	return nil
}

// QueryTokens implements Model: prunable only when the type is
// constrained; attribute-only queries must visit every registry.
func (KVModel) QueryTokens(q Query) ([]string, bool) {
	kq, ok := q.(*KVQuery)
	if !ok || kq.TypeURI == "" {
		return nil, false
	}
	return []string{normURI(kq.TypeURI)}, true
}
