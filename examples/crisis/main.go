// Crisis management: the ICDEW'06 paper's motivating scenario (§1) —
// "members from several agencies, potentially at different locations,
// have to cooperate … their devices spontaneously form a network where
// application layer services are offered".
//
// Three agency LANs (fire, police, medical) each run their own
// registry; the registries federate. The example walks through:
//
//  1. cross-agency semantic discovery through one local connection point
//
//  2. a service crash — its advertisement ages out by lease expiry
//
//  3. a coverage-area update that re-publishes the description
//
//  4. the local registry crashing — the client fails over to an
//     alternate learned through registry signaling
//
//  5. every registry dying — decentralized LAN fallback still finds
//     co-located services
//
//     go run ./examples/crisis
package main

import (
	"fmt"
	"log"
	"time"

	"semdisco/internal/core"
	"semdisco/internal/profile"
)

func main() {
	sys := core.NewSystem(core.Options{Seed: 7})

	// One registry per agency LAN; police and medical federate with
	// fire's registry (the on-site command post).
	fire := sys.StartRegistry("fire", core.RegistryOptions{})
	police := sys.StartRegistry("police", core.RegistryOptions{Federate: []*core.Registry{fire}})
	sys.StartRegistry("medical", core.RegistryOptions{Federate: []*core.Registry{fire, police}})

	osloCenter := profile.Circle{LatDeg: 59.91, LonDeg: 10.75, RadiusKm: 15}
	start := func(lan, iri, name, class string, cov *profile.Circle) *core.Service {
		svc, err := sys.StartService(lan, core.ServiceOptions{
			Lease: 5 * time.Second,
			Profile: core.ServiceProfile{
				IRI: iri, Name: name, Category: sys.Class(class),
				Endpoint: "udp://" + lan + ".example:9000",
				Coverage: cov,
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		return svc
	}
	start("fire", "urn:svc:thermal-drone", "Thermal drone feed", "InfraredCameraFeed", &osloCenter)
	start("police", "urn:svc:perimeter-cam", "Perimeter camera", "CameraFeed", &osloCenter)
	medEvac := start("medical", "urn:svc:medevac-map", "Medevac routing map", "MapService", nil)
	weather := start("fire", "urn:svc:weather", "On-site weather", "WeatherService", nil)

	// A medical-team client, attached to its own LAN only.
	cli := sys.StartClient("medical", core.ClientOptions{})
	sys.Step(3 * time.Second)

	// --- 1. Cross-agency discovery through the local registry. ---
	hits, via, err := cli.Find(core.Query{
		Category: sys.Class("SensorFeed"), // matches drone + camera by subsumption
		Near:     &profile.Point{LatDeg: 59.92, LonDeg: 10.74},
		Scope:    2,
		Timeout:  30 * time.Second,
	})
	check(err)
	fmt.Printf("1) sensor feeds near the incident (via %s):\n", via)
	for _, h := range hits {
		fmt.Printf("   %-22s %s\n", h.Name, h.Endpoint)
	}

	// --- 2. The drone crashes; leasing purges it. ---
	fmt.Println("\n2) thermal drone crashes (no deregistration)…")
	droneCrash(sys)
	sys.Step(12 * time.Second) // > lease + purge interval
	hits, _, err = cli.Find(core.Query{Category: sys.Class("SensorFeed"), Scope: 2, Timeout: 30 * time.Second})
	check(err)
	fmt.Printf("   sensor feeds now: %d (stale advert purged by lease expiry)\n", len(hits))

	// --- 3. The map service's coverage changes; it republishes. ---
	fmt.Println("\n3) medevac map updates its coverage area (republish, version bump)…")
	check(medEvac.Update(core.ServiceProfile{
		IRI: "urn:svc:medevac-map", Name: "Medevac routing map",
		Category: sys.Class("MapService"),
		Endpoint: "udp://medical.example:9001", // moved endpoint too
		Coverage: &osloCenter,
	}))
	sys.Step(time.Second)
	hits, _, err = cli.Find(core.Query{Category: sys.Class("MapService"), Timeout: 10 * time.Second})
	check(err)
	fmt.Printf("   map service endpoint now: %s\n", hits[0].Endpoint)

	// --- 4. The medical registry dies; the client fails over. ---
	fmt.Println("\n4) medical registry crashes; client fails over via registry signaling…")
	crashRegistry(sys, "medical")
	sys.Step(2 * time.Second)
	hits, via, err = cli.Find(core.Query{Category: sys.Class("WeatherService"), Scope: 2, Timeout: 60 * time.Second})
	check(err)
	fmt.Printf("   weather service still discoverable via %s (%d hit)\n", via, len(hits))
	_ = weather

	// --- 5. All registries die: decentralized fallback on the LAN. ---
	fmt.Println("\n5) every registry crashes; decentralized LAN fallback…")
	fire.Crash()
	police.Crash()
	sys.Step(2 * time.Second)
	hits, via, err = cli.Find(core.Query{Category: sys.Class("MapService"), Timeout: 60 * time.Second})
	check(err)
	fmt.Printf("   co-located map service found via %s (%d hit)\n", via, len(hits))
}

// droneCrash crashes the thermal drone's service node.
func droneCrash(sys *core.System) {
	for _, s := range sys.World().Services {
		for _, d := range s.Descs {
			if d.ServiceKey() == "urn:svc:thermal-drone" {
				s.Crash()
				return
			}
		}
	}
}

// crashRegistry crashes the registry on the named LAN.
func crashRegistry(sys *core.System, lan string) {
	for _, r := range sys.World().Registries {
		if r.LAN == lan {
			r.Crash()
			return
		}
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
