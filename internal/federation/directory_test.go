package federation

import (
	"reflect"
	"testing"
	"time"

	"semdisco/internal/transport"
	"semdisco/internal/transport/memnet"
	"semdisco/internal/uuid"
	"semdisco/internal/wire"
)

// dirCfg builds a hierarchy-member config with fast directory gossip.
func dirCfg(role Role, domain string, extra ...func(*Config)) Config {
	cfg := Config{
		Role:              role,
		Domain:            domain,
		DirectoryInterval: 200 * time.Millisecond,
	}
	for _, f := range extra {
		f(&cfg)
	}
	return cfg
}

// domains flattens a snapshot to domain -> tombstone for assertions.
func domains(entries []wire.DirectoryEntry) map[string]bool {
	out := make(map[string]bool, len(entries))
	for _, e := range entries {
		out[e.Domain] = e.Tombstone
	}
	return out
}

// TestDirectoryMergeOrder pins the deterministic merge: same origin
// compares versions, cross-origin compares versions then breaks ties
// toward the lowest origin ID, and stale/equal entries are rejected
// (the property that makes relaying loop-safe).
func TestDirectoryMergeOrder(t *testing.T) {
	gen := uuid.NewGenerator(1)
	a, b := gen.New(), gen.New()
	lo, hi := a, b
	if uuid.Compare(b, a) < 0 {
		lo, hi = b, a
	}
	d := newDirectory()
	now := time.Unix(0, 0)
	ttl := time.Minute

	if !d.merge(wire.DirectoryEntry{Domain: "x", Origin: hi, Version: 1}, now, ttl) {
		t.Fatal("first entry rejected")
	}
	if d.merge(wire.DirectoryEntry{Domain: "x", Origin: hi, Version: 1}, now, ttl) {
		t.Fatal("duplicate accepted — relaying would loop")
	}
	if !d.merge(wire.DirectoryEntry{Domain: "x", Origin: hi, Version: 2}, now, ttl) {
		t.Fatal("same-origin newer version rejected")
	}
	// Cross-origin: higher version wins regardless of ID order.
	if !d.merge(wire.DirectoryEntry{Domain: "x", Origin: lo, Version: 3}, now, ttl) {
		t.Fatal("cross-origin higher version rejected")
	}
	// Version tie: lowest origin ID wins, deterministically.
	if d.merge(wire.DirectoryEntry{Domain: "x", Origin: hi, Version: 3}, now, ttl) {
		t.Fatal("tie broke toward the higher origin ID")
	}
	if got := d.entries["x"].Origin; got != lo {
		t.Fatalf("contested domain held by %v, want lowest ID %v", got, lo)
	}
	if d.version != 3 {
		t.Fatalf("stream version = %d after 3 accepted merges, want 3", d.version)
	}

	// since/covers mirror the summary delta semantics, including
	// ack-from-the-future.
	if !d.covers(1) || d.covers(3) || d.covers(9) {
		t.Fatal("directory history coverage wrong")
	}
	if got := d.since(2); len(got) != 1 || got[0].Origin != lo {
		t.Fatalf("since(2) = %+v", got)
	}

	// Tombstones age out locally after their TTL without advancing the
	// stream.
	if !d.merge(wire.DirectoryEntry{Domain: "x", Origin: lo, Version: 4, Tombstone: true}, now, ttl) {
		t.Fatal("tombstone rejected")
	}
	v := d.version
	if n := d.expire(now.Add(30 * time.Second)); n != 0 {
		t.Fatalf("tombstone expired %d entries before its TTL", n)
	}
	if n := d.expire(now.Add(2 * time.Minute)); n != 1 {
		t.Fatalf("expire = %d, want 1", n)
	}
	if _, ok := d.entries["x"]; ok {
		t.Fatal("expired tombstone still resident")
	}
	if d.version != v {
		t.Fatal("local tombstone expiry advanced the gossip stream")
	}
}

// TestDirectoryConvergesAcrossDomains: domain gateways seeded only with
// the root learn every domain through anti-entropy gossip (transitive
// relay through the root), a departing domain's tombstone propagates,
// and the tombstone ages out after its TTL.
func TestDirectoryConvergesAcrossDomains(t *testing.T) {
	h := newHarness(t)
	root := h.addRegistry("wan", "root", dirCfg(RoleRoot, "core", func(c *Config) {
		c.TombstoneTTL = 2 * time.Second
	}))
	seedRoot := func(c *Config) {
		c.Seeds = []wire.PeerInfo{peerInfo(root)}
		c.RootAddr = string(root.Addr())
		c.TombstoneTTL = 2 * time.Second
	}
	gwA := h.addRegistry("lanA", "gwA", dirCfg(RoleFederated, "alpha", seedRoot))
	gwB := h.addRegistry("lanB", "gwB", dirCfg(RoleFederated, "beta", seedRoot))
	h.net.RunFor(3 * time.Second)

	want := map[string]bool{"core": false, "alpha": false, "beta": false}
	for _, r := range []*Registry{root, gwA, gwB} {
		if got := domains(r.DirectorySnapshot()); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s directory = %v, want %v", r.Domain(), got, want)
		}
	}

	// A departing domain tombstones its entry; the survivors converge on
	// the retraction.
	gwB.Stop()
	h.net.RunFor(time.Second)
	for _, r := range []*Registry{root, gwA} {
		got := domains(r.DirectorySnapshot())
		if dead, ok := got["beta"]; !ok || !dead {
			t.Fatalf("%s did not learn beta's tombstone: %v", r.Domain(), got)
		}
	}

	// After TombstoneTTL the tombstone ages out locally.
	expired := fDirTombExpired.Load()
	h.net.RunFor(3 * time.Second)
	for _, r := range []*Registry{root, gwA} {
		if got := domains(r.DirectorySnapshot()); len(got) != 2 {
			t.Fatalf("%s still holds expired tombstone: %v", r.Domain(), got)
		}
	}
	if fDirTombExpired.Load() == expired {
		t.Fatal("tombstone expiry not accounted")
	}
}

// TestDirectoryByeOvertakesFinalDelta pins the departure race: a
// stopping gateway sends its tombstone delta and then Bye, but the
// network may deliver the Bye first. The Bye drops the peer, so the
// delta re-adds a fresh peer struct whose got-version is zero and the
// delta's Base reads as a gap — and the Resync it triggers goes to a
// node that no longer exists. The entries must merge anyway: a gapped
// delta is still safe to apply (origin-stamped monotone merge), and for
// a departing sender it is the last chance to hear the retraction.
func TestDirectoryByeOvertakesFinalDelta(t *testing.T) {
	h := newHarness(t)
	root := h.addRegistry("wan", "root", dirCfg(RoleRoot, "core"))
	gwB := h.addRegistry("lanB", "gwB", dirCfg(RoleFederated, "beta", func(c *Config) {
		c.Seeds = []wire.PeerInfo{peerInfo(root)}
	}))
	h.net.RunFor(2 * time.Second)
	if dead, ok := domains(root.DirectorySnapshot())["beta"]; !ok || dead {
		t.Fatal("setup: root never learned beta")
	}
	base := root.peers[gwB.ID()].dirGotVersion
	if base == 0 {
		t.Fatal("setup: root has no directory stream position for gwB")
	}

	// The Bye overtakes the final delta: root drops the peer first...
	delete(root.peers, gwB.ID())
	// ...then the tombstone delta arrives, based on the stream position
	// only the dead peer struct remembered.
	root.handleDirectoryDelta(
		&wire.Envelope{From: gwB.ID(), FromAddr: string(gwB.Addr())},
		transport.Addr(gwB.Addr()),
		&wire.DirectoryDelta{
			Version: base + 1,
			Base:    base,
			Entries: []wire.DirectoryEntry{{
				Domain: "beta", Origin: gwB.ID(), Addr: string(gwB.Addr()),
				Version: 2, Tombstone: true,
			}},
		})

	if dead, ok := domains(root.DirectorySnapshot())["beta"]; !ok || !dead {
		t.Fatal("reordered final delta lost the departure tombstone")
	}
	// The gap is still a gap: got must not have advanced past the
	// unheard span, so a live sender would resend from the right place.
	if got := root.peers[gwB.ID()].dirGotVersion; got != 0 {
		t.Fatalf("dirGotVersion advanced to %d across an unrecovered gap", got)
	}
}

// TestDomainScopedQueryCascade: a query pinned to a remote domain
// resolves through the directory straight to that domain's gateway (no
// WAN flood), an unknown domain escalates to the root, and a query
// pinned to the local domain stays confined to it.
func TestDomainScopedQueryCascade(t *testing.T) {
	h := newHarness(t)
	root := h.addRegistry("wan", "root", dirCfg(RoleRoot, "core"))
	seedRoot := func(c *Config) {
		c.Seeds = []wire.PeerInfo{peerInfo(root)}
		c.RootAddr = string(root.Addr())
	}
	gwA := h.addRegistry("lanA", "gwA", dirCfg(RoleFederated, "alpha", seedRoot))
	gwB := h.addRegistry("lanB", "gwB", dirCfg(RoleFederated, "beta", seedRoot))
	h.net.RunFor(3 * time.Second) // directories converge

	tcB := h.addClient("lanB", "cB")
	adv := h.semAdvert("urn:svc:radar", "Radar", time.Minute)
	h.publish(tcB, gwB, adv)

	// Cross-domain: the directory names gwB; the query goes there
	// directly and the root never sees it.
	tcA := h.addClient("lanA", "cA")
	hits := fDirLookupHit.Load()
	rootBefore := root.Stats().QueriesReceived
	qid := h.query(tcA, gwA, "Sensor", 3, func(q *wire.Query) { q.Domain = "beta" })
	h.net.RunFor(3 * time.Second)
	if !tcA.done[qid] || len(tcA.results[qid]) != 1 || tcA.results[qid][0].ID != adv.ID {
		t.Fatalf("cross-domain cascade results = %v (done=%v)", tcA.results[qid], tcA.done[qid])
	}
	if fDirLookupHit.Load() == hits {
		t.Fatal("directory lookup hit not accounted")
	}
	if got := root.Stats().QueriesReceived; got != rootBefore {
		t.Fatalf("root received %d queries for a directory-resolved domain", got-rootBefore)
	}

	// Unknown domain: the gateway escalates to the root, which has
	// nowhere further to go and resolves flat (empty here).
	falls := fDirRootFallback.Load()
	qid = h.query(tcA, gwA, "Sensor", 3, func(q *wire.Query) { q.Domain = "gamma" })
	h.net.RunFor(3 * time.Second)
	if !tcA.done[qid] {
		t.Fatal("root-fallback query never completed")
	}
	if len(tcA.results[qid]) != 0 {
		t.Fatalf("unknown domain returned %v", tcA.results[qid])
	}
	if fDirRootFallback.Load() == falls {
		t.Fatal("root fallback not accounted")
	}
	if root.Stats().QueriesReceived == rootBefore {
		t.Fatal("unknown domain never reached the root")
	}

	// Same-domain confinement: a query pinned to alpha must not leave
	// it — gateways the directory proves front other domains are skipped.
	rootBefore = root.Stats().QueriesReceived
	gwBBefore := gwB.Stats().QueriesReceived
	qid = h.query(tcA, gwA, "Sensor", 3, func(q *wire.Query) { q.Domain = "alpha" })
	h.net.RunFor(3 * time.Second)
	if !tcA.done[qid] {
		t.Fatal("confined query never completed")
	}
	if root.Stats().QueriesReceived != rootBefore || gwB.Stats().QueriesReceived != gwBBefore {
		t.Fatal("domain-confined query escaped to another domain's gateway")
	}
}

// dirChaosRun executes one seeded chaos scenario: a 3-domain hierarchy
// is partitioned into two islands, one domain departs inside the
// smaller island (its tombstone initially visible there only), the
// partition heals, and gossip must reconverge every survivor — the
// tombstone included. It returns each survivor's final directory and
// the maintenance-message count for the same-seed determinism check.
func dirChaosRun(t *testing.T, seed int64) ([]map[string]bool, uint64) {
	t.Helper()
	h := newHarness(t)
	h.net = memnet.New(memnet.Config{Seed: seed})
	root := h.addRegistry("wan", "root", dirCfg(RoleRoot, "core"))
	seedRoot := func(c *Config) {
		c.Seeds = []wire.PeerInfo{peerInfo(root)}
		c.RootAddr = string(root.Addr())
	}
	gwA := h.addRegistry("lanA", "gwA", dirCfg(RoleFederated, "alpha", seedRoot))
	gwB := h.addRegistry("lanB", "gwB", dirCfg(RoleFederated, "beta", seedRoot))
	gwC := h.addRegistry("lanC", "gwC", dirCfg(RoleFederated, "gamma", seedRoot))

	// The nemesis: at 2s split {root, gwA} from {gwB, gwC}; heal at 5s.
	h.net.InstallFaults(memnet.FaultSchedule{
		{At: 2 * time.Second, Partition: [][]transport.Addr{
			{root.Addr(), gwA.Addr()},
			{gwB.Addr(), gwC.Addr()},
		}},
		{At: 5 * time.Second, Heal: true},
	})
	h.net.RunFor(3 * time.Second) // converged, then partitioned at 2s

	// gamma departs inside the minority island: only gwB can hear the
	// tombstone until the heal.
	gwC.Stop()
	h.net.RunFor(7 * time.Second) // heal at 5s, then reconverge

	want := map[string]bool{"core": false, "alpha": false, "beta": false, "gamma": true}
	var out []map[string]bool
	for _, r := range []*Registry{root, gwA, gwB} {
		got := domains(r.DirectorySnapshot())
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s directory after heal = %v, want %v", r.Domain(), got, want)
		}
		out = append(out, got)
	}
	return out, h.net.Stats().DeliveredByCategory[wire.CatMaintenance].Messages
}

// TestDirectoryChaosConvergence: partition/heal under a scripted
// FaultSchedule reconverges the directory (tombstones included), and
// the same seed replays to bit-identical traffic and state.
func TestDirectoryChaosConvergence(t *testing.T) {
	dirs1, msgs1 := dirChaosRun(t, 42)
	dirs2, msgs2 := dirChaosRun(t, 42)
	if !reflect.DeepEqual(dirs1, dirs2) {
		t.Fatalf("same-seed chaos runs diverged:\n%v\n%v", dirs1, dirs2)
	}
	if msgs1 != msgs2 {
		t.Fatalf("same-seed chaos runs sent different maintenance traffic: %d vs %d", msgs1, msgs2)
	}
	// A different seed draws different fault randomness but must still
	// converge (dirChaosRun asserts the final state internally).
	dirChaosRun(t, 1007)
}
