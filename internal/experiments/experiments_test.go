package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// The experiment tests assert the *shape* of each result — who wins,
// in which direction the trend goes — exactly what EXPERIMENTS.md
// records against the paper's claims. Parameters are scaled down; the
// benches and cmd/simdisco run the full sizes.

func parseKB(s string) float64 {
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "kB"), 64)
	if err != nil {
		panic("bad kB cell: " + s)
	}
	return v
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad float cell %q", s)
	}
	return v
}

func TestE1Shape(t *testing.T) {
	tab := E1TopologyBandwidth([]int{10, 30}, 5, 42)
	if tab.NumRows() != 6 {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	// Decentralized per-query load grows with N; centralized does not
	// (results are capped at 5 in both).
	dec10 := parseKB(tab.Row(0)[7])
	dec30 := parseKB(tab.Row(3)[7])
	cen10 := parseKB(tab.Row(1)[7])
	cen30 := parseKB(tab.Row(4)[7])
	if dec30 <= dec10 {
		t.Errorf("decentralized query cost did not grow with N: %v vs %v\n%s", dec10, dec30, tab)
	}
	// The decentralized/centralized gap widens with N.
	if dec30/cen30 <= dec10/cen10 {
		t.Errorf("query-cost gap did not widen: %v/%v vs %v/%v\n%s", dec10, cen10, dec30, cen30, tab)
	}
	// At N=30 the decentralized query bill beats centralized by a
	// clear factor (the §3.1 claim).
	if dec30 < 2*cen30 {
		t.Errorf("decentralized %v not ≫ centralized %v\n%s", dec30, cen30, tab)
	}
	t.Logf("\n%s", tab)
}

func TestE2Shape(t *testing.T) {
	tab := E2ResponseControl(20, 42)
	// Decentralized: all 20 matching services answer (implosion).
	if got := parseF(t, tab.Row(0)[1]); got < 18 {
		t.Errorf("decentralized responses = %v, want ≈20\n%s", got, tab)
	}
	// best-only: exactly 1.
	if got := parseF(t, tab.Row(3)[1]); got != 1 {
		t.Errorf("best-only responses = %v\n%s", got, tab)
	}
	// max=5: exactly 5.
	if got := parseF(t, tab.Row(2)[1]); got != 5 {
		t.Errorf("max-5 responses = %v\n%s", got, tab)
	}
	t.Logf("\n%s", tab)
}

func TestE3Shape(t *testing.T) {
	tab := E3Robustness([]float64{0, 1}, 42)
	// rows: centralized 0%, centralized 100%, distributed 0%, distributed 100%
	cen0 := parseF(t, tab.Row(0)[2])
	cen1 := parseF(t, tab.Row(1)[2])
	dis0 := parseF(t, tab.Row(2)[2])
	dis1 := parseF(t, tab.Row(3)[2])
	if cen0 < 0.9 || dis0 < 0.9 {
		t.Errorf("healthy systems not at full recall: cen=%v dis=%v\n%s", cen0, dis0, tab)
	}
	// With ALL registries dead both systems degrade to the LAN fallback
	// (≈ LAN-local recall); the centralized one must not do better.
	if cen1 > dis1 {
		t.Errorf("centralized survived total failure better than distributed: %v vs %v\n%s", cen1, dis1, tab)
	}
	t.Logf("\n%s", tab)
}

func TestE3PartialFailure(t *testing.T) {
	tab := E3Robustness([]float64{0.5}, 43)
	cen := parseF(t, tab.Row(0)[2])
	dis := parseF(t, tab.Row(1)[2])
	// Killing half the registries kills THE central one (ceil(0.5·1)=1),
	// collapsing recall to LAN-fallback levels; the federation must do
	// clearly better through failover and republish.
	if dis < cen+0.2 {
		t.Errorf("distributed (%v) not clearly above centralized (%v) at 50%% kills\n%s", dis, cen, tab)
	}
	if dis < 0.7 {
		t.Errorf("distributed recall %v too low after 50%% kills\n%s", dis, tab)
	}
	t.Logf("\n%s", tab)
}

func TestE4Shape(t *testing.T) {
	tab := E4Staleness([]time.Duration{2 * time.Second, 10 * time.Second}, 42)
	uddiStale := parseF(t, tab.Row(0)[2])
	lease2 := parseF(t, tab.Row(1)[2])
	lease10 := parseF(t, tab.Row(2)[2])
	if uddiStale <= lease10 {
		t.Errorf("UDDI staleness %v not worse than leased %v\n%s", uddiStale, lease10, tab)
	}
	if lease2 > lease10 {
		t.Errorf("shorter lease yielded more staleness: %v vs %v\n%s", lease2, lease10, tab)
	}
	if uddiStale < 0.2 {
		t.Errorf("UDDI staleness %v suspiciously low under churn\n%s", uddiStale, tab)
	}
	t.Logf("\n%s", tab)
}

func TestE5Shape(t *testing.T) {
	tab := E5Matchmaking(4, 3, 100, 40, 42)
	semPrec := parseF(t, tab.Row(0)[1])
	semRec := parseF(t, tab.Row(0)[2])
	loosePrec := parseF(t, tab.Row(1)[1])
	looseRec := parseF(t, tab.Row(1)[2])
	uriPrec := parseF(t, tab.Row(2)[1])
	uriRec := parseF(t, tab.Row(2)[2])
	if semRec < 0.99 || semPrec < 0.99 {
		t.Errorf("semantic P/R = %v/%v, want 1.0\n%s", semPrec, semRec, tab)
	}
	// The permissive floor keeps full recall but admits more-general
	// services the strict ground truth calls irrelevant.
	if looseRec < 0.99 {
		t.Errorf("subsumed-floor recall = %v\n%s", looseRec, tab)
	}
	if loosePrec >= semPrec {
		t.Errorf("subsumed-floor precision %v not below plugin-floor %v\n%s", loosePrec, semPrec, tab)
	}
	if uriRec >= semRec {
		t.Errorf("uri recall %v not below semantic %v\n%s", uriRec, semRec, tab)
	}
	if uriPrec < 0.99 {
		t.Errorf("uri precision = %v; exact matching should not produce false positives\n%s", uriPrec, tab)
	}
	t.Logf("\n%s", tab)
}

func TestE6Shape(t *testing.T) {
	tab := E6Bootstrap([]time.Duration{time.Second, 5 * time.Second}, 42)
	// Active probing finds the registry quickly regardless of beacon
	// interval; passive waits ≈ one beacon interval.
	active1, _ := time.ParseDuration(tab.Row(0)[2])
	passive5, _ := time.ParseDuration(tab.Row(3)[2])
	if active1 > 2*time.Second {
		t.Errorf("active bootstrap = %v, too slow\n%s", active1, tab)
	}
	if passive5 < 500*time.Millisecond {
		t.Errorf("passive bootstrap with 5s beacons = %v, implausibly fast\n%s", passive5, tab)
	}
	t.Logf("\n%s", tab)
}

func TestE6FallbackShape(t *testing.T) {
	tab := E6Fallback(6, 42)
	if tab.Row(0)[1] != "registry" || tab.Row(1)[1] != "fallback" {
		t.Fatalf("via column wrong:\n%s", tab)
	}
	// Sensor feeds are 4 of 6 services (rotation i%4 over 4 sensor cats).
	if parseF(t, tab.Row(1)[2]) < parseF(t, tab.Row(0)[2]) {
		t.Errorf("fallback found fewer services than registry mode\n%s", tab)
	}
	t.Logf("\n%s", tab)
}

func TestE7Shape(t *testing.T) {
	tab := E7Forwarding(6, 42)
	var floodRecall, walk1Recall, floodMsgs, walk1Msgs float64
	for i := 0; i < tab.NumRows(); i++ {
		r := tab.Row(i)
		if r[0] == "flood" && r[1] == "ttl=8" {
			floodRecall = parseF(t, r[2])
			floodMsgs = parseF(t, r[3])
		}
		if r[0] == "random-walk" && r[1] == "k=1 ttl=8" {
			walk1Recall = parseF(t, r[2])
			walk1Msgs = parseF(t, r[3])
		}
	}
	if floodRecall < 0.99 {
		t.Errorf("flood ttl=8 recall = %v, want 1.0\n%s", floodRecall, tab)
	}
	if walk1Msgs >= floodMsgs {
		t.Errorf("1-walker used %v msgs ≥ flood %v\n%s", walk1Msgs, floodMsgs, tab)
	}
	if walk1Recall > floodRecall {
		t.Errorf("walk recall above flood recall\n%s", tab)
	}
	t.Logf("\n%s", tab)
}

func TestE9Shape(t *testing.T) {
	tab := E9Coherence(4, 2, 42)
	last := tab.Row(tab.NumRows() - 1)
	if last[1] != last[2] {
		t.Errorf("high-TTL query incomplete: found %s of %s\n%s", last[1], last[2], tab)
	}
	first := tab.Row(0)
	if parseF(t, first[1]) >= parseF(t, last[1]) {
		t.Errorf("TTL=0 already sees everything — WAN test degenerate\n%s", tab)
	}
	t.Logf("\n%s", tab)
}

func TestE10Shape(t *testing.T) {
	tab := E10Gateway(3, 42)
	off := parseF(t, tab.Row(0)[1])
	on := parseF(t, tab.Row(1)[1])
	if on > off {
		t.Errorf("coordination increased WAN queries: %v → %v\n%s", off, on, tab)
	}
	if on == 0 {
		t.Errorf("coordinated gateway never forwarded\n%s", tab)
	}
	t.Logf("\n%s", tab)
}

func TestE11Shape(t *testing.T) {
	tab := E11Republish(42)
	for i := 0; i < tab.NumRows(); i++ {
		d, err := time.ParseDuration(tab.Row(i)[1])
		if err != nil || d <= 0 {
			t.Errorf("no reconvergence in row %d: %v\n%s", i, tab.Row(i), tab)
		}
	}
	// Faster ack timeout ⇒ faster reconvergence.
	fast, _ := time.ParseDuration(tab.Row(0)[1])
	slow, _ := time.ParseDuration(tab.Row(2)[1])
	if fast > slow {
		t.Errorf("fast ack timeout reconverged slower (%v vs %v)\n%s", fast, slow, tab)
	}
	t.Logf("\n%s", tab)
}

func TestE12Shape(t *testing.T) {
	tab := E12PushPull([]int{2, 20}, 42)
	get := func(mode string, ratio string) (kb, recall float64) {
		for i := 0; i < tab.NumRows(); i++ {
			r := tab.Row(i)
			if r[0] == mode && r[1] == ratio {
				return parseKB(r[2]), parseF(t, r[3])
			}
		}
		t.Fatalf("row %s/%s missing\n%s", mode, ratio, tab)
		return 0, 0
	}
	pullHi, pullRec := get("pull-flood", "20")
	pushHi, pushRec := get("push-replicate", "20")
	if pushRec < 0.99 || pullRec < 0.99 {
		t.Errorf("recall dropped: pull=%v push=%v\n%s", pullRec, pushRec, tab)
	}
	// At a high query rate, push replication must beat pull flooding.
	if pushHi >= pullHi {
		t.Errorf("push (%v kB) not cheaper than pull (%v kB) at high query rate\n%s", pushHi, pullHi, tab)
	}
	t.Logf("\n%s", tab)
}

func TestE13Shape(t *testing.T) {
	tab := E13Artifacts(42)
	if tab.Row(0)[1] != "true" || tab.Row(0)[3] != "true" {
		t.Errorf("ontology fetch failed:\n%s", tab)
	}
	if tab.Row(1)[1] != "false" {
		t.Errorf("missing artifact resolved:\n%s", tab)
	}
	t.Logf("\n%s", tab)
}

func TestE14Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("micro-benchmark harness in -short mode")
	}
	tab := E14MatchCost(64, 42)
	uri := parseF(t, tab.Row(0)[1])
	sem := parseF(t, tab.Row(2)[1])
	if sem <= uri {
		t.Errorf("semantic matching (%v ns) not costlier than URI (%v ns)\n%s", sem, uri, tab)
	}
	t.Logf("\n%s", tab)
}

func TestE8Shape(t *testing.T) {
	tab := E8PayloadSize(50, 42)
	uri := parseF(t, tab.Row(0)[1])
	semBin := parseF(t, tab.Row(2)[1])
	semRDF := parseF(t, tab.Row(3)[1])
	flateRDF := parseF(t, tab.Row(4)[1])
	if semRDF <= uri*2 {
		t.Errorf("semantic RDF %v not ≫ URI %v — the §2 size claim\n%s", semRDF, uri, tab)
	}
	if semBin >= semRDF {
		t.Errorf("binary profile %v not smaller than RDF %v\n%s", semBin, semRDF, tab)
	}
	if flateRDF >= semRDF {
		t.Errorf("flate did not compress RDF (%v vs %v)\n%s", flateRDF, semRDF, tab)
	}
	t.Logf("\n%s", tab)
}

func TestE15Shape(t *testing.T) {
	tab := E15Scale([]int{4, 8}, 42)
	r4 := parseF(t, tab.Row(0)[2])
	r8 := parseF(t, tab.Row(1)[2])
	if r4 < 0.99 || r8 < 0.99 {
		t.Errorf("federated recall dropped with size: %v, %v\n%s", r4, r8, tab)
	}
	// Query traffic grows with federation size (full flood).
	q4 := parseKB(tab.Row(0)[4])
	q8 := parseKB(tab.Row(1)[4])
	if q8 <= q4 {
		t.Errorf("query traffic did not grow with size: %v vs %v\n%s", q4, q8, tab)
	}
	t.Logf("\n%s", tab)
}

func TestE18Shape(t *testing.T) {
	tab := E18ResultCache(10, 42)
	offFwd := parseF(t, tab.Row(0)[2])
	onFwd := parseF(t, tab.Row(1)[2])
	offMsgs := parseF(t, tab.Row(0)[3])
	onMsgs := parseF(t, tab.Row(1)[3])
	offRec := parseF(t, tab.Row(0)[5])
	onRec := parseF(t, tab.Row(1)[5])
	if offRec < 0.99 || onRec < 0.99 {
		t.Errorf("recall dropped: off=%v on=%v\n%s", offRec, onRec, tab)
	}
	// Cache-off fans out once per repeat; with the cache only the first
	// query crosses the WAN — a ≥5x reduction at 10 repeats.
	if onFwd*5 > offFwd {
		t.Errorf("rcache saved too little fan-out: %v forwards vs %v off\n%s", onFwd, offFwd, tab)
	}
	if onMsgs >= offMsgs {
		t.Errorf("total querying datagrams did not drop: %v vs %v\n%s", onMsgs, offMsgs, tab)
	}
	t.Logf("\n%s", tab)
}

func TestE19Shape(t *testing.T) {
	// Tiny counts: the shape (identical notifications, positive speedup
	// figure, non-zero bytes/adv) matters here, not the magnitudes —
	// scripts/bench.sh scale runs the real sweep.
	tab := E19Scale([]int{2_000}, []int{64, 512}, 42)
	if tab.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2\n%s", tab.NumRows(), tab)
	}
	for i := 0; i < tab.NumRows(); i++ {
		bytesAdv := parseF(t, tab.Row(i)[1])
		if bytesAdv <= 0 {
			t.Errorf("row %d: bytes/adv = %v, want > 0\n%s", i, bytesAdv, tab)
		}
		speedup := parseF(t, tab.Row(i)[7])
		if speedup <= 0 {
			t.Errorf("row %d: speedup = %v, want > 0\n%s", i, speedup, tab)
		}
		matchPct := parseF(t, tab.Row(i)[4])
		if matchPct <= 0 || matchPct > 2 {
			t.Errorf("row %d: match%% = %v, want in (0, 2]\n%s", i, matchPct, tab)
		}
	}
	t.Logf("\n%s", tab)
}

func TestE20Shape(t *testing.T) {
	// Tiny count: the shape (WAL publishes cost something but stay the
	// same order of magnitude, both boot paths recover every advert —
	// the row panics on a count mismatch) matters here, not the
	// magnitudes — scripts/bench.sh wal runs the real sweep.
	tab := E20Durability([]int{2_000}, 42)
	if tab.NumRows() != 1 {
		t.Fatalf("rows = %d, want 1\n%s", tab.NumRows(), tab)
	}
	row := tab.Row(0)
	memUS, walUS := parseF(t, row[1]), parseF(t, row[2])
	if memUS <= 0 || walUS <= 0 {
		t.Errorf("publish timings not positive: mem=%v wal=%v\n%s", memUS, walUS, tab)
	}
	if logMB := parseF(t, row[4]); logMB <= 0 {
		t.Errorf("log size = %v MB, want > 0\n%s", logMB, tab)
	}
	if snapMB := parseF(t, row[6]); snapMB <= 0 {
		t.Errorf("snapshot size = %v MB, want > 0\n%s", snapMB, tab)
	}
	t.Logf("\n%s", tab)
}

func TestE16Shape(t *testing.T) {
	tab := E16Loss([]float64{0, 0.05}, 42)
	s0 := parseF(t, tab.Row(0)[1])
	s5 := parseF(t, tab.Row(1)[1])
	rec0 := parseF(t, tab.Row(0)[2])
	rec5 := parseF(t, tab.Row(1)[2])
	if s0 < 0.99 || rec0 < 0.99 {
		t.Errorf("lossless run imperfect: success=%v recall=%v\n%s", s0, rec0, tab)
	}
	// 5% loss must not collapse discovery.
	if s5 < 0.8 {
		t.Errorf("5%% loss broke discovery: success=%v\n%s", s5, tab)
	}
	if rec5 < 0.7 {
		t.Errorf("5%% loss collapsed recall: %v\n%s", rec5, tab)
	}
	t.Logf("\n%s", tab)
}
