package memnet

import (
	"testing"
	"time"

	"semdisco/internal/transport"
	"semdisco/internal/uuid"
	"semdisco/internal/wire"
)

type capture struct {
	from []transport.Addr
	data [][]byte
}

func (c *capture) handler() transport.Handler {
	return func(from transport.Addr, data []byte) {
		c.from = append(c.from, from)
		cp := make([]byte, len(data))
		copy(cp, data)
		c.data = append(c.data, cp)
	}
}

func TestUnicastDelivery(t *testing.T) {
	n := New(Config{})
	var got capture
	a := n.Attach("lan0/a", "lan0", nil)
	n.Attach("lan0/b", "lan0", got.handler())
	if err := a.Unicast("lan0/b", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if len(got.data) != 0 {
		t.Fatal("delivered before Run")
	}
	n.RunFor(10 * time.Millisecond)
	if len(got.data) != 1 || string(got.data[0]) != "hello" {
		t.Fatalf("delivery = %q", got.data)
	}
	if got.from[0] != "lan0/a" {
		t.Fatalf("from = %s", got.from[0])
	}
}

func TestMulticastScopedToLAN(t *testing.T) {
	n := New(Config{})
	var b, c, d capture
	a := n.Attach("lan0/a", "lan0", nil)
	n.Attach("lan0/b", "lan0", b.handler())
	n.Attach("lan0/c", "lan0", c.handler())
	n.Attach("lan1/d", "lan1", d.handler())
	if err := a.Multicast([]byte("m")); err != nil {
		t.Fatal(err)
	}
	n.RunFor(10 * time.Millisecond)
	if len(b.data) != 1 || len(c.data) != 1 {
		t.Fatal("LAN members did not receive multicast")
	}
	if len(d.data) != 0 {
		t.Fatal("multicast leaked across LAN boundary")
	}
}

func TestMulticastExcludesSender(t *testing.T) {
	n := New(Config{})
	var a capture
	ia := n.Attach("lan0/a", "lan0", a.handler())
	ia.Multicast([]byte("m"))
	n.RunFor(10 * time.Millisecond)
	if len(a.data) != 0 {
		t.Fatal("sender received its own multicast")
	}
}

func TestDownNodeDropsTraffic(t *testing.T) {
	n := New(Config{})
	var b capture
	a := n.Attach("lan0/a", "lan0", nil)
	n.Attach("lan0/b", "lan0", b.handler())
	n.SetUp("lan0/b", false)
	a.Unicast("lan0/b", []byte("x"))
	n.RunFor(10 * time.Millisecond)
	if len(b.data) != 0 {
		t.Fatal("down node received traffic")
	}
	if n.Stats().MessagesDropped == 0 {
		t.Fatal("drop not accounted")
	}
	// Sending from a down node errors locally.
	n.SetUp("lan0/a", false)
	if err := a.Unicast("lan0/b", []byte("x")); err == nil {
		t.Fatal("send from down node succeeded")
	}
}

func TestCrashWhileInFlight(t *testing.T) {
	n := New(Config{LANLatency: 5 * time.Millisecond})
	var b capture
	a := n.Attach("lan0/a", "lan0", nil)
	n.Attach("lan0/b", "lan0", b.handler())
	a.Unicast("lan0/b", []byte("x"))
	// Crash the receiver before the datagram lands.
	n.Schedule(n.Now().Add(1*time.Millisecond), func() { n.SetUp("lan0/b", false) })
	n.RunFor(20 * time.Millisecond)
	if len(b.data) != 0 {
		t.Fatal("crashed node received in-flight datagram")
	}
}

func TestPartition(t *testing.T) {
	n := New(Config{})
	var b capture
	a := n.Attach("lan0/a", "lan0", nil)
	n.Attach("lan1/b", "lan1", b.handler())
	n.Partition([]transport.Addr{"lan0/a"}, []transport.Addr{"lan1/b"})
	a.Unicast("lan1/b", []byte("x"))
	n.RunFor(time.Second)
	if len(b.data) != 0 {
		t.Fatal("message crossed partition")
	}
	n.Partition() // heal
	a.Unicast("lan1/b", []byte("y"))
	n.RunFor(time.Second)
	if len(b.data) != 1 {
		t.Fatal("message lost after partition healed")
	}
}

func TestLossIsDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) uint64 {
		n := New(Config{Seed: seed, Loss: 0.5})
		var b capture
		a := n.Attach("lan0/a", "lan0", nil)
		n.Attach("lan0/b", "lan0", b.handler())
		for i := 0; i < 200; i++ {
			a.Unicast("lan0/b", []byte{byte(i)})
		}
		n.RunFor(time.Second)
		return uint64(len(b.data))
	}
	if run(1) != run(1) {
		t.Fatal("same seed produced different loss pattern")
	}
	got := run(42)
	if got < 60 || got > 140 {
		t.Fatalf("50%% loss delivered %d/200", got)
	}
}

func TestLatencyOrderingAndClock(t *testing.T) {
	n := New(Config{LANLatency: time.Millisecond, WANLatency: 50 * time.Millisecond})
	var order []string
	a := n.Attach("lan0/a", "lan0", nil)
	n.Attach("lan0/b", "lan0", func(transport.Addr, []byte) { order = append(order, "lan") })
	n.Attach("lan1/c", "lan1", func(transport.Addr, []byte) { order = append(order, "wan") })
	a.Unicast("lan1/c", []byte("1")) // sent first, arrives later
	a.Unicast("lan0/b", []byte("2"))
	n.RunFor(time.Second)
	if len(order) != 2 || order[0] != "lan" || order[1] != "wan" {
		t.Fatalf("delivery order = %v, want [lan wan]", order)
	}
}

func TestSchedulerOrdering(t *testing.T) {
	n := New(Config{})
	var order []int
	n.Schedule(n.Now().Add(2*time.Millisecond), func() { order = append(order, 2) })
	n.Schedule(n.Now().Add(1*time.Millisecond), func() { order = append(order, 1) })
	n.Schedule(n.Now().Add(1*time.Millisecond), func() { order = append(order, 11) }) // same time: FIFO
	n.RunFor(time.Second)
	if len(order) != 3 || order[0] != 1 || order[1] != 11 || order[2] != 2 {
		t.Fatalf("order = %v", order)
	}
}

func TestAfterAndCancel(t *testing.T) {
	n := New(Config{})
	fired := 0
	cancel := n.After(5*time.Millisecond, func() { fired++ })
	n.After(10*time.Millisecond, func() { fired += 10 })
	cancel()
	n.RunFor(time.Second)
	if fired != 10 {
		t.Fatalf("fired = %d, want 10 (first timer canceled)", fired)
	}
}

func TestRunStopsAtDeadline(t *testing.T) {
	n := New(Config{})
	fired := false
	n.After(time.Hour, func() { fired = true })
	n.RunFor(time.Minute)
	if fired {
		t.Fatal("event beyond deadline executed")
	}
	if got := n.Now().Sub(time.Unix(0, 0)); got != time.Minute {
		t.Fatalf("clock advanced to %v, want 1m", got)
	}
	n.RunFor(2 * time.Hour)
	if !fired {
		t.Fatal("event not executed after deadline passed")
	}
}

func TestStatsAccounting(t *testing.T) {
	n := New(Config{})
	gen := uuid.NewGenerator(1)
	a := n.Attach("lan0/a", "lan0", nil)
	n.Attach("lan0/b", "lan0", func(transport.Addr, []byte) {})
	n.Attach("lan0/c", "lan0", func(transport.Addr, []byte) {})

	ping, err := wire.Marshal(wire.NewEnvelope(gen.New(), "lan0/a", wire.Ping{}, gen))
	if err != nil {
		t.Fatal(err)
	}
	query, err := wire.Marshal(wire.NewEnvelope(gen.New(), "lan0/a", wire.Query{QueryID: gen.New()}, gen))
	if err != nil {
		t.Fatal(err)
	}
	a.Unicast("lan0/b", ping)
	a.Multicast(query)
	n.RunFor(time.Second)

	s := n.Stats()
	if s.MessagesSent != 2 {
		t.Fatalf("MessagesSent = %d, want 2 (multicast is one transmission)", s.MessagesSent)
	}
	if s.MessagesDelivered != 3 {
		t.Fatalf("MessagesDelivered = %d, want 3", s.MessagesDelivered)
	}
	if s.BytesSent != uint64(len(ping)+len(query)) {
		t.Fatalf("BytesSent = %d", s.BytesSent)
	}
	if s.BytesDelivered != uint64(len(ping)+2*len(query)) {
		t.Fatalf("BytesDelivered = %d", s.BytesDelivered)
	}
	if s.ByCategory[wire.CatMaintenance].Messages != 1 {
		t.Fatalf("maintenance messages = %d", s.ByCategory[wire.CatMaintenance].Messages)
	}
	if s.ByCategory[wire.CatQuerying].Messages != 1 {
		t.Fatalf("querying messages = %d", s.ByCategory[wire.CatQuerying].Messages)
	}
	n.ResetStats()
	if n.Stats().MessagesSent != 0 {
		t.Fatal("ResetStats did not zero counters")
	}
}

func TestClosedIface(t *testing.T) {
	n := New(Config{})
	a := n.Attach("lan0/a", "lan0", nil)
	n.Attach("lan0/b", "lan0", func(transport.Addr, []byte) {})
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Unicast("lan0/b", []byte("x")); err == nil {
		t.Fatal("unicast on closed iface succeeded")
	}
	if err := a.Multicast([]byte("x")); err == nil {
		t.Fatal("multicast on closed iface succeeded")
	}
	if n.IsUp("lan0/a") {
		t.Fatal("closed node still up")
	}
}

func TestUnicastToUnknownIsBestEffort(t *testing.T) {
	n := New(Config{})
	a := n.Attach("lan0/a", "lan0", nil)
	if err := a.Unicast("nowhere", []byte("x")); err != nil {
		t.Fatalf("unicast to unknown host errored: %v", err)
	}
	if n.Stats().MessagesDropped != 1 {
		t.Fatal("drop to unknown host not accounted")
	}
}

func TestHandlerGetsOwnCopy(t *testing.T) {
	n := New(Config{})
	var got []byte
	a := n.Attach("lan0/a", "lan0", nil)
	n.Attach("lan0/b", "lan0", func(_ transport.Addr, data []byte) { got = data })
	buf := []byte("original")
	a.Unicast("lan0/b", buf)
	buf[0] = 'X' // mutate the caller's buffer after sending
	n.RunFor(time.Second)
	if string(got) != "original" {
		t.Fatalf("delivered data aliases sender buffer: %q", got)
	}
}

func TestReattachReplacesHandler(t *testing.T) {
	n := New(Config{})
	var first, second capture
	a := n.Attach("lan0/a", "lan0", nil)
	n.Attach("lan0/b", "lan0", first.handler())
	n.SetUp("lan0/b", false)
	n.Attach("lan0/b", "lan0", second.handler()) // restart
	a.Unicast("lan0/b", []byte("x"))
	n.RunFor(time.Second)
	if len(first.data) != 0 || len(second.data) != 1 {
		t.Fatalf("restart semantics wrong: first=%d second=%d", len(first.data), len(second.data))
	}
}

func TestTopologyEnumeration(t *testing.T) {
	n := New(Config{})
	n.Attach("lan0/a", "lan0", nil)
	n.Attach("lan0/b", "lan0", nil)
	n.Attach("lan1/c", "lan1", nil)
	lans := n.LANs()
	if len(lans) != 2 || lans[0] != "lan0" || lans[1] != "lan1" {
		t.Fatalf("LANs = %v", lans)
	}
	nodes := n.NodesOn("lan0")
	if len(nodes) != 2 || nodes[0] != "lan0/a" {
		t.Fatalf("NodesOn = %v", nodes)
	}
}
