package rdf

import "testing"

// FuzzParseTurtle checks the parser never panics and that everything it
// accepts survives an encode/parse round trip.
func FuzzParseTurtle(f *testing.F) {
	seeds := []string{
		"",
		"<http://a> <http://b> <http://c> .",
		`@prefix ex: <http://e/> .` + "\n" + `ex:a ex:b "lit"@en, 42, 3.5, true ; a ex:C .`,
		`# comment only`,
		`@base <http://b/> . <s> <p> <o> .`,
		`PREFIX ex: <http://e/>` + "\n" + `ex:s ex:p "x\n\"y\"" .`,
		"_:b0 <http://p> _:b1 .",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		g, err := ParseTurtle(src)
		if err != nil {
			return
		}
		enc := EncodeNTriples(g)
		back, err := ParseTurtle(enc)
		if err != nil {
			t.Fatalf("canonical N-Triples failed to re-parse: %v\n%s", err, enc)
		}
		if EncodeNTriples(back) != enc {
			t.Fatalf("round trip diverged for:\n%s", enc)
		}
	})
}

// FuzzInference checks RDFS forward chaining terminates and stays sound
// (never invents literal subjects) on arbitrary accepted graphs.
func FuzzInference(f *testing.F) {
	f.Add(`@prefix r: <http://www.w3.org/2000/01/rdf-schema#> .
<http://a> r:subClassOf <http://b> . <http://b> r:subClassOf <http://a> .`)
	f.Add(`@prefix r: <http://www.w3.org/2000/01/rdf-schema#> .
<http://p> r:domain <http://C> . <http://x> <http://p> "lit" .`)
	f.Fuzz(func(t *testing.T, src string) {
		g, err := ParseTurtle(src)
		if err != nil || g.Len() > 200 {
			return
		}
		InferRDFS(g)
		for _, tr := range g.Triples() {
			if !tr.Valid() {
				t.Fatalf("inference produced invalid triple %v", tr)
			}
		}
		// Fixpoint: a second run adds nothing.
		if n := InferRDFS(g); n != 0 {
			t.Fatalf("second inference pass added %d triples", n)
		}
	})
}
