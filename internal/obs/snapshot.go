package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Bucket is one cumulative histogram bucket in a snapshot: N
// observations were ≤ LE. The overflow bucket uses LE = -1 (rendered
// "+inf").
type Bucket struct {
	LE int64  `json:"le"`
	N  uint64 `json:"n"`
}

// MetricValue is one metric's state at snapshot time. Counter and
// gauge use Value; histograms use Count/Sum/Buckets.
type MetricValue struct {
	Name string `json:"name"`
	Kind Kind   `json:"kind"`
	Unit string `json:"unit,omitempty"`
	Help string `json:"help,omitempty"`

	Value int64 `json:"value,omitempty"`

	Count   uint64   `json:"count,omitempty"`
	Sum     int64    `json:"sum,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time copy of every metric in a registry,
// sorted by name. Snapshots are plain values: they marshal to JSON
// (the /stats.json exposition), render as text (the /stats
// exposition), and diff against an earlier snapshot of the same
// registry.
type Snapshot struct {
	Metrics []MetricValue `json:"metrics"`
}

// Snapshot captures the current value of every registered metric.
func (r *Registry) Snapshot() Snapshot {
	names := r.names()
	out := Snapshot{Metrics: make([]MetricValue, 0, len(names))}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, name := range names {
		m := r.metrics[name]
		mv := MetricValue{Name: m.name, Kind: m.kind, Unit: m.unit, Help: m.help}
		switch m.kind {
		case KindCounter:
			mv.Value = int64(m.counter.Load())
		case KindGauge:
			mv.Value = m.gauge.Load()
		case KindHistogram:
			h := m.hist
			mv.Count = h.total.Load()
			mv.Sum = h.sum.Load()
			mv.Buckets = make([]Bucket, len(h.counts))
			var cum uint64
			for i := range h.counts {
				cum += h.counts[i].Load()
				le := int64(-1)
				if i < len(h.bounds) {
					le = h.bounds[i]
				}
				mv.Buckets[i] = Bucket{LE: le, N: cum}
			}
		}
		out.Metrics = append(out.Metrics, mv)
	}
	return out
}

// Diff returns this snapshot relative to an earlier one: counters and
// histograms become deltas, gauges keep their current level (a level
// has no meaningful delta). Metrics absent from prev diff against
// zero; metrics present only in prev are dropped. Zero-delta counters
// and empty histograms are omitted, so a diff reads as "what happened
// in between".
func (s Snapshot) Diff(prev Snapshot) Snapshot {
	before := make(map[string]MetricValue, len(prev.Metrics))
	for _, mv := range prev.Metrics {
		before[mv.Name] = mv
	}
	var out Snapshot
	for _, mv := range s.Metrics {
		p := before[mv.Name]
		switch mv.Kind {
		case KindCounter:
			mv.Value -= p.Value
			if mv.Value == 0 {
				continue
			}
		case KindGauge:
			// keep the current level
		case KindHistogram:
			mv.Count -= p.Count
			mv.Sum -= p.Sum
			if mv.Count == 0 {
				continue
			}
			pb := make(map[int64]uint64, len(p.Buckets))
			for _, b := range p.Buckets {
				pb[b.LE] = b.N
			}
			bs := make([]Bucket, len(mv.Buckets))
			for i, b := range mv.Buckets {
				bs[i] = Bucket{LE: b.LE, N: b.N - pb[b.LE]}
			}
			mv.Buckets = bs
		}
		out.Metrics = append(out.Metrics, mv)
	}
	return out
}

// Get returns the named metric value, ok=false when absent.
func (s Snapshot) Get(name string) (MetricValue, bool) {
	i := sort.Search(len(s.Metrics), func(i int) bool { return s.Metrics[i].Name >= name })
	if i < len(s.Metrics) && s.Metrics[i].Name == name {
		return s.Metrics[i], true
	}
	// Diffs drop entries, breaking the sorted-index shortcut only if a
	// caller sorted manually; fall back to a scan for robustness.
	for _, mv := range s.Metrics {
		if mv.Name == name {
			return mv, true
		}
	}
	return MetricValue{}, false
}

// Quantile estimates the q-quantile (0 < q ≤ 1) of a histogram value
// from its cumulative buckets, returning the upper bound of the bucket
// the quantile falls in (-1 for the overflow bucket, ok=false for
// non-histograms or empty histograms).
func (mv MetricValue) Quantile(q float64) (int64, bool) {
	if mv.Kind != KindHistogram || mv.Count == 0 {
		return 0, false
	}
	rank := uint64(q * float64(mv.Count))
	if rank == 0 {
		rank = 1
	}
	for _, b := range mv.Buckets {
		if b.N >= rank {
			return b.LE, true
		}
	}
	return -1, true
}

// format renders a metric's value cell for the text exposition.
func (mv MetricValue) format() string {
	switch mv.Kind {
	case KindHistogram:
		mean := int64(0)
		if mv.Count > 0 {
			mean = mv.Sum / int64(mv.Count)
		}
		p50, _ := mv.Quantile(0.50)
		p95, _ := mv.Quantile(0.95)
		fmtLE := func(v int64) string {
			if v < 0 {
				return "+inf"
			}
			return fmt.Sprint(v)
		}
		return fmt.Sprintf("count=%d sum=%d mean=%d p50<=%s p95<=%s",
			mv.Count, mv.Sum, mean, fmtLE(p50), fmtLE(p95))
	default:
		return fmt.Sprint(mv.Value)
	}
}

// WriteText renders the snapshot as the aligned plain-text exposition
// served at /stats: one metric per line, name / kind(unit) / value.
func (s Snapshot) WriteText(w io.Writer) error {
	nameW, kindW := 0, 0
	kinds := make([]string, len(s.Metrics))
	for i, mv := range s.Metrics {
		if len(mv.Name) > nameW {
			nameW = len(mv.Name)
		}
		k := string(mv.Kind)
		if mv.Unit != "" {
			k += "(" + mv.Unit + ")"
		}
		kinds[i] = k
		if len(k) > kindW {
			kindW = len(k)
		}
	}
	var b strings.Builder
	for i, mv := range s.Metrics {
		fmt.Fprintf(&b, "%-*s  %-*s  %s\n", nameW, mv.Name, kindW, kinds[i], mv.format())
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the text exposition.
func (s Snapshot) String() string {
	var b strings.Builder
	s.WriteText(&b)
	return b.String()
}

// MarshalJSONIndent renders the /stats.json document.
func (s Snapshot) MarshalJSONIndent() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// ParseJSON decodes a /stats.json document — the client half of the
// exposition, used by `sdctl stats`.
func ParseJSON(data []byte) (Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return Snapshot{}, fmt.Errorf("obs: parsing stats JSON: %w", err)
	}
	return s, nil
}
