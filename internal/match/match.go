// Package match implements the semantic matchmaker the architecture
// delegates to registries (§4.2: "service selection based on semantic
// descriptions is necessary to find the best-suited services for given
// tasks", §3.2: "by delegating service selection to the central
// registry, query evaluation may only have to be carried out once").
//
// The matcher follows the OWL-S matchmaking scheme of Paolucci et al.
// with the four classic degrees, applied to the service category, the
// required outputs and the provided inputs, plus hard QoS-threshold and
// geographic-coverage constraints. Within a degree, candidates are
// ranked by taxonomy similarity (Wu–Palmer) and QoS margin, giving the
// total order the registry needs for "best-only" query response control.
package match

import (
	"fmt"
	"sort"

	"semdisco/internal/ontology"
	"semdisco/internal/profile"
)

// Degree is the qualitative match level, ordered so that a larger value
// is a better match.
type Degree uint8

const (
	// Fail means at least one hard constraint is unsatisfied.
	Fail Degree = iota
	// Subsumed means the service offer is strictly more general than
	// the request (requested concept subsumes the advertised one); it
	// may only partially satisfy the requester.
	Subsumed
	// PlugIn means the service offer is a specialization of the request
	// (advertised concept subsumed by the requested one), so the service
	// can plug into the requester's need.
	PlugIn
	// Exact means the concepts coincide.
	Exact
)

// String renders the degree for reports and logs.
func (d Degree) String() string {
	switch d {
	case Fail:
		return "fail"
	case Subsumed:
		return "subsumed"
	case PlugIn:
		return "plugin"
	case Exact:
		return "exact"
	default:
		return fmt.Sprintf("degree(%d)", uint8(d))
	}
}

// Result is the outcome of matching one advertisement against a
// template.
type Result struct {
	// Degree is the minimum degree across all compared aspects.
	Degree Degree
	// Score ranks results within a degree: the mean taxonomy similarity
	// of the compared concept pairs in [0,1], plus a small QoS-margin
	// bonus. Higher is better.
	Score float64
}

// Matches reports whether the result clears the given minimum degree.
func (r Result) Matches(min Degree) bool {
	return r.Degree != Fail && r.Degree >= min
}

// Matcher evaluates templates against profiles over one shared
// ontology. The zero value is unusable; construct with New.
type Matcher struct {
	onto *ontology.Ontology
}

// New returns a matcher grounded in the given frozen ontology.
func New(o *ontology.Ontology) *Matcher {
	if o == nil {
		panic("match: nil ontology")
	}
	return &Matcher{onto: o}
}

// Match evaluates the template against the profile. The overall degree
// is the weakest aspect degree (a chain is as strong as its weakest
// link); the score aggregates concept similarities for ranking.
func (m *Matcher) Match(t *profile.Template, p *profile.Profile) Result {
	overall := Exact
	simSum, simN := 0.0, 0

	consider := func(d Degree, sim float64) {
		if d < overall {
			overall = d
		}
		simSum += sim
		simN++
	}

	// Category: requested concept vs advertised concept.
	if t.Category != "" {
		d := m.conceptDegree(t.Category, p.Category)
		consider(d, m.onto.Similarity(t.Category, p.Category))
		if d == Fail {
			return Result{Degree: Fail}
		}
	}
	// Outputs: every required output must be served by the best
	// advertised output.
	for _, want := range t.RequiredOutputs {
		best, sim := Fail, 0.0
		for _, have := range p.Outputs {
			d := m.conceptDegree(want, have)
			s := m.onto.Similarity(want, have)
			if d > best || (d == best && s > sim) {
				best, sim = d, s
			}
		}
		consider(best, sim)
		if best == Fail {
			return Result{Degree: Fail}
		}
	}
	// Inputs: every advertised input must be satisfiable from what the
	// client provides. Direction is reversed: the client's concept must
	// specialize (or equal) the service's expected input.
	for _, need := range p.Inputs {
		best, sim := Fail, 0.0
		for _, have := range t.ProvidedInputs {
			d := m.conceptDegree(need, have)
			s := m.onto.Similarity(need, have)
			if d > best || (d == best && s > sim) {
				best, sim = d, s
			}
		}
		if len(t.ProvidedInputs) == 0 {
			// The template does not constrain inputs at all; treat the
			// aspect as unconstrained rather than failing every service
			// that needs input.
			continue
		}
		consider(best, sim)
		if best == Fail {
			return Result{Degree: Fail}
		}
	}
	// QoS thresholds are hard constraints: missing attribute or value
	// below threshold fails.
	qosMargin := 0.0
	for attr, min := range t.MinQoS {
		v, ok := p.QoS[attr]
		if !ok || v < min {
			return Result{Degree: Fail}
		}
		if min > 0 {
			qosMargin += (v - min) / min
		}
	}
	// Coverage: a service with a declared coverage area must cover the
	// requester's position.
	if t.Near != nil && p.Coverage != nil && !p.Coverage.Contains(t.Near.LatDeg, t.Near.LonDeg) {
		return Result{Degree: Fail}
	}

	score := 0.0
	if simN > 0 {
		score = simSum / float64(simN)
	} else {
		score = 1 // unconstrained template: everything is a perfect fit
	}
	// QoS margin is a tie-breaker worth at most 0.1.
	if len(t.MinQoS) > 0 {
		margin := qosMargin / float64(len(t.MinQoS))
		if margin > 1 {
			margin = 1
		}
		score += margin * 0.1
	}
	return Result{Degree: overall, Score: score}
}

// conceptDegree compares a requested concept against an advertised one:
//
//	Exact    advertised == requested
//	PlugIn   advertised ⊑ requested (a Radar when a Sensor was asked for)
//	Subsumed requested ⊑ advertised (a Device when a Sensor was asked for)
//	Fail     otherwise
func (m *Matcher) conceptDegree(requested, advertised ontology.Class) Degree {
	switch {
	case requested == advertised:
		return Exact
	case m.onto.Subsumes(requested, advertised):
		return PlugIn
	case m.onto.Subsumes(advertised, requested):
		return Subsumed
	default:
		return Fail
	}
}

// Ranked pairs a profile with its match result for sorting.
type Ranked struct {
	Profile *profile.Profile
	Result  Result
}

// Rank sorts candidates best-first: by degree, then score, then
// ServiceIRI for a deterministic total order — the property the
// registry's query response control (max-k, best-only) relies on.
func Rank(rs []Ranked) {
	sort.Slice(rs, func(i, j int) bool {
		a, b := rs[i], rs[j]
		if a.Result.Degree != b.Result.Degree {
			return a.Result.Degree > b.Result.Degree
		}
		if a.Result.Score != b.Result.Score {
			return a.Result.Score > b.Result.Score
		}
		return a.Profile.ServiceIRI < b.Profile.ServiceIRI
	})
}
