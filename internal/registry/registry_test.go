package registry

import (
	"errors"
	"testing"
	"time"

	"semdisco/internal/describe"
	"semdisco/internal/lease"
	"semdisco/internal/ontology"
	"semdisco/internal/profile"
	"semdisco/internal/uuid"
	"semdisco/internal/wire"
)

const ns = "http://semdisco.example/onto#"

var (
	t0  = time.Unix(0, 0).UTC()
	gen = uuid.NewGenerator(99)
)

func c(name string) ontology.Class { return ontology.Class(ns + name) }

func testOntology(t testing.TB) *ontology.Ontology {
	t.Helper()
	o := ontology.New(ns)
	for _, a := range [][2]string{
		{"Sensor", "Device"}, {"Radar", "Sensor"}, {"Camera", "Sensor"},
		{"Track", "Observation"},
	} {
		if err := o.AddClass(c(a[0]), c(a[1])); err != nil {
			t.Fatal(err)
		}
	}
	o.Freeze()
	return o
}

func newStore(t testing.TB) *Store {
	t.Helper()
	models := describe.NewRegistry(describe.URIModel{}, describe.KVModel{}, describe.NewSemanticModel(testOntology(t)))
	return New(Options{Models: models, Leases: lease.Policy{Min: time.Second, Max: time.Hour, Default: 30 * time.Second}})
}

func semAdvert(serviceIRI, category string, lease time.Duration) wire.Advertisement {
	p := &profile.Profile{
		ServiceIRI: serviceIRI,
		Category:   c(category),
		Grounding:  "urn:g:" + serviceIRI,
	}
	return wire.Advertisement{
		ID:           gen.New(),
		Provider:     gen.New(),
		ProviderAddr: "lan0/svc",
		Kind:         describe.KindSemantic,
		Payload:      p.Encode(),
		LeaseMillis:  uint64(lease / time.Millisecond),
		Version:      1,
	}
}

func semQuery(category string) []byte {
	q := &describe.SemanticQuery{Template: &profile.Template{Category: c(category)}}
	return q.Encode()
}

func TestPublishAndEvaluate(t *testing.T) {
	s := newStore(t)
	adv := semAdvert("urn:svc:r1", "Radar", 30*time.Second)
	granted, notes, err := s.Publish(adv, t0)
	if err != nil {
		t.Fatal(err)
	}
	if granted != 30*time.Second {
		t.Fatalf("granted = %v", granted)
	}
	if len(notes) != 0 {
		t.Fatalf("unexpected notifications: %v", notes)
	}
	// Semantic query for Sensor finds the Radar.
	res, err := s.Evaluate(describe.KindSemantic, semQuery("Sensor"), QueryOptions{}, t0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].ID != adv.ID {
		t.Fatalf("Evaluate = %v", res)
	}
	// Unrelated query finds nothing.
	res, err = s.Evaluate(describe.KindSemantic, semQuery("Camera"), QueryOptions{}, t0)
	if err != nil || len(res) != 0 {
		t.Fatalf("Camera query = (%v, %v)", res, err)
	}
}

func TestPublishErrors(t *testing.T) {
	s := newStore(t)
	adv := semAdvert("urn:svc:r1", "Radar", time.Minute)

	bad := adv
	bad.Kind = describe.Kind(77)
	if _, _, err := s.Publish(bad, t0); !errors.Is(err, ErrUnknownKind) {
		t.Fatalf("unknown kind error = %v", err)
	}
	bad = adv
	bad.Payload = []byte{1, 2}
	if _, _, err := s.Publish(bad, t0); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("bad payload error = %v", err)
	}
	bad = adv
	bad.ID = uuid.Nil
	if _, _, err := s.Publish(bad, t0); err == nil {
		t.Fatal("nil advert ID accepted")
	}
}

func TestVersionedUpdate(t *testing.T) {
	s := newStore(t)
	adv := semAdvert("urn:svc:r1", "Radar", time.Minute)
	if _, _, err := s.Publish(adv, t0); err != nil {
		t.Fatal(err)
	}
	// Newer version replaces.
	upd := adv
	upd.Version = 2
	upd.Payload = (&profile.Profile{ServiceIRI: "urn:svc:r1", Category: c("Camera"), Grounding: "urn:g"}).Encode()
	if _, _, err := s.Publish(upd, t0); err != nil {
		t.Fatal(err)
	}
	res, _ := s.Evaluate(describe.KindSemantic, semQuery("Camera"), QueryOptions{}, t0)
	if len(res) != 1 || res[0].Version != 2 {
		t.Fatalf("update not applied: %v", res)
	}
	// Stale version rejected.
	stale := adv
	stale.Version = 1
	if _, _, err := s.Publish(stale, t0); !errors.Is(err, ErrStaleVersion) {
		t.Fatalf("stale publish error = %v", err)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestRepublishUnderNewIDSupersedes(t *testing.T) {
	s := newStore(t)
	// A service republishing after its registry crashed gets a new
	// advertisement ID; the old advert for the same ServiceIRI must go.
	first := semAdvert("urn:svc:r1", "Radar", time.Minute)
	if _, _, err := s.Publish(first, t0); err != nil {
		t.Fatal(err)
	}
	second := semAdvert("urn:svc:r1", "Radar", time.Minute)
	if _, _, err := s.Publish(second, t0); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (superseded)", s.Len())
	}
	if s.Has(first.ID) || !s.Has(second.ID) {
		t.Fatal("wrong advert survived")
	}
}

func TestLeaseExpiryPurges(t *testing.T) {
	s := newStore(t)
	adv := semAdvert("urn:svc:r1", "Radar", 10*time.Second)
	if _, _, err := s.Publish(adv, t0); err != nil {
		t.Fatal(err)
	}
	// Still alive at 9s.
	if res, _ := s.Evaluate(describe.KindSemantic, semQuery("Radar"), QueryOptions{}, t0.Add(9*time.Second)); len(res) != 1 {
		t.Fatal("advert gone before lease expiry")
	}
	// Not served at 11s even before purge runs (freshness invariant).
	if res, _ := s.Evaluate(describe.KindSemantic, semQuery("Radar"), QueryOptions{}, t0.Add(11*time.Second)); len(res) != 0 {
		t.Fatal("stale advert served after lease expiry")
	}
	purged := s.ExpireThrough(t0.Add(11 * time.Second))
	if len(purged) != 1 || purged[0].ID != adv.ID {
		t.Fatalf("purged = %v", purged)
	}
	if s.Len() != 0 {
		t.Fatal("store not empty after purge")
	}
}

func TestRenew(t *testing.T) {
	s := newStore(t)
	adv := semAdvert("urn:svc:r1", "Radar", 10*time.Second)
	s.Publish(adv, t0)
	granted, ok := s.Renew(adv.ID, t0.Add(8*time.Second))
	if !ok || granted != 10*time.Second {
		t.Fatalf("Renew = (%v, %v)", granted, ok)
	}
	if res, _ := s.Evaluate(describe.KindSemantic, semQuery("Radar"), QueryOptions{}, t0.Add(15*time.Second)); len(res) != 1 {
		t.Fatal("renewed advert expired early")
	}
	if _, ok := s.Renew(gen.New(), t0); ok {
		t.Fatal("renewed unknown advert")
	}
}

func TestRemove(t *testing.T) {
	s := newStore(t)
	adv := semAdvert("urn:svc:r1", "Radar", time.Minute)
	s.Publish(adv, t0)
	if !s.Remove(adv.ID) {
		t.Fatal("Remove = false")
	}
	if s.Remove(adv.ID) {
		t.Fatal("double remove = true")
	}
	if res, _ := s.Evaluate(describe.KindSemantic, semQuery("Radar"), QueryOptions{}, t0); len(res) != 0 {
		t.Fatal("removed advert still served")
	}
}

func TestResponseControl(t *testing.T) {
	s := newStore(t)
	for i := 0; i < 10; i++ {
		adv := semAdvert("urn:svc:"+string(rune('a'+i)), "Radar", time.Minute)
		if _, _, err := s.Publish(adv, t0); err != nil {
			t.Fatal(err)
		}
	}
	res, _ := s.Evaluate(describe.KindSemantic, semQuery("Sensor"), QueryOptions{MaxResults: 3}, t0)
	if len(res) != 3 {
		t.Fatalf("MaxResults=3 returned %d", len(res))
	}
	res, _ = s.Evaluate(describe.KindSemantic, semQuery("Sensor"), QueryOptions{BestOnly: true}, t0)
	if len(res) != 1 {
		t.Fatalf("BestOnly returned %d", len(res))
	}
	s.DefaultMaxResults = 5
	res, _ = s.Evaluate(describe.KindSemantic, semQuery("Sensor"), QueryOptions{}, t0)
	if len(res) != 5 {
		t.Fatalf("default cap returned %d", len(res))
	}
}

func TestRankingPrefersExact(t *testing.T) {
	s := newStore(t)
	radar := semAdvert("urn:svc:radar", "Radar", time.Minute)
	sensor := semAdvert("urn:svc:sensor", "Sensor", time.Minute)
	s.Publish(radar, t0)
	s.Publish(sensor, t0)
	res, _ := s.Evaluate(describe.KindSemantic, semQuery("Sensor"), QueryOptions{}, t0)
	if len(res) != 2 || res[0].ID != sensor.ID {
		t.Fatalf("exact match not ranked first: %v", res)
	}
}

func TestEvaluateMixedKindsIsolated(t *testing.T) {
	s := newStore(t)
	s.Publish(semAdvert("urn:svc:r1", "Radar", time.Minute), t0)
	uriAdv := wire.Advertisement{
		ID: gen.New(), Provider: gen.New(), Kind: describe.KindURI,
		Payload:     (&describe.URIDescription{TypeURI: "urn:type:radar", ServiceURI: "urn:svc:u1", Addr: "a"}).Encode(),
		LeaseMillis: 60000, Version: 1,
	}
	if _, _, err := s.Publish(uriAdv, t0); err != nil {
		t.Fatal(err)
	}
	res, err := s.Evaluate(describe.KindURI, (&describe.URIQuery{TypeURI: "urn:type:radar"}).Encode(), QueryOptions{}, t0)
	if err != nil || len(res) != 1 || res[0].Kind != describe.KindURI {
		t.Fatalf("URI query = (%v, %v)", res, err)
	}
	if _, err := s.Evaluate(describe.Kind(42), nil, QueryOptions{}, t0); !errors.Is(err, ErrUnknownKind) {
		t.Fatalf("unknown kind query error = %v", err)
	}
	if _, err := s.Evaluate(describe.KindSemantic, []byte{1}, QueryOptions{}, t0); err == nil {
		t.Fatal("bad query payload accepted")
	}
}

func TestMergeRank(t *testing.T) {
	s := newStore(t)
	a := semAdvert("urn:svc:a", "Sensor", time.Minute)
	b := semAdvert("urn:svc:b", "Radar", time.Minute)
	dupA := a // same advert seen via two registries
	aOld := a
	aOld.Version = 0
	pools := [][]wire.Advertisement{{a, b}, {dupA, aOld}}
	res, err := s.MergeRank(describe.KindSemantic, semQuery("Sensor"), pools, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("merged %d results, want 2 (dedup)", len(res))
	}
	if res[0].ID != a.ID || res[0].Version != 1 {
		t.Fatalf("merge ranking/version selection wrong: %+v", res)
	}
	// BestOnly after merge.
	res, _ = s.MergeRank(describe.KindSemantic, semQuery("Sensor"), pools, QueryOptions{BestOnly: true})
	if len(res) != 1 {
		t.Fatalf("BestOnly merge returned %d", len(res))
	}
}

func TestSummary(t *testing.T) {
	s := newStore(t)
	s.Publish(semAdvert("urn:svc:r1", "Radar", time.Minute), t0)
	s.Publish(semAdvert("urn:svc:r2", "Radar", time.Minute), t0)
	s.Publish(semAdvert("urn:svc:c1", "Camera", time.Minute), t0)
	sum := s.Summary()
	if len(sum) != 1 || sum[0].Kind != describe.KindSemantic {
		t.Fatalf("Summary = %+v", sum)
	}
	if len(sum[0].Tokens) != 2 {
		t.Fatalf("tokens = %v, want Radar+Camera deduped", sum[0].Tokens)
	}
}

func TestSubscriptions(t *testing.T) {
	s := newStore(t)
	subID, err := s.Subscribe(describe.KindSemantic, semQuery("Sensor"), "lan0/client", gen.New(), time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	adv := semAdvert("urn:svc:r1", "Radar", time.Minute)
	_, notes, err := s.Publish(adv, t0)
	if err != nil {
		t.Fatal(err)
	}
	if len(notes) != 1 || notes[0].SubID != subID || notes[0].NotifyAddr != "lan0/client" {
		t.Fatalf("notifications = %+v", notes)
	}
	// Non-matching publish notifies nobody.
	_, notes, _ = s.Publish(semAdvert("urn:svc:t1", "Track", time.Minute), t0)
	if len(notes) != 0 {
		t.Fatalf("unexpected notifications: %+v", notes)
	}
	if !s.Unsubscribe(subID) || s.Unsubscribe(subID) {
		t.Fatal("Unsubscribe bookkeeping wrong")
	}
	_, notes, _ = s.Publish(semAdvert("urn:svc:r9", "Radar", time.Minute), t0)
	if len(notes) != 0 {
		t.Fatal("unsubscribed subscription fired")
	}
	if _, err := s.Subscribe(describe.Kind(42), nil, "x", gen.New(), time.Time{}); err == nil {
		t.Fatal("subscribe with unknown kind accepted")
	}
}

func TestArtifacts(t *testing.T) {
	s := newStore(t)
	data := []byte("@prefix ex: <http://e/> .")
	s.PutArtifact(ns, data)
	got, ok := s.Artifact(ns)
	if !ok || string(got) != string(data) {
		t.Fatalf("Artifact = (%q, %v)", got, ok)
	}
	data[0] = 'X' // caller mutation must not affect the store
	got, _ = s.Artifact(ns)
	if got[0] == 'X' {
		t.Fatal("artifact store aliases caller buffer")
	}
	if _, ok := s.Artifact("urn:missing"); ok {
		t.Fatal("missing artifact found")
	}
}

func TestAdvertsDeterministic(t *testing.T) {
	s := newStore(t)
	for i := 0; i < 5; i++ {
		s.Publish(semAdvert("urn:svc:"+string(rune('a'+i)), "Radar", time.Minute), t0)
	}
	first := s.Adverts()
	for i := 0; i < 5; i++ {
		again := s.Adverts()
		for j := range first {
			if again[j].ID != first[j].ID {
				t.Fatal("Adverts order not deterministic")
			}
		}
	}
}
