package match

import "semdisco/internal/obs"

// Runtime observability counters for the matcher's concept-degree memo.
// Process-wide (obs.Default): a node running several matchers observes
// their sum. Documented in OBSERVABILITY.md; `make docs-check` keeps
// that file in sync with this list.
var (
	mCacheHits = obs.NewCounter("match.cache.hits", "count",
		"concept comparisons served from the matcher memo")
	mCacheMisses = obs.NewCounter("match.cache.misses", "count",
		"concept comparisons computed and inserted into the memo")
	mCacheResets = obs.NewCounter("match.cache.resets", "count",
		"memo shards cleared after reaching capacity")
	mCacheSize = obs.NewGauge("match.cache.size", "count",
		"concept pairs currently memoized across all matchers")
)
