// Package wire defines the generic service discovery protocol of the
// conceptual architecture: a compact envelope plus typed message bodies
// in the paper's three operation categories —
//
//	registry network maintenance: probe/probe-match, beacons, ping/pong,
//	    peer exchange, advertisement summaries, gateway claims, bye
//	publishing: publish, renew, update (publish with higher version),
//	    remove, advertisement forwarding
//	querying: query, query result, decentralized peer query,
//	    artifact get/data (the registry-as-repository role of §4.6)
//
// Every message carries the sender's node ID and a message UUID;
// queries additionally carry a query UUID used for response correlation
// and loop avoidance ("giving queries their unique query ID is a good
// approach to avoid query looping between registry nodes"). Payloads
// carrying service descriptions are opaque to this layer and tagged
// with a describe.Kind — the paper's IP-style "next header" field.
package wire

import (
	"fmt"

	"semdisco/internal/describe"
	"semdisco/internal/uuid"
)

// NodeID identifies a participant independently of transport address.
type NodeID = uuid.UUID

// MsgType identifies a protocol message.
type MsgType uint8

// Message types, grouped by the paper's three operation categories.
const (
	// --- registry network maintenance ---

	// TProbe is a client's or registry's multicast "any registries
	// here?" (active registry discovery, §4.5).
	TProbe MsgType = iota + 1
	// TProbeMatch answers a probe with the responder's identity plus
	// alternate registries (registry signaling).
	TProbeMatch
	// TBeacon is a registry's periodic multicast announcement enabling
	// passive registry discovery.
	TBeacon
	// TBye announces graceful departure of a node.
	TBye
	// TPing checks a peer registry's aliveness.
	TPing
	// TPong answers a ping, carrying alternate registries.
	TPong
	// TPeerExchange gossips known registry nodes between registries.
	TPeerExchange
	// TSummary gossips per-kind advertisement summary tokens used for
	// forwarding pruning (§4.9).
	TSummary
	// TGatewayClaim coordinates which LAN registry forwards to the WAN
	// (§4.7: "only one node … acts as the gateway").
	TGatewayClaim

	// --- publishing ---

	// TPublish publishes or updates (same ID, higher version) an
	// advertisement with a lease.
	TPublish
	// TPublishAck confirms or rejects a publish and grants the lease.
	TPublishAck
	// TRenew renews an advertisement lease.
	TRenew
	// TRenewAck confirms or rejects a renewal.
	TRenewAck
	// TRemove withdraws an advertisement explicitly.
	TRemove
	// TAdvertForward pushes an advertisement to a peer registry
	// (replication-style cooperation).
	TAdvertForward

	// --- querying ---

	// TQuery submits or forwards a service query.
	TQuery
	// TQueryResult returns matching advertisements.
	TQueryResult
	// TPeerQuery is the decentralized LAN fallback: service nodes
	// evaluate it against their own advertisements (Fig. 3 right).
	TPeerQuery
	// TArtifactGet requests an ontology/schema artifact by IRI (§4.6).
	TArtifactGet
	// TArtifactData returns a requested artifact.
	TArtifactData
	// TSubscribe registers a standing query; matching future publishes
	// are pushed to the subscriber as QueryResult messages carrying the
	// subscription ID ("registration for notifications about service
	// advertisements of interest", MILCOM'07). Subscriptions are leased
	// like advertisements: a crashed subscriber stops being notified.
	TSubscribe
	// TSubscribeAck confirms or rejects a subscription and grants its
	// lease; it also renews (same SubID).
	TSubscribeAck
	// TUnsubscribe withdraws a standing query.
	TUnsubscribe
	// TArtifactPut uploads an ontology/schema into the registry's
	// artifact repository ("uploading service taxonomies", MILCOM'07).
	TArtifactPut
	// TArtifactPutAck confirms an upload.
	TArtifactPutAck

	// --- registry network maintenance (appended; type bytes on the wire
	// must stay stable, so new types extend the end of the space) ---

	// TSummaryDelta carries an incremental advertisement-summary update:
	// token add/remove lists since the receiver's last acknowledged
	// version, or a full snapshot for (re)synchronization.
	TSummaryDelta
	// TSummaryAck acknowledges the summary version a receiver has
	// applied, optionally demanding a full resync.
	TSummaryAck
	// TDirectoryDelta carries an incremental update of the federation's
	// domain directory: origin-stamped entries (including tombstones for
	// departed domains) since the receiver's last acknowledged version of
	// the sender's directory stream, or a full snapshot for
	// (re)synchronization — the registry-of-registries gossip.
	TDirectoryDelta
	// TDirectoryAck acknowledges the directory stream version a receiver
	// has applied, optionally demanding a full resync.
	TDirectoryAck
)

// msgTypeNames is package-level so String stays allocation-free on the
// zero-alloc decode path (it is evaluated for every frame's trailing
// bounds check).
var msgTypeNames = map[MsgType]string{
	TProbe: "probe", TProbeMatch: "probe-match", TBeacon: "beacon",
	TBye: "bye", TPing: "ping", TPong: "pong",
	TPeerExchange: "peer-exchange", TSummary: "summary",
	TGatewayClaim: "gateway-claim", TPublish: "publish",
	TPublishAck: "publish-ack", TRenew: "renew", TRenewAck: "renew-ack",
	TRemove: "remove", TAdvertForward: "advert-forward",
	TQuery: "query", TQueryResult: "query-result",
	TPeerQuery: "peer-query", TArtifactGet: "artifact-get",
	TArtifactData: "artifact-data", TSubscribe: "subscribe",
	TSubscribeAck: "subscribe-ack", TUnsubscribe: "unsubscribe",
	TArtifactPut: "artifact-put", TArtifactPutAck: "artifact-put-ack",
	TSummaryDelta: "summary-delta", TSummaryAck: "summary-ack",
	TDirectoryDelta: "directory-delta", TDirectoryAck: "directory-ack",
}

// String names the message type.
func (t MsgType) String() string {
	if n, ok := msgTypeNames[t]; ok {
		return n
	}
	return fmt.Sprintf("msgtype(%d)", uint8(t))
}

// Category groups message types for the bandwidth accounting the
// experiments report per operation category.
type Category uint8

// The paper's three message categories.
const (
	CatMaintenance Category = iota
	CatPublishing
	CatQuerying
)

// String names the category.
func (c Category) String() string {
	switch c {
	case CatMaintenance:
		return "maintenance"
	case CatPublishing:
		return "publishing"
	case CatQuerying:
		return "querying"
	default:
		return fmt.Sprintf("category(%d)", uint8(c))
	}
}

// CategoryOf maps a message type to its operation category.
func CategoryOf(t MsgType) Category {
	switch {
	case t >= TProbe && t <= TGatewayClaim, t == TSummaryDelta, t == TSummaryAck,
		t == TDirectoryDelta, t == TDirectoryAck:
		return CatMaintenance
	case t >= TPublish && t <= TAdvertForward:
		return CatPublishing
	default:
		return CatQuerying
	}
}

// Envelope is the common header of every protocol message.
type Envelope struct {
	// Type selects the body's concrete type.
	Type MsgType
	// From is the sending node's ID.
	From NodeID
	// FromAddr is the sender's transport address for direct replies.
	FromAddr string
	// MsgID is unique per message.
	MsgID uuid.UUID
	// Body is the typed message body; its dynamic type must correspond
	// to Type.
	Body Body
}

// Body is implemented by all message bodies.
type Body interface {
	msgType() MsgType
}

// PeerInfo advertises one registry node: its ID and transport address.
// Lists of PeerInfo implement the paper's registry signaling —
// "provide the client node with alternative registry nodes' addresses".
type PeerInfo struct {
	ID   NodeID
	Addr string
}

// Probe body (maintenance).
type Probe struct{}

// ProbeMatch body: alternates for failover.
type ProbeMatch struct {
	Peers []PeerInfo
}

// Beacon body: periodic announcement, with alternates.
type Beacon struct {
	Peers []PeerInfo
}

// Bye body: graceful departure.
type Bye struct{}

// Ping body. FromRegistry distinguishes registry-to-registry aliveness
// checks (the receiver should record the sender as a federation peer)
// from client/service seed probes (it should not).
type Ping struct {
	FromRegistry bool
}

// Pong body: alternates for failover.
type Pong struct {
	Peers []PeerInfo
}

// PeerExchange body: registry list gossip.
type PeerExchange struct {
	Peers []PeerInfo
}

// SummaryEntry carries one model's summary tokens.
type SummaryEntry struct {
	Kind   describe.Kind
	Tokens []string
}

// Summary body: the sending registry's advertisement summary.
type Summary struct {
	Entries []SummaryEntry
}

// GatewayClaim body: the sender claims (or yields) the LAN gateway
// role; lowest node ID wins among concurrent claimants.
type GatewayClaim struct {
	// Yield is true when the sender relinquishes the role.
	Yield bool
}

// Advertisement is a published service description plus its lease
// metadata; the payload stays opaque at this layer.
type Advertisement struct {
	// ID identifies the advertisement for renew/update/remove (§4.10).
	ID uuid.UUID
	// Provider is the service node that published it.
	Provider NodeID
	// ProviderAddr lets registries and clients reach the provider.
	ProviderAddr string
	// Kind is the next-header value of the payload.
	Kind describe.Kind
	// Payload is the encoded service description.
	Payload []byte
	// LeaseMillis is the requested/granted lease duration.
	LeaseMillis uint64
	// Version increases on every republish of updated content.
	Version uint64
}

// Publish body.
type Publish struct {
	Advert Advertisement
}

// PublishAck body.
type PublishAck struct {
	AdvertID uuid.UUID
	OK       bool
	// Error describes a rejection; empty on success.
	Error string
	// LeaseMillis is the granted lease (registries may shorten it).
	LeaseMillis uint64
}

// Renew body.
type Renew struct {
	AdvertID uuid.UUID
}

// RenewAck body. OK=false means the registry no longer knows the
// advertisement and the provider must republish.
type RenewAck struct {
	AdvertID    uuid.UUID
	OK          bool
	LeaseMillis uint64
}

// Remove body.
type Remove struct {
	AdvertID uuid.UUID
}

// AdvertForward body: push cooperation between registries.
type AdvertForward struct {
	Advert Advertisement
	// HopsLeft bounds further forwarding.
	HopsLeft uint8
}

// Strategy selects the federation's query forwarding scheme (§4.9).
type Strategy uint8

// Forwarding strategies.
const (
	// StrategyFlood forwards to every neighbor until TTL exhausts.
	StrategyFlood Strategy = iota
	// StrategyExpandingRing retries flooding with growing TTL.
	StrategyExpandingRing
	// StrategyRandomWalk forwards along K random walkers.
	StrategyRandomWalk
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyFlood:
		return "flood"
	case StrategyExpandingRing:
		return "expanding-ring"
	case StrategyRandomWalk:
		return "random-walk"
	default:
		return fmt.Sprintf("strategy(%d)", uint8(s))
	}
}

// Query body. The same body serves the client→registry submission and
// registry→registry forwarding; ReplyAddr always names the previous
// hop, so results aggregate along the reverse path and the entry
// registry can exercise query response control before answering the
// client (§3.1).
type Query struct {
	// QueryID correlates responses and suppresses forwarding loops.
	QueryID uuid.UUID
	// Kind is the next-header value of the query payload.
	Kind describe.Kind
	// Payload is the encoded model-specific query.
	Payload []byte
	// MaxResults caps the result set (0 = registry default). 1 with
	// BestOnly is the paper's "return only the best advertisement".
	MaxResults uint16
	// BestOnly asks the registry to return a single ranked winner.
	BestOnly bool
	// TTL bounds forwarding hops in the registry network.
	TTL uint8
	// Strategy selects the forwarding scheme.
	Strategy Strategy
	// Walkers is the walker count for StrategyRandomWalk.
	Walkers uint8
	// ReplyAddr is where this hop's results are sent.
	ReplyAddr string
	// NoCache demands a fresh evaluation: registries bypass their query
	// result caches and gateways bypass their remote result caches for
	// this query (results are still eligible to fill the caches).
	NoCache bool
	// Domain pins the query to a federation namespace. Empty keeps the
	// flat fan-out. A gateway whose own domain differs resolves the name
	// through its domain directory and forwards straight to that
	// domain's gateway (falling back to the root when unknown); a
	// gateway inside the domain keeps forwarding confined to peers of
	// the same domain.
	Domain string
}

// QueryResult body.
type QueryResult struct {
	QueryID uuid.UUID
	// Adverts are the matching advertisements, ranked best-first.
	Adverts []Advertisement
	// Complete marks the terminal result message for the query from
	// this responder (aggregation bookkeeping).
	Complete bool
}

// PeerQuery body: the decentralized fallback query (multicast on the
// LAN, answered by service nodes directly).
type PeerQuery struct {
	QueryID   uuid.UUID
	Kind      describe.Kind
	Payload   []byte
	ReplyAddr string
}

// ArtifactGet body: fetch an ontology or schema by IRI from a
// registry's artifact repository.
type ArtifactGet struct {
	IRI string
}

// ArtifactData body.
type ArtifactData struct {
	IRI   string
	Found bool
	Data  []byte
}

// Subscribe body: a leased standing query. Notifications arrive at
// NotifyAddr as QueryResult messages whose QueryID equals SubID.
// Re-sending with the same SubID renews the lease.
type Subscribe struct {
	SubID       uuid.UUID
	Kind        describe.Kind
	Payload     []byte
	NotifyAddr  string
	LeaseMillis uint64
}

// SubscribeAck body.
type SubscribeAck struct {
	SubID       uuid.UUID
	OK          bool
	Error       string
	LeaseMillis uint64
}

// Unsubscribe body.
type Unsubscribe struct {
	SubID uuid.UUID
}

// ArtifactPut body: store a document under its IRI in the registry's
// repository so disconnected nodes can resolve it later.
type ArtifactPut struct {
	IRI  string
	Data []byte
}

// ArtifactPutAck body.
type ArtifactPutAck struct {
	IRI string
	OK  bool
}

// SummaryDeltaEntry carries one model's summary-token changes.
type SummaryDeltaEntry struct {
	Kind describe.Kind
	// Add lists tokens newly present in the sender's summary.
	Add []string
	// Remove lists tokens no longer present (tombstones); empty in full
	// snapshots.
	Remove []string
}

// SummaryDelta body: an incremental registry summary (the §4.9 summary
// gossip made delta-aware). A delta applies only on top of exactly the
// receiver's current version (Base); otherwise the receiver answers
// with a Resync ack and the sender falls back to a full snapshot
// (Full=true, Base ignored, Remove lists empty).
type SummaryDelta struct {
	// Version is the sender's summary version after this delta.
	Version uint64
	// Base is the version this delta applies on top of.
	Base uint64
	// Full marks a complete snapshot for initial sync or resync.
	Full bool
	// Entries lists the per-kind token changes (full: current tokens).
	Entries []SummaryDeltaEntry
}

// SummaryAck body: the summary version the receiver has applied. Resync
// asks the sender for a full snapshot when a delta could not be applied
// (receiver restart, or a gap beyond the sender's delta history).
type SummaryAck struct {
	Version uint64
	Resync  bool
}

// DirectoryEntry names one federation domain in the gossiped
// registry-of-registries directory. Entries are origin-stamped: the
// gateway that authored the entry signs it with its NodeID and a
// per-origin version, so concurrent copies merge deterministically at
// every receiver with no global master (newest version wins; the lower
// origin ID breaks version ties when a domain changes hands).
type DirectoryEntry struct {
	// Domain is the namespace the entry names.
	Domain string
	// Origin is the gateway that authored this entry (the domain's
	// registry-of-record while the entry is live).
	Origin NodeID
	// Addr is the origin gateway's transport address — where
	// domain-scoped queries for this namespace are sent.
	Addr string
	// Version is the origin's entry version, bumped on every change the
	// origin makes (including its departure tombstone).
	Version uint64
	// Tombstone marks a departed domain. Tombstoned entries keep
	// gossiping for a bounded time so every gateway learns of the
	// departure, then age out locally.
	Tombstone bool
}

// DirectoryDelta body: an incremental domain-directory update, the same
// versioned anti-entropy shape as SummaryDelta. Version/Base refer to
// the sending gateway's local directory stream (every entry it accepts
// — its own or relayed — advances the stream); the entries themselves
// carry their origin stamps, so applying them is a merge, never a
// replace, and relaying them onward cannot loop (a stale copy merges to
// a no-op and is not re-emitted).
type DirectoryDelta struct {
	// Version is the sender's directory stream version after this delta.
	Version uint64
	// Base is the stream version this delta applies on top of.
	Base uint64
	// Full marks a complete snapshot for initial sync or resync.
	Full bool
	// Entries lists the changed (full: all) directory entries.
	Entries []DirectoryEntry
}

// DirectoryAck body: the directory stream version the receiver has
// applied, with the same Resync escape hatch as SummaryAck.
type DirectoryAck struct {
	Version uint64
	Resync  bool
}

func (Probe) msgType() MsgType          { return TProbe }
func (ProbeMatch) msgType() MsgType     { return TProbeMatch }
func (Beacon) msgType() MsgType         { return TBeacon }
func (Bye) msgType() MsgType            { return TBye }
func (Ping) msgType() MsgType           { return TPing }
func (Pong) msgType() MsgType           { return TPong }
func (PeerExchange) msgType() MsgType   { return TPeerExchange }
func (Summary) msgType() MsgType        { return TSummary }
func (GatewayClaim) msgType() MsgType   { return TGatewayClaim }
func (Publish) msgType() MsgType        { return TPublish }
func (PublishAck) msgType() MsgType     { return TPublishAck }
func (Renew) msgType() MsgType          { return TRenew }
func (RenewAck) msgType() MsgType       { return TRenewAck }
func (Remove) msgType() MsgType         { return TRemove }
func (AdvertForward) msgType() MsgType  { return TAdvertForward }
func (Query) msgType() MsgType          { return TQuery }
func (QueryResult) msgType() MsgType    { return TQueryResult }
func (PeerQuery) msgType() MsgType      { return TPeerQuery }
func (ArtifactGet) msgType() MsgType    { return TArtifactGet }
func (ArtifactData) msgType() MsgType   { return TArtifactData }
func (Subscribe) msgType() MsgType      { return TSubscribe }
func (SubscribeAck) msgType() MsgType   { return TSubscribeAck }
func (Unsubscribe) msgType() MsgType    { return TUnsubscribe }
func (ArtifactPut) msgType() MsgType    { return TArtifactPut }
func (ArtifactPutAck) msgType() MsgType { return TArtifactPutAck }
func (SummaryDelta) msgType() MsgType   { return TSummaryDelta }
func (SummaryAck) msgType() MsgType     { return TSummaryAck }
func (DirectoryDelta) msgType() MsgType { return TDirectoryDelta }
func (DirectoryAck) msgType() MsgType   { return TDirectoryAck }

// NewEnvelope wraps a body with sender identity and a fresh message ID
// drawn from gen.
func NewEnvelope(from NodeID, fromAddr string, body Body, gen *uuid.Generator) *Envelope {
	var id uuid.UUID
	if gen != nil {
		id = gen.New()
	} else {
		id = uuid.New()
	}
	return &Envelope{
		Type:     body.msgType(),
		From:     from,
		FromAddr: fromAddr,
		MsgID:    id,
		Body:     body,
	}
}
