package workload

import (
	"testing"
	"time"

	"semdisco/internal/ontology"
)

func TestGenOntologyShape(t *testing.T) {
	o, levels := GenOntology(OntologySpec{Depth: 3, Branching: 2})
	if len(levels) != 3 {
		t.Fatalf("levels = %d", len(levels))
	}
	if len(levels[0]) != 1 || len(levels[1]) != 2 || len(levels[2]) != 4 {
		t.Fatalf("level sizes = %d/%d/%d", len(levels[0]), len(levels[1]), len(levels[2]))
	}
	// 1 + 2 + 4 classes + Thing.
	if o.NumClasses() != 8 {
		t.Fatalf("NumClasses = %d, want 8", o.NumClasses())
	}
	// Every leaf is subsumed by the root.
	for _, leaf := range levels[2] {
		if !o.Subsumes(levels[0][0], leaf) {
			t.Fatalf("root does not subsume %s", leaf)
		}
	}
	// Determinism.
	o2, levels2 := GenOntology(OntologySpec{Depth: 3, Branching: 2})
	if o2.NumClasses() != o.NumClasses() || levels2[2][3] != levels[2][3] {
		t.Fatal("generator not deterministic")
	}
}

func TestGenProfiles(t *testing.T) {
	_, levels := GenOntology(OntologySpec{Depth: 3, Branching: 3})
	ps := GenProfiles(PopulationSpec{N: 50, Classes: levels[2], Seed: 1, OntologyIRI: "urn:onto"})
	if len(ps) != 50 {
		t.Fatalf("population = %d", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			t.Fatalf("generated profile invalid: %v", err)
		}
		if seen[p.ServiceIRI] {
			t.Fatalf("duplicate ServiceIRI %s", p.ServiceIRI)
		}
		seen[p.ServiceIRI] = true
		if p.QoS["accuracy"] < 0.5 || p.QoS["accuracy"] >= 1.0 {
			t.Fatalf("accuracy out of range: %v", p.QoS["accuracy"])
		}
	}
	// Same seed → same population.
	ps2 := GenProfiles(PopulationSpec{N: 50, Classes: levels[2], Seed: 1, OntologyIRI: "urn:onto"})
	for i := range ps {
		if ps[i].Category != ps2[i].Category {
			t.Fatal("population not deterministic")
		}
	}
}

func TestQueryMix(t *testing.T) {
	o, levels := GenOntology(OntologySpec{Depth: 4, Branching: 2})
	mix := NewQueryMix(o, levels[3], 0.5, 7)
	exact, broad := 0, 0
	for i := 0; i < 500; i++ {
		cat, isExact := mix.Next()
		if cat == "" || cat == ontology.Thing {
			t.Fatal("degenerate query category")
		}
		if isExact {
			exact++
			// Exact queries must come from the service category pool.
			found := false
			for _, c := range levels[3] {
				if c == cat {
					found = true
				}
			}
			if !found {
				t.Fatalf("exact query %s not in pool", cat)
			}
		} else {
			broad++
			// Broad queries sit strictly above the leaf level
			// (leaves are at ontology depth 4: Thing=0, root=1, …).
			if o.Depth(cat) >= 4 {
				t.Fatalf("broad query %s is at leaf depth", cat)
			}
		}
	}
	if exact < 150 || broad < 150 {
		t.Fatalf("mix unbalanced: %d exact / %d broad", exact, broad)
	}
}

func TestRelevant(t *testing.T) {
	o, levels := GenOntology(OntologySpec{Depth: 3, Branching: 2})
	ps := GenProfiles(PopulationSpec{N: 40, Classes: levels[2], Seed: 2})
	// Root subsumes everything.
	if got := len(Relevant(o, levels[0][0], ps)); got != 40 {
		t.Fatalf("root-relevant = %d, want 40", got)
	}
	// A mid-level class subsumes only its subtree.
	mid := levels[1][0]
	rel := Relevant(o, mid, ps)
	for _, p := range ps {
		want := o.Subsumes(mid, p.Category)
		if rel[p.ServiceIRI] != want {
			t.Fatalf("Relevant mismatch for %s", p.ServiceIRI)
		}
	}
}

func TestChurnDraws(t *testing.T) {
	c := NewChurn(10*time.Second, 5*time.Second, 3)
	var upSum, downSum time.Duration
	const n = 2000
	for i := 0; i < n; i++ {
		u, d := c.NextUp(), c.NextDown()
		if u < 0 || d < 0 {
			t.Fatal("negative sojourn")
		}
		upSum += u
		downSum += d
	}
	meanUp := upSum / n
	meanDown := downSum / n
	if meanUp < 8*time.Second || meanUp > 12*time.Second {
		t.Fatalf("mean up = %v, want ≈10s", meanUp)
	}
	if meanDown < 4*time.Second || meanDown > 6*time.Second {
		t.Fatalf("mean down = %v, want ≈5s", meanDown)
	}
}

func TestKeywordMatch(t *testing.T) {
	ps := GenProfiles(PopulationSpec{N: 1, Classes: []ontology.Class{"http://x#RadarFeed"}, Seed: 1})
	p := ps[0]
	if !KeywordMatch([]string{"radarfeed"}, p) {
		t.Fatal("case-insensitive keyword miss")
	}
	if KeywordMatch([]string{"sonar"}, p) {
		t.Fatal("false keyword hit")
	}
	if KeywordMatch(nil, p) {
		t.Fatal("empty query matched")
	}
}

func TestGenProfilesWithDataClasses(t *testing.T) {
	o, levels := GenOntology(OntologySpec{Depth: 3, Branching: 2})
	_ = o
	data, _ := GenOntology(OntologySpec{NS: "http://semdisco.example/data#", Depth: 2, Branching: 3})
	_ = data
	dataClasses := []ontology.Class{"http://semdisco.example/data#D0", "http://semdisco.example/data#D1"}
	ps := GenProfiles(PopulationSpec{N: 60, Classes: levels[2], DataClasses: dataClasses, Seed: 3})
	withInputs, totalOutputs := 0, 0
	for _, p := range ps {
		if len(p.Outputs) < 1 || len(p.Outputs) > 2 {
			t.Fatalf("outputs = %d, want 1..2", len(p.Outputs))
		}
		totalOutputs += len(p.Outputs)
		if len(p.Inputs) > 1 {
			t.Fatalf("inputs = %d, want 0..1", len(p.Inputs))
		}
		withInputs += len(p.Inputs)
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if withInputs == 0 || withInputs == 60 {
		t.Fatalf("input distribution degenerate: %d/60", withInputs)
	}
	if totalOutputs <= 60 {
		t.Fatalf("no profile got two outputs (%d total)", totalOutputs)
	}
	// Without DataClasses, profiles stay I/O free (back-compat).
	plain := GenProfiles(PopulationSpec{N: 5, Classes: levels[2], Seed: 3})
	for _, p := range plain {
		if p.Inputs != nil || p.Outputs != nil {
			t.Fatal("DataClasses-free population grew I/O")
		}
	}
}
