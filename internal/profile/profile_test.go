package profile

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"semdisco/internal/ontology"
	"semdisco/internal/rdf"
)

const ns = "http://semdisco.example/onto#"

func sampleProfile() *Profile {
	return &Profile{
		ServiceIRI:  "http://unit.example/services/radar-7",
		Name:        "Coastal radar 7",
		Text:        "X-band coastal surveillance radar feed",
		Category:    ontology.Class(ns + "Radar"),
		Inputs:      []ontology.Class{ontology.Class(ns + "AreaOfInterest")},
		Outputs:     []ontology.Class{ontology.Class(ns + "Track"), ontology.Class(ns + "Image")},
		QoS:         map[string]float64{"accuracy": 0.92, "updateHz": 4},
		Grounding:   "udp://10.1.2.3:9000/radar",
		Coverage:    &Circle{LatDeg: 59.9, LonDeg: 10.7, RadiusKm: 80},
		OntologyIRI: ns,
	}
}

func TestValidate(t *testing.T) {
	p := sampleProfile()
	if err := p.Validate(); err != nil {
		t.Fatalf("valid profile rejected: %v", err)
	}
	cases := []struct {
		mutate  func(*Profile)
		wantSub string
	}{
		{func(p *Profile) { p.ServiceIRI = "" }, "ServiceIRI"},
		{func(p *Profile) { p.Category = "" }, "Category"},
		{func(p *Profile) { p.Grounding = "" }, "Grounding"},
		{func(p *Profile) { p.QoS = map[string]float64{"": 1} }, "QoS"},
		{func(p *Profile) { p.QoS = map[string]float64{"x": math.NaN()} }, "not finite"},
		{func(p *Profile) { p.Coverage.RadiusKm = -1 }, "radius"},
	}
	for _, c := range cases {
		p := sampleProfile()
		c.mutate(p)
		err := p.Validate()
		if err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Validate = %v, want error containing %q", err, c.wantSub)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := sampleProfile()
	got, err := Decode(p.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, p)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	p := sampleProfile()
	first := p.Encode()
	for i := 0; i < 20; i++ {
		if string(sampleProfile().Encode()) != string(first) {
			t.Fatal("Encode is not deterministic (map iteration leaked)")
		}
	}
}

func TestDecodeMinimalProfile(t *testing.T) {
	p := &Profile{ServiceIRI: "urn:s", Category: "urn:c", Grounding: "urn:g"}
	got, err := Decode(p.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Fatalf("minimal round trip mismatch: %+v vs %+v", got, p)
	}
	if got.Coverage != nil || got.QoS != nil || got.Inputs != nil {
		t.Fatal("empty fields materialized non-nil values")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	enc := sampleProfile().Encode()
	if _, err := Decode(enc[:len(enc)-1]); err == nil {
		t.Fatal("truncated profile accepted")
	}
	if _, err := Decode(append(append([]byte{}, enc...), 0)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
	bad := append([]byte{}, enc...)
	bad[0] = 99
	if _, err := Decode(bad); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("unknown version error = %v", err)
	}
	if _, err := Decode(nil); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestDecodeFuzzNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		Decode(b) // errors fine, panics not
		DecodeTemplate(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestClone(t *testing.T) {
	p := sampleProfile()
	c := p.Clone()
	if !reflect.DeepEqual(p, c) {
		t.Fatal("clone differs")
	}
	c.Outputs[0] = "mutated"
	c.QoS["accuracy"] = 0
	c.Coverage.RadiusKm = 1
	if p.Outputs[0] == "mutated" || p.QoS["accuracy"] == 0 || p.Coverage.RadiusKm == 1 {
		t.Fatal("clone shares storage with original")
	}
}

func TestCircleGeometry(t *testing.T) {
	c := Circle{LatDeg: 60, LonDeg: 10, RadiusKm: 50}
	if !c.Contains(60, 10) {
		t.Fatal("center not contained")
	}
	if !c.Contains(60.4, 10) { // ~44.5 km north
		t.Fatal("point 44 km away not contained in 50 km circle")
	}
	if c.Contains(61, 10) { // ~111 km north
		t.Fatal("point 111 km away contained in 50 km circle")
	}
	far := Circle{LatDeg: 65, LonDeg: 10, RadiusKm: 50}
	if c.Overlaps(far) {
		t.Fatal("circles 550 km apart overlap")
	}
	near := Circle{LatDeg: 60.5, LonDeg: 10, RadiusKm: 50}
	if !c.Overlaps(near) {
		t.Fatal("circles 55 km apart with 100 km combined radius do not overlap")
	}
}

func TestTemplateRoundTrip(t *testing.T) {
	tpl := &Template{
		Category:        ontology.Class(ns + "Sensor"),
		RequiredOutputs: []ontology.Class{ontology.Class(ns + "Track")},
		ProvidedInputs:  []ontology.Class{ontology.Class(ns + "AreaOfInterest")},
		MinQoS:          map[string]float64{"accuracy": 0.8},
		Keywords:        []string{"radar", "coastal"},
		Near:            &Point{LatDeg: 59.9, LonDeg: 10.7},
	}
	got, err := DecodeTemplate(tpl.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tpl) {
		t.Fatalf("template round trip mismatch:\n got %+v\nwant %+v", got, tpl)
	}
}

func TestTemplateEmptyRoundTrip(t *testing.T) {
	got, err := DecodeTemplate((&Template{}).Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, &Template{}) {
		t.Fatalf("empty template mismatch: %+v", got)
	}
}

func TestToGraph(t *testing.T) {
	p := sampleProfile()
	g := p.ToGraph()
	s := rdf.IRI(p.ServiceIRI)
	if !g.Has(rdf.Triple{S: s, P: rdf.IRI(rdf.RDFType), O: rdf.IRI(vocabService)}) {
		t.Fatal("missing type triple")
	}
	if !g.Has(rdf.Triple{S: s, P: rdf.IRI(vocabCategory), O: rdf.IRI(string(p.Category))}) {
		t.Fatal("missing category triple")
	}
	if got := len(g.Objects(s, rdf.IRI(vocabOutput))); got != 2 {
		t.Fatalf("graph has %d outputs, want 2", got)
	}
	if !g.Has(rdf.Triple{S: s, P: rdf.IRI(vocabQoSPrefix + "accuracy"), O: rdf.FloatLiteral(0.92)}) {
		t.Fatal("missing QoS triple")
	}
	// The graph must serialize and re-parse (it is what a registry's
	// artifact repository would serve).
	if _, err := rdf.ParseTurtle(rdf.EncodeNTriples(g)); err != nil {
		t.Fatalf("profile graph does not round-trip through N-Triples: %v", err)
	}
}

func TestBinarySmallerThanRDF(t *testing.T) {
	// The compact binary form must beat the N-Triples rendering by a
	// comfortable margin — this underpins experiment E8.
	p := sampleProfile()
	bin := len(p.Encode())
	ntl := len(rdf.EncodeNTriples(p.ToGraph()))
	if bin*2 > ntl {
		t.Fatalf("binary form %dB not ≤ half of N-Triples %dB", bin, ntl)
	}
}
