//go:build !(linux && amd64)

package udpnet

// Portable fallbacks for platforms without the raw sendmmsg/recvmmsg
// fast path: batch sends degrade to one write per datagram and receives
// use the generic ReadFromUDP loop. Semantics are identical; only the
// syscall count differs.

import (
	"net"

	"semdisco/internal/transport"
)

// writeBatchOS reports zero datagrams handled, so UnicastBatch's
// fallback loop sends each one individually.
func writeBatchOS(*Node, []*net.UDPAddr, []transport.Outgoing) int { return 0 }

// readLoopOS declines, selecting the portable read loop.
func readLoopOS(*Node, *net.UDPConn) bool { return false }
