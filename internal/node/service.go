// Package node implements the client and service roles of the SOA
// triangle (§4.1). Both roles embed the discovery bootstrapper; the
// registry role lives in internal/federation.
//
// A Service publishes its descriptions with a lease, renews the lease
// periodically, republishes when a renewal is refused ("the service
// node must try to find another connection point to the registry
// network and publish its advertisement there"), and answers
// decentralized fallback queries directly (Fig. 3 right).
//
// A Client discovers a registry, submits queries with delegated
// response control, fails over to signaled alternates when its registry
// dies, and falls back to decentralized LAN discovery when no registry
// remains.
//
// Both roles tick the node.* runtime metrics — query failovers,
// expanding-ring reissues, fallback use, publish/renew/republish
// traffic — so the retry machinery is observable without tracing; see
// OBSERVABILITY.md.
package node

import (
	"time"

	"semdisco/internal/describe"
	"semdisco/internal/discovery"
	"semdisco/internal/runtime"
	"semdisco/internal/transport"
	"semdisco/internal/uuid"
	"semdisco/internal/wire"
)

// ServiceConfig tunes a service node.
type ServiceConfig struct {
	// Lease is the requested advertisement lease; default 30 s.
	Lease time.Duration
	// RenewFraction renews after granted×fraction; default 1/3 (three
	// renewal attempts fit inside one lease).
	RenewFraction float64
	// AckTimeout bounds the wait for publish/renew acks; default 2 s.
	AckTimeout time.Duration
	// MaxMissed is the number of consecutive unacked renewals before
	// the registry is declared dead; default 2.
	MaxMissed int
	// Bootstrap configures registry discovery.
	Bootstrap discovery.Config
}

func (c ServiceConfig) withDefaults() ServiceConfig {
	if c.Lease == 0 {
		c.Lease = 30 * time.Second
	}
	if c.RenewFraction == 0 {
		c.RenewFraction = 1.0 / 3.0
	}
	if c.AckTimeout == 0 {
		c.AckTimeout = 2 * time.Second
	}
	if c.MaxMissed == 0 {
		c.MaxMissed = 2
	}
	return c
}

type servAdvert struct {
	desc    describe.Description
	id      uuid.UUID
	version uint64
	granted time.Duration
	// registry holds the registry currently leasing this advert.
	registry   wire.NodeID
	missed     int
	renewTimer transport.CancelFunc
	ackTimer   transport.CancelFunc
}

// Service is a service-provider node.
type Service struct {
	env     *runtime.Env
	cfg     ServiceConfig
	boot    *discovery.Bootstrapper
	models  *describe.Registry
	adverts []*servAdvert
	stopped bool

	// lastQuery memoizes the most recent peer-query decode: expanding
	// ring searches reissue the identical payload with growing TTLs, so
	// every provider would otherwise re-decode it on each round.
	lastQuery struct {
		hash  uint64
		kind  describe.Kind
		query describe.Query
	}
}

// NewService creates a service node hosting the given descriptions.
func NewService(env *runtime.Env, models *describe.Registry, cfg ServiceConfig, descs ...describe.Description) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		env:    env,
		cfg:    cfg,
		models: models,
		boot:   discovery.New(env, cfg.Bootstrap),
	}
	for _, d := range descs {
		s.adverts = append(s.adverts, &servAdvert{desc: d, id: env.NewUUID(), version: 1})
	}
	s.boot.OnRegistryFound(func() { s.publishAll() })
	return s
}

// Bootstrapper exposes the discovery state (tests, reports).
func (s *Service) Bootstrapper() *discovery.Bootstrapper { return s.boot }

// Start begins registry discovery; publishing follows automatically
// once a registry is found.
func (s *Service) Start() {
	s.boot.Start()
	if _, ok := s.boot.Current(); ok {
		s.publishAll()
	}
}

// Stop removes the node's advertisements (graceful deregistration) and
// cancels all timers.
func (s *Service) Stop() {
	if s.stopped {
		return
	}
	s.stopped = true
	if reg, ok := s.boot.Current(); ok {
		for _, a := range s.adverts {
			s.env.Send(transport.Addr(reg.Addr), wire.Remove{AdvertID: a.id})
		}
	}
	for _, a := range s.adverts {
		cancelTimers(a)
	}
	s.boot.Stop()
}

// Crash halts the service abruptly without deregistering — the failure
// mode leasing exists for: its advertisements must age out of the
// registry by lease expiry (§4.8).
func (s *Service) Crash() {
	s.stopped = true
	for _, a := range s.adverts {
		cancelTimers(a)
	}
	s.boot.Stop()
}

func cancelTimers(a *servAdvert) {
	if a.renewTimer != nil {
		a.renewTimer()
		a.renewTimer = nil
	}
	if a.ackTimer != nil {
		a.ackTimer()
		a.ackTimer = nil
	}
}

// UpdateDescription replaces the description whose ServiceKey matches
// and republishes it with a bumped version — the frequent-update path
// the paper expects of rich descriptions (e.g. changed coverage areas).
func (s *Service) UpdateDescription(d describe.Description) bool {
	for _, a := range s.adverts {
		if a.desc.ServiceKey() == d.ServiceKey() && a.desc.Kind() == d.Kind() {
			a.desc = d
			a.version++
			s.publish(a)
			return true
		}
	}
	return false
}

func (s *Service) publishAll() {
	for _, a := range s.adverts {
		s.publish(a)
	}
}

func (s *Service) publish(a *servAdvert) {
	if s.stopped {
		return
	}
	reg, ok := s.boot.Current()
	if !ok {
		return // OnRegistryFound will retry
	}
	cancelTimers(a)
	a.registry = reg.ID
	adv := wire.Advertisement{
		ID:           a.id,
		Provider:     s.env.ID,
		ProviderAddr: string(s.env.Addr()),
		Kind:         a.desc.Kind(),
		Payload:      a.desc.Encode(),
		LeaseMillis:  uint64(s.cfg.Lease / time.Millisecond),
		Version:      a.version,
	}
	s.env.Send(transport.Addr(reg.Addr), wire.Publish{Advert: adv})
	nPublishSent.Inc()
	a.ackTimer = s.env.Clock.After(s.cfg.AckTimeout, func() { s.onAckTimeout(a) })
}

func (s *Service) renew(a *servAdvert) {
	if s.stopped {
		return
	}
	reg, ok := s.boot.Current()
	if !ok || reg.ID != a.registry {
		// Our registry vanished from the table; publish to the new one.
		s.publish(a)
		return
	}
	s.env.Send(transport.Addr(reg.Addr), wire.Renew{AdvertID: a.id})
	nRenewSent.Inc()
	a.ackTimer = s.env.Clock.After(s.cfg.AckTimeout, func() { s.onAckTimeout(a) })
}

func (s *Service) onAckTimeout(a *servAdvert) {
	if s.stopped {
		return
	}
	a.ackTimer = nil
	a.missed++
	if a.missed >= s.cfg.MaxMissed {
		// Registry presumed dead: fail over (§4.1 "the service node must
		// try to find another connection point … and publish there").
		s.boot.MarkDead(a.registry)
		a.missed = 0
		nRepublishes.Inc()
		s.publish(a)
		return
	}
	s.renew(a)
}

func (s *Service) scheduleRenew(a *servAdvert) {
	if a.renewTimer != nil {
		a.renewTimer()
	}
	d := time.Duration(float64(a.granted) * s.cfg.RenewFraction)
	if d <= 0 {
		d = a.granted / 3
	}
	a.renewTimer = s.env.Clock.After(d, func() { s.renew(a) })
}

// HandleEnvelope implements runtime.Handler.
func (s *Service) HandleEnvelope(env *wire.Envelope, from transport.Addr) {
	if s.stopped {
		return
	}
	s.boot.Observe(env)
	switch b := env.Body.(type) {
	case *wire.PublishAck:
		s.onPublishAck(b)
	case *wire.RenewAck:
		s.onRenewAck(b)
	case *wire.PeerQuery:
		s.onPeerQuery(b)
	}
}

func (s *Service) findAdvert(id uuid.UUID) *servAdvert {
	for _, a := range s.adverts {
		if a.id == id {
			return a
		}
	}
	return nil
}

func (s *Service) onPublishAck(b *wire.PublishAck) {
	a := s.findAdvert(b.AdvertID)
	if a == nil {
		return
	}
	cancelTimers(a)
	a.missed = 0
	if !b.OK {
		s.env.Tracef("publish rejected: %s", b.Error)
		return
	}
	a.granted = time.Duration(b.LeaseMillis) * time.Millisecond
	s.scheduleRenew(a)
}

func (s *Service) onRenewAck(b *wire.RenewAck) {
	a := s.findAdvert(b.AdvertID)
	if a == nil {
		return
	}
	cancelTimers(a)
	a.missed = 0
	if !b.OK {
		// Lease lapsed at the registry (e.g. it restarted): republish.
		s.publish(a)
		return
	}
	a.granted = time.Duration(b.LeaseMillis) * time.Millisecond
	s.scheduleRenew(a)
}

// onPeerQuery answers a decentralized fallback query directly from the
// node's own descriptions — "all provider nodes must evaluate the query
// independently of each other" (§3.1); the bandwidth cost of exactly
// this behaviour is measured by experiment E1.
func (s *Service) onPeerQuery(b *wire.PeerQuery) {
	model, ok := s.models.Model(b.Kind)
	if !ok {
		return // silently discard unknown kinds
	}
	h := describe.PayloadHash(b.Kind, b.Payload)
	q := s.lastQuery.query
	if q == nil || s.lastQuery.hash != h || s.lastQuery.kind != b.Kind {
		var err error
		q, err = model.DecodeQuery(b.Payload)
		if err != nil {
			return
		}
		s.lastQuery.hash, s.lastQuery.kind, s.lastQuery.query = h, b.Kind, q
	}
	var hits []wire.Advertisement
	for _, a := range s.adverts {
		if a.desc.Kind() != b.Kind {
			continue
		}
		if ev := model.Evaluate(q, a.desc); ev.Matched {
			hits = append(hits, wire.Advertisement{
				ID:           a.id,
				Provider:     s.env.ID,
				ProviderAddr: string(s.env.Addr()),
				Kind:         a.desc.Kind(),
				Payload:      a.desc.Encode(),
				LeaseMillis:  uint64(s.cfg.Lease / time.Millisecond),
				Version:      a.version,
			})
		}
	}
	if len(hits) > 0 {
		nPeerAnswers.Inc()
		s.env.Send(transport.Addr(b.ReplyAddr), wire.QueryResult{
			QueryID: b.QueryID, Adverts: hits, Complete: true,
		})
	}
}
