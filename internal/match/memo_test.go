package match

import (
	"sync"
	"testing"

	"semdisco/internal/ontology"
	"semdisco/internal/profile"
)

// mapsOntology rebuilds the test taxonomy on the map path so tests can
// compare memoized interned matching against the original semantics.
func mapsOntology(t testing.TB) *ontology.Ontology {
	t.Helper()
	o := ontology.New(ns)
	if err := o.DisableCompiledIndex(); err != nil {
		t.Fatal(err)
	}
	axioms := [][2]string{
		{"Sensor", "Device"},
		{"Radar", "Sensor"},
		{"CoastalRadar", "Radar"},
		{"Camera", "Sensor"},
		{"Track", "Observation"},
		{"RadarTrack", "Track"},
		{"Image", "Observation"},
		{"AreaOfInterest", "Region"},
		{"CoastalArea", "AreaOfInterest"},
	}
	for _, a := range axioms {
		if err := o.AddClass(c(a[0]), c(a[1])); err != nil {
			t.Fatal(err)
		}
	}
	o.Freeze()
	return o
}

func memoTemplates() []*profile.Template {
	return []*profile.Template{
		{Category: c("Sensor")},
		{Category: c("Sensor"), RequiredOutputs: []ontology.Class{c("Track")},
			ProvidedInputs: []ontology.Class{c("CoastalArea")}},
		{Category: c("Device"), RequiredOutputs: []ontology.Class{c("Observation")}},
		{Category: c("CoastalRadar")},
		{Category: c("Camera")},
		{Category: c("Unknown")},
		{Category: c("Sensor"), RequiredOutputs: []ontology.Class{c("Image")}},
		{},
	}
}

func memoProfiles() []*profile.Profile {
	return []*profile.Profile{
		radarService(),
		{ServiceIRI: "urn:svc:cam", Category: c("Camera"),
			Outputs: []ontology.Class{c("Image")}, Grounding: "urn:g"},
		{ServiceIRI: "urn:svc:odd", Category: c("Unknown"), Grounding: "urn:g"},
		{ServiceIRI: "urn:svc:dev", Category: c("Device"),
			Inputs:  []ontology.Class{c("Region")},
			Outputs: []ontology.Class{c("Observation"), c("RadarTrack")}, Grounding: "urn:g"},
	}
}

// TestMatchCompiledAgreesWithMaps pins the tentpole's behavioural
// contract: the memoized interned fast path returns bit-identical
// results to the original map-based matcher, for interned and
// non-interned inputs alike, and regardless of memo warmth.
func TestMatchCompiledAgreesWithMaps(t *testing.T) {
	co, mo := testOntology(t), mapsOntology(t)
	if !co.Compiled() || mo.Compiled() {
		t.Fatalf("Compiled() = %v/%v, want true/false", co.Compiled(), mo.Compiled())
	}
	cm, mm := New(co), New(mo)
	for round := 0; round < 3; round++ { // round > 0 hits the memo
		for ti, tpl := range memoTemplates() {
			for pi, p := range memoProfiles() {
				want := mm.Match(tpl, p)
				if got := cm.Match(tpl, p); got != want {
					t.Fatalf("round %d: Match(t%d, p%d) = %+v, want %+v", round, ti, pi, got, want)
				}
				// Interning must not change the outcome, only the cost.
				it, ip := tpl, p
				if round == 1 {
					cl := *tpl
					it = &cl
					it.Intern(co)
					ip = p.Clone()
					ip.Intern(co)
				}
				if got := cm.Match(it, ip); got != want {
					t.Fatalf("round %d: interned Match(t%d, p%d) = %+v, want %+v", round, ti, pi, got, want)
				}
			}
		}
	}
}

// TestMemoBounded forces a shard past its capacity and checks the memo
// keeps answering correctly after the clear.
func TestMemoBounded(t *testing.T) {
	o := ontology.New(ns)
	var classes []ontology.Class
	for i := 0; i < 600; i++ {
		cl := c(string(rune('A'+i%26)) + "x" + string(rune('0'+i%10)) + "n" + itoa(i))
		classes = append(classes, cl)
		var parent ontology.Class
		if i > 0 {
			parent = classes[i/2]
		}
		if err := o.AddClass(cl, parent); err != nil {
			t.Fatal(err)
		}
	}
	o.Freeze()
	m := New(o)
	if m.memo == nil {
		t.Fatal("compiled ontology produced no memo")
	}
	// 600² pairs ≫ 64 shards × 4096 cap, so clears must occur.
	for _, a := range classes {
		ida := o.ClassID(a)
		for _, b := range classes {
			m.evalConceptID(ida, o.ClassID(b))
		}
	}
	for i, a := range classes[:40] {
		for _, b := range classes[i:41] {
			d, s := m.evalConceptID(o.ClassID(a), o.ClassID(b))
			if wd, ws := m.conceptDegree(a, b), o.Similarity(a, b); d != wd || s != ws {
				t.Fatalf("post-clear eval(%s, %s) = (%v, %v), want (%v, %v)", a, b, d, s, wd, ws)
			}
		}
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	n := len(b)
	for i > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	return string(b[n:])
}

// TestMatcherConcurrent hammers one matcher (and its shared memo) from
// many goroutines over a frozen ontology; -race in CI proves the memo's
// sharded locking. Results are checked against a single-threaded pass.
func TestMatcherConcurrent(t *testing.T) {
	o := testOntology(t)
	m := New(o)
	tpls := memoTemplates()
	profs := memoProfiles()
	// Mix of interned and raw inputs, like a registry serving decoded
	// (interned) adverts alongside caller-constructed ones.
	for _, tpl := range tpls[:4] {
		tpl.Intern(o)
	}
	for _, p := range profs[:2] {
		p.Intern(o)
	}
	want := make([][]Result, len(tpls))
	for i, tpl := range tpls {
		want[i] = make([]Result, len(profs))
		for j, p := range profs {
			want[i][j] = m.Match(tpl, p)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 3000; i++ {
				ti := (i + g) % len(tpls)
				pi := (i*3 + g) % len(profs)
				if got := m.Match(tpls[ti], profs[pi]); got != want[ti][pi] {
					select {
					case errs <- "concurrent Match diverged":
					default:
					}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}
