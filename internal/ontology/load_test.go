package ontology

import (
	"testing"

	"semdisco/internal/rdf"
)

const taxTTL = `
@prefix ex: <http://semdisco.example/onto#> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
@prefix owl: <http://www.w3.org/2002/07/owl#> .

ex:Device a owl:Class .
ex:Sensor rdfs:subClassOf ex:Device ;
          rdfs:label "sensor" .
ex:Radar rdfs:subClassOf ex:Sensor .
ex:RadarStation owl:equivalentClass ex:Radar .
ex:detects rdfs:subPropertyOf ex:observes ;
           rdfs:domain ex:Sensor ;
           rdfs:range ex:Device .
`

func TestFromTurtle(t *testing.T) {
	o, err := FromTurtle(ns, taxTTL)
	if err != nil {
		t.Fatal(err)
	}
	if !o.Subsumes(c("Device"), c("Radar")) {
		t.Fatal("transitive subsumption not derived from RDF")
	}
	if !o.Subsumes(c("Radar"), c("RadarStation")) || !o.Subsumes(c("RadarStation"), c("Radar")) {
		t.Fatal("owl:equivalentClass not honored")
	}
	if o.Label(c("Sensor")) != "sensor" {
		t.Fatalf("label = %q", o.Label(c("Sensor")))
	}
	if !o.SubPropertyOf(Property(ns+"detects"), Property(ns+"observes")) {
		t.Fatal("subPropertyOf not loaded")
	}
	if o.PropertyDomain(Property(ns+"detects")) != c("Sensor") {
		t.Fatal("property domain not loaded")
	}
	if o.PropertyRange(Property(ns+"detects")) != c("Device") {
		t.Fatal("property range not loaded")
	}
}

func TestFromTurtleParseError(t *testing.T) {
	if _, err := FromTurtle(ns, "ex:a ex:b ex:c ."); err == nil {
		t.Fatal("parse error not propagated")
	}
}

func TestFromGraphRejectsLiteralClass(t *testing.T) {
	g := rdf.NewGraph()
	g.MustAdd(rdf.Triple{
		S: rdf.IRI(ns + "A"),
		P: rdf.IRI(rdf.RDFSSubClassOf),
		O: rdf.Literal("not a class"),
	})
	if _, err := FromGraph(ns, g); err == nil {
		t.Fatal("literal superclass accepted")
	}
}

func TestToGraphRoundTrip(t *testing.T) {
	o, err := FromTurtle(ns, taxTTL)
	if err != nil {
		t.Fatal(err)
	}
	g := o.ToGraph()
	back, err := FromGraph(ns, g)
	if err != nil {
		t.Fatal(err)
	}
	// The round-tripped ontology must preserve all subsumption answers.
	for _, a := range o.Classes() {
		for _, b := range o.Classes() {
			if o.Subsumes(a, b) != back.Subsumes(a, b) {
				t.Fatalf("round trip changed Subsumes(%s, %s)", a, b)
			}
		}
	}
	if back.Label(c("Sensor")) != "sensor" {
		t.Fatal("label lost in round trip")
	}
	if !back.SubPropertyOf(Property(ns+"detects"), Property(ns+"observes")) {
		t.Fatal("property hierarchy lost in round trip")
	}
}
