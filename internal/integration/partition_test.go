package integration_test

import (
	"fmt"
	"testing"
	"time"

	"semdisco/internal/discovery"
	"semdisco/internal/federation"
	"semdisco/internal/node"
	"semdisco/internal/sim"
	"semdisco/internal/transport"
	"semdisco/internal/wire"
)

// TestPartitionSoak cycles WAN partitions between two organizational
// branches and asserts the paper's organizational-autonomy claim: "a
// network disconnect between branches will not prevent services running
// on the same organizational level from discovering each other", and
// that global discovery recovers after every heal.
func TestPartitionSoak(t *testing.T) {
	w := sim.NewWorld(sim.Config{Seed: 777})
	regCfg := func(seeds ...wire.PeerInfo) federation.Config {
		return federation.Config{
			BeaconInterval: 2 * time.Second,
			PingInterval:   3 * time.Second,
			PeerTimeout:    9 * time.Second,
			QueryTimeout:   200 * time.Millisecond,
			PurgeInterval:  250 * time.Millisecond,
			Seeds:          seeds,
		}
	}
	rA := w.AddRegistry("branchA", "rA", regCfg())
	rB := w.AddRegistry("branchB", "rB", regCfg(rA.PeerInfo()))

	svcCfg := node.ServiceConfig{
		Lease:      4 * time.Second,
		AckTimeout: 400 * time.Millisecond,
		Bootstrap:  discovery.Config{ProbeInterval: 500 * time.Millisecond},
	}
	for i := 0; i < 3; i++ {
		w.AddService("branchA", fmt.Sprintf("sA%d", i), svcCfg,
			w.SemanticProfile(fmt.Sprintf("urn:svc:A%d", i), sim.C("RadarFeed")))
		w.AddService("branchB", fmt.Sprintf("sB%d", i), svcCfg,
			w.SemanticProfile(fmt.Sprintf("urn:svc:B%d", i), sim.C("CameraFeed")))
	}
	cliCfg := node.ClientConfig{
		QueryTimeout: 2 * time.Second,
		Bootstrap:    discovery.Config{ProbeInterval: 500 * time.Millisecond},
	}
	cliA := w.AddClient("branchA", "cA", cliCfg)
	cliB := w.AddClient("branchB", "cB", cliCfg)
	w.Run(8 * time.Second)

	sideOf := func(lan string) []transport.Addr { return w.Net.NodesOn(lan) }
	count := func(cli *sim.ClientHandle) int {
		spec := w.SemanticSpec(sim.C("Service"), 3)
		spec.MaxResults = 50
		out := cli.Query(spec, 20*time.Second)
		if !out.Completed {
			t.Fatalf("query hung")
		}
		seen := map[string]bool{}
		for _, a := range out.Adverts {
			d, err := w.Models().DecodeDescription(a.Kind, a.Payload)
			if err == nil {
				seen[d.ServiceKey()] = true
			}
		}
		return len(seen)
	}

	// Healthy: both sides see all 6 services.
	if got := count(cliA); got != 6 {
		t.Fatalf("pre-partition view from A = %d, want 6", got)
	}

	for cycle := 0; cycle < 3; cycle++ {
		// --- partition ---
		w.Net.Partition(sideOf("branchA"), sideOf("branchB"))
		// Let leases of cross-branch replica knowledge lapse.
		w.Run(15 * time.Second)
		// Organizational autonomy: each branch still sees its own 3.
		if got := count(cliA); got != 3 {
			t.Fatalf("cycle %d: partitioned A sees %d, want its own 3", cycle, got)
		}
		if got := count(cliB); got != 3 {
			t.Fatalf("cycle %d: partitioned B sees %d, want its own 3", cycle, got)
		}
		// --- heal ---
		w.Net.Partition()
		// Registries re-ping, services renew, federation reconnects.
		w.Run(20 * time.Second)
		if got := count(cliA); got != 6 {
			t.Fatalf("cycle %d: healed A sees %d, want 6", cycle, got)
		}
		if got := count(cliB); got != 6 {
			t.Fatalf("cycle %d: healed B sees %d, want 6", cycle, got)
		}
	}
	_ = rB
}
