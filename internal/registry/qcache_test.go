package registry

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"semdisco/internal/describe"
	"semdisco/internal/lease"
	"semdisco/internal/uuid"
	"semdisco/internal/wire"
)

// evalMust runs Evaluate and fails the test on error.
func evalMust(t *testing.T, s *Store, payload []byte, opts QueryOptions, now time.Time) []wire.Advertisement {
	t.Helper()
	out, err := s.Evaluate(describe.KindSemantic, payload, opts, now)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestQueryCacheHitServesEqualResults(t *testing.T) {
	s := newStore(t)
	if s.qcache == nil {
		t.Fatal("query cache should default on")
	}
	for i := 0; i < 3; i++ {
		adv := semAdvert(fmt.Sprintf("urn:svc:r%d", i), "Radar", time.Hour)
		if _, _, err := s.Publish(adv, t0); err != nil {
			t.Fatal(err)
		}
	}
	q := semQuery("Sensor")
	hits0 := mQCacheHits.Load()
	first := evalMust(t, s, q, QueryOptions{}, t0)
	if got := s.qcache.size(); got != 1 {
		t.Fatalf("cache size after fill = %d, want 1", got)
	}
	second := evalMust(t, s, q, QueryOptions{}, t0.Add(time.Second))
	if mQCacheHits.Load() != hits0+1 {
		t.Fatalf("expected exactly one cache hit, got %d", mQCacheHits.Load()-hits0)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("cached result differs from live result:\n%v\n%v", first, second)
	}
	// Served copies must not alias resident cache state.
	second[0].Version = 999
	third := evalMust(t, s, q, QueryOptions{}, t0.Add(2*time.Second))
	if third[0].Version == 999 {
		t.Fatal("mutating a served result leaked into the cache")
	}
}

func TestQueryCacheInvalidationOnMutation(t *testing.T) {
	s := newStore(t)
	a1 := semAdvert("urn:svc:r1", "Radar", time.Hour)
	if _, _, err := s.Publish(a1, t0); err != nil {
		t.Fatal(err)
	}
	q := semQuery("Sensor")
	if got := evalMust(t, s, q, QueryOptions{}, t0); len(got) != 1 {
		t.Fatalf("got %d results, want 1", len(got))
	}

	// Publish must invalidate: the second identical query sees the new
	// advert.
	a2 := semAdvert("urn:svc:c1", "Camera", time.Hour)
	if _, _, err := s.Publish(a2, t0); err != nil {
		t.Fatal(err)
	}
	inval0 := mQCacheInvalidations.Load()
	if got := evalMust(t, s, q, QueryOptions{}, t0); len(got) != 2 {
		t.Fatalf("after publish: got %d results, want 2", len(got))
	}
	if mQCacheInvalidations.Load() != inval0+1 {
		t.Fatal("publish did not invalidate the cached result")
	}

	// Remove must invalidate.
	if !s.Remove(a1.ID) {
		t.Fatal("remove failed")
	}
	if got := evalMust(t, s, q, QueryOptions{}, t0); len(got) != 1 {
		t.Fatal("after remove: stale cached result served")
	}

	// Lease expiry purge must invalidate.
	short := semAdvert("urn:svc:r2", "Radar", 2*time.Second)
	if _, _, err := s.Publish(short, t0); err != nil {
		t.Fatal(err)
	}
	if got := evalMust(t, s, q, QueryOptions{}, t0); len(got) != 2 {
		t.Fatal("setup: expected 2 results")
	}
	s.ExpireThrough(t0.Add(3 * time.Second))
	if got := evalMust(t, s, q, QueryOptions{}, t0.Add(3*time.Second)); len(got) != 1 {
		t.Fatal("after expiry purge: stale cached result served")
	}
}

// TestQueryCacheLeaseHorizon is the subtle exactness case: an advert's
// lease lapses but no purge sweep has run, so no shard generation
// moved. The live path filters it at collect time; a cached result must
// notice via its lease-deadline stamp and refuse to serve.
func TestQueryCacheLeaseHorizon(t *testing.T) {
	s := newStore(t)
	adv := semAdvert("urn:svc:r1", "Radar", 2*time.Second)
	if _, _, err := s.Publish(adv, t0); err != nil {
		t.Fatal(err)
	}
	q := semQuery("Radar")
	if got := evalMust(t, s, q, QueryOptions{}, t0); len(got) != 1 {
		t.Fatal("setup: expected 1 result")
	}
	// Within the lease: cached result still exact.
	if got := evalMust(t, s, q, QueryOptions{}, t0.Add(time.Second)); len(got) != 1 {
		t.Fatal("mid-lease: expected 1 result")
	}
	// Past the lease, no purge has run: must not serve the cached hit.
	if got := evalMust(t, s, q, QueryOptions{}, t0.Add(3*time.Second)); len(got) != 0 {
		t.Fatal("expired-but-unpurged advert served from cache")
	}
}

// TestQueryCacheRenewResurrection: a renew landing after the lease
// lapsed (but before the purge) brings the advert back into results, so
// it must invalidate cached (empty) results like a publish would.
func TestQueryCacheRenewResurrection(t *testing.T) {
	s := newStore(t)
	adv := semAdvert("urn:svc:r1", "Radar", 2*time.Second)
	if _, _, err := s.Publish(adv, t0); err != nil {
		t.Fatal(err)
	}
	q := semQuery("Radar")
	late := t0.Add(3 * time.Second)
	// Fill the cache with the (empty) post-expiry result.
	if got := evalMust(t, s, q, QueryOptions{}, late); len(got) != 0 {
		t.Fatal("setup: expected no results past the lease")
	}
	if _, ok := s.Renew(adv.ID, late); !ok {
		t.Fatal("renew of unpurged advert should succeed")
	}
	if got := evalMust(t, s, q, QueryOptions{}, late); len(got) != 1 {
		t.Fatal("resurrected advert missing: renew did not invalidate the cache")
	}
}

// TestQueryCacheOptionAliasing: BestOnly and MaxResults=1 have the same
// effective limit but must not share a cache entry, while MaxResults=0
// and an explicit MaxResults equal to the store default must.
func TestQueryCacheOptionAliasing(t *testing.T) {
	s := newStore(t)
	for i := 0; i < 3; i++ {
		adv := semAdvert(fmt.Sprintf("urn:svc:r%d", i), "Radar", time.Hour)
		if _, _, err := s.Publish(adv, t0); err != nil {
			t.Fatal(err)
		}
	}
	q := semQuery("Sensor")
	if got := evalMust(t, s, q, QueryOptions{MaxResults: 1}, t0); len(got) != 1 {
		t.Fatalf("MaxResults=1: got %d", len(got))
	}
	if got := evalMust(t, s, q, QueryOptions{BestOnly: true}, t0); len(got) != 1 {
		t.Fatalf("BestOnly: got %d", len(got))
	}
	if got := s.qcache.size(); got != 2 {
		t.Fatalf("BestOnly aliased MaxResults=1: cache size %d, want 2", got)
	}
	if got := evalMust(t, s, q, QueryOptions{MaxResults: 2}, t0); len(got) != 2 {
		t.Fatalf("MaxResults=2: got %d", len(got))
	}
	if got := s.qcache.size(); got != 3 {
		t.Fatalf("cache size %d, want 3", got)
	}
	// Default and explicit-default collapse to one entry.
	if got := evalMust(t, s, q, QueryOptions{}, t0); len(got) != 3 {
		t.Fatalf("default: got %d", len(got))
	}
	if got := evalMust(t, s, q, QueryOptions{MaxResults: s.DefaultMaxResults}, t0); len(got) != 3 {
		t.Fatalf("explicit default: got %d", len(got))
	}
	if got := s.qcache.size(); got != 4 {
		t.Fatalf("explicit default did not share the default entry: size %d, want 4", got)
	}
}

func TestQueryCacheNoCacheBypass(t *testing.T) {
	s := newStore(t)
	adv := semAdvert("urn:svc:r1", "Radar", time.Hour)
	if _, _, err := s.Publish(adv, t0); err != nil {
		t.Fatal(err)
	}
	q := semQuery("Radar")
	if got := evalMust(t, s, q, QueryOptions{NoCache: true}, t0); len(got) != 1 {
		t.Fatal("NoCache evaluation failed")
	}
	if got := s.qcache.size(); got != 0 {
		t.Fatalf("NoCache filled the cache: size %d", got)
	}
	// Fill normally, then NoCache must not serve the entry: prove it by
	// poisoning the resident copy (whitebox) and checking NoCache does
	// not see the poison while a cached read would.
	evalMust(t, s, q, QueryOptions{}, t0)
	s.qcache.mu.Lock()
	for _, el := range s.qcache.entries {
		el.Value.(*qentry).adverts[0].Version = 999
	}
	s.qcache.mu.Unlock()
	if got := evalMust(t, s, q, QueryOptions{NoCache: true}, t0); got[0].Version == 999 {
		t.Fatal("NoCache query served the cached entry")
	}
	if got := evalMust(t, s, q, QueryOptions{}, t0); got[0].Version != 999 {
		t.Fatal("expected the poisoned cached entry on the cached path (test invariant)")
	}
}

func TestQueryCacheDisabled(t *testing.T) {
	models := describe.NewRegistry(describe.NewSemanticModel(testOntology(t)))
	s := New(Options{Models: models, QueryCacheSize: -1})
	if s.qcache != nil {
		t.Fatal("negative QueryCacheSize should disable the cache")
	}
	adv := semAdvert("urn:svc:r1", "Radar", time.Hour)
	if _, _, err := s.Publish(adv, t0); err != nil {
		t.Fatal(err)
	}
	if got := evalMust(t, s, semQuery("Radar"), QueryOptions{}, t0); len(got) != 1 {
		t.Fatal("cache-off evaluation failed")
	}
}

// TestQueryCachePropertyRandomized is the acceptance property test:
// identical randomized interleavings of publish/remove/renew/expiry and
// queries run against a cached store and a cache-off store; every query
// must return byte-identical result sets. Mutations between identical
// queries must always surface in the next answer.
func TestQueryCachePropertyRandomized(t *testing.T) {
	mk := func(size int) *Store {
		models := describe.NewRegistry(describe.NewSemanticModel(testOntology(t)))
		return New(Options{
			Models:         models,
			QueryCacheSize: size,
			Leases:         lease.Policy{Min: time.Second, Max: time.Hour, Default: 30 * time.Second},
		})
	}
	categories := []string{"Radar", "Camera", "Sensor", "Device", "Track"}
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cached, plain := mk(32), mk(-1)
		g := uuid.NewGenerator(uint64(7000 + seed))
		now := t0
		var live []wire.Advertisement
		for step := 0; step < 500; step++ {
			now = now.Add(time.Duration(rng.Intn(500)) * time.Millisecond)
			switch op := rng.Intn(10); {
			case op < 3: // publish
				cat := categories[rng.Intn(len(categories))]
				leaseDur := time.Duration(1+rng.Intn(5)) * time.Second
				adv := semAdvert(fmt.Sprintf("urn:svc:s%d-%d", seed, step), cat, leaseDur)
				adv.ID = g.New()
				if _, _, err := cached.Publish(adv, now); err != nil {
					t.Fatal(err)
				}
				if _, _, err := plain.Publish(adv, now); err != nil {
					t.Fatal(err)
				}
				live = append(live, adv)
			case op == 3 && len(live) > 0: // remove
				i := rng.Intn(len(live))
				cached.Remove(live[i].ID)
				plain.Remove(live[i].ID)
				live = append(live[:i], live[i+1:]...)
			case op == 4 && len(live) > 0: // renew (may resurrect)
				i := rng.Intn(len(live))
				cached.Renew(live[i].ID, now)
				plain.Renew(live[i].ID, now)
			case op == 5: // purge sweep
				cached.ExpireThrough(now)
				plain.ExpireThrough(now)
			default: // query with random options
				q := semQuery(categories[rng.Intn(len(categories))])
				opts := QueryOptions{}
				switch rng.Intn(3) {
				case 1:
					opts.MaxResults = 1 + rng.Intn(4)
				case 2:
					opts.BestOnly = true
				}
				got, err := cached.Evaluate(describe.KindSemantic, q, opts, now)
				if err != nil {
					t.Fatal(err)
				}
				want, err := plain.Evaluate(describe.KindSemantic, q, opts, now)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("seed %d step %d: cached result diverged\ncached: %v\nlive:   %v",
						seed, step, got, want)
				}
			}
		}
	}
}

// TestQueryCacheSingleflightConcurrent hammers identical queries from
// many goroutines while a writer churns the store; under -race it
// proves the singleflight group and validation are sound, and every
// result must be one the store could legally have returned.
func TestQueryCacheSingleflightConcurrent(t *testing.T) {
	s := newStore(t)
	for i := 0; i < 8; i++ {
		adv := semAdvert(fmt.Sprintf("urn:svc:r%d", i), "Radar", time.Hour)
		if _, _, err := s.Publish(adv, t0); err != nil {
			t.Fatal(err)
		}
	}
	q := semQuery("Sensor")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // churn writer
		defer wg.Done()
		g := uuid.NewGenerator(4242)
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			adv := semAdvert(fmt.Sprintf("urn:svc:x%d", i), "Camera", time.Hour)
			adv.ID = g.New()
			s.Publish(adv, t0)
			s.Remove(adv.ID)
			i++
		}
	}()
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				out, err := s.Evaluate(describe.KindSemantic, q, QueryOptions{MaxResults: 10}, t0)
				if err != nil {
					t.Error(err)
					return
				}
				if len(out) < 8 || len(out) > 10 {
					t.Errorf("implausible result count %d", len(out))
					return
				}
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// TestServiceKeyRepublishRace is the regression test for the
// dropServiceKey window: Remove used to clear the service-key mapping
// after releasing the shard lock, so a re-publish racing the removal
// could have its fresh mapping deleted. With the sequence-tagged
// compare-and-delete, whenever the advert survives (republish won) its
// mapping must survive too. Run under -race.
func TestServiceKeyRepublishRace(t *testing.T) {
	s := newStore(t)
	for i := 0; i < 300; i++ {
		adv := semAdvert("urn:svc:race", "Radar", time.Hour)
		if _, _, err := s.Publish(adv, t0); err != nil {
			t.Fatal(err)
		}
		key := "urn:svc:race"
		repub := adv
		repub.Version = 2
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			s.Remove(adv.ID)
		}()
		go func() {
			defer wg.Done()
			s.Publish(repub, t0)
		}()
		wg.Wait()
		s.svcMu.Lock()
		e, mapped := s.byService[key]
		s.svcMu.Unlock()
		if s.Has(adv.ID) && (!mapped || e.id != adv.ID) {
			t.Fatalf("iteration %d: advert survived but its service-key mapping was dropped", i)
		}
		// Reset for the next round.
		s.Remove(adv.ID)
		s.svcMu.Lock()
		delete(s.byService, key)
		s.svcMu.Unlock()
	}
}
