package runtime

import (
	"fmt"
	"testing"
	"time"

	"semdisco/internal/transport"
	"semdisco/internal/transport/memnet"
	"semdisco/internal/uuid"
	"semdisco/internal/wire"
)

type recorder struct {
	envs  []*wire.Envelope
	froms []transport.Addr
}

func (r *recorder) HandleEnvelope(env *wire.Envelope, from transport.Addr) {
	r.envs = append(r.envs, env)
	r.froms = append(r.froms, from)
}

func setup(t *testing.T) (*memnet.Network, *Env, *Env, *recorder) {
	t.Helper()
	net := memnet.New(memnet.Config{Seed: 1})
	gen := uuid.NewGenerator(5)
	rec := &recorder{}
	envA := &Env{ID: gen.New(), Clock: net, Gen: gen}
	envA.Iface = net.Attach("lan0/a", "lan0", nil)
	envB := &Env{ID: gen.New(), Clock: net, Gen: gen}
	envB.Iface = net.Attach("lan0/b", "lan0", func(from transport.Addr, data []byte) {
		Dispatch(rec, envB, from, data)
	})
	return net, envA, envB, rec
}

func TestSendAndDispatch(t *testing.T) {
	net, a, _, rec := setup(t)
	if err := a.Send("lan0/b", wire.Ping{FromRegistry: true}); err != nil {
		t.Fatal(err)
	}
	net.RunFor(time.Second)
	if len(rec.envs) != 1 {
		t.Fatalf("dispatched %d envelopes", len(rec.envs))
	}
	e := rec.envs[0]
	if e.Type != wire.TPing || e.From != a.ID || e.FromAddr != "lan0/a" {
		t.Fatalf("envelope = %+v", e)
	}
	if rec.froms[0] != "lan0/a" {
		t.Fatalf("from = %s", rec.froms[0])
	}
}

func TestMulticastDispatch(t *testing.T) {
	net, a, _, rec := setup(t)
	if err := a.Multicast(wire.Probe{}); err != nil {
		t.Fatal(err)
	}
	net.RunFor(time.Second)
	if len(rec.envs) != 1 || rec.envs[0].Type != wire.TProbe {
		t.Fatalf("multicast dispatch = %+v", rec.envs)
	}
}

func TestDispatchDropsGarbage(t *testing.T) {
	net, _, b, rec := setup(t)
	raw := net.Attach("lan0/x", "lan0", nil)
	raw.Unicast("lan0/b", []byte("not a protocol message"))
	raw.Unicast("lan0/b", nil)
	net.RunFor(time.Second)
	_ = b
	if len(rec.envs) != 0 {
		t.Fatalf("garbage dispatched: %+v", rec.envs)
	}
}

func TestDispatchDropsOwnLoopback(t *testing.T) {
	net := memnet.New(memnet.Config{Seed: 2})
	gen := uuid.NewGenerator(6)
	rec := &recorder{}
	var env *Env
	env = &Env{ID: gen.New(), Clock: net, Gen: gen}
	env.Iface = net.Attach("lan0/self", "lan0", func(from transport.Addr, data []byte) {
		Dispatch(rec, env, from, data)
	})
	// Another node relays our own envelope back (e.g. a multicast
	// reflector); Dispatch must drop messages from our own ID.
	b, err := wire.Marshal(env.Envelope(wire.Probe{}))
	if err != nil {
		t.Fatal(err)
	}
	relay := net.Attach("lan0/relay", "lan0", nil)
	relay.Unicast("lan0/self", b)
	net.RunFor(time.Second)
	if len(rec.envs) != 0 {
		t.Fatal("own message dispatched back to self")
	}
}

func TestEnvelopeIdentity(t *testing.T) {
	_, a, _, _ := setup(t)
	e1 := a.Envelope(wire.Bye{})
	e2 := a.Envelope(wire.Bye{})
	if e1.MsgID == e2.MsgID {
		t.Fatal("message IDs not unique")
	}
	if e1.From != a.ID || e1.FromAddr != string(a.Addr()) || e1.Type != wire.TBye {
		t.Fatalf("envelope identity wrong: %+v", e1)
	}
}

func TestNewUUIDFallsBackToCryptoRand(t *testing.T) {
	e := &Env{}
	u := e.NewUUID()
	if u.IsNil() {
		t.Fatal("NewUUID returned Nil without a generator")
	}
}

func TestTracef(t *testing.T) {
	var lines []string
	e := &Env{Trace: func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	}}
	e.Tracef("hello %d", 42)
	if len(lines) != 1 || lines[0] != "hello 42" {
		t.Fatalf("trace = %v", lines)
	}
	e.Trace = nil
	e.Tracef("must not panic")
}

func TestSendMarshalErrorSurface(t *testing.T) {
	_, a, _, _ := setup(t)
	// A mismatched envelope cannot be produced through Send (it builds
	// the envelope itself), so Send errors only on transport failure.
	a.Iface.Close()
	if err := a.Send("lan0/b", wire.Ping{}); err == nil {
		t.Fatal("send on closed iface succeeded")
	}
}
