package rdf

import (
	"sort"
	"strings"
)

// EncodeNTriples serializes the graph as canonical N-Triples: one triple
// per line, sorted, UTF-8. The output is deterministic, so two graphs
// with the same triples encode to identical bytes — which lets tests and
// the wire layer compare graphs by their serialization.
func EncodeNTriples(g *Graph) string {
	ts := g.Triples()
	var b strings.Builder
	for _, t := range ts {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// EncodeTurtle serializes the graph as compact Turtle using the supplied
// prefix map (label → namespace IRI). Subjects are grouped with ';'
// predicate lists and ',' object lists. Deterministic output.
func EncodeTurtle(g *Graph, prefixes map[string]string) string {
	type pn struct{ label, ns string }
	ordered := make([]pn, 0, len(prefixes))
	for l, ns := range prefixes {
		ordered = append(ordered, pn{l, ns})
	}
	// Longest namespace first so the most specific prefix wins.
	sort.Slice(ordered, func(i, j int) bool {
		if len(ordered[i].ns) != len(ordered[j].ns) {
			return len(ordered[i].ns) > len(ordered[j].ns)
		}
		return ordered[i].label < ordered[j].label
	})

	abbrev := func(t Term) string {
		if t.Kind == KindIRI {
			if t.Value == RDFType {
				return "a"
			}
			for _, p := range ordered {
				if rest, ok := strings.CutPrefix(t.Value, p.ns); ok && isLocalName(rest) {
					return p.label + ":" + rest
				}
			}
		}
		if t.Kind == KindLiteral && t.Lang == "" && t.Datatype != "" && t.Datatype != XSDString {
			switch t.Datatype {
			case XSDInteger, XSDDecimal, XSDBoolean:
				return t.Value
			}
			for _, p := range ordered {
				if rest, ok := strings.CutPrefix(t.Datatype, p.ns); ok && isLocalName(rest) {
					return quoteLiteral(t.Value) + "^^" + p.label + ":" + rest
				}
			}
		}
		return t.String()
	}

	var b strings.Builder
	labels := make([]string, 0, len(prefixes))
	for l := range prefixes {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		b.WriteString("@prefix " + l + ": <" + prefixes[l] + "> .\n")
	}
	if len(labels) > 0 {
		b.WriteByte('\n')
	}

	ts := g.Triples()
	for i := 0; i < len(ts); {
		s := ts[i].S
		b.WriteString(abbrev(s))
		first := true
		for i < len(ts) && ts[i].S == s {
			p := ts[i].P
			if first {
				b.WriteByte(' ')
				first = false
			} else {
				b.WriteString(" ;\n\t")
			}
			b.WriteString(abbrev(p))
			firstObj := true
			for i < len(ts) && ts[i].S == s && ts[i].P == p {
				if firstObj {
					b.WriteByte(' ')
					firstObj = false
				} else {
					b.WriteString(", ")
				}
				b.WriteString(abbrev(ts[i].O))
				i++
			}
		}
		b.WriteString(" .\n")
	}
	return b.String()
}

// isLocalName reports whether s is usable as the local part of a Turtle
// prefixed name in our subset (no slashes, hashes, or empty names).
func isLocalName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isNameChar(s[i]) {
			return false
		}
	}
	return !strings.HasPrefix(s, ".") && !strings.HasSuffix(s, ".")
}
