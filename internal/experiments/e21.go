package experiments

import (
	"fmt"
	"time"

	"semdisco/internal/describe"
	"semdisco/internal/federation"
	"semdisco/internal/metrics"
	"semdisco/internal/sim"
	"semdisco/internal/transport"
	"semdisco/internal/transport/memnet"
	"semdisco/internal/wire"
)

// E21Batching measures datagram coalescing on a renew-heavy LAN: a few
// service nodes each hosting many leased descriptions, so every renewal
// tick hands the transport a burst of small messages for the same
// registry. Swept over the batch-size cap (1 effectively disables
// coalescing — every message flushes alone), it reports how many
// datagrams the same maintenance traffic needs and how many messages
// share each one. Bytes barely move (the envelopes themselves dominate);
// the win is per-datagram cost — events on the simulator, syscalls on
// udpnet.
func E21Batching(batchSizes []int, seed int64) *metrics.Table {
	t := metrics.NewTable("E21 datagram coalescing (renew-heavy LAN)",
		"batch", "msgs", "datagrams", "msgs/dgram", "KB", "dgram reduction")
	var baseline float64
	for _, bs := range batchSizes {
		msgs, dgrams, kb := runE21Batching(bs, seed)
		perDgram := float64(msgs) / float64(dgrams)
		label := fmt.Sprintf("%d", bs)
		if bs <= 1 {
			label = "off"
			baseline = float64(dgrams)
		}
		red := 0.0
		if baseline > 0 {
			red = baseline / float64(dgrams)
		}
		t.AddRow(label, msgs, dgrams, perDgram, kb, red)
	}
	t.AddNote("4 services × 24 descriptions, 2s leases, 30s steady window; " +
		"msgs counts delivered protocol messages (batch frames are unpacked by the accounting), " +
		"datagrams counts deliveries; reduction is vs the batch-off row")
	return t
}

func runE21Batching(batchSize int, seed int64) (msgs, dgrams uint64, kb float64) {
	cfg := sim.Config{Seed: seed, Net: memnet.Config{Jitter: time.Millisecond}}
	if batchSize > 1 {
		cfg.Batching = true
		cfg.Batch = transport.BatcherConfig{MaxMessages: batchSize}
	}
	w := sim.NewWorld(cfg)
	w.AddRegistry("lan0", "r0", fastRegistry())
	const services, descsPer = 4, 24
	for i := 0; i < services; i++ {
		descs := make([]describe.Description, descsPer)
		for j := range descs {
			descs[j] = w.SemanticProfile(fmt.Sprintf("urn:svc:%d-%d", i, j), categoryFor(j))
		}
		w.AddService("lan0", fmt.Sprintf("s%d", i),
			fastService(2*time.Second), descs...)
	}
	w.Run(5 * time.Second) // bootstrap + publish storm settles
	w.Net.ResetStats()
	w.Run(30 * time.Second)
	s := w.Net.Stats()
	var bytes uint64
	for _, cat := range s.DeliveredByCategory {
		msgs += cat.Messages
		bytes += cat.Bytes
	}
	return msgs, s.MessagesDelivered, float64(bytes) / 1024
}

// E21Deltas measures the incremental registry-summary protocol across a
// two-domain WAN: each registry holds n adverts with distinct summary
// tokens, and the steady-state gossip window is measured with the
// whole-summary ablation (FullSummaries) versus the delta protocol. A
// trickle of fresh publishes keeps the delta path honest — it must ship
// the change, not just skip fully-acked peers. The reduction column is
// the headline: WAN summary bytes saved at 10^2..10^4 adverts/domain.
func E21Deltas(advertCounts []int, seed int64) *metrics.Table {
	t := metrics.NewTable("E21 incremental summaries (delta vs full, 2 domains)",
		"adverts/domain", "fullKB", "deltaKB", "reduction")
	for _, n := range advertCounts {
		fullKB := runE21Deltas(n, true, seed)
		deltaKB := runE21Deltas(n, false, seed)
		red := 0.0
		if deltaKB > 0 {
			red = fullKB / deltaKB
		}
		t.AddRow(n, fullKB, deltaKB, red)
	}
	t.AddNote("maintenance bytes delivered over a 30s window, 2s summary interval, " +
		"one fresh publish per domain at +10s and +20s; both modes pay the same " +
		"beacon/ping baseline, so the reduction understates the summary-only saving")
	return t
}

func runE21Deltas(n int, full bool, seed int64) float64 {
	w := sim.NewWorld(sim.Config{Seed: seed, Net: memnet.Config{Jitter: time.Millisecond}})
	regCfg := func(seeds ...wire.PeerInfo) federation.Config {
		cfg := fastRegistry()
		cfg.SummaryPruning = true
		cfg.SummaryInterval = 2 * time.Second
		cfg.FullSummaries = full
		cfg.Seeds = seeds
		return cfg
	}
	r0 := w.AddRegistry("lan0", "r0", regCfg())
	r1 := w.AddRegistry("lan1", "r1", regCfg(r0.PeerInfo()))
	now := w.Net.Now()
	for i, h := range []*sim.RegistryHandle{r0, r1} {
		for j := 0; j < n; j++ {
			if _, _, err := h.Reg.Store().Publish(e21Advert(w, i, j), now); err != nil {
				panic(err)
			}
		}
	}
	w.Run(10 * time.Second) // peering + initial summary exchange
	w.Net.ResetStats()
	churn := n
	for tick := 0; tick < 3; tick++ {
		w.Run(10 * time.Second)
		if tick == 2 {
			break
		}
		now := w.Net.Now()
		for i, h := range []*sim.RegistryHandle{r0, r1} {
			if _, _, err := h.Reg.Store().Publish(e21Advert(w, i, churn), now); err != nil {
				panic(err)
			}
		}
		churn++
	}
	s := w.Net.Stats()
	return float64(s.DeliveredByCategory[wire.CatMaintenance].Bytes) / 1024
}

// e21Advert builds a URI-model advert with a per-advert type token, so
// every advert contributes a distinct summary token — the worst case
// for whole-summary gossip and the regime the delta protocol targets.
func e21Advert(w *sim.World, domain, j int) wire.Advertisement {
	d := &describe.URIDescription{
		TypeURI:    fmt.Sprintf("urn:e21:d%d:type:%d", domain, j),
		ServiceURI: fmt.Sprintf("urn:e21:d%d:svc:%d", domain, j),
		Name:       "svc",
		Addr:       fmt.Sprintf("lan%d/p", domain),
	}
	return wire.Advertisement{
		ID: w.Gen.New(), Provider: w.Gen.New(), ProviderAddr: d.Addr,
		Kind: describe.KindURI, Payload: d.Encode(),
		LeaseMillis: uint64(time.Hour / time.Millisecond), Version: 1,
	}
}
