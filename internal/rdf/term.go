// Package rdf implements the semantic-web substrate the paper assumes:
// an in-memory RDF triple store with a Turtle-subset parser, N-Triples
// serialization, basic-graph-pattern queries, and RDFS forward-chaining
// inference (subClassOf/subPropertyOf transitivity, type propagation,
// domain/range entailment).
//
// The ICDEW'06 architecture describes services with "semantic service
// descriptions" grounded in shared ontologies and requires registries to
// host ontologies as artifacts when disconnected from the web (§4.6).
// Since no RDF/OWL library may be imported, this package provides the
// subset of RDF/RDFS semantics that semantic service matchmaking needs.
package rdf

import (
	"fmt"
	"strconv"
	"strings"
)

// TermKind discriminates the three RDF term kinds.
type TermKind uint8

const (
	// KindIRI is an absolute or prefixed IRI reference.
	KindIRI TermKind = iota
	// KindBlank is a blank (anonymous) node, scoped to one graph.
	KindBlank
	// KindLiteral is a literal with optional datatype or language tag.
	KindLiteral
)

// Term is one RDF term. The zero Term is invalid. Terms are small value
// types: comparable, usable as map keys, and cheap to copy.
type Term struct {
	Kind TermKind
	// Value is the IRI, the blank node label (without "_:"), or the
	// literal lexical form.
	Value string
	// Datatype is the literal datatype IRI ("" means xsd:string), and
	// Lang the language tag; both are empty for IRIs and blank nodes.
	Datatype string
	Lang     string
}

// Well-known vocabulary IRIs used by the inference rules and by the
// ontology layer built on top of this package.
const (
	RDFType        = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
	RDFProperty    = "http://www.w3.org/1999/02/22-rdf-syntax-ns#Property"
	RDFFirst       = "http://www.w3.org/1999/02/22-rdf-syntax-ns#first"
	RDFRest        = "http://www.w3.org/1999/02/22-rdf-syntax-ns#rest"
	RDFNil         = "http://www.w3.org/1999/02/22-rdf-syntax-ns#nil"
	RDFSSubClassOf = "http://www.w3.org/2000/01/rdf-schema#subClassOf"
	RDFSSubPropOf  = "http://www.w3.org/2000/01/rdf-schema#subPropertyOf"
	RDFSDomain     = "http://www.w3.org/2000/01/rdf-schema#domain"
	RDFSRange      = "http://www.w3.org/2000/01/rdf-schema#range"
	RDFSClass      = "http://www.w3.org/2000/01/rdf-schema#Class"
	RDFSLabel      = "http://www.w3.org/2000/01/rdf-schema#label"
	RDFSComment    = "http://www.w3.org/2000/01/rdf-schema#comment"
	OWLClass       = "http://www.w3.org/2002/07/owl#Class"
	OWLEquivClass  = "http://www.w3.org/2002/07/owl#equivalentClass"
	OWLThing       = "http://www.w3.org/2002/07/owl#Thing"
	XSDString      = "http://www.w3.org/2001/XMLSchema#string"
	XSDInteger     = "http://www.w3.org/2001/XMLSchema#integer"
	XSDDecimal     = "http://www.w3.org/2001/XMLSchema#decimal"
	XSDBoolean     = "http://www.w3.org/2001/XMLSchema#boolean"
	XSDDouble      = "http://www.w3.org/2001/XMLSchema#double"
)

// IRI returns an IRI term.
func IRI(iri string) Term { return Term{Kind: KindIRI, Value: iri} }

// Blank returns a blank-node term with the given label (no "_:" prefix).
func Blank(label string) Term { return Term{Kind: KindBlank, Value: label} }

// Literal returns a plain string literal.
func Literal(lexical string) Term { return Term{Kind: KindLiteral, Value: lexical} }

// TypedLiteral returns a literal with an explicit datatype IRI.
func TypedLiteral(lexical, datatype string) Term {
	return Term{Kind: KindLiteral, Value: lexical, Datatype: datatype}
}

// LangLiteral returns a language-tagged string literal.
func LangLiteral(lexical, lang string) Term {
	return Term{Kind: KindLiteral, Value: lexical, Lang: lang}
}

// IntLiteral returns an xsd:integer literal.
func IntLiteral(v int64) Term {
	return TypedLiteral(strconv.FormatInt(v, 10), XSDInteger)
}

// FloatLiteral returns an xsd:double literal.
func FloatLiteral(v float64) Term {
	return TypedLiteral(strconv.FormatFloat(v, 'g', -1, 64), XSDDouble)
}

// BoolLiteral returns an xsd:boolean literal.
func BoolLiteral(v bool) Term {
	return TypedLiteral(strconv.FormatBool(v), XSDBoolean)
}

// IsIRI reports whether the term is an IRI.
func (t Term) IsIRI() bool { return t.Kind == KindIRI }

// IsBlank reports whether the term is a blank node.
func (t Term) IsBlank() bool { return t.Kind == KindBlank }

// IsLiteral reports whether the term is a literal.
func (t Term) IsLiteral() bool { return t.Kind == KindLiteral }

// Int parses the literal as an integer; ok is false for non-literals and
// unparseable lexical forms.
func (t Term) Int() (v int64, ok bool) {
	if !t.IsLiteral() {
		return 0, false
	}
	v, err := strconv.ParseInt(t.Value, 10, 64)
	return v, err == nil
}

// Float parses the literal as a float64.
func (t Term) Float() (v float64, ok bool) {
	if !t.IsLiteral() {
		return 0, false
	}
	v, err := strconv.ParseFloat(t.Value, 64)
	return v, err == nil
}

// String renders the term in N-Triples syntax.
func (t Term) String() string {
	switch t.Kind {
	case KindIRI:
		return "<" + t.Value + ">"
	case KindBlank:
		return "_:" + t.Value
	case KindLiteral:
		s := quoteLiteral(t.Value)
		if t.Lang != "" {
			return s + "@" + t.Lang
		}
		if t.Datatype != "" && t.Datatype != XSDString {
			return s + "^^<" + t.Datatype + ">"
		}
		return s
	default:
		return fmt.Sprintf("!invalid-term(%d)", t.Kind)
	}
}

func quoteLiteral(s string) string {
	var b strings.Builder
	b.Grow(len(s) + 2)
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// Triple is one RDF statement. Subject must be an IRI or blank node,
// Predicate an IRI, Object any term; Graph.Add enforces this.
type Triple struct {
	S, P, O Term
}

// String renders the triple as one N-Triples line (without newline).
func (t Triple) String() string {
	return t.S.String() + " " + t.P.String() + " " + t.O.String() + " ."
}

// Valid reports whether the triple satisfies RDF's positional constraints.
func (t Triple) Valid() bool {
	return (t.S.IsIRI() || t.S.IsBlank()) && t.P.IsIRI() &&
		(t.O.IsIRI() || t.O.IsBlank() || t.O.IsLiteral())
}
