package metrics

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tab := NewTable("E1 bandwidth", "topology", "nodes", "bytes")
	tab.AddRow("centralized", 20, 12345.678)
	tab.AddRow("decentralized", 20, 99999)
	tab.AddNote("loss=%.1f", 0.0)
	s := tab.String()
	if !strings.Contains(s, "== E1 bandwidth ==") {
		t.Fatal("missing title")
	}
	if !strings.Contains(s, "12345.678") {
		t.Fatal("float not rendered")
	}
	if !strings.Contains(s, "note: loss=0.0") {
		t.Fatal("note missing")
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	// Title + header + separator + 2 rows + note.
	if len(lines) != 6 {
		t.Fatalf("rendered %d lines:\n%s", len(lines), s)
	}
	// Columns align: "topology" column padded to the widest cell.
	if !strings.HasPrefix(lines[3], "centralized  ") {
		t.Fatalf("alignment broken: %q", lines[3])
	}
	if tab.NumRows() != 2 || tab.Row(1)[0] != "decentralized" {
		t.Fatal("row accessors broken")
	}
}

func TestRatioAndKB(t *testing.T) {
	if Ratio(10, 4) != "2.50×" {
		t.Fatalf("Ratio = %s", Ratio(10, 4))
	}
	if Ratio(1, 0) != "∞" {
		t.Fatal("Ratio zero-divide guard failed")
	}
	if KB(2048) != "2.0kB" {
		t.Fatalf("KB = %s", KB(2048))
	}
}

func TestCSV(t *testing.T) {
	tab := NewTable("t", "a", "b")
	tab.AddRow("plain", 1)
	tab.AddRow(`quote"inside`, "with,comma")
	tab.AddNote("notes are omitted")
	got := tab.CSV()
	want := "a,b\nplain,1\n\"quote\"\"inside\",\"with,comma\"\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}
