package wire

import (
	"fmt"
	"reflect"
	"testing"

	"semdisco/internal/describe"
)

// derefDecoded converts a Decoder's pointer body back to its value form
// so results compare against the value-based Unmarshal path.
func derefDecoded(t *testing.T, b Body) Body {
	t.Helper()
	v := reflect.ValueOf(b)
	if v.Kind() != reflect.Pointer {
		t.Fatalf("decoder returned non-pointer body %T", b)
	}
	return v.Elem().Interface().(Body)
}

// TestDecoderMatchesUnmarshal proves the zero-alloc decode path is
// bit-equivalent to the allocating reference path for every message
// type, including decoder reuse across consecutive envelopes.
func TestDecoderMatchesUnmarshal(t *testing.T) {
	d := NewDecoder()
	// Two passes: the second exercises fully warmed reused storage.
	for pass := 0; pass < 2; pass++ {
		for _, body := range allBodies() {
			e := NewEnvelope(gen.New(), "lan0:n1", body, gen)
			raw, err := Marshal(e)
			if err != nil {
				t.Fatalf("%T: marshal: %v", body, err)
			}
			want, err := Unmarshal(raw)
			if err != nil {
				t.Fatalf("%T: unmarshal: %v", body, err)
			}
			got, err := d.Decode(raw)
			if err != nil {
				t.Fatalf("%T: decode: %v", body, err)
			}
			gv := *got
			gv.Body = derefDecoded(t, got.Body)
			if !reflect.DeepEqual(&gv, want) {
				t.Fatalf("%T decode mismatch (pass %d):\n got %#v\nwant %#v", body, pass, gv, want)
			}
		}
	}
}

// TestDecoderRejectsBadInput mirrors the Unmarshal rejection cases plus
// the batch-frame guard.
func TestDecoderRejectsBadInput(t *testing.T) {
	d := NewDecoder()
	e := NewEnvelope(gen.New(), "lan0:n1", Renew{AdvertID: gen.New()}, gen)
	raw, err := Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(raw); i++ {
		if _, err := d.Decode(raw[:i]); err == nil {
			t.Fatalf("truncated frame of %d bytes accepted", i)
		}
	}
	bad := append([]byte{}, raw...)
	bad[0] ^= 0xFF
	if _, err := d.Decode(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	batch := EncodeBatch([][]byte{raw})
	if _, err := d.Decode(batch); err == nil {
		t.Fatal("batch frame accepted by Decode")
	}
	// The decoder must stay usable after errors.
	if _, err := d.Decode(raw); err != nil {
		t.Fatalf("decode after errors: %v", err)
	}
}

// TestDecodeAllocs is the decode-path allocation budget: steady-state
// decode of the hot receive types (query, advert-bearing results,
// summaries, renews and deltas) must not allocate at all. This is the
// receive-side mirror of TestMarshalAllocs.
func TestDecodeAllocs(t *testing.T) {
	frames := map[string][]byte{}
	for name, body := range map[string]Body{
		"query": Query{
			QueryID: gen.New(), Kind: describe.KindSemantic, Payload: []byte{9, 9, 9, 9},
			MaxResults: 10, TTL: 4, ReplyAddr: "lan0:c1",
		},
		"advert":  QueryResult{QueryID: gen.New(), Adverts: []Advertisement{sampleAdvert(), sampleAdvert()}, Complete: true},
		"publish": Publish{Advert: sampleAdvert()},
		"summary": Summary{Entries: []SummaryEntry{
			{Kind: describe.KindURI, Tokens: []string{"urn:t1", "urn:t2"}},
			{Kind: describe.KindSemantic, Tokens: []string{"http://x#Radar"}},
		}},
		"renew": Renew{AdvertID: gen.New()},
		"delta": SummaryDelta{Version: 4, Base: 3, Entries: []SummaryDeltaEntry{
			{Kind: describe.KindSemantic, Add: []string{"http://x#Radar"}, Remove: []string{"http://x#Sonar"}},
		}},
	} {
		raw, err := Marshal(NewEnvelope(gen.New(), "lan0:n1", body, gen))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		frames[name] = raw
	}
	d := NewDecoder()
	for name, raw := range frames {
		// Warm the intern table and slice pools.
		if _, err := d.Decode(raw); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		allocs := testing.AllocsPerRun(200, func() {
			if _, err := d.Decode(raw); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s decode: %.1f allocs/op, want 0", name, allocs)
		}
	}
}

// TestDecoderInternBound proves a flood of unique strings cannot grow
// the intern table without bound.
func TestDecoderInternBound(t *testing.T) {
	d := NewDecoder()
	for i := 0; i < 3*maxInternStrings; i++ {
		e := NewEnvelope(gen.New(), fmt.Sprintf("lan0:n%d", i), ArtifactGet{IRI: fmt.Sprintf("urn:x%d", i)}, gen)
		raw, err := Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.Decode(raw); err != nil {
			t.Fatal(err)
		}
	}
	if len(d.strs) > maxInternStrings {
		t.Fatalf("intern table grew to %d entries (cap %d)", len(d.strs), maxInternStrings)
	}
}

// TestBatchRoundTrip checks frame coalescing: every inner envelope comes
// back in order and decodes, and classification helpers agree.
func TestBatchRoundTrip(t *testing.T) {
	var frames [][]byte
	var want []MsgType
	for _, body := range allBodies() {
		raw, err := Marshal(NewEnvelope(gen.New(), "lan0:n1", body, gen))
		if err != nil {
			t.Fatal(err)
		}
		ft, ok := FrameType(raw)
		if !ok {
			t.Fatalf("%T: FrameType rejected a marshaled frame", body)
		}
		frames = append(frames, raw)
		want = append(want, ft)
	}
	batch := EncodeBatch(frames)
	if !IsBatchFrame(batch) {
		t.Fatal("EncodeBatch output not recognized as batch frame")
	}
	if _, ok := FrameType(batch); ok {
		t.Fatal("FrameType accepted a batch frame")
	}
	if got := BatchCount(batch); got != len(frames) {
		t.Fatalf("BatchCount = %d, want %d", got, len(frames))
	}
	d := NewDecoder()
	i := 0
	err := ForEachInBatch(batch, func(msg []byte) error {
		e, err := d.Decode(msg)
		if err != nil {
			return err
		}
		if e.Type != want[i] {
			return fmt.Errorf("frame %d: type %v, want %v", i, e.Type, want[i])
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != len(frames) {
		t.Fatalf("visited %d frames, want %d", i, len(frames))
	}
}

// TestBatchRejectsMalformed: truncations, trailing garbage and absurd
// counts must error, never panic or deliver partial corruption.
func TestBatchRejectsMalformed(t *testing.T) {
	raw, err := Marshal(NewEnvelope(gen.New(), "lan0:n1", Renew{AdvertID: gen.New()}, gen))
	if err != nil {
		t.Fatal(err)
	}
	batch := EncodeBatch([][]byte{raw, raw})
	nop := func([]byte) error { return nil }
	for i := 0; i < len(batch); i++ {
		if i >= batchHeaderLen {
			if err := ForEachInBatch(batch[:i], nop); err == nil {
				t.Fatalf("truncated batch of %d bytes accepted", i)
			}
		}
	}
	if err := ForEachInBatch(append(append([]byte{}, batch...), 0xEE), nop); err == nil {
		t.Fatal("trailing garbage accepted")
	}
	if err := ForEachInBatch(raw, nop); err == nil {
		t.Fatal("single-envelope frame accepted as batch")
	}
	huge := []byte{magic0, magic1, wireVersion, batchFrameType, 0xFF, 0xFF, 0x7F}
	if err := ForEachInBatch(huge, nop); err == nil {
		t.Fatal("absurd batch count accepted")
	}
	if BatchCount(huge) != 0 {
		t.Fatal("BatchCount accepted absurd count")
	}
}

// TestBatchOverhead pins the frame-size arithmetic batchers rely on for
// flush-on-size decisions.
func TestBatchOverhead(t *testing.T) {
	raw, err := Marshal(NewEnvelope(gen.New(), "lan0:n1", Renew{AdvertID: gen.New()}, gen))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 16, 200} {
		frames := make([][]byte, n)
		lens := make([]int, n)
		total := 0
		for i := range frames {
			frames[i] = raw
			lens[i] = len(raw)
			total += len(raw)
		}
		batch := EncodeBatch(frames)
		if got, want := len(batch), total+BatchOverhead(n, lens); got != want {
			t.Fatalf("n=%d: len=%d, BatchOverhead predicts %d", n, got, want)
		}
	}
}
