package federation

import (
	"testing"
	"time"

	"semdisco/internal/describe"
	"semdisco/internal/wire"
)

// deltaCfg turns on fast summary gossip for the delta tests.
func deltaCfg(extra ...func(*Config)) Config {
	cfg := Config{SummaryPruning: true, SummaryInterval: 200 * time.Millisecond}
	for _, f := range extra {
		f(&cfg)
	}
	return cfg
}

// peerView returns what reg currently believes about other's summary.
func peerView(reg *Registry, other *Registry) map[describe.Kind]map[string]bool {
	if p, ok := reg.peers[other.ID()]; ok {
		return p.summary
	}
	return nil
}

// TestDeltaSummaryConverges: adds and removals propagate through
// incremental deltas, and steady state sends no summaries at all.
func TestDeltaSummaryConverges(t *testing.T) {
	h := newHarness(t)
	// A huge SummaryFullEvery keeps the periodic refresh out of the
	// window so every observed send is attributable.
	noFull := func(c *Config) { c.SummaryFullEvery = 1 << 20 }
	r1 := h.addRegistry("lan0", "r1", deltaCfg(noFull))
	r2 := h.addRegistry("lan1", "r2", deltaCfg(noFull, func(c *Config) {
		c.Seeds = []wire.PeerInfo{peerInfo(r1)}
	}))
	h.net.RunFor(time.Second)

	tc := h.addClient("lan1", "c")
	adv := h.semAdvert("urn:svc:cam", "Camera", time.Minute)
	h.publish(tc, r2, adv)
	h.net.RunFor(time.Second)

	view := peerView(r1, r2)
	if view == nil || !view[describe.KindSemantic][string(c("Camera"))] {
		t.Fatalf("r1's view of r2 missing Camera token: %v", view)
	}

	// Steady state: no change → fully acked peers get nothing.
	skippedBefore := fDeltaSkipped.Load()
	h.net.RunFor(2 * time.Second)
	if fDeltaSkipped.Load() == skippedBefore {
		t.Fatal("no summary ticks were skipped in steady state")
	}

	// Removal travels as a tombstone delta, not a full resync.
	fullBefore := fDeltaFullSent.Load()
	r2.Store().Remove(adv.ID)
	h.net.RunFor(time.Second)
	view = peerView(r1, r2)
	if view[describe.KindSemantic][string(c("Camera"))] {
		t.Fatalf("Camera token not removed from r1's view: %v", view)
	}
	if got := fDeltaFullSent.Load() - fullBefore; got != 0 {
		t.Fatalf("removal caused %d full resyncs, want incremental delta", got)
	}
}

// TestDeltaSummaryPrunes: the delta-built peer summary drives forward
// pruning exactly like a whole-summary one.
func TestDeltaSummaryPrunes(t *testing.T) {
	h := newHarness(t)
	r1 := h.addRegistry("lan0", "r1", deltaCfg())
	r2 := h.addRegistry("lan1", "r2", deltaCfg(func(c *Config) {
		c.Seeds = []wire.PeerInfo{peerInfo(r1)}
	}))
	h.net.RunFor(time.Second)
	tcB := h.addClient("lan1", "c2")
	h.publish(tcB, r2, h.semAdvert("urn:svc:cam", "Camera", time.Minute))
	h.net.RunFor(time.Second)

	tc := h.addClient("lan0", "c1")
	before := r2.Stats().QueriesReceived
	h.query(tc, r1, "Radar", 2)
	h.net.RunFor(2 * time.Second)
	if got := r2.Stats().QueriesReceived; got != before {
		t.Fatalf("r2 received %d queries despite delta summary proving no match", got-before)
	}
	if r1.Stats().ForwardsPruned == 0 {
		t.Fatal("pruning not accounted")
	}
}

// TestDeltaResyncAfterLoss: when every delta in flight is lost for
// longer than the history covers — simulated by a receiver restart
// (fresh peer state) — the Resync escape hatch recovers via a full
// summary instead of deadlocking on mismatched bases.
func TestDeltaResyncAfterLoss(t *testing.T) {
	h := newHarness(t)
	r1 := h.addRegistry("lan0", "r1", deltaCfg())
	r2 := h.addRegistry("lan1", "r2", deltaCfg(func(c *Config) {
		c.Seeds = []wire.PeerInfo{peerInfo(r1)}
	}))
	h.net.RunFor(time.Second)
	tc := h.addClient("lan1", "c")
	h.publish(tc, r2, h.semAdvert("urn:svc:cam", "Camera", time.Minute))
	h.net.RunFor(time.Second)

	// Simulate r1 losing its applied state (as a restart would): the
	// next delta's base cannot match, forcing a Resync request.
	p := r1.peers[r2.ID()]
	p.summary = nil
	p.gotVersion = 0
	h.publish(tc, r2, h.semAdvert("urn:svc:radar", "Radar", time.Minute))
	h.net.RunFor(3 * time.Second)

	view := peerView(r1, r2)
	if !view[describe.KindSemantic][string(c("Camera"))] || !view[describe.KindSemantic][string(c("Radar"))] {
		t.Fatalf("full resync did not restore r1's view: %v", view)
	}
	if fDeltaResyncs.Load() == 0 {
		t.Fatal("no resync was requested")
	}
}

// TestDeltaAckMonotonic is the out-of-order ack regression test: a
// late-arriving ack for an older version must never regress the
// sender's per-peer acked version (which would re-base future deltas
// on state the peer has already advanced past).
func TestDeltaAckMonotonic(t *testing.T) {
	h := newHarness(t)
	r1 := h.addRegistry("lan0", "r1", deltaCfg())
	r2 := h.addRegistry("lan0", "r2", deltaCfg())
	h.net.RunFor(time.Second)

	p := r1.peers[r2.ID()]
	if p == nil {
		t.Fatal("registries did not peer")
	}
	r1.handleSummaryAck(r2.ID(), &wire.SummaryAck{Version: 7})
	r1.handleSummaryAck(r2.ID(), &wire.SummaryAck{Version: 5}) // late datagram
	if p.ackedVersion != 7 {
		t.Fatalf("ackedVersion = %d after out-of-order ack, want 7", p.ackedVersion)
	}
	// A resync request rides any version without regressing it either.
	r1.handleSummaryAck(r2.ID(), &wire.SummaryAck{Version: 3, Resync: true})
	if p.ackedVersion != 7 || !p.needFull {
		t.Fatalf("ackedVersion = %d needFull = %v, want 7/true", p.ackedVersion, p.needFull)
	}
	// The one sanctioned regression: an ack naming the exact version of
	// the last full resync re-anchors after a sender restart.
	p.lastFullVersion = 2
	r1.handleSummaryAck(r2.ID(), &wire.SummaryAck{Version: 2})
	if p.ackedVersion != 2 {
		t.Fatalf("ackedVersion = %d after full-resync ack, want 2", p.ackedVersion)
	}
	// ...and it is one-shot: once the peer has acked at or past the full,
	// a delayed duplicate of that same ack must not re-anchor backwards
	// (that would trigger a needless delta/stale/resync cycle).
	r1.handleSummaryAck(r2.ID(), &wire.SummaryAck{Version: 4})
	if p.ackedVersion != 4 {
		t.Fatalf("ackedVersion = %d after post-resync ack, want 4", p.ackedVersion)
	}
	r1.handleSummaryAck(r2.ID(), &wire.SummaryAck{Version: 2}) // duplicate of the resync ack
	if p.ackedVersion != 4 {
		t.Fatalf("ackedVersion = %d after duplicate full-resync ack, want 4", p.ackedVersion)
	}
}

// TestDeltaMergeNetsOut: a token added and removed between two acks
// merges away; one surviving the window merges to a single add.
func TestDeltaMergeNetsOut(t *testing.T) {
	var d deltaSummaryState
	snap := func(tokens ...string) []wire.SummaryEntry {
		return []wire.SummaryEntry{{Kind: describe.KindSemantic, Tokens: tokens}}
	}
	d.advance(snap("a"))      // v1: +a
	d.advance(snap("a", "b")) // v2: +b
	d.advance(snap("a"))      // v3: -b
	d.advance(snap("a", "c")) // v4: +c
	if d.version != 4 {
		t.Fatalf("version = %d, want 4", d.version)
	}
	merged := d.since(1)
	if len(merged) != 1 {
		t.Fatalf("merged entries = %+v", merged)
	}
	e := merged[0]
	if len(e.Add) != 1 || e.Add[0] != "c" || len(e.Remove) != 1 || e.Remove[0] != "b" {
		t.Fatalf("merged delta = +%v -%v, want +[c] -[b]", e.Add, e.Remove)
	}
	if !d.covers(1) || d.covers(4) || d.covers(9) {
		t.Fatal("history coverage wrong")
	}
}

// TestSummaryIdlePeerNoPeriodicFull is the skipped-tick regression
// test: a fully-acked peer with nothing changing must receive zero
// summary bytes indefinitely — the skip path must not advance the
// periodic-full counter, or every SummaryFullEvery idle ticks would
// burn a pointless full resync (exactly the WAN bytes the delta
// protocol exists to save).
func TestSummaryIdlePeerNoPeriodicFull(t *testing.T) {
	h := newHarness(t)
	// A tiny SummaryFullEvery makes the bug fire within a short idle
	// window: 2 s of 200 ms ticks crosses the every-4 boundary twice.
	small := func(c *Config) { c.SummaryFullEvery = 4 }
	r1 := h.addRegistry("lan0", "r1", deltaCfg(small))
	r2 := h.addRegistry("lan1", "r2", deltaCfg(small, func(c *Config) {
		c.Seeds = []wire.PeerInfo{peerInfo(r1)}
	}))
	h.net.RunFor(time.Second)
	tc := h.addClient("lan1", "c")
	h.publish(tc, r2, h.semAdvert("urn:svc:cam", "Camera", time.Minute))
	h.net.RunFor(time.Second) // r1 applies and acks; steady state

	if p := r1.peers[r2.ID()]; p == nil || peerView(r1, r2) == nil {
		t.Fatal("summary never converged")
	}
	sentBefore := fSummariesSent.Load()
	fullBefore := fDeltaFullSent.Load()
	skippedBefore := fDeltaSkipped.Load()
	h.net.RunFor(2 * time.Second) // 10 idle ticks > 2×SummaryFullEvery
	if got := fSummariesSent.Load() - sentBefore; got != 0 {
		t.Fatalf("idle current peer was sent %d summaries (%d full), want 0",
			got, fDeltaFullSent.Load()-fullBefore)
	}
	if fDeltaSkipped.Load() == skippedBefore {
		t.Fatal("no ticks were skipped — peer never reached steady state")
	}
}

// TestSummaryResyncOnPeerReAdd is the eviction/re-add regression test:
// a peer dropped from the table and re-learned moments later gets a
// fresh peer struct with no summary state, so the next exchange must
// be a full resync in both directions — the re-added peer must not be
// delta'd from a phantom acked version (an ack from its previous
// incarnation still in flight), nor apply deltas against a stale base.
func TestSummaryResyncOnPeerReAdd(t *testing.T) {
	h := newHarness(t)
	r1 := h.addRegistry("lan0", "r1", deltaCfg())
	r2 := h.addRegistry("lan1", "r2", deltaCfg(func(c *Config) {
		c.Seeds = []wire.PeerInfo{peerInfo(r1)}
	}))
	h.net.RunFor(time.Second)
	tc := h.addClient("lan1", "c")
	h.publish(tc, r2, h.semAdvert("urn:svc:cam", "Camera", time.Minute))
	h.net.RunFor(time.Second)
	if p := r2.peers[r1.ID()]; p == nil || p.ackedVersion == 0 {
		t.Fatal("setup: r1 never acked r2's summary")
	}

	// r2 evicts r1 (table pressure), then re-learns it via signaling.
	r2.evictOldestPeer()
	for range r2.peers {
		t.Fatal("eviction left peers behind in a 1-peer table")
	}
	p := r2.addPeer(peerInfo(r1), false)
	if !p.needFull {
		t.Fatal("re-added peer not marked for a full resync")
	}
	// A phantom ack from r1's previous incarnation lands after re-add.
	// It may move the acked version, but must not cancel the forced
	// full: the fresh struct has no record of what r1 actually holds.
	r2.handleSummaryAck(r1.ID(), &wire.SummaryAck{Version: 7})
	fullBefore := fDeltaFullSent.Load()
	deltaBefore := fDeltaSent.Load()
	r2.sendSummaryTo(p)
	if fDeltaFullSent.Load() != fullBefore+1 || fDeltaSent.Load() != deltaBefore {
		t.Fatal("re-added peer was delta'd from a phantom acked version, want full resync")
	}

	// End to end: the re-added peer's view reconverges through the full.
	h.publish(tc, r2, h.semAdvert("urn:svc:radar", "Radar", time.Minute))
	h.net.RunFor(3 * time.Second)
	view := peerView(r1, r2)
	if !view[describe.KindSemantic][string(c("Camera"))] || !view[describe.KindSemantic][string(c("Radar"))] {
		t.Fatalf("view after re-add did not reconverge: %v", view)
	}
}

// TestDeltaAckFromFuture pins the ack-from-the-future invariant: when a
// peer's acked version is *ahead* of the sender's current version (the
// sender restarted into a fresh, smaller version space), covers must
// report false, the next send must be a full resync, and the ack naming
// that full's exact version must re-anchor the peer downward. The
// recovery chain exists today, but only incidentally — this test makes
// it a contract.
func TestDeltaAckFromFuture(t *testing.T) {
	// State-machine level: covers treats a future ack as uncoverable.
	var d deltaSummaryState
	d.advance([]wire.SummaryEntry{{Kind: describe.KindSemantic, Tokens: []string{"a"}}})
	if d.version != 1 {
		t.Fatalf("version = %d, want 1", d.version)
	}
	if d.covers(1) || d.covers(7) {
		t.Fatal("covers accepted an ack at or past the current version")
	}
	if got := d.since(7); got != nil {
		t.Fatalf("since(future) = %+v, want nil", got)
	}

	// Protocol level: the future ack forces a full, whose ack re-anchors.
	h := newHarness(t)
	r1 := h.addRegistry("lan0", "r1", deltaCfg())
	r2 := h.addRegistry("lan0", "r2", deltaCfg())
	h.net.RunFor(time.Second)
	tc := h.addClient("lan0", "c")
	h.publish(tc, r1, h.semAdvert("urn:svc:cam", "Camera", time.Minute))
	h.net.RunFor(time.Second)

	p := r1.peers[r2.ID()]
	if p == nil {
		t.Fatal("registries did not peer")
	}
	// Simulate r1 having restarted with a fresh version space while r2's
	// ack stream still names the old one.
	p.ackedVersion = r1.dsum.version + 41
	p.needFull = false
	fullBefore := fDeltaFullSent.Load()
	r1.sendSummaryTo(p)
	if fDeltaFullSent.Load() != fullBefore+1 {
		t.Fatal("ack-from-the-future did not force a full resync")
	}
	if p.lastFullVersion != r1.dsum.version {
		t.Fatalf("lastFullVersion = %d, want %d", p.lastFullVersion, r1.dsum.version)
	}
	// The ack naming the full's version is the sanctioned regression:
	// it re-anchors the peer into the new version space.
	r1.handleSummaryAck(r2.ID(), &wire.SummaryAck{Version: r1.dsum.version})
	if p.ackedVersion != r1.dsum.version {
		t.Fatalf("ackedVersion = %d after full-resync ack, want %d", p.ackedVersion, r1.dsum.version)
	}
	if p.lastFullVersion != 0 {
		t.Fatal("re-anchor was not one-shot")
	}
}

// TestFullSummariesAblation: the pre-delta behaviour stays available
// and sends whole summaries every tick.
func TestFullSummariesAblation(t *testing.T) {
	h := newHarness(t)
	r1 := h.addRegistry("lan0", "r1", deltaCfg(func(c *Config) { c.FullSummaries = true }))
	r2 := h.addRegistry("lan1", "r2", deltaCfg(func(c *Config) {
		c.FullSummaries = true
		c.Seeds = []wire.PeerInfo{peerInfo(r1)}
	}))
	h.net.RunFor(time.Second)
	tc := h.addClient("lan1", "c")
	h.publish(tc, r2, h.semAdvert("urn:svc:cam", "Camera", time.Minute))
	h.net.RunFor(time.Second)
	view := peerView(r1, r2)
	if view == nil || !view[describe.KindSemantic][string(c("Camera"))] {
		t.Fatalf("whole-summary gossip broken: %v", view)
	}
}
