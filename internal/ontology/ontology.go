// Package ontology provides the shared semantic model that semantic
// service descriptions are grounded in (ICDEW'06 §1: "upper-level
// ontologies and service taxonomies could be standardized, facilitating
// semantic service descriptions, and thereby precise selection of
// relevant services").
//
// It models a class taxonomy with multiple inheritance and typed
// properties, and precomputes the subsumption closure so matchmaking
// queries ("is a Radar a kind of Sensor?") answer in O(1). It also
// provides taxonomy-distance similarity (Wu–Palmer), used by the
// matchmaker to rank services within the same match degree.
package ontology

import (
	"errors"
	"fmt"
	"sort"
)

// Class is a class IRI in the ontology.
type Class string

// Property is a property IRI in the ontology.
type Property string

// Thing is the universal superclass; every class is subsumed by Thing.
const Thing Class = "http://www.w3.org/2002/07/owl#Thing"

// Ontology is an immutable-after-Freeze class and property taxonomy.
// Build it with AddClass/AddProperty (or ontology.FromGraph), then call
// Freeze to compute the subsumption closure. All query methods require a
// frozen ontology and panic otherwise, which converts misuse into an
// immediate, debuggable failure instead of silently wrong match results.
type Ontology struct {
	// IRI identifies the ontology itself; registries serve the document
	// for this IRI from their artifact repository (§4.6).
	IRI string

	classes map[Class]*classInfo
	props   map[Property]*propInfo
	frozen  bool

	// c is the dense interned index built at Freeze (see compiled.go);
	// nil when compileDisabled or before Freeze. When present it answers
	// every taxonomy query; the map-based implementations remain as the
	// pre-Freeze/disabled fallback and as the reference the property
	// tests check the bitsets against.
	c               *compiledIndex
	compileDisabled bool
}

type classInfo struct {
	parents   []Class
	children  []Class
	ancestors map[Class]struct{} // reflexive-transitive, computed at Freeze
	depth     int                // shortest hop count from Thing
	label     string
}

type propInfo struct {
	parents []Property
	domain  Class
	rang    Class
	label   string
	supers  map[Property]struct{} // reflexive-transitive
}

// New returns an empty ontology containing only Thing.
func New(iri string) *Ontology {
	o := &Ontology{
		IRI:     iri,
		classes: make(map[Class]*classInfo),
		props:   make(map[Property]*propInfo),
	}
	o.classes[Thing] = &classInfo{}
	return o
}

// ErrFrozen is returned when mutating a frozen ontology.
var ErrFrozen = errors.New("ontology: frozen")

// ErrUnknownClass is returned when referencing an undeclared class.
var ErrUnknownClass = errors.New("ontology: unknown class")

// AddClass declares a class with the given direct superclasses. Parents
// need not be declared yet; forward references are resolved at Freeze.
// Declaring the same class twice merges the parent sets.
func (o *Ontology) AddClass(c Class, parents ...Class) error {
	if o.frozen {
		return ErrFrozen
	}
	if c == "" {
		return errors.New("ontology: empty class IRI")
	}
	ci := o.classes[c]
	if ci == nil {
		ci = &classInfo{}
		o.classes[c] = ci
	}
	for _, p := range parents {
		if p == c {
			continue // reflexive edges are implicit
		}
		ci.parents = append(ci.parents, p)
	}
	return nil
}

// SetLabel attaches a human-readable label to a class.
func (o *Ontology) SetLabel(c Class, label string) error {
	if o.frozen {
		return ErrFrozen
	}
	ci := o.classes[c]
	if ci == nil {
		return fmt.Errorf("%w: %s", ErrUnknownClass, c)
	}
	ci.label = label
	return nil
}

// AddProperty declares a property with optional domain, range and
// superproperties. An empty domain/range means unconstrained.
func (o *Ontology) AddProperty(p Property, domain, rang Class, parents ...Property) error {
	if o.frozen {
		return ErrFrozen
	}
	if p == "" {
		return errors.New("ontology: empty property IRI")
	}
	pi := o.props[p]
	if pi == nil {
		pi = &propInfo{}
		o.props[p] = pi
	}
	if domain != "" {
		pi.domain = domain
	}
	if rang != "" {
		pi.rang = rang
	}
	for _, par := range parents {
		if par == p {
			continue
		}
		pi.parents = append(pi.parents, par)
	}
	return nil
}

// Freeze resolves forward references, links every root to Thing,
// computes the reflexive-transitive subsumption closure and class
// depths, and makes the ontology immutable. Freeze is idempotent.
// Undeclared parent classes are implicitly declared as direct children
// of Thing, matching how RDFS treats unknown terms.
func (o *Ontology) Freeze() {
	if o.frozen {
		return
	}
	// Implicitly declare referenced-but-undeclared parents.
	for {
		var missing []Class
		for _, ci := range o.classes {
			for _, p := range ci.parents {
				if _, ok := o.classes[p]; !ok {
					missing = append(missing, p)
				}
			}
		}
		if len(missing) == 0 {
			break
		}
		for _, m := range missing {
			if _, ok := o.classes[m]; !ok {
				o.classes[m] = &classInfo{}
			}
		}
	}
	// Every parentless class (except Thing) becomes a child of Thing.
	for c, ci := range o.classes {
		if c != Thing && len(ci.parents) == 0 {
			ci.parents = []Class{Thing}
		}
		ci.parents = dedupClasses(ci.parents)
	}
	// Children lists (deterministic order).
	for c, ci := range o.classes {
		for _, p := range ci.parents {
			o.classes[p].children = append(o.classes[p].children, c)
		}
		_ = ci
	}
	for _, ci := range o.classes {
		sort.Slice(ci.children, func(i, j int) bool { return ci.children[i] < ci.children[j] })
	}
	// Ancestor closure and depths. Subclass cycles are legal input
	// (they assert class equivalence), so we condense strongly
	// connected components first and compute both the closure and the
	// depths on the resulting DAG: every member of an SCC shares one
	// ancestor set (containing all members) and one depth.
	o.computeAncestorsAndDepths()
	// Property superproperty closure and implicit declarations.
	for {
		var missing []Property
		for _, pi := range o.props {
			for _, par := range pi.parents {
				if _, ok := o.props[par]; !ok {
					missing = append(missing, par)
				}
			}
		}
		if len(missing) == 0 {
			break
		}
		for _, m := range missing {
			if _, ok := o.props[m]; !ok {
				o.props[m] = &propInfo{}
			}
		}
	}
	for p := range o.props {
		o.propClosure(p, make(map[Property]bool))
	}
	if !o.compileDisabled {
		o.compile()
	}
	o.frozen = true
}

func dedupClasses(cs []Class) []Class {
	seen := make(map[Class]bool, len(cs))
	out := cs[:0]
	for _, c := range cs {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// computeAncestorsAndDepths fills every classInfo.ancestors with the
// reflexive-transitive superclass set and every depth with the shortest
// superclass-path length from Thing, correctly handling subclass cycles
// via Tarjan SCC condensation: all members of an SCC share one ancestor
// set and one depth, and an SCC with no external superclass (a
// top-level equivalence cluster) sits directly under Thing at depth 1.
func (o *Ontology) computeAncestorsAndDepths() {
	// Tarjan over parent edges (recursion is fine; ontologies are small
	// and shallow).
	index := make(map[Class]int, len(o.classes))
	low := make(map[Class]int, len(o.classes))
	onStack := make(map[Class]bool, len(o.classes))
	var stack []Class
	sccOf := make(map[Class]int, len(o.classes))
	var sccs [][]Class
	counter := 0

	var strongconnect func(Class)
	strongconnect = func(v Class) {
		index[v] = counter
		low[v] = counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range o.classes[v].parents {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			id := len(sccs)
			var comp []Class
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				sccOf[w] = id
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, comp)
		}
	}
	for c := range o.classes {
		if _, seen := index[c]; !seen {
			strongconnect(c)
		}
	}
	// Tarjan emits SCCs in reverse topological order of the condensation
	// (an SCC is emitted only after all SCCs it points to — here, its
	// superclass SCCs), so one pass over sccs in emission order computes
	// closures and depths bottom-up from the roots.
	closures := make([]map[Class]struct{}, len(sccs))
	depths := make([]int, len(sccs))
	thingSCC := sccOf[Thing]
	for id, comp := range sccs {
		anc := make(map[Class]struct{}, len(comp)+4)
		for _, m := range comp {
			anc[m] = struct{}{}
		}
		minParentDepth := -1
		for _, m := range comp {
			for _, p := range o.classes[m].parents {
				pid := sccOf[p]
				if pid == id {
					continue
				}
				for a := range closures[pid] {
					anc[a] = struct{}{}
				}
				if minParentDepth == -1 || depths[pid] < minParentDepth {
					minParentDepth = depths[pid]
				}
			}
		}
		closures[id] = anc
		switch {
		case id == thingSCC:
			depths[id] = 0
		case minParentDepth == -1:
			// No external superclass: a top-level (possibly cyclic)
			// cluster, conceptually a direct child of Thing.
			depths[id] = 1
		default:
			depths[id] = minParentDepth + 1
		}
	}
	for c, ci := range o.classes {
		ci.ancestors = closures[sccOf[c]]
		ci.depth = depths[sccOf[c]]
	}
}

func (o *Ontology) propClosure(p Property, visiting map[Property]bool) map[Property]struct{} {
	pi := o.props[p]
	if pi.supers != nil {
		return pi.supers
	}
	if visiting[p] {
		return map[Property]struct{}{p: {}}
	}
	visiting[p] = true
	sup := map[Property]struct{}{p: {}}
	for _, par := range pi.parents {
		for a := range o.propClosure(par, visiting) {
			sup[a] = struct{}{}
		}
	}
	delete(visiting, p)
	pi.supers = sup
	return sup
}

func (o *Ontology) mustFrozen() {
	if !o.frozen {
		panic("ontology: query before Freeze")
	}
}

// HasClass reports whether c is declared.
func (o *Ontology) HasClass(c Class) bool {
	_, ok := o.classes[c]
	return ok
}

// HasProperty reports whether p is declared.
func (o *Ontology) HasProperty(p Property) bool {
	_, ok := o.props[p]
	return ok
}

// Subsumes reports whether super subsumes sub, i.e. sub ⊑ super.
// Reflexive: Subsumes(c, c) is true for declared c. Unknown classes
// subsume nothing and are subsumed only by Thing (open-world lenience:
// an unknown class is still a Thing). With a compiled index the check
// is two ID lookups and one word test; pre-resolved IDs (SubsumesID)
// skip even those lookups.
func (o *Ontology) Subsumes(super, sub Class) bool {
	o.mustFrozen()
	if super == Thing {
		return true
	}
	if c := o.c; c != nil {
		subID, ok := c.ids[sub]
		if !ok {
			return false
		}
		supID, ok := c.ids[super]
		if !ok {
			return false
		}
		return c.bit(c.anc, subID, supID)
	}
	ci, ok := o.classes[sub]
	if !ok {
		return false
	}
	_, ok = ci.ancestors[super]
	return ok
}

// Ancestors returns the reflexive-transitive superclasses of c in
// deterministic order. Unknown classes yield nil.
func (o *Ontology) Ancestors(c Class) []Class {
	o.mustFrozen()
	if ix := o.c; ix != nil {
		id, ok := ix.ids[c]
		if !ok {
			return nil
		}
		return ix.rowClasses(ix.anc, id)
	}
	ci, ok := o.classes[c]
	if !ok {
		return nil
	}
	out := make([]Class, 0, len(ci.ancestors))
	for a := range ci.ancestors {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Parents returns the direct superclasses of c.
func (o *Ontology) Parents(c Class) []Class {
	ci, ok := o.classes[c]
	if !ok {
		return nil
	}
	return append([]Class(nil), ci.parents...)
}

// Children returns the direct subclasses of c in deterministic order.
func (o *Ontology) Children(c Class) []Class {
	o.mustFrozen()
	ci, ok := o.classes[c]
	if !ok {
		return nil
	}
	return append([]Class(nil), ci.children...)
}

// Descendants returns all classes subsumed by c (including c itself).
func (o *Ontology) Descendants(c Class) []Class {
	o.mustFrozen()
	if ix := o.c; ix != nil {
		id, ok := ix.ids[c]
		if !ok {
			return nil
		}
		return ix.rowClasses(ix.desc, id)
	}
	if !o.HasClass(c) {
		return nil
	}
	var out []Class
	seen := make(map[Class]bool)
	var walk func(Class)
	walk = func(x Class) {
		if seen[x] {
			return
		}
		seen[x] = true
		out = append(out, x)
		for _, ch := range o.classes[x].children {
			walk(ch)
		}
	}
	walk(c)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Depth returns the shortest superclass-path length from Thing to c;
// Thing has depth 0. Unknown classes return -1.
func (o *Ontology) Depth(c Class) int {
	o.mustFrozen()
	if ix := o.c; ix != nil {
		id, ok := ix.ids[c]
		if !ok {
			return -1
		}
		return int(ix.depths[id])
	}
	ci, ok := o.classes[c]
	if !ok {
		return -1
	}
	return ci.depth
}

// Label returns the class label, or the IRI local name when unset.
func (o *Ontology) Label(c Class) string {
	if ix := o.c; ix != nil {
		if id, ok := ix.ids[c]; ok && ix.labels[id] != "" {
			return ix.labels[id]
		}
		return localName(string(c))
	}
	if ci, ok := o.classes[c]; ok && ci.label != "" {
		return ci.label
	}
	return localName(string(c))
}

// LCS returns the deepest common subsumer of a and b (an ancestor of
// both with maximal depth), preferring the lexically smallest on ties.
// Returns Thing when either class is unknown.
func (o *Ontology) LCS(a, b Class) Class {
	o.mustFrozen()
	if ix := o.c; ix != nil {
		ida, okA := ix.ids[a]
		idb, okB := ix.ids[b]
		if !okA || !okB {
			return Thing
		}
		return ix.classes[o.LCSID(ida, idb)]
	}
	ca, okA := o.classes[a]
	cb, okB := o.classes[b]
	if !okA || !okB {
		return Thing
	}
	best := Thing
	bestDepth := -1
	for anc := range ca.ancestors {
		if _, shared := cb.ancestors[anc]; !shared {
			continue
		}
		d := o.classes[anc].depth
		if d > bestDepth || (d == bestDepth && anc < best) {
			best, bestDepth = anc, d
		}
	}
	return best
}

// Similarity returns the Wu–Palmer similarity of two classes:
// 2·depth(lcs) / (depth(a)+depth(b)), in [0, 1]. Identical classes have
// similarity 1; classes related only through Thing have similarity 0.
// Unknown classes have similarity 0 to everything, including themselves.
func (o *Ontology) Similarity(a, b Class) float64 {
	o.mustFrozen()
	if ix := o.c; ix != nil {
		ida, okA := ix.ids[a]
		idb, okB := ix.ids[b]
		if !okA || !okB {
			return 0
		}
		return o.SimilarityID(ida, idb)
	}
	if a == b && o.HasClass(a) {
		return 1
	}
	ca, okA := o.classes[a]
	cb, okB := o.classes[b]
	if !okA || !okB {
		return 0
	}
	lcs := o.LCS(a, b)
	dl := o.classes[lcs].depth
	if ca.depth+cb.depth == 0 {
		return 0
	}
	return 2 * float64(dl) / float64(ca.depth+cb.depth)
}

// SubPropertyOf reports whether sub ⊑ super in the property hierarchy
// (reflexive).
func (o *Ontology) SubPropertyOf(sub, super Property) bool {
	o.mustFrozen()
	pi, ok := o.props[sub]
	if !ok {
		return sub == super
	}
	_, ok = pi.supers[super]
	return ok
}

// PropertyDomain returns the declared domain class ("" if unconstrained).
func (o *Ontology) PropertyDomain(p Property) Class {
	if pi, ok := o.props[p]; ok {
		return pi.domain
	}
	return ""
}

// PropertyRange returns the declared range class ("" if unconstrained).
func (o *Ontology) PropertyRange(p Property) Class {
	if pi, ok := o.props[p]; ok {
		return pi.rang
	}
	return ""
}

// Classes returns all declared classes in deterministic order.
func (o *Ontology) Classes() []Class {
	if ix := o.c; ix != nil {
		out := make([]Class, len(ix.classes))
		copy(out, ix.classes)
		return out
	}
	out := make([]Class, 0, len(o.classes))
	for c := range o.classes {
		out = append(out, c)
	}
	sortClassSlice(out)
	return out
}

func sortClassSlice(cs []Class) {
	sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
}

// Properties returns all declared properties in deterministic order.
func (o *Ontology) Properties() []Property {
	out := make([]Property, 0, len(o.props))
	for p := range o.props {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NumClasses returns the number of declared classes (including Thing).
func (o *Ontology) NumClasses() int { return len(o.classes) }

func localName(iri string) string {
	for i := len(iri) - 1; i >= 0; i-- {
		if iri[i] == '#' || iri[i] == '/' {
			return iri[i+1:]
		}
	}
	return iri
}
