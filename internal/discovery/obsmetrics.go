package discovery

import "semdisco/internal/obs"

// Observability for the registry bootstrap tracker: how often nodes
// demote registries, how hard probation works to get them back, and how
// often a demoted registry actually returns. Documented in
// OBSERVABILITY.md.
var (
	dMarkedDead = obs.NewCounter("discovery.registry.marked_dead", "count",
		"registries demoted after a failed request")
	dProbationProbes = obs.NewCounter("discovery.probation.probes", "count",
		"liveness pings sent to registries on probation")
	dRevived = obs.NewCounter("discovery.registry.revived", "count",
		"demoted registries readopted after being heard from again")
)
