package uuid

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNewIsV4(t *testing.T) {
	for i := 0; i < 100; i++ {
		u := New()
		if u.IsNil() {
			t.Fatal("New returned Nil")
		}
		if got := u[6] >> 4; got != 4 {
			t.Fatalf("version nibble = %d, want 4", got)
		}
		if got := u[8] >> 6; got != 2 {
			t.Fatalf("variant bits = %b, want 10", got)
		}
	}
}

func TestNewIsUniqueEnough(t *testing.T) {
	seen := make(map[UUID]bool)
	for i := 0; i < 10000; i++ {
		u := New()
		if seen[u] {
			t.Fatalf("duplicate UUID after %d draws: %s", i, u)
		}
		seen[u] = true
	}
}

func TestStringFormat(t *testing.T) {
	u := UUID{0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc, 0x4d, 0xef, 0x80, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07}
	want := "12345678-9abc-4def-8001-020304050607"
	if got := u.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	if got := u.Short(); got != "12345678" {
		t.Fatalf("Short() = %q, want 12345678", got)
	}
}

func TestParseRoundTrip(t *testing.T) {
	f := func(b [16]byte) bool {
		u := UUID(b)
		got, err := Parse(u.String())
		return err == nil && got == u
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"12345678-9abc-4def-8001-02030405060",   // too short
		"12345678-9abc-4def-8001-0203040506070", // too long
		"12345678x9abc-4def-8001-020304050607",  // wrong separator
		"1234567g-9abc-4def-8001-020304050607",  // non-hex
		strings.Repeat("-", 36),
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse of garbage did not panic")
		}
	}()
	MustParse("nope")
}

func TestGeneratorDeterministic(t *testing.T) {
	a, b := NewGenerator(42), NewGenerator(42)
	for i := 0; i < 1000; i++ {
		ua, ub := a.New(), b.New()
		if ua != ub {
			t.Fatalf("draw %d diverged: %s vs %s", i, ua, ub)
		}
		if ua.IsNil() {
			t.Fatal("generator produced Nil")
		}
	}
}

func TestGeneratorSeedsDiffer(t *testing.T) {
	a, b := NewGenerator(1), NewGenerator(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.New() == b.New() {
			same++
		}
	}
	if same != 0 {
		t.Fatalf("%d collisions between different seeds", same)
	}
}

func TestGeneratorNoDuplicates(t *testing.T) {
	g := NewGenerator(7)
	seen := make(map[UUID]bool)
	for i := 0; i < 10000; i++ {
		u := g.New()
		if seen[u] {
			t.Fatalf("duplicate at draw %d", i)
		}
		seen[u] = true
	}
}

func TestCompare(t *testing.T) {
	lo := UUID{0: 1}
	hi := UUID{0: 2}
	if Compare(lo, hi) != -1 || Compare(hi, lo) != 1 || Compare(lo, lo) != 0 {
		t.Fatal("Compare ordering wrong")
	}
	// Compare must agree with string ordering of the canonical form.
	f := func(x, y [16]byte) bool {
		a, b := UUID(x), UUID(y)
		c := Compare(a, b)
		s := strings.Compare(a.String(), b.String())
		return c == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
