package runtime

import (
	"sync"

	"semdisco/internal/obs"
)

// Pool observability: accepted vs. rejected submissions and the depth
// of the task queue at the last accepted submission. Process-wide; the
// federation read pool is currently the only client.
var (
	mPoolAccepted = obs.NewCounter("runtime.pool.accepted", "count",
		"tasks accepted onto a worker pool queue")
	mPoolRejected = obs.NewCounter("runtime.pool.rejected", "count",
		"submissions refused (pool nil, closed, or queue full)")
	mPoolDepth = obs.NewGauge("runtime.pool.depth", "count",
		"worker pool queue depth at the last accepted submission")
)

// WorkerPool runs read-only work (query evaluation) off the node
// goroutine. The protocol state machines stay single-writer: only
// side-effect-free tasks belong here, and their results must re-enter
// the node via the environment's timer queue (Clock.After) so all state
// mutation still happens on the serialized path.
//
// Submission is non-blocking: when the queue is full or the pool is
// closed, TrySubmit reports false and the caller runs the task inline.
// Backpressure therefore degrades to the synchronous behaviour instead
// of queueing unboundedly or deadlocking during shutdown.
type WorkerPool struct {
	tasks  chan func()
	closed chan struct{}
	once   sync.Once
	wg     sync.WaitGroup
}

// NewWorkerPool starts a pool with the given number of workers and
// queue capacity. workers <= 0 returns nil — the no-pool configuration;
// a nil pool's TrySubmit always reports false, so callers need no
// special case.
func NewWorkerPool(workers, queue int) *WorkerPool {
	if workers <= 0 {
		return nil
	}
	if queue < workers {
		queue = workers
	}
	p := &WorkerPool{
		tasks:  make(chan func(), queue),
		closed: make(chan struct{}),
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for {
				select {
				case <-p.closed:
					return
				case task := <-p.tasks:
					task()
				}
			}
		}()
	}
	return p
}

// TrySubmit enqueues the task unless the pool is nil, closed, or its
// queue is full; false means the caller should run the task itself.
func (p *WorkerPool) TrySubmit(task func()) bool {
	if p == nil {
		mPoolRejected.Inc()
		return false
	}
	select {
	case <-p.closed:
		mPoolRejected.Inc()
		return false
	default:
	}
	select {
	case p.tasks <- task:
		mPoolAccepted.Inc()
		mPoolDepth.Set(int64(len(p.tasks)))
		return true
	default:
		mPoolRejected.Inc()
		return false
	}
}

// Close stops the workers. Queued tasks that no worker picked up before
// observing the close are dropped — acceptable for query evaluation,
// where the client retries or times out. Close is idempotent and safe
// on a nil pool.
func (p *WorkerPool) Close() {
	if p == nil {
		return
	}
	p.once.Do(func() { close(p.closed) })
	p.wg.Wait()
}
