package federation

// The registry-of-registries layer: a gossiped directory of federation
// domains. The paper's §4.9 federation is flat — every gateway peers
// with every other — but the architecture it sketches is hierarchical:
// registries carry a role (standalone, federated under a domain, or
// root), and a query that names a domain resolves through a cascade —
// local store, then the domain directory, then the root — instead of
// flooding the whole WAN.
//
// The directory itself is a monotone merged map, in the style of a
// master-less super-hub phonebook: each gateway authors one
// origin-stamped entry for its domain (origin NodeID + per-origin
// version, with a tombstone as the final version when the domain
// departs), and every gateway merges every entry it hears, keeping the
// newest. Merging is deterministic and commutative — same origin
// compares versions; competing origins for one domain compare versions
// first and break ties toward the lowest origin ID — so any gossip
// order converges to the same directory.
//
// Entries travel between gateways by the same anti-entropy shape as the
// PR-8 summary deltas: each gateway versions its local directory
// *stream* (every accepted entry, authored or relayed, advances it),
// keeps a bounded history, and sends each peer only the entries past
// the stream version that peer acknowledged, with periodic full
// snapshots and a Resync escape hatch bounding divergence. Because
// applying a snapshot is a merge — never a replace — full resyncs
// cannot lose entries, and relaying is loop-safe: a stale copy merges
// to a no-op and does not re-enter the stream.

import (
	"sort"
	"time"

	"semdisco/internal/transport"
	"semdisco/internal/uuid"
	"semdisco/internal/wire"
)

// Role places a registry in the federation hierarchy.
type Role uint8

const (
	// RoleStandalone keeps the flat pre-directory behaviour: no
	// directory gossip, no cascade.
	RoleStandalone Role = iota
	// RoleFederated marks a domain gateway: it authors the directory
	// entry for Config.Domain, gossips the directory, and resolves
	// domain-scoped queries through it (falling back to the root for
	// domains it does not know).
	RoleFederated
	// RoleRoot marks the hierarchy's fallback resolver: it gossips and
	// serves the directory like a federated gateway but never escalates
	// further — a miss at the root is a miss.
	RoleRoot
)

func (r Role) String() string {
	switch r {
	case RoleFederated:
		return "federated"
	case RoleRoot:
		return "root"
	default:
		return "standalone"
	}
}

// ParseRole maps the -role flag values onto Role.
func ParseRole(s string) (Role, bool) {
	switch s {
	case "", "standalone":
		return RoleStandalone, true
	case "federated":
		return RoleFederated, true
	case "root":
		return RoleRoot, true
	}
	return RoleStandalone, false
}

// maxDirHistory bounds the retained per-version directory deltas; a
// peer whose ack falls behind the window gets a full snapshot instead.
const maxDirHistory = 64

// dirRecord is one accepted entry at one stream version.
type dirRecord struct {
	version uint64
	entry   wire.DirectoryEntry
}

// directory is the merged domain map plus the stream state that gossips
// it: version/history mirror deltaSummaryState, but over entries whose
// conflict resolution is origin-stamped merging rather than
// last-writer-wins replacement.
type directory struct {
	entries map[string]wire.DirectoryEntry
	// deadAt ages tombstones out locally once every peer has had
	// TombstoneTTL to hear them; expiry is local aging, not a change,
	// so it does not advance the stream.
	deadAt  map[string]time.Time
	version uint64
	history []dirRecord
}

func newDirectory() *directory {
	return &directory{
		entries: make(map[string]wire.DirectoryEntry),
		deadAt:  make(map[string]time.Time),
	}
}

// entryNewer reports whether e supersedes cur under the merge order:
// same origin compares versions; across origins the higher version
// wins, and a version tie breaks toward the lowest origin ID so every
// gateway picks the same winner for a contested domain.
func entryNewer(e, cur wire.DirectoryEntry) bool {
	if e.Origin == cur.Origin {
		return e.Version > cur.Version
	}
	if e.Version != cur.Version {
		return e.Version > cur.Version
	}
	return uuid.Compare(e.Origin, cur.Origin) < 0
}

// merge applies one entry if it supersedes what the directory holds,
// advancing the stream and recording the delta. The bool reports
// acceptance — a rejected (stale or equal) entry changes nothing and
// must not be re-gossiped, which is what makes relaying loop-safe.
func (d *directory) merge(e wire.DirectoryEntry, now time.Time, ttl time.Duration) bool {
	cur, ok := d.entries[e.Domain]
	if ok && !entryNewer(e, cur) {
		return false
	}
	d.entries[e.Domain] = e
	if e.Tombstone {
		d.deadAt[e.Domain] = now.Add(ttl)
	} else {
		delete(d.deadAt, e.Domain)
	}
	d.version++
	d.history = append(d.history, dirRecord{version: d.version, entry: e})
	if len(d.history) > maxDirHistory {
		d.history = d.history[len(d.history)-maxDirHistory:]
	}
	return true
}

// lookup resolves a domain to its live entry; tombstoned and unknown
// domains both miss.
func (d *directory) lookup(domain string) (wire.DirectoryEntry, bool) {
	e, ok := d.entries[domain]
	if !ok || e.Tombstone {
		return wire.DirectoryEntry{}, false
	}
	return e, true
}

// domainOf reports which live domain (if any) the given gateway is the
// origin of; the confinement check uses it to skip WAN peers that
// provably serve a different namespace.
func (d *directory) domainOf(id wire.NodeID) (string, bool) {
	for _, e := range d.entries {
		if e.Origin == id && !e.Tombstone {
			return e.Domain, true
		}
	}
	return "", false
}

// covers reports whether the history can fast-forward a peer acked at
// the given stream version to the current one (same shape as
// deltaSummaryState.covers, including ack-from-the-future: an ack at
// or past our version after a restart is not coverable and forces the
// full-snapshot re-anchor).
func (d *directory) covers(acked uint64) bool {
	if acked >= d.version || len(d.history) == 0 {
		return false
	}
	return d.history[0].version <= acked+1
}

// since merges the history past acked into one entry set: the newest
// record per domain, sorted for deterministic wire bytes.
func (d *directory) since(acked uint64) []wire.DirectoryEntry {
	latest := make(map[string]wire.DirectoryEntry)
	for _, rec := range d.history {
		if rec.version <= acked {
			continue
		}
		latest[rec.entry.Domain] = rec.entry
	}
	return sortedEntries(latest)
}

// fullEntries renders the whole directory as a snapshot delta.
func (d *directory) fullEntries() []wire.DirectoryEntry {
	return sortedEntries(d.entries)
}

// expire drops tombstones whose propagation window lapsed. Expiry is
// local-only aging (no stream advance): by construction every live
// gateway heard the tombstone within the TTL or will take a full
// snapshot that no longer carries it.
func (d *directory) expire(now time.Time) int {
	n := 0
	for domain, at := range d.deadAt {
		if !at.After(now) {
			delete(d.deadAt, domain)
			delete(d.entries, domain)
			n++
		}
	}
	return n
}

// counts returns resident live and tombstoned entry counts for gauges.
func (d *directory) counts() (live, dead int) {
	for _, e := range d.entries {
		if e.Tombstone {
			dead++
		} else {
			live++
		}
	}
	return
}

func sortedEntries(m map[string]wire.DirectoryEntry) []wire.DirectoryEntry {
	if len(m) == 0 {
		return nil
	}
	out := make([]wire.DirectoryEntry, 0, len(m))
	for _, e := range m {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Domain < out[j].Domain })
	return out
}

// --- registry integration ---

// dirEnabled reports whether this registry participates in the
// hierarchy (gossips and resolves through the directory).
func (r *Registry) dirEnabled() bool { return r.cfg.Role != RoleStandalone }

// announceDomain authors (or re-versions) this gateway's own directory
// entry. Called at Start, and with tombstone at Stop.
func (r *Registry) announceDomain(tombstone bool) {
	if r.cfg.Domain == "" {
		return
	}
	r.ownDirVersion++
	r.dir.merge(wire.DirectoryEntry{
		Domain:    r.cfg.Domain,
		Origin:    r.env.ID,
		Addr:      string(r.env.Addr()),
		Version:   r.ownDirVersion,
		Tombstone: tombstone,
	}, r.now(), r.cfg.TombstoneTTL)
	r.updateDirGauges()
}

// gossipDirectory is the periodic anti-entropy tick: age tombstones
// out, then bring every peer up to the current stream.
func (r *Registry) gossipDirectory() {
	if n := r.dir.expire(r.now()); n > 0 {
		fDirTombExpired.Add(uint64(n))
		r.updateDirGauges()
	}
	if r.dir.version == 0 {
		return
	}
	for _, p := range r.sortedPeers() {
		r.sendDirectoryTo(p)
	}
}

// sendDirectoryTo sends one peer whatever directory state it needs this
// tick: nothing (fully acked), the entries since its ack, or a full
// snapshot. Like the fixed sendSummaryTo, the periodic-full counter
// advances only on ticks that actually send.
func (r *Registry) sendDirectoryTo(p *peer) {
	d := r.dir
	switch {
	case p.dirAckedVersion == d.version && !p.dirNeedFull:
		fDirDeltaSkipped.Inc()
	case p.dirNeedFull || p.dirAckedVersion == 0 ||
		p.dirSinceFull+1 >= r.cfg.DirectoryFullEvery || !d.covers(p.dirAckedVersion):
		r.env.Send(transport.Addr(p.info.Addr), wire.DirectoryDelta{
			Version: d.version, Full: true, Entries: d.fullEntries(),
		})
		p.dirNeedFull = false
		p.dirLastFullVersion = d.version
		p.dirSinceFull = 0
		fDirDeltaFull.Inc()
	default:
		r.env.Send(transport.Addr(p.info.Addr), wire.DirectoryDelta{
			Version: d.version, Base: p.dirAckedVersion,
			Entries: d.since(p.dirAckedVersion),
		})
		p.dirSinceFull++
		fDirDeltaSent.Inc()
	}
}

// handleDirectoryDelta merges a peer's directory update. Entries merge
// individually (a full snapshot is just a bigger merge, never a wipe);
// the Base check detects a gap in the peer's stream — a lost delta may
// have carried an entry nothing else will re-send — and demands a
// resync. Only a *forward* gap (Base past what we hold) is a gap: a
// delta based before our position is a superset of what we need, and
// the monotone merge makes replaying it safe. Rejecting those — the
// sender's Base lags while its ack to us is still in flight — would
// turn a departing gateway's final tombstone delta into a Resync
// request to a node that no longer exists, losing the retraction
// permanently. A delta from an unknown sender first learns it as a
// peer — like a Ping, it proves the sender is a federation gateway,
// and dropping it could strand such a final delta too.
func (r *Registry) handleDirectoryDelta(env *wire.Envelope, addr transport.Addr, dd *wire.DirectoryDelta) {
	if !r.dirEnabled() {
		return
	}
	p := r.addPeer(wire.PeerInfo{ID: env.From, Addr: env.FromAddr}, false)
	if p == nil {
		return
	}
	p.lastSeen = r.now()
	if !dd.Full && dd.Version <= p.dirGotVersion {
		// Duplicate or reordered: this span was already applied. Re-ack
		// our position so the sender still advances.
		fDirDeltaStale.Inc()
		r.env.Send(addr, wire.DirectoryAck{Version: p.dirGotVersion})
		return
	}
	now := r.now()
	accepted := 0
	for _, e := range dd.Entries {
		if r.dir.merge(e, now, r.cfg.TombstoneTTL) {
			accepted++
		} else {
			fDirMergeStale.Inc()
		}
	}
	if accepted > 0 {
		fDirMergeApplied.Add(uint64(accepted))
		r.updateDirGauges()
	}
	if !dd.Full && dd.Base > p.dirGotVersion {
		// Gap: the span (got, Base] never arrived — a delta was lost, or
		// the sender's Bye overtook its final delta and this is a fresh
		// peer struct. The entries above were merged regardless (the
		// monotone merge makes a partial stream safe to apply, and for a
		// departing sender they are the last chance to hear its
		// tombstone); the resync only recovers the missed span, so got
		// must not advance past it.
		fDirDeltaStale.Inc()
		r.env.Send(addr, wire.DirectoryAck{Version: p.dirGotVersion, Resync: true})
		return
	}
	p.dirGotVersion = dd.Version
	r.env.Send(addr, wire.DirectoryAck{Version: dd.Version})
}

// handleDirectoryAck advances the sender's per-peer directory ack with
// the summary protocol's exact monotonic guard and one-shot
// full-resync re-anchor (see handleSummaryAck).
func (r *Registry) handleDirectoryAck(from wire.NodeID, a *wire.DirectoryAck) {
	if !r.dirEnabled() {
		return
	}
	p, ok := r.peers[from]
	if !ok {
		return
	}
	p.lastSeen = r.now()
	if a.Resync {
		p.dirNeedFull = true
		fDirResyncs.Inc()
	}
	if a.Version > p.dirAckedVersion || (a.Version == p.dirLastFullVersion && p.dirLastFullVersion != 0) {
		p.dirAckedVersion = a.Version
	}
	if p.dirLastFullVersion != 0 && a.Version >= p.dirLastFullVersion {
		p.dirLastFullVersion = 0
	}
}

func (r *Registry) updateDirGauges() {
	live, dead := r.dir.counts()
	fDirEntries.Set(int64(live))
	fDirTombstones.Set(int64(dead))
}

// Role returns the registry's configured federation role.
func (r *Registry) Role() Role { return r.cfg.Role }

// Domain returns the registry's configured federation domain.
func (r *Registry) Domain() string { return r.cfg.Domain }

// DirectorySnapshot returns a sorted copy of the current domain
// directory (tombstones included) — the convergence probe experiments
// and tests compare across gateways and same-seed runs.
func (r *Registry) DirectorySnapshot() []wire.DirectoryEntry {
	return r.dir.fullEntries()
}
