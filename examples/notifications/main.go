// Notifications: standing queries over the wire. The paper notes that
// "some systems today also allow registration for notifications about
// service advertisements of interest"; semdisco implements that as
// leased subscriptions — a crashed subscriber stops consuming
// notifications the same way a crashed service stops being advertised.
//
// An operations-center client watches for any SensorFeed; services
// come up one by one and each appearance is pushed to the client
// without polling.
//
//	go run ./examples/notifications
package main

import (
	"fmt"
	"log"
	"time"

	"semdisco/internal/core"
)

func main() {
	sys := core.NewSystem(core.Options{Seed: 21})
	sys.StartRegistry("ops", core.RegistryOptions{})
	cli := sys.StartClient("ops", core.ClientOptions{})
	sys.Step(2 * time.Second)

	fmt.Println("watching for sensor feeds…")
	cancel, err := cli.Watch(core.Query{Category: sys.Class("SensorFeed")}, func(h core.Hit) {
		fmt.Printf("  + %-24s (%s)\n", h.Name, h.Endpoint)
	})
	if err != nil {
		log.Fatal(err)
	}

	deploy := func(iri, name, class string) {
		if _, err := sys.StartService("ops", core.ServiceOptions{
			Profile: core.ServiceProfile{
				IRI: iri, Name: name, Category: sys.Class(class),
				Endpoint: "udp://ops.example/" + iri,
			},
		}); err != nil {
			log.Fatal(err)
		}
		sys.Step(2 * time.Second)
	}
	deploy("urn:svc:radar-1", "Harbour radar", "RadarFeed")
	deploy("urn:svc:chat-1", "Ops chat", "ChatService") // no notification: not a sensor
	deploy("urn:svc:ir-cam", "IR camera", "InfraredCameraFeed")

	fmt.Println("unsubscribing; further deployments are silent…")
	cancel()
	sys.Step(time.Second)
	deploy("urn:svc:radar-2", "Second radar", "RadarFeed")
	fmt.Println("done")
}
