package obs

import (
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentUpdates hammers every metric kind from many goroutines
// while snapshots run concurrently; run with -race.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test.counter", "count", "events")
	g := r.NewGauge("test.gauge", "count", "level")
	h := r.NewHistogram("test.hist", "us", "latency", []int64{10, 100, 1000})

	const workers, perWorker = 8, 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(int64(i % 2000))
				// Concurrent re-registration must return the same metric.
				if r.NewCounter("test.counter", "count", "events") != c {
					t.Error("re-registration returned a different counter")
					return
				}
			}
		}(w)
	}
	// Snapshots race the writers; values must be internally usable.
	for i := 0; i < 100; i++ {
		_ = r.Snapshot()
	}
	wg.Wait()

	if got := c.Load(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Load(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	snap := r.Snapshot()
	mv, ok := snap.Get("test.hist")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	// Last bucket is cumulative: must equal the total count.
	if last := mv.Buckets[len(mv.Buckets)-1]; last.N != mv.Count {
		t.Errorf("cumulative overflow bucket = %d, want %d", last.N, mv.Count)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("x", "count", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering x as gauge after counter did not panic")
		}
	}()
	r.NewGauge("x", "count", "")
}

func TestSnapshotDiff(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("d.counter", "count", "")
	idle := r.NewCounter("d.idle", "count", "")
	g := r.NewGauge("d.gauge", "count", "")
	h := r.NewHistogram("d.hist", "us", "", []int64{10, 100})

	c.Add(5)
	idle.Add(3)
	g.Set(7)
	h.Observe(5)
	h.Observe(50)
	before := r.Snapshot()

	c.Add(2)
	g.Set(4)
	h.Observe(7)
	h.Observe(500)
	diff := r.Snapshot().Diff(before)

	if mv, ok := diff.Get("d.counter"); !ok || mv.Value != 2 {
		t.Errorf("counter delta = %+v, want 2", mv)
	}
	if _, ok := diff.Get("d.idle"); ok {
		t.Error("zero-delta counter should be omitted from the diff")
	}
	if mv, ok := diff.Get("d.gauge"); !ok || mv.Value != 4 {
		t.Errorf("gauge in diff = %+v, want current level 4", mv)
	}
	mv, ok := diff.Get("d.hist")
	if !ok {
		t.Fatal("histogram missing from diff")
	}
	if mv.Count != 2 || mv.Sum != 507 {
		t.Errorf("histogram delta count=%d sum=%d, want 2/507", mv.Count, mv.Sum)
	}
	// Bucket deltas: one ≤10 observation (7), one overflow (500).
	if mv.Buckets[0].N != 1 {
		t.Errorf("bucket ≤10 delta = %d, want 1", mv.Buckets[0].N)
	}
	if last := mv.Buckets[len(mv.Buckets)-1]; last.N != 2 {
		t.Errorf("cumulative overflow delta = %d, want 2", last.N)
	}
}

func TestQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("q.hist", "us", "", []int64{10, 100, 1000})
	for i := 0; i < 90; i++ {
		h.Observe(5) // ≤10
	}
	for i := 0; i < 10; i++ {
		h.Observe(5000) // overflow
	}
	mv, _ := r.Snapshot().Get("q.hist")
	if p50, ok := mv.Quantile(0.50); !ok || p50 != 10 {
		t.Errorf("p50 = %d, want 10", p50)
	}
	if p99, ok := mv.Quantile(0.99); !ok || p99 != -1 {
		t.Errorf("p99 = %d, want overflow (-1)", p99)
	}
}

// TestJSONRoundTrip serves a snapshot through the real HTTP handler
// and decodes it with the same client path sdctl stats uses (Fetch →
// ParseJSON).
func TestJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("rt.queries", "count", "queries received").Add(42)
	r.NewGauge("rt.depth", "count", "queue depth").Set(-3)
	h := r.NewHistogram("rt.lat", "us", "latency", []int64{10, 100})
	h.Observe(7)
	h.Observe(70)
	h.Observe(700)

	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	snap, err := Fetch(srv.URL, 0)
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	want := r.Snapshot()
	if len(snap.Metrics) != len(want.Metrics) {
		t.Fatalf("got %d metrics, want %d", len(snap.Metrics), len(want.Metrics))
	}
	for i, mv := range want.Metrics {
		got := snap.Metrics[i]
		if got.Name != mv.Name || got.Kind != mv.Kind || got.Unit != mv.Unit ||
			got.Value != mv.Value || got.Count != mv.Count || got.Sum != mv.Sum ||
			len(got.Buckets) != len(mv.Buckets) {
			t.Errorf("metric %d round-trip mismatch:\n got %+v\nwant %+v", i, got, mv)
		}
	}
	if mv, ok := snap.Get("rt.lat"); !ok || mv.Count != 3 || mv.Sum != 777 {
		t.Errorf("histogram after round-trip = %+v, want count=3 sum=777", mv)
	}

	// The text endpoint renders every metric on its own line.
	resp, err := srv.Client().Get(srv.URL + "/stats")
	if err != nil {
		t.Fatalf("GET /stats: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading /stats: %v", err)
	}
	text := string(body)
	for _, name := range []string{"rt.queries", "rt.depth", "rt.lat"} {
		if !strings.Contains(text, name) {
			t.Errorf("text exposition missing %q:\n%s", name, text)
		}
	}
}
