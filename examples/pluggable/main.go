// Pluggable description models: the paper's layered-stack claim in
// action. One registry network simultaneously carries
//
//   - a primitive URI-typed service (a Tactical-Data-Link-style
//     broadcaster that merely names a pre-agreed type),
//   - a UDDI-style key/value-described service, and
//   - a rich semantic service,
//
// each queried with its own model's query language over the *same*
// publish/query/lease protocol — the next-header field routes payloads
// to the right model, and nodes silently skip kinds they don't speak.
//
//	go run ./examples/pluggable
package main

import (
	"fmt"
	"log"
	"time"

	"semdisco/internal/describe"
	"semdisco/internal/federation"
	"semdisco/internal/node"
	"semdisco/internal/sim"
)

func main() {
	w := sim.NewWorld(sim.Config{Seed: 5})
	w.AddRegistry("lan0", "r0", federation.Config{})

	// Three services, one per description tier.
	w.AddService("lan0", "tdl", node.ServiceConfig{}, &describe.URIDescription{
		TypeURI:    "urn:nato:tdl:link16",
		ServiceURI: "urn:svc:jtids-1",
		Name:       "JTIDS terminal",
		Addr:       "udp://10.0.0.7:1000",
	})
	w.AddService("lan0", "uddiish", node.ServiceConfig{}, &describe.KVDescription{
		ServiceURI: "urn:svc:weather-1",
		Name:       "Weather bulletin feed",
		TypeURI:    "urn:type:weather",
		Attrs:      map[string]string{"region": "north", "format": "grib"},
		Addr:       "http://10.0.0.8/weather",
	})
	w.AddService("lan0", "sem", node.ServiceConfig{},
		w.SemanticProfile("urn:svc:radar-1", sim.C("CoastalRadarFeed")))

	cli := w.AddClient("lan0", "c0", node.ClientConfig{})
	w.Run(2 * time.Second)

	show := func(label string, spec node.QuerySpec) {
		out := cli.Query(spec, 10*time.Second)
		if !out.Completed {
			log.Fatalf("%s query did not complete", label)
		}
		fmt.Printf("%-28s -> %d hit(s)", label, len(out.Adverts))
		for _, a := range out.Adverts {
			d, err := w.Models().DecodeDescription(a.Kind, a.Payload)
			if err == nil {
				fmt.Printf("  [%s] %s", a.Kind, d.ServiceKey())
			}
		}
		fmt.Println()
	}

	// 1. URI model: exact pre-agreed type matching.
	show("uri: link16 terminals", node.QuerySpec{
		Kind:    describe.KindURI,
		Payload: (&describe.URIQuery{TypeURI: "urn:nato:tdl:link16"}).Encode(),
	})
	// 2. KV model: filled-out partial template (type + attribute).
	show("kv: northern grib weather", node.QuerySpec{
		Kind: describe.KindKV,
		Payload: (&describe.KVQuery{
			TypeURI: "urn:type:weather",
			Attrs:   map[string]string{"region": "north"},
		}).Encode(),
	})
	// 3. Semantic model: subsumption finds the coastal radar from the
	// generic SensorFeed concept.
	show("semantic: any sensor feed", w.SemanticSpec(sim.C("SensorFeed"), 0))

	// Each model only sees its own kind: the semantic query does not
	// return the Link-16 terminal even though both live side by side.
	show("semantic: link16 (no hits)", w.SemanticSpec(sim.C("ChatService"), 0))

	// And the decentralized fallback speaks all models too.
	for _, r := range w.Registries {
		r.Crash()
	}
	w.Run(time.Second)
	out := cli.Query(node.QuerySpec{
		Kind:    describe.KindURI,
		Payload: (&describe.URIQuery{TypeURI: "urn:nato:tdl:link16"}).Encode(),
	}, 30*time.Second)
	fmt.Printf("%-28s -> %d hit(s) via %s\n", "uri after registry death", len(out.Adverts), out.Via)

}
