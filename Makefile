GO ?= go

.PHONY: build test race vet bench bench-match docs-check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/obs/... ./internal/registry/... ./internal/federation/... ./internal/runtime/... ./internal/ontology/... ./internal/match/... ./internal/wire/...

vet:
	$(GO) vet ./...

# Registry benchmarks with allocation stats; emits BENCH_registry.json.
bench:
	sh scripts/bench.sh

# Matchmaking/subsumption benchmarks (compiled vs map baselines) with
# allocation stats; emits BENCH_match.json.
bench-match:
	sh scripts/bench.sh match

# Fails when OBSERVABILITY.md drifts from the metrics registered in code.
docs-check:
	sh scripts/check_obs_docs.sh
