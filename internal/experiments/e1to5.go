package experiments

import (
	"bytes"
	"compress/flate"
	"fmt"
	"time"

	"semdisco/internal/describe"
	"semdisco/internal/match"
	"semdisco/internal/metrics"
	"semdisco/internal/node"
	"semdisco/internal/ontology"
	"semdisco/internal/profile"
	"semdisco/internal/rdf"
	"semdisco/internal/sim"
	"semdisco/internal/wire"
	"semdisco/internal/workload"
)

// E1TopologyBandwidth measures total network load for the three Fig. 1
// topologies at growing node counts (§3 claims: decentralized queries
// broadcast to all nodes and every node answers, so load grows with N;
// centralized is cheapest; distributed lands in between, paying
// publish/maintenance overhead for robustness).
// All E1 figures are *delivered* bytes: a multicast of b bytes to k
// receivers loads the medium with k·b — exactly the broadcast cost §3.1
// worries about. Clients delegate response control (MaxResults=5) so
// the comparison isolates the topologies, not the result-set sizes;
// decentralized discovery cannot enforce the cap on the wire, which is
// the point.
func E1TopologyBandwidth(sizes []int, queries int, seed int64) *metrics.Table {
	t := metrics.NewTable("E1 topology bandwidth (Fig. 1 / §3)",
		"topology", "services", "msgs", "totalKB", "maintKB", "pubKB", "queryKB", "KB/query")
	for _, n := range sizes {
		for _, topo := range []string{"decentralized", "centralized", "distributed"} {
			msgs, cat := runE1(topo, n, queries, seed)
			total := cat[0].Bytes + cat[1].Bytes + cat[2].Bytes
			t.AddRow(topo, n, msgs,
				metrics.KB(total), metrics.KB(cat[wire.CatMaintenance].Bytes),
				metrics.KB(cat[wire.CatPublishing].Bytes), metrics.KB(cat[wire.CatQuerying].Bytes),
				metrics.KB(cat[wire.CatQuerying].Bytes/uint64(queries)))
		}
	}
	t.AddNote("delivered bytes over a 35s window incl. renewals; %d queries, MaxResults=5", queries)
	return t
}

func runE1(topo string, n, queries int, seed int64) (uint64, [3]struct{ Messages, Bytes uint64 }) {
	w := sim.NewWorld(sim.Config{Seed: seed})
	var regSeeds []wire.PeerInfo
	lanOf := func(i int) string { return "lan0" }
	switch topo {
	case "decentralized":
		// No registries: everyone on one broadcast segment, nodes
		// deliberately configured registry-less (no probing).
	case "centralized":
		r := w.AddRegistry("lan0", "r0", fastRegistry())
		regSeeds = []wire.PeerInfo{r.PeerInfo()}
	case "distributed":
		lans := n / 10
		if lans < 2 {
			lans = 2
		}
		var regs []*sim.RegistryHandle
		for l := 0; l < lans; l++ {
			cfg := fastRegistry()
			cfg.Seeds = chainSeeds(regs, 2)
			regs = append(regs, w.AddRegistry(fmt.Sprintf("lan%d", l), fmt.Sprintf("r%d", l), cfg))
		}
		lanOf = func(i int) string { return fmt.Sprintf("lan%d", i%lans) }
	}
	for i := 0; i < n; i++ {
		cfg := fastService(10*time.Second, regSeeds...)
		if topo == "decentralized" {
			cfg.Bootstrap.Passive = true
		}
		w.AddService(lanOf(i), fmt.Sprintf("s%d", i), cfg,
			w.SemanticProfile(fmt.Sprintf("urn:svc:%d", i), categoryFor(i)))
	}
	cliCfg := fastClient(regSeeds...)
	if topo == "decentralized" {
		cliCfg.MaxAttempts = 1
		cliCfg.QueryTimeout = 100 * time.Millisecond
		cliCfg.Bootstrap.Passive = true
	}
	cli := w.AddClient(lanOf(0), "c0", cliCfg)
	w.Run(5 * time.Second) // bootstrap + publish
	w.Net.ResetStats()
	ttl := uint8(0)
	if topo == "distributed" {
		ttl = 4
	}
	for q := 0; q < queries; q++ {
		spec := w.SemanticSpec(sim.C("SensorFeed"), ttl)
		spec.MaxResults = 5
		cli.Query(spec, 10*time.Second)
		w.Run(time.Second)
	}
	// Pad to a fixed 35 s steady-state window so renewal/beacon traffic
	// is comparable across topologies.
	for w.Net.Now().Sub(time.Unix(0, 0)) < 40*time.Second {
		w.Run(time.Second)
	}
	s := w.Net.Stats()
	var cats [3]struct{ Messages, Bytes uint64 }
	for i := 0; i < 3; i++ {
		cats[i] = struct{ Messages, Bytes uint64 }{
			s.DeliveredByCategory[i].Messages, s.DeliveredByCategory[i].Bytes,
		}
	}
	return s.MessagesDelivered, cats
}

// E2ResponseControl measures the responses a client receives for a
// broad query with and without registry-side response control (§3.1:
// decentralized discovery risks "response implosion"; registries can
// return only the best advertisement).
func E2ResponseControl(n int, seed int64) *metrics.Table {
	t := metrics.NewTable("E2 query response control (§3.1)",
		"mode", "responsesAtClient", "advertsReturned", "queryKB")
	type mode struct {
		name     string
		registry bool
		spec     func(*sim.World) node.QuerySpec
	}
	modes := []mode{
		{"decentralized (no control)", false, func(w *sim.World) node.QuerySpec {
			return w.SemanticSpec(sim.C("SensorFeed"), 0)
		}},
		{"registry default cap", true, func(w *sim.World) node.QuerySpec {
			return w.SemanticSpec(sim.C("SensorFeed"), 0)
		}},
		{"registry max=5", true, func(w *sim.World) node.QuerySpec {
			s := w.SemanticSpec(sim.C("SensorFeed"), 0)
			s.MaxResults = 5
			return s
		}},
		{"registry best-only", true, func(w *sim.World) node.QuerySpec {
			s := w.SemanticSpec(sim.C("SensorFeed"), 0)
			s.BestOnly = true
			return s
		}},
	}
	for _, m := range modes {
		w := sim.NewWorld(sim.Config{Seed: seed})
		var seeds []wire.PeerInfo
		if m.registry {
			seeds = []wire.PeerInfo{w.AddRegistry("lan0", "r0", fastRegistry()).PeerInfo()}
		}
		for i := 0; i < n; i++ {
			// Every service matches the broad query: worst case.
			w.AddService("lan0", fmt.Sprintf("s%d", i), fastService(time.Minute, seeds...),
				w.SemanticProfile(fmt.Sprintf("urn:svc:%d", i), categoryFor(i%4))) // sensor feeds only
		}
		cfg := fastClient(seeds...)
		if !m.registry {
			cfg.MaxAttempts = 1
			cfg.QueryTimeout = 100 * time.Millisecond
		}
		cli := w.AddClient("lan0", "c0", cfg)
		w.Run(5 * time.Second)
		w.Net.ResetStats()
		out := cli.Query(m.spec(w), 10*time.Second)
		s := w.Net.Stats()
		t.AddRow(m.name, len(out.Adverts), distinctServices(w, out.Adverts),
			metrics.KB(s.ByCategory[wire.CatQuerying].Bytes))
	}
	t.AddNote("%d services all matching the query", n)
	return t
}

// E3Robustness kills growing fractions of registry nodes and measures
// discovery success (§3: centralized = single point of failure;
// distributed recovers via registry signaling; decentralized fallback
// always finds LAN-local services).
func E3Robustness(fractions []float64, seed int64) *metrics.Table {
	t := metrics.NewTable("E3 robustness to registry failure (§3.1–3.2)",
		"topology", "killed", "recall", "attemptsMean")
	const lans = 4
	const perLAN = 3
	for _, topo := range []string{"centralized", "distributed"} {
		for _, f := range fractions {
			recall, attempts := runE3(topo, lans, perLAN, f, seed)
			t.AddRow(topo, fmt.Sprintf("%.0f%%", f*100), recall, attempts)
		}
	}
	t.AddNote("%d LANs, %d services each; recall = mean fraction of all services each client still discovers", lans, perLAN)
	return t
}

func runE3(topo string, lans, perLAN int, fraction float64, seed int64) (float64, float64) {
	w := sim.NewWorld(sim.Config{Seed: seed})
	var regs []*sim.RegistryHandle
	var seeds []wire.PeerInfo
	if topo == "centralized" {
		r := w.AddRegistry("lan0", "r0", fastRegistry())
		regs = append(regs, r)
		seeds = []wire.PeerInfo{r.PeerInfo()}
		for l := 0; l < lans; l++ {
			for i := 0; i < perLAN; i++ {
				w.AddService(fmt.Sprintf("lan%d", l), fmt.Sprintf("s%d-%d", l, i),
					fastService(3*time.Second, seeds...),
					w.SemanticProfile(fmt.Sprintf("urn:svc:%d-%d", l, i), categoryFor(i)))
			}
		}
	} else {
		for l := 0; l < lans; l++ {
			cfg := fastRegistry()
			cfg.Seeds = chainSeeds(regs, 2)
			regs = append(regs, w.AddRegistry(fmt.Sprintf("lan%d", l), fmt.Sprintf("r%d", l), cfg))
		}
		for l := 0; l < lans; l++ {
			for i := 0; i < perLAN; i++ {
				w.AddService(fmt.Sprintf("lan%d", l), fmt.Sprintf("s%d-%d", l, i),
					fastService(3*time.Second),
					w.SemanticProfile(fmt.Sprintf("urn:svc:%d-%d", l, i), categoryFor(i)))
			}
		}
	}
	var clients []*sim.ClientHandle
	for l := 0; l < lans; l++ {
		clients = append(clients, w.AddClient(fmt.Sprintf("lan%d", l), fmt.Sprintf("c%d", l), fastClient(seeds...)))
	}
	w.Run(8 * time.Second)
	// Kill ceil(fraction·R) registries, deterministically by index.
	kill := int(fraction*float64(len(regs)) + 0.5)
	for i := 0; i < kill && i < len(regs); i++ {
		regs[i].Crash()
	}
	w.Run(15 * time.Second) // failover, republish, lease recovery
	totalServices := lans * perLAN
	recallSum, attempts := 0.0, 0
	for _, cli := range clients {
		spec := w.SemanticSpec(sim.C("Service"), 4)
		spec.MaxResults = 100
		out := cli.Query(spec, 30*time.Second)
		attempts += out.Attempts
		recallSum += float64(distinctServices(w, out.Adverts)) / float64(totalServices)
	}
	n := float64(len(clients))
	return recallSum / n, float64(attempts) / n
}

// E4Staleness measures the fraction of stale advertisements returned
// under service churn, sweeping the lease period against the UDDI-like
// no-leasing baseline (§4.8: "lack of such mechanisms is a major
// problem with today's technologies").
func E4Staleness(leases []time.Duration, seed int64) *metrics.Table {
	t := metrics.NewTable("E4 staleness under churn (§4.8)",
		"system", "lease", "staleFrac", "missingFrac", "pubMsgs")
	const services = 24
	churnUp, churnDown := 20*time.Second, 15*time.Second

	run := func(name string, lease time.Duration, uddi bool) {
		w := sim.NewWorld(sim.Config{Seed: seed})
		var seeds []wire.PeerInfo
		var fed *sim.RegistryHandle
		var central *sim.CentralHandle
		if uddi {
			central = w.AddCentral("lan0", "uddi")
			seeds = []wire.PeerInfo{central.PeerInfo()}
		} else {
			fed = w.AddRegistry("lan0", "r0", fastRegistry())
			seeds = []wire.PeerInfo{fed.PeerInfo()}
		}
		_ = fed
		churn := workload.NewChurn(churnUp, churnDown, seed+7)
		var svcs []*sim.ServiceHandle
		for i := 0; i < services; i++ {
			svcs = append(svcs, w.AddService("lan0", fmt.Sprintf("s%d", i),
				fastService(lease, seeds...),
				w.SemanticProfile(fmt.Sprintf("urn:svc:%d", i), categoryFor(i))))
		}
		cli := w.AddClient("lan0", "c0", fastClient(seeds...))
		w.Run(5 * time.Second)
		// Drive churn: each service alternates up/down. Down = crash
		// (no deregistration); up = a fresh service node with the same
		// ServiceIRI (a restart).
		type churnState struct{ idx int }
		for i := range svcs {
			i := i
			var down func()
			var up func()
			down = func() {
				svcs[i].Crash()
				w.Net.Schedule(w.Net.Now().Add(churn.NextDown()), up)
			}
			up = func() {
				svcs[i] = w.AddService("lan0", fmt.Sprintf("s%d-re%d", i, w.Gen.New()[0]),
					fastService(lease, seeds...),
					w.SemanticProfile(fmt.Sprintf("urn:svc:%d", i), categoryFor(i)))
				w.Net.Schedule(w.Net.Now().Add(churn.NextUp()), down)
			}
			w.Net.Schedule(w.Net.Now().Add(churn.NextUp()), down)
		}
		_ = churnState{}
		w.Net.ResetStats()
		staleSum, missSum, probes := 0.0, 0.0, 0
		for step := 0; step < 20; step++ {
			w.Run(5 * time.Second)
			out := cli.Query(w.SemanticSpec(sim.C("Service"), 0), 10*time.Second)
			if !out.Completed {
				continue
			}
			probes++
			staleSum += w.StaleFraction(out.Adverts)
			// missing = up services not returned.
			up := 0
			for _, s := range svcs {
				if w.Net.IsUp(s.Addr) {
					up++
				}
			}
			found := distinctServices(w, out.Adverts)
			if up > 0 {
				miss := float64(up-found) / float64(up)
				if miss < 0 {
					miss = 0
				}
				missSum += miss
			}
		}
		s := w.Net.Stats()
		leaseStr := lease.String()
		if uddi {
			leaseStr = "none"
		}
		t.AddRow(name, leaseStr, staleSum/float64(probes), missSum/float64(probes),
			s.ByCategory[wire.CatPublishing].Messages)
	}

	run("uddi-baseline", time.Minute, true)
	for _, l := range leases {
		run("federated+lease", l, false)
	}
	t.AddNote("%d services, exp churn up=%v down=%v, 100s measured", services, churnUp, churnDown)
	return t
}

// E5Matchmaking compares matcher quality on a generated taxonomy (§1,
// §4.2: semantics enable precise selection; string matching misses
// subtype matches). Precision/recall against subsumption ground truth.
func E5Matchmaking(depth, branching, population, queries int, seed int64) *metrics.Table {
	t := metrics.NewTable("E5 matchmaking quality (§4.2)",
		"matcher", "precision", "recall", "F1")
	onto, levels := workload.GenOntology(workload.OntologySpec{Depth: depth, Branching: branching})
	leaves := levels[len(levels)-1]
	// Services live mostly at the leaves with some at the level above,
	// so the degree-floor ablation has more-general services to admit.
	classPool := append(append([]ontology.Class{}, leaves...), levels[len(levels)-2]...)
	pop := workload.GenProfiles(workload.PopulationSpec{N: population, Classes: classPool, Seed: seed, OntologyIRI: onto.IRI})
	mix := workload.NewQueryMix(onto, leaves, 0.5, seed+1)
	matcher := match.New(onto)

	type counts struct{ tp, fp, fn float64 }
	tally := map[string]*counts{"semantic": {}, "semantic-subsumed": {}, "uri-exact": {}, "keyword": {}}
	score := func(name string, requested map[string]bool, returned map[string]bool) {
		c := tally[name]
		for iri := range returned {
			if requested[iri] {
				c.tp++
			} else {
				c.fp++
			}
		}
		for iri := range requested {
			if !returned[iri] {
				c.fn++
			}
		}
	}
	for q := 0; q < queries; q++ {
		cat, _ := mix.Next()
		truth := workload.Relevant(onto, cat, pop)
		// Semantic matcher with a PlugIn floor.
		sem := map[string]bool{}
		tpl := &profile.Template{Category: cat}
		for _, p := range pop {
			if r := matcher.Match(tpl, p); r.Matches(match.PlugIn) {
				sem[p.ServiceIRI] = true
			}
		}
		score("semantic", truth, sem)
		// Semantic with a permissive Subsumed floor: also returns
		// services more general than requested. Higher reach, lower
		// precision against the strict "specialization only" ground
		// truth — the MinDegree knob's trade-off.
		semLoose := map[string]bool{}
		for _, p := range pop {
			if r := matcher.Match(tpl, p); r.Matches(match.Subsumed) {
				semLoose[p.ServiceIRI] = true
			}
		}
		score("semantic-subsumed", truth, semLoose)
		// URI/string exact equality (UDDI, WS-Discovery, DHT behaviour).
		uri := map[string]bool{}
		for _, p := range pop {
			if p.Category == cat {
				uri[p.ServiceIRI] = true
			}
		}
		score("uri-exact", truth, uri)
		// Keyword matching on names/descriptions.
		kw := map[string]bool{}
		words := []string{localWord(string(cat))}
		for _, p := range pop {
			if workload.KeywordMatch(words, p) {
				kw[p.ServiceIRI] = true
			}
		}
		score("keyword", truth, kw)
	}
	for _, name := range []string{"semantic", "semantic-subsumed", "uri-exact", "keyword"} {
		c := tally[name]
		prec := safeDiv(c.tp, c.tp+c.fp)
		rec := safeDiv(c.tp, c.tp+c.fn)
		t.AddRow(name, prec, rec, safeDiv(2*prec*rec, prec+rec))
	}
	t.AddNote("taxonomy d=%d b=%d, %d services, %d queries (50%% broad)", depth, branching, population, queries)
	return t
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func localWord(iri string) string {
	for i := len(iri) - 1; i >= 0; i-- {
		if iri[i] == '#' || iri[i] == '/' {
			return iri[i+1:]
		}
	}
	return iri
}

// E8PayloadSize quantifies "semantic service advertisements can become
// quite large, compared to for example URI strings" (§2) and the value
// of the compression hook the next-header field enables.
func E8PayloadSize(population int, seed int64) *metrics.Table {
	t := metrics.NewTable("E8 advertisement payload sizes (§2)",
		"encoding", "bytes/advert", "vs-URI")
	onto, levels := workload.GenOntology(workload.OntologySpec{Depth: 4, Branching: 3})
	pop := workload.GenProfiles(workload.PopulationSpec{
		N: population, Classes: levels[len(levels)-1], Seed: seed, OntologyIRI: onto.IRI,
	})
	var uriTotal, kvTotal, semTotal, rdfTotal, flateTotal int
	for i, p := range pop {
		uri := &describe.URIDescription{
			TypeURI: string(p.Category), ServiceURI: p.ServiceIRI, Name: p.Name, Addr: p.Grounding,
		}
		uriTotal += len(uri.Encode())
		kv := &describe.KVDescription{
			ServiceURI: p.ServiceIRI, Name: p.Name, TypeURI: string(p.Category),
			Attrs: map[string]string{"accuracy": fmt.Sprintf("%.2f", p.QoS["accuracy"])},
			Addr:  p.Grounding,
		}
		kvTotal += len(kv.Encode())
		semTotal += len(p.Encode())
		doc := rdf.EncodeNTriples(p.ToGraph())
		rdfTotal += len(doc)
		var buf bytes.Buffer
		fw, _ := flate.NewWriter(&buf, flate.BestCompression)
		fw.Write([]byte(doc))
		fw.Close()
		flateTotal += buf.Len()
		_ = i
	}
	n := float64(population)
	uriMean := float64(uriTotal) / n
	add := func(name string, total int) {
		mean := float64(total) / n
		t.AddRow(name, fmt.Sprintf("%.0f", mean), metrics.Ratio(mean, uriMean))
	}
	add("uri", uriTotal)
	add("kv-template", kvTotal)
	add("semantic-binary", semTotal)
	add("semantic-rdf", rdfTotal)
	add("semantic-rdf+flate", flateTotal)
	t.AddNote("%d generated profiles", population)
	return t
}
