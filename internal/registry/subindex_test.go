package registry

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"semdisco/internal/describe"
	"semdisco/internal/lease"
	"semdisco/internal/profile"
	"semdisco/internal/uuid"
	"semdisco/internal/wire"
)

// --- indexed vs linear-scan baseline equivalence -----------------------

// subOp is one step of a generated pub/sub history, replayed against an
// indexed store and a DisableSubIndex baseline.
type subOp struct {
	kind    int // 0 publish, 1 subscribe, 2 unsubscribe, 3 prune+expire, 4 renewSub
	adv     wire.Advertisement
	subID   uuid.UUID
	subKind describe.Kind
	payload []byte
	expires time.Time
	advance time.Duration
}

// TestSubIndexMatchesLinearScan is the correctness property of the
// inverted notification index: under interleaved publishes, subscribes,
// unsubscribes, subscription renewals (with changed queries) and lease
// expiry, the indexed store must emit notification sequences identical
// to the linear-scan baseline.
func TestSubIndexMatchesLinearScan(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			onto := testOntology(t)
			mkStore := func(disable bool) *Store {
				models := describe.NewRegistry(describe.URIModel{}, describe.KVModel{}, describe.NewSemanticModel(onto))
				return New(Options{
					Models:          models,
					Leases:          lease.Policy{Min: time.Second, Max: time.Hour, Default: 30 * time.Second},
					DisableSubIndex: disable,
					ArenaSlab:       8, // tiny slabs: exercise slab growth too
				})
			}
			indexed, scan := mkStore(false), mkStore(true)

			rng := rand.New(rand.NewSource(seed))
			idgen := uuid.NewGenerator(uint64(seed))
			cats := []string{"Device", "Sensor", "Radar", "Camera", "Observation", "Track"}
			// Undeclared categories exercise the string-token fallback on
			// both the advert and subscription side.
			undeclared := []string{"Ghost", "Phantom"}
			var liveSubs []uuid.UUID

			randQuery := func() (describe.Kind, []byte) {
				switch rng.Intn(6) {
				case 0, 1:
					return describe.KindSemantic, semQuery(cats[rng.Intn(len(cats))])
				case 2:
					return describe.KindSemantic, semQuery(undeclared[rng.Intn(len(undeclared))])
				case 3:
					return describe.KindURI, (&describe.URIQuery{TypeURI: fmt.Sprintf("urn:type:%d", rng.Intn(4))}).Encode()
				case 4:
					return describe.KindKV, (&describe.KVQuery{TypeURI: fmt.Sprintf("urn:type:%d", rng.Intn(4))}).Encode()
				default:
					// Attribute-only KV query: not prunable, a catch-all sub.
					return describe.KindKV, (&describe.KVQuery{Attrs: map[string]string{"zone": fmt.Sprintf("z%d", rng.Intn(3))}}).Encode()
				}
			}
			randAdvert := func(i int) wire.Advertisement {
				leaseDur := time.Duration(1+rng.Intn(90)) * time.Second
				switch rng.Intn(6) {
				case 0, 1, 2:
					cat := cats[rng.Intn(len(cats))]
					if rng.Intn(5) == 0 {
						cat = undeclared[rng.Intn(len(undeclared))]
					}
					p := &profile.Profile{ServiceIRI: fmt.Sprintf("urn:svc:s%d", i), Category: c(cat), Grounding: "urn:g"}
					return wire.Advertisement{ID: idgen.New(), Provider: idgen.New(), ProviderAddr: "a",
						Kind: describe.KindSemantic, Payload: p.Encode(),
						LeaseMillis: uint64(leaseDur / time.Millisecond), Version: 1}
				case 3:
					d := &describe.URIDescription{TypeURI: fmt.Sprintf("urn:type:%d", rng.Intn(4)),
						ServiceURI: fmt.Sprintf("urn:svc:u%d", i), Name: "u", Addr: "a"}
					return wire.Advertisement{ID: idgen.New(), Provider: idgen.New(), ProviderAddr: "a",
						Kind: describe.KindURI, Payload: d.Encode(),
						LeaseMillis: uint64(leaseDur / time.Millisecond), Version: 1}
				case 4:
					d := &describe.KVDescription{ServiceURI: fmt.Sprintf("urn:svc:k%d", i), Name: "k",
						TypeURI: fmt.Sprintf("urn:type:%d", rng.Intn(4)),
						Attrs:   map[string]string{"zone": fmt.Sprintf("z%d", rng.Intn(3))}, Addr: "a"}
					return wire.Advertisement{ID: idgen.New(), Provider: idgen.New(), ProviderAddr: "a",
						Kind: describe.KindKV, Payload: d.Encode(),
						LeaseMillis: uint64(leaseDur / time.Millisecond), Version: 1}
				default:
					// Token-less KV advert: forces the full fallback scan.
					d := &describe.KVDescription{ServiceURI: fmt.Sprintf("urn:svc:k%d", i), Name: "free",
						Attrs: map[string]string{"zone": fmt.Sprintf("z%d", rng.Intn(3))}, Addr: "a"}
					return wire.Advertisement{ID: idgen.New(), Provider: idgen.New(), ProviderAddr: "a",
						Kind: describe.KindKV, Payload: d.Encode(),
						LeaseMillis: uint64(leaseDur / time.Millisecond), Version: 1}
				}
			}

			// Generate the op stream once so both stores replay the exact
			// same history (IDs included).
			ops := make([]subOp, 0, 400)
			for i := 0; i < 400; i++ {
				switch r := rng.Intn(10); {
				case r < 4: // publish
					ops = append(ops, subOp{kind: 0, adv: randAdvert(i)})
				case r < 7: // subscribe
					k, payload := randQuery()
					var exp time.Time
					if rng.Intn(3) == 0 {
						exp = t0.Add(time.Duration(1+rng.Intn(120)) * time.Second)
					}
					id := idgen.New()
					liveSubs = append(liveSubs, id)
					ops = append(ops, subOp{kind: 1, subID: id, subKind: k, payload: payload, expires: exp})
				case r < 8 && len(liveSubs) > 0: // unsubscribe
					j := rng.Intn(len(liveSubs))
					ops = append(ops, subOp{kind: 2, subID: liveSubs[j]})
					liveSubs = append(liveSubs[:j], liveSubs[j+1:]...)
				case r < 9: // advance time, prune subs, expire adverts
					ops = append(ops, subOp{kind: 3, advance: time.Duration(rng.Intn(20)) * time.Second})
				case len(liveSubs) > 0: // renew an existing sub with a fresh query
					k, payload := randQuery()
					ops = append(ops, subOp{kind: 4, subID: liveSubs[rng.Intn(len(liveSubs))],
						subKind: k, payload: payload, expires: t0.Add(time.Duration(1+rng.Intn(300)) * time.Second)})
				}
			}

			replay := func(s *Store) []string {
				var trace []string
				now := t0
				for _, op := range ops {
					switch op.kind {
					case 0:
						_, notes, err := s.Publish(op.adv, now)
						if err != nil {
							t.Fatal(err)
						}
						for _, n := range notes {
							trace = append(trace, fmt.Sprintf("%v->%v@%s", op.adv.ID, n.SubID, n.NotifyAddr))
						}
					case 1:
						if _, err := s.Subscribe(op.subKind, op.payload, "addr/"+op.subID.String(), op.subID, op.expires); err != nil {
							t.Fatal(err)
						}
					case 2:
						s.Unsubscribe(op.subID)
					case 3:
						now = now.Add(op.advance)
						s.PruneSubscriptions(now)
						s.ExpireThrough(now)
					case 4:
						if _, err := s.Subscribe(op.subKind, op.payload, "addr/"+op.subID.String(), op.subID, op.expires); err != nil {
							t.Fatal(err)
						}
					}
				}
				return trace
			}

			got, want := replay(indexed), replay(scan)
			if len(got) != len(want) {
				t.Fatalf("indexed emitted %d notifications, baseline %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("notification %d: indexed %q, baseline %q", i, got[i], want[i])
				}
			}
			if len(want) == 0 {
				t.Fatal("degenerate run: no notifications exercised")
			}
		})
	}
}

// --- slow match must not stall subscription mutation -------------------

type slowDesc struct{ key string }

func (d slowDesc) Kind() describe.Kind { return describe.Kind(9) }
func (d slowDesc) ServiceKey() string  { return d.key }
func (d slowDesc) Endpoint() string    { return "" }
func (d slowDesc) Encode() []byte      { return []byte(d.key) }

type slowQuery struct{}

func (slowQuery) Kind() describe.Kind { return describe.Kind(9) }
func (slowQuery) Encode() []byte      { return nil }

// slowModel blocks inside Evaluate until released — a stand-in for an
// expensive semantic match.
type slowModel struct {
	started chan struct{}
	release chan struct{}
}

func (m *slowModel) Kind() describe.Kind { return describe.Kind(9) }
func (m *slowModel) Name() string        { return "slow" }
func (m *slowModel) DecodeDescription(b []byte) (describe.Description, error) {
	return slowDesc{key: string(b)}, nil
}
func (m *slowModel) DecodeQuery(b []byte) (describe.Query, error) { return slowQuery{}, nil }
func (m *slowModel) Evaluate(q describe.Query, d describe.Description) describe.Evaluation {
	m.started <- struct{}{}
	<-m.release
	return describe.Evaluation{Matched: true, Degree: 1, Score: 1}
}
func (m *slowModel) SummaryTokens(d describe.Description) []string { return nil }
func (m *slowModel) QueryTokens(q describe.Query) ([]string, bool) { return nil, false }

// TestSlowMatchDoesNotBlockSubscribe pins the satellite fix: Publish
// evaluates standing queries outside subMu, so a slow model match can
// no longer stall Subscribe/Unsubscribe/PruneSubscriptions. Run under
// -race via `make race`.
func TestSlowMatchDoesNotBlockSubscribe(t *testing.T) {
	sm := &slowModel{started: make(chan struct{}), release: make(chan struct{})}
	models := describe.NewRegistry(sm)
	s := New(Options{Models: models, Leases: lease.Policy{Max: time.Hour}})

	if _, err := s.Subscribe(describe.Kind(9), nil, "blockee", gen.New(), time.Time{}); err != nil {
		t.Fatal(err)
	}
	adv := wire.Advertisement{ID: gen.New(), Provider: gen.New(), ProviderAddr: "a",
		Kind: describe.Kind(9), Payload: []byte("svc"), LeaseMillis: 60_000, Version: 1}
	published := make(chan []Notification, 1)
	go func() {
		_, notes, _ := s.Publish(adv, t0)
		published <- notes
	}()
	<-sm.started // Publish is now blocked inside the match

	done := make(chan struct{})
	extra := gen.New()
	go func() {
		if _, err := s.Subscribe(describe.Kind(9), nil, "late", extra, time.Time{}); err != nil {
			t.Error(err)
		}
		s.PruneSubscriptions(t0)
		s.Unsubscribe(extra)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Subscribe/PruneSubscriptions/Unsubscribe stalled behind a slow match")
	}
	close(sm.release)
	if notes := <-published; len(notes) != 1 {
		t.Fatalf("blocked publish lost its notification: %+v", notes)
	}
}

// --- unsubscribe ordering and compaction -------------------------------

// TestUnsubscribeKeepsNotificationOrder removes subscriptions from the
// middle of a large set (enough to trip amortized compaction and the
// posting-list rebuild) and checks the survivors are still notified in
// insertion order.
func TestUnsubscribeKeepsNotificationOrder(t *testing.T) {
	s := newStore(t)
	const n = 200
	ids := make([]uuid.UUID, n)
	for i := range ids {
		ids[i] = gen.New()
		if _, err := s.Subscribe(describe.KindSemantic, semQuery("Sensor"), fmt.Sprintf("sub-%03d", i), ids[i], time.Time{}); err != nil {
			t.Fatal(err)
		}
	}
	// Drop 150 of 200 — past both the compaction and rebuild thresholds.
	for i := 0; i < n; i++ {
		if i%4 != 0 {
			if !s.Unsubscribe(ids[i]) {
				t.Fatalf("Unsubscribe(%d) failed", i)
			}
		}
	}
	if got := s.NumSubscriptions(); got != n/4 {
		t.Fatalf("NumSubscriptions = %d, want %d", got, n/4)
	}
	_, notes, err := s.Publish(semAdvert("urn:svc:r", "Radar", time.Minute), t0)
	if err != nil {
		t.Fatal(err)
	}
	if len(notes) != n/4 {
		t.Fatalf("got %d notifications, want %d", len(notes), n/4)
	}
	for i := 1; i < len(notes); i++ {
		if notes[i-1].NotifyAddr >= notes[i].NotifyAddr {
			t.Fatalf("notification order broken: %s before %s", notes[i-1].NotifyAddr, notes[i].NotifyAddr)
		}
	}
}

// TestSubscriptionRenewalChangesQuery re-subscribes under the same ID
// with a different category and checks the posting lists follow: only
// the new query fires, and the subscription keeps its notify slot.
func TestSubscriptionRenewalChangesQuery(t *testing.T) {
	s := newStore(t)
	id := gen.New()
	if _, err := s.Subscribe(describe.KindSemantic, semQuery("Radar"), "cli", id, time.Time{}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Subscribe(describe.KindSemantic, semQuery("Track"), "cli", id, time.Time{}); err != nil {
		t.Fatal(err)
	}
	_, notes, _ := s.Publish(semAdvert("urn:svc:r", "Radar", time.Minute), t0)
	if len(notes) != 0 {
		t.Fatalf("renewed-away query still fired: %+v", notes)
	}
	_, notes, _ = s.Publish(semAdvert("urn:svc:t", "Track", time.Minute), t0)
	if len(notes) != 1 || notes[0].SubID != id {
		t.Fatalf("renewed query did not fire: %+v", notes)
	}
	if got := s.NumSubscriptions(); got != 1 {
		t.Fatalf("NumSubscriptions = %d after renewal, want 1", got)
	}
}

// TestSubscriptionExpiry checks an expired standing query stops firing
// even before PruneSubscriptions sweeps it.
func TestSubscriptionExpiry(t *testing.T) {
	s := newStore(t)
	id := gen.New()
	if _, err := s.Subscribe(describe.KindSemantic, semQuery("Sensor"), "cli", id, t0.Add(10*time.Second)); err != nil {
		t.Fatal(err)
	}
	later := t0.Add(time.Minute)
	_, notes, _ := s.Publish(semAdvert("urn:svc:r", "Radar", time.Minute), later)
	if len(notes) != 0 {
		t.Fatalf("expired subscription fired: %+v", notes)
	}
	if n := s.PruneSubscriptions(later); n != 1 {
		t.Fatalf("PruneSubscriptions = %d, want 1", n)
	}
	if s.NumSubscriptions() != 0 {
		t.Fatal("pruned subscription still counted")
	}
}

// --- arena and interner ------------------------------------------------

// TestArenaRecyclesSlots publishes and removes adverts through several
// slab generations and checks slots are recycled (no slab growth after
// steady state) while lookups stay correct.
func TestArenaRecyclesSlots(t *testing.T) {
	models := describe.NewRegistry(describe.URIModel{}, describe.KVModel{}, describe.NewSemanticModel(testOntology(t)))
	s := New(Options{Models: models, Leases: lease.Policy{Max: time.Hour}, ArenaSlab: 4, Shards: 1})
	sh := s.shards[0]

	var ids []uuid.UUID
	for i := 0; i < 16; i++ {
		adv := semAdvert(fmt.Sprintf("urn:svc:%d", i), "Radar", time.Hour)
		if _, _, err := s.Publish(adv, t0); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, adv.ID)
	}
	slabsAfterFill := len(sh.slabs)
	if slabsAfterFill != 4 {
		t.Fatalf("16 adverts over slab=4 allocated %d slabs, want 4", slabsAfterFill)
	}
	for _, id := range ids {
		if !s.Remove(id) {
			t.Fatal("Remove failed")
		}
	}
	if len(sh.free) != 16 {
		t.Fatalf("free list holds %d slots, want 16", len(sh.free))
	}
	// Refill: every slot must come from the free list, no new slabs.
	for i := 0; i < 16; i++ {
		adv := semAdvert(fmt.Sprintf("urn:svc:again-%d", i), "Camera", time.Hour)
		if _, _, err := s.Publish(adv, t0); err != nil {
			t.Fatal(err)
		}
	}
	if len(sh.slabs) != slabsAfterFill {
		t.Fatalf("refill grew the arena to %d slabs, want %d", len(sh.slabs), slabsAfterFill)
	}
	if len(sh.free) != 0 {
		t.Fatalf("free list not drained: %d", len(sh.free))
	}
	res, err := s.Evaluate(describe.KindSemantic, semQuery("Camera"), QueryOptions{MaxResults: 100}, t0)
	if err != nil || len(res) != 16 {
		t.Fatalf("post-recycle evaluate = (%d, %v), want 16", len(res), err)
	}
	res, _ = s.Evaluate(describe.KindSemantic, semQuery("Radar"), QueryOptions{MaxResults: 100}, t0)
	// Camera and Radar are sibling leaves: a Radar query reaches Camera
	// adverts only through their shared Sensor ancestor — not at all —
	// so recycled slots must not leak the old Radar categorization.
	if len(res) != 0 {
		t.Fatalf("recycled slots leaked stale descriptions: %d hits", len(res))
	}
}

func TestTokenInterner(t *testing.T) {
	ti := newTokenInterner()
	a := ti.intern("alpha")
	b := ti.intern("beta")
	if a == b {
		t.Fatal("distinct tokens share an ID")
	}
	if got := ti.intern("alpha"); got != a {
		t.Fatal("re-intern changed the ID")
	}
	all := ti.internAll([]string{"alpha", "beta", "alpha", "gamma", "beta"})
	if len(all) != 3 {
		t.Fatalf("internAll kept duplicates: %v", all)
	}
	lk := ti.lookupAll([]string{"alpha", "never-seen", "gamma"})
	if len(lk) != 2 {
		t.Fatalf("lookupAll = %v, want two known tokens", lk)
	}
	if ti.str(a) != "alpha" || ti.str(tok(999)) != "" {
		t.Fatal("str round-trip broken")
	}
	if ti.size() != 3 {
		t.Fatalf("size = %d, want 3", ti.size())
	}
}
