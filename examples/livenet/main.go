// Livenet: the same protocol stack over *real UDP sockets* in one
// process — two registries (federated by unicast seeding, as on a WAN
// without multicast), a service node, and a client. This is the code
// path cmd/registryd and cmd/sdctl deploy across machines.
//
//	go run ./examples/livenet
package main

import (
	"fmt"
	"log"
	"time"

	"semdisco/internal/describe"
	"semdisco/internal/discovery"
	"semdisco/internal/federation"
	"semdisco/internal/lease"
	"semdisco/internal/node"
	"semdisco/internal/ontology"
	"semdisco/internal/profile"
	"semdisco/internal/registry"
	"semdisco/internal/runtime"
	"semdisco/internal/sim"
	"semdisco/internal/transport"
	"semdisco/internal/transport/udpnet"
	"semdisco/internal/uuid"
)

func main() {
	onto := sim.DefaultOntology()
	models := describe.NewRegistry(describe.URIModel{}, describe.KVModel{}, describe.NewSemanticModel(onto))

	// --- two federated registries on loopback UDP ---
	reg1, addr1 := startRegistry(models, onto, nil)
	reg2, addr2 := startRegistry(models, onto, []string{string(addr1)})
	defer reg1.stop()
	defer reg2.stop()
	fmt.Printf("registries: %s and %s (federated by unicast seeding)\n", addr1, addr2)

	// --- a service node publishing to registry 1 ---
	svcIO := listen()
	defer svcIO.Close()
	svcEnv := &runtime.Env{ID: uuid.New(), Iface: svcIO, Clock: svcIO}
	prof := &profile.Profile{
		ServiceIRI: "urn:svc:live-radar",
		Name:       "Live radar",
		Category:   ontology.Class(onto.IRI + "RadarFeed"),
		Grounding:  "udp://127.0.0.1:9999/radar",
	}
	svc := node.NewService(svcEnv, models, node.ServiceConfig{
		Lease:     10 * time.Second,
		Bootstrap: discovery.Config{SeedAddrs: []string{string(addr1)}, ProbeInterval: 300 * time.Millisecond},
	}, &describe.SemanticDescription{Profile: prof})
	svcIO.SetHandler(func(from transport.Addr, data []byte) { runtime.Dispatch(svc, svcEnv, from, data) })
	svcIO.Do(svc.Start)

	// --- a client seeded with registry 2 only ---
	cliIO := listen()
	defer cliIO.Close()
	cliEnv := &runtime.Env{ID: uuid.New(), Iface: cliIO, Clock: cliIO}
	cli := node.NewClient(cliEnv, node.ClientConfig{
		Models:    models,
		Bootstrap: discovery.Config{SeedAddrs: []string{string(addr2)}, ProbeInterval: 300 * time.Millisecond},
	})
	cliIO.SetHandler(func(from transport.Addr, data []byte) { runtime.Dispatch(cli, cliEnv, from, data) })
	cliIO.Do(cli.Start)

	// Let the real clocks tick: discovery, publication, federation.
	time.Sleep(1500 * time.Millisecond)

	// The client asks registry 2 for SensorFeeds with a WAN scope of 1;
	// the query is forwarded to registry 1 where the radar lives.
	q := &describe.SemanticQuery{Template: &profile.Template{
		Category: ontology.Class(onto.IRI + "SensorFeed"),
	}}
	done := make(chan node.QueryResult, 1)
	cliIO.Do(func() {
		cli.Query(node.QuerySpec{
			Kind: describe.KindSemantic, Payload: q.Encode(), TTL: 1,
		}, func(r node.QueryResult) { done <- r })
	})
	select {
	case r := <-done:
		fmt.Printf("query answered via %s with %d result(s):\n", r.Via, len(r.Adverts))
		for _, a := range r.Adverts {
			p, err := profile.Decode(a.Payload)
			if err != nil {
				continue
			}
			fmt.Printf("  %s -> %s\n", p.Name, p.Grounding)
		}
	case <-time.After(10 * time.Second):
		log.Fatal("livenet: query timed out")
	}
}

type regHandle struct {
	io  *udpnet.Node
	reg *federation.Registry
}

func (h regHandle) stop() {
	h.io.Do(h.reg.Stop)
	h.io.Close()
}

func startRegistry(models *describe.Registry, onto *ontology.Ontology, seeds []string) (regHandle, transport.Addr) {
	io := listen()
	env := &runtime.Env{ID: uuid.New(), Iface: io, Clock: io}
	store := registry.New(registry.Options{Models: models, Leases: lease.Policy{}})
	reg := federation.New(env, store, federation.Config{
		BeaconInterval: time.Second,
		SeedAddrs:      seeds,
	})
	io.SetHandler(func(from transport.Addr, data []byte) { runtime.Dispatch(reg, env, from, data) })
	io.Do(reg.Start)
	return regHandle{io: io, reg: reg}, io.Addr()
}

func listen() *udpnet.Node {
	n, err := udpnet.Listen(udpnet.Config{Bind: "127.0.0.1:0"})
	if err != nil {
		log.Fatalf("livenet: %v", err)
	}
	return n
}
