// Package core is the library façade: it assembles the paper's
// conceptual service discovery architecture — federated registries,
// leased advertisements, pluggable description models, semantic
// matchmaking, LAN/WAN registry discovery with decentralized fallback —
// into a single embeddable API.
//
// A System hosts any number of registry, service and client nodes on a
// deterministic in-memory network (the experiments' substrate). The
// same protocol state machines also run over real UDP via cmd/registryd
// and cmd/sdctl; core exists so applications and the examples/ programs
// can use the architecture as a library without touching wire-level
// types.
//
// Minimal usage:
//
//	sys := core.NewSystem(core.Options{})
//	sys.StartRegistry("hq", core.RegistryOptions{})
//	sys.StartService("hq", core.ServiceOptions{
//	    Profile: core.ServiceProfile{IRI: "urn:svc:radar-1", Category: sys.Class("RadarFeed"),
//	        Endpoint: "udp://10.0.0.1:99"},
//	})
//	cli := sys.StartClient("hq", core.ClientOptions{})
//	hits, _ := cli.Find(core.Query{Category: sys.Class("SensorFeed")})
package core

import (
	"errors"
	"fmt"
	"time"

	"semdisco/internal/describe"
	"semdisco/internal/federation"
	"semdisco/internal/match"
	"semdisco/internal/node"
	"semdisco/internal/ontology"
	"semdisco/internal/profile"
	"semdisco/internal/rdf"
	"semdisco/internal/sim"
	"semdisco/internal/transport"
	"semdisco/internal/wire"
)

// Class re-exports the ontology class type so applications can use the
// façade without importing internal/ontology directly.
type Class = ontology.Class

// Options configures a System.
type Options struct {
	// Seed makes the whole system deterministic; 0 uses 1.
	Seed int64
	// Ontology is the shared semantic model. Nil installs the built-in
	// sensor/service taxonomy (see sim.DefaultOntology).
	Ontology *ontology.Ontology
}

// System is one embedded discovery deployment.
type System struct {
	world *sim.World
}

// NewSystem builds an empty system.
func NewSystem(opts Options) *System {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	return &System{world: sim.NewWorld(sim.Config{Seed: opts.Seed, Onto: opts.Ontology})}
}

// World exposes the underlying simulation for advanced scenarios
// (failure injection, traffic accounting).
func (s *System) World() *sim.World { return s.world }

// Ontology returns the shared semantic model.
func (s *System) Ontology() *ontology.Ontology { return s.world.Onto }

// Class resolves a local class name in the system ontology's namespace.
// It panics on unknown classes, turning typos into immediate failures.
func (s *System) Class(localName string) ontology.Class {
	c := ontology.Class(s.world.Onto.IRI + localName)
	if !s.world.Onto.HasClass(c) {
		panic(fmt.Sprintf("core: class %q not in ontology %s", localName, s.world.Onto.IRI))
	}
	return c
}

// Step advances the system clock, letting beacons, leases, renewals and
// federation maintenance run.
func (s *System) Step(d time.Duration) { s.world.Run(d) }

// RegistryOptions tunes a registry node.
type RegistryOptions struct {
	// BeaconInterval for passive discovery; default 5 s.
	BeaconInterval time.Duration
	// Federate lists other registries to seed (WAN connections);
	// same-LAN registries find each other automatically.
	Federate []*Registry
	// GatewayCoordination elects one WAN gateway per LAN.
	GatewayCoordination bool
	// PushReplication replicates advertisements to peer registries.
	PushReplication bool
	// SummaryPruning prunes query forwarding by advertisement
	// summaries.
	SummaryPruning bool
}

// Registry is a handle to a running registry node.
type Registry struct {
	h *sim.RegistryHandle
}

// StartRegistry deploys a federated registry on the named LAN segment.
func (s *System) StartRegistry(lan string, opts RegistryOptions) *Registry {
	cfg := federation.Config{
		BeaconInterval:      opts.BeaconInterval,
		GatewayCoordination: opts.GatewayCoordination,
		PushReplication:     opts.PushReplication,
		SummaryPruning:      opts.SummaryPruning,
	}
	for _, r := range opts.Federate {
		cfg.Seeds = append(cfg.Seeds, r.h.PeerInfo())
	}
	name := fmt.Sprintf("registry-%d", len(s.world.Registries))
	h := s.world.AddRegistry(lan, name, cfg)
	return &Registry{h: h}
}

// Crash abruptly fails the registry (no departure message).
func (r *Registry) Crash() { r.h.Crash() }

// Addr returns the registry's simulated transport address (used with
// System.World for failure/partition injection).
func (r *Registry) Addr() transport.Addr { return r.h.Addr }

// NumAdvertisements reports how many advertisements the registry holds.
func (r *Registry) NumAdvertisements() int { return r.h.Reg.Store().Len() }

// IsGateway reports whether this registry holds its LAN's WAN-gateway
// role.
func (r *Registry) IsGateway() bool { return r.h.Reg.IsGateway() }

// PublishOntology stores an ontology document in the registry's
// artifact repository under its IRI (§4.6).
func (r *Registry) PublishOntology(o *ontology.Ontology) {
	r.h.Reg.Store().PutArtifact(o.IRI, []byte(ontologyTurtle(o)))
}

// ServiceProfile describes one service for publication.
type ServiceProfile struct {
	// IRI uniquely identifies the service.
	IRI string
	// Name and Description are human-readable.
	Name        string
	Description string
	// Category is the service's ontology concept.
	Category ontology.Class
	// Inputs and Outputs are the consumed/produced concepts.
	Inputs, Outputs []ontology.Class
	// QoS attributes (matched against query minimums).
	QoS map[string]float64
	// Endpoint is the invocation address handed to discoverers.
	Endpoint string
	// Coverage optionally limits the geographic area (lat, lon,
	// radius km).
	Coverage *profile.Circle
}

func (p ServiceProfile) toProfile(ontoIRI string) (*profile.Profile, error) {
	pp := &profile.Profile{
		ServiceIRI:  p.IRI,
		Name:        p.Name,
		Text:        p.Description,
		Category:    p.Category,
		Inputs:      p.Inputs,
		Outputs:     p.Outputs,
		QoS:         p.QoS,
		Grounding:   p.Endpoint,
		Coverage:    p.Coverage,
		OntologyIRI: ontoIRI,
	}
	if err := pp.Validate(); err != nil {
		return nil, err
	}
	return pp, nil
}

// ServiceOptions configures a service node.
type ServiceOptions struct {
	// Profile is the semantic description to publish (rich tier).
	Profile ServiceProfile
	// Lease is the advertisement lease to request; default 30 s.
	Lease time.Duration
}

// Service is a handle to a running service node.
type Service struct {
	h   *sim.ServiceHandle
	sys *System
}

// StartService deploys a service node publishing the given profile.
// The node discovers registries itself and maintains its lease.
func (s *System) StartService(lan string, opts ServiceOptions) (*Service, error) {
	pp, err := opts.Profile.toProfile(s.world.Onto.IRI)
	if err != nil {
		return nil, err
	}
	cfg := node.ServiceConfig{Lease: opts.Lease}
	name := fmt.Sprintf("service-%d", len(s.world.Services))
	h := s.world.AddService(lan, name, cfg, &describe.SemanticDescription{Profile: pp})
	return &Service{h: h, sys: s}, nil
}

// Crash abruptly fails the service; its advertisements age out of
// registries by lease expiry.
func (sv *Service) Crash() { sv.h.Crash() }

// Stop deregisters gracefully.
func (sv *Service) Stop() { sv.h.Svc.Stop() }

// Addr returns the service node's simulated transport address.
func (sv *Service) Addr() transport.Addr { return sv.h.Addr }

// Update republishes the service with changed content (bumps the
// advertisement version).
func (sv *Service) Update(p ServiceProfile) error {
	pp, err := p.toProfile(sv.sys.world.Onto.IRI)
	if err != nil {
		return err
	}
	if !sv.h.Svc.UpdateDescription(&describe.SemanticDescription{Profile: pp}) {
		return errors.New("core: no published description with that IRI")
	}
	return nil
}

// ClientOptions configures a client node.
type ClientOptions struct{}

// Client is a handle to a running client node.
type Client struct {
	h   *sim.ClientHandle
	sys *System
}

// StartClient deploys a client node on the named LAN.
func (s *System) StartClient(lan string, _ ClientOptions) *Client {
	name := fmt.Sprintf("client-%d", len(s.world.Clients))
	h := s.world.AddClient(lan, name, node.ClientConfig{})
	return &Client{h: h, sys: s}
}

// Query is a semantic service request.
type Query struct {
	// Category restricts results to services whose category the
	// requested concept subsumes (or relates to, per MinDegree).
	Category ontology.Class
	// RequiredOutputs/ProvidedInputs/MinQoS/Near follow the profile
	// template semantics.
	RequiredOutputs []ontology.Class
	ProvidedInputs  []ontology.Class
	MinQoS          map[string]float64
	Near            *profile.Point
	// MinDegree is the weakest acceptable match; default Subsumed.
	MinDegree match.Degree
	// MaxResults caps the results (registry-side); 0 = registry
	// default. BestOnly returns a single winner.
	MaxResults int
	BestOnly   bool
	// Scope is the WAN forwarding TTL (0 = local registry only).
	Scope uint8
	// Timeout bounds the whole discovery; default 10 s.
	Timeout time.Duration
}

// Hit is one discovered service.
type Hit struct {
	// ServiceIRI identifies the service.
	ServiceIRI string
	// Name is its display name.
	Name string
	// Category is its ontology concept.
	Category ontology.Class
	// Endpoint is where to invoke it.
	Endpoint string
	// Profile is the full decoded description.
	Profile *profile.Profile
}

// Via reports which mechanism served the query.
type Via = node.Via

// Result provenance re-exported for callers.
const (
	ViaNone     = node.ViaNone
	ViaRegistry = node.ViaRegistry
	ViaFallback = node.ViaFallback
)

// Find runs a discovery query, driving the system clock until the
// answer arrives (registry path, failover, or decentralized fallback).
func (c *Client) Find(q Query) ([]Hit, Via, error) {
	tpl := &profile.Template{
		Category:        q.Category,
		RequiredOutputs: q.RequiredOutputs,
		ProvidedInputs:  q.ProvidedInputs,
		MinQoS:          q.MinQoS,
		Near:            q.Near,
	}
	sq := &describe.SemanticQuery{Template: tpl, MinDegree: q.MinDegree}
	spec := node.QuerySpec{
		Kind:       describe.KindSemantic,
		Payload:    sq.Encode(),
		MaxResults: q.MaxResults,
		BestOnly:   q.BestOnly,
		TTL:        q.Scope,
	}
	timeout := q.Timeout
	if timeout == 0 {
		timeout = 10 * time.Second
	}
	out := c.h.Query(spec, timeout)
	if !out.Completed {
		return nil, ViaNone, errors.New("core: query did not complete within the timeout")
	}
	hits := make([]Hit, 0, len(out.Adverts))
	for _, a := range out.Adverts {
		p, err := profile.Decode(a.Payload)
		if err != nil {
			continue
		}
		hits = append(hits, Hit{
			ServiceIRI: p.ServiceIRI,
			Name:       p.Name,
			Category:   p.Category,
			Endpoint:   p.Grounding,
			Profile:    p,
		})
	}
	return hits, out.Via, nil
}

// Watch registers a standing query at the client's registry: onHit
// fires for every matching service published from now on. The returned
// cancel function withdraws the subscription; it is also safe to call
// after the system stops. Watch returns an error when the client knows
// no registry (standing queries need one).
func (c *Client) Watch(q Query, onHit func(Hit)) (cancel func(), err error) {
	tpl := &profile.Template{
		Category:        q.Category,
		RequiredOutputs: q.RequiredOutputs,
		ProvidedInputs:  q.ProvidedInputs,
		MinQoS:          q.MinQoS,
		Near:            q.Near,
	}
	sq := &describe.SemanticQuery{Template: tpl, MinDegree: q.MinDegree}
	sub := c.h.Cli.Subscribe(node.QuerySpec{
		Kind:    describe.KindSemantic,
		Payload: sq.Encode(),
	}, 0, func(a wire.Advertisement) {
		p, err := profile.Decode(a.Payload)
		if err != nil {
			return
		}
		onHit(Hit{
			ServiceIRI: p.ServiceIRI,
			Name:       p.Name,
			Category:   p.Category,
			Endpoint:   p.Grounding,
			Profile:    p,
		})
	})
	if sub == nil {
		return nil, errors.New("core: no registry available for a standing query")
	}
	return sub.Cancel, nil
}

// FetchOntology retrieves an ontology document from the registry
// network's artifact repository and parses it.
func (c *Client) FetchOntology(iri string) (*ontology.Ontology, error) {
	var doc []byte
	var ok, done bool
	c.h.Cli.FetchArtifact(iri, 2*time.Second, func(d []byte, o bool) { doc, ok, done = d, o, true })
	deadline := c.sys.world.Net.Now().Add(5 * time.Second)
	for !done && c.sys.world.Net.Now().Before(deadline) {
		c.sys.world.Run(50 * time.Millisecond)
	}
	if !done || !ok {
		return nil, fmt.Errorf("core: ontology %s not resolvable", iri)
	}
	return ontology.FromTurtle(iri, string(doc))
}

// KnowsRegistry reports whether the client currently has a registry
// connection point.
func (c *Client) KnowsRegistry() bool {
	_, ok := c.h.Cli.Bootstrapper().Current()
	return ok
}

// Addr returns the client node's simulated transport address.
func (c *Client) Addr() transport.Addr { return c.h.Addr }

func ontologyTurtle(o *ontology.Ontology) string {
	// N-Triples is a Turtle subset, so this stays parseable by
	// ontology.FromTurtle.
	g := o.ToGraph()
	return rdf.EncodeNTriples(g)
}
