package rdf

import (
	"testing"
)

func taxonomy(t *testing.T) *Graph {
	t.Helper()
	g, err := ParseTurtle(`
@prefix ex: <http://example.org/> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
@prefix owl: <http://www.w3.org/2002/07/owl#> .

ex:Radar rdfs:subClassOf ex:Sensor .
ex:Sensor rdfs:subClassOf ex:Device .
ex:Device rdfs:subClassOf owl:Thing .
ex:coastalRadar a ex:Radar .

ex:detects rdfs:subPropertyOf ex:observes .
ex:observes rdfs:subPropertyOf ex:relatesTo .
ex:coastalRadar ex:detects ex:vessel1 .

ex:operates rdfs:domain ex:Operator ;
            rdfs:range ex:Device .
ex:alice ex:operates ex:coastalRadar .

ex:RadarStation owl:equivalentClass ex:Radar .
`)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestInferSubClassTransitivity(t *testing.T) {
	g := taxonomy(t)
	InferRDFS(g)
	if !g.Has(Triple{radar, IRI(RDFSSubClassOf), IRI(ex + "Device")}) {
		t.Fatal("rdfs11: Radar ⊑ Device not inferred")
	}
	if !g.Has(Triple{radar, IRI(RDFSSubClassOf), IRI(OWLThing)}) {
		t.Fatal("rdfs11: Radar ⊑ Thing not inferred")
	}
}

func TestInferTypePropagation(t *testing.T) {
	g := taxonomy(t)
	InferRDFS(g)
	cr := IRI(ex + "coastalRadar")
	for _, class := range []string{"Radar", "Sensor", "Device"} {
		if !g.Has(Triple{cr, IRI(RDFType), IRI(ex + class)}) {
			t.Errorf("rdfs9: coastalRadar type %s not inferred", class)
		}
	}
}

func TestInferSubPropertyChain(t *testing.T) {
	g := taxonomy(t)
	InferRDFS(g)
	cr, v := IRI(ex+"coastalRadar"), IRI(ex+"vessel1")
	if !g.Has(Triple{cr, IRI(ex + "observes"), v}) {
		t.Fatal("rdfs7: detects ⇒ observes not inferred")
	}
	if !g.Has(Triple{cr, IRI(ex + "relatesTo"), v}) {
		t.Fatal("rdfs5+7: detects ⇒ relatesTo not inferred transitively")
	}
}

func TestInferDomainRange(t *testing.T) {
	g := taxonomy(t)
	InferRDFS(g)
	if !g.Has(Triple{IRI(ex + "alice"), IRI(RDFType), IRI(ex + "Operator")}) {
		t.Fatal("rdfs2: domain type not inferred")
	}
	if !g.Has(Triple{IRI(ex + "coastalRadar"), IRI(RDFType), IRI(ex + "Device")}) {
		t.Fatal("rdfs3: range type not inferred")
	}
}

func TestInferEquivalentClass(t *testing.T) {
	g := taxonomy(t)
	InferRDFS(g)
	rs := IRI(ex + "RadarStation")
	if !g.Has(Triple{rs, IRI(RDFSSubClassOf), radar}) || !g.Has(Triple{radar, IRI(RDFSSubClassOf), rs}) {
		t.Fatal("owl:equivalentClass not expanded to mutual subClassOf")
	}
	// Equivalence must propagate up the hierarchy too.
	if !g.Has(Triple{rs, IRI(RDFSSubClassOf), sensor}) {
		t.Fatal("equivalent class did not inherit superclasses")
	}
}

func TestInferRangeSkipsLiterals(t *testing.T) {
	g := MustParseTurtle(`
@prefix ex: <http://example.org/> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
ex:hasName rdfs:range ex:Name .
ex:s ex:hasName "a literal" .
`)
	InferRDFS(g) // must not panic or create literal-subject triples
	for _, tr := range g.Triples() {
		if tr.S.IsLiteral() {
			t.Fatalf("inference produced literal subject: %v", tr)
		}
	}
}

func TestInferFixpoint(t *testing.T) {
	g := taxonomy(t)
	first := InferRDFS(g)
	if first == 0 {
		t.Fatal("first inference pass added nothing")
	}
	if again := InferRDFS(g); again != 0 {
		t.Fatalf("second pass added %d triples; fixpoint not reached", again)
	}
}

func TestInferCycleTerminates(t *testing.T) {
	g := MustParseTurtle(`
@prefix ex: <http://example.org/> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
ex:A rdfs:subClassOf ex:B .
ex:B rdfs:subClassOf ex:C .
ex:C rdfs:subClassOf ex:A .
ex:x a ex:A .
`)
	InferRDFS(g) // must terminate despite the subclass cycle
	for _, c := range []string{"A", "B", "C"} {
		if !g.Has(Triple{IRI(ex + "x"), IRI(RDFType), IRI(ex + c)}) {
			t.Errorf("type %s not inferred through cycle", c)
		}
	}
}

func TestSelectBGP(t *testing.T) {
	g := taxonomy(t)
	InferRDFS(g)
	// All instances of Sensor (requires inferred types).
	bs, err := Select(g, []Pattern{
		{Var("x"), IRI(RDFType), sensor},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 1 || bs[0][Var("x")] != IRI(ex+"coastalRadar") {
		t.Fatalf("Select = %v, want coastalRadar", bs)
	}
}

func TestSelectJoin(t *testing.T) {
	g := taxonomy(t)
	InferRDFS(g)
	// Who operates a device that detects something?
	bs, err := Select(g, []Pattern{
		{Var("op"), IRI(ex + "operates"), Var("dev")},
		{Var("dev"), IRI(ex + "detects"), Var("target")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 1 {
		t.Fatalf("join returned %d bindings, want 1: %v", len(bs), bs)
	}
	b := bs[0]
	if b[Var("op")] != IRI(ex+"alice") || b[Var("target")] != IRI(ex+"vessel1") {
		t.Fatalf("wrong binding: %v", b)
	}
}

func TestSelectNoSolutions(t *testing.T) {
	g := taxonomy(t)
	bs, err := Select(g, []Pattern{{Var("x"), knows, Var("y")}})
	if err != nil || bs != nil {
		t.Fatalf("Select = (%v, %v), want (nil, nil)", bs, err)
	}
}

func TestSelectRejectsBadPattern(t *testing.T) {
	g := NewGraph()
	if _, err := Select(g, []Pattern{{42, knows, bob}}); err == nil {
		t.Fatal("Select accepted int position")
	}
}

func TestSelectDeduplicates(t *testing.T) {
	g := MustParseTurtle(`
@prefix ex: <http://example.org/> .
ex:a ex:p ex:b .
ex:a ex:q ex:b .
`)
	// Two patterns that each bind ?x to ex:a produce one deduped binding.
	bs, err := Select(g, []Pattern{
		{Var("x"), Var("pred"), IRI(ex + "b")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 2 {
		t.Fatalf("got %d bindings, want 2 (distinct predicates)", len(bs))
	}
	// Now project only ?x by fixing the predicates via two runs; the same
	// solution reached twice must appear once.
	bs, err = Select(g, []Pattern{
		{Var("x"), IRI(ex + "p"), IRI(ex + "b")},
		{Var("x"), IRI(ex + "q"), IRI(ex + "b")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 1 || bs[0][Var("x")] != IRI(ex+"a") {
		t.Fatalf("dedup failed: %v", bs)
	}
}

func TestAsk(t *testing.T) {
	g := taxonomy(t)
	InferRDFS(g)
	ok, err := Ask(g, []Pattern{{IRI(ex + "coastalRadar"), IRI(RDFType), sensor}})
	if err != nil || !ok {
		t.Fatalf("Ask = (%v, %v), want (true, nil)", ok, err)
	}
	ok, err = Ask(g, []Pattern{{bob, knows, alice}})
	if err != nil || ok {
		t.Fatalf("Ask for absent fact = (%v, %v), want (false, nil)", ok, err)
	}
}
