// Command sdctl is the CLI client for the live UDP deployment: it
// publishes services, queries for them, and fetches ontology artifacts
// from a running registry network (see cmd/registryd).
//
// Usage:
//
//	sdctl -registry 127.0.0.1:7701 query -category <classIRI> [-scope 2] [-best]
//	sdctl -registry 127.0.0.1:7701 publish -iri urn:svc:x -category <classIRI> \
//	      -endpoint udp://10.0.0.1:99 [-name "Radar one"] [-lease 30s] [-hold]
//	sdctl -registry 127.0.0.1:7701 watch -category <classIRI>
//	sdctl -registry 127.0.0.1:7701 artifact -iri <ontologyIRI>
//	sdctl -registry 127.0.0.1:7701 put-artifact -iri <iri> -file taxonomy.ttl
//	sdctl -mcast 239.77.77.77:7777 probe
//	sdctl stats -addr 127.0.0.1:7778
//
// With -hold, publish keeps running and renews its lease until
// interrupted; without it the advertisement ages out after one lease —
// a convenient demonstration of §4.8.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"semdisco/internal/describe"
	"semdisco/internal/discovery"
	"semdisco/internal/node"
	"semdisco/internal/obs"
	"semdisco/internal/ontology"
	"semdisco/internal/profile"
	"semdisco/internal/runtime"
	"semdisco/internal/sim"
	"semdisco/internal/transport"
	"semdisco/internal/transport/udpnet"
	"semdisco/internal/uuid"
	"semdisco/internal/wire"
)

func main() {
	var (
		registryAddr = flag.String("registry", "", "registry address (required except for probe)")
		mcast        = flag.String("mcast", "", "multicast group for probe/fallback ('' disables)")
		timeout      = flag.Duration("timeout", 5*time.Second, "operation timeout")
	)
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: sdctl [flags] query|publish|watch|artifact|put-artifact|probe|stats [subflags]")
		os.Exit(2)
	}
	cmd, rest := flag.Arg(0), flag.Args()[1:]

	// stats only talks HTTP to a registryd -stats-addr endpoint; no UDP
	// node is needed, so handle it before binding sockets.
	if cmd == "stats" {
		runStats(rest, *timeout)
		return
	}

	nodeio, err := udpnet.Listen(udpnet.Config{Multicast: *mcast})
	if err != nil {
		log.Fatalf("sdctl: %v", err)
	}
	defer nodeio.Close()
	env := &runtime.Env{ID: uuid.New(), Iface: nodeio, Clock: nodeio}

	var seeds []string
	if *registryAddr != "" {
		seeds = []string{*registryAddr}
	}
	switch cmd {
	case "query":
		runQuery(nodeio, env, seeds, rest, *timeout)
	case "publish":
		runPublish(nodeio, env, seeds, rest, *timeout)
	case "artifact":
		runArtifact(nodeio, env, seeds, rest, *timeout)
	case "probe":
		runProbe(nodeio, env, *timeout)
	case "watch":
		runWatch(nodeio, env, seeds, rest, *timeout)
	case "put-artifact":
		runPutArtifact(nodeio, env, seeds, rest, *timeout)
	default:
		log.Fatalf("sdctl: unknown command %q", cmd)
	}
}

// runStats fetches a registryd's runtime metric snapshot (the daemon
// must run with -stats-addr) and prints it as aligned text; -json dumps
// the raw snapshot instead. See OBSERVABILITY.md for the metric set.
func runStats(args []string, timeout time.Duration) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7778", "registryd -stats-addr endpoint")
	asJSON := fs.Bool("json", false, "print the raw JSON snapshot")
	fs.Parse(args)
	snap, err := obs.Fetch(*addr, timeout)
	if err != nil {
		log.Fatalf("sdctl stats: %v", err)
	}
	if *asJSON {
		data, err := snap.MarshalJSONIndent()
		if err != nil {
			log.Fatalf("sdctl stats: %v", err)
		}
		os.Stdout.Write(data)
		fmt.Println()
		return
	}
	snap.WriteText(os.Stdout)
}

// runPutArtifact uploads a document (e.g. a taxonomy) into the
// registry's artifact repository.
func runPutArtifact(nodeio *udpnet.Node, env *runtime.Env, seeds []string, args []string, timeout time.Duration) {
	fs := flag.NewFlagSet("put-artifact", flag.ExitOnError)
	iri := fs.String("iri", "", "artifact IRI")
	file := fs.String("file", "", "file to upload")
	fs.Parse(args)
	if *iri == "" || *file == "" {
		log.Fatal("sdctl put-artifact: -iri and -file are required")
	}
	data, err := os.ReadFile(*file)
	if err != nil {
		log.Fatalf("sdctl put-artifact: %v", err)
	}
	cli := newClient(nodeio, env, seeds)
	waitForRegistry(nodeio, cli, timeout)
	done := make(chan bool, 1)
	nodeio.Do(func() {
		cli.PutArtifact(*iri, data, timeout, func(ok bool) { done <- ok })
	})
	select {
	case ok := <-done:
		if !ok {
			log.Fatal("sdctl put-artifact: upload failed")
		}
		log.Printf("sdctl: stored %d bytes under %s", len(data), *iri)
	case <-time.After(timeout + time.Second):
		log.Fatal("sdctl put-artifact: timed out")
	}
}

// runWatch subscribes to a category and streams notifications until
// interrupted.
func runWatch(nodeio *udpnet.Node, env *runtime.Env, seeds []string, args []string, timeout time.Duration) {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	category := fs.String("category", "", "watched category class IRI")
	leaseDur := fs.Duration("lease", time.Minute, "subscription lease")
	fs.Parse(args)
	if *category == "" {
		log.Fatal("sdctl watch: -category is required")
	}
	cli := newClient(nodeio, env, seeds)
	waitForRegistry(nodeio, cli, timeout)
	q := &describe.SemanticQuery{Template: &profile.Template{Category: ontology.Class(*category)}}
	var sub *node.Subscription
	nodeio.Do(func() {
		sub = cli.Subscribe(node.QuerySpec{
			Kind: describe.KindSemantic, Payload: q.Encode(),
		}, *leaseDur, func(a wire.Advertisement) {
			p, err := profile.Decode(a.Payload)
			if err != nil {
				return
			}
			fmt.Printf("+ %-30s %-40s %s\n", p.Name, p.ServiceIRI, p.Grounding)
		})
	})
	if sub == nil {
		log.Fatal("sdctl watch: no registry available")
	}
	log.Printf("sdctl: watching %s (ctrl-c to stop)", *category)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	nodeio.Do(sub.Cancel)
}

func newClient(nodeio *udpnet.Node, env *runtime.Env, seedAddrs []string) *node.Client {
	cli := node.NewClient(env, node.ClientConfig{
		// The default model set ranks decentralized-fallback results by
		// match quality instead of arrival order.
		Models: describe.NewRegistry(describe.URIModel{}, describe.KVModel{},
			describe.NewSemanticModel(sim.DefaultOntology())),
		Bootstrap: discovery.Config{SeedAddrs: seedAddrs, ProbeInterval: 500 * time.Millisecond},
	})
	nodeio.SetHandler(func(from transport.Addr, data []byte) {
		runtime.Dispatch(cli, env, from, data)
	})
	nodeio.Do(cli.Start)
	return cli
}

func runQuery(nodeio *udpnet.Node, env *runtime.Env, seeds []string, args []string, timeout time.Duration) {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	category := fs.String("category", "", "requested category class IRI")
	scope := fs.Uint("scope", 0, "WAN forwarding TTL")
	best := fs.Bool("best", false, "return only the best match")
	max := fs.Int("max", 0, "max results (0 = registry default)")
	domain := fs.String("domain", "", "pin the query to a federation namespace (resolved via the domain directory instead of the WAN flood)")
	fs.Parse(args)
	if *category == "" {
		log.Fatal("sdctl query: -category is required")
	}
	cli := newClient(nodeio, env, seeds)
	waitForRegistry(nodeio, cli, timeout)
	q := &describe.SemanticQuery{Template: &profile.Template{Category: ontology.Class(*category)}}
	done := make(chan node.QueryResult, 1)
	nodeio.Do(func() {
		cli.Query(node.QuerySpec{
			Kind: describe.KindSemantic, Payload: q.Encode(),
			TTL: uint8(*scope), BestOnly: *best, MaxResults: *max,
			Domain: *domain,
		}, func(r node.QueryResult) { done <- r })
	})
	select {
	case r := <-done:
		fmt.Printf("%d result(s) via %s\n", len(r.Adverts), r.Via)
		for _, a := range r.Adverts {
			p, err := profile.Decode(a.Payload)
			if err != nil {
				continue
			}
			fmt.Printf("  %-30s %-40s %s\n", p.Name, p.ServiceIRI, p.Grounding)
		}
	case <-time.After(timeout):
		log.Fatal("sdctl query: timed out")
	}
}

func runPublish(nodeio *udpnet.Node, env *runtime.Env, seeds []string, args []string, timeout time.Duration) {
	fs := flag.NewFlagSet("publish", flag.ExitOnError)
	iri := fs.String("iri", "", "service IRI")
	category := fs.String("category", "", "category class IRI")
	endpoint := fs.String("endpoint", "", "invocation endpoint")
	name := fs.String("name", "", "display name")
	leaseDur := fs.Duration("lease", 30*time.Second, "requested lease")
	hold := fs.Bool("hold", false, "keep renewing until interrupted")
	fs.Parse(args)
	if *iri == "" || *category == "" || *endpoint == "" {
		log.Fatal("sdctl publish: -iri, -category and -endpoint are required")
	}
	p := &profile.Profile{
		ServiceIRI: *iri, Name: *name, Category: ontology.Class(*category), Grounding: *endpoint,
	}
	if err := p.Validate(); err != nil {
		log.Fatalf("sdctl publish: %v", err)
	}
	svc := node.NewService(env, stdModels(), node.ServiceConfig{
		Lease:     *leaseDur,
		Bootstrap: discovery.Config{SeedAddrs: seeds, ProbeInterval: 500 * time.Millisecond},
	}, &describe.SemanticDescription{Profile: p})
	nodeio.SetHandler(func(from transport.Addr, data []byte) {
		runtime.Dispatch(svc, env, from, data)
	})
	nodeio.Do(svc.Start)
	// Wait until a registry is known (publication follows automatically).
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		var ok bool
		nodeio.Do(func() { _, ok = svc.Bootstrapper().Current() })
		if ok {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	log.Printf("sdctl: published %s (lease %v)", *iri, *leaseDur)
	if !*hold {
		time.Sleep(500 * time.Millisecond) // let the publish flush
		return
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	nodeio.Do(svc.Stop)
	log.Print("sdctl: deregistered")
}

func runArtifact(nodeio *udpnet.Node, env *runtime.Env, seeds []string, args []string, timeout time.Duration) {
	fs := flag.NewFlagSet("artifact", flag.ExitOnError)
	iri := fs.String("iri", "", "artifact IRI")
	fs.Parse(args)
	if *iri == "" {
		log.Fatal("sdctl artifact: -iri is required")
	}
	cli := newClient(nodeio, env, seeds)
	waitForRegistry(nodeio, cli, timeout)
	done := make(chan struct {
		data []byte
		ok   bool
	}, 1)
	nodeio.Do(func() {
		cli.FetchArtifact(*iri, timeout, func(d []byte, ok bool) {
			done <- struct {
				data []byte
				ok   bool
			}{d, ok}
		})
	})
	select {
	case r := <-done:
		if !r.ok {
			log.Fatalf("sdctl artifact: %s not found", *iri)
		}
		os.Stdout.Write(r.data)
	case <-time.After(timeout + time.Second):
		log.Fatal("sdctl artifact: timed out")
	}
}

func runProbe(nodeio *udpnet.Node, env *runtime.Env, timeout time.Duration) {
	cli := newClient(nodeio, env, nil)
	time.Sleep(timeout)
	var cur string
	var known int
	nodeio.Do(func() {
		if info, ok := cli.Bootstrapper().Current(); ok {
			cur = fmt.Sprintf("%s @ %s", info.ID.Short(), info.Addr)
		}
		known = cli.Bootstrapper().Known()
	})
	if cur == "" {
		log.Fatal("sdctl probe: no registries found")
	}
	fmt.Printf("current registry: %s (%d known)\n", cur, known)
}

// waitForRegistry blocks until the client's bootstrapper knows a
// registry or the timeout passes (queries then use the LAN fallback).
func waitForRegistry(nodeio *udpnet.Node, cli *node.Client, timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		var ok bool
		nodeio.Do(func() { _, ok = cli.Bootstrapper().Current() })
		if ok {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func stdModels() *describe.Registry {
	return describe.NewRegistry(
		describe.URIModel{},
		describe.KVModel{},
		describe.NewSemanticModel(sim.DefaultOntology()),
	)
}
