// Command simdisco runs the paper-claim experiments (DESIGN.md E1–E21)
// on the deterministic simulator and prints their result tables — the
// same tables `go test -bench` produces and EXPERIMENTS.md records.
//
// Usage:
//
//	simdisco -list
//	simdisco -run E1,E4 -seed 42
//	simdisco -run all
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"semdisco/internal/experiments"
	"semdisco/internal/metrics"
	"semdisco/internal/obs"
)

type experiment struct {
	id, title string
	run       func(seed int64) *metrics.Table
}

func catalog() []experiment {
	return []experiment{
		{"E1", "topology bandwidth", func(s int64) *metrics.Table {
			return experiments.E1TopologyBandwidth([]int{20, 40, 80}, 10, s)
		}},
		{"E2", "query response control", func(s int64) *metrics.Table {
			return experiments.E2ResponseControl(50, s)
		}},
		{"E3", "robustness to registry failure", func(s int64) *metrics.Table {
			return experiments.E3Robustness([]float64{0, 0.25, 0.5, 0.75, 1}, s)
		}},
		{"E4", "staleness under churn", func(s int64) *metrics.Table {
			return experiments.E4Staleness([]time.Duration{2 * time.Second, 5 * time.Second, 15 * time.Second}, s)
		}},
		{"E5", "matchmaking quality", func(s int64) *metrics.Table {
			return experiments.E5Matchmaking(4, 3, 300, 100, s)
		}},
		{"E6", "registry discovery bootstrap", func(s int64) *metrics.Table {
			return experiments.E6Bootstrap([]time.Duration{time.Second, 5 * time.Second, 10 * time.Second}, s)
		}},
		{"E6b", "decentralized fallback", func(s int64) *metrics.Table {
			return experiments.E6Fallback(10, s)
		}},
		{"E7", "forwarding strategies", func(s int64) *metrics.Table {
			return experiments.E7Forwarding(8, s)
		}},
		{"E8", "advertisement payload sizes", func(s int64) *metrics.Table {
			return experiments.E8PayloadSize(200, s)
		}},
		{"E9", "LAN+WAN coherence", func(s int64) *metrics.Table {
			return experiments.E9Coherence(5, 3, s)
		}},
		{"E10", "gateway coordination", func(s int64) *metrics.Table {
			return experiments.E10Gateway(3, s)
		}},
		{"E11", "republish convergence", func(s int64) *metrics.Table {
			return experiments.E11Republish(s)
		}},
		{"E12", "push vs pull cooperation", func(s int64) *metrics.Table {
			return experiments.E12PushPull([]int{1, 5, 20, 50}, s)
		}},
		{"E13", "ontology artifact resolution", func(s int64) *metrics.Table {
			return experiments.E13Artifacts(s)
		}},
		{"E14", "query evaluation cost", func(s int64) *metrics.Table {
			return experiments.E14MatchCost(256, s)
		}},
		{"E15", "federation scalability", func(s int64) *metrics.Table {
			return experiments.E15Scale([]int{4, 8, 16, 32}, s)
		}},
		{"E16", "discovery under datagram loss", func(s int64) *metrics.Table {
			return experiments.E16Loss([]float64{0, 0.02, 0.05, 0.10}, s)
		}},
		{"E17", "chaos sweep (fault injection)", func(s int64) *metrics.Table {
			return experiments.E17Chaos([]float64{0, 0.25, 0.5, 0.75, 1}, s)
		}},
		{"E18", "gateway result cache WAN reduction", func(s int64) *metrics.Table {
			return experiments.E18ResultCache(20, s)
		}},
		{"E19", "compact storage & inverted subscription index", func(s int64) *metrics.Table {
			return experiments.E19Scale([]int{100_000}, []int{100, 1_000, 10_000}, s)
		}},
		{"E20", "crash-safe persistence (WAL + snapshots)", func(s int64) *metrics.Table {
			return experiments.E20Durability([]int{10_000, 100_000}, s)
		}},
		{"E21", "datagram coalescing (batch sweep)", func(s int64) *metrics.Table {
			return experiments.E21Batching([]int{1, 8, 32, 64}, s)
		}},
		{"E21b", "incremental summaries (delta vs full)", func(s int64) *metrics.Table {
			return experiments.E21Deltas([]int{100, 1_000, 10_000}, s)
		}},
		{"E22", "hierarchical federation (domain directory sweep)", func(s int64) *metrics.Table {
			return experiments.E22Federation([]int{10, 50, 150, 500}, s)
		}},
	}
}

func main() {
	var (
		run     = flag.String("run", "all", "comma-separated experiment IDs, or 'all'")
		seed    = flag.Int64("seed", 42, "experiment seed")
		list    = flag.Bool("list", false, "list experiments and exit")
		format  = flag.String("format", "table", "output format: table or csv")
		showObs = flag.Bool("obs", false, "print the runtime metric delta after each experiment")
		chaos   = flag.Bool("chaos", false, "chaos mode: sweep fault intensity (shorthand for -run E17 with a fine-grained sweep)")
	)
	flag.Parse()
	if *chaos {
		// Chaos experiment mode: the scripted nemesis sweep, at a finer
		// intensity grid than the catalog entry, with the traffic and
		// fault counters printed per run. Deterministic per -seed.
		start := time.Now()
		tab := experiments.E17Chaos([]float64{0, 0.1, 0.25, 0.5, 0.75, 1}, *seed)
		if *format == "csv" {
			fmt.Printf("# E17 chaos sweep\n%s\n", tab.CSV())
		} else {
			fmt.Println(tab)
			fmt.Printf("  [chaos sweep finished in %v]\n", time.Since(start).Round(time.Millisecond))
		}
		return
	}
	cat := catalog()
	if *list {
		for _, e := range cat {
			fmt.Printf("%-4s %s\n", e.id, e.title)
		}
		return
	}
	want := map[string]bool{}
	all := strings.EqualFold(*run, "all")
	for _, id := range strings.Split(*run, ",") {
		want[strings.ToUpper(strings.TrimSpace(id))] = true
	}
	ran := 0
	for _, e := range cat {
		if !all && !want[strings.ToUpper(e.id)] {
			continue
		}
		start := time.Now()
		before := obs.Default.Snapshot()
		tab := e.run(*seed)
		if *format == "csv" {
			fmt.Printf("# %s %s\n%s\n", e.id, e.title, tab.CSV())
		} else {
			fmt.Println(tab)
			fmt.Printf("  [%s finished in %v]\n\n", e.id, time.Since(start).Round(time.Millisecond))
		}
		if *showObs {
			// Per-phase delta of the process-wide runtime metrics: what
			// this experiment alone did (counters are cumulative across
			// the whole run; the diff isolates one phase).
			diff := obs.Default.Snapshot().Diff(before)
			fmt.Printf("  runtime metrics for %s:\n", e.id)
			for _, line := range strings.Split(strings.TrimRight(diff.String(), "\n"), "\n") {
				fmt.Printf("    %s\n", line)
			}
			fmt.Println()
		}
		ran++
	}
	if ran == 0 {
		ids := make([]string, 0, len(cat))
		for _, e := range cat {
			ids = append(ids, e.id)
		}
		sort.Strings(ids)
		fmt.Fprintf(os.Stderr, "simdisco: no experiment matched %q (have %s)\n", *run, strings.Join(ids, ","))
		os.Exit(2)
	}
}
