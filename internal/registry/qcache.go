package registry

import (
	"bytes"
	"container/list"
	"sync"
	"time"

	"semdisco/internal/describe"
	"semdisco/internal/wire"
)

// queryCache memoizes ranked Evaluate result sets in a bounded LRU.
// Unlike a TTL cache, entries are *validated*, never trusted: each one
// is stamped with the per-shard generation vector it was computed
// against plus the earliest lease deadline among the advertisements it
// holds. A lookup serves the entry only when every shard generation is
// unchanged and the query time sits inside [fill time, min deadline] —
// an O(shards) integer compare that guarantees the cached answer equals
// what a live evaluation would return right now. There are no
// invalidation callbacks and no staleness window.
//
// Concurrent identical queries share one computation through a
// singleflight group: the first caller computes and fills, the rest
// wait for the filled entry and re-validate it against their own clock.
// That is the federation fan-in pattern — one WAN query arriving at a
// registry simultaneously from several gateway walkers — collapsed to a
// single index scan.
//
// Hash collisions are handled the same way as the plan cache: entries
// remember their payload and a lookup whose payload differs is a miss,
// never a wrong answer.
type queryCache struct {
	mu      sync.Mutex
	cap     int
	entries map[qkey]*list.Element
	lru     *list.List // of *qentry, most recent at front
	flights map[qkey]*qflight
}

// qkey identifies one cached result set. The effective limit (not the
// raw MaxResults) is part of the key, so MaxResults=0 and an explicit
// MaxResults equal to the store default share an entry, while BestOnly
// and MaxResults=1 — same limit, different option — never alias.
type qkey struct {
	hash  uint64
	kind  describe.Kind
	limit int
	best  bool
}

// qentry is one cached result set plus everything needed to prove it is
// still exact.
type qentry struct {
	key     qkey
	payload []byte
	adverts []wire.Advertisement
	// gens is the shard generation vector snapshotted before the
	// result was collected.
	gens []uint64
	// fillNow is the query time the result was computed at; a lookup
	// whose clock is behind it (simulator rewind, skew) never reuses
	// the entry.
	fillNow time.Time
	// minExpiry is the earliest lease deadline among the returned
	// advertisements; past it the result may silently lose a member
	// even though no generation moved (expired-but-unpurged leases are
	// filtered at collect time, not mutation time). Zero for empty
	// result sets, which stay exact until a generation moves.
	minExpiry time.Time
}

// qflight is one in-progress computation other callers of the same key
// can wait on instead of repeating the scan.
type qflight struct {
	payload []byte
	wg      sync.WaitGroup
	entry   *qentry // set before wg.Done; read only after wg.Wait
}

// newQueryCache returns an empty cache bounded to capacity entries.
func newQueryCache(capacity int) *queryCache {
	return &queryCache{
		cap:     capacity,
		entries: make(map[qkey]*list.Element, capacity),
		lru:     list.New(),
		flights: make(map[qkey]*qflight),
	}
}

// valid reports whether the entry still answers the query exactly at
// now against the store's current shard generations.
func (e *qentry) valid(s *Store, now time.Time) bool {
	if now.Before(e.fillNow) {
		return false
	}
	if !e.minExpiry.IsZero() && now.After(e.minExpiry) {
		return false
	}
	return s.gensCurrent(e.gens)
}

// evaluate is the cached Evaluate body: validated lookup, singleflight
// join, or live computation plus fill.
func (c *queryCache) evaluate(s *Store, key qkey, payload []byte, kind describe.Kind, plan *queryPlan, limit int, now time.Time) []wire.Advertisement {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*qentry)
		if !bytes.Equal(e.payload, payload) {
			// Hash collision: miss, and leave the resident entry alone.
			c.mu.Unlock()
			mQCacheMisses.Inc()
			out, _ := s.evaluateLive(kind, plan, limit, now)
			return out
		}
		if e.valid(s, now) {
			c.lru.MoveToFront(el)
			c.mu.Unlock()
			mQCacheHits.Inc()
			return cloneAdverts(e.adverts)
		}
		// Stale: a generation moved or a lease deadline passed since
		// the fill. Drop the entry and fall through to recompute.
		c.removeLocked(el, e)
		mQCacheInvalidations.Inc()
	}
	if f, ok := c.flights[key]; ok && bytes.Equal(f.payload, payload) {
		c.mu.Unlock()
		f.wg.Wait()
		mQCacheShared.Inc()
		// The shared fill may have been computed at a different query
		// time; serve it only if it is valid at *our* now.
		if f.entry != nil && f.entry.valid(s, now) {
			return cloneAdverts(f.entry.adverts)
		}
		out, _ := s.evaluateLive(kind, plan, limit, now)
		return out
	}
	f := &qflight{payload: payload}
	f.wg.Add(1)
	c.flights[key] = f
	c.mu.Unlock()
	mQCacheMisses.Inc()

	// Snapshot generations BEFORE collecting: a mutation racing the
	// scan bumps a generation we already recorded, making this entry
	// conservatively stale instead of wrongly fresh.
	gens := s.genVector()
	adverts, minExpiry := s.evaluateLive(kind, plan, limit, now)
	e := &qentry{
		key:       key,
		payload:   append([]byte(nil), payload...),
		adverts:   adverts,
		gens:      gens,
		fillNow:   now,
		minExpiry: minExpiry,
	}

	c.mu.Lock()
	f.entry = e
	delete(c.flights, key)
	c.insertLocked(e)
	c.mu.Unlock()
	f.wg.Done()
	return cloneAdverts(adverts)
}

// insertLocked adds (or replaces) the entry and evicts from the LRU
// tail past capacity; the caller holds c.mu.
func (c *queryCache) insertLocked(e *qentry) {
	if el, ok := c.entries[e.key]; ok {
		el.Value = e
		c.lru.MoveToFront(el)
		return
	}
	c.entries[e.key] = c.lru.PushFront(e)
	for c.lru.Len() > c.cap {
		back := c.lru.Back()
		c.removeLocked(back, back.Value.(*qentry))
	}
	mQCacheSize.Set(int64(c.lru.Len()))
}

// removeLocked unlinks an entry; the caller holds c.mu.
func (c *queryCache) removeLocked(el *list.Element, e *qentry) {
	c.lru.Remove(el)
	delete(c.entries, e.key)
	mQCacheSize.Set(int64(c.lru.Len()))
}

// size reports the number of resident entries (tests).
func (c *queryCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// cloneAdverts copies a cached result set so callers can never mutate
// resident cache state through the returned slice.
func cloneAdverts(adverts []wire.Advertisement) []wire.Advertisement {
	out := make([]wire.Advertisement, len(adverts))
	copy(out, adverts)
	return out
}
