package describe

import (
	"semdisco/internal/match"
	"semdisco/internal/ontology"
	"semdisco/internal/profile"
)

// SemanticDescription wraps a semantic service profile as a pluggable
// description — the rich tier that "allows clients to engage newly
// encountered services, given a shared semantic model, or ontology".
type SemanticDescription struct {
	Profile *profile.Profile
}

// Kind implements Description.
func (d *SemanticDescription) Kind() Kind { return KindSemantic }

// ServiceKey implements Description.
func (d *SemanticDescription) ServiceKey() string { return d.Profile.ServiceIRI }

// Endpoint implements Description.
func (d *SemanticDescription) Endpoint() string { return d.Profile.Grounding }

// Encode implements Description.
func (d *SemanticDescription) Encode() []byte { return d.Profile.Encode() }

// SemanticQuery wraps a profile template plus the minimum acceptable
// match degree — the knob a constrained client turns to let the
// registry return only close matches.
type SemanticQuery struct {
	Template *profile.Template
	// MinDegree is the weakest acceptable match degree; Subsumed admits
	// everything related, Exact only identical concepts.
	MinDegree match.Degree
}

// Kind implements Query.
func (q *SemanticQuery) Kind() Kind { return KindSemantic }

// Encode implements Query; the degree travels as a one-byte prefix
// before the template payload.
func (q *SemanticQuery) Encode() []byte {
	return append([]byte{byte(q.MinDegree)}, q.Template.Encode()...)
}

// SemanticModel evaluates semantic queries with the matchmaker over a
// shared ontology. Construct with NewSemanticModel.
type SemanticModel struct {
	onto    *ontology.Ontology
	matcher *match.Matcher
}

// NewSemanticModel returns the semantic description model grounded in
// the given frozen ontology.
func NewSemanticModel(o *ontology.Ontology) *SemanticModel {
	return &SemanticModel{onto: o, matcher: match.New(o)}
}

// Ontology exposes the grounding ontology (registries serve it from
// their artifact repository).
func (m *SemanticModel) Ontology() *ontology.Ontology { return m.onto }

// Kind implements Model.
func (m *SemanticModel) Kind() Kind { return KindSemantic }

// Name implements Model.
func (m *SemanticModel) Name() string { return "semantic" }

// DecodeDescription implements Model. The decoded profile is interned
// against the grounding ontology here — decode is the single-writer
// point before the profile is shared — so the registry's evaluate loop
// compares integer IDs with zero string-map lookups per candidate.
func (m *SemanticModel) DecodeDescription(b []byte) (Description, error) {
	p, err := profile.Decode(b)
	if err != nil {
		return nil, err
	}
	p.Intern(m.onto)
	return &SemanticDescription{Profile: p}, nil
}

// DecodeQuery implements Model. Like DecodeDescription, the template is
// interned eagerly; with the registry's plan cache, a repeated query
// pays the ID resolution once for its whole cached lifetime.
func (m *SemanticModel) DecodeQuery(b []byte) (Query, error) {
	if len(b) == 0 {
		return nil, errEmptySemanticQuery
	}
	t, err := profile.DecodeTemplate(b[1:])
	if err != nil {
		return nil, err
	}
	t.Intern(m.onto)
	return &SemanticQuery{Template: t, MinDegree: match.Degree(b[0])}, nil
}

var errEmptySemanticQuery = errorString("describe: empty semantic query payload")

type errorString string

func (e errorString) Error() string { return string(e) }

// Evaluate implements Model via the matchmaker. The degree reported in
// the evaluation is the match.Degree so cross-layer reports stay
// meaningful.
func (m *SemanticModel) Evaluate(q Query, d Description) Evaluation {
	sq, ok1 := q.(*SemanticQuery)
	sd, ok2 := d.(*SemanticDescription)
	if !ok1 || !ok2 {
		return Evaluation{}
	}
	r := m.matcher.Match(sq.Template, sd.Profile)
	if !r.Matches(sq.MinDegree) {
		return Evaluation{}
	}
	return Evaluation{Matched: true, Degree: uint8(r.Degree), Score: r.Score}
}

// SummaryTokens implements Model: the advertised category concept. A
// single token suffices because QueryTokens expands the subsumption
// neighbourhood on the query side, keeping gossiped summaries small —
// important, since summaries travel between registries periodically.
func (m *SemanticModel) SummaryTokens(d Description) []string {
	sd, ok := d.(*SemanticDescription)
	if !ok || sd.Profile.Category == "" {
		return nil
	}
	return []string{string(sd.Profile.Category)}
}

// QueryTokens implements Model: every class standing in a subsumption
// relation with the requested category (its ancestors and descendants).
// A semantic description can only clear the category aspect if its
// category is in this set, so summary pruning stays sound. Queries
// without a category constraint are not prunable.
func (m *SemanticModel) QueryTokens(q Query) ([]string, bool) {
	sq, ok := q.(*SemanticQuery)
	if !ok || sq.Template.Category == "" {
		return nil, false
	}
	cat := sq.Template.Category
	rel := m.onto.Related(cat)
	if len(rel) == 0 {
		// Unknown category: only a description advertising the identical
		// (equally unknown) concept can clear the category aspect.
		return []string{string(cat)}, true
	}
	tokens := make([]string, len(rel))
	for i, c := range rel {
		tokens[i] = string(c)
	}
	return tokens, true
}

// DescriptionConceptID implements ConceptIndexer: the interned ID of
// the advertised category. ok=false for undeclared categories or an
// uncompiled ontology — the caller falls back to string tokens, the
// same degradation Intern itself applies.
func (m *SemanticModel) DescriptionConceptID(d Description) (int32, bool) {
	sd, ok := d.(*SemanticDescription)
	if !ok {
		return 0, false
	}
	ip := sd.Profile.InternedFor(m.onto)
	if ip == nil || ip.Category == ontology.NoClass {
		return 0, false
	}
	return int32(ip.Category), true
}

// QueryConceptIDs implements ConceptIndexer: the subsumption closure of
// the requested category as interned IDs — the ID-domain counterpart of
// QueryTokens' Related expansion.
func (m *SemanticModel) QueryConceptIDs(q Query) ([]int32, bool) {
	sq, ok := q.(*SemanticQuery)
	if !ok || sq.Template.Category == "" {
		return nil, false
	}
	it := sq.Template.InternedFor(m.onto)
	if it == nil || it.Category == ontology.NoClass {
		return nil, false
	}
	rel := m.onto.RelatedIDs(it.Category)
	if rel == nil {
		return nil, false
	}
	out := make([]int32, len(rel))
	for i, id := range rel {
		out[i] = int32(id)
	}
	return out, true
}
