// Package profile implements the OWL-S-style semantic service profile
// that the paper's "rich" description tier needs (§4.2): a service is
// described by its category concept, the concepts of its inputs and
// outputs, quality-of-service attributes, and an optional geographic
// coverage area (the paper's example of description content that changes
// frequently in dynamic environments).
//
// A Template is the partial profile a client fills out when querying
// ("Querying for a service is most often accomplished by filling out a
// partial template for the service wanted"). Matching semantics live in
// internal/match; this package defines the data model, its compact
// binary wire encoding, and its RDF rendering.
package profile

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"semdisco/internal/codec"
	"semdisco/internal/ontology"
	"semdisco/internal/rdf"
)

// Profile is a semantic description of one service.
type Profile struct {
	// ServiceIRI uniquely identifies the described service.
	ServiceIRI string
	// Name is a short human-readable service name.
	Name string
	// Text is a free-text description used by keyword baselines.
	Text string
	// Category is the service category concept from the shared ontology.
	Category ontology.Class
	// Inputs are the concepts the service consumes.
	Inputs []ontology.Class
	// Outputs are the concepts the service produces.
	Outputs []ontology.Class
	// QoS holds quality-of-service attributes (latency, accuracy, …),
	// matched with per-attribute minimum thresholds.
	QoS map[string]float64
	// Grounding is the invocation endpoint; discovery establishes
	// contact, invocation then proceeds directly (§1).
	Grounding string
	// Coverage optionally restricts where the service is useful; nil
	// means unrestricted.
	Coverage *Circle
	// OntologyIRI names the ontology the concepts are drawn from, so a
	// client missing it can fetch it from the registry's artifact
	// repository (§4.6).
	OntologyIRI string

	// itn caches interned ClassIDs for one compiled ontology (see
	// intern.go). Immutable once set; Clone shares it.
	itn *InternedProfile
}

// Circle is a geographic coverage area: a center and radius. The flat
// (equirectangular) distance approximation is adequate for the tens-of-
// kilometre coverage areas in the paper's scenarios.
type Circle struct {
	LatDeg, LonDeg float64
	RadiusKm       float64
}

// Contains reports whether the point lies inside the circle.
func (c Circle) Contains(latDeg, lonDeg float64) bool {
	return c.distKm(latDeg, lonDeg) <= c.RadiusKm
}

// Overlaps reports whether two circles intersect.
func (c Circle) Overlaps(o Circle) bool {
	return c.distKm(o.LatDeg, o.LonDeg) <= c.RadiusKm+o.RadiusKm
}

func (c Circle) distKm(latDeg, lonDeg float64) float64 {
	const kmPerDegLat = 111.32
	dLat := (latDeg - c.LatDeg) * kmPerDegLat
	dLon := (lonDeg - c.LonDeg) * kmPerDegLat * math.Cos(c.LatDeg*math.Pi/180)
	return math.Hypot(dLat, dLon)
}

// Validate checks structural invariants before publishing.
func (p *Profile) Validate() error {
	switch {
	case p.ServiceIRI == "":
		return errors.New("profile: ServiceIRI is required")
	case p.Category == "":
		return errors.New("profile: Category is required")
	case p.Grounding == "":
		return errors.New("profile: Grounding endpoint is required")
	}
	for k, v := range p.QoS {
		if k == "" {
			return errors.New("profile: empty QoS attribute name")
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("profile: QoS %q is not finite", k)
		}
	}
	if p.Coverage != nil && (p.Coverage.RadiusKm < 0 || math.IsNaN(p.Coverage.RadiusKm)) {
		return errors.New("profile: negative coverage radius")
	}
	return nil
}

// Clone returns a deep copy; registries clone stored profiles before
// handing them to callers so stored state cannot be mutated.
func (p *Profile) Clone() *Profile {
	cp := *p
	cp.Inputs = append([]ontology.Class(nil), p.Inputs...)
	cp.Outputs = append([]ontology.Class(nil), p.Outputs...)
	if p.QoS != nil {
		cp.QoS = make(map[string]float64, len(p.QoS))
		for k, v := range p.QoS {
			cp.QoS[k] = v
		}
	}
	if p.Coverage != nil {
		c := *p.Coverage
		cp.Coverage = &c
	}
	return &cp
}

const profileVersion = 1

// Encode renders the profile in the compact binary form carried inside
// advertisements. Map keys are sorted so encoding is deterministic.
func (p *Profile) Encode() []byte {
	var w codec.Buffer
	w.Byte(profileVersion)
	w.String(p.ServiceIRI)
	w.String(p.Name)
	w.String(p.Text)
	w.String(string(p.Category))
	w.StringSlice(classesToStrings(p.Inputs))
	w.StringSlice(classesToStrings(p.Outputs))
	keys := make([]string, 0, len(p.QoS))
	for k := range p.QoS {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		w.String(k)
		w.Float64(p.QoS[k])
	}
	w.String(p.Grounding)
	if p.Coverage != nil {
		w.Bool(true)
		w.Float64(p.Coverage.LatDeg)
		w.Float64(p.Coverage.LonDeg)
		w.Float64(p.Coverage.RadiusKm)
	} else {
		w.Bool(false)
	}
	w.String(p.OntologyIRI)
	return w.Bytes()
}

// Decode parses an encoded profile, rejecting truncation, trailing
// garbage and unknown versions.
func Decode(b []byte) (*Profile, error) {
	r := codec.NewReader(b)
	v, err := r.Byte()
	if err != nil {
		return nil, err
	}
	if v != profileVersion {
		return nil, fmt.Errorf("profile: unsupported version %d", v)
	}
	p := &Profile{}
	if p.ServiceIRI, err = r.String(); err != nil {
		return nil, err
	}
	if p.Name, err = r.String(); err != nil {
		return nil, err
	}
	if p.Text, err = r.String(); err != nil {
		return nil, err
	}
	cat, err := r.String()
	if err != nil {
		return nil, err
	}
	p.Category = ontology.Class(cat)
	in, err := r.StringSlice()
	if err != nil {
		return nil, err
	}
	p.Inputs = stringsToClasses(in)
	out, err := r.StringSlice()
	if err != nil {
		return nil, err
	}
	p.Outputs = stringsToClasses(out)
	nq, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if nq > 0 {
		if nq > uint64(r.Remaining()) {
			return nil, fmt.Errorf("profile: QoS count %d exceeds payload", nq)
		}
		p.QoS = make(map[string]float64, nq)
		for i := uint64(0); i < nq; i++ {
			k, err := r.String()
			if err != nil {
				return nil, err
			}
			val, err := r.Float64()
			if err != nil {
				return nil, err
			}
			p.QoS[k] = val
		}
	}
	if p.Grounding, err = r.String(); err != nil {
		return nil, err
	}
	hasCov, err := r.Bool()
	if err != nil {
		return nil, err
	}
	if hasCov {
		var c Circle
		if c.LatDeg, err = r.Float64(); err != nil {
			return nil, err
		}
		if c.LonDeg, err = r.Float64(); err != nil {
			return nil, err
		}
		if c.RadiusKm, err = r.Float64(); err != nil {
			return nil, err
		}
		p.Coverage = &c
	}
	if p.OntologyIRI, err = r.String(); err != nil {
		return nil, err
	}
	if err := r.Expect("profile"); err != nil {
		return nil, err
	}
	return p, nil
}

func classesToStrings(cs []ontology.Class) []string {
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = string(c)
	}
	return out
}

func stringsToClasses(ss []string) []ontology.Class {
	if len(ss) == 0 {
		return nil
	}
	out := make([]ontology.Class, len(ss))
	for i, s := range ss {
		out[i] = ontology.Class(s)
	}
	return out
}

// Vocabulary IRIs for the RDF rendering of profiles (an OWL-S-shaped
// mini vocabulary under the semdisco namespace).
const (
	VocabNS        = "http://semdisco.example/vocab#"
	vocabService   = VocabNS + "Service"
	vocabCategory  = VocabNS + "category"
	vocabInput     = VocabNS + "hasInput"
	vocabOutput    = VocabNS + "hasOutput"
	vocabGrounding = VocabNS + "grounding"
	vocabQoSPrefix = VocabNS + "qos-"
	vocabLat       = VocabNS + "coverageLat"
	vocabLon       = VocabNS + "coverageLon"
	vocabRadius    = VocabNS + "coverageRadiusKm"
	vocabOntology  = VocabNS + "usesOntology"
)

// ToGraph renders the profile as RDF, the form in which semantic
// descriptions would travel in an RDF/XML-era deployment; experiments
// use it to quantify the paper's "semantic advertisements are quite
// large" claim against the binary form.
func (p *Profile) ToGraph() *rdf.Graph {
	g := rdf.NewGraph()
	s := rdf.IRI(p.ServiceIRI)
	g.MustAdd(rdf.Triple{S: s, P: rdf.IRI(rdf.RDFType), O: rdf.IRI(vocabService)})
	if p.Name != "" {
		g.MustAdd(rdf.Triple{S: s, P: rdf.IRI(rdf.RDFSLabel), O: rdf.Literal(p.Name)})
	}
	if p.Text != "" {
		g.MustAdd(rdf.Triple{S: s, P: rdf.IRI(rdf.RDFSComment), O: rdf.Literal(p.Text)})
	}
	g.MustAdd(rdf.Triple{S: s, P: rdf.IRI(vocabCategory), O: rdf.IRI(string(p.Category))})
	for _, in := range p.Inputs {
		g.MustAdd(rdf.Triple{S: s, P: rdf.IRI(vocabInput), O: rdf.IRI(string(in))})
	}
	for _, out := range p.Outputs {
		g.MustAdd(rdf.Triple{S: s, P: rdf.IRI(vocabOutput), O: rdf.IRI(string(out))})
	}
	for k, v := range p.QoS {
		g.MustAdd(rdf.Triple{S: s, P: rdf.IRI(vocabQoSPrefix + k), O: rdf.FloatLiteral(v)})
	}
	g.MustAdd(rdf.Triple{S: s, P: rdf.IRI(vocabGrounding), O: rdf.IRI(p.Grounding)})
	if p.Coverage != nil {
		g.MustAdd(rdf.Triple{S: s, P: rdf.IRI(vocabLat), O: rdf.FloatLiteral(p.Coverage.LatDeg)})
		g.MustAdd(rdf.Triple{S: s, P: rdf.IRI(vocabLon), O: rdf.FloatLiteral(p.Coverage.LonDeg)})
		g.MustAdd(rdf.Triple{S: s, P: rdf.IRI(vocabRadius), O: rdf.FloatLiteral(p.Coverage.RadiusKm)})
	}
	if p.OntologyIRI != "" {
		g.MustAdd(rdf.Triple{S: s, P: rdf.IRI(vocabOntology), O: rdf.IRI(p.OntologyIRI)})
	}
	return g
}

// Template is the partial profile a client submits as a query.
// Zero-valued fields are unconstrained.
type Template struct {
	// Category restricts to services whose category is subsumed by it.
	Category ontology.Class
	// RequiredOutputs must each be covered by some service output.
	RequiredOutputs []ontology.Class
	// ProvidedInputs are what the client can supply; every service
	// input must be satisfiable from them.
	ProvidedInputs []ontology.Class
	// MinQoS holds per-attribute minimum thresholds.
	MinQoS map[string]float64
	// Keywords is a fallback text constraint (used by the keyword
	// baseline; the semantic matcher ignores it).
	Keywords []string
	// Near, when non-nil, requires the service coverage (if any) to
	// contain the point.
	Near *Point

	// itn caches interned ClassIDs for one compiled ontology (see
	// intern.go). Immutable once set.
	itn *InternedTemplate
}

// Point is a geographic position.
type Point struct {
	LatDeg, LonDeg float64
}

const templateVersion = 1

// Encode renders the template for the wire.
func (t *Template) Encode() []byte {
	var w codec.Buffer
	w.Byte(templateVersion)
	w.String(string(t.Category))
	w.StringSlice(classesToStrings(t.RequiredOutputs))
	w.StringSlice(classesToStrings(t.ProvidedInputs))
	keys := make([]string, 0, len(t.MinQoS))
	for k := range t.MinQoS {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		w.String(k)
		w.Float64(t.MinQoS[k])
	}
	w.StringSlice(t.Keywords)
	if t.Near != nil {
		w.Bool(true)
		w.Float64(t.Near.LatDeg)
		w.Float64(t.Near.LonDeg)
	} else {
		w.Bool(false)
	}
	return w.Bytes()
}

// DecodeTemplate parses an encoded template.
func DecodeTemplate(b []byte) (*Template, error) {
	r := codec.NewReader(b)
	v, err := r.Byte()
	if err != nil {
		return nil, err
	}
	if v != templateVersion {
		return nil, fmt.Errorf("profile: unsupported template version %d", v)
	}
	t := &Template{}
	cat, err := r.String()
	if err != nil {
		return nil, err
	}
	t.Category = ontology.Class(cat)
	ro, err := r.StringSlice()
	if err != nil {
		return nil, err
	}
	t.RequiredOutputs = stringsToClasses(ro)
	pi, err := r.StringSlice()
	if err != nil {
		return nil, err
	}
	t.ProvidedInputs = stringsToClasses(pi)
	nq, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if nq > 0 {
		if nq > uint64(r.Remaining()) {
			return nil, fmt.Errorf("profile: MinQoS count %d exceeds payload", nq)
		}
		t.MinQoS = make(map[string]float64, nq)
		for i := uint64(0); i < nq; i++ {
			k, err := r.String()
			if err != nil {
				return nil, err
			}
			val, err := r.Float64()
			if err != nil {
				return nil, err
			}
			t.MinQoS[k] = val
		}
	}
	if t.Keywords, err = r.StringSlice(); err != nil {
		return nil, err
	}
	hasNear, err := r.Bool()
	if err != nil {
		return nil, err
	}
	if hasNear {
		var pt Point
		if pt.LatDeg, err = r.Float64(); err != nil {
			return nil, err
		}
		if pt.LonDeg, err = r.Float64(); err != nil {
			return nil, err
		}
		t.Near = &pt
	}
	if err := r.Expect("template"); err != nil {
		return nil, err
	}
	return t, nil
}
