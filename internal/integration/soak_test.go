package integration_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"semdisco/internal/discovery"
	"semdisco/internal/federation"
	"semdisco/internal/node"
	"semdisco/internal/sim"
	"semdisco/internal/transport/memnet"
	"semdisco/internal/wire"
)

// soak drives a 3-LAN federation with 12 churning services and a
// mid-run registry crash + replacement for four minutes of virtual
// time, asserting the end-to-end invariants on every probe.
func TestSoakChurnAndFailures(t *testing.T) {
	const (
		lans        = 3
		perLAN      = 4
		lease       = 4 * time.Second
		soakTime    = 4 * time.Minute
		probeEvery  = 5 * time.Second
		stableGrace = 15 * time.Second // a service up this long must be findable
		staleGrace  = lease + 2*time.Second
	)
	w := sim.NewWorld(sim.Config{Seed: 1234, Net: memnetConfig()})
	rng := rand.New(rand.NewSource(99))

	regCfg := func(seeds []wire.PeerInfo) federation.Config {
		return federation.Config{
			BeaconInterval: 2 * time.Second,
			PingInterval:   3 * time.Second,
			PeerTimeout:    9 * time.Second,
			QueryTimeout:   200 * time.Millisecond,
			PurgeInterval:  250 * time.Millisecond,
			Seeds:          seeds,
		}
	}
	var regs []*sim.RegistryHandle
	for l := 0; l < lans; l++ {
		var seeds []wire.PeerInfo
		for _, r := range regs {
			seeds = append(seeds, r.PeerInfo())
		}
		regs = append(regs, w.AddRegistry(fmt.Sprintf("lan%d", l), fmt.Sprintf("r%d", l), regCfg(seeds)))
	}

	svcCfg := node.ServiceConfig{
		Lease:      lease,
		AckTimeout: 400 * time.Millisecond,
		Bootstrap:  discovery.Config{ProbeInterval: 500 * time.Millisecond},
	}
	type tracked struct {
		handle  *sim.ServiceHandle
		iri     string
		lan     string
		upSince time.Time // zero when down
		downAt  time.Time
	}
	var services []*tracked
	categories := []string{"RadarFeed", "CameraFeed", "WeatherService", "MapService"}
	for l := 0; l < lans; l++ {
		for i := 0; i < perLAN; i++ {
			iri := fmt.Sprintf("urn:svc:%d-%d", l, i)
			lan := fmt.Sprintf("lan%d", l)
			h := w.AddService(lan, fmt.Sprintf("s%d-%d", l, i), svcCfg,
				w.SemanticProfile(iri, sim.C(categories[i%len(categories)])))
			services = append(services, &tracked{handle: h, iri: iri, lan: lan, upSince: w.Net.Now()})
		}
	}
	cli := w.AddClient("lan0", "c0", node.ClientConfig{
		QueryTimeout: 2 * time.Second,
		Bootstrap:    discovery.Config{ProbeInterval: 500 * time.Millisecond},
	})
	w.Run(8 * time.Second)

	crashedRegistry := false
	restartCount := 0
	// missStreak tolerates single-probe misses: with injected datagram
	// loss one query can legitimately miss one branch; persistence
	// across consecutive probes is what indicts the architecture.
	missStreak := map[string]int{}
	start := w.Net.Now()
	for w.Net.Now().Sub(start) < soakTime {
		// --- churn: each step, maybe toggle one service ---
		if rng.Float64() < 0.6 {
			s := services[rng.Intn(len(services))]
			if s.upSince.IsZero() {
				// restart under the same IRI, fresh node name
				restartCount++
				s.handle = w.AddService(s.lan, fmt.Sprintf("re%d", restartCount), svcCfg,
					w.SemanticProfile(s.iri, sim.C(categories[restartCount%len(categories)])))
				s.upSince = w.Net.Now()
			} else {
				s.handle.Crash()
				s.upSince = time.Time{}
				s.downAt = w.Net.Now()
			}
		}
		// --- one registry crash + replacement mid-run ---
		if !crashedRegistry && w.Net.Now().Sub(start) > soakTime/2 {
			crashedRegistry = true
			regs[1].Crash()
			// A replacement registry joins lan1 shortly after.
			w.Net.Schedule(w.Net.Now().Add(5*time.Second), func() {
				regs[1] = w.AddRegistry("lan1", "r1b", regCfg([]wire.PeerInfo{regs[0].PeerInfo(), regs[2].PeerInfo()}))
			})
		}

		w.Run(probeEvery)

		// --- probe: a broad WAN query ---
		spec := w.SemanticSpec(sim.C("Service"), 4)
		spec.MaxResults = 100
		out := cli.Query(spec, 30*time.Second)

		// Invariant 1 (liveness): every query completes.
		if !out.Completed {
			t.Fatalf("query hung at t=%v", w.Net.Now().Sub(start))
		}

		now := w.Net.Now()
		returned := map[string]bool{}
		for _, a := range out.Adverts {
			d, err := w.Models().DecodeDescription(a.Kind, a.Payload)
			if err != nil {
				t.Fatalf("undecodable advert returned: %v", err)
			}
			returned[d.ServiceKey()] = true
		}
		for _, s := range services {
			// Invariant 2 (freshness): a service dead longer than
			// lease+grace must not be returned.
			if s.upSince.IsZero() && now.Sub(s.downAt) > staleGrace && returned[s.iri] {
				t.Fatalf("stale advert for %s returned %v after its crash",
					s.iri, now.Sub(s.downAt))
			}
			// Invariant 3 (convergence): a service stably up longer than
			// the grace must be discoverable — except during the window
			// where its LAN registry was crashed and not yet replaced,
			// and tolerating one lost probe (datagram loss is injected).
			if !s.upSince.IsZero() && now.Sub(s.upSince) > stableGrace && !returned[s.iri] {
				if registryAlive(w, s.lan) {
					missStreak[s.iri]++
					if missStreak[s.iri] >= 2 {
						t.Fatalf("stable service %s (up %v) missing from 2 consecutive probes at t=%v",
							s.iri, now.Sub(s.upSince), now.Sub(start))
					}
				}
			} else {
				missStreak[s.iri] = 0
			}
		}
	}

	// Epilogue: stop churn, let everything settle, demand full recall.
	upCount := 0
	for _, s := range services {
		if !s.upSince.IsZero() {
			upCount++
		}
	}
	w.Run(30 * time.Second)
	spec := w.SemanticSpec(sim.C("Service"), 4)
	spec.MaxResults = 100
	out := cli.Query(spec, 30*time.Second)
	found := map[string]bool{}
	for _, a := range out.Adverts {
		d, _ := w.Models().DecodeDescription(a.Kind, a.Payload)
		if d != nil {
			found[d.ServiceKey()] = true
		}
	}
	for _, s := range services {
		if !s.upSince.IsZero() && !found[s.iri] {
			t.Errorf("after settling, live service %s not discoverable", s.iri)
		}
		if s.upSince.IsZero() && found[s.iri] {
			t.Errorf("after settling, dead service %s still discoverable", s.iri)
		}
	}
	if upCount == 0 {
		t.Fatal("degenerate soak: no services alive at the end")
	}
	t.Logf("soak done: %d/%d services up, %d restarts, stats=%+v",
		upCount, len(services), restartCount, w.Net.Stats().MessagesSent)
}

// registryAlive reports whether the LAN currently has a live registry.
func registryAlive(w *sim.World, lan string) bool {
	for _, addr := range w.Net.NodesOn(lan) {
		for _, r := range w.Registries {
			if r.Addr == addr && w.Net.IsUp(addr) {
				return true
			}
		}
	}
	return false
}

// memnetConfig adds mild realism: jitter and 1% datagram loss, which
// the protocol's retries must absorb.
func memnetConfig() memnet.Config {
	return memnet.Config{Jitter: 2 * time.Millisecond, Loss: 0.01}
}
