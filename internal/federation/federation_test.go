package federation

import (
	"fmt"
	"testing"
	"time"

	"semdisco/internal/describe"
	"semdisco/internal/lease"
	"semdisco/internal/ontology"
	"semdisco/internal/profile"
	"semdisco/internal/registry"
	"semdisco/internal/runtime"
	"semdisco/internal/transport"
	"semdisco/internal/transport/memnet"
	"semdisco/internal/uuid"
	"semdisco/internal/wire"
)

const ns = "http://semdisco.example/onto#"

func c(name string) ontology.Class { return ontology.Class(ns + name) }

func testOntology(t testing.TB) *ontology.Ontology {
	t.Helper()
	o := ontology.New(ns)
	for _, a := range [][2]string{{"Sensor", "Device"}, {"Radar", "Sensor"}, {"Camera", "Sensor"}} {
		if err := o.AddClass(c(a[0]), c(a[1])); err != nil {
			t.Fatal(err)
		}
	}
	o.Freeze()
	return o
}

// harness builds registries and synthetic clients over one memnet.
type harness struct {
	t    *testing.T
	net  *memnet.Network
	onto *ontology.Ontology
	gen  *uuid.Generator
	regs map[string]*Registry
}

func newHarness(t *testing.T) *harness {
	return &harness{
		t:    t,
		net:  memnet.New(memnet.Config{Seed: 7}),
		onto: testOntology(t),
		gen:  uuid.NewGenerator(123),
		regs: make(map[string]*Registry),
	}
}

func (h *harness) models() *describe.Registry {
	return describe.NewRegistry(describe.URIModel{}, describe.KVModel{}, describe.NewSemanticModel(h.onto))
}

// addRegistry creates and starts a federated registry at lan/name.
func (h *harness) addRegistry(lan, name string, cfg Config) *Registry {
	addr := transport.Addr(lan + "/" + name)
	store := registry.New(registry.Options{
		Models: h.models(),
		Leases: lease.Policy{Min: 100 * time.Millisecond, Max: time.Hour, Default: 30 * time.Second},
	})
	env := &runtime.Env{ID: h.gen.New(), Clock: h.net, Gen: h.gen}
	var reg *Registry
	env.Iface = h.net.Attach(addr, lan, func(from transport.Addr, data []byte) {
		runtime.Dispatch(reg, env, from, data)
	})
	reg = New(env, store, cfg)
	reg.Start()
	h.regs[string(addr)] = reg
	return reg
}

// testClient is a minimal protocol endpoint for driving registries.
type testClient struct {
	env     *runtime.Env
	results map[uuid.UUID][]wire.Advertisement
	done    map[uuid.UUID]bool
	acks    []wire.PublishAck
	renews  []wire.RenewAck
	arts    []wire.ArtifactData
}

func (h *harness) addClient(lan, name string) *testClient {
	addr := transport.Addr(lan + "/" + name)
	tc := &testClient{
		results: make(map[uuid.UUID][]wire.Advertisement),
		done:    make(map[uuid.UUID]bool),
	}
	env := &runtime.Env{ID: h.gen.New(), Clock: h.net, Gen: h.gen}
	env.Iface = h.net.Attach(addr, lan, func(from transport.Addr, data []byte) {
		e, err := wire.Unmarshal(data)
		if err != nil {
			return
		}
		switch b := e.Body.(type) {
		case wire.QueryResult:
			tc.results[b.QueryID] = append(tc.results[b.QueryID], b.Adverts...)
			if b.Complete {
				tc.done[b.QueryID] = true
			}
		case wire.PublishAck:
			tc.acks = append(tc.acks, b)
		case wire.RenewAck:
			tc.renews = append(tc.renews, b)
		case wire.ArtifactData:
			tc.arts = append(tc.arts, b)
		}
	})
	tc.env = env
	return tc
}

func (h *harness) semAdvert(serviceIRI, category string, lease time.Duration) wire.Advertisement {
	p := &profile.Profile{ServiceIRI: serviceIRI, Category: c(category), Grounding: "urn:g"}
	return wire.Advertisement{
		ID: h.gen.New(), Provider: h.gen.New(), ProviderAddr: "x",
		Kind: describe.KindSemantic, Payload: p.Encode(),
		LeaseMillis: uint64(lease / time.Millisecond), Version: 1,
	}
}

func (h *harness) publish(tc *testClient, reg *Registry, adv wire.Advertisement) {
	tc.env.Send(reg.Addr(), wire.Publish{Advert: adv})
	h.net.RunFor(50 * time.Millisecond)
}

func (h *harness) query(tc *testClient, reg *Registry, category string, ttl uint8, opts ...func(*wire.Query)) uuid.UUID {
	q := wire.Query{
		QueryID:   h.gen.New(),
		Kind:      describe.KindSemantic,
		Payload:   (&describe.SemanticQuery{Template: &profile.Template{Category: c(category)}}).Encode(),
		TTL:       ttl,
		ReplyAddr: string(tc.env.Addr()),
	}
	for _, o := range opts {
		o(&q)
	}
	tc.env.Send(reg.Addr(), q)
	return q.QueryID
}

func peerInfo(r *Registry) wire.PeerInfo {
	return wire.PeerInfo{ID: r.ID(), Addr: string(r.Addr())}
}

func TestLANRegistriesDiscoverEachOther(t *testing.T) {
	h := newHarness(t)
	r1 := h.addRegistry("lan0", "r1", Config{})
	r2 := h.addRegistry("lan0", "r2", Config{})
	h.net.RunFor(time.Second)
	if len(r1.Peers()) != 1 || r1.Peers()[0].ID != r2.ID() {
		t.Fatalf("r1 peers = %v", r1.Peers())
	}
	if len(r2.Peers()) != 1 || r2.Peers()[0].ID != r1.ID() {
		t.Fatalf("r2 peers = %v", r2.Peers())
	}
}

func TestPublishQueryLocal(t *testing.T) {
	h := newHarness(t)
	r1 := h.addRegistry("lan0", "r1", Config{})
	tc := h.addClient("lan0", "c1")
	adv := h.semAdvert("urn:svc:radar", "Radar", time.Minute)
	h.publish(tc, r1, adv)
	if len(tc.acks) != 1 || !tc.acks[0].OK {
		t.Fatalf("acks = %+v", tc.acks)
	}
	if tc.acks[0].LeaseMillis != 60_000 {
		t.Fatalf("granted lease = %d ms", tc.acks[0].LeaseMillis)
	}
	qid := h.query(tc, r1, "Sensor", 0)
	h.net.RunFor(time.Second)
	if !tc.done[qid] || len(tc.results[qid]) != 1 || tc.results[qid][0].ID != adv.ID {
		t.Fatalf("query results = %v (done=%v)", tc.results[qid], tc.done[qid])
	}
}

func TestRenewKeepsAdvertAlive(t *testing.T) {
	h := newHarness(t)
	r1 := h.addRegistry("lan0", "r1", Config{})
	tc := h.addClient("lan0", "c1")
	adv := h.semAdvert("urn:svc:radar", "Radar", time.Second)
	h.publish(tc, r1, adv)
	// Renew every 500 ms for 3 s.
	for i := 0; i < 6; i++ {
		h.net.RunFor(500 * time.Millisecond)
		tc.env.Send(r1.Addr(), wire.Renew{AdvertID: adv.ID})
	}
	h.net.RunFor(100 * time.Millisecond)
	if r1.Store().Len() != 1 {
		t.Fatal("renewed advert purged")
	}
	if len(tc.renews) == 0 || !tc.renews[0].OK {
		t.Fatalf("renew acks = %+v", tc.renews)
	}
	// Stop renewing; lease lapses and the purge timer removes it.
	h.net.RunFor(3 * time.Second)
	if r1.Store().Len() != 0 {
		t.Fatal("advert survived without renewals — leasing broken")
	}
	// Renew after purge tells the provider to republish.
	tc.renews = nil
	tc.env.Send(r1.Addr(), wire.Renew{AdvertID: adv.ID})
	h.net.RunFor(100 * time.Millisecond)
	if len(tc.renews) != 1 || tc.renews[0].OK {
		t.Fatalf("post-purge renew = %+v, want OK=false", tc.renews)
	}
}

func TestWANFederatedQuery(t *testing.T) {
	h := newHarness(t)
	r1 := h.addRegistry("lan0", "r1", Config{})
	r2 := h.addRegistry("lan1", "r2", Config{Seeds: []wire.PeerInfo{peerInfo(r1)}})
	h.net.RunFor(time.Second) // seeds connect
	tcA := h.addClient("lan0", "cA")
	tcB := h.addClient("lan1", "cB")
	adv := h.semAdvert("urn:svc:radar", "Radar", time.Minute)
	h.publish(tcB, r2, adv) // service known only on lan1
	// Client on lan0 asks its local registry with TTL 2; the query must
	// reach r2 and the result must come back aggregated.
	qid := h.query(tcA, r1, "Sensor", 2)
	h.net.RunFor(3 * time.Second)
	if !tcA.done[qid] {
		t.Fatal("federated query never completed")
	}
	if len(tcA.results[qid]) != 1 || tcA.results[qid][0].ID != adv.ID {
		t.Fatalf("federated results = %v", tcA.results[qid])
	}
}

func TestLoopAvoidanceInCycle(t *testing.T) {
	h := newHarness(t)
	// Triangle: r1-r2, r2-r3, r3-r1.
	r1 := h.addRegistry("lan0", "r1", Config{})
	r2 := h.addRegistry("lan1", "r2", Config{Seeds: []wire.PeerInfo{peerInfo(r1)}})
	r3 := h.addRegistry("lan2", "r3", Config{Seeds: []wire.PeerInfo{peerInfo(r1), peerInfo(r2)}})
	h.net.RunFor(2 * time.Second)
	tc := h.addClient("lan0", "c1")
	qid := h.query(tc, r1, "Sensor", 10) // TTL larger than the cycle
	h.net.RunFor(5 * time.Second)
	if !tc.done[qid] {
		t.Fatal("query in cyclic topology never completed")
	}
	dups := r1.Stats().DuplicatesSuppressed + r2.Stats().DuplicatesSuppressed + r3.Stats().DuplicatesSuppressed
	if dups == 0 {
		t.Fatal("cycle produced no suppressed duplicates — loop avoidance untested by topology")
	}
	// Each registry must have evaluated the query exactly once
	// (received may exceed 1, but non-duplicate processing is 1).
	for i, r := range []*Registry{r1, r2, r3} {
		st := r.Stats()
		if st.QueriesReceived-st.DuplicatesSuppressed != 1 {
			t.Fatalf("registry %d processed %d copies", i+1, st.QueriesReceived-st.DuplicatesSuppressed)
		}
	}
}

func TestResponseControlAcrossFederation(t *testing.T) {
	h := newHarness(t)
	r1 := h.addRegistry("lan0", "r1", Config{})
	r2 := h.addRegistry("lan1", "r2", Config{Seeds: []wire.PeerInfo{peerInfo(r1)}})
	h.net.RunFor(time.Second)
	tc := h.addClient("lan0", "c1")
	tcB := h.addClient("lan1", "c2")
	for i := 0; i < 5; i++ {
		h.publish(tc, r1, h.semAdvert(fmt.Sprintf("urn:svc:a%d", i), "Radar", time.Minute))
		h.publish(tcB, r2, h.semAdvert(fmt.Sprintf("urn:svc:b%d", i), "Radar", time.Minute))
	}
	qid := h.query(tc, r1, "Sensor", 2, func(q *wire.Query) { q.BestOnly = true })
	h.net.RunFor(3 * time.Second)
	if !tc.done[qid] || len(tc.results[qid]) != 1 {
		t.Fatalf("BestOnly federated query returned %d results", len(tc.results[qid]))
	}
	qid = h.query(tc, r1, "Sensor", 2, func(q *wire.Query) { q.MaxResults = 3 })
	h.net.RunFor(3 * time.Second)
	if len(tc.results[qid]) != 3 {
		t.Fatalf("MaxResults=3 federated query returned %d results", len(tc.results[qid]))
	}
}

func TestGatewayCoordination(t *testing.T) {
	// Two registries on lan0, both peered with a WAN registry. With
	// coordination, only the lowest-ID registry forwards to the WAN.
	build := func(coord bool) uint64 {
		h := newHarness(t)
		rw := h.addRegistry("wan", "rw", Config{})
		cfg := Config{GatewayCoordination: coord, Seeds: []wire.PeerInfo{peerInfo(rw)}}
		r1 := h.addRegistry("lan0", "r1", cfg)
		r2 := h.addRegistry("lan0", "r2", cfg)
		h.net.RunFor(2 * time.Second)
		tc := h.addClient("lan0", "c1")
		// Query both registries directly with the same query ID pattern:
		// a broadcast-style client sends to every local registry.
		qid := h.query(tc, r1, "Sensor", 2)
		h.net.RunFor(3 * time.Second)
		_ = qid
		_ = r2
		// Count how many query messages the WAN registry received.
		return rw.Stats().QueriesReceived
	}
	without := build(false)
	with := build(true)
	if with > without {
		t.Fatalf("coordination increased WAN queries: %d vs %d", with, without)
	}
	if with == 0 {
		t.Fatal("gateway never forwarded to WAN")
	}
}

func TestIsGatewayElection(t *testing.T) {
	h := newHarness(t)
	cfg := Config{GatewayCoordination: true}
	r1 := h.addRegistry("lan0", "r1", cfg)
	r2 := h.addRegistry("lan0", "r2", cfg)
	h.net.RunFor(time.Second)
	g1, g2 := r1.IsGateway(), r2.IsGateway()
	if g1 == g2 {
		t.Fatalf("gateway election tie: %v, %v", g1, g2)
	}
	// The lower ID must hold the role.
	wantR1 := uuid.Compare(r1.ID(), r2.ID()) < 0
	if g1 != wantR1 {
		t.Fatal("gateway is not the lowest node ID")
	}
	// Kill the gateway; the survivor takes over after peer timeout.
	gw, other := r1, r2
	if !g1 {
		gw, other = r2, r1
	}
	h.net.SetUp(gw.Addr(), false)
	h.net.RunFor(time.Minute)
	if !other.IsGateway() {
		t.Fatal("surviving registry did not take over the gateway role")
	}
}

func TestPushReplication(t *testing.T) {
	h := newHarness(t)
	r1 := h.addRegistry("lan0", "r1", Config{PushReplication: true, PushHops: 1})
	r2 := h.addRegistry("lan1", "r2", Config{Seeds: []wire.PeerInfo{peerInfo(r1)}})
	h.net.RunFor(time.Second)
	tc := h.addClient("lan0", "c1")
	adv := h.semAdvert("urn:svc:radar", "Radar", time.Minute)
	h.publish(tc, r1, adv)
	h.net.RunFor(time.Second)
	if !r2.Store().Has(adv.ID) {
		t.Fatal("advert not replicated to peer")
	}
	// A local query on lan1 with TTL 0 now finds it without forwarding.
	tcB := h.addClient("lan1", "c2")
	qid := h.query(tcB, r2, "Sensor", 0)
	h.net.RunFor(time.Second)
	if len(tcB.results[qid]) != 1 {
		t.Fatal("replicated advert not served locally")
	}
}

func TestSummaryPruning(t *testing.T) {
	h := newHarness(t)
	r1 := h.addRegistry("lan0", "r1", Config{SummaryPruning: true, SummaryInterval: 200 * time.Millisecond})
	r2 := h.addRegistry("lan1", "r2", Config{
		SummaryPruning: true, SummaryInterval: 200 * time.Millisecond,
		Seeds: []wire.PeerInfo{peerInfo(r1)},
	})
	h.net.RunFor(time.Second)
	tcB := h.addClient("lan1", "c2")
	// r2 stores only a Camera service; its summary reaches r1.
	h.publish(tcB, r2, h.semAdvert("urn:svc:cam", "Camera", time.Minute))
	h.net.RunFor(time.Second)

	tc := h.addClient("lan0", "c1")
	// A Radar query from lan0 cannot match Camera; r1 must prune the
	// forward to r2 entirely.
	before := r2.Stats().QueriesReceived
	qid := h.query(tc, r1, "Radar", 2)
	h.net.RunFor(2 * time.Second)
	if !tc.done[qid] {
		t.Fatal("pruned query never completed")
	}
	if got := r2.Stats().QueriesReceived; got != before {
		t.Fatalf("r2 received %d queries despite non-matching summary", got-before)
	}
	if r1.Stats().ForwardsPruned == 0 {
		t.Fatal("pruning not accounted")
	}
	// A Sensor query does subsume Camera and must be forwarded.
	qid = h.query(tc, r1, "Sensor", 2)
	h.net.RunFor(2 * time.Second)
	if len(tc.results[qid]) != 1 {
		t.Fatalf("subsuming query pruned incorrectly: %v", tc.results[qid])
	}
}

func TestPeerFailureExpiry(t *testing.T) {
	h := newHarness(t)
	r1 := h.addRegistry("lan0", "r1", Config{PingInterval: 500 * time.Millisecond, PeerTimeout: 2 * time.Second})
	r2 := h.addRegistry("lan1", "r2", Config{
		PingInterval: 500 * time.Millisecond, PeerTimeout: 2 * time.Second,
		Seeds: []wire.PeerInfo{peerInfo(r1)},
	})
	h.net.RunFor(time.Second)
	if len(r1.Peers()) != 1 {
		t.Fatalf("r1 peers = %v", r1.Peers())
	}
	h.net.SetUp(r2.Addr(), false)
	h.net.RunFor(10 * time.Second)
	if len(r1.Peers()) != 0 {
		t.Fatal("dead peer not expired from peer table")
	}
	if r1.Stats().PeersExpired == 0 {
		t.Fatal("peer expiry not accounted")
	}
}

func TestRegistrySignalingSharesAlternates(t *testing.T) {
	h := newHarness(t)
	r1 := h.addRegistry("lan0", "r1", Config{})
	r2 := h.addRegistry("lan1", "r2", Config{Seeds: []wire.PeerInfo{peerInfo(r1)}})
	r3 := h.addRegistry("lan2", "r3", Config{Seeds: []wire.PeerInfo{peerInfo(r1)}})
	h.net.RunFor(5 * time.Second) // pings exchange pongs with peer lists
	_ = r2
	// r2 and r3 both seeded only r1; through r1's pongs they must learn
	// about each other (registry signaling).
	found := false
	for _, p := range r3.Peers() {
		if p.ID == r2.ID() {
			found = true
		}
	}
	if !found {
		t.Fatalf("r3 never learned about r2 via signaling: %v", r3.Peers())
	}
}

func TestArtifactServing(t *testing.T) {
	h := newHarness(t)
	r1 := h.addRegistry("lan0", "r1", Config{})
	r1.Store().PutArtifact(ns, []byte("ontology document"))
	tc := h.addClient("lan0", "c1")
	tc.env.Send(r1.Addr(), wire.ArtifactGet{IRI: ns})
	tc.env.Send(r1.Addr(), wire.ArtifactGet{IRI: "urn:missing"})
	h.net.RunFor(time.Second)
	if len(tc.arts) != 2 {
		t.Fatalf("artifact responses = %d", len(tc.arts))
	}
	if !tc.arts[0].Found || string(tc.arts[0].Data) != "ontology document" {
		t.Fatalf("artifact 0 = %+v", tc.arts[0])
	}
	if tc.arts[1].Found {
		t.Fatal("missing artifact reported found")
	}
}

func TestRandomWalkForwardsToSubset(t *testing.T) {
	h := newHarness(t)
	hub := h.addRegistry("wan", "hub", Config{})
	var leaves []*Registry
	for i := 0; i < 6; i++ {
		leaves = append(leaves, h.addRegistry(fmt.Sprintf("lan%d", i), fmt.Sprintf("r%d", i),
			Config{Seeds: []wire.PeerInfo{peerInfo(hub)}}))
	}
	h.net.RunFor(2 * time.Second)
	tc := h.addClient("wan", "c1")
	qid := h.query(tc, hub, "Sensor", 1, func(q *wire.Query) {
		q.Strategy = wire.StrategyRandomWalk
		q.Walkers = 2
	})
	h.net.RunFor(3 * time.Second)
	if !tc.done[qid] {
		t.Fatal("walk query never completed")
	}
	received := 0
	for _, l := range leaves {
		received += int(l.Stats().QueriesReceived)
	}
	if received != 2 {
		t.Fatalf("random walk reached %d leaves, want exactly 2 walkers", received)
	}
}

func TestStopSendsBye(t *testing.T) {
	h := newHarness(t)
	r1 := h.addRegistry("lan0", "r1", Config{})
	r2 := h.addRegistry("lan0", "r2", Config{})
	h.net.RunFor(time.Second)
	if len(r2.Peers()) != 1 {
		t.Fatal("setup failed")
	}
	r1.Stop()
	h.net.RunFor(time.Second)
	if len(r2.Peers()) != 0 {
		t.Fatal("bye did not remove departed registry from peer table")
	}
	// Stop is idempotent and halts timers.
	r1.Stop()
}

func TestSubscriptionNotificationViaWire(t *testing.T) {
	h := newHarness(t)
	r1 := h.addRegistry("lan0", "r1", Config{})
	tc := h.addClient("lan0", "c1")
	subID := h.gen.New()
	q := &describe.SemanticQuery{Template: &profile.Template{Category: c("Sensor")}}
	if _, err := r1.Store().Subscribe(describe.KindSemantic, q.Encode(), string(tc.env.Addr()), subID, time.Time{}); err != nil {
		t.Fatal(err)
	}
	adv := h.semAdvert("urn:svc:radar", "Radar", time.Minute)
	h.publish(tc, r1, adv)
	h.net.RunFor(time.Second)
	if len(tc.results[subID]) != 1 || tc.results[subID][0].ID != adv.ID {
		t.Fatalf("subscription notification = %v", tc.results[subID])
	}
}

func TestSubscribeOverWire(t *testing.T) {
	h := newHarness(t)
	r1 := h.addRegistry("lan0", "r1", Config{PurgeInterval: 200 * time.Millisecond})
	tc := h.addClient("lan0", "c1")
	subID := h.gen.New()
	q := &describe.SemanticQuery{Template: &profile.Template{Category: c("Sensor")}}
	tc.env.Send(r1.Addr(), wire.Subscribe{
		SubID: subID, Kind: describe.KindSemantic, Payload: q.Encode(),
		NotifyAddr: string(tc.env.Addr()), LeaseMillis: 2000,
	})
	h.net.RunFor(time.Second)
	if r1.Store().NumSubscriptions() != 1 {
		t.Fatal("subscription not registered")
	}
	// A matching publish notifies the subscriber.
	adv := h.semAdvert("urn:svc:radar", "Radar", time.Minute)
	h.publish(tc, r1, adv)
	h.net.RunFor(time.Second)
	if len(tc.results[subID]) != 1 {
		t.Fatalf("notifications = %d", len(tc.results[subID]))
	}
	// Without renewal the 2s lease lapses and the registry prunes it.
	h.net.RunFor(5 * time.Second)
	if r1.Store().NumSubscriptions() != 0 {
		t.Fatal("expired subscription not pruned")
	}
	// Unknown kind is rejected with an error ack.
	tc.env.Send(r1.Addr(), wire.Subscribe{SubID: h.gen.New(), Kind: describe.Kind(42)})
	h.net.RunFor(time.Second)
	// Unsubscribe of a fresh subscription removes it.
	sub2 := h.gen.New()
	tc.env.Send(r1.Addr(), wire.Subscribe{SubID: sub2, Kind: describe.KindSemantic, Payload: q.Encode(), LeaseMillis: 60000})
	h.net.RunFor(time.Second)
	tc.env.Send(r1.Addr(), wire.Unsubscribe{SubID: sub2})
	h.net.RunFor(time.Second)
	if r1.Store().NumSubscriptions() != 0 {
		t.Fatal("unsubscribe over the wire failed")
	}
}

func TestSubscriptionLeaseClamp(t *testing.T) {
	cases := []struct {
		req  uint64
		want time.Duration
	}{
		{0, time.Minute},
		{10, time.Second},
		{5000, 5 * time.Second},
		{uint64(time.Hour / time.Millisecond), 10 * time.Minute},
	}
	for _, cse := range cases {
		if got := subscriptionLease(cse.req); got != cse.want {
			t.Errorf("subscriptionLease(%d) = %v, want %v", cse.req, got, cse.want)
		}
	}
}

func TestCrashStopsTimersAndHandling(t *testing.T) {
	h := newHarness(t)
	r1 := h.addRegistry("lan0", "r1", Config{})
	r2 := h.addRegistry("lan0", "r2", Config{})
	h.net.RunFor(time.Second)
	r1.Crash()
	// A crashed registry must not process messages even if they arrive.
	tc := h.addClient("lan0", "c1")
	adv := h.semAdvert("urn:svc:x", "Radar", time.Minute)
	tc.env.Send(r1.Addr(), wire.Publish{Advert: adv})
	h.net.RunFor(time.Second)
	if r1.Store().Len() != 0 {
		t.Fatal("crashed registry stored an advert")
	}
	_ = r2
}

func TestPeerTableEviction(t *testing.T) {
	h := newHarness(t)
	r1 := h.addRegistry("lan0", "r1", Config{MaxPeers: 3})
	// Feed more peers than the cap via peer exchange.
	var infos []wire.PeerInfo
	for i := 0; i < 6; i++ {
		infos = append(infos, wire.PeerInfo{ID: h.gen.New(), Addr: fmt.Sprintf("wan/p%d", i)})
	}
	tc := h.addClient("lan0", "c1")
	tc.env.Send(r1.Addr(), wire.PeerExchange{Peers: infos})
	h.net.RunFor(time.Second)
	if got := len(r1.Peers()); got > 3 {
		t.Fatalf("peer table grew to %d despite MaxPeers=3", got)
	}
}

func TestRespondWithoutModelRelays(t *testing.T) {
	// A registry whose model registry lacks the query kind still relays
	// pooled results (capped), so constrained registries can forward.
	h := newHarness(t)
	// Build a registry with only the URI model.
	addr := transport.Addr("lan0/limited")
	store := registry.New(registry.Options{
		Models: describe.NewRegistry(describe.URIModel{}),
		Leases: lease.Policy{Min: 100 * time.Millisecond, Max: time.Hour},
	})
	env := &runtime.Env{ID: h.gen.New(), Clock: h.net, Gen: h.gen}
	var reg *Registry
	env.Iface = h.net.Attach(addr, "lan0", func(from transport.Addr, data []byte) {
		runtime.Dispatch(reg, env, from, data)
	})
	reg = New(env, store, Config{})
	reg.Start()

	// A full registry one hop away holds a semantic advert.
	full := h.addRegistry("lan1", "rfull", Config{Seeds: []wire.PeerInfo{{ID: reg.ID(), Addr: string(addr)}}})
	tcB := h.addClient("lan1", "c2")
	adv := h.semAdvert("urn:svc:radar", "Radar", time.Minute)
	h.publish(tcB, full, adv)
	h.net.RunFor(time.Second)

	// Client asks the LIMITED registry with TTL 1; it cannot evaluate
	// semantic payloads but must forward and relay the results.
	tc := h.addClient("lan0", "c1")
	qid := h.query(tc, reg, "Sensor", 1)
	h.net.RunFor(3 * time.Second)
	if !tc.done[qid] || len(tc.results[qid]) != 1 {
		t.Fatalf("relay through model-less registry = %v (done=%v)", tc.results[qid], tc.done[qid])
	}
}
