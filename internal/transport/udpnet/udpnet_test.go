package udpnet

import (
	"sync"
	"testing"
	"time"

	"semdisco/internal/transport"
)

// waitFor polls until cond is true or the deadline passes; real-clock
// tests must tolerate scheduler jitter.
func waitFor(t *testing.T, d time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return cond()
}

func TestUnicastLoopback(t *testing.T) {
	a, err := Listen(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Listen(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	var mu sync.Mutex
	var got []byte
	var from transport.Addr
	b.SetHandler(func(f transport.Addr, data []byte) {
		mu.Lock()
		defer mu.Unlock()
		got = append([]byte{}, data...)
		from = f
	})
	if err := a.Unicast(b.Addr(), []byte("hello")); err != nil {
		t.Fatal(err)
	}
	ok := waitFor(t, 2*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return string(got) == "hello"
	})
	if !ok {
		t.Fatal("datagram never arrived")
	}
	mu.Lock()
	defer mu.Unlock()
	if from != a.Addr() {
		t.Fatalf("from = %s, want %s", from, a.Addr())
	}
}

func TestHandlersSerialized(t *testing.T) {
	a, err := Listen(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Listen(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	inHandler := 0
	maxConcurrent := 0
	var mu sync.Mutex
	count := 0
	b.SetHandler(func(transport.Addr, []byte) {
		mu.Lock()
		inHandler++
		if inHandler > maxConcurrent {
			maxConcurrent = inHandler
		}
		mu.Unlock()
		time.Sleep(time.Millisecond)
		mu.Lock()
		inHandler--
		count++
		mu.Unlock()
	})
	for i := 0; i < 20; i++ {
		if err := a.Unicast(b.Addr(), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return count >= 15 // UDP may drop a few under load
	})
	mu.Lock()
	defer mu.Unlock()
	if maxConcurrent != 1 {
		t.Fatalf("handlers ran %d-way concurrent; executor must serialize", maxConcurrent)
	}
	if count == 0 {
		t.Fatal("no datagrams processed")
	}
}

func TestAfterAndCancel(t *testing.T) {
	a, err := Listen(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	var mu sync.Mutex
	fired := 0
	cancel := a.After(20*time.Millisecond, func() {
		mu.Lock()
		fired++
		mu.Unlock()
	})
	cancel()
	a.After(20*time.Millisecond, func() {
		mu.Lock()
		fired += 10
		mu.Unlock()
	})
	waitFor(t, 2*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return fired >= 10
	})
	mu.Lock()
	defer mu.Unlock()
	if fired != 10 {
		t.Fatalf("fired = %d, want 10 (first canceled)", fired)
	}
}

func TestDoRunsOnExecutor(t *testing.T) {
	a, err := Listen(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	ran := false
	a.Do(func() { ran = true })
	if !ran {
		t.Fatal("Do did not run synchronously")
	}
}

func TestCloseStopsSends(t *testing.T) {
	a, err := Listen(Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Listen(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.Close()
	a.Close() // idempotent
	if err := a.Unicast(b.Addr(), []byte("x")); err == nil {
		t.Fatal("unicast after close succeeded")
	}
	if err := a.Multicast([]byte("x")); err == nil {
		t.Fatal("multicast after close succeeded")
	}
}

func TestMulticastDisabledIsNoop(t *testing.T) {
	a, err := Listen(Config{}) // no group
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if a.MulticastReady() {
		t.Fatal("multicast ready without a group")
	}
	if err := a.Multicast([]byte("x")); err != nil {
		t.Fatalf("disabled multicast errored: %v", err)
	}
}

func TestMulticastBetweenNodes(t *testing.T) {
	group := "239.77.77.99:17799"
	a, err := Listen(Config{Multicast: group})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Listen(Config{Multicast: group})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if !a.MulticastReady() || !b.MulticastReady() {
		t.Skip("multicast unavailable in this environment")
	}
	var mu sync.Mutex
	var got string
	b.SetHandler(func(_ transport.Addr, data []byte) {
		mu.Lock()
		got = string(data)
		mu.Unlock()
	})
	// Multicast delivery may be flaky in constrained environments; try
	// a few times before deciding.
	delivered := false
	for attempt := 0; attempt < 5 && !delivered; attempt++ {
		if err := a.Multicast([]byte("mc")); err != nil {
			t.Fatal(err)
		}
		delivered = waitFor(t, 500*time.Millisecond, func() bool {
			mu.Lock()
			defer mu.Unlock()
			return got == "mc"
		})
	}
	if !delivered {
		t.Skip("multicast datagrams not delivered in this environment")
	}
}
