package transport

import (
	"errors"
	"sync"
	"time"

	"semdisco/internal/obs"
	"semdisco/internal/wire"
)

// Datagram coalescing observability: how much traffic rides the batch
// path and what triggers flushes. Documented in OBSERVABILITY.md.
var (
	mBatchQueued = obs.NewCounter("transport.batch.queued.msgs", "count",
		"messages accepted into per-destination batch queues")
	mBatchBypass = obs.NewCounter("transport.batch.bypass.msgs", "count",
		"messages sent immediately because their type is not batch-eligible")
	mBatchFlushSize = obs.NewCounter("transport.batch.flush.size", "count",
		"queue flushes triggered by the size or message-count threshold")
	mBatchFlushDeadline = obs.NewCounter("transport.batch.flush.deadline", "count",
		"queue flushes triggered by the flush-delay deadline")
	mBatchFrames = obs.NewCounter("transport.batch.frames", "count",
		"coalesced batch frames sent (2+ messages in one datagram)")
	mBatchMsgs = obs.NewCounter("transport.batch.batched.msgs", "count",
		"messages sent inside coalesced batch frames")
	mBatchSolo = obs.NewCounter("transport.batch.solo.msgs", "count",
		"flushed messages sent as plain frames (queue held only one)")
)

// Outgoing is one destined datagram in a multi-send operation.
type Outgoing struct {
	To   Addr
	Data []byte
}

// BatchSender is optionally implemented by bearers that can hand a group
// of datagrams to the network in a single operation — sendmmsg on the
// UDP transport, one event-loop entry on the simulator. Each Outgoing is
// still an independent datagram: loss, reordering and duplication apply
// per element, never to the group.
type BatchSender interface {
	UnicastBatch(msgs []Outgoing) error
}

// BatcherConfig tunes a Batcher. The zero value gives MTU-bounded
// batches of up to 32 messages flushed within 2ms.
type BatcherConfig struct {
	// MaxMessages flushes a destination's queue when it reaches this
	// many messages (bounded by wire.MaxBatchMessages); default 32.
	MaxMessages int
	// MaxBytes bounds the coalesced datagram: a queue is flushed before
	// accepting a frame that would push the batch — framing overhead
	// included — past this size, and any single message at least this
	// large bypasses batching; default 1400 (one Ethernet MTU).
	MaxBytes int
	// FlushDelay bounds how long an eligible message may wait for
	// companions; default 2ms.
	FlushDelay time.Duration
	// Eligible selects which message types are worth delaying; nil uses
	// DefaultBatchEligible.
	Eligible func(wire.MsgType) bool
}

func (c BatcherConfig) withDefaults() BatcherConfig {
	if c.MaxMessages <= 0 {
		c.MaxMessages = 32
	}
	if c.MaxMessages > wire.MaxBatchMessages {
		c.MaxMessages = wire.MaxBatchMessages
	}
	if c.MaxBytes <= 0 {
		c.MaxBytes = 1400
	}
	if c.FlushDelay <= 0 {
		c.FlushDelay = 2 * time.Millisecond
	}
	if c.Eligible == nil {
		c.Eligible = DefaultBatchEligible
	}
	return c
}

// DefaultBatchEligible marks the small high-rate message types — lease
// renewals and their acks, aliveness checks, gossip, summary deltas and
// notify/result fan-out — as coalescible. Conversation-opening requests
// (probe, query, publish, subscribe, artifact transfer) stay immediate:
// they are latency-sensitive and rarely have companions to share a
// datagram with.
func DefaultBatchEligible(t wire.MsgType) bool {
	switch t {
	case wire.TRenew, wire.TRenewAck, wire.TPublishAck, wire.TPing, wire.TPong,
		wire.TBeacon, wire.TPeerExchange, wire.TQueryResult,
		wire.TSummaryDelta, wire.TSummaryAck,
		wire.TDirectoryDelta, wire.TDirectoryAck:
		return true
	}
	return false
}

// Batcher wraps an Iface with flush-on-size/flush-on-deadline datagram
// coalescing: eligible marshaled envelopes queue per destination and go
// out as one wire batch frame, so high-rate small messages share a
// datagram (and a syscall on udpnet) instead of paying per-message
// overhead. Ineligible or oversized messages pass straight through.
//
// The Batcher takes ownership of the data slices it queues; callers
// must not reuse them after Unicast returns. Flush timing runs on the
// bearer's Clock, so coalescing stays deterministic on the simulator.
// All methods are safe for concurrent use.
type Batcher struct {
	inner Iface
	clock Clock
	cfg   BatcherConfig

	mu     sync.Mutex
	queues map[Addr]*batchQueue
	order  []Addr // flush order: first-queued first, deterministic
	timer  CancelFunc
	closed bool
}

type batchQueue struct {
	frames [][]byte
	bytes  int // payload bytes queued
	prefix int // per-frame uvarint length prefixes a batch frame would add
}

// NewBatcher wraps inner with coalescing. The clock schedules deadline
// flushes (pass the bearer itself on udpnet/memnet-backed nodes).
func NewBatcher(inner Iface, clock Clock, cfg BatcherConfig) *Batcher {
	return &Batcher{
		inner:  inner,
		clock:  clock,
		cfg:    cfg.withDefaults(),
		queues: make(map[Addr]*batchQueue),
	}
}

// Addr implements Iface.
func (b *Batcher) Addr() Addr { return b.inner.Addr() }

// errBatcherClosed is returned for sends after Close.
var errBatcherClosed = errors.New("transport: batcher closed")

// Unicast implements Iface: eligible frames queue for coalescing,
// everything else is forwarded immediately.
func (b *Batcher) Unicast(to Addr, data []byte) error {
	t, ok := wire.FrameType(data)
	if !ok || !b.cfg.Eligible(t) || len(data) >= b.cfg.MaxBytes {
		mBatchBypass.Inc()
		return b.inner.Unicast(to, data)
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return errBatcherClosed
	}
	q := b.queues[to]
	if q == nil {
		q = &batchQueue{}
		b.queues[to] = q
		b.order = append(b.order, to)
	}
	// Flush-before-append: if coalescing data into the waiting frames
	// would push the batch datagram — framing overhead included — past
	// MaxBytes, the queue goes out now and data starts the next batch,
	// so a coalesced datagram never exceeds the MTU bound.
	var spill [][]byte
	if len(q.frames) > 0 &&
		q.bytes+q.prefix+len(data)+wire.UvarintLen(uint64(len(data)))+
			wire.BatchOverhead(len(q.frames)+1, nil) > b.cfg.MaxBytes {
		spill = q.frames
		q.frames, q.bytes, q.prefix = nil, 0, 0
		mBatchFlushSize.Inc()
	}
	q.frames = append(q.frames, data)
	q.bytes += len(data)
	q.prefix += wire.UvarintLen(uint64(len(data)))
	mBatchQueued.Inc()
	if len(q.frames) >= b.cfg.MaxMessages {
		out := b.takeLocked(to)
		mBatchFlushSize.Inc()
		b.mu.Unlock()
		var err error
		if spill != nil {
			err = b.inner.Unicast(to, coalesce(spill))
		}
		if e := b.inner.Unicast(to, coalesce(out)); err == nil {
			err = e
		}
		return err
	}
	if b.timer == nil {
		b.timer = b.clock.After(b.cfg.FlushDelay, b.onDeadline)
	}
	b.mu.Unlock()
	if spill != nil {
		return b.inner.Unicast(to, coalesce(spill))
	}
	return nil
}

// takeLocked detaches and returns to's queued frames.
func (b *Batcher) takeLocked(to Addr) [][]byte {
	q := b.queues[to]
	if q == nil {
		return nil
	}
	delete(b.queues, to)
	for i, a := range b.order {
		if a == to {
			b.order = append(b.order[:i], b.order[i+1:]...)
			break
		}
	}
	return q.frames
}

// coalesce turns a flushed queue into one datagram.
func coalesce(frames [][]byte) []byte {
	if len(frames) == 1 {
		mBatchSolo.Inc()
		return frames[0]
	}
	mBatchFrames.Inc()
	mBatchMsgs.Add(uint64(len(frames)))
	return wire.EncodeBatch(frames)
}

// onDeadline flushes every queue when the flush-delay timer fires. The
// deadline counter moves only when the drain finds something waiting;
// a timer that fires after size flushes emptied every queue is not a
// deadline flush.
func (b *Batcher) onDeadline() {
	b.mu.Lock()
	b.timer = nil
	outs := b.drainLocked()
	if len(outs) > 0 {
		mBatchFlushDeadline.Inc()
	}
	b.mu.Unlock()
	b.send(outs)
}

// drainLocked empties all queues into coalesced outgoing datagrams in
// deterministic first-queued order.
func (b *Batcher) drainLocked() []Outgoing {
	if len(b.order) == 0 {
		return nil
	}
	outs := make([]Outgoing, 0, len(b.order))
	for _, to := range b.order {
		q := b.queues[to]
		delete(b.queues, to)
		outs = append(outs, Outgoing{To: to, Data: coalesce(q.frames)})
	}
	b.order = b.order[:0]
	return outs
}

// send pushes drained datagrams to the bearer, using its multi-send
// operation when it has one.
func (b *Batcher) send(outs []Outgoing) {
	if len(outs) == 0 {
		return
	}
	if bs, ok := b.inner.(BatchSender); ok && len(outs) > 1 {
		_ = bs.UnicastBatch(outs) // best-effort, like UDP
		return
	}
	for _, o := range outs {
		_ = b.inner.Unicast(o.To, o.Data)
	}
}

// Flush sends everything queued without waiting for the deadline.
func (b *Batcher) Flush() {
	b.mu.Lock()
	if b.timer != nil {
		b.timer()
		b.timer = nil
	}
	outs := b.drainLocked()
	b.mu.Unlock()
	b.send(outs)
}

// Multicast implements Iface; multicasts (periodic beacons, LAN probes)
// are one-per-interval and pass straight through.
func (b *Batcher) Multicast(data []byte) error {
	return b.inner.Multicast(data)
}

// Close implements Iface: pending messages are flushed, then the
// underlying iface is closed.
func (b *Batcher) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	if b.timer != nil {
		b.timer()
		b.timer = nil
	}
	outs := b.drainLocked()
	b.mu.Unlock()
	b.send(outs)
	return b.inner.Close()
}
